package cluster

import (
	"fmt"
	"sync"
)

// ChanFabric connects N nodes with in-process buffered channels. Payloads
// are delivered by reference (no copying), so it measures algorithmic
// communication volume without serialization overhead. Receive accounting
// happens at delivery time.
type ChanFabric struct {
	endpoints []*chanEndpoint
	closeOnce sync.Once
}

// NewChanFabric builds a channel fabric of n nodes. buffer is the per-inbox
// message capacity; non-positive values select a default that keeps
// pipelined count-support exchanges from stalling.
func NewChanFabric(n, buffer int) *ChanFabric {
	if buffer <= 0 {
		buffer = 1024
	}
	f := &ChanFabric{endpoints: make([]*chanEndpoint, n)}
	for i := 0; i < n; i++ {
		f.endpoints[i] = &chanEndpoint{
			id:     i,
			fabric: f,
			inbox:  make(chan Message, buffer),
		}
	}
	return f
}

// N returns the cluster size.
func (f *ChanFabric) N() int { return len(f.endpoints) }

// Endpoint returns node i's attachment.
func (f *ChanFabric) Endpoint(i int) Endpoint { return f.endpoints[i] }

// Close closes every inbox. Sends after Close return an error.
func (f *ChanFabric) Close() error {
	f.closeOnce.Do(func() {
		for _, ep := range f.endpoints {
			ep.mu.Lock()
			ep.closed = true
			close(ep.inbox)
			ep.mu.Unlock()
		}
	})
	return nil
}

type chanEndpoint struct {
	id     int
	fabric *ChanFabric
	inbox  chan Message
	stats  counters

	mu     sync.Mutex // guards closed vs. inflight sends into inbox
	closed bool
}

func (e *chanEndpoint) ID() int { return e.id }

func (e *chanEndpoint) N() int { return len(e.fabric.endpoints) }

func (e *chanEndpoint) Send(to int, kind uint8, payload []byte) error {
	if to < 0 || to >= len(e.fabric.endpoints) {
		return fmt.Errorf("cluster: send to unknown node %d (cluster size %d)", to, e.N())
	}
	dst := e.fabric.endpoints[to]
	msg := Message{From: e.id, Kind: kind, Payload: payload}
	// Serialize against Close so we never send on a closed channel. The
	// blocking send happens outside the critical section only when the
	// inbox has room; holding the lock across a full inbox would deadlock
	// Close, so probe first and fall back to a locked blocking send with
	// the closed flag checked.
	dst.mu.Lock()
	if dst.closed {
		dst.mu.Unlock()
		return fmt.Errorf("cluster: send to node %d after close", to)
	}
	select {
	case dst.inbox <- msg:
		dst.mu.Unlock()
	default:
		dst.mu.Unlock()
		dst.inbox <- msg // inbox full: block without the lock
	}
	e.stats.onSend(kind, len(payload))
	dst.stats.onRecv(kind, len(payload))
	return nil
}

func (e *chanEndpoint) Inbox() <-chan Message { return e.inbox }

func (e *chanEndpoint) Stats() Stats { return e.stats.snapshot() }

func (e *chanEndpoint) KindStats() []KindStat { return e.stats.kindSnapshot() }

// Err is always nil: in-process channels cannot lose a peer.
func (e *chanEndpoint) Err() error { return nil }
