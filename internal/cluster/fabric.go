// Package cluster provides the shared-nothing substrate the parallel miners
// run on: N nodes with private state exchanging messages over a Fabric. It
// emulates the paper's 16-node IBM SP-2 — each node is a goroutine with its
// own memory and simulated local disk — with two interconnects standing in
// for the High-Performance Switch:
//
//   - ChanFabric: in-process buffered channels (fast, deterministic), and
//   - TCPFabric: loopback TCP with length-prefixed frames, paying real
//     serialization and kernel socket costs.
//
// Every byte that crosses the fabric is accounted per node, which is how the
// repo reproduces the paper's communication-volume results (Table 6).
package cluster

import (
	"fmt"
	"sync/atomic"
)

// Message is one unit of inter-node communication. Kind is an
// application-defined tag; Payload is opaque to the fabric.
type Message struct {
	From    int
	Kind    uint8
	Payload []byte
}

// Endpoint is one node's attachment to the fabric. A node sends from its own
// goroutine and drains Inbox from at most one receiver goroutine.
type Endpoint interface {
	// ID returns this node's index in [0, N).
	ID() int
	// N returns the cluster size.
	N() int
	// Send delivers a message to node `to`. Sending to yourself is allowed
	// (it loops back through the inbox) but the mining algorithms avoid it:
	// local work must not count as communication.
	Send(to int, kind uint8, payload []byte) error
	// Inbox returns the stream of incoming messages. It is closed when the
	// fabric shuts down.
	Inbox() <-chan Message
	// Stats returns a snapshot of this endpoint's traffic counters.
	Stats() Stats
	// ResetStats zeroes the traffic counters (used between passes so each
	// pass's communication can be reported separately).
	ResetStats()
}

// Fabric is a cluster interconnect: N endpoints plus lifecycle.
type Fabric interface {
	// N returns the cluster size.
	N() int
	// Endpoint returns node i's attachment.
	Endpoint(i int) Endpoint
	// Close shuts the fabric down, closing all inboxes. Safe to call twice.
	Close() error
}

// Stats are per-endpoint traffic counters. Bytes count payload sizes; the
// fixed per-message envelope is excluded so both fabrics report identical
// volumes.
type Stats struct {
	MsgsSent, MsgsRecv   int64
	BytesSent, BytesRecv int64
}

// Add returns the element-wise sum of two snapshots.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		MsgsSent:  s.MsgsSent + o.MsgsSent,
		MsgsRecv:  s.MsgsRecv + o.MsgsRecv,
		BytesSent: s.BytesSent + o.BytesSent,
		BytesRecv: s.BytesRecv + o.BytesRecv,
	}
}

// String renders the counters compactly.
func (s Stats) String() string {
	return fmt.Sprintf("sent %d msgs/%d B, recv %d msgs/%d B",
		s.MsgsSent, s.BytesSent, s.MsgsRecv, s.BytesRecv)
}

// counters is the shared atomic implementation of Stats.
type counters struct {
	msgsSent, msgsRecv   atomic.Int64
	bytesSent, bytesRecv atomic.Int64
}

func (c *counters) onSend(n int) {
	c.msgsSent.Add(1)
	c.bytesSent.Add(int64(n))
}

func (c *counters) onRecv(n int) {
	c.msgsRecv.Add(1)
	c.bytesRecv.Add(int64(n))
}

func (c *counters) snapshot() Stats {
	return Stats{
		MsgsSent:  c.msgsSent.Load(),
		MsgsRecv:  c.msgsRecv.Load(),
		BytesSent: c.bytesSent.Load(),
		BytesRecv: c.bytesRecv.Load(),
	}
}

func (c *counters) reset() {
	c.msgsSent.Store(0)
	c.msgsRecv.Store(0)
	c.bytesSent.Store(0)
	c.bytesRecv.Store(0)
}
