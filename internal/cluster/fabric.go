// Package cluster provides the shared-nothing substrate the parallel miners
// run on: N nodes with private state exchanging messages over a Fabric. It
// emulates the paper's 16-node IBM SP-2 — each node is a goroutine with its
// own memory and simulated local disk — with two interconnects standing in
// for the High-Performance Switch:
//
//   - ChanFabric: in-process buffered channels (fast, deterministic), and
//   - TCPFabric: loopback TCP with length-prefixed frames, paying real
//     serialization and kernel socket costs.
//
// Every byte that crosses the fabric is accounted per node, which is how the
// repo reproduces the paper's communication-volume results (Table 6).
package cluster

import (
	"fmt"
	"sync/atomic"
)

// Message is one unit of inter-node communication. Kind is an
// application-defined tag; Payload is opaque to the fabric.
type Message struct {
	From    int
	Kind    uint8
	Payload []byte
}

// Endpoint is one node's attachment to the fabric. A node sends from its own
// goroutine and drains Inbox from at most one receiver goroutine.
type Endpoint interface {
	// ID returns this node's index in [0, N).
	ID() int
	// N returns the cluster size.
	N() int
	// Send delivers a message to node `to`. Sending to yourself is allowed
	// (it loops back through the inbox) but the mining algorithms avoid it:
	// local work must not count as communication.
	Send(to int, kind uint8, payload []byte) error
	// Inbox returns the stream of incoming messages. It is closed when the
	// fabric shuts down.
	Inbox() <-chan Message
	// Stats returns a snapshot of this endpoint's traffic counters. Counters
	// are monotonic for the lifetime of the endpoint; callers that need
	// per-window accounting snapshot and subtract (Stats.Sub).
	Stats() Stats
	// KindStats returns per-message-kind traffic counters, indexed by kind.
	// The slice covers every kind seen so far (len = max kind + 1); entries
	// for unseen kinds are zero.
	KindStats() []KindStat
	// Err reports why the endpoint is unusable, or nil while it is healthy.
	// A peer dropping mid-run (TCP fabric) surfaces here after the inbox
	// closes.
	Err() error
}

// Fabric is a cluster interconnect: N endpoints plus lifecycle.
type Fabric interface {
	// N returns the cluster size.
	N() int
	// Endpoint returns node i's attachment.
	Endpoint(i int) Endpoint
	// Close shuts the fabric down, closing all inboxes. Safe to call twice.
	Close() error
}

// Stats are per-endpoint traffic counters. Bytes count payload sizes; the
// fixed per-message envelope is excluded so both fabrics report identical
// volumes.
type Stats struct {
	MsgsSent, MsgsRecv   int64
	BytesSent, BytesRecv int64
}

// Add returns the element-wise sum of two snapshots.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		MsgsSent:  s.MsgsSent + o.MsgsSent,
		MsgsRecv:  s.MsgsRecv + o.MsgsRecv,
		BytesSent: s.BytesSent + o.BytesSent,
		BytesRecv: s.BytesRecv + o.BytesRecv,
	}
}

// Sub returns the element-wise difference s − o. With monotonic endpoint
// counters this is how per-pass windows are computed: snapshot at the window
// start, subtract from the snapshot at its end.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		MsgsSent:  s.MsgsSent - o.MsgsSent,
		MsgsRecv:  s.MsgsRecv - o.MsgsRecv,
		BytesSent: s.BytesSent - o.BytesSent,
		BytesRecv: s.BytesRecv - o.BytesRecv,
	}
}

// KindStat is one message kind's traffic counters on one endpoint.
type KindStat struct {
	MsgsSent, MsgsRecv   int64
	BytesSent, BytesRecv int64
}

// Sub returns the element-wise difference k − o.
func (k KindStat) Sub(o KindStat) KindStat {
	return KindStat{
		MsgsSent:  k.MsgsSent - o.MsgsSent,
		MsgsRecv:  k.MsgsRecv - o.MsgsRecv,
		BytesSent: k.BytesSent - o.BytesSent,
		BytesRecv: k.BytesRecv - o.BytesRecv,
	}
}

// SumKindStats folds per-kind counters back into aggregate Stats; tests use
// it to assert the per-kind breakdown reconciles with the endpoint totals.
func SumKindStats(ks []KindStat) Stats {
	var s Stats
	for _, k := range ks {
		s.MsgsSent += k.MsgsSent
		s.MsgsRecv += k.MsgsRecv
		s.BytesSent += k.BytesSent
		s.BytesRecv += k.BytesRecv
	}
	return s
}

// String renders the counters compactly.
func (s Stats) String() string {
	return fmt.Sprintf("sent %d msgs/%d B, recv %d msgs/%d B",
		s.MsgsSent, s.BytesSent, s.MsgsRecv, s.BytesRecv)
}

// counters is the shared atomic implementation of Stats, with a parallel
// per-kind breakdown. Counters only ever increase; per-pass attribution is
// done by snapshot deltas, never by resetting.
type counters struct {
	msgsSent, msgsRecv   atomic.Int64
	bytesSent, bytesRecv atomic.Int64
	kinds                [256]kindCounters // indexed by Message.Kind
	kindLim              atomic.Int64      // 1 + highest kind seen; 0 = none
}

type kindCounters struct {
	msgsSent, msgsRecv   atomic.Int64
	bytesSent, bytesRecv atomic.Int64
}

func (c *counters) noteKind(kind uint8) {
	lim := int64(kind) + 1
	for {
		cur := c.kindLim.Load()
		if cur >= lim || c.kindLim.CompareAndSwap(cur, lim) {
			return
		}
	}
}

func (c *counters) onSend(kind uint8, n int) {
	c.msgsSent.Add(1)
	c.bytesSent.Add(int64(n))
	kc := &c.kinds[kind]
	kc.msgsSent.Add(1)
	kc.bytesSent.Add(int64(n))
	c.noteKind(kind)
}

func (c *counters) onRecv(kind uint8, n int) {
	c.msgsRecv.Add(1)
	c.bytesRecv.Add(int64(n))
	kc := &c.kinds[kind]
	kc.msgsRecv.Add(1)
	kc.bytesRecv.Add(int64(n))
	c.noteKind(kind)
}

func (c *counters) snapshot() Stats {
	return Stats{
		MsgsSent:  c.msgsSent.Load(),
		MsgsRecv:  c.msgsRecv.Load(),
		BytesSent: c.bytesSent.Load(),
		BytesRecv: c.bytesRecv.Load(),
	}
}

func (c *counters) kindSnapshot() []KindStat {
	lim := c.kindLim.Load()
	if lim == 0 {
		return nil
	}
	out := make([]KindStat, lim)
	for k := int64(0); k < lim; k++ {
		kc := &c.kinds[k]
		out[k] = KindStat{
			MsgsSent:  kc.msgsSent.Load(),
			MsgsRecv:  kc.msgsRecv.Load(),
			BytesSent: kc.bytesSent.Load(),
			BytesRecv: kc.bytesRecv.Load(),
		}
	}
	return out
}
