package cluster

import (
	"net"
	"sync"
	"testing"
	"time"
)

func TestEstimateOffsetEmpty(t *testing.T) {
	if _, ok := EstimateOffset(nil); ok {
		t.Fatal("empty sample set must report ok=false")
	}
}

// TestEstimateOffsetPicksMinRTT pins the reduction rule: the estimate is the
// offset of the minimum-RTT sample, not an average. The samples model a true
// offset of +5ms observed through rounds with varying congestion: the slower
// the round-trip, the larger the asymmetry-induced error.
func TestEstimateOffsetPicksMinRTT(t *testing.T) {
	const truth = 5 * time.Millisecond
	samples := []ClockSample{
		{RTT: 9 * time.Millisecond, Offset: truth + 4*time.Millisecond},
		{RTT: 2 * time.Millisecond, Offset: truth + 300*time.Microsecond},
		{RTT: 30 * time.Millisecond, Offset: truth - 14*time.Millisecond},
		{RTT: 4 * time.Millisecond, Offset: truth - time.Millisecond},
	}
	got, ok := EstimateOffset(samples)
	if !ok {
		t.Fatal("ok=false with samples present")
	}
	if want := samples[1].Offset; got != want {
		t.Fatalf("EstimateOffset = %v, want min-RTT sample's offset %v", got, want)
	}
	// And the chosen sample is indeed the closest to the truth here.
	for _, s := range samples {
		if d, best := (s.Offset - truth).Abs(), (got - truth).Abs(); d < best {
			t.Fatalf("sample %+v beats the min-RTT estimate", s)
		}
	}
}

// delayedWriter delays every write by a fixed one-way latency, leaving reads
// untouched — the building block for asymmetric-path simulation.
type delayedWriter struct {
	net.Conn
	delay time.Duration
}

func (c delayedWriter) Write(p []byte) (int, error) {
	time.Sleep(c.delay)
	return c.Conn.Write(p)
}

// runSync performs one coordinator/peer exchange over an in-memory pipe, with
// the peer's reply path delayed by replyDelay.
func runSync(t *testing.T, rounds int, replyDelay time.Duration) []ClockSample {
	t.Helper()
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	deadline := time.Now().Add(10 * time.Second)
	var wg sync.WaitGroup
	var peerErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		peerErr = answerClockSync(delayedWriter{Conn: b, delay: replyDelay}, deadline)
	}()
	samples, err := syncClockWith(a, rounds, deadline)
	if err != nil {
		t.Fatalf("syncClockWith: %v", err)
	}
	wg.Wait()
	if peerErr != nil {
		t.Fatalf("answerClockSync: %v", peerErr)
	}
	return samples
}

// TestClockSyncSymmetric runs the real exchange between two goroutines
// sharing one clock: the estimated offset must be bounded by the measured
// round-trip (the estimator's intrinsic error bound).
func TestClockSyncSymmetric(t *testing.T) {
	samples := runSync(t, clockSyncRounds, 0)
	if len(samples) != clockSyncRounds {
		t.Fatalf("got %d samples, want %d", len(samples), clockSyncRounds)
	}
	offset, ok := EstimateOffset(samples)
	if !ok {
		t.Fatal("no estimate")
	}
	var minRTT time.Duration
	for i, s := range samples {
		if s.RTT <= 0 {
			t.Fatalf("sample %d has non-positive RTT %v", i, s.RTT)
		}
		if i == 0 || s.RTT < minRTT {
			minRTT = s.RTT
		}
	}
	if offset.Abs() > minRTT {
		t.Fatalf("offset %v exceeds min RTT %v with a shared clock", offset, minRTT)
	}
}

// TestClockSyncAsymmetricLatency pins the estimator's documented bias: with
// all the latency on the reply path (one-way delay D, true offset 0), the
// midpoint assumption places the peer's reading D/2 late, so the estimate
// converges on -D/2 — half the asymmetry, never more than the full RTT.
func TestClockSyncAsymmetricLatency(t *testing.T) {
	const d = 30 * time.Millisecond
	samples := runSync(t, 4, d)
	offset, ok := EstimateOffset(samples)
	if !ok {
		t.Fatal("no estimate")
	}
	// Expect ≈ -D/2; allow generous scheduling slop on either side but
	// require the sign and rough magnitude to match the model.
	if offset > -d/4 || offset < -d {
		t.Fatalf("asymmetric offset = %v, want ≈ %v", offset, -d/2)
	}
}

// TestAnswerClockSyncRejectsUnknownOpcode makes sure a garbled handshake
// fails loudly instead of desynchronizing the stream.
func TestAnswerClockSyncRejectsUnknownOpcode(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	done := make(chan error, 1)
	go func() { done <- answerClockSync(b, time.Now().Add(5*time.Second)) }()
	if _, err := a.Write([]byte{0x7f}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Fatal("unknown opcode must error")
	}
}

// TestMeshClockOffsets checks the handshake integration: node 0 of a real
// mesh learns one offset per node (near zero — every node shares this
// process's clock), everyone else learns none.
func TestMeshClockOffsets(t *testing.T) {
	const n = 3
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	meshes := make([]*Mesh, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, meshes[i], errs[i] = DialMesh(i, addrs, MeshOptions{Listener: listeners[i], DialTimeout: 5 * time.Second})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		defer meshes[i].Close()
	}
	offs := meshes[0].ClockOffsets()
	if len(offs) != n {
		t.Fatalf("coordinator offsets = %v, want %d entries", offs, n)
	}
	if offs[0] != 0 {
		t.Errorf("own offset = %v, want 0", offs[0])
	}
	for i := 1; i < n; i++ {
		if offs[i].Abs() > time.Second {
			t.Errorf("node %d offset %v implausible for a shared clock", i, offs[i])
		}
	}
	for i := 1; i < n; i++ {
		if got := meshes[i].ClockOffsets(); got != nil {
			t.Errorf("follower %d has offsets %v, want nil", i, got)
		}
	}
}

// TestMeshClockSyncDisabled: a negative round count skips the handshake.
func TestMeshClockSyncDisabled(t *testing.T) {
	const n = 2
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	meshes := make([]*Mesh, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, meshes[i], errs[i] = DialMesh(i, addrs, MeshOptions{
				Listener: listeners[i], DialTimeout: 5 * time.Second, ClockSyncRounds: -1,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		defer meshes[i].Close()
	}
	if got := meshes[0].ClockOffsets(); got != nil {
		t.Fatalf("offsets = %v with sync disabled, want nil", got)
	}
}
