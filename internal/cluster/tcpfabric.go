package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCPFabric connects N nodes over loopback TCP, one full-duplex connection
// per unordered node pair, with length-prefixed frames:
//
//	frame = len uint32 | from uint16 | kind uint8 | payload
//
// Unlike ChanFabric, payloads are really copied through the kernel, so this
// fabric charges genuine serialization and transport cost — the closest
// one-box stand-in for the SP-2's High-Performance Switch.
type TCPFabric struct {
	endpoints []*tcpEndpoint
	closeOnce sync.Once
	closeErr  error
}

// NewTCPFabric builds an n-node loopback TCP mesh. inboxBuffer sizes each
// node's delivery channel (default 1024 when non-positive).
func NewTCPFabric(n, inboxBuffer int) (*TCPFabric, error) {
	if inboxBuffer <= 0 {
		inboxBuffer = 1024
	}
	f := &TCPFabric{endpoints: make([]*tcpEndpoint, n)}
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, p := range listeners[:i] {
				p.Close()
			}
			return nil, fmt.Errorf("cluster: listen for node %d: %w", i, err)
		}
		listeners[i] = l
		f.endpoints[i] = &tcpEndpoint{
			id:     i,
			n:      n,
			inbox:  make(chan Message, inboxBuffer),
			conns:  make([]*tcpConn, n),
			closed: make(chan struct{}),
		}
	}
	// Dial the mesh: node i dials node j for all i < j; the accepting side
	// learns the dialer from a 2-byte hello.
	var wg sync.WaitGroup
	errs := make(chan error, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				c, err := net.Dial("tcp", listeners[j].Addr().String())
				if err != nil {
					errs <- fmt.Errorf("cluster: dial %d->%d: %w", i, j, err)
					return
				}
				var hello [2]byte
				binary.BigEndian.PutUint16(hello[:], uint16(i))
				if _, err := c.Write(hello[:]); err != nil {
					errs <- fmt.Errorf("cluster: hello %d->%d: %w", i, j, err)
					return
				}
				f.endpoints[i].setConn(j, c)
			}(i, j)
		}
		// Node i accepts i connections (from every lower-numbered node).
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < i; k++ {
				c, err := listeners[i].Accept()
				if err != nil {
					errs <- fmt.Errorf("cluster: accept at node %d: %w", i, err)
					return
				}
				var hello [2]byte
				if _, err := io.ReadFull(c, hello[:]); err != nil {
					errs <- fmt.Errorf("cluster: read hello at node %d: %w", i, err)
					return
				}
				from := int(binary.BigEndian.Uint16(hello[:]))
				f.endpoints[i].setConn(from, c)
			}
		}(i)
	}
	wg.Wait()
	for _, l := range listeners {
		l.Close()
	}
	close(errs)
	if err := <-errs; err != nil {
		f.Close()
		return nil, err
	}
	// Start one reader per connection side.
	for _, ep := range f.endpoints {
		for peer, c := range ep.conns {
			if c != nil {
				ep.readers.Add(1)
				go ep.readLoop(peer, c)
			}
		}
	}
	return f, nil
}

// N returns the cluster size.
func (f *TCPFabric) N() int { return len(f.endpoints) }

// Endpoint returns node i's attachment.
func (f *TCPFabric) Endpoint(i int) Endpoint { return f.endpoints[i] }

// Close tears down every connection and closes all inboxes.
func (f *TCPFabric) Close() error {
	f.closeOnce.Do(func() {
		for _, ep := range f.endpoints {
			close(ep.closed)
			for _, c := range ep.conns {
				if c != nil {
					if err := c.close(); err != nil && f.closeErr == nil {
						f.closeErr = err
					}
				}
			}
		}
		for _, ep := range f.endpoints {
			ep.readers.Wait()
			close(ep.inbox)
		}
	})
	return f.closeErr
}

// tcpConn is one side of a pairwise connection with a serialized writer.
type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
	w  *bufio.Writer
}

func (tc *tcpConn) close() error {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	tc.w.Flush()
	return tc.c.Close()
}

type tcpEndpoint struct {
	id      int
	n       int
	inbox   chan Message
	conns   []*tcpConn
	connsMu sync.Mutex
	stats   counters
	readers sync.WaitGroup
	closed  chan struct{}
}

func (e *tcpEndpoint) setConn(peer int, c net.Conn) {
	e.connsMu.Lock()
	defer e.connsMu.Unlock()
	e.conns[peer] = &tcpConn{c: c, w: bufio.NewWriterSize(c, 64<<10)}
}

func (e *tcpEndpoint) ID() int { return e.id }

func (e *tcpEndpoint) N() int { return e.n }

func (e *tcpEndpoint) Send(to int, kind uint8, payload []byte) error {
	if to == e.id {
		// Loopback without touching the network, mirroring ChanFabric.
		select {
		case e.inbox <- Message{From: e.id, Kind: kind, Payload: payload}:
		case <-e.closed:
			return fmt.Errorf("cluster: node %d self-send after close", e.id)
		}
		e.stats.onSend(len(payload))
		e.stats.onRecv(len(payload))
		return nil
	}
	if to < 0 || to >= e.n || e.conns[to] == nil {
		return fmt.Errorf("cluster: node %d has no connection to %d", e.id, to)
	}
	tc := e.conns[to]
	tc.mu.Lock()
	defer tc.mu.Unlock()
	var hdr [7]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint16(hdr[4:6], uint16(e.id))
	hdr[6] = kind
	if _, err := tc.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("cluster: send %d->%d: %w", e.id, to, err)
	}
	if _, err := tc.w.Write(payload); err != nil {
		return fmt.Errorf("cluster: send %d->%d: %w", e.id, to, err)
	}
	// Flush eagerly: the mining protocol interleaves small control messages
	// with data and has no other flush point.
	if err := tc.w.Flush(); err != nil {
		return fmt.Errorf("cluster: flush %d->%d: %w", e.id, to, err)
	}
	e.stats.onSend(len(payload))
	return nil
}

func (e *tcpEndpoint) readLoop(peer int, tc *tcpConn) {
	defer e.readers.Done()
	r := bufio.NewReaderSize(tc.c, 64<<10)
	for {
		var hdr [7]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return // connection closed
		}
		n := binary.BigEndian.Uint32(hdr[:4])
		from := int(binary.BigEndian.Uint16(hdr[4:6]))
		kind := hdr[6]
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return
		}
		e.stats.onRecv(int(n))
		select {
		case e.inbox <- Message{From: from, Kind: kind, Payload: payload}:
		case <-e.closed:
			return
		}
	}
}

func (e *tcpEndpoint) Inbox() <-chan Message { return e.inbox }

func (e *tcpEndpoint) Stats() Stats { return e.stats.snapshot() }

func (e *tcpEndpoint) ResetStats() { e.stats.reset() }
