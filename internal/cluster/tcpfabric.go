package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCPFabric connects N nodes over loopback TCP, one full-duplex connection
// per unordered node pair, with length-prefixed frames:
//
//	frame = len uint32 | from uint16 | kind uint8 | payload
//
// Unlike ChanFabric, payloads are really copied through the kernel, so this
// fabric charges genuine serialization and transport cost — the closest
// one-box stand-in for the SP-2's High-Performance Switch.
type TCPFabric struct {
	endpoints []*tcpEndpoint
	closeOnce sync.Once
}

// NewTCPFabric builds an n-node loopback TCP mesh. inboxBuffer sizes each
// node's delivery channel (default 1024 when non-positive).
func NewTCPFabric(n, inboxBuffer int) (*TCPFabric, error) {
	if inboxBuffer <= 0 {
		inboxBuffer = 1024
	}
	f := &TCPFabric{endpoints: make([]*tcpEndpoint, n)}
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, p := range listeners[:i] {
				p.Close()
			}
			return nil, fmt.Errorf("cluster: listen for node %d: %w", i, err)
		}
		listeners[i] = l
		f.endpoints[i] = &tcpEndpoint{
			id:     i,
			n:      n,
			inbox:  make(chan Message, inboxBuffer),
			conns:  make([]*tcpConn, n),
			closed: make(chan struct{}),
		}
	}
	// Dial the mesh: node i dials node j for all i < j; the accepting side
	// learns the dialer from a 2-byte hello.
	var wg sync.WaitGroup
	errs := make(chan error, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				c, err := net.Dial("tcp", listeners[j].Addr().String())
				if err != nil {
					errs <- fmt.Errorf("cluster: dial %d->%d: %w", i, j, err)
					return
				}
				var hello [2]byte
				binary.BigEndian.PutUint16(hello[:], uint16(i))
				if _, err := c.Write(hello[:]); err != nil {
					errs <- fmt.Errorf("cluster: hello %d->%d: %w", i, j, err)
					return
				}
				f.endpoints[i].setConn(j, c)
			}(i, j)
		}
		// Node i accepts i connections (from every lower-numbered node).
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < i; k++ {
				c, err := listeners[i].Accept()
				if err != nil {
					errs <- fmt.Errorf("cluster: accept at node %d: %w", i, err)
					return
				}
				var hello [2]byte
				if _, err := io.ReadFull(c, hello[:]); err != nil {
					errs <- fmt.Errorf("cluster: read hello at node %d: %w", i, err)
					return
				}
				from := int(binary.BigEndian.Uint16(hello[:]))
				f.endpoints[i].setConn(from, c)
			}
		}(i)
	}
	wg.Wait()
	for _, l := range listeners {
		l.Close()
	}
	close(errs)
	if err := <-errs; err != nil {
		f.Close()
		return nil, err
	}
	// Start one reader per connection side.
	for _, ep := range f.endpoints {
		for peer, c := range ep.conns {
			if c != nil {
				ep.readers.Add(1)
				go ep.readLoop(peer, c)
			}
		}
	}
	return f, nil
}

// N returns the cluster size.
func (f *TCPFabric) N() int { return len(f.endpoints) }

// Endpoint returns node i's attachment.
func (f *TCPFabric) Endpoint(i int) Endpoint { return f.endpoints[i] }

// Close tears down every connection and closes all inboxes. Every endpoint
// is marked closing first so its readers treat the dropped connections as a
// clean shutdown, not a peer failure.
func (f *TCPFabric) Close() error {
	f.closeOnce.Do(func() {
		for _, ep := range f.endpoints {
			ep.markClosed()
		}
		for _, ep := range f.endpoints {
			ep.shutdown(nil)
		}
	})
	return nil
}

// tcpConn is one side of a pairwise connection with a serialized writer.
type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
	w  *bufio.Writer
}

func (tc *tcpConn) close() error {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	tc.w.Flush()
	return tc.c.Close()
}

type tcpEndpoint struct {
	id      int
	n       int
	inbox   chan Message
	conns   []*tcpConn
	connsMu sync.Mutex
	stats   counters
	readers sync.WaitGroup
	closed  chan struct{}

	closingOnce  sync.Once // closes e.closed: "stop treating read errors as failures"
	shutdownOnce sync.Once // full teardown: close conns, drain readers, close inbox
	failMu       sync.Mutex
	failErr      error

	quiesceMu sync.Mutex
	quiesced  []bool // per-peer: an EOF from this peer is orderly shutdown

	// phaseFn, when installed (driver.SetPhase), describes the protocol
	// position this endpoint's owner is in ("pass 3/execute"); peer-loss
	// errors include it so an abort names the pass and phase the run died in.
	phaseMu sync.Mutex
	phaseFn func() string
}

// QuiescePeer marks one peer's departure as part of the protocol's orderly
// shutdown: a subsequent read error on that connection no longer fails the
// endpoint. The run-end telemetry barrier uses this — finished peers close
// at their own pace, and a node still waiting for its own acknowledgement
// must not mistake a fellow follower's clean exit for a peer failure.
func (e *tcpEndpoint) QuiescePeer(peer int) {
	if peer < 0 || peer >= e.n {
		return
	}
	e.quiesceMu.Lock()
	if e.quiesced == nil {
		e.quiesced = make([]bool, e.n)
	}
	e.quiesced[peer] = true
	e.quiesceMu.Unlock()
}

func (e *tcpEndpoint) peerQuiesced(peer int) bool {
	e.quiesceMu.Lock()
	defer e.quiesceMu.Unlock()
	return e.quiesced != nil && peer >= 0 && peer < len(e.quiesced) && e.quiesced[peer]
}

// markClosed flags the endpoint as intentionally closing, so subsequent read
// errors are not recorded as peer failures.
func (e *tcpEndpoint) markClosed() {
	e.closingOnce.Do(func() { close(e.closed) })
}

// shutdown tears the endpoint down: closes every connection, waits for the
// readers to drain, then closes the inbox so a blocked receiver wakes up. A
// non-nil cause (a peer dropping mid-run) is recorded and surfaced by Err.
// Safe to call from any goroutine except a reader (it waits on readers).
func (e *tcpEndpoint) shutdown(cause error) {
	if cause != nil {
		e.failMu.Lock()
		if e.failErr == nil {
			e.failErr = cause
		}
		e.failMu.Unlock()
	}
	e.markClosed()
	e.shutdownOnce.Do(func() {
		e.connsMu.Lock()
		conns := append([]*tcpConn(nil), e.conns...)
		e.connsMu.Unlock()
		for _, c := range conns {
			if c != nil {
				c.close()
			}
		}
		e.readers.Wait()
		close(e.inbox)
	})
}

// closing reports whether the endpoint has been marked closed.
func (e *tcpEndpoint) closing() bool {
	select {
	case <-e.closed:
		return true
	default:
		return false
	}
}

func (e *tcpEndpoint) setConn(peer int, c net.Conn) {
	e.connsMu.Lock()
	defer e.connsMu.Unlock()
	e.conns[peer] = &tcpConn{c: c, w: bufio.NewWriterSize(c, 64<<10)}
}

func (e *tcpEndpoint) ID() int { return e.id }

func (e *tcpEndpoint) N() int { return e.n }

func (e *tcpEndpoint) Send(to int, kind uint8, payload []byte) error {
	if to == e.id {
		// Loopback without touching the network, mirroring ChanFabric.
		select {
		case e.inbox <- Message{From: e.id, Kind: kind, Payload: payload}:
		case <-e.closed:
			return fmt.Errorf("cluster: node %d self-send after close", e.id)
		}
		e.stats.onSend(kind, len(payload))
		e.stats.onRecv(kind, len(payload))
		return nil
	}
	if to < 0 || to >= e.n || e.conns[to] == nil {
		return fmt.Errorf("cluster: node %d has no connection to %d", e.id, to)
	}
	tc := e.conns[to]
	tc.mu.Lock()
	defer tc.mu.Unlock()
	var hdr [7]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint16(hdr[4:6], uint16(e.id))
	hdr[6] = kind
	if _, err := tc.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("cluster: send %d->%d: %w", e.id, to, err)
	}
	if _, err := tc.w.Write(payload); err != nil {
		return fmt.Errorf("cluster: send %d->%d: %w", e.id, to, err)
	}
	// Flush eagerly: the mining protocol interleaves small control messages
	// with data and has no other flush point.
	if err := tc.w.Flush(); err != nil {
		return fmt.Errorf("cluster: flush %d->%d: %w", e.id, to, err)
	}
	e.stats.onSend(kind, len(payload))
	return nil
}

func (e *tcpEndpoint) readLoop(peer int, tc *tcpConn) {
	defer e.readers.Done()
	r := bufio.NewReaderSize(tc.c, 64<<10)
	for {
		var hdr [7]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			e.onReadError(peer, err)
			return
		}
		n := binary.BigEndian.Uint32(hdr[:4])
		from := int(binary.BigEndian.Uint16(hdr[4:6]))
		kind := hdr[6]
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			e.onReadError(peer, err)
			return
		}
		e.stats.onRecv(kind, int(n))
		select {
		case e.inbox <- Message{From: from, Kind: kind, Payload: payload}:
		case <-e.closed:
			return
		}
	}
}

// onReadError distinguishes a clean shutdown (the endpoint was marked closed
// before the connection dropped, or the peer was quiesced) from a peer
// failing mid-run. On failure the teardown runs on a fresh goroutine:
// shutdown waits for all readers, and this reader has not returned yet.
func (e *tcpEndpoint) onReadError(peer int, err error) {
	if e.closing() || e.peerQuiesced(peer) {
		return
	}
	if ph := e.phase(); ph != "" {
		go e.shutdown(fmt.Errorf("cluster: node %d lost peer %d during %s: %w", e.id, peer, ph, err))
		return
	}
	go e.shutdown(fmt.Errorf("cluster: node %d lost peer %d: %w", e.id, peer, err))
}

// SetPhase installs a callback describing the protocol position the
// endpoint's owner is in, woven into peer-loss errors. fn must be safe to
// call from any goroutine.
func (e *tcpEndpoint) SetPhase(fn func() string) {
	e.phaseMu.Lock()
	e.phaseFn = fn
	e.phaseMu.Unlock()
}

func (e *tcpEndpoint) phase() string {
	e.phaseMu.Lock()
	fn := e.phaseFn
	e.phaseMu.Unlock()
	if fn == nil {
		return ""
	}
	return fn()
}

func (e *tcpEndpoint) Inbox() <-chan Message { return e.inbox }

func (e *tcpEndpoint) Stats() Stats { return e.stats.snapshot() }

func (e *tcpEndpoint) KindStats() []KindStat { return e.stats.kindSnapshot() }

// Err reports the failure that shut this endpoint down, or nil after a clean
// run. Callers check it once the inbox closes to tell peer loss from Close.
func (e *tcpEndpoint) Err() error {
	e.failMu.Lock()
	defer e.failMu.Unlock()
	return e.failErr
}
