package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// MeshOptions configure DialMesh.
type MeshOptions struct {
	// Listener, when non-nil, is the pre-bound listener for this node's
	// address (useful when ports are allocated dynamically); otherwise
	// DialMesh listens on addrs[self].
	Listener net.Listener
	// InboxBuffer sizes the delivery channel (default 1024).
	InboxBuffer int
	// DialTimeout bounds how long to keep retrying peers that have not
	// started yet (default 30s).
	DialTimeout time.Duration
	// ClockSyncRounds is the number of clock-offset ping round-trips node 0
	// runs against each peer during the handshake (0 = default 8, negative =
	// skip clock sync entirely). All processes in a mesh must agree on
	// whether sync is enabled; the round count itself is negotiated on the
	// wire.
	ClockSyncRounds int
}

// Mesh is the handle DialMesh returns alongside the Endpoint: it tears the
// mesh down and, on node 0, carries the per-peer clock-offset estimates
// measured during the handshake.
type Mesh struct {
	ep      *tcpEndpoint
	offsets []time.Duration
}

// Close shuts the endpoint down cleanly: connections are closed, reader
// goroutines drained, and the inbox closed. A shutdown already triggered by
// a peer drop (see Endpoint.Err) makes this a no-op.
func (m *Mesh) Close() error {
	m.ep.markClosed()
	m.ep.shutdown(nil)
	return nil
}

// ClockOffsets returns the estimated wall-clock offset of every node relative
// to node 0 (offsets[0] is always 0): positive means that node's clock reads
// ahead of node 0's. Non-nil only on node 0 and only when clock sync ran.
func (m *Mesh) ClockOffsets() []time.Duration {
	if m.offsets == nil {
		return nil
	}
	return append([]time.Duration(nil), m.offsets...)
}

// DialMesh joins this process into a cross-process shared-nothing mesh: one
// node per process, full TCP mesh between them — the deployment shape of the
// paper's SP-2, with OS processes standing in for nodes. addrs lists every
// node's listen address in node-id order; self is this process's id.
//
// Connection protocol (identical to the in-process TCPFabric): node i dials
// every j > i with a 2-byte hello carrying its id, and accepts connections
// from every j < i. Dials retry until the peer's listener is up or
// DialTimeout expires, so workers may start in any order.
//
// Before the read loops start, node 0 runs a clock-offset estimation exchange
// with every peer on the raw connections (see clock.go); the estimates are
// exposed through Mesh.ClockOffsets for merged-trace timestamp rebasing.
func DialMesh(self int, addrs []string, opts MeshOptions) (Endpoint, *Mesh, error) {
	n := len(addrs)
	if self < 0 || self >= n {
		return nil, nil, fmt.Errorf("cluster: self %d out of range of %d addrs", self, n)
	}
	if opts.InboxBuffer <= 0 {
		opts.InboxBuffer = 1024
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 30 * time.Second
	}
	ln := opts.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", addrs[self])
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: listen %s: %w", addrs[self], err)
		}
	}
	ep := &tcpEndpoint{
		id:     self,
		n:      n,
		inbox:  make(chan Message, opts.InboxBuffer),
		conns:  make([]*tcpConn, n),
		closed: make(chan struct{}),
	}

	var wg sync.WaitGroup
	errs := make(chan error, n)
	// Accept from every lower-numbered node.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < self; k++ {
			c, err := ln.Accept()
			if err != nil {
				errs <- fmt.Errorf("cluster: accept at node %d: %w", self, err)
				return
			}
			var hello [2]byte
			if _, err := io.ReadFull(c, hello[:]); err != nil {
				errs <- fmt.Errorf("cluster: read hello at node %d: %w", self, err)
				return
			}
			from := int(binary.BigEndian.Uint16(hello[:]))
			if from >= n || from >= self {
				errs <- fmt.Errorf("cluster: node %d got hello from unexpected node %d", self, from)
				return
			}
			ep.setConn(from, c)
		}
	}()
	// Dial every higher-numbered node, retrying while it boots.
	for j := self + 1; j < n; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			deadline := time.Now().Add(opts.DialTimeout)
			for {
				c, err := net.DialTimeout("tcp", addrs[j], time.Second)
				if err != nil {
					if time.Now().After(deadline) {
						errs <- fmt.Errorf("cluster: dial %d->%d (%s): %w", self, j, addrs[j], err)
						return
					}
					time.Sleep(100 * time.Millisecond)
					continue
				}
				var hello [2]byte
				binary.BigEndian.PutUint16(hello[:], uint16(self))
				if _, err := c.Write(hello[:]); err != nil {
					errs <- fmt.Errorf("cluster: hello %d->%d: %w", self, j, err)
					return
				}
				ep.setConn(j, c)
				return
			}
		}(j)
	}
	wg.Wait()
	ln.Close()
	close(errs)
	if err := <-errs; err != nil {
		for _, tc := range ep.conns {
			if tc != nil {
				tc.close()
			}
		}
		return nil, nil, err
	}

	// Clock sync runs on the raw connections strictly before the read loops
	// start, so the ping/pong bytes cannot interleave with framed protocol
	// traffic. Peers cannot send app frames on their node-0 connection until
	// their own DialMesh returns, which requires completing this exchange.
	var offsets []time.Duration
	if opts.ClockSyncRounds >= 0 {
		rounds := opts.ClockSyncRounds
		if rounds == 0 {
			rounds = clockSyncRounds
		}
		deadline := time.Now().Add(opts.DialTimeout)
		if self == 0 {
			offsets = make([]time.Duration, n)
			for j := 1; j < n; j++ {
				samples, err := syncClockWith(ep.conns[j].c, rounds, deadline)
				if err != nil {
					return nil, nil, teardown(ep, fmt.Errorf("cluster: clock sync with node %d: %w", j, err))
				}
				offsets[j], _ = EstimateOffset(samples)
			}
		} else {
			if err := answerClockSync(ep.conns[0].c, deadline); err != nil {
				return nil, nil, teardown(ep, fmt.Errorf("cluster: clock sync at node %d: %w", self, err))
			}
		}
	}

	for peer, tc := range ep.conns {
		if tc != nil {
			ep.readers.Add(1)
			go ep.readLoop(peer, tc)
		}
	}
	return ep, &Mesh{ep: ep, offsets: offsets}, nil
}

// teardown closes every live connection after a handshake failure.
func teardown(ep *tcpEndpoint, err error) error {
	for _, tc := range ep.conns {
		if tc != nil {
			tc.close()
		}
	}
	return err
}
