package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// MeshOptions configure DialMesh.
type MeshOptions struct {
	// Listener, when non-nil, is the pre-bound listener for this node's
	// address (useful when ports are allocated dynamically); otherwise
	// DialMesh listens on addrs[self].
	Listener net.Listener
	// InboxBuffer sizes the delivery channel (default 1024).
	InboxBuffer int
	// DialTimeout bounds how long to keep retrying peers that have not
	// started yet (default 30s).
	DialTimeout time.Duration
}

// meshCloser tears down a DialMesh endpoint.
type meshCloser struct {
	ep *tcpEndpoint
}

// Close shuts the endpoint down cleanly: connections are closed, reader
// goroutines drained, and the inbox closed. A shutdown already triggered by
// a peer drop (see Endpoint.Err) makes this a no-op.
func (c *meshCloser) Close() error {
	c.ep.markClosed()
	c.ep.shutdown(nil)
	return nil
}

// DialMesh joins this process into a cross-process shared-nothing mesh: one
// node per process, full TCP mesh between them — the deployment shape of the
// paper's SP-2, with OS processes standing in for nodes. addrs lists every
// node's listen address in node-id order; self is this process's id.
//
// Connection protocol (identical to the in-process TCPFabric): node i dials
// every j > i with a 2-byte hello carrying its id, and accepts connections
// from every j < i. Dials retry until the peer's listener is up or
// DialTimeout expires, so workers may start in any order.
func DialMesh(self int, addrs []string, opts MeshOptions) (Endpoint, io.Closer, error) {
	n := len(addrs)
	if self < 0 || self >= n {
		return nil, nil, fmt.Errorf("cluster: self %d out of range of %d addrs", self, n)
	}
	if opts.InboxBuffer <= 0 {
		opts.InboxBuffer = 1024
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 30 * time.Second
	}
	ln := opts.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", addrs[self])
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: listen %s: %w", addrs[self], err)
		}
	}
	ep := &tcpEndpoint{
		id:     self,
		n:      n,
		inbox:  make(chan Message, opts.InboxBuffer),
		conns:  make([]*tcpConn, n),
		closed: make(chan struct{}),
	}

	var wg sync.WaitGroup
	errs := make(chan error, n)
	// Accept from every lower-numbered node.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < self; k++ {
			c, err := ln.Accept()
			if err != nil {
				errs <- fmt.Errorf("cluster: accept at node %d: %w", self, err)
				return
			}
			var hello [2]byte
			if _, err := io.ReadFull(c, hello[:]); err != nil {
				errs <- fmt.Errorf("cluster: read hello at node %d: %w", self, err)
				return
			}
			from := int(binary.BigEndian.Uint16(hello[:]))
			if from >= n || from >= self {
				errs <- fmt.Errorf("cluster: node %d got hello from unexpected node %d", self, from)
				return
			}
			ep.setConn(from, c)
		}
	}()
	// Dial every higher-numbered node, retrying while it boots.
	for j := self + 1; j < n; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			deadline := time.Now().Add(opts.DialTimeout)
			for {
				c, err := net.DialTimeout("tcp", addrs[j], time.Second)
				if err != nil {
					if time.Now().After(deadline) {
						errs <- fmt.Errorf("cluster: dial %d->%d (%s): %w", self, j, addrs[j], err)
						return
					}
					time.Sleep(100 * time.Millisecond)
					continue
				}
				var hello [2]byte
				binary.BigEndian.PutUint16(hello[:], uint16(self))
				if _, err := c.Write(hello[:]); err != nil {
					errs <- fmt.Errorf("cluster: hello %d->%d: %w", self, j, err)
					return
				}
				ep.setConn(j, c)
				return
			}
		}(j)
	}
	wg.Wait()
	ln.Close()
	close(errs)
	if err := <-errs; err != nil {
		for _, tc := range ep.conns {
			if tc != nil {
				tc.close()
			}
		}
		return nil, nil, err
	}
	for peer, tc := range ep.conns {
		if tc != nil {
			ep.readers.Add(1)
			go ep.readLoop(peer, tc)
		}
	}
	return ep, &meshCloser{ep: ep}, nil
}
