package cluster

import (
	"fmt"
	"sync"
	"testing"
)

// fabrics under test share one behavioural suite.
func fabrics(t *testing.T, n int) map[string]Fabric {
	t.Helper()
	tcp, err := NewTCPFabric(n, 64)
	if err != nil {
		t.Fatalf("tcp fabric: %v", err)
	}
	return map[string]Fabric{
		"chan": NewChanFabric(n, 64),
		"tcp":  tcp,
	}
}

func TestPointToPointDelivery(t *testing.T) {
	for name, f := range fabrics(t, 3) {
		t.Run(name, func(t *testing.T) {
			defer f.Close()
			if f.N() != 3 {
				t.Fatalf("N = %d", f.N())
			}
			payload := []byte("hello")
			if err := f.Endpoint(0).Send(2, 7, payload); err != nil {
				t.Fatal(err)
			}
			m := <-f.Endpoint(2).Inbox()
			if m.From != 0 || m.Kind != 7 || string(m.Payload) != "hello" {
				t.Errorf("got %+v", m)
			}
		})
	}
}

func TestPerSenderFIFO(t *testing.T) {
	const msgs = 200
	for name, f := range fabrics(t, 2) {
		t.Run(name, func(t *testing.T) {
			defer f.Close()
			go func() {
				for i := 0; i < msgs; i++ {
					f.Endpoint(0).Send(1, 1, []byte{byte(i)})
				}
			}()
			for i := 0; i < msgs; i++ {
				m := <-f.Endpoint(1).Inbox()
				if m.Payload[0] != byte(i) {
					t.Fatalf("message %d arrived out of order: %d", i, m.Payload[0])
				}
			}
		})
	}
}

func TestAllToAllNoDeadlock(t *testing.T) {
	const n, msgs = 4, 500
	for name, f := range fabrics(t, n) {
		t.Run(name, func(t *testing.T) {
			defer f.Close()
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				ep := f.Endpoint(i)
				wg.Add(2)
				// Receiver drains concurrently with the sender — the same
				// topology the count-support phase uses.
				go func() {
					defer wg.Done()
					for got := 0; got < msgs*(n-1); got++ {
						<-ep.Inbox()
					}
				}()
				go func(id int) {
					defer wg.Done()
					payload := make([]byte, 64)
					for m := 0; m < msgs; m++ {
						for p := 0; p < n; p++ {
							if p == id {
								continue
							}
							if err := ep.Send(p, 1, payload); err != nil {
								t.Errorf("send: %v", err)
								return
							}
						}
					}
				}(i)
			}
			wg.Wait()
		})
	}
}

func TestAccountingSymmetry(t *testing.T) {
	for name, f := range fabrics(t, 3) {
		t.Run(name, func(t *testing.T) {
			defer f.Close()
			sizes := []int{0, 1, 100, 4096}
			for i, sz := range sizes {
				if err := f.Endpoint(0).Send(1, uint8(i), make([]byte, sz)); err != nil {
					t.Fatal(err)
				}
			}
			for range sizes {
				<-f.Endpoint(1).Inbox()
			}
			s0, s1 := f.Endpoint(0).Stats(), f.Endpoint(1).Stats()
			var want int64
			for _, sz := range sizes {
				want += int64(sz)
			}
			if s0.BytesSent != want || s0.MsgsSent != int64(len(sizes)) {
				t.Errorf("sender stats %v", s0)
			}
			if s1.BytesRecv != want || s1.MsgsRecv != int64(len(sizes)) {
				t.Errorf("receiver stats %v", s1)
			}
			if s0.BytesRecv != 0 || s1.BytesSent != 0 {
				t.Errorf("phantom traffic: %v / %v", s0, s1)
			}
			// Counters are monotonic: per-window accounting subtracts
			// snapshots instead of resetting.
			before := f.Endpoint(0).Stats()
			if err := f.Endpoint(0).Send(1, 0, make([]byte, 10)); err != nil {
				t.Fatal(err)
			}
			<-f.Endpoint(1).Inbox()
			delta := f.Endpoint(0).Stats().Sub(before)
			if delta.BytesSent != 10 || delta.MsgsSent != 1 {
				t.Errorf("snapshot delta = %+v", delta)
			}
		})
	}
}

// TestKindStatsReconcile asserts the per-kind breakdown sums exactly to the
// endpoint totals on both fabrics, for sends and receives alike.
func TestKindStatsReconcile(t *testing.T) {
	for name, f := range fabrics(t, 3) {
		t.Run(name, func(t *testing.T) {
			defer f.Close()
			type tx struct {
				from, to int
				kind     uint8
				size     int
			}
			txs := []tx{
				{0, 1, 1, 64}, {0, 1, 3, 100}, {0, 2, 3, 9},
				{1, 0, 7, 0}, {1, 2, 1, 2048}, {2, 0, 5, 1},
				{2, 2, 3, 33}, // self-send counts both sides
			}
			recvCount := make(map[int]int)
			for _, x := range txs {
				if err := f.Endpoint(x.from).Send(x.to, x.kind, make([]byte, x.size)); err != nil {
					t.Fatal(err)
				}
				recvCount[x.to]++
			}
			for node, c := range recvCount {
				for i := 0; i < c; i++ {
					<-f.Endpoint(node).Inbox()
				}
			}
			for i := 0; i < f.N(); i++ {
				ep := f.Endpoint(i)
				total := ep.Stats()
				byKind := ep.KindStats()
				if got := SumKindStats(byKind); got != total {
					t.Errorf("node %d: kind sum %+v != totals %+v", i, got, total)
				}
			}
			// Spot-check one attribution: node 0 sent kinds 1 and 3.
			ks := f.Endpoint(0).KindStats()
			if len(ks) < 4 || ks[1].BytesSent != 64 || ks[3].BytesSent != 109 {
				t.Errorf("node 0 kind stats = %+v", ks)
			}
			if err := f.Endpoint(0).Err(); err != nil {
				t.Errorf("healthy endpoint reports error: %v", err)
			}
		})
	}
}

func TestStatsAddAndString(t *testing.T) {
	a := Stats{MsgsSent: 1, MsgsRecv: 2, BytesSent: 3, BytesRecv: 4}
	b := a.Add(a)
	if b.MsgsSent != 2 || b.BytesRecv != 8 {
		t.Errorf("Add = %+v", b)
	}
	if a.String() == "" {
		t.Error("empty String")
	}
}

func TestSendToUnknownNode(t *testing.T) {
	for name, f := range fabrics(t, 2) {
		t.Run(name, func(t *testing.T) {
			defer f.Close()
			if err := f.Endpoint(0).Send(5, 1, nil); err == nil {
				t.Error("send to node 5 of 2 should fail")
			}
			if err := f.Endpoint(0).Send(-1, 1, nil); err == nil {
				t.Error("send to node -1 should fail")
			}
		})
	}
}

func TestCloseIsIdempotentAndClosesInboxes(t *testing.T) {
	for name, f := range fabrics(t, 2) {
		t.Run(name, func(t *testing.T) {
			if err := f.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			if err := f.Close(); err != nil {
				t.Fatalf("second close: %v", err)
			}
			if _, ok := <-f.Endpoint(0).Inbox(); ok {
				t.Error("inbox should be closed")
			}
		})
	}
}

func TestTCPSelfSendLoopsBack(t *testing.T) {
	f, err := NewTCPFabric(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Endpoint(1).Send(1, 9, []byte("me")); err != nil {
		t.Fatal(err)
	}
	m := <-f.Endpoint(1).Inbox()
	if m.From != 1 || string(m.Payload) != "me" {
		t.Errorf("self-send got %+v", m)
	}
	s := f.Endpoint(1).Stats()
	if s.BytesSent != 2 || s.BytesRecv != 2 {
		t.Errorf("self-send accounting %v", s)
	}
}

func TestChanSelfSend(t *testing.T) {
	f := NewChanFabric(1, 4)
	defer f.Close()
	if err := f.Endpoint(0).Send(0, 3, []byte("x")); err != nil {
		t.Fatal(err)
	}
	m := <-f.Endpoint(0).Inbox()
	if m.From != 0 || m.Kind != 3 {
		t.Errorf("got %+v", m)
	}
}

func TestEndpointIdentity(t *testing.T) {
	for name, f := range fabrics(t, 3) {
		t.Run(name, func(t *testing.T) {
			defer f.Close()
			for i := 0; i < 3; i++ {
				ep := f.Endpoint(i)
				if ep.ID() != i || ep.N() != 3 {
					t.Errorf("endpoint %d identity: id=%d n=%d", i, ep.ID(), ep.N())
				}
			}
		})
	}
}

func TestLargePayloadOverTCP(t *testing.T) {
	f, err := NewTCPFabric(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i)
	}
	go func() { f.Endpoint(0).Send(1, 1, payload) }()
	m := <-f.Endpoint(1).Inbox()
	if len(m.Payload) != len(payload) {
		t.Fatalf("len = %d", len(m.Payload))
	}
	for i := 0; i < len(payload); i += 4099 {
		if m.Payload[i] != byte(i) {
			t.Fatalf("corruption at %d", i)
		}
	}
}

func TestManyNodesMesh(t *testing.T) {
	// Mesh setup for 16 nodes: the paper's cluster size.
	f, err := NewTCPFabric(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ep := f.Endpoint(i)
			next := (i + 1) % 16
			if err := ep.Send(next, 1, []byte(fmt.Sprint(i))); err != nil {
				t.Errorf("send: %v", err)
			}
			m := <-ep.Inbox()
			prev := (i + 15) % 16
			if m.From != prev {
				t.Errorf("node %d got message from %d, want %d", i, m.From, prev)
			}
		}(i)
	}
	wg.Wait()
}
