package cluster

import (
	"net"
	"sync"
	"testing"
	"time"
)

// startMesh brings up an n-node mesh with dynamically allocated ports. It
// returns the endpoints, each node's closer, and a cleanup closing them all.
func startMesh(t *testing.T, n int) ([]Endpoint, []func() error, func()) {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	eps := make([]Endpoint, n)
	closers := make([]func() error, n)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ep, closer, err := DialMesh(i, addrs, MeshOptions{Listener: listeners[i], DialTimeout: 5 * time.Second})
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			eps[i] = ep
			closers[i] = closer.Close
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	return eps, closers, func() {
		for _, c := range closers {
			if c != nil {
				c()
			}
		}
	}
}

func TestMeshDelivery(t *testing.T) {
	eps, _, cleanup := startMesh(t, 4)
	defer cleanup()
	for i, ep := range eps {
		if ep.ID() != i || ep.N() != 4 {
			t.Fatalf("endpoint %d identity wrong", i)
		}
	}
	// Ring exchange.
	var wg sync.WaitGroup
	for i, ep := range eps {
		wg.Add(1)
		go func(i int, ep Endpoint) {
			defer wg.Done()
			next := (i + 1) % 4
			if err := ep.Send(next, 3, []byte{byte(i)}); err != nil {
				t.Errorf("send: %v", err)
				return
			}
			m := <-ep.Inbox()
			want := (i + 3) % 4
			if m.From != want || int(m.Payload[0]) != want {
				t.Errorf("node %d got %+v, want from %d", i, m, want)
			}
		}(i, ep)
	}
	wg.Wait()
	// Accounting.
	s := eps[0].Stats()
	if s.MsgsSent != 1 || s.MsgsRecv != 1 || s.BytesSent != 1 {
		t.Errorf("stats = %v", s)
	}
}

func TestMeshSelfSend(t *testing.T) {
	eps, _, cleanup := startMesh(t, 2)
	defer cleanup()
	if err := eps[1].Send(1, 9, []byte("self")); err != nil {
		t.Fatal(err)
	}
	m := <-eps[1].Inbox()
	if m.From != 1 || string(m.Payload) != "self" {
		t.Errorf("self-send got %+v", m)
	}
}

// TestMeshPeerDropSurfacesError kills one node of a live mesh and asserts the
// survivors notice: their inboxes close (instead of blocking forever) and
// Err() carries the lost-peer cause.
func TestMeshPeerDropSurfacesError(t *testing.T) {
	eps, closers, cleanup := startMesh(t, 3)
	defer cleanup()
	// Node 2 vanishes mid-run, as if its process died.
	if err := closers[2](); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1} {
		select {
		case _, ok := <-eps[i].Inbox():
			if ok {
				t.Fatalf("node %d: unexpected message after peer drop", i)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("node %d: inbox did not close after peer drop", i)
		}
		if eps[i].Err() == nil {
			t.Errorf("node %d: Err() = nil after peer drop", i)
		}
	}
	// The departed node closed cleanly on purpose: no failure recorded.
	if err := eps[2].Err(); err != nil {
		t.Errorf("node 2: clean close recorded error: %v", err)
	}
}

func TestMeshValidation(t *testing.T) {
	if _, _, err := DialMesh(5, []string{"a", "b"}, MeshOptions{}); err == nil {
		t.Error("out-of-range self must fail")
	}
	// Dial timeout against a dead peer.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	_, _, err = DialMesh(0, []string{ln.Addr().String(), deadAddr}, MeshOptions{
		Listener:    ln,
		DialTimeout: 300 * time.Millisecond,
	})
	if err == nil {
		t.Error("dial to dead peer must time out")
	}
}

func TestMeshCloseIdempotent(t *testing.T) {
	listeners := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	var wg sync.WaitGroup
	var closerA func() error
	var epA Endpoint
	wg.Add(1)
	go func() {
		defer wg.Done()
		ep, c, err := DialMesh(0, addrs, MeshOptions{Listener: listeners[0]})
		if err != nil {
			t.Error(err)
			return
		}
		epA, closerA = ep, c.Close
	}()
	ep, c, err := DialMesh(1, addrs, MeshOptions{Listener: listeners[1]})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if closerA == nil {
		t.Fatal("node 0 failed")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal("second close must be a no-op")
	}
	closerA()
	if _, ok := <-ep.Inbox(); ok {
		t.Error("inbox should be closed")
	}
	_ = epA
}
