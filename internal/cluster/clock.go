package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"
)

// Clock-offset estimation for the cross-process mesh. Span timestamps are
// relative to each process's tracer epoch (a wall-clock reading), so merging
// traces across machines needs an estimate of how far each worker's wall
// clock sits from the coordinator's. DialMesh measures it during the
// handshake, before any protocol traffic, with the classic Cristian/NTP
// scheme: the coordinator pings each peer, the peer answers with its clock
// reading, and the offset is taken against the round-trip midpoint. The
// midpoint assumption errs by at most half the RTT asymmetry, so the
// estimator keeps the sample with the smallest RTT — the exchange least
// distorted by queueing.

// clockSyncRounds is the number of ping round-trips per peer. The cost is a
// few RTTs per peer once at startup; more rounds mean better odds of one
// uncongested sample.
const clockSyncRounds = 8

// Clock-sync opcodes, sent coordinator -> peer one byte at a time. The peer
// answers each ping and stops at done, so both sides agree on the round
// count without configuration.
const (
	clockPing = 1
	clockDone = 0
)

// ClockSample is one ping round-trip: the measured RTT and the offset of the
// peer's wall clock relative to ours implied by the midpoint assumption
// (positive = the peer's clock reads ahead).
type ClockSample struct {
	RTT    time.Duration
	Offset time.Duration
}

// EstimateOffset reduces ping samples to one offset estimate: the offset of
// the minimum-RTT sample. Under asymmetric latency the midpoint estimator is
// biased by half the asymmetry of that round-trip; picking the fastest
// exchange minimizes the room for asymmetry rather than averaging it in.
// ok is false when no samples were taken.
func EstimateOffset(samples []ClockSample) (offset time.Duration, ok bool) {
	if len(samples) == 0 {
		return 0, false
	}
	best := samples[0]
	for _, s := range samples[1:] {
		if s.RTT < best.RTT {
			best = s
		}
	}
	return best.Offset, true
}

// syncClockWith runs the coordinator side of the exchange on a raw
// connection (no fabric framing — this happens before the read loops start):
// rounds pings, each answered by the peer's wall-clock nanos, then done.
func syncClockWith(c net.Conn, rounds int, deadline time.Time) ([]ClockSample, error) {
	if err := c.SetDeadline(deadline); err != nil {
		return nil, err
	}
	defer c.SetDeadline(time.Time{})
	samples := make([]ClockSample, 0, rounds)
	var reply [8]byte
	for i := 0; i < rounds; i++ {
		start := time.Now()
		if _, err := c.Write([]byte{clockPing}); err != nil {
			return nil, fmt.Errorf("cluster: clock ping: %w", err)
		}
		if _, err := io.ReadFull(c, reply[:]); err != nil {
			return nil, fmt.Errorf("cluster: clock pong: %w", err)
		}
		rtt := time.Since(start)
		peer := int64(binary.BigEndian.Uint64(reply[:]))
		mid := start.UnixNano() + rtt.Nanoseconds()/2
		samples = append(samples, ClockSample{RTT: rtt, Offset: time.Duration(peer - mid)})
	}
	if _, err := c.Write([]byte{clockDone}); err != nil {
		return nil, fmt.Errorf("cluster: clock done: %w", err)
	}
	return samples, nil
}

// answerClockSync runs the peer side: answer every ping with the local
// wall-clock nanos until the coordinator sends done.
func answerClockSync(c net.Conn, deadline time.Time) error {
	if err := c.SetDeadline(deadline); err != nil {
		return err
	}
	defer c.SetDeadline(time.Time{})
	var op [1]byte
	var reply [8]byte
	for {
		if _, err := io.ReadFull(c, op[:]); err != nil {
			return fmt.Errorf("cluster: clock sync read: %w", err)
		}
		switch op[0] {
		case clockDone:
			return nil
		case clockPing:
			binary.BigEndian.PutUint64(reply[:], uint64(time.Now().UnixNano()))
			if _, err := c.Write(reply[:]); err != nil {
				return fmt.Errorf("cluster: clock sync reply: %w", err)
			}
		default:
			return fmt.Errorf("cluster: unexpected clock sync opcode %d", op[0])
		}
	}
}
