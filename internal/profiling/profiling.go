// Package profiling wires the standard -cpuprofile/-memprofile flags into
// the pgarm commands so hot-path work (scan workers, candidate probing) can
// be inspected with `go tool pprof` against a full-size run rather than a
// microbenchmark.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling and/or arms a heap profile dump. Either path may
// be empty. The returned stop function flushes the profiles and must run
// before process exit (defer it right after flag parsing).
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "create mem profile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize final live-heap numbers
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "write mem profile: %v\n", err)
			}
		}
	}, nil
}
