// Package taxonomy implements the classification hierarchy T over the item
// universe: a forest of is-a trees (Figure 1 of the paper). It provides the
// hierarchy queries every algorithm layer relies on — parent, root, ancestor
// closure, level — plus the two transforms Cumulate and the parallel
// algorithms apply each pass:
//
//   - extending a transaction with all ancestors of its items (Cumulate,
//     NPGM, HPGM), and
//   - replacing each item with the large item among its ancestors closest to
//     the bottom of the hierarchy (H-HPGM family, line (8) of Figure 5).
//
// A Taxonomy is immutable once built; all query methods are safe for
// concurrent use.
package taxonomy

import (
	"fmt"

	"pgarm/internal/item"
)

// Taxonomy is an immutable classification hierarchy over items 0..N-1.
// Every item belongs to exactly one tree; roots have no parent. Edges point
// from parent to child and represent is-a relationships: an edge x→y makes x
// a parent of y, and the transitive closure defines ancestors/descendants.
type Taxonomy struct {
	parent   []item.Item   // parent[i] = parent of i, or item.None for roots
	children [][]item.Item // children[i] = direct children of i
	root     []item.Item   // root[i] = root of the tree containing i
	level    []int32       // level[i] = depth from the root (root = 0)
	roots    []item.Item   // all roots, ascending
	leaves   []item.Item   // all leaf items, ascending
	maxLevel int32
}

// New builds a taxonomy from a parent vector: parent[i] is the parent of
// item i, or item.None if i is a root. It validates that identifiers are in
// range and the structure is a forest (acyclic, single parent).
func New(parent []item.Item) (*Taxonomy, error) {
	n := len(parent)
	t := &Taxonomy{
		parent:   make([]item.Item, n),
		children: make([][]item.Item, n),
		root:     make([]item.Item, n),
		level:    make([]int32, n),
	}
	copy(t.parent, parent)
	for i, p := range parent {
		if p == item.Item(i) {
			return nil, fmt.Errorf("taxonomy: item %d is its own parent", i)
		}
		if p != item.None {
			if p < 0 || int(p) >= n {
				return nil, fmt.Errorf("taxonomy: item %d has out-of-range parent %d", i, p)
			}
			t.children[p] = append(t.children[p], item.Item(i))
		}
	}
	// Resolve root and level for every item, detecting cycles: walk up with a
	// step bound of n.
	for i := 0; i < n; i++ {
		cur := item.Item(i)
		var depth int32
		for steps := 0; ; steps++ {
			if steps > n {
				return nil, fmt.Errorf("taxonomy: cycle detected through item %d", i)
			}
			p := t.parent[cur]
			if p == item.None {
				break
			}
			cur = p
			depth++
		}
		t.root[i] = cur
		t.level[i] = depth
		if depth > t.maxLevel {
			t.maxLevel = depth
		}
	}
	for i := 0; i < n; i++ {
		if t.parent[i] == item.None {
			t.roots = append(t.roots, item.Item(i))
		}
		if len(t.children[i]) == 0 {
			t.leaves = append(t.leaves, item.Item(i))
		}
	}
	return t, nil
}

// MustNew is New but panics on error; intended for tests and examples with
// hand-written hierarchies.
func MustNew(parent []item.Item) *Taxonomy {
	t, err := New(parent)
	if err != nil {
		panic(err)
	}
	return t
}

// NumItems returns the size of the item universe (hierarchy nodes included).
func (t *Taxonomy) NumItems() int { return len(t.parent) }

// Parent returns the parent of x, or item.None if x is a root.
func (t *Taxonomy) Parent(x item.Item) item.Item { return t.parent[x] }

// Children returns the direct children of x. The returned slice is shared;
// callers must not modify it.
func (t *Taxonomy) Children(x item.Item) []item.Item { return t.children[x] }

// Root returns the root of the tree containing x. For a root item x itself
// is returned.
func (t *Taxonomy) Root(x item.Item) item.Item { return t.root[x] }

// Level returns the depth of x below its root; roots are level 0.
func (t *Taxonomy) Level(x item.Item) int32 { return t.level[x] }

// MaxLevel returns the depth of the deepest item.
func (t *Taxonomy) MaxLevel() int32 { return t.maxLevel }

// Roots returns all root items in ascending order. Shared slice; do not
// modify.
func (t *Taxonomy) Roots() []item.Item { return t.roots }

// Leaves returns all leaf items (no children) in ascending order. Shared
// slice; do not modify.
func (t *Taxonomy) Leaves() []item.Item { return t.leaves }

// IsRoot reports whether x has no parent.
func (t *Taxonomy) IsRoot(x item.Item) bool { return t.parent[x] == item.None }

// IsLeaf reports whether x has no children.
func (t *Taxonomy) IsLeaf(x item.Item) bool { return len(t.children[x]) == 0 }

// IsAncestor reports whether a is a (strict) ancestor of d: a != d and a lies
// on the path from d to its root.
func (t *Taxonomy) IsAncestor(a, d item.Item) bool {
	if a == d || t.root[d] != t.root[a] || t.level[a] >= t.level[d] {
		return false
	}
	cur := t.parent[d]
	for cur != item.None {
		if cur == a {
			return true
		}
		cur = t.parent[cur]
	}
	return false
}

// Ancestors appends the strict ancestors of x (parent first, root last) to
// dst and returns the extended slice.
func (t *Taxonomy) Ancestors(dst []item.Item, x item.Item) []item.Item {
	for cur := t.parent[x]; cur != item.None; cur = t.parent[cur] {
		dst = append(dst, cur)
	}
	return dst
}

// SelfAndAncestors appends x followed by its strict ancestors to dst and
// returns the extended slice.
func (t *Taxonomy) SelfAndAncestors(dst []item.Item, x item.Item) []item.Item {
	return t.Ancestors(append(dst, x), x)
}

// Descendants appends every strict descendant of x to dst (pre-order) and
// returns the extended slice.
func (t *Taxonomy) Descendants(dst []item.Item, x item.Item) []item.Item {
	for _, c := range t.children[x] {
		dst = append(dst, c)
		dst = t.Descendants(dst, c)
	}
	return dst
}

// ExtendTransaction computes the Cumulate transaction extension t': the
// items of txn plus all their ancestors, as a canonical (sorted, deduped)
// itemset appended to dst. This is step 2 of Cumulate ("add all ancestors of
// the items in a transaction t ... to t").
func (t *Taxonomy) ExtendTransaction(dst []item.Item, txn []item.Item) []item.Item {
	for _, x := range txn {
		dst = t.SelfAndAncestors(dst, x)
	}
	return item.Dedup(dst)
}

// Fingerprint returns a 64-bit FNV-1a hash of the parent vector — a stable
// identity for the hierarchy. Columnar partition files record the fingerprint
// of the taxonomy whose ancestor closure their block skip filters summarize;
// a scan predicate built over a different hierarchy detects the mismatch and
// never skips (txn.Predicate.Match).
func (t *Taxonomy) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, p := range t.parent {
		v := uint64(uint32(p))
		for i := 0; i < 4; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	return h
}

// String summarizes the hierarchy shape.
func (t *Taxonomy) String() string {
	return fmt.Sprintf("taxonomy{items:%d roots:%d leaves:%d maxLevel:%d}",
		len(t.parent), len(t.roots), len(t.leaves), t.maxLevel)
}
