package taxonomy

import (
	"fmt"

	"pgarm/internal/item"
)

// Builder assembles a taxonomy incrementally. Items are allocated densely in
// the order they are added; each non-root item names an already-added parent.
// The zero value is ready to use.
type Builder struct {
	parent []item.Item
}

// AddRoot allocates a new root item and returns its identifier.
func (b *Builder) AddRoot() item.Item {
	b.parent = append(b.parent, item.None)
	return item.Item(len(b.parent) - 1)
}

// AddChild allocates a new item under parent and returns its identifier.
// It panics if parent has not been allocated yet.
func (b *Builder) AddChild(parent item.Item) item.Item {
	if parent < 0 || int(parent) >= len(b.parent) {
		panic(fmt.Sprintf("taxonomy: AddChild with unknown parent %d", parent))
	}
	b.parent = append(b.parent, parent)
	return item.Item(len(b.parent) - 1)
}

// Len returns the number of items allocated so far.
func (b *Builder) Len() int { return len(b.parent) }

// Build finalizes the hierarchy.
func (b *Builder) Build() (*Taxonomy, error) { return New(b.parent) }

// MustBuild finalizes the hierarchy, panicking on structural errors.
func (b *Builder) MustBuild() *Taxonomy {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}

// Balanced constructs the regular hierarchy used by the paper's synthetic
// datasets: `roots` trees, each a complete `fanout`-ary tree, growing level
// by level across all trees until at least numItems items exist (the last
// level may be partial). The datasets in Table 5 are Balanced(30000, 30, 5)
// for R30F5, Balanced(30000, 30, 3) for R30F3 and Balanced(30000, 30, 10)
// for R30F10, yielding the level counts the paper reports (5–6, 6–7, 3–4).
func Balanced(numItems, roots, fanout int) (*Taxonomy, error) {
	if numItems < roots {
		return nil, fmt.Errorf("taxonomy: numItems %d < roots %d", numItems, roots)
	}
	if roots <= 0 || fanout <= 0 {
		return nil, fmt.Errorf("taxonomy: roots and fanout must be positive (got %d, %d)", roots, fanout)
	}
	var b Builder
	frontier := make([]item.Item, 0, roots)
	for i := 0; i < roots; i++ {
		frontier = append(frontier, b.AddRoot())
	}
	for b.Len() < numItems {
		next := make([]item.Item, 0, len(frontier)*fanout)
		for _, p := range frontier {
			for c := 0; c < fanout && b.Len() < numItems; c++ {
				next = append(next, b.AddChild(p))
			}
			if b.Len() >= numItems {
				break
			}
		}
		frontier = next
	}
	return b.Build()
}

// MustBalanced is Balanced but panics on error.
func MustBalanced(numItems, roots, fanout int) *Taxonomy {
	t, err := Balanced(numItems, roots, fanout)
	if err != nil {
		panic(err)
	}
	return t
}
