package taxonomy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pgarm/internal/item"
)

// paperTree builds the hierarchy of the paper's Figure 4/6 examples:
//
//	roots 1, 2, 3; children 4,5 under 1, 6 under 2 (paper numbering).
//
// We use 0-based ids: three trees with the same shape used across tests.
func figureTree(t *testing.T) *Taxonomy {
	t.Helper()
	// ids:      0    1    2    3  4  5  6  7  8  9  10
	// parents:  -    -    -    0  0  1  2  2  3  3  5
	parents := []item.Item{item.None, item.None, item.None, 0, 0, 1, 2, 2, 3, 3, 5}
	return MustNew(parents)
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]item.Item{0}); err == nil {
		t.Error("self-parent must fail")
	}
	if _, err := New([]item.Item{5}); err == nil {
		t.Error("out-of-range parent must fail")
	}
	if _, err := New([]item.Item{1, 0}); err == nil {
		t.Error("2-cycle must fail")
	}
	if _, err := New(nil); err != nil {
		t.Errorf("empty taxonomy should build: %v", err)
	}
}

func TestBasicRelations(t *testing.T) {
	tax := figureTree(t)
	if tax.NumItems() != 11 {
		t.Fatalf("NumItems = %d", tax.NumItems())
	}
	if got := tax.Parent(3); got != 0 {
		t.Errorf("Parent(3) = %v", got)
	}
	if got := tax.Parent(0); got != item.None {
		t.Errorf("Parent(0) = %v", got)
	}
	if got := tax.Root(10); got != 1 {
		t.Errorf("Root(10) = %v", got)
	}
	if got := tax.Root(8); got != 0 {
		t.Errorf("Root(8) = %v", got)
	}
	if got := tax.Level(10); got != 2 {
		t.Errorf("Level(10) = %d", got)
	}
	if got := tax.MaxLevel(); got != 2 {
		t.Errorf("MaxLevel = %d", got)
	}
	if !item.Equal(tax.Roots(), []item.Item{0, 1, 2}) {
		t.Errorf("Roots = %v", tax.Roots())
	}
	if !tax.IsRoot(1) || tax.IsRoot(3) {
		t.Error("IsRoot wrong")
	}
	if !tax.IsLeaf(4) || tax.IsLeaf(3) {
		t.Error("IsLeaf wrong")
	}
	leaves := tax.Leaves()
	for _, l := range leaves {
		if len(tax.Children(l)) != 0 {
			t.Errorf("leaf %v has children", l)
		}
	}
}

func TestAncestry(t *testing.T) {
	tax := figureTree(t)
	if !tax.IsAncestor(0, 8) {
		t.Error("0 is ancestor of 8 via 3")
	}
	if !tax.IsAncestor(3, 9) {
		t.Error("3 is parent of 9")
	}
	if tax.IsAncestor(8, 0) {
		t.Error("descendant is not ancestor")
	}
	if tax.IsAncestor(5, 5) {
		t.Error("no item is its own ancestor (acyclicity)")
	}
	if tax.IsAncestor(1, 8) {
		t.Error("different trees")
	}
	anc := tax.Ancestors(nil, 10)
	if !item.Equal(anc, []item.Item{5, 1}) {
		t.Errorf("Ancestors(10) = %v", anc)
	}
	sa := tax.SelfAndAncestors(nil, 10)
	if !item.Equal(sa, []item.Item{10, 5, 1}) {
		t.Errorf("SelfAndAncestors(10) = %v", sa)
	}
	if got := tax.Ancestors(nil, 0); len(got) != 0 {
		t.Errorf("root has ancestors: %v", got)
	}
}

func TestDescendants(t *testing.T) {
	tax := figureTree(t)
	d := tax.Descendants(nil, 0)
	item.Sort(d)
	if !item.Equal(d, []item.Item{3, 4, 8, 9}) {
		t.Errorf("Descendants(0) = %v", d)
	}
	if got := tax.Descendants(nil, 4); len(got) != 0 {
		t.Errorf("leaf has descendants: %v", got)
	}
}

func TestExtendTransaction(t *testing.T) {
	tax := figureTree(t)
	got := tax.ExtendTransaction(nil, []item.Item{10, 8})
	if !item.Equal(got, []item.Item{0, 1, 3, 5, 8, 10}) {
		t.Errorf("ExtendTransaction = %v", got)
	}
	// Deduplication when items share ancestors.
	got = tax.ExtendTransaction(nil, []item.Item{8, 9})
	if !item.Equal(got, []item.Item{0, 3, 8, 9}) {
		t.Errorf("ExtendTransaction shared ancestors = %v", got)
	}
}

func TestBuilder(t *testing.T) {
	var b Builder
	r := b.AddRoot()
	c1 := b.AddChild(r)
	c2 := b.AddChild(c1)
	tax := b.MustBuild()
	if tax.Root(c2) != r {
		t.Errorf("Root(%v) = %v, want %v", c2, tax.Root(c2), r)
	}
	if b.Len() != 3 {
		t.Errorf("Len = %d", b.Len())
	}
	defer func() {
		if recover() == nil {
			t.Error("AddChild with unknown parent should panic")
		}
	}()
	b.AddChild(99)
}

func TestBalancedShape(t *testing.T) {
	tax := MustBalanced(30, 3, 3)
	if tax.NumItems() != 30 {
		t.Fatalf("NumItems = %d", tax.NumItems())
	}
	if len(tax.Roots()) != 3 {
		t.Fatalf("roots = %d", len(tax.Roots()))
	}
	// Paper shapes: level count grows as fanout shrinks.
	deep := MustBalanced(30000, 30, 3)
	mid := MustBalanced(30000, 30, 5)
	shallow := MustBalanced(30000, 30, 10)
	if !(deep.MaxLevel() > mid.MaxLevel() && mid.MaxLevel() > shallow.MaxLevel()) {
		t.Errorf("level ordering wrong: F3=%d F5=%d F10=%d",
			deep.MaxLevel(), mid.MaxLevel(), shallow.MaxLevel())
	}
	// Table 5 reports levels 5-6 (F5), 6-7 (F3), 3-4 (F10); MaxLevel is
	// 0-based depth, so levels = MaxLevel+1.
	if l := mid.MaxLevel() + 1; l < 5 || l > 6 {
		t.Errorf("R30F5 levels = %d, want 5-6", l)
	}
	if l := deep.MaxLevel() + 1; l < 6 || l > 7 {
		t.Errorf("R30F3 levels = %d, want 6-7", l)
	}
	if l := shallow.MaxLevel() + 1; l < 3 || l > 4 {
		t.Errorf("R30F10 levels = %d, want 3-4", l)
	}
}

func TestBalancedValidation(t *testing.T) {
	if _, err := Balanced(2, 5, 3); err == nil {
		t.Error("fewer items than roots must fail")
	}
	if _, err := Balanced(10, 0, 3); err == nil {
		t.Error("zero roots must fail")
	}
	if _, err := Balanced(10, 2, 0); err == nil {
		t.Error("zero fanout must fail")
	}
}

// Property: in any balanced taxonomy, every item's root is a root, level
// equals the parent-chain length, and IsAncestor agrees with the chain walk.
func TestHierarchyInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tax := MustBalanced(50+rng.Intn(500), 1+rng.Intn(8), 1+rng.Intn(6))
		for i := 0; i < tax.NumItems(); i++ {
			x := item.Item(i)
			r := tax.Root(x)
			if !tax.IsRoot(r) {
				return false
			}
			chain := tax.SelfAndAncestors(nil, x)
			if chain[len(chain)-1] != r {
				return false
			}
			if int(tax.Level(x)) != len(chain)-1 {
				return false
			}
			for _, a := range chain[1:] {
				if !tax.IsAncestor(a, x) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestView(t *testing.T) {
	tax := figureTree(t)
	large := make([]bool, tax.NumItems())
	large[0] = true // root of tree 0
	large[3] = true // interior
	large[5] = true // interior tree 1
	v := NewView(tax, large, nil)
	if got := v.NearestLarge(8); got != 3 {
		t.Errorf("NearestLarge(8) = %v, want 3", got)
	}
	if got := v.NearestLarge(3); got != 3 {
		t.Errorf("NearestLarge(3) = %v (large items map to themselves)", got)
	}
	if got := v.NearestLarge(4); got != 0 {
		t.Errorf("NearestLarge(4) = %v, want root 0", got)
	}
	if got := v.NearestLarge(6); got != item.None {
		t.Errorf("NearestLarge(6) = %v, want none (tree 2 has no large items)", got)
	}
	rep := v.ReplaceWithLarge(nil, []item.Item{8, 9, 6})
	if !item.Equal(rep, []item.Item{3}) {
		t.Errorf("ReplaceWithLarge = %v, want {3} (8,9 -> 3 deduped, 6 dropped)", rep)
	}
}

func TestViewExtendPruned(t *testing.T) {
	tax := figureTree(t)
	large := make([]bool, tax.NumItems())
	for i := range large {
		large[i] = true
	}
	keep := make([]bool, tax.NumItems())
	keep[3] = true // only ancestor 3 survives pruning
	v := NewView(tax, large, keep)
	got := v.ExtendPruned(nil, []item.Item{8})
	if !item.Equal(got, []item.Item{3, 8}) {
		t.Errorf("ExtendPruned = %v, want {3,8} (ancestor 0 pruned)", got)
	}
	if v.Kept(3) != true || v.Kept(0) != false {
		t.Error("Kept flags wrong")
	}
	// nil keep = keep everything.
	all := NewView(tax, large, nil)
	got = all.ExtendPruned(nil, []item.Item{8})
	if !item.Equal(got, []item.Item{0, 3, 8}) {
		t.Errorf("ExtendPruned nil-keep = %v", got)
	}
}
