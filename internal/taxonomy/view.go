package taxonomy

import "pgarm/internal/item"

// View is a per-pass overlay on a Taxonomy capturing the two pruning
// optimizations Cumulate applies before scanning the database:
//
//  1. the "closest-to-bottom large ancestor" replacement used by the H-HPGM
//     family (small items are replaced by their nearest large ancestor, or
//     dropped when no ancestor is large), and
//  2. "delete any ancestors in T that are not present in any of the
//     candidates in C_k": transaction extension only adds ancestors that can
//     still contribute to a candidate.
//
// A View is built once per pass and is then read-only, safe for concurrent
// use by all node goroutines.
type View struct {
	tax *Taxonomy
	// nearestLarge[i] = i if i is large, else the closest large strict
	// ancestor of i, else item.None.
	nearestLarge []item.Item
	// keep[i] = true if ancestor i survives pruning (present in candidates).
	// nil means "keep everything".
	keep []bool
}

// NewView builds a view for one pass. large[i] reports whether item i is a
// large item (member of L1). keepAncestors, if non-nil, flags the ancestors
// that appear in some current candidate; extension will only add flagged
// ancestors. Pass nil to keep all ancestors.
func NewView(t *Taxonomy, large []bool, keepAncestors []bool) *View {
	v := &View{
		tax:          t,
		nearestLarge: make([]item.Item, t.NumItems()),
		keep:         keepAncestors,
	}
	// Roots first (level order not required: walk up per item, memoizing is
	// unnecessary at this scale but the parent chain is short).
	for i := range v.nearestLarge {
		x := item.Item(i)
		for x != item.None && !large[x] {
			x = t.Parent(x)
		}
		v.nearestLarge[i] = x
	}
	return v
}

// Taxonomy returns the underlying hierarchy.
func (v *View) Taxonomy() *Taxonomy { return v.tax }

// NearestLarge returns x itself if large, otherwise the closest large
// ancestor of x, otherwise item.None.
func (v *View) NearestLarge(x item.Item) item.Item { return v.nearestLarge[x] }

// ReplaceWithLarge computes the H-HPGM transaction form t' (Figure 5 line
// (8)): each item of txn is replaced by the large item among its ancestors
// closest to the bottom of the hierarchy; items with no large ancestor are
// dropped. The result is canonical (sorted, deduped), appended to dst.
func (v *View) ReplaceWithLarge(dst []item.Item, txn []item.Item) []item.Item {
	for _, x := range txn {
		if y := v.nearestLarge[x]; y != item.None {
			dst = append(dst, y)
		}
	}
	return item.Dedup(dst)
}

// Kept reports whether ancestor x survives candidate-based pruning.
func (v *View) Kept(x item.Item) bool { return v.keep == nil || v.keep[x] }

// ExtendPruned computes the Cumulate extended transaction t' while honouring
// ancestor pruning: every item of txn is kept (it may itself match a
// candidate leaf), and only ancestors flagged in keepAncestors are added.
// The result is canonical, appended to dst.
func (v *View) ExtendPruned(dst []item.Item, txn []item.Item) []item.Item {
	for _, x := range txn {
		dst = append(dst, x)
		for cur := v.tax.Parent(x); cur != item.None; cur = v.tax.Parent(cur) {
			if v.Kept(cur) {
				dst = append(dst, cur)
			}
		}
	}
	return item.Dedup(dst)
}
