package taxonomy

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the hierarchy in Graphviz DOT format, one cluster per
// tree. names, when non-nil, labels item i with names[i] (falling back to
// the numeric id). Useful for inspecting generated taxonomies and for
// documentation.
func (t *Taxonomy) WriteDOT(w io.Writer, names []string) error {
	var b strings.Builder
	b.WriteString("digraph taxonomy {\n  rankdir=TB;\n  node [shape=box];\n")
	label := func(x int) string {
		if names != nil && x < len(names) && names[x] != "" {
			return names[x]
		}
		return fmt.Sprintf("i%d", x)
	}
	for i := 0; i < t.NumItems(); i++ {
		fmt.Fprintf(&b, "  n%d [label=%q];\n", i, label(i))
	}
	for i, p := range t.parent {
		if p != -1 {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", p, i)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
