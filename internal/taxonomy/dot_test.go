package taxonomy

import (
	"strings"
	"testing"

	"pgarm/internal/item"
)

func TestWriteDOT(t *testing.T) {
	tax := MustNew([]item.Item{item.None, 0, 0})
	var sb strings.Builder
	if err := tax.WriteDOT(&sb, []string{"root", "left"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", `"root"`, `"left"`, `"i2"`, "n0 -> n1", "n0 -> n2"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}
