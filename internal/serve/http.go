package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/obs"
	"pgarm/internal/rules"
)

// ServerOptions configure the HTTP surface.
type ServerOptions struct {
	// DefaultK is the recommendation count when a query omits k (default 10).
	DefaultK int
	// MaxK caps per-request k (default 100).
	MaxK int
	// ModelPath is the snapshot file POST /reload (and SIGHUP in
	// pgarm-serve) reloads when the request names no other path.
	ModelPath string
	// Registry receives request histograms, cache hit/miss counters and the
	// live snapshot gauges; nil disables metrics (handlers still work).
	Registry *obs.Registry
}

// Server is the HTTP face of a Holder: the pgarm-serve endpoints plus their
// observability, reusable by the load bench (internal/experiment) through
// Handler().
type Server struct {
	holder *Holder
	cache  *Cache
	opts   ServerOptions

	reqSeconds  map[string]*obs.Histogram
	requests    map[string]*obs.Counter
	reqErrors   map[string]*obs.Counter
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	generation  *obs.Gauge
	reloads     *obs.Counter
	reloadFails *obs.Counter
}

// NewServer wires a server around the holder and (possibly nil) cache.
func NewServer(h *Holder, c *Cache, opts ServerOptions) *Server {
	if opts.DefaultK <= 0 {
		opts.DefaultK = 10
	}
	if opts.MaxK <= 0 {
		opts.MaxK = 100
	}
	s := &Server{
		holder:     h,
		cache:      c,
		opts:       opts,
		reqSeconds: make(map[string]*obs.Histogram),
		requests:   make(map[string]*obs.Counter),
		reqErrors:  make(map[string]*obs.Counter),
	}
	reg := opts.Registry
	for _, path := range []string{"/v1/recommend", "/v1/rules", "/reload", "/healthz"} {
		l := obs.L("path", path)
		s.reqSeconds[path] = reg.Histogram("pgarm_serve_request_seconds",
			"Request handling latency by endpoint.", nil, l)
		s.requests[path] = reg.Counter("pgarm_serve_requests_total",
			"Requests handled by endpoint.", l)
		s.reqErrors[path] = reg.Counter("pgarm_serve_request_errors_total",
			"Requests answered with a non-2xx status by endpoint.", l)
	}
	s.cacheHits = reg.Counter("pgarm_serve_cache_hits_total", "Recommendation cache hits.")
	s.cacheMisses = reg.Counter("pgarm_serve_cache_misses_total", "Recommendation cache misses.")
	s.generation = reg.Gauge("pgarm_serve_snapshot_generation", "Snapshot swaps since start (0 = none loaded).")
	s.reloads = reg.Counter("pgarm_serve_reloads_total", "Successful snapshot reloads.")
	s.reloadFails = reg.Counter("pgarm_serve_reload_failures_total", "Failed snapshot reloads (old snapshot kept serving).")
	reg.GaugeFunc("pgarm_serve_rules", "Rules in the live snapshot.", func() float64 {
		if ix := h.Get(); ix != nil {
			return float64(len(ix.Rules()))
		}
		return 0
	})
	reg.GaugeFunc("pgarm_serve_cache_entries", "Entries currently cached.", func() float64 {
		return float64(c.Len())
	})
	reg.GaugeFunc("pgarm_snapshot_age_seconds", "Age of the live snapshot (now - created; -1 = none loaded).", s.snapshotAge)
	s.generation.Set(h.Generation())
	return s
}

// Holder returns the server's holder (the bench swaps through it).
func (s *Server) Holder() *Holder { return s.holder }

// ReloadFile loads a snapshot file, builds its index off to the side and
// swaps it in. On any error the previous snapshot keeps serving.
func (s *Server) ReloadFile(path string) error {
	if path == "" {
		path = s.opts.ModelPath
	}
	if path == "" {
		s.reloadFails.Inc()
		return fmt.Errorf("serve: no model path configured")
	}
	ix, err := LoadFile(path)
	if err != nil {
		s.reloadFails.Inc()
		return err
	}
	s.holder.Swap(ix)
	s.generation.Set(s.holder.Generation())
	s.reloads.Inc()
	return nil
}

// Handler returns the full endpoint mux: POST /v1/recommend, GET /v1/rules,
// POST /reload, GET /healthz, GET /metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/recommend", s.instrument("/v1/recommend", s.handleRecommend))
	mux.HandleFunc("/v1/rules", s.instrument("/v1/rules", s.handleRules))
	mux.HandleFunc("/reload", s.instrument("/reload", s.handleReload))
	mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.opts.Registry.WritePrometheus(w)
	})
	return mux
}

// statusWriter records the status code for the error counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the per-endpoint histogram and counters.
func (s *Server) instrument(path string, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		fn(sw, r)
		s.reqSeconds[path].Observe(time.Since(start).Seconds())
		s.requests[path].Inc()
		if sw.code >= 300 {
			s.reqErrors[path].Inc()
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// RecommendRequest is the POST /v1/recommend body.
type RecommendRequest struct {
	// Basket is the query basket; order and duplicates are irrelevant.
	Basket []item.Item `json:"basket"`
	// K bounds the number of recommendations (0 = server default).
	K int `json:"k"`
	// NoCache bypasses the result cache for this request (the load bench's
	// cache-off arm; also handy when debugging).
	NoCache bool `json:"no_cache"`
}

// RecommendResponse is the POST /v1/recommend answer.
type RecommendResponse struct {
	Model           string           `json:"model"`
	Generation      int64            `json:"generation"`
	Basket          []item.Item      `json:"basket"` // normalized form used for the query
	Recommendations []Recommendation `json:"recommendations"`
	Cached          bool             `json:"cached"`
}

// cacheKey builds the cache key for a normalized basket query: snapshot
// identity (version + generation) and k, then the canonical basket bytes.
func cacheKey(ix *Index, gen int64, k int, basket []item.Item) string {
	return ix.Version() + "|" + strconv.FormatInt(gen, 10) + "|" + strconv.Itoa(k) + "|" + itemset.Key(basket)
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req RecommendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Basket) == 0 {
		writeError(w, http.StatusBadRequest, "empty basket")
		return
	}
	k := req.K
	if k <= 0 {
		k = s.opts.DefaultK
	}
	if k > s.opts.MaxK {
		k = s.opts.MaxK
	}
	// Pin the snapshot once; the whole request is answered by this index
	// even if a reload swaps the holder mid-flight.
	ix := s.holder.Get()
	if ix == nil {
		writeError(w, http.StatusServiceUnavailable, "no model loaded")
		return
	}
	gen := s.holder.Generation()
	basket := ix.Normalize(req.Basket)
	resp := RecommendResponse{Model: ix.Version(), Generation: gen, Basket: basket}

	key := ""
	if s.cache != nil && !req.NoCache {
		key = cacheKey(ix, gen, k, basket)
		if recs, ok := s.cache.Get(key); ok {
			s.cacheHits.Inc()
			resp.Recommendations = recs
			resp.Cached = true
			writeJSON(w, http.StatusOK, &resp)
			return
		}
		s.cacheMisses.Inc()
	}
	recs := ix.Recommend(basket, k)
	if recs == nil {
		recs = []Recommendation{}
	}
	if key != "" {
		s.cache.Put(key, recs)
	}
	resp.Recommendations = recs
	writeJSON(w, http.StatusOK, &resp)
}

// ruleJSON is one rule of the GET /v1/rules listing.
type ruleJSON struct {
	ID         int         `json:"id"`
	Antecedent []item.Item `json:"antecedent"`
	Consequent []item.Item `json:"consequent"`
	Support    float64     `json:"support"`
	Confidence float64     `json:"confidence"`
	Count      int64       `json:"count"`
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	ix := s.holder.Get()
	if ix == nil {
		writeError(w, http.StatusServiceUnavailable, "no model loaded")
		return
	}
	q := r.URL.Query()
	limit, offset := 100, 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		limit = n
	}
	if v := q.Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad offset %q", v)
			return
		}
		offset = n
	}

	all := ix.Rules()
	pick := func(id int) rules.Rule { return all[id] }
	var ids []int
	if v := q.Get("root"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad root %q", v)
			return
		}
		for _, id := range ix.RulesByRoot(item.Item(n)) {
			ids = append(ids, int(id))
		}
	} else {
		ids = make([]int, len(all))
		for i := range ids {
			ids[i] = i
		}
	}

	total := len(ids)
	if offset > total {
		offset = total
	}
	end := offset + limit
	if end > total {
		end = total
	}
	out := struct {
		Model string     `json:"model"`
		Total int        `json:"total"`
		Rules []ruleJSON `json:"rules"`
	}{Model: ix.Version(), Total: total, Rules: []ruleJSON{}}
	for _, id := range ids[offset:end] {
		r := pick(id)
		out.Rules = append(out.Rules, ruleJSON{
			ID:         id,
			Antecedent: r.Antecedent,
			Consequent: r.Consequent,
			Support:    r.Support,
			Confidence: r.Confidence,
			Count:      r.Count,
		})
	}
	writeJSON(w, http.StatusOK, &out)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	path := r.URL.Query().Get("model")
	if err := s.ReloadFile(path); err != nil {
		writeError(w, http.StatusInternalServerError, "reload failed (previous snapshot still serving): %v", err)
		return
	}
	ix := s.holder.Get()
	writeJSON(w, http.StatusOK, map[string]any{
		"model":      ix.Version(),
		"generation": s.holder.Generation(),
		"rules":      len(ix.Rules()),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ix := s.holder.Get()
	if ix == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ok": false, "error": "no model loaded"})
		return
	}
	meta := ix.Meta()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":         true,
		"model":      ix.Version(),
		"checksum":   ix.Version(),
		"generation": s.holder.Generation(),
		"rules":      len(ix.Rules()),
		"items":      ix.Taxonomy().NumItems(),
		"dataset":    meta.Dataset,
		"algorithm":  meta.Algorithm,
		"created":    meta.CreatedUnix,
		// age_seconds is the staleness a streaming follower keeps bounded:
		// now minus the snapshot's creation stamp (clamped at clock skew).
		"age_seconds": s.snapshotAge(),
	})
}

// snapshotAge returns the live snapshot's age in seconds, or -1 when no
// model is loaded. Negative clock skew clamps to 0.
func (s *Server) snapshotAge() float64 {
	ix := s.holder.Get()
	if ix == nil {
		return -1
	}
	age := time.Since(time.Unix(ix.Meta().CreatedUnix, 0)).Seconds()
	if age < 0 {
		age = 0
	}
	return age
}
