package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pgarm/internal/item"
	"pgarm/internal/model"
	"pgarm/internal/obs"
	"pgarm/internal/rules"
)

// writeSnapshot persists a one-rule model whose consequent identifies the
// snapshot, returning the path and the index version (checksum hex).
func writeSnapshot(t *testing.T, dir, name string, cons item.Item, conf float64) (path, version string) {
	t.Helper()
	m := &model.Model{
		Meta:     model.Meta{Dataset: "test", Algorithm: "Cumulate", NumTxns: 100, CreatedUnix: 1},
		Taxonomy: testTax(),
		Rules: []rules.Rule{
			rule([]item.Item{shirts}, []item.Item{cons}, conf, 0.1, 10),
		},
	}
	path = filepath.Join(dir, name)
	if err := model.WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	ix, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, ix.Version()
}

func postRecommend(t *testing.T, client *http.Client, url string, req RecommendRequest) (*RecommendResponse, int) {
	t.Helper()
	body, _ := json.Marshal(&req)
	resp, err := client.Post(url+"/v1/recommend", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("recommend: %v", err)
	}
	defer resp.Body.Close()
	var out RecommendResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("recommend decode: %v", err)
		}
	}
	return &out, resp.StatusCode
}

func TestHTTPEndToEnd(t *testing.T) {
	dir := t.TempDir()
	path, version := writeSnapshot(t, dir, "m.pgarm", shoes, 0.8)
	ix, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv := NewServer(NewHolder(ix), NewCache(64), ServerOptions{ModelPath: path, Registry: reg})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// healthz reports the loaded snapshot.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(hb), version) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, hb)
	}

	// A basket query answers taxonomy-aware via HTTP.
	out, code := postRecommend(t, ts.Client(), ts.URL, RecommendRequest{Basket: []item.Item{shirts}, K: 5})
	if code != http.StatusOK || len(out.Recommendations) != 1 || !item.Equal(out.Recommendations[0].Items, []item.Item{shoes}) {
		t.Fatalf("recommend: %d %+v", code, out)
	}
	if out.Model != version || out.Cached {
		t.Fatalf("first query: model %q cached %v", out.Model, out.Cached)
	}

	// Same basket, different order/dups: must hit the cache (normalization
	// is part of the key).
	out2, _ := postRecommend(t, ts.Client(), ts.URL, RecommendRequest{Basket: []item.Item{shirts, shirts}, K: 5})
	if !out2.Cached {
		t.Fatal("equivalent basket missed the cache")
	}

	// Rules listing.
	resp, err = http.Get(ts.URL + "/v1/rules?limit=10")
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(rb), `"total":1`) {
		t.Fatalf("rules: %d %s", resp.StatusCode, rb)
	}
	// Root-scoped listing: the antecedent lives in the clothes tree.
	resp, err = http.Get(ts.URL + fmt.Sprintf("/v1/rules?root=%d", clothes))
	if err != nil {
		t.Fatal(err)
	}
	rb, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(rb), `"total":1`) {
		t.Fatalf("root-scoped rules: %s", rb)
	}

	// Bad requests.
	if _, code := postRecommend(t, ts.Client(), ts.URL, RecommendRequest{}); code != http.StatusBadRequest {
		t.Fatalf("empty basket: want 400, got %d", code)
	}

	// Metrics expose the request histogram and cache counters.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"pgarm_serve_request_seconds_bucket",
		"pgarm_serve_cache_hits_total 1",
		"pgarm_serve_cache_misses_total 1",
		"pgarm_serve_snapshot_generation 1",
		"pgarm_serve_rules 1",
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestHTTPServesNothingBeforeLoad(t *testing.T) {
	srv := NewServer(NewHolder(nil), nil, ServerOptions{Registry: obs.NewRegistry()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	_, code := postRecommend(t, ts.Client(), ts.URL, RecommendRequest{Basket: []item.Item{1}})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("want 503 before load, got %d", code)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz before load: want 503, got %d", resp.StatusCode)
	}
}

func TestReloadFailureKeepsServing(t *testing.T) {
	dir := t.TempDir()
	path, version := writeSnapshot(t, dir, "m.pgarm", shoes, 0.8)
	ix, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv := NewServer(NewHolder(ix), nil, ServerOptions{ModelPath: path, Registry: reg})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Corrupt snapshot on disk: reload must fail loudly...
	bad := filepath.Join(dir, "bad.pgarm")
	if err := os.WriteFile(bad, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/reload?model="+bad, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("reload of corrupt snapshot: want 500, got %d", resp.StatusCode)
	}
	// ...while the old snapshot keeps answering.
	out, code := postRecommend(t, ts.Client(), ts.URL, RecommendRequest{Basket: []item.Item{shirts}})
	if code != http.StatusOK || out.Model != version {
		t.Fatalf("old snapshot gone after failed reload: %d %+v", code, out)
	}
}

// TestHotSwapZeroFailures is the zero-downtime reload contract: concurrent
// clients hammer /v1/recommend while the model file is swapped repeatedly;
// every response must be a 200 whose recommendations are consistent with the
// snapshot version it claims to come from. Run with -race to also prove the
// readers never observe a torn index.
func TestHotSwapZeroFailures(t *testing.T) {
	dir := t.TempDir()
	pathA, versionA := writeSnapshot(t, dir, "a.pgarm", shoes, 0.8)
	pathB, versionB := writeSnapshot(t, dir, "b.pgarm", boots, 0.9)
	if versionA == versionB {
		t.Fatal("snapshots not distinct")
	}
	wantByVersion := map[string]item.Item{versionA: shoes, versionB: boots}

	ix, err := LoadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(NewHolder(ix), NewCache(128), ServerOptions{Registry: obs.NewRegistry()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients = 8
	var (
		stop     atomic.Bool
		requests atomic.Int64
		failures atomic.Int64
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; !stop.Load(); i++ {
				// Alternate cached and uncached paths under the swap.
				req := RecommendRequest{Basket: []item.Item{shirts}, K: 3, NoCache: i%2 == 0}
				body, _ := json.Marshal(&req)
				resp, err := client.Post(ts.URL+"/v1/recommend", "application/json", bytes.NewReader(body))
				if err != nil {
					failures.Add(1)
					continue
				}
				var out RecommendResponse
				derr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				requests.Add(1)
				if resp.StatusCode != http.StatusOK || derr != nil {
					failures.Add(1)
					continue
				}
				want, known := wantByVersion[out.Model]
				if !known || len(out.Recommendations) != 1 || !item.Equal(out.Recommendations[0].Items, []item.Item{want}) {
					t.Errorf("torn response: model %q -> %+v", out.Model, out.Recommendations)
					failures.Add(1)
				}
			}
		}(c)
	}

	// Swap back and forth while the clients run.
	deadline := time.Now().Add(600 * time.Millisecond)
	paths := []string{pathB, pathA}
	swaps := 0
	for time.Now().Before(deadline) {
		p := paths[swaps%2]
		resp, err := http.Post(ts.URL+"/reload?model="+p, "", nil)
		if err != nil {
			t.Errorf("reload: %v", err)
			break
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("reload returned %d", resp.StatusCode)
		}
		swaps++
		time.Sleep(5 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	if swaps < 10 {
		t.Fatalf("only %d swaps executed", swaps)
	}
	if requests.Load() == 0 {
		t.Fatal("no requests executed")
	}
	if failures.Load() != 0 {
		t.Fatalf("%d of %d in-flight requests failed across %d hot swaps", failures.Load(), requests.Load(), swaps)
	}
	t.Logf("%d requests over %d hot swaps, 0 failures", requests.Load(), swaps)
}

// TestHealthzFreshnessFields pins the /healthz freshness contract the
// streaming pipeline's monitoring relies on: generation, checksum and
// age_seconds in the JSON body, and the snapshot-age gauge plus
// reload-failure counter on /metrics.
func TestHealthzFreshnessFields(t *testing.T) {
	dir := t.TempDir()
	path, version := writeSnapshot(t, dir, "m.pgarm", shoes, 0.8)
	ix, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(NewHolder(ix), nil, ServerOptions{ModelPath: path, Registry: obs.NewRegistry()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		OK         bool    `json:"ok"`
		Generation int64   `json:"generation"`
		Checksum   string  `json:"checksum"`
		AgeSeconds float64 `json:"age_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !hz.OK || hz.Generation != 1 {
		t.Fatalf("healthz: %+v", hz)
	}
	if hz.Checksum != version {
		t.Fatalf("checksum %q, want %q", hz.Checksum, version)
	}
	// The test snapshot is created with CreatedUnix=1, so its age is huge —
	// the point is that the field is present, non-negative and derived from
	// the snapshot's creation time.
	if hz.AgeSeconds <= 0 {
		t.Fatalf("age_seconds = %v, want > 0 for a CreatedUnix=1 snapshot", hz.AgeSeconds)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"pgarm_snapshot_age_seconds",
		"pgarm_serve_reload_failures_total 0",
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// With no snapshot loaded the gauge reports -1, distinguishable from
	// "very fresh".
	empty := NewServer(NewHolder(nil), nil, ServerOptions{Registry: obs.NewRegistry()})
	if got := empty.snapshotAge(); got != -1 {
		t.Fatalf("snapshotAge with no model = %v, want -1", got)
	}
}
