package serve

import (
	"container/list"
	"sync"
)

// numShards spreads cache lock contention across independent LRUs; 16 keeps
// the per-shard mutex cold at the concurrency a single serving process sees.
const numShards = 16

// Cache is a sharded LRU over normalized basket queries. Keys embed the
// snapshot generation (see Server.cacheKey), so a hot swap implicitly
// invalidates every cached result without a stop-the-world flush — stale
// entries simply stop being looked up and age out of the LRU.
//
// A nil *Cache is valid and disables caching (every Get misses, Put is a
// no-op), so callers need no branches for the cache-off configuration.
type Cache struct {
	shards [numShards]cacheShard
	cap    int // per-shard capacity
}

type cacheShard struct {
	mu  sync.Mutex
	lru *list.List // front = most recent; values are *cacheEntry
	m   map[string]*list.Element
}

type cacheEntry struct {
	key string
	val []Recommendation
}

// NewCache builds a cache holding roughly capacity entries in total.
// capacity <= 0 returns nil (caching disabled).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	perShard := (capacity + numShards - 1) / numShards
	c := &Cache{cap: perShard}
	for i := range c.shards {
		c.shards[i].lru = list.New()
		c.shards[i].m = make(map[string]*list.Element)
	}
	return c
}

// fnv1a hashes a key for shard selection.
func fnv1a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

func (c *Cache) shard(key string) *cacheShard {
	return &c.shards[fnv1a(key)%numShards]
}

// Get returns the cached recommendations for key and whether they were
// present, promoting the entry to most-recently-used.
func (c *Cache) Get(key string) ([]Recommendation, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[key]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores the recommendations for key, evicting the least recently used
// entry of the shard when full. The caller must not mutate val afterwards.
func (c *Cache) Put(key string, val []Recommendation) {
	if c == nil {
		return
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		el.Value.(*cacheEntry).val = val
		s.lru.MoveToFront(el)
		return
	}
	s.m[key] = s.lru.PushFront(&cacheEntry{key: key, val: val})
	if s.lru.Len() > c.cap {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.m, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the total number of cached entries (0 on nil).
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}
