package serve

import (
	"testing"

	"pgarm/internal/item"
	"pgarm/internal/model"
	"pgarm/internal/rules"
	"pgarm/internal/taxonomy"
)

// The SA95 example hierarchy:
//
//	clothes(0)            footwear(1)
//	├── outerwear(2)      ├── shoes(4)
//	│   ├── jackets(5)    └── hiking boots(7)
//	│   └── ski pants(6)
//	└── shirts(3)
const (
	clothes   = item.Item(0)
	footwear  = item.Item(1)
	outerwear = item.Item(2)
	shirts    = item.Item(3)
	shoes     = item.Item(4)
	jackets   = item.Item(5)
	skiPants  = item.Item(6)
	boots     = item.Item(7)
)

func testTax() *taxonomy.Taxonomy {
	return taxonomy.MustNew([]item.Item{item.None, item.None, 0, 0, 1, 2, 2, 1})
}

// rule builds a canonical test rule.
func rule(ante, cons []item.Item, conf, sup float64, count int64) rules.Rule {
	item.Sort(ante)
	item.Sort(cons)
	return rules.Rule{Antecedent: ante, Consequent: cons, Confidence: conf, Support: sup, Count: count}
}

func testIndex(t *testing.T, rs ...rules.Rule) *Index {
	t.Helper()
	m := &model.Model{
		Meta:     model.Meta{Dataset: "test", Algorithm: "Cumulate", NumTxns: 100},
		Taxonomy: testTax(),
		Rules:    rs,
	}
	ix, err := NewIndex(m, "v-test")
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestRecommendMatchesViaAncestors(t *testing.T) {
	// Antecedent is the interior category outerwear; the basket holds only
	// the leaf jackets. The ancestor closure must bridge them.
	ix := testIndex(t,
		rule([]item.Item{outerwear}, []item.Item{boots}, 0.8, 0.1, 10),
		rule([]item.Item{shirts}, []item.Item{shoes}, 0.9, 0.1, 12),
	)
	recs := ix.Recommend(ix.Normalize([]item.Item{jackets}), 5)
	if len(recs) != 1 {
		t.Fatalf("want 1 recommendation, got %v", recs)
	}
	if !item.Equal(recs[0].Items, []item.Item{boots}) {
		t.Fatalf("want boots, got %v", recs[0].Items)
	}

	// The closure is upward only: a basket holding the *category* outerwear
	// must not match a leaf antecedent.
	ix2 := testIndex(t, rule([]item.Item{jackets}, []item.Item{boots}, 0.8, 0.1, 10))
	if recs := ix2.Recommend(ix2.Normalize([]item.Item{outerwear}), 5); len(recs) != 0 {
		t.Fatalf("category basket matched leaf antecedent: %v", recs)
	}
}

func TestRecommendMultiItemAntecedent(t *testing.T) {
	// Antecedent {outerwear, shoes} needs both sides satisfied, across two
	// trees, both via ancestors.
	ix := testIndex(t,
		rule([]item.Item{outerwear, shoes}, []item.Item{shirts}, 0.7, 0.05, 7),
	)
	if recs := ix.Recommend(ix.Normalize([]item.Item{skiPants, shoes}), 3); len(recs) != 1 {
		t.Fatalf("want 1 recommendation, got %v", recs)
	}
	// Half-satisfied antecedent must not fire.
	if recs := ix.Recommend(ix.Normalize([]item.Item{skiPants}), 3); len(recs) != 0 {
		t.Fatalf("half-satisfied antecedent fired: %v", recs)
	}
}

func TestRecommendAncestorDedup(t *testing.T) {
	// Best rule recommends the leaf boots; the next two recommend footwear
	// (its ancestor) and boots again — both must be suppressed, letting the
	// unrelated shirts rule through.
	ix := testIndex(t,
		rule([]item.Item{jackets}, []item.Item{boots}, 0.9, 0.2, 20),
		rule([]item.Item{outerwear}, []item.Item{footwear}, 0.8, 0.3, 30),
		rule([]item.Item{clothes}, []item.Item{boots}, 0.7, 0.3, 30),
		rule([]item.Item{clothes}, []item.Item{shirts}, 0.6, 0.4, 40),
	)
	recs := ix.Recommend(ix.Normalize([]item.Item{jackets}), 10)
	if len(recs) != 2 {
		t.Fatalf("want 2 recommendations after ancestor dedup, got %v", recs)
	}
	if !item.Equal(recs[0].Items, []item.Item{boots}) || !item.Equal(recs[1].Items, []item.Item{shirts}) {
		t.Fatalf("want [boots shirts], got %v", recs)
	}
}

func TestRecommendSkipsConsequentsAlreadyInBasket(t *testing.T) {
	// The consequent outerwear is an ancestor of the basket item: nothing
	// new, must not be recommended.
	ix := testIndex(t,
		rule([]item.Item{shirts}, []item.Item{outerwear}, 0.9, 0.1, 10),
	)
	if recs := ix.Recommend(ix.Normalize([]item.Item{shirts, jackets}), 5); len(recs) != 0 {
		t.Fatalf("recommended something the basket already implies: %v", recs)
	}
}

func TestRecommendRankingAndTopK(t *testing.T) {
	ix := testIndex(t,
		rule([]item.Item{shirts}, []item.Item{shoes}, 0.5, 0.1, 10),
		rule([]item.Item{shirts}, []item.Item{skiPants}, 0.9, 0.1, 10),
		rule([]item.Item{shirts}, []item.Item{jackets}, 0.7, 0.1, 10),
	)
	recs := ix.Recommend(ix.Normalize([]item.Item{shirts}), 2)
	if len(recs) != 2 {
		t.Fatalf("want k=2 recommendations, got %v", recs)
	}
	if !item.Equal(recs[0].Items, []item.Item{skiPants}) || recs[0].Confidence != 0.9 {
		t.Fatalf("rank 1 wrong: %+v", recs[0])
	}
	if !item.Equal(recs[1].Items, []item.Item{jackets}) || recs[1].Confidence != 0.7 {
		t.Fatalf("rank 2 wrong: %+v", recs[1])
	}
}

func TestNormalizeOrderDupAndRangeInsensitive(t *testing.T) {
	ix := testIndex(t, rule([]item.Item{shirts}, []item.Item{shoes}, 0.5, 0.1, 10))
	a := ix.Normalize([]item.Item{jackets, shirts, shirts, 99, -3})
	b := ix.Normalize([]item.Item{shirts, jackets})
	if !item.Equal(a, b) {
		t.Fatalf("normalization not canonical: %v vs %v", a, b)
	}
	if len(ix.Normalize([]item.Item{1000, item.None})) != 0 {
		t.Fatal("out-of-range items survived normalization")
	}
}

func TestRulesByRootBuckets(t *testing.T) {
	ix := testIndex(t,
		rule([]item.Item{jackets}, []item.Item{boots}, 0.9, 0.2, 20),         // antecedent in clothes tree
		rule([]item.Item{shoes}, []item.Item{shirts}, 0.8, 0.2, 20),          // antecedent in footwear tree
		rule([]item.Item{jackets, shoes}, []item.Item{shirts}, 0.7, 0.2, 20), // both trees
	)
	if got := ix.RulesByRoot(clothes); len(got) != 2 {
		t.Fatalf("clothes bucket: want 2 rules, got %v", got)
	}
	if got := ix.RulesByRoot(footwear); len(got) != 2 {
		t.Fatalf("footwear bucket: want 2 rules, got %v", got)
	}
	if got := ix.RulesByRoot(shirts); got != nil {
		t.Fatalf("non-root bucket should be empty, got %v", got)
	}
}

func TestNewIndexRejectsInvalidModel(t *testing.T) {
	m := &model.Model{
		Taxonomy: testTax(),
		Rules:    []rules.Rule{{Antecedent: []item.Item{55}, Consequent: []item.Item{1}}},
	}
	if _, err := NewIndex(m, "v"); err == nil {
		t.Fatal("NewIndex accepted out-of-universe rule")
	}
	if _, err := NewIndex(nil, "v"); err == nil {
		t.Fatal("NewIndex accepted nil model")
	}
}

func TestRecommendEdgeCases(t *testing.T) {
	ix := testIndex(t, rule([]item.Item{shirts}, []item.Item{shoes}, 0.5, 0.1, 10))
	if recs := ix.Recommend(nil, 5); recs != nil {
		t.Fatalf("empty basket returned %v", recs)
	}
	if recs := ix.Recommend([]item.Item{shirts}, 0); recs != nil {
		t.Fatalf("k=0 returned %v", recs)
	}
	empty := testIndex(t)
	if recs := empty.Recommend([]item.Item{shirts}, 5); recs != nil {
		t.Fatalf("rule-less index returned %v", recs)
	}
}
