package serve

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheHitMissEvict(t *testing.T) {
	// Capacity 16 over 16 shards = one entry per shard: a second key landing
	// in the same shard must evict the first.
	c := NewCache(16)
	v := []Recommendation{{Rule: 7}}
	c.Put("a", v)
	got, ok := c.Get("a")
	if !ok || len(got) != 1 || got[0].Rule != 7 {
		t.Fatalf("Get after Put: %v %v", got, ok)
	}
	if _, ok := c.Get("missing"); ok {
		t.Fatal("hit on missing key")
	}
	// Fill well past capacity; size must stay bounded by ~capacity.
	for i := 0; i < 1000; i++ {
		c.Put(fmt.Sprintf("k%d", i), v)
	}
	if n := c.Len(); n > 16 {
		t.Fatalf("cache grew past capacity: %d entries", n)
	}
}

func TestCacheLRUPromotion(t *testing.T) {
	// Single shard (capacity rounds to 1 per shard); use keys that land in
	// the same shard by construction: find two such keys, touch the first,
	// insert a third — the untouched second must be the victim.
	c := NewCache(numShards * 2) // 2 per shard
	shardOf := func(k string) int { return int(fnv1a(k) % numShards) }
	keys := []string{}
	for i := 0; len(keys) < 3; i++ {
		k := fmt.Sprintf("key-%d", i)
		if shardOf(k) == 0 {
			keys = append(keys, k)
		}
	}
	v := []Recommendation{}
	c.Put(keys[0], v)
	c.Put(keys[1], v)
	c.Get(keys[0]) // promote
	c.Put(keys[2], v)
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := c.Get(keys[1]); ok {
		t.Fatal("LRU entry survived eviction")
	}
}

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache
	if c != NewCache(0) {
		t.Fatal("NewCache(0) should be nil")
	}
	c.Put("k", nil)
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache hit")
	}
	if c.Len() != 0 {
		t.Fatal("nil cache has length")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("k%d", (g*31+i)%300)
				if i%3 == 0 {
					c.Put(k, []Recommendation{{Rule: i}})
				} else {
					c.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 256+numShards {
		t.Fatalf("cache overgrew: %d", c.Len())
	}
}
