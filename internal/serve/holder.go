package serve

import "sync/atomic"

// Holder publishes the live Index to concurrent readers and lets a reloader
// swap in a replacement atomically. Readers pin the index once per request
// (Get) and keep using that pointer for the whole request; because an Index
// is immutable, in-flight requests against the old snapshot finish untouched
// while new requests see the new one — the zero-downtime reload contract.
type Holder struct {
	p   atomic.Pointer[Index]
	gen atomic.Int64
}

// NewHolder returns a holder serving ix (may be nil until the first Swap).
func NewHolder(ix *Index) *Holder {
	h := &Holder{}
	if ix != nil {
		h.Swap(ix)
	}
	return h
}

// Get returns the live index, or nil when nothing is loaded yet.
func (h *Holder) Get() *Index { return h.p.Load() }

// Swap atomically publishes ix and returns the previous index. Each swap
// bumps the generation, which participates in cache keys so stale cached
// results can never be served against a new snapshot.
func (h *Holder) Swap(ix *Index) *Index {
	old := h.p.Swap(ix)
	h.gen.Add(1)
	return old
}

// Generation returns the number of swaps so far (0 = nothing loaded).
func (h *Holder) Generation() int64 { return h.gen.Load() }
