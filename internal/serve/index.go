// Package serve is the rule-serving side of the repo: an immutable in-memory
// index over a mined model snapshot (internal/model) that answers basket →
// top-K recommendation queries with taxonomy awareness, an atomic hot-swap
// holder so a running server can reload a fresh snapshot with zero downtime,
// a sharded LRU cache over normalized baskets, and the HTTP surface
// pgarm-serve exposes.
//
// Taxonomy awareness means two things at query time. First, a rule fires
// when the basket satisfies its antecedent *at any level of the hierarchy*:
// a basket holding leaf item "jacket" matches a rule whose antecedent is the
// interior category "outerwear", because the basket is extended with the
// ancestor closure of its items (the same transform Cumulate applies while
// mining). Second, the ranked recommendations are ancestor-deduped: once
// "jacket" is recommended, neither "outerwear" nor any other item on its
// root path can be recommended below it — a generalized rule and its
// specialization carry the same actionable signal once.
package serve

import (
	"fmt"
	"sort"

	"pgarm/internal/item"
	"pgarm/internal/model"
	"pgarm/internal/rules"
	"pgarm/internal/taxonomy"
)

// Recommendation is one ranked answer to a basket query.
type Recommendation struct {
	// Items is the recommended consequent (one or more items).
	Items []item.Item `json:"items"`
	// Confidence and Support are the source rule's measures.
	Confidence float64 `json:"confidence"`
	Support    float64 `json:"support"`
	// Rule is the index of the source rule in the snapshot's rule list
	// (stable across queries against the same snapshot).
	Rule int `json:"rule"`
}

// Index is an immutable, query-ready view of one model snapshot. All methods
// are safe for unbounded concurrent use; the hot-swap holder relies on that
// immutability — an Index is never mutated after NewIndex returns.
type Index struct {
	tax   *taxonomy.Taxonomy
	rules []rules.Rule
	meta  model.Meta

	// Version identifies the snapshot (hex of the body checksum when loaded
	// from a file; free-form otherwise). It participates in cache keys.
	version string

	// byItem buckets rule ids by each antecedent item. Because baskets are
	// ancestor-extended before lookup, bucketing by the *literal* antecedent
	// items suffices to find every rule the extended basket can satisfy.
	byItem map[item.Item][]int32
	// byRoot buckets rule ids by the root of each antecedent item — the
	// coarse grain used for taxonomy-scoped rule listing (GET /v1/rules
	// ?root=) and for answering "which trees does this model speak about".
	byRoot map[item.Item][]int32
}

// NewIndex builds the immutable index from a decoded model. The model must
// validate (NewIndex re-checks, so a hand-built model cannot corrupt a
// serving process), and rule order is preserved: rule ids reported in
// recommendations index m.Rules.
func NewIndex(m *model.Model, version string) (*Index, error) {
	if m == nil {
		return nil, fmt.Errorf("serve: nil model")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	ix := &Index{
		tax:     m.Taxonomy,
		rules:   m.Rules,
		meta:    m.Meta,
		version: version,
		byItem:  make(map[item.Item][]int32),
		byRoot:  make(map[item.Item][]int32),
	}
	for id, r := range m.Rules {
		roots := make([]item.Item, 0, len(r.Antecedent))
		for _, x := range r.Antecedent {
			ix.byItem[x] = append(ix.byItem[x], int32(id))
			roots = append(roots, m.Taxonomy.Root(x))
		}
		for _, root := range item.Dedup(roots) {
			ix.byRoot[root] = append(ix.byRoot[root], int32(id))
		}
	}
	return ix, nil
}

// Version returns the snapshot identity string.
func (ix *Index) Version() string { return ix.version }

// Meta returns the snapshot's generation metadata.
func (ix *Index) Meta() model.Meta { return ix.meta }

// Rules returns the full rule list (shared slice; do not modify).
func (ix *Index) Rules() []rules.Rule { return ix.rules }

// Taxonomy returns the hierarchy the index answers over.
func (ix *Index) Taxonomy() *taxonomy.Taxonomy { return ix.tax }

// RulesByRoot returns the ids of rules whose antecedent touches the tree
// rooted at root, in rule order. Shared slice; do not modify.
func (ix *Index) RulesByRoot(root item.Item) []int32 { return ix.byRoot[root] }

// Normalize canonicalizes a basket against this index's universe: sort,
// dedup, drop out-of-range items. The returned slice is fresh. Order and
// duplication of the input never affect query results — the cache keys on
// the normalized form.
func (ix *Index) Normalize(basket []item.Item) []item.Item {
	out := make([]item.Item, 0, len(basket))
	n := item.Item(ix.tax.NumItems())
	for _, x := range basket {
		if x >= 0 && x < n {
			out = append(out, x)
		}
	}
	return item.Dedup(out)
}

// Recommend answers a basket query: the top-k rules whose antecedents are
// satisfied by the basket's items or their ancestors, ranked by confidence
// then support, with consequents deduped against the basket and against each
// other along ancestor paths. basket must be normalized (Normalize); k <= 0
// returns nil.
func (ix *Index) Recommend(basket []item.Item, k int) []Recommendation {
	if k <= 0 || len(basket) == 0 || len(ix.rules) == 0 {
		return nil
	}
	// Extend the basket with the ancestor closure of its items — the mining
	// transform, applied at query time.
	extended := ix.tax.ExtendTransaction(make([]item.Item, 0, 4*len(basket)), basket)

	// Gather candidate rules from the per-item buckets of every extended
	// item, deduped by rule id.
	seen := make(map[int32]struct{})
	var cands []int32
	for _, x := range extended {
		for _, id := range ix.byItem[x] {
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			cands = append(cands, id)
		}
	}
	// Keep rules whose whole antecedent is inside the extended basket and
	// whose consequent still adds something the (extended) basket lacks.
	matched := cands[:0]
	for _, id := range cands {
		r := &ix.rules[id]
		if !item.ContainsAll(extended, r.Antecedent) {
			continue
		}
		novel := false
		for _, y := range r.Consequent {
			if !item.Contains(extended, y) {
				novel = true
				break
			}
		}
		if novel {
			matched = append(matched, id)
		}
	}
	if len(matched) == 0 {
		return nil
	}
	// Rank exactly like rules.Derive orders its output: confidence, then
	// absolute support count, then rule id for determinism.
	sort.Slice(matched, func(a, b int) bool {
		ra, rb := &ix.rules[matched[a]], &ix.rules[matched[b]]
		if ra.Confidence != rb.Confidence {
			return ra.Confidence > rb.Confidence
		}
		if ra.Count != rb.Count {
			return ra.Count > rb.Count
		}
		return matched[a] < matched[b]
	})

	// Greedy top-k selection with ancestor dedup: a rule is skipped when any
	// item of its consequent lies on the root path of (or below) an already
	// selected recommendation — never recommend both an item and its
	// ancestor, and never recommend the same item twice.
	out := make([]Recommendation, 0, k)
	var chosen []item.Item
	covered := func(y item.Item) bool {
		for _, c := range chosen {
			if y == c || ix.tax.IsAncestor(y, c) || ix.tax.IsAncestor(c, y) {
				return true
			}
		}
		return false
	}
	for _, id := range matched {
		r := &ix.rules[id]
		dup := false
		for _, y := range r.Consequent {
			if covered(y) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		out = append(out, Recommendation{
			Items:      r.Consequent,
			Confidence: r.Confidence,
			Support:    r.Support,
			Rule:       int(id),
		})
		chosen = append(chosen, r.Consequent...)
		if len(out) == k {
			break
		}
	}
	return out
}

// LoadFile reads a snapshot file and builds its index, labelling it with the
// snapshot checksum as the version id.
func LoadFile(path string) (*Index, error) {
	r, err := model.OpenReader(path)
	if err != nil {
		return nil, err
	}
	m, err := r.Model()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return NewIndex(m, fmt.Sprintf("%016x", r.Checksum()))
}
