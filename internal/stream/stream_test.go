package stream

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pgarm/internal/cumulate"
	"pgarm/internal/gen"
	"pgarm/internal/item"
	"pgarm/internal/model"
	"pgarm/internal/txn"
)

// smallDataset generates a small-but-structured dataset: enough
// transactions for several checkpoints, a real hierarchy, and pattern skew.
func smallDataset(t testing.TB) *gen.Dataset {
	t.Helper()
	p := gen.Params{
		Name:            "stream-test",
		NumTxns:         800,
		AvgTxnSize:      6,
		AvgPatternSize:  3,
		NumPatterns:     60,
		NumItems:        240,
		Roots:           6,
		Fanout:          4,
		CorrelationMean: 0.5,
		CorruptionMean:  0.5,
		CorruptionSD:    0.1,
		Seed:            7,
	}
	ds, err := gen.Generate(p)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return ds
}

// writeLog appends the dataset to a fresh log in batches ending at the given
// checkpoint boundaries, returning the end offset of each batch. A tiny
// segment threshold forces rotation so multi-segment logs are the norm.
func writeLog(t testing.TB, dir string, ds *gen.Dataset, checkpoints []int) []Offset {
	t.Helper()
	l, err := OpenLog(dir, Options{SegmentBytes: 2048})
	if err != nil {
		t.Fatalf("open log: %v", err)
	}
	defer l.Close()
	offs := make([]Offset, 0, len(checkpoints))
	start := 0
	for _, end := range checkpoints {
		batch := make([]txn.Transaction, 0, end-start)
		for i := start; i < end; i++ {
			batch = append(batch, ds.DB.At(i))
		}
		if err := l.Append(batch); err != nil {
			t.Fatalf("append [%d,%d): %v", start, end, err)
		}
		if err := l.Sync(); err != nil {
			t.Fatalf("sync: %v", err)
		}
		offs = append(offs, l.End())
		start = end
	}
	return offs
}

func sliceDB(ds *gen.Dataset, lo, hi int) *txn.DB {
	db := &txn.DB{}
	for i := lo; i < hi; i++ {
		db.Append(ds.DB.At(i))
	}
	return db
}

// TestIncrementalBitIdentity is the correctness bar of the streaming
// subsystem: at every checkpoint, for every worker count and support level,
// the incremental result must be bit-identical (itemsets, counts, order) to
// a full batch re-mine over the whole log so far — including a mid-sequence
// round-trip of the carry-forward state through the snapshot codec.
func TestIncrementalBitIdentity(t *testing.T) {
	ds := smallDataset(t)
	checkpoints := []int{250, 400, 430, 800} // deliberately uneven deltas
	dir := t.TempDir()
	offs := writeLog(t, dir, ds, checkpoints)
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatalf("open reader: %v", err)
	}

	for _, workers := range []int{1, 2, 4} {
		for _, minsup := range []float64{0.05, 0.02} {
			cfg := MineConfig{MinSupport: minsup, Workers: workers}
			var prior *model.MiningState
			prev := 0
			prevOff := Offset{}
			for ci, end := range checkpoints {
				delta := sliceDB(ds, prev, end)
				res, state, stats, err := IncrementalMine(ds.Taxonomy, prior, r.Prefix(prevOff), delta, cfg)
				if err != nil {
					t.Fatalf("w=%d sup=%g ckpt=%d: incremental: %v", workers, minsup, ci, err)
				}
				full, err := cumulate.Mine(ds.Taxonomy, sliceDB(ds, 0, end), cumulate.Config{MinSupport: minsup})
				if err != nil {
					t.Fatalf("w=%d sup=%g ckpt=%d: full: %v", workers, minsup, ci, err)
				}
				if !reflect.DeepEqual(res.Large, full.Large) {
					t.Fatalf("w=%d sup=%g ckpt=%d: incremental diverged from full re-mine\nincremental: %v\nfull: %v",
						workers, minsup, ci, res.Large, full.Large)
				}
				if res.NumTxns != end || stats.TotalTxns != int64(end) || stats.DeltaTxns != int64(end-prev) {
					t.Fatalf("ckpt=%d: txn accounting off: res=%d stats=%+v", ci, res.NumTxns, stats)
				}
				if ci > 0 && stats.Candidates > 0 && stats.Recounted >= stats.Candidates {
					t.Fatalf("ckpt=%d: no FUP savings: recounted %d of %d candidates",
						ci, stats.Recounted, stats.Candidates)
				}
				// Round-trip the state through the snapshot codec mid-sequence,
				// exactly as the follower does between checkpoints.
				state.LogSeg, state.LogByte = offs[ci].Seg, offs[ci].Byte
				m := &model.Model{
					Meta:     model.Meta{NumTxns: int64(end), MinSupport: minsup},
					Taxonomy: ds.Taxonomy,
					Large:    res.Large,
					State:    state,
				}
				buf, err := model.Encode(m)
				if err != nil {
					t.Fatalf("ckpt=%d: encode state: %v", ci, err)
				}
				mr, err := model.NewReader(buf)
				if err != nil {
					t.Fatalf("ckpt=%d: reopen state: %v", ci, err)
				}
				prior, err = mr.State()
				if err != nil {
					t.Fatalf("ckpt=%d: decode state: %v", ci, err)
				}
				if prior == nil || !reflect.DeepEqual(prior, state) {
					t.Fatalf("ckpt=%d: state did not round-trip", ci)
				}
				prev = end
				prevOff = offs[ci]
			}
		}
	}
}

// TestLogRoundtripRotationReopen checks that a multi-segment log replays
// exactly what was appended, across writer reopens.
func TestLogRoundtripRotationReopen(t *testing.T) {
	ds := smallDataset(t)
	dir := t.TempDir()
	writeLog(t, dir, ds, []int{300, 600})

	// Reopen for appending: recovery must land exactly at the end.
	l, err := OpenLog(dir, Options{SegmentBytes: 2048})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if l.Len() != 600 {
		t.Fatalf("reopened log has %d txns, want 600", l.Len())
	}
	if want := ds.DB.At(599).TID + 1; l.NextTID() != want {
		t.Fatalf("reopened NextTID %d, want %d", l.NextTID(), want)
	}
	var rest []txn.Transaction
	for i := 600; i < 800; i++ {
		rest = append(rest, ds.DB.At(i))
	}
	if err := l.Append(rest); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	r, err := OpenReader(dir)
	if err != nil {
		t.Fatalf("open reader: %v", err)
	}
	i := 0
	end, err := r.ReadFrom(Offset{}, func(tr txn.Transaction) error {
		want := ds.DB.At(i)
		if tr.TID != want.TID || !reflect.DeepEqual(append([]item.Item{}, tr.Items...), want.Items) {
			t.Fatalf("txn %d mismatch: got %v want %v", i, tr, want)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if i != 800 || end.Txns != 800 {
		t.Fatalf("replayed %d txns, offset %+v; want 800", i, end)
	}
	if end.Seg == 0 {
		t.Fatalf("expected rotation to produce multiple segments, still on segment 0")
	}

	// Prefix scanners must deliver exact counts, repeatedly and concurrently.
	ps := r.Prefix(Offset{Txns: 357})
	if ps.Len() != 357 {
		t.Fatalf("prefix len %d", ps.Len())
	}
	for round := 0; round < 2; round++ {
		n := 0
		if err := ps.Scan(func(tr txn.Transaction) error { n++; return nil }); err != nil {
			t.Fatalf("prefix scan: %v", err)
		}
		if n != 357 {
			t.Fatalf("prefix delivered %d txns, want 357", n)
		}
	}
}

// TestReadFromTailing checks the tailing contract: a reader at the end of
// the log sees nothing until more is appended, a torn in-flight tail is
// waited out rather than erroring, and replay resumes at the returned
// offset without loss or duplication.
func TestReadFromTailing(t *testing.T) {
	ds := smallDataset(t)
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	batch := func(lo, hi int) []txn.Transaction {
		var b []txn.Transaction
		for i := lo; i < hi; i++ {
			b = append(b, ds.DB.At(i))
		}
		return b
	}
	if err := l.Append(batch(0, 100)); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	off, err := r.ReadFrom(Offset{}, func(txn.Transaction) error { n++; return nil })
	if err != nil || n != 100 {
		t.Fatalf("first read: n=%d err=%v", n, err)
	}

	// Nothing new: same offset, no txns, no error.
	m := 0
	off2, err := r.ReadFrom(off, func(txn.Transaction) error { m++; return nil })
	if err != nil || m != 0 || off2 != off {
		t.Fatalf("idle read: m=%d off2=%+v err=%v", m, off2, err)
	}

	// Simulate an in-flight frame: append a few garbage bytes to the last
	// segment. The tailer must wait at the frame boundary, not error.
	segPath := filepath.Join(dir, segName(off.Seg))
	f, err := os.OpenFile(segPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	off3, err := r.ReadFrom(off, func(txn.Transaction) error { return nil })
	if err != nil || off3 != off {
		t.Fatalf("torn-tail read: off3=%+v err=%v", off3, err)
	}
	// Writer restart truncates the torn bytes and appends more.
	l.Close()
	l, err = OpenLog(dir, Options{SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	if err := l.Append(batch(100, 180)); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	n = 0
	off4, err := r.ReadFrom(off, func(tr txn.Transaction) error {
		if want := ds.DB.At(100 + n); tr.TID != want.TID {
			t.Fatalf("resumed txn %d has TID %d, want %d", n, tr.TID, want.TID)
		}
		n++
		return nil
	})
	if err != nil || n != 80 || off4.Txns != 180 {
		t.Fatalf("resume read: n=%d off=%+v err=%v", n, off4, err)
	}
}

// TestCrashTruncationRecovery truncates a finished log at every byte of its
// last segment: OpenLog must always recover to a clean frame boundary (a
// prefix of the appended transactions, possibly empty) and accept further
// appends that a reader then sees seamlessly.
func TestCrashTruncationRecovery(t *testing.T) {
	ds := smallDataset(t)
	src := t.TempDir()
	l, err := OpenLog(src, Options{SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	var txns []txn.Transaction
	for i := 0; i < 40; i++ {
		txns = append(txns, ds.DB.At(i))
	}
	// Three frames on one segment so truncation crosses frame boundaries.
	for lo := 0; lo < 40; lo += 15 {
		hi := lo + 15
		if hi > 40 {
			hi = 40
		}
		if err := l.Append(txns[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(src, segName(0))
	full, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(full); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(0)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, err := OpenLog(dir, Options{SegmentBytes: 1 << 20})
		if err != nil {
			t.Fatalf("cut=%d: recovery failed: %v", cut, err)
		}
		got := int(l2.Len())
		if got != 0 && got != 15 && got != 30 && got != 40 {
			t.Fatalf("cut=%d: recovered %d txns, not a frame boundary", cut, got)
		}
		// The log must accept appends right where it recovered to.
		if err := l2.Append([]txn.Transaction{ds.DB.At(got)}); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := OpenReader(dir)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		_, err = r.ReadFrom(Offset{}, func(tr txn.Transaction) error {
			if want := ds.DB.At(n); tr.TID != want.TID {
				t.Fatalf("cut=%d: txn %d TID %d, want %d", cut, n, tr.TID, want.TID)
			}
			n++
			return nil
		})
		if err != nil {
			t.Fatalf("cut=%d: replay after recovery: %v", cut, err)
		}
		if n != got+1 {
			t.Fatalf("cut=%d: replayed %d, want %d", cut, n, got+1)
		}
	}
}

// TestLogRejectsCorruption flips one payload byte in a complete interior
// frame: both the writer's recovery and the reader must refuse it.
func TestLogRejectsCorruption(t *testing.T) {
	ds := smallDataset(t)
	dir := t.TempDir()
	writeLog(t, dir, ds, []int{200})
	segPath := filepath.Join(dir, segName(0))
	b, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	b[headerSize+frameHeaderSize+3] ^= 0xff
	if err := os.WriteFile(segPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadFrom(Offset{}, func(txn.Transaction) error { return nil }); err == nil {
		t.Fatal("reader accepted corrupt frame")
	}
}

// TestAppendValidation: the writer refuses descending TIDs and
// non-canonical baskets.
func TestAppendValidation(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ok := []txn.Transaction{{TID: 5, Items: []item.Item{1, 2, 9}}}
	if err := l.Append(ok); err != nil {
		t.Fatalf("valid append: %v", err)
	}
	if err := l.Append([]txn.Transaction{{TID: 5, Items: []item.Item{1}}}); err == nil {
		t.Fatal("accepted duplicate TID")
	}
	if err := l.Append([]txn.Transaction{{TID: 9, Items: []item.Item{3, 3}}}); err == nil {
		t.Fatal("accepted non-canonical basket")
	}
	if err := l.Append([]txn.Transaction{{TID: 9, Items: nil}}); err == nil {
		t.Fatal("accepted empty basket")
	}
}
