package stream

import (
	"fmt"

	"pgarm/internal/cumulate"
	"pgarm/internal/driver"
	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/metrics"
	"pgarm/internal/model"
	"pgarm/internal/taxonomy"
	"pgarm/internal/txn"
)

// MineConfig controls one incremental checkpoint.
type MineConfig struct {
	// MinSupport is the minimum support as a fraction of the total (prefix +
	// delta) database size.
	MinSupport float64
	// MaxK bounds the itemset size; 0 means run until L_k is empty.
	MaxK int
	// Workers is the scan/generate worker count (<= 1 runs inline).
	Workers int
}

// CheckpointStats quantifies how much work the FUP carry-forward saved: of
// all candidates the checkpoint's passes counted, only the re-counted ones
// (absent from the prior border sets) needed a scan of the frozen prefix —
// everything else was counted over the delta alone.
type CheckpointStats struct {
	// DeltaTxns/TotalTxns are the new and cumulative transaction counts.
	DeltaTxns int64 `json:"delta_txns"`
	TotalTxns int64 `json:"total_txns"`
	// Passes is the number of executed passes (including pass 1).
	Passes int `json:"passes"`
	// Candidates counts every candidate across the k >= 2 passes.
	Candidates int `json:"candidates"`
	// Recounted is how many of those candidates were new — not in the
	// prior checkpoint's border — and therefore needed a prefix rescan.
	Recounted int `json:"recounted"`
	// PrefixScans is the number of passes that scanned the prefix at all.
	PrefixScans int `json:"prefix_scans"`
}

// IncrementalMine runs one FUP-style checkpoint: it mines prefix + delta as
// if from scratch, but uses the prior checkpoint's carry-forward state to
// avoid re-reading the prefix wherever possible.
//
//   - Pass 1 never scans the prefix: the prior state's full per-item
//     ancestor-closure count vector is advanced by counting the delta only.
//   - Pass k >= 2 generates candidates exactly as the batch miner would
//     (from this checkpoint's L_{k-1}). Candidates present in the prior
//     border sets (state.Levels — every candidate the prior checkpoint
//     counted, large or not) are seeded with their exact prefix counts and
//     advanced over the delta only. Candidates absent from the border are
//     counted over the delta and the prefix, but the prefix scan probes only
//     those new candidates.
//
// The result is bit-identical to cumulate.Mine over the concatenated
// database: candidate generation is deterministic from L_{k-1}; seeded
// counts are exact by the state invariant; and a new candidate's prefix
// count is exact even though it is counted with a smaller candidate set,
// because a candidate c whose items all lie in the pass's member set is a
// subset of the member-filtered ancestor extension of t exactly when c is a
// subset of t's full ancestor closure — independent of which other
// candidates are in the set (see DESIGN.md §11 for the argument).
//
// prior is the previous checkpoint's state, or nil for the first checkpoint
// (then prefix must be empty). prefix must cover exactly prior.LogTxns
// transactions and support concurrent Scan calls (Reader.Prefix does). The
// returned state covers prefix + delta with LogSeg/LogByte left zero — the
// caller records the log offset it mined through.
func IncrementalMine(tax *taxonomy.Taxonomy, prior *model.MiningState, prefix txn.Scanner, delta txn.Scanner, cfg MineConfig) (*cumulate.Result, *model.MiningState, *CheckpointStats, error) {
	if tax == nil {
		return nil, nil, nil, fmt.Errorf("stream: nil taxonomy")
	}
	numItems := tax.NumItems()
	prefixN := prefix.Len()
	if prior == nil {
		if prefixN != 0 {
			return nil, nil, nil, fmt.Errorf("stream: no prior state but prefix has %d txns", prefixN)
		}
	} else {
		if int64(prefixN) != prior.LogTxns {
			return nil, nil, nil, fmt.Errorf("stream: prefix has %d txns, prior state covers %d", prefixN, prior.LogTxns)
		}
		if len(prior.ItemCounts) != numItems {
			return nil, nil, nil, fmt.Errorf("stream: prior state has %d item counts, universe is %d", len(prior.ItemCounts), numItems)
		}
	}
	deltaN := delta.Len()
	n := prefixN + deltaN
	stats := &CheckpointStats{DeltaTxns: int64(deltaN), TotalTxns: int64(n)}
	if n == 0 {
		return &cumulate.Result{}, &model.MiningState{ItemCounts: make([]int64, numItems)}, stats, nil
	}
	W := cfg.Workers
	if W < 1 {
		W = 1
	}
	minCount := cumulate.MinCount(cfg.MinSupport, n)
	res := &cumulate.Result{NumTxns: n}
	state := &model.MiningState{LogTxns: int64(n)}

	// Pass 1: advance the carried per-item closure counts over the delta.
	counts := make([]int64, numItems)
	if prior != nil {
		copy(counts, prior.ItemCounts)
	}
	if deltaN > 0 {
		wcounts := driver.WorkerVectors(W, numItems)
		wscratch := driver.WorkerScratch(W, 64)
		err := driver.ScanShards(delta.Scan, W, driver.ShardObs{}, func(w int, t txn.Transaction) error {
			ext := tax.ExtendTransaction(wscratch[w][:0], t.Items)
			wscratch[w] = ext
			for _, x := range ext {
				wcounts[w][x]++
			}
			return nil
		})
		if err != nil {
			return nil, nil, nil, fmt.Errorf("stream: pass 1: %w", err)
		}
		merged := driver.MergeWorkerVectors(wcounts)
		for i, c := range merged {
			counts[i] += c
		}
	}
	state.ItemCounts = counts
	stats.Passes = 1
	res.Plan = append(res.Plan, metrics.PlanDecision{
		Pass: 1, Partitioner: "incremental", Granule: "delta", Candidates: numItems,
	})
	large := make([]bool, numItems)
	var l1 []itemset.Counted
	nLarge := 0
	for i, c := range counts {
		if c >= minCount {
			large[i] = true
			nLarge++
			l1 = append(l1, itemset.Counted{Items: []item.Item{item.Item(i)}, Count: c})
		}
	}
	res.Large = append(res.Large, l1)
	if nLarge < 2 || cfg.MaxK == 1 {
		return res, state, stats, nil
	}

	// Index the prior border sets once: pass k seeds from priorLevel(k).
	priorLevel := func(k int) map[string]int64 {
		if prior == nil || k-2 >= len(prior.Levels) {
			return nil
		}
		level := prior.Levels[k-2]
		m := make(map[string]int64, len(level))
		for _, c := range level {
			m[itemset.Key(c.Items)] = c.Count
		}
		return m
	}

	prev := make([][]item.Item, len(l1))
	for i, c := range l1 {
		prev[i] = c.Items
	}
	for k := 2; cfg.MaxK == 0 || k <= cfg.MaxK; k++ {
		cands := cumulate.GenerateCandidatesN(tax, prev, k, W, nil)
		if len(cands) == 0 {
			break
		}
		stats.Passes++
		stats.Candidates += len(cands)

		// Seed known candidates with their exact prefix counts; collect the
		// rest for the scoped prefix rescan. The classification is a pure
		// per-candidate lookup (itemset key + concurrent-read-safe map), so it
		// shards across workers; per-shard collections concatenated in shard
		// order keep newCands in ascending candidate-id order, exactly as the
		// serial loop produced.
		seeded := priorLevel(k)
		candCounts := make([]int64, len(cands))
		shardCands := make([][][]item.Item, W)
		shardIDs := make([][]int, W)
		itemset.ForShards(len(cands), W, nil, func(w, lo, hi int) {
			for id := lo; id < hi; id++ {
				if cnt, ok := seeded[itemset.Key(cands[id])]; ok {
					candCounts[id] = cnt
				} else {
					shardCands[w] = append(shardCands[w], cands[id])
					shardIDs[w] = append(shardIDs[w], id)
				}
			}
		})
		var newCands [][]item.Item
		var newIDs []int
		for w := 0; w < W; w++ {
			newCands = append(newCands, shardCands[w]...)
			newIDs = append(newIDs, shardIDs[w]...)
		}
		stats.Recounted += len(newCands)

		wstats := make([]metrics.NodeStats, W)
		member := cumulate.KeepSet(tax, cands)
		view := taxonomy.NewView(tax, large, member)

		// Delta scan: every candidate advances by its delta support.
		if deltaN > 0 {
			index := itemset.BuildIndexParallel(cands, W)
			wcounts := driver.WorkerVectors(W, len(cands))
			err := driver.CountTable(view, member, index, k, delta, wcounts, driver.CountOptions{
				Workers: W,
				Pred:    txn.NewPredicate(tax, cands),
				WStats:  wstats,
			})
			if err != nil {
				return nil, nil, nil, fmt.Errorf("stream: pass %d delta scan: %w", k, err)
			}
			merged := driver.MergeWorkerVectors(wcounts)
			for id, c := range merged {
				candCounts[id] += c
			}
		}

		// Prefix scan: only candidates the prior checkpoint never counted.
		granule := "delta"
		if len(newCands) > 0 && prefixN > 0 {
			granule = "delta+prefix"
			stats.PrefixScans++
			memberNew := cumulate.KeepSet(tax, newCands)
			viewNew := taxonomy.NewView(tax, large, memberNew)
			indexNew := itemset.BuildIndexParallel(newCands, W)
			wcounts := driver.WorkerVectors(W, len(newCands))
			err := driver.CountTable(viewNew, memberNew, indexNew, k, prefix, wcounts, driver.CountOptions{
				Workers: W,
				Pred:    txn.NewPredicate(tax, newCands),
				WStats:  wstats,
			})
			if err != nil {
				return nil, nil, nil, fmt.Errorf("stream: pass %d prefix scan: %w", k, err)
			}
			merged := driver.MergeWorkerVectors(wcounts)
			for i, c := range merged {
				candCounts[newIDs[i]] += c
			}
		}
		for w := range wstats {
			res.Probes += wstats[w].Probes
			res.BlocksScanned += wstats[w].BlocksScanned
			res.BlocksSkipped += wstats[w].BlocksSkipped
		}
		res.Plan = append(res.Plan, metrics.PlanDecision{
			Pass:        k,
			Partitioner: "incremental",
			Granule:     granule,
			Candidates:  len(cands),
			Duplicated:  len(newCands),
		})

		// The state stores every candidate with its union count — the full
		// positive and negative border the next checkpoint seeds from. The
		// level is stored even when L_k comes out empty: those "not large
		// yet" counts are exactly what makes a later promotion cheap. Both
		// assemblies shard across workers: the border writes to disjoint
		// slots, and the large survivors concatenate in shard order —
		// candidate order, as the serial loop collected them — before the
		// canonical lexicographic sort.
		level := make([]itemset.Counted, len(cands))
		shardLarge := make([][]itemset.Counted, W)
		itemset.ForShards(len(cands), W, nil, func(w, lo, hi int) {
			for id := lo; id < hi; id++ {
				level[id] = itemset.Counted{Items: cands[id], Count: candCounts[id]}
				if candCounts[id] >= minCount {
					shardLarge[w] = append(shardLarge[w], level[id])
				}
			}
		})
		state.Levels = append(state.Levels, level)

		// L_k mirrors itemset.Table.Large: collect in candidate order, then
		// sort lexicographically.
		var lk []itemset.Counted
		for w := 0; w < W; w++ {
			lk = append(lk, shardLarge[w]...)
		}
		itemset.SortCounted(lk)
		if len(lk) == 0 {
			break
		}
		res.Large = append(res.Large, lk)
		prev = prev[:0]
		for _, c := range lk {
			prev = append(prev, c.Items)
		}
	}
	return res, state, stats, nil
}
