// Package stream is the ingestion side of the miner: an append-only,
// crc-framed transaction log that decouples producers (pgarm-ingest, or any
// upstream feed) from the incremental miner tailing it.
//
// A log is a directory of segment files seg-00000000.psl, seg-00000001.psl,
// ... Each segment starts with a fixed header:
//
//	magic   uint32 BE  "PGSL"
//	version byte       1
//	segIdx  uint64 BE  index of this segment (matches the file name)
//	base    uint64 BE  transactions stored in all prior segments
//
// followed by frames:
//
//	length uint32 BE   payload bytes
//	crc    uint32 BE   IEEE CRC-32 of the payload
//	payload            batch of transactions
//
// A frame payload is self-contained: a transaction count, then per
// transaction a TID (first absolute, rest as deltas >= 1 — TIDs are strictly
// ascending across the whole log), an item count, and the canonical
// (strictly ascending) items delta-coded like the row format in
// internal/txn. Self-containment is what makes offsets durable: an Offset
// names a frame boundary, and a reader can resume there without any state
// from earlier frames beyond the transaction count the offset carries.
//
// Durability and recovery: Append buffers frames and Sync fsyncs them, so a
// producer controls the batch/durability trade. A crash can leave a torn
// frame at the tail of the *last* segment only — rotation fsyncs and closes
// a segment before creating its successor — and OpenLog truncates such a
// tail on restart. A torn frame on a non-last segment means real corruption
// and is refused.
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"pgarm/internal/item"
	"pgarm/internal/txn"
	"pgarm/internal/wire"
)

const (
	logMagic   = 0x5047534c // "PGSL" big-endian
	logVersion = 1

	// headerSize is the fixed segment header: magic + version + segIdx + base.
	headerSize = 4 + 1 + 8 + 8
	// frameHeaderSize prefixes every frame: length + crc.
	frameHeaderSize = 4 + 4

	// maxFramePayload bounds a single frame so corrupt length fields cannot
	// drive huge allocations in the reader.
	maxFramePayload = 1 << 26
	// maxFrameTxns caps how many transactions Append packs per frame, keeping
	// frames (and therefore tail-read latency) small even for huge batches.
	maxFrameTxns = 4096
	// maxBasketSize mirrors the row-format cap: no real basket has a million
	// items, so larger counts are treated as corruption.
	maxBasketSize = 1 << 20
)

// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes is
// zero.
const DefaultSegmentBytes = 64 << 20

// Options configures a Log writer.
type Options struct {
	// SegmentBytes rotates to a new segment once the current one reaches
	// this size. 0 means DefaultSegmentBytes. A single frame larger than the
	// threshold still lands in one segment (frames never straddle segments).
	SegmentBytes int64
}

// Offset names a frame boundary in the log: a segment, a byte position
// inside it, and the total number of transactions stored before that
// position. The zero Offset is the start of the log. Offsets are only
// meaningful if they were produced by this package (ReadFrom, Log.End) —
// the reader refuses positions that do not land on frame boundaries.
type Offset struct {
	Seg  uint64 `json:"seg"`
	Byte int64  `json:"byte"`
	Txns int64  `json:"txns"`
}

// segName returns the file name of segment i.
func segName(i uint64) string { return fmt.Sprintf("seg-%08d.psl", i) }

// Log is the single-writer handle. It is not safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	f       *os.File // current (last) segment
	seg     uint64   // index of the current segment
	segBase int64    // transactions stored in all prior segments
	segByte int64    // current write position within the segment
	segTxns int64    // transactions stored in the current segment

	nextTID int64 // 0 on an empty log, else last TID + 1

	buf []byte // frame scratch
}

// OpenLog opens (creating if needed) the log directory for appending. If the
// last segment has a torn tail from a crash it is truncated back to the last
// complete frame; torn frames anywhere else are an error.
func OpenLog(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("stream: create log dir: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts}
	if len(segs) == 0 {
		if err := l.createSegment(0, 0); err != nil {
			return nil, err
		}
		return l, nil
	}
	// Validate the full chain. Every segment but the last must be complete;
	// the last may have a torn tail, which we truncate.
	base := int64(0)
	var lastTID int64 = -1
	for i, seg := range segs {
		if seg != uint64(i) {
			return nil, fmt.Errorf("stream: segment chain has a gap: want %s, have %s", segName(uint64(i)), segName(seg))
		}
		last := i == len(segs)-1
		path := filepath.Join(dir, segName(seg))
		if last {
			// A crash between creating a segment and completing its 21-byte
			// header leaves a short file; rewrite it as a fresh empty segment.
			if fi, serr := os.Stat(path); serr == nil && fi.Size() < headerSize {
				if err := os.Remove(path); err != nil {
					return nil, fmt.Errorf("stream: drop torn segment header: %w", err)
				}
				l.nextTID = lastTID + 1
				if err := l.createSegment(seg, base); err != nil {
					return nil, err
				}
				return l, nil
			}
		}
		n, end, tid, err := validateSegment(path, seg, base, lastTID, last)
		if err != nil {
			return nil, err
		}
		base += n
		if n > 0 {
			lastTID = tid
		}
		if last {
			l.seg = seg
			l.segBase = base - n
			l.segByte = end
			l.segTxns = n
		}
	}
	l.nextTID = lastTID + 1
	path := filepath.Join(dir, segName(l.seg))
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("stream: open %s: %w", path, err)
	}
	// Truncate any torn tail so the file ends exactly at the last complete
	// frame before we append after it.
	if err := f.Truncate(l.segByte); err != nil {
		f.Close()
		return nil, fmt.Errorf("stream: truncate torn tail of %s: %w", path, err)
	}
	if _, err := f.Seek(l.segByte, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("stream: seek %s: %w", path, err)
	}
	l.f = f
	return l, nil
}

// listSegments returns the segment indices present in dir, sorted.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("stream: read log dir: %w", err)
	}
	var segs []uint64
	for _, e := range ents {
		var i uint64
		if _, err := fmt.Sscanf(e.Name(), "seg-%08d.psl", &i); err == nil && e.Name() == segName(i) {
			segs = append(segs, i)
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a] < segs[b] })
	return segs, nil
}

// validateSegment checks one segment's header and frames. It returns the
// number of transactions it holds, the byte offset just past the last
// complete frame, and the last TID seen (or prevTID if empty). If last is
// false a torn tail is an error; if true, the torn tail is simply excluded
// from the returned end offset.
func validateSegment(path string, seg uint64, base, prevTID int64, last bool) (n, end, lastTID int64, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("stream: read %s: %w", path, err)
	}
	var scratch []item.Item
	if err := checkHeader(b, seg, base); err != nil {
		return 0, 0, 0, fmt.Errorf("stream: %s: %w", path, err)
	}
	off := int64(headerSize)
	lastTID = prevTID
	for {
		payload, next, ferr := sliceFrame(b, off)
		if ferr == errShortFrame {
			if !last {
				return 0, 0, 0, fmt.Errorf("stream: %s: torn frame at %d in non-last segment", path, off)
			}
			return n, off, lastTID, nil
		}
		if ferr == io.EOF {
			return n, off, lastTID, nil
		}
		if ferr != nil {
			return 0, 0, 0, fmt.Errorf("stream: %s: frame at %d: %w", path, off, ferr)
		}
		fn, ftid, derr := decodeFrame(payload, lastTID, &scratch, func(txn.Transaction) error { return nil })
		if derr != nil {
			return 0, 0, 0, fmt.Errorf("stream: %s: frame at %d: %w", path, off, derr)
		}
		n += fn
		if fn > 0 {
			lastTID = ftid
		}
		off = next
	}
}

// checkHeader validates a segment header against the expected index and
// cumulative transaction count.
func checkHeader(b []byte, seg uint64, base int64) error {
	if len(b) < headerSize {
		return fmt.Errorf("short segment header: %d bytes", len(b))
	}
	if m := binary.BigEndian.Uint32(b); m != logMagic {
		return fmt.Errorf("bad magic %#x", m)
	}
	if v := b[4]; v != logVersion {
		return fmt.Errorf("unsupported version %d", v)
	}
	if i := binary.BigEndian.Uint64(b[5:]); i != seg {
		return fmt.Errorf("header names segment %d, file is segment %d", i, seg)
	}
	if bt := binary.BigEndian.Uint64(b[13:]); bt != uint64(base) {
		return fmt.Errorf("header base txns %d, expected %d", bt, base)
	}
	return nil
}

// errShortFrame reports a frame whose header or payload extends past the
// available bytes — a torn tail on a live log, corruption otherwise.
var errShortFrame = errors.New("stream: short frame")

// sliceFrame extracts the frame starting at off in b, verifying its CRC. It
// returns io.EOF exactly at the end of b, and errShortFrame when the frame
// header or payload is cut off.
func sliceFrame(b []byte, off int64) (payload []byte, next int64, err error) {
	if off == int64(len(b)) {
		return nil, 0, io.EOF
	}
	if off+frameHeaderSize > int64(len(b)) {
		return nil, 0, errShortFrame
	}
	n := int64(binary.BigEndian.Uint32(b[off:]))
	if n == 0 || n > maxFramePayload {
		return nil, 0, fmt.Errorf("frame payload length %d out of range", n)
	}
	want := binary.BigEndian.Uint32(b[off+4:])
	if off+frameHeaderSize+n > int64(len(b)) {
		return nil, 0, errShortFrame
	}
	payload = b[off+frameHeaderSize : off+frameHeaderSize+n]
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, 0, fmt.Errorf("frame crc mismatch: %#x != %#x", got, want)
	}
	return payload, off + frameHeaderSize + n, nil
}

// decodeFrame decodes a frame payload, invoking fn per transaction with a
// basket built in *scratch (reused across transactions and frames; fn must
// not keep it). It returns the transaction count and the last TID. prevTID
// is the last TID before this frame, or -1 if unknown (resuming mid-log):
// then the first transaction's TID is accepted as-is and ascent is only
// enforced from the second transaction on.
func decodeFrame(payload []byte, prevTID int64, scratch *[]item.Item, fn func(txn.Transaction) error) (n, lastTID int64, err error) {
	count, used, err := wire.Uvarint(payload)
	if err != nil {
		return 0, 0, err
	}
	if count == 0 || count > uint64(len(payload)) { // each txn takes >= 3 bytes
		return 0, 0, fmt.Errorf("frame txn count %d out of range", count)
	}
	off := used
	tid := prevTID
	for i := uint64(0); i < count; i++ {
		v, u, err := wire.Uvarint(payload[off:])
		if err != nil {
			return 0, 0, err
		}
		off += u
		if i == 0 {
			if v > math.MaxInt64 {
				return 0, 0, fmt.Errorf("frame TID %d overflows", v)
			}
			if tid >= 0 && int64(v) <= tid {
				return 0, 0, fmt.Errorf("frame TID %d not above prior %d", v, tid)
			}
			tid = int64(v)
		} else {
			if v == 0 || v > math.MaxInt64-uint64(tid) {
				return 0, 0, fmt.Errorf("frame TID delta %d invalid after %d", v, tid)
			}
			tid += int64(v)
		}
		nitems, u, err := wire.Uvarint(payload[off:])
		if err != nil {
			return 0, 0, err
		}
		off += u
		if nitems == 0 || nitems > maxBasketSize || nitems > uint64(len(payload)-off) {
			return 0, 0, fmt.Errorf("frame basket size %d out of range", nitems)
		}
		basket := (*scratch)[:0]
		prev := item.Item(0)
		for j := uint64(0); j < nitems; j++ {
			d, u, err := wire.Uvarint(payload[off:])
			if err != nil {
				return 0, 0, err
			}
			off += u
			if j == 0 {
				if d > math.MaxInt32 {
					return 0, 0, fmt.Errorf("frame item %d overflows", d)
				}
				prev = item.Item(d)
			} else {
				if d == 0 || d > uint64(math.MaxInt32-prev) {
					return 0, 0, fmt.Errorf("frame item delta %d invalid after %d", d, prev)
				}
				prev += item.Item(d)
			}
			basket = append(basket, prev)
		}
		*scratch = basket
		if err := fn(txn.Transaction{TID: tid, Items: basket}); err != nil {
			return 0, 0, err
		}
	}
	if off != len(payload) {
		return 0, 0, fmt.Errorf("frame has %d trailing bytes", len(payload)-off)
	}
	return int64(count), tid, nil
}

// createSegment creates segment seg with the given cumulative base count and
// makes it the current write target.
func (l *Log) createSegment(seg uint64, base int64) error {
	path := filepath.Join(l.dir, segName(seg))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("stream: create %s: %w", path, err)
	}
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[:], logMagic)
	hdr[4] = logVersion
	binary.BigEndian.PutUint64(hdr[5:], seg)
	binary.BigEndian.PutUint64(hdr[13:], uint64(base))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("stream: write %s header: %w", path, err)
	}
	l.f = f
	l.seg = seg
	l.segBase = base
	l.segByte = headerSize
	l.segTxns = 0
	// Make the new directory entry durable so a crash after rotation cannot
	// lose the segment the reader is about to be pointed at.
	if d, err := os.Open(l.dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Append encodes the batch into one or more frames and writes them to the
// log. TIDs must be strictly ascending and continue above everything already
// in the log; items must be canonical (strictly ascending). The data is
// buffered by the OS until Sync.
func (l *Log) Append(txns []txn.Transaction) error {
	for i := 0; i < len(txns); i += maxFrameTxns {
		end := i + maxFrameTxns
		if end > len(txns) {
			end = len(txns)
		}
		if err := l.appendFrame(txns[i:end]); err != nil {
			return err
		}
	}
	return nil
}

// appendFrame validates, encodes and writes one frame.
func (l *Log) appendFrame(txns []txn.Transaction) error {
	if len(txns) == 0 {
		return nil
	}
	buf := l.buf[:0]
	// Reserve the frame header; filled in once the payload size is known.
	buf = append(buf, make([]byte, frameHeaderSize)...)
	buf = wire.AppendUvarint(buf, uint64(len(txns)))
	tid := l.nextTID - 1 // -1 on an empty log
	for i, t := range txns {
		if t.TID <= tid {
			return fmt.Errorf("stream: append TID %d not above prior %d", t.TID, tid)
		}
		if len(t.Items) == 0 || len(t.Items) > maxBasketSize {
			return fmt.Errorf("stream: append basket size %d out of range (TID %d)", len(t.Items), t.TID)
		}
		if !item.IsSorted(t.Items) {
			return fmt.Errorf("stream: append basket not canonical (TID %d)", t.TID)
		}
		if i == 0 {
			buf = wire.AppendUvarint(buf, uint64(t.TID))
		} else {
			buf = wire.AppendUvarint(buf, uint64(t.TID-tid))
		}
		tid = t.TID
		buf = wire.AppendItems(buf, t.Items)
	}
	payload := buf[frameHeaderSize:]
	if len(payload) > maxFramePayload {
		return fmt.Errorf("stream: frame payload %d exceeds cap %d", len(payload), maxFramePayload)
	}
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	l.buf = buf[:0]

	// Rotate before writing if the current segment is non-empty and this
	// frame would push it past the threshold.
	if l.segByte > headerSize && l.segByte+int64(len(buf)) > l.opts.SegmentBytes {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("stream: write frame: %w", err)
	}
	l.segByte += int64(len(buf))
	l.segTxns += int64(len(txns))
	l.nextTID = tid + 1
	return nil
}

// rotate fsyncs and closes the current segment, then creates its successor.
// Ordering matters for recovery: a successor segment only ever exists once
// its predecessor is complete and durable, which is what lets readers treat
// any segment with a successor as immutable.
func (l *Log) rotate() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("stream: sync %s: %w", segName(l.seg), err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("stream: close %s: %w", segName(l.seg), err)
	}
	return l.createSegment(l.seg+1, l.segBase+l.segTxns)
}

// Sync makes all appended frames durable.
func (l *Log) Sync() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("stream: sync: %w", err)
	}
	return nil
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return fmt.Errorf("stream: sync on close: %w", err)
	}
	return l.f.Close()
}

// Len returns the total number of transactions in the log.
func (l *Log) Len() int64 { return l.segBase + l.segTxns }

// NextTID returns the smallest TID the next Append may use.
func (l *Log) NextTID() int64 { return l.nextTID }

// End returns the offset just past the last appended frame.
func (l *Log) End() Offset {
	return Offset{Seg: l.seg, Byte: l.segByte, Txns: l.segBase + l.segTxns}
}
