package stream

import (
	"os"
	"path/filepath"
	"testing"

	"pgarm/internal/item"
	"pgarm/internal/txn"
)

// FuzzStreamLogOpen feeds arbitrary bytes to the segment/frame decoder as a
// lone segment file, mirroring FuzzColumnarOpen's contract for the columnar
// footer: OpenLog and the tailing reader must never panic, and whatever
// they accept must replay as a well-formed transaction stream — strictly
// ascending TIDs, canonical baskets — with writer recovery (Len) and reader
// replay agreeing on the transaction count.
func FuzzStreamLogOpen(f *testing.F) {
	// Seed with a valid two-frame segment so the fuzzer starts from
	// structure-preserving mutations rather than rejected garbage.
	seedDir := f.TempDir()
	l, err := OpenLog(seedDir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	for lo := 0; lo < 20; lo += 10 {
		var batch []txn.Transaction
		for i := lo; i < lo+10; i++ {
			batch = append(batch, txn.Transaction{
				TID:   int64(i*2 + 1),
				Items: []item.Item{item.Item(i % 4), item.Item(7 + i), item.Item(300)},
			})
		}
		if err := l.Append(batch); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(filepath.Join(seedDir, segName(0)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:headerSize])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(0)), data, 0o644); err != nil {
			t.Skip()
		}
		l, err := OpenLog(dir, Options{})
		if err != nil {
			return // corrupt input may be rejected, never trusted
		}
		recovered := l.Len()
		nextTID := l.NextTID()
		l.Close()

		r, err := OpenReader(dir)
		if err != nil {
			t.Fatalf("writer recovered but reader refused the log: %v", err)
		}
		n := int64(0)
		lastTID := int64(-1)
		off, err := r.ReadFrom(Offset{}, func(tr txn.Transaction) error {
			n++
			if tr.TID <= lastTID {
				t.Fatalf("TIDs not ascending: %d after %d", tr.TID, lastTID)
			}
			lastTID = tr.TID
			if len(tr.Items) == 0 {
				t.Fatal("empty basket accepted")
			}
			for i, x := range tr.Items {
				if x < 0 {
					t.Fatalf("negative item %d", x)
				}
				if i > 0 && tr.Items[i-1] >= x {
					t.Fatalf("non-canonical basket %v", tr.Items)
				}
			}
			return nil
		})
		if err != nil {
			// The reader may refuse what recovery truncated away, but only
			// past the writer's recovered prefix.
			if n > recovered {
				t.Fatalf("reader delivered %d txns then failed, writer recovered only %d: %v", n, recovered, err)
			}
			return
		}
		if n != recovered || off.Txns != recovered {
			t.Fatalf("reader replayed %d txns (offset %+v), writer recovered %d", n, off, recovered)
		}
		if n > 0 && lastTID+1 != nextTID {
			t.Fatalf("last TID %d inconsistent with writer NextTID %d", lastTID, nextTID)
		}
	})
}
