package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"pgarm/internal/item"
	"pgarm/internal/txn"
)

// Reader tails a log directory. It holds no open files between calls, so a
// single Reader may be used from one goroutine while a Log in another
// process (or goroutine) appends; Prefix scanners are additionally safe for
// concurrent Scan calls, which is what lets the driver's shard workers each
// walk the prefix independently.
type Reader struct {
	dir string
}

// OpenReader opens a log directory for reading. The directory must exist
// and contain at least segment 0 (OpenLog creates it).
func OpenReader(dir string) (*Reader, error) {
	if _, err := os.Stat(filepath.Join(dir, segName(0))); err != nil {
		return nil, fmt.Errorf("stream: open log %s: %w", dir, err)
	}
	return &Reader{dir: dir}, nil
}

// ReadFrom replays complete frames starting at off, invoking fn once per
// transaction, and returns the offset just past the last complete frame it
// consumed. Hitting the torn or still-being-written tail of the last
// segment is not an error: ReadFrom simply stops at the preceding frame
// boundary, and a later call with the returned offset picks up whatever has
// been appended since. Baskets passed to fn live in a scratch buffer that
// is reused; fn must copy anything it keeps.
//
// off must be a frame boundary previously returned by ReadFrom (or Log.End),
// or the zero Offset for the start of the log.
func (r *Reader) ReadFrom(off Offset, fn func(t txn.Transaction) error) (Offset, error) {
	if off.Byte != 0 && off.Byte < headerSize {
		return off, fmt.Errorf("stream: offset byte %d inside segment header", off.Byte)
	}
	if off.Byte == 0 {
		off.Byte = headerSize
	}
	var scratch []item.Item
	prevTID := int64(-1) // unknown when resuming; validated from the first frame on
	for {
		b, err := os.ReadFile(filepath.Join(r.dir, segName(off.Seg)))
		if err != nil {
			return off, fmt.Errorf("stream: read segment %d: %w", off.Seg, err)
		}
		// Only a segment-start offset pins the cumulative count; past the
		// header the offset's Txns already includes this segment's earlier
		// frames, so the base check must not use it.
		base := int64(-1)
		if off.Byte == headerSize {
			base = off.Txns
		}
		if err := headerOK(b, off.Seg, base); err != nil {
			return off, err
		}
		if off.Byte > int64(len(b)) {
			return off, fmt.Errorf("stream: offset byte %d past segment %d end %d", off.Byte, off.Seg, len(b))
		}
		for {
			payload, next, ferr := sliceFrame(b, off.Byte)
			if ferr == io.EOF || ferr == errShortFrame {
				nextSeg := filepath.Join(r.dir, segName(off.Seg+1))
				if _, serr := os.Stat(nextSeg); serr != nil {
					// Last segment: a short frame is just the writer's
					// in-flight tail. Wait at the boundary.
					return off, nil
				}
				// A successor exists, so this segment is immutable and
				// complete. A short frame here would be corruption — but we
				// may have raced rotation: re-read once to pick up bytes
				// appended between our read and the rotation.
				if ferr == errShortFrame {
					b2, rerr := os.ReadFile(filepath.Join(r.dir, segName(off.Seg)))
					if rerr != nil {
						return off, fmt.Errorf("stream: re-read segment %d: %w", off.Seg, rerr)
					}
					if int64(len(b2)) > int64(len(b)) {
						b = b2
						continue
					}
					return off, fmt.Errorf("stream: segment %d: torn frame at %d with successor present", off.Seg, off.Byte)
				}
				// Clean EOF with a successor: advance to the next segment.
				off = Offset{Seg: off.Seg + 1, Byte: headerSize, Txns: off.Txns}
				break // outer loop reads the next segment
			}
			if ferr != nil {
				return off, fmt.Errorf("stream: segment %d: frame at %d: %w", off.Seg, off.Byte, ferr)
			}
			n, tid, derr := decodeFrame(payload, prevTID, &scratch, fn)
			if derr != nil {
				return off, fmt.Errorf("stream: segment %d: frame at %d: %w", off.Seg, off.Byte, derr)
			}
			if n > 0 {
				prevTID = tid
			}
			off = Offset{Seg: off.Seg, Byte: next, Txns: off.Txns + n}
		}
	}
}

// headerOK validates a segment header, checking the cumulative base count
// only when base >= 0.
func headerOK(b []byte, seg uint64, base int64) error {
	if base >= 0 {
		return checkHeader(b, seg, base)
	}
	if len(b) < headerSize {
		return fmt.Errorf("stream: segment %d: short header", seg)
	}
	// Reuse checkHeader for magic/version/index by echoing the stored base.
	return checkHeader(b, seg, int64(binary.BigEndian.Uint64(b[13:])))
}

// Prefix returns a txn.Scanner over exactly the first off.Txns transactions
// of the log — the frozen prefix an incremental checkpoint was mined over.
// Each Scan call opens its own file handles and reuses a private basket
// scratch, so concurrent Scans (the driver's shard workers) are safe; fn
// must not retain the basket slice.
func (r *Reader) Prefix(off Offset) *PrefixScanner {
	return &PrefixScanner{dir: r.dir, limit: off.Txns}
}

// PrefixScanner is a stateless txn.Scanner over a log prefix.
type PrefixScanner struct {
	dir   string
	limit int64
}

// Len returns the number of transactions the scanner delivers.
func (p *PrefixScanner) Len() int { return int(p.limit) }

// errPrefixDone stops the replay once the prefix limit is reached.
var errPrefixDone = fmt.Errorf("stream: prefix done")

// Scan invokes fn for the first Len() transactions of the log in order.
func (p *PrefixScanner) Scan(fn func(t txn.Transaction) error) error {
	if p.limit == 0 {
		return nil
	}
	r := Reader{dir: p.dir}
	seen := int64(0)
	end, err := r.ReadFrom(Offset{}, func(t txn.Transaction) error {
		if seen == p.limit {
			return errPrefixDone
		}
		seen++
		return fn(t)
	})
	if errors.Is(err, errPrefixDone) {
		return nil
	}
	if err != nil {
		return err
	}
	if seen < p.limit {
		return fmt.Errorf("stream: prefix wants %d txns, log ends at %d (offset %+v)", p.limit, seen, end)
	}
	return nil
}
