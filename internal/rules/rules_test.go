package rules

import (
	"strings"
	"testing"

	"pgarm/internal/cumulate"
	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/taxonomy"
	"pgarm/internal/txn"
)

// hierarchy: 0 -> 2,3 ; 1 -> 4 ; 2 -> 5,6 ; 4 -> 8,9 ; 3 -> 7
func testTaxonomy() *taxonomy.Taxonomy {
	return taxonomy.MustNew([]item.Item{
		item.None, item.None, 0, 0, 1, 2, 2, 3, 4, 4,
	})
}

func minedResult(t *testing.T) (*cumulate.Result, *taxonomy.Taxonomy, int) {
	t.Helper()
	tax := testTaxonomy()
	d := &txn.DB{}
	baskets := [][]item.Item{
		{5, 8}, {5, 8}, {5, 8}, {5, 9}, {6, 8}, {7},
	}
	for i, b := range baskets {
		d.Append(txn.Transaction{TID: int64(i + 1), Items: item.Dedup(item.Clone(b))})
	}
	res, err := cumulate.Mine(tax, d, cumulate.Config{MinSupport: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	return res, tax, d.Len()
}

func TestDeriveBasics(t *testing.T) {
	res, tax, n := minedResult(t)
	rs, err := Derive(tax, res.All(), res.SupportIndex(), Config{MinConfidence: 0.5, NumTxns: n})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no rules derived")
	}
	// Every rule respects the thresholds and the hierarchy constraint.
	for _, r := range rs {
		if r.Confidence < 0.5 {
			t.Errorf("rule %v below confidence threshold", r)
		}
		if r.Support <= 0 || r.Support > 1 {
			t.Errorf("rule %v support out of range", r)
		}
		for _, y := range r.Consequent {
			for _, x := range r.Antecedent {
				if tax.IsAncestor(y, x) {
					t.Errorf("redundant rule survived: %v", r)
				}
			}
		}
		if item.Intersects(r.Antecedent, r.Consequent) {
			t.Errorf("antecedent and consequent overlap: %v", r)
		}
	}
	// Rules are sorted by confidence descending.
	for i := 1; i < len(rs); i++ {
		if rs[i].Confidence > rs[i-1].Confidence {
			t.Errorf("rules unsorted at %d", i)
		}
	}
}

func TestDeriveConfidenceExact(t *testing.T) {
	res, tax, n := minedResult(t)
	idx := res.SupportIndex()
	rs, err := Derive(tax, res.All(), idx, Config{MinConfidence: 0.01, NumTxns: n})
	if err != nil {
		t.Fatal(err)
	}
	// Find rule {5} => {8}: sup(5,8)=3 of 6, sup(5)=4 -> conf 0.75.
	found := false
	for _, r := range rs {
		if item.Equal(r.Antecedent, []item.Item{5}) && item.Equal(r.Consequent, []item.Item{8}) {
			found = true
			if r.Confidence != 0.75 {
				t.Errorf("conf(5=>8) = %g, want 0.75", r.Confidence)
			}
			if r.Support != 0.5 {
				t.Errorf("sup(5=>8) = %g, want 0.5", r.Support)
			}
		}
	}
	if !found {
		t.Error("rule {5}=>{8} missing")
	}
}

func TestDeriveThresholdFilters(t *testing.T) {
	res, tax, n := minedResult(t)
	low, _ := Derive(tax, res.All(), res.SupportIndex(), Config{MinConfidence: 0.1, NumTxns: n})
	high, _ := Derive(tax, res.All(), res.SupportIndex(), Config{MinConfidence: 0.9, NumTxns: n})
	if len(high) >= len(low) {
		t.Errorf("raising confidence must shrink the rule set: %d vs %d", len(high), len(low))
	}
}

func TestDeriveValidation(t *testing.T) {
	res, tax, _ := minedResult(t)
	if _, err := Derive(tax, res.All(), res.SupportIndex(), Config{MinConfidence: 0.5, NumTxns: 0}); err == nil {
		t.Error("zero NumTxns must fail")
	}
	if _, err := Derive(tax, res.All(), res.SupportIndex(), Config{MinConfidence: 1.5, NumTxns: 10}); err == nil {
		t.Error("confidence > 1 must fail")
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{
		Antecedent: []item.Item{1},
		Consequent: []item.Item{2},
		Support:    0.25,
		Confidence: 0.8,
	}
	s := r.String()
	if !strings.Contains(s, "=>") || !strings.Contains(s, "25.00%") || !strings.Contains(s, "80.0%") {
		t.Errorf("String = %q", s)
	}
}

func TestFormatNames(t *testing.T) {
	rs := []Rule{{
		Antecedent: []item.Item{0},
		Consequent: []item.Item{1},
		Support:    0.5,
		Confidence: 1,
	}}
	names := []string{"clothes", "footwear"}
	out := Format(rs, names)
	if !strings.Contains(out, "clothes") || !strings.Contains(out, "footwear") {
		t.Errorf("Format = %q", out)
	}
	// Missing names fall back to numeric ids.
	out = Format([]Rule{{Antecedent: []item.Item{5}, Consequent: []item.Item{6}}}, names)
	if !strings.Contains(out, "i5") {
		t.Errorf("fallback missing: %q", out)
	}
	if got := Format(rs, nil); !strings.Contains(got, "{0}") {
		t.Errorf("nil names: %q", got)
	}
}

func TestPruneKeepsInterestingRules(t *testing.T) {
	res, tax, n := minedResult(t)
	rs, err := Derive(tax, res.All(), res.SupportIndex(), Config{MinConfidence: 0.2, NumTxns: n})
	if err != nil {
		t.Fatal(err)
	}
	kept := Prune(tax, rs, res.SupportIndex(), n, 1.1)
	if len(kept) > len(rs) {
		t.Fatal("Prune grew the rule set")
	}
	// R <= 0 disables pruning.
	if got := Prune(tax, rs, res.SupportIndex(), n, 0); len(got) != len(rs) {
		t.Error("r=0 must be a no-op")
	}
	// Leaf-level rules that merely mirror their ancestor rule should be
	// dropped at a high interest threshold.
	aggressive := Prune(tax, rs, res.SupportIndex(), n, 1000)
	if len(aggressive) >= len(rs) {
		t.Errorf("r=1000 pruned nothing (%d rules)", len(rs))
	}
}

func TestDeriveSkipsSingletons(t *testing.T) {
	tax := testTaxonomy()
	large := []itemset.Counted{{Items: []item.Item{5}, Count: 3}}
	rs, err := Derive(tax, large, map[string]int64{itemset.Key([]item.Item{5}): 3},
		Config{MinConfidence: 0.1, NumTxns: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Errorf("1-itemsets cannot form rules, got %d", len(rs))
	}
}

func TestDeriveEmptyAndSingletonInputs(t *testing.T) {
	tax := testTaxonomy()
	// No large itemsets at all: no rules, no error.
	rs, err := Derive(tax, nil, map[string]int64{}, Config{MinConfidence: 0.5, NumTxns: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Errorf("empty input produced %d rules", len(rs))
	}
	// Empty itemsets and singletons are legal input (L_1 is always present in
	// mining output) and must be skipped silently, not panic or emit rules.
	large := []itemset.Counted{
		{Items: nil, Count: 5},
		{Items: []item.Item{}, Count: 4},
		{Items: []item.Item{5}, Count: 3},
		{Items: []item.Item{8}, Count: 2},
	}
	rs, err = Derive(tax, large, map[string]int64{
		itemset.Key([]item.Item{5}): 3,
		itemset.Key([]item.Item{8}): 2,
	}, Config{MinConfidence: 0, NumTxns: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Errorf("degenerate itemsets produced rules: %v", rs)
	}
}

func TestDeriveRejectsMalformedItemsets(t *testing.T) {
	tax := testTaxonomy()
	support := map[string]int64{}
	cases := []struct {
		name  string
		items []item.Item
	}{
		{"out of universe", []item.Item{5, 99}},
		{"negative item", []item.Item{-2, 5}},
		{"unsorted", []item.Item{8, 5}},
		{"duplicate", []item.Item{5, 5}},
	}
	for _, tc := range cases {
		large := []itemset.Counted{{Items: tc.items, Count: 3}}
		if _, err := Derive(tax, large, support, Config{MinConfidence: 0.5, NumTxns: 10}); err == nil {
			t.Errorf("%s: Derive accepted itemset %v", tc.name, tc.items)
		}
	}
}

func TestPruneEmptyAndMalformedRules(t *testing.T) {
	tax := testTaxonomy()
	support := map[string]int64{}
	// Empty rule set: identity, not a panic.
	if got := Prune(tax, nil, support, 10, 1.1); len(got) != 0 {
		t.Errorf("Prune(nil) = %v", got)
	}
	if got := Prune(tax, []Rule{}, support, 10, 1.1); len(got) != 0 {
		t.Errorf("Prune(empty) = %v", got)
	}
	// Rules holding out-of-universe items have no ancestors to compare
	// against; Prune must keep them rather than index the parent vector out
	// of range.
	rs := []Rule{
		{Antecedent: []item.Item{99}, Consequent: []item.Item{5}, Support: 0.1, Confidence: 0.5},
		{Antecedent: []item.Item{5}, Consequent: []item.Item{-7}, Support: 0.1, Confidence: 0.5},
	}
	if got := Prune(tax, rs, support, 10, 1.1); len(got) != len(rs) {
		t.Errorf("Prune dropped rules lacking ancestor evidence: kept %d of %d", len(got), len(rs))
	}
}
