// Package rules derives generalized association rules from large itemsets —
// the second subproblem of §2 of the paper. For every large itemset X and
// every non-empty proper subset Y ⊂ X, the rule (X−Y) ⇒ Y holds when its
// confidence sup(X)/sup(X−Y) meets the minimum, subject to the hierarchy
// constraint that no item in the consequent is an ancestor of an item in the
// antecedent (such rules are redundant: x ⇒ ancestor(x) always has 100%
// confidence).
//
// As an extension beyond the paper's evaluation, Prune applies Srikant &
// Agrawal's R-interestingness measure, dropping rules whose support and
// confidence are close to what their "ancestor rules" already predict.
package rules

import (
	"fmt"
	"sort"
	"strings"

	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/taxonomy"
)

// Rule is one association rule with its measures.
type Rule struct {
	Antecedent []item.Item // X − Y
	Consequent []item.Item // Y
	// Support is the fraction of transactions containing X = antecedent ∪
	// consequent.
	Support float64
	// Confidence is sup(X) / sup(antecedent).
	Confidence float64
	// Count is the absolute support count of X.
	Count int64
}

// String renders "{1,5} => {9} (sup 1.2%, conf 63.0%)".
func (r Rule) String() string {
	return fmt.Sprintf("%s => %s (sup %.2f%%, conf %.1f%%)",
		item.Format(r.Antecedent), item.Format(r.Consequent),
		r.Support*100, r.Confidence*100)
}

// Config controls rule derivation.
type Config struct {
	// MinConfidence is the confidence threshold in [0,1].
	MinConfidence float64
	// NumTxns is the database size used to turn counts into support
	// fractions; it must be positive.
	NumTxns int
}

// Derive generates every rule meeting the configuration from the large
// itemsets. support maps itemset keys (itemset.Key) to absolute counts and
// must cover every subset of every large itemset of size >= 1 — exactly what
// the mining result provides, because every subset of a large itemset is
// large. Rules are returned sorted by descending confidence, then support.
func Derive(tax *taxonomy.Taxonomy, large []itemset.Counted, support map[string]int64, cfg Config) ([]Rule, error) {
	if cfg.NumTxns <= 0 {
		return nil, fmt.Errorf("rules: NumTxns must be positive")
	}
	if cfg.MinConfidence < 0 || cfg.MinConfidence > 1 {
		return nil, fmt.Errorf("rules: MinConfidence %g out of [0,1]", cfg.MinConfidence)
	}
	var out []Rule
	universe := item.Item(tax.NumItems())
	for _, l := range large {
		// Empty and single-item itemsets admit no rule (a rule needs a
		// non-empty antecedent and consequent); they are legal input —
		// the mining result always includes L_1.
		if len(l.Items) < 2 {
			continue
		}
		// Defend against malformed input instead of panicking deep inside
		// the hierarchy queries: every item must be inside the taxonomy's
		// universe and the itemset canonical.
		if !item.IsSorted(l.Items) {
			return nil, fmt.Errorf("rules: itemset %v not canonical", l.Items)
		}
		if last := l.Items[len(l.Items)-1]; last >= universe || l.Items[0] < 0 {
			return nil, fmt.Errorf("rules: itemset %v outside taxonomy universe [0,%d)", l.Items, universe)
		}
		k := len(l.Items)
		// Enumerate non-empty proper subsets Y by antecedent size.
		for asz := 1; asz < k; asz++ {
			itemset.ForEachSubset(l.Items, asz, func(ante []item.Item) bool {
				cons := item.Minus(l.Items, ante)
				anteCount, ok := support[itemset.Key(ante)]
				if !ok || anteCount <= 0 {
					return true // should not happen for valid input
				}
				conf := float64(l.Count) / float64(anteCount)
				if conf < cfg.MinConfidence {
					return true
				}
				if consequentRedundant(tax, ante, cons) {
					return true
				}
				out = append(out, Rule{
					Antecedent: item.Clone(ante),
					Consequent: cons,
					Support:    float64(l.Count) / float64(cfg.NumTxns),
					Confidence: conf,
					Count:      l.Count,
				})
				return true
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if c := item.Compare(out[i].Antecedent, out[j].Antecedent); c != 0 {
			return c < 0
		}
		return item.Compare(out[i].Consequent, out[j].Consequent) < 0
	})
	return out, nil
}

// consequentRedundant reports whether some consequent item is an ancestor of
// some antecedent item (the §2 restriction on generalized rules).
func consequentRedundant(tax *taxonomy.Taxonomy, ante, cons []item.Item) bool {
	for _, y := range cons {
		for _, x := range ante {
			if tax.IsAncestor(y, x) {
				return true
			}
		}
	}
	return false
}

// Format renders rules one per line, resolving item names when names is
// non-nil (names[i] labels item i; empty or missing entries fall back to the
// numeric form).
func Format(rs []Rule, names []string) string {
	var b strings.Builder
	label := func(items []item.Item) string {
		if names == nil {
			return item.Format(items)
		}
		parts := make([]string, len(items))
		for i, x := range items {
			if int(x) < len(names) && names[x] != "" {
				parts[i] = names[x]
			} else {
				parts[i] = fmt.Sprintf("i%d", int32(x))
			}
		}
		return "{" + strings.Join(parts, ",") + "}"
	}
	for _, r := range rs {
		fmt.Fprintf(&b, "%s => %s (sup %.2f%%, conf %.1f%%)\n",
			label(r.Antecedent), label(r.Consequent), r.Support*100, r.Confidence*100)
	}
	return b.String()
}
