package rules

import (
	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/taxonomy"
)

// Prune applies the R-interestingness filter of Srikant & Agrawal (VLDB'95,
// §2.2): a rule X ⇒ Y is R-interesting when its support is at least R times
// the support expected from any "close ancestor" rule X' ⇒ Y' (obtained by
// generalizing one or more items of the rule one-or-more hierarchy levels
// up), or its confidence is at least R times the expected confidence. Rules
// explainable by their ancestors carry no new information and are dropped.
//
// support maps itemset keys to absolute counts over the same database that
// produced the rules; itemCount must cover every item appearing in the rules
// and their ancestors (the pass-1 vector). Rules whose ancestor statistics
// are unavailable are kept.
func Prune(tax *taxonomy.Taxonomy, rs []Rule, support map[string]int64, numTxns int, r float64) []Rule {
	if r <= 0 || len(rs) == 0 {
		return rs
	}
	byKey := make(map[string]Rule, len(rs))
	for _, rule := range rs {
		byKey[ruleKey(rule)] = rule
	}
	var out []Rule
	for _, rule := range rs {
		if interesting(tax, rule, byKey, support, numTxns, r) {
			out = append(out, rule)
		}
	}
	return out
}

func ruleKey(r Rule) string {
	return itemset.Key(r.Antecedent) + "|" + itemset.Key(r.Consequent)
}

// interesting checks the rule against every one-step generalization of each
// of its items; transitivity over close ancestors makes one-step checks
// sufficient, as in SA95.
func interesting(tax *taxonomy.Taxonomy, rule Rule, byKey map[string]Rule, support map[string]int64, numTxns int, r float64) bool {
	check := func(ante, cons []item.Item) (ok, decided bool) {
		anc, present := byKey[itemset.Key(ante)+"|"+itemset.Key(cons)]
		if !present {
			return false, false // ancestor rule not derived; no evidence
		}
		// Expected support: ancestor support scaled by the product of
		// item-level specialization ratios sup(x)/sup(ancestor(x)).
		ratio := 1.0
		scale := func(child, parent item.Item) {
			cs, okc := support[itemset.Key([]item.Item{child})]
			ps, okp := support[itemset.Key([]item.Item{parent})]
			if okc && okp && ps > 0 {
				ratio *= float64(cs) / float64(ps)
			}
		}
		for i := range rule.Antecedent {
			if rule.Antecedent[i] != ante[i] {
				scale(rule.Antecedent[i], ante[i])
			}
		}
		for i := range rule.Consequent {
			if rule.Consequent[i] != cons[i] {
				scale(rule.Consequent[i], cons[i])
			}
		}
		expSup := anc.Support * ratio
		expConf := anc.Confidence
		if rule.Support >= r*expSup || rule.Confidence >= r*expConf {
			return true, true
		}
		return false, true
	}

	// Generalize each antecedent and consequent item one level up. Items
	// outside the taxonomy's universe have no ancestors to generalize to;
	// skipping them (rather than indexing the parent vector out of range)
	// keeps Prune total on malformed rules — the rule is simply kept.
	universe := item.Item(tax.NumItems())
	for i, x := range rule.Antecedent {
		if x < 0 || x >= universe {
			continue
		}
		p := tax.Parent(x)
		if p == item.None {
			continue
		}
		ante := item.Clone(rule.Antecedent)
		ante[i] = p
		ante = item.Dedup(ante)
		if len(ante) != len(rule.Antecedent) || item.Intersects(ante, rule.Consequent) {
			continue
		}
		if pass, decided := check(ante, rule.Consequent); decided && !pass {
			return false
		}
	}
	for i, y := range rule.Consequent {
		if y < 0 || y >= universe {
			continue
		}
		p := tax.Parent(y)
		if p == item.None {
			continue
		}
		cons := item.Clone(rule.Consequent)
		cons[i] = p
		cons = item.Dedup(cons)
		if len(cons) != len(rule.Consequent) || item.Intersects(rule.Antecedent, cons) {
			continue
		}
		if pass, decided := check(rule.Antecedent, cons); decided && !pass {
			return false
		}
	}
	_ = numTxns // reserved for support-based expectations over raw counts
	return true
}
