package metrics

import (
	"strings"
	"testing"
	"time"
)

func samplePass() PassStats {
	return PassStats{
		Pass:       2,
		Candidates: 100,
		Large:      40,
		Nodes: []NodeStats{
			{Node: 0, Probes: 100, BytesReceived: 1500, DataBytesReceived: 1000, ItemsSent: 10, TxnsScanned: 50},
			{Node: 1, Probes: 300, BytesReceived: 3500, DataBytesReceived: 3000, ItemsSent: 30, TxnsScanned: 50},
			{Node: 2, Probes: 200, BytesReceived: 2500, DataBytesReceived: 2000, ItemsSent: 20, TxnsScanned: 50},
		},
	}
}

func TestPassAggregates(t *testing.T) {
	p := samplePass()
	if got := p.AvgBytesReceived(); got != 2000 {
		t.Errorf("AvgBytesReceived = %g", got)
	}
	if got := p.TotalItemsSent(); got != 60 {
		t.Errorf("TotalItemsSent = %d", got)
	}
	empty := PassStats{}
	if empty.AvgBytesReceived() != 0 {
		t.Error("empty pass avg should be 0")
	}
}

func TestSkewSummary(t *testing.T) {
	s := Summarize([]float64{100, 300, 200})
	if s.Min != 100 || s.Max != 300 || s.Mean != 200 {
		t.Errorf("summary = %+v", s)
	}
	if s.MaxOverMean != 1.5 {
		t.Errorf("MaxOverMean = %g", s.MaxOverMean)
	}
	if s.CV <= 0 {
		t.Errorf("CV = %g", s.CV)
	}
	flat := Summarize([]float64{5, 5, 5})
	if flat.CV != 0 || flat.MaxOverMean != 1 {
		t.Errorf("flat skew = %+v", flat)
	}
	if z := Summarize(nil); z.Mean != 0 {
		t.Errorf("empty summarize = %+v", z)
	}
	if !strings.Contains(s.String(), "max/mean") {
		t.Error("Skew.String missing fields")
	}
}

func TestProbeSkewUsesProbes(t *testing.T) {
	p := samplePass()
	s := p.ProbeSkew()
	if s.Max != 300 || s.Min != 100 {
		t.Errorf("probe skew = %+v", s)
	}
}

func TestRunStatsPassLookupAndString(t *testing.T) {
	rs := RunStats{
		Algorithm: "H-HPGM",
		Dataset:   "R30F5",
		Nodes:     3,
		MinSup:    0.003,
		Passes:    []PassStats{{Pass: 1}, samplePass()},
	}
	if rs.Pass(2) == nil || rs.Pass(2).Candidates != 100 {
		t.Error("Pass(2) lookup failed")
	}
	if rs.Pass(7) != nil {
		t.Error("Pass(7) should be nil")
	}
	out := rs.String()
	for _, want := range []string{"H-HPGM", "R30F5", "pass 2", "0.3%"} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q in %q", want, out)
		}
	}
}

func TestCostModel(t *testing.T) {
	m := CostModel{ProbePerOp: time.Microsecond, PerItem: 2 * time.Microsecond, PerByte: time.Nanosecond, PerTxn: time.Millisecond}
	ns := NodeStats{
		Probes:      1000,
		ItemsSent:   10,
		TxnsScanned: 2,
		// Whole-pass bytes include control traffic the model must ignore;
		// only the data-plane portion is charged.
		BytesSent: 9999, BytesReceived: 9999,
		DataBytesSent: 500, DataBytesReceived: 500,
	}
	want := 1000*time.Microsecond + 10*2*time.Microsecond + 1000*time.Nanosecond + 2*time.Millisecond
	if got := m.NodeTime(ns); got != want {
		t.Errorf("NodeTime = %v, want %v", got, want)
	}
	p := samplePass()
	pt := m.PassTime(p)
	// Slowest node is node 1.
	if pt != m.NodeTime(p.Nodes[1]) {
		t.Errorf("PassTime = %v, want slowest node's time", pt)
	}
	if tw := m.TotalWork(p); tw <= pt {
		t.Errorf("TotalWork %v must exceed PassTime %v", tw, pt)
	}
	if d := DefaultCostModel(); d.ProbePerOp <= 0 || d.PerByte <= 0 || d.PerTxn <= 0 {
		t.Error("default model has non-positive constants")
	}
}
