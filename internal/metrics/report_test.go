package metrics

import (
	"encoding/json"
	"testing"
	"time"

	"pgarm/internal/obs"
)

func reconciledRun() *RunStats {
	// Two nodes, two passes; kind 3 is the data plane.
	mk := func(node int, sentB, recvB int64) NodeStats {
		return NodeStats{
			Node: node, MsgsSent: 2, MsgsReceived: 2,
			BytesSent: sentB, BytesReceived: recvB,
			ByKind: []KindIO{
				{Kind: 1, Name: "size", MsgsSent: 1, MsgsReceived: 1, BytesSent: sentB / 2, BytesReceived: recvB / 2},
				{Kind: 3, Name: "data", MsgsSent: 1, MsgsReceived: 1, BytesSent: sentB - sentB/2, BytesReceived: recvB - recvB/2},
			},
		}
	}
	return &RunStats{
		Algorithm: "hpgm", Dataset: "t", Nodes: 2, MinSup: 0.01,
		Elapsed: time.Second,
		Passes: []PassStats{
			{Pass: 1, Candidates: 10, Large: 5, Nodes: []NodeStats{mk(0, 100, 40), mk(1, 60, 120)}},
			{Pass: 2, Candidates: 4, Large: 2, Nodes: []NodeStats{mk(0, 30, 10), mk(1, 20, 40)}},
		},
		Endpoints: []EndpointTotals{
			{Node: 0, MsgsSent: 4, MsgsReceived: 4, BytesSent: 130, BytesReceived: 50,
				ByKind: []KindIO{
					{Kind: 1, MsgsSent: 2, MsgsReceived: 2, BytesSent: 65, BytesReceived: 25},
					{Kind: 3, MsgsSent: 2, MsgsReceived: 2, BytesSent: 65, BytesReceived: 25},
				}},
			{Node: 1, MsgsSent: 4, MsgsReceived: 4, BytesSent: 80, BytesReceived: 160,
				ByKind: []KindIO{
					{Kind: 1, MsgsSent: 2, MsgsReceived: 2, BytesSent: 40, BytesReceived: 80},
					{Kind: 3, MsgsSent: 2, MsgsReceived: 2, BytesSent: 40, BytesReceived: 80},
				}},
		},
	}
}

func TestReconcileEndpoints(t *testing.T) {
	rs := reconciledRun()
	if err := rs.ReconcileEndpoints(); err != nil {
		t.Fatalf("balanced run failed to reconcile: %v", err)
	}
	// Perturb one endpoint total: must be caught.
	rs.Endpoints[0].BytesSent++
	if err := rs.ReconcileEndpoints(); err == nil {
		t.Fatal("aggregate imbalance not detected")
	}
	rs = reconciledRun()
	rs.Endpoints[1].ByKind[1].BytesReceived--
	rs.Endpoints[1].BytesReceived-- // keep aggregate consistent with itself
	if err := rs.ReconcileEndpoints(); err == nil {
		t.Fatal("per-kind imbalance not detected")
	}
	empty := &RunStats{}
	if err := empty.ReconcileEndpoints(); err == nil {
		t.Fatal("missing endpoint totals must error")
	}
}

func TestBuildReportShape(t *testing.T) {
	rs := reconciledRun()
	rs.Passes[0].Nodes[0].BarrierWait = 5 * time.Millisecond
	tr := obs.NewTracer()
	sp := tr.Begin(0, 0, "pass 1")
	sp.End()

	rep := BuildReport(rs, tr)
	if rep.Version != ReportVersion {
		t.Fatalf("version = %d", rep.Version)
	}
	if len(rep.Passes) != 2 || len(rep.Passes[0].Nodes) != 2 {
		t.Fatalf("report shape: %+v", rep)
	}
	if len(rep.Spans) != 1 || rep.Spans[0].Name != "pass 1" {
		t.Fatalf("spans = %+v", rep.Spans)
	}
	if rep.Passes[0].Nodes[0].BarrierWaitMS != 5 {
		t.Errorf("barrier wait = %v", rep.Passes[0].Nodes[0].BarrierWaitMS)
	}
	if rep.Passes[0].BarrierWaitSkew.Max == 0 {
		t.Error("barrier-wait skew missing")
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Passes[0].AvgDataBytesReceived != rs.Passes[0].AvgBytesReceived() {
		t.Error("round trip lost data")
	}

	// A nil tracer yields a report without spans.
	rep2 := BuildReport(rs, nil)
	if rep2.Spans != nil {
		t.Errorf("nil tracer produced spans: %+v", rep2.Spans)
	}
}
