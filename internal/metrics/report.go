package metrics

import (
	"fmt"
	"time"

	"pgarm/internal/obs"
)

// ReportVersion identifies the run-report JSON schema. Bump it on any
// incompatible change so downstream trajectory tooling can dispatch.
//
// Version history:
//
//	1 — initial schema (passes, endpoints, span rollups)
//	2 — adds the per-pass "skew" section and "spans_dropped"
//	3 — adds the per-pass "plan" section (partitioner, granule, escalations)
//	4 — adds the "stream" section (incremental checkpoints: delta/recount
//	    fractions, append→servable freshness, bit-identity)
//	5 — adds the "fpg" section (FP-Growth vs. Cumulate-family head-to-head:
//	    per-minsup elapsed, speedup over the best candidate engine,
//	    bit-identity against sequential Cumulate)
const ReportVersion = 5

// Report is the machine-readable form of one mining run: RunStats flattened
// into stable JSON plus span rollups from the tracer (when tracing was on).
// It is the diffable artifact `pgarm-bench -json` emits.
type Report struct {
	Version   int          `json:"version"`
	Algorithm string       `json:"algorithm"`
	Dataset   string       `json:"dataset"`
	Nodes     int          `json:"nodes"`
	MinSup    float64      `json:"min_sup"`
	ElapsedMS float64      `json:"elapsed_ms"`
	Passes    []PassReport `json:"passes"`
	// Skew carries one cluster-imbalance summary per pass, computed from the
	// same per-node stats Passes reports — the two sections reconcile by
	// construction.
	Skew []SkewReport `json:"skew,omitempty"`
	// Plan carries one candidate-assignment decision per pass: the
	// partitioner, the duplication granule and any adaptive per-subtree
	// escalations the pass ran with.
	Plan      []PlanDecision   `json:"plan,omitempty"`
	Endpoints []EndpointTotals `json:"endpoints,omitempty"`
	Spans     []obs.Rollup     `json:"spans,omitempty"`
	// SpansDropped counts spans the tracer discarded at its buffer cap
	// (cluster-wide when remote tracers were merged in); non-zero means the
	// trace file is truncated.
	SpansDropped int64 `json:"spans_dropped,omitempty"`
}

// PassReport is one pass of a Report.
type PassReport struct {
	Pass       int     `json:"pass"`
	Candidates int     `json:"candidates"`
	Duplicated int     `json:"duplicated,omitempty"`
	Fragments  int     `json:"fragments,omitempty"`
	Large      int     `json:"large"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	GenerateMS float64 `json:"generate_ms,omitempty"`
	// AvgDataBytesReceived is Table 6's quantity: mean count-support payload
	// bytes received per node.
	AvgDataBytesReceived float64      `json:"avg_data_bytes_received"`
	ProbeSkew            Skew         `json:"probe_skew"`
	BarrierWaitSkew      Skew         `json:"barrier_wait_skew"`
	Nodes                []NodeReport `json:"nodes"`
}

// NodeReport is one node's counters within one pass.
type NodeReport struct {
	Node              int      `json:"node"`
	TxnsScanned       int64    `json:"txns_scanned"`
	Probes            int64    `json:"probes"`
	Increments        int64    `json:"increments"`
	ItemsSent         int64    `json:"items_sent"`
	ItemsReceived     int64    `json:"items_received"`
	BytesSent         int64    `json:"bytes_sent"`
	BytesReceived     int64    `json:"bytes_received"`
	DataBytesSent     int64    `json:"data_bytes_sent"`
	DataBytesReceived int64    `json:"data_bytes_received"`
	MsgsSent          int64    `json:"msgs_sent"`
	MsgsReceived      int64    `json:"msgs_received"`
	BlocksScanned     int64    `json:"blocks_scanned,omitempty"`
	BlocksSkipped     int64    `json:"blocks_skipped,omitempty"`
	BytesDecoded      int64    `json:"bytes_decoded,omitempty"`
	ScanMS            float64  `json:"scan_ms"`
	BarrierWaitMS     float64  `json:"barrier_wait_ms"`
	ByKind            []KindIO `json:"by_kind,omitempty"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// BuildReport flattens a run into its report form. tracer may be nil; when
// tracing was on its per-span rollups are embedded.
func BuildReport(rs *RunStats, tracer *obs.Tracer) Report {
	rep := Report{
		Version:   ReportVersion,
		Algorithm: rs.Algorithm,
		Dataset:   rs.Dataset,
		Nodes:     rs.Nodes,
		MinSup:    rs.MinSup,
		ElapsedMS: ms(rs.Elapsed),
		Endpoints: rs.Endpoints,
		Spans:     tracer.Rollups(),
	}
	rep.SpansDropped = tracer.Dropped()
	for _, p := range rs.Passes {
		pr := PassReport{
			Pass:                 p.Pass,
			Candidates:           p.Candidates,
			Duplicated:           p.Duplicated,
			Fragments:            p.Fragments,
			Large:                p.Large,
			ElapsedMS:            ms(p.Elapsed),
			GenerateMS:           ms(p.Generate),
			AvgDataBytesReceived: p.AvgBytesReceived(),
			ProbeSkew:            p.ProbeSkew(),
			BarrierWaitSkew:      p.BarrierWaitSkew(),
		}
		for _, n := range p.Nodes {
			pr.Nodes = append(pr.Nodes, NodeReport{
				Node:              n.Node,
				TxnsScanned:       n.TxnsScanned,
				Probes:            n.Probes,
				Increments:        n.Increments,
				ItemsSent:         n.ItemsSent,
				ItemsReceived:     n.ItemsReceived,
				BytesSent:         n.BytesSent,
				BytesReceived:     n.BytesReceived,
				DataBytesSent:     n.DataBytesSent,
				DataBytesReceived: n.DataBytesReceived,
				MsgsSent:          n.MsgsSent,
				MsgsReceived:      n.MsgsReceived,
				BlocksScanned:     n.BlocksScanned,
				BlocksSkipped:     n.BlocksSkipped,
				BytesDecoded:      n.BytesDecoded,
				ScanMS:            ms(n.ScanTime),
				BarrierWaitMS:     ms(n.BarrierWait),
				ByKind:            n.ByKind,
			})
		}
		rep.Passes = append(rep.Passes, pr)
		rep.Skew = append(rep.Skew, ComputeSkew(p.Pass, p.Nodes))
		if p.Plan != nil {
			rep.Plan = append(rep.Plan, *p.Plan)
		}
	}
	return rep
}

// ReconcileEndpoints checks that the per-pass windows tile the run: for every
// node, the pass deltas (aggregate and per kind) sum exactly to the
// endpoint's lifetime totals. It returns nil when the accounting balances.
func (r *RunStats) ReconcileEndpoints() error {
	if len(r.Endpoints) == 0 {
		return fmt.Errorf("metrics: no endpoint totals recorded")
	}
	type agg struct {
		msgsSent, msgsRecv, bytesSent, bytesRecv int64
		byKind                                   map[uint8]KindIO
	}
	perNode := make(map[int]*agg)
	for _, p := range r.Passes {
		for _, n := range p.Nodes {
			a := perNode[n.Node]
			if a == nil {
				a = &agg{byKind: make(map[uint8]KindIO)}
				perNode[n.Node] = a
			}
			a.msgsSent += n.MsgsSent
			a.msgsRecv += n.MsgsReceived
			a.bytesSent += n.BytesSent
			a.bytesRecv += n.BytesReceived
			for _, k := range n.ByKind {
				cur := a.byKind[k.Kind]
				cur.Kind = k.Kind
				cur.MsgsSent += k.MsgsSent
				cur.MsgsReceived += k.MsgsReceived
				cur.BytesSent += k.BytesSent
				cur.BytesReceived += k.BytesReceived
				a.byKind[k.Kind] = cur
			}
		}
	}
	for _, ep := range r.Endpoints {
		a := perNode[ep.Node]
		if a == nil {
			a = &agg{byKind: make(map[uint8]KindIO)}
		}
		if a.msgsSent != ep.MsgsSent || a.msgsRecv != ep.MsgsReceived ||
			a.bytesSent != ep.BytesSent || a.bytesRecv != ep.BytesReceived {
			return fmt.Errorf("metrics: node %d pass sums (sent %d msgs/%d B, recv %d msgs/%d B) != endpoint totals (sent %d msgs/%d B, recv %d msgs/%d B)",
				ep.Node, a.msgsSent, a.bytesSent, a.msgsRecv, a.bytesRecv,
				ep.MsgsSent, ep.BytesSent, ep.MsgsReceived, ep.BytesReceived)
		}
		for _, k := range ep.ByKind {
			got := a.byKind[k.Kind]
			if got.MsgsSent != k.MsgsSent || got.MsgsReceived != k.MsgsReceived ||
				got.BytesSent != k.BytesSent || got.BytesReceived != k.BytesReceived {
				return fmt.Errorf("metrics: node %d kind %d (%s): pass sums %+v != endpoint totals %+v",
					ep.Node, k.Kind, k.Name, got, k)
			}
		}
	}
	return nil
}

// BarrierWaitSkew summarizes the per-node barrier-wait distribution — high
// max/mean means one straggler held the whole cluster at the pass barrier.
func (p *PassStats) BarrierWaitSkew() Skew {
	vals := make([]float64, len(p.Nodes))
	for i, n := range p.Nodes {
		vals[i] = float64(n.BarrierWait)
	}
	return Summarize(vals)
}
