package metrics

import "time"

// CostModel converts a node's exact work counters into simulated
// shared-nothing execution time. The reproduction host is a single box (and
// possibly a single core), so goroutine wall-clock cannot exhibit the
// paper's parallel speedup; instead each pass's time is modeled as the
// *slowest node's* work — precisely the quantity a shared-nothing barrier
// waits for on the SP-2 — computed from deterministic counters (probes,
// bytes moved, transactions scanned).
//
// The constants are calibrated to mid-90s MPP ratios: a hash-table probe
// costs on the order of a microsecond of POWER2 time; every *item* that
// crosses the interconnect carries several microseconds of software
// overhead on each end (marshalling, message handling — the reason the
// paper accounts communication in items sent, e.g. HPGM's 18 vs H-HPGM's 3
// in Examples 1-2), on top of a small per-byte bandwidth charge; and a
// transaction carries fixed parse/extend overhead. Absolute values only
// scale the curves; every comparison the paper makes is a ratio.
type CostModel struct {
	ProbePerOp time.Duration // hash-table probe + possible increment
	PerItem    time.Duration // software cost of one item shipped, paid by each end
	PerByte    time.Duration // fabric payload byte, sent or received (bandwidth)
	PerTxn     time.Duration // local-disk read + ancestor handling per transaction scan
}

// DefaultCostModel returns the calibration used by the experiment harness.
func DefaultCostModel() CostModel {
	return CostModel{
		ProbePerOp: 1 * time.Microsecond,
		PerItem:    5 * time.Microsecond,
		PerByte:    30 * time.Nanosecond,
		PerTxn:     5 * time.Microsecond,
	}
}

// NodeTime models one node's busy time in a pass. Only count-support
// data-plane traffic is charged: the pass-end L_k gather/broadcast is
// byte-identical across all algorithms of a comparison (same L_k), but its
// size does not shrink with the scaled-down database, so charging it would
// let a scale artifact — not an algorithmic difference — dominate small-
// scale reproductions.
func (m CostModel) NodeTime(ns NodeStats) time.Duration {
	d := time.Duration(ns.Probes) * m.ProbePerOp
	d += time.Duration(ns.ItemsSent+ns.ItemsReceived) * m.PerItem
	d += time.Duration(ns.DataBytesSent+ns.DataBytesReceived) * m.PerByte
	d += time.Duration(ns.TxnsScanned) * m.PerTxn
	return d
}

// PassTime models the pass's parallel execution time: the slowest node
// gates the barrier.
func (m CostModel) PassTime(ps PassStats) time.Duration {
	var max time.Duration
	for _, ns := range ps.Nodes {
		if t := m.NodeTime(ns); t > max {
			max = t
		}
	}
	return max
}

// TotalWork models the pass's aggregate work across all nodes (the
// numerator of an efficiency calculation).
func (m CostModel) TotalWork(ps PassStats) time.Duration {
	var sum time.Duration
	for _, ns := range ps.Nodes {
		sum += m.NodeTime(ns)
	}
	return sum
}
