package metrics

// AdaptReport is one arm of the skew-adaptation experiment
// (`pgarm-bench -experiment adapt`): the same zipf-skewed partitioning mined
// by a sequential reference ("cumulate"), by the static base algorithm
// ("static") and with skew-adaptive granule escalation on ("adaptive").
// Unlike the modeled mining experiments the barrier waits are real wall-clock
// on the machine running the bench; the byte counters are exact.
type AdaptReport struct {
	Arm       string  `json:"arm"` // "cumulate", "static" or "adaptive"
	Algorithm string  `json:"algorithm"`
	Nodes     int     `json:"nodes"`
	MinSup    float64 `json:"min_sup"`
	// Zipf is the skew exponent of the partition-size split (0 = even).
	Zipf float64 `json:"zipf"`
	// Passes holds the per-pass barrier and plan summary (empty for the
	// sequential reference, which has no barrier).
	Passes []AdaptPass `json:"passes,omitempty"`
	// TotalBytes is the whole-run fabric traffic summed over nodes and passes.
	TotalBytes int64 `json:"total_bytes"`
	// ItemsSent is the whole-run count-support item shipping volume — the
	// counter duplication is meant to shrink.
	ItemsSent int64 `json:"items_sent"`
	// FinalGranules is the last pass's granule map (e.g. "none,root3=fine").
	FinalGranules string `json:"final_granules,omitempty"`
	// Identical reports bit-identity of this arm's frequent itemsets against
	// the sequential reference (trivially true on the reference itself).
	Identical bool `json:"identical"`
}

// AdaptPass is one pass of one adaptation arm.
type AdaptPass struct {
	Pass int `json:"pass"`
	// BarrierWaitMaxMS / BarrierWaitMeanMS summarize how long nodes idled at
	// the pass-end L_k barrier — max is the cluster-limiting wait the
	// adaptive plan tries to shrink.
	BarrierWaitMaxMS  float64 `json:"barrier_wait_max_ms"`
	BarrierWaitMeanMS float64 `json:"barrier_wait_mean_ms"`
	// BytesTotal is the pass's fabric traffic summed over nodes.
	BytesTotal int64 `json:"bytes_total"`
	// Granule is the pass plan's granule map ("none", "none,root3=fine", ...).
	Granule string `json:"granule"`
	// Duplicated is how many candidates the plan copied to every node.
	Duplicated int `json:"duplicated"`
}
