package metrics

// FpgReport is one arm × minsup cell of the FP-Growth head-to-head
// (`pgarm-bench -experiment fpg`): the same partitioned dataset mined by a
// Cumulate-family engine and by the pattern-growth engine, swept into the
// low-minsup regime where Apriori's candidate explosion dominates.
type FpgReport struct {
	// Arm names the engine this row measured ("FPG" or a core algorithm);
	// Dataset names the source.
	Arm     string  `json:"arm"`
	Dataset string  `json:"dataset"`
	MinSup  float64 `json:"min_sup"`
	Nodes   int     `json:"nodes"`
	Workers int     `json:"workers"`

	// ElapsedMS is the arm's mining wall-clock at this minsup.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Levels/Itemsets summarize the result (identical across arms when
	// Identical holds).
	Levels   int `json:"levels"`
	Itemsets int `json:"itemsets"`
	// Candidates is the total candidate count across k >= 2 passes for the
	// generate-and-count arms (the quantity that explodes at low minsup);
	// for FPG it is the suffix-task count.
	Candidates int `json:"candidates"`

	// SpeedupX is this arm's elapsed relative to the FPG arm at the same
	// minsup (>1 means FPG is faster); 1 for the FPG row itself.
	SpeedupX float64 `json:"speedup_x,omitempty"`

	// Identical reports bit-identity of the arm's large itemsets (items,
	// counts and order) against sequential Cumulate over the same data.
	Identical bool `json:"identical"`
}
