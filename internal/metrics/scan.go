package metrics

// ScanReport is one arm of the storage-format scan experiment
// (`pgarm-bench -experiment scan`): either a raw decode-throughput
// measurement of one format at one scale ("decode"), or a full mining run
// over columnar partitions reporting how much the per-pass block predicate
// skipped ("mine"). Unlike the modeled mining experiments this measures real
// wall-clock on the machine running the bench.
type ScanReport struct {
	Kind    string  `json:"kind"` // "decode" or "mine"
	Dataset string  `json:"dataset"`
	Scale   float64 `json:"scale"`
	Format  string  `json:"format"` // "row", "columnar" or "memory"
	Txns    int     `json:"txns"`

	// Decode arm: wall-clock of a full parallel scan of the partition.
	FileBytes int64   `json:"file_bytes,omitempty"`
	Workers   int     `json:"workers,omitempty"`
	ScanMS    float64 `json:"scan_ms,omitempty"`
	// Speedup is this arm's scan time relative to the row format at the
	// same scale and worker count (row rows report 1).
	Speedup float64 `json:"speedup,omitempty"`

	// Mine arm: block-predicate effectiveness over a full-depth run.
	MinSup        float64 `json:"min_sup,omitempty"`
	TxnsPerBlock  int     `json:"txns_per_block,omitempty"`
	Passes        int     `json:"passes,omitempty"`
	BlocksScanned int64   `json:"blocks_scanned,omitempty"`
	BlocksSkipped int64   `json:"blocks_skipped,omitempty"`
	BytesDecoded  int64   `json:"bytes_decoded,omitempty"`
	SkipRatio     float64 `json:"skip_ratio,omitempty"`

	// Identical reports bit-identity of this arm's frequent itemsets
	// against the in-memory reference at every checked worker count.
	Identical bool `json:"identical"`
}
