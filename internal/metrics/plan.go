package metrics

import (
	"fmt"
	"strings"
)

// PlanDecision is one pass's candidate-to-node assignment, made first-class:
// the artifact the driver's plan phase produces before any scanning starts.
// Every node computes the identical decision from globally replicated inputs
// (the broadcast skew hint, C_k, the pass-1 counts), so the decision is both
// inspectable (report, /debug/cluster) and bit-identity-safe — duplication
// only moves where a candidate is counted, never whether it is counted.
type PlanDecision struct {
	Pass int `json:"pass"`
	// Partitioner names the assignment rule: "root-vector-hash" (H-HPGM
	// family), "itemset-hash" (HPGM), "replicated" (NPGM/NPSPM),
	// "pattern-hash"/"pattern-root-hash" (sequence miners), "dense-reduce"
	// (pass 1), "sequential" (the single-node baseline).
	Partitioner string `json:"partitioner"`
	// Granule is the base duplication granule the pass ran with: "none",
	// "tree", "path", "fine", or "all" for fully replicated candidate sets.
	// Adaptive runs may escalate individual taxonomy subtrees above it (see
	// Escalations).
	Granule string `json:"granule"`
	// Candidates is |C_k|; Duplicated how many of them every node counts
	// locally under this plan.
	Candidates int `json:"candidates"`
	Duplicated int `json:"duplicated,omitempty"`
	// Adaptive reports whether skew-adaptive granule escalation was enabled.
	Adaptive bool `json:"adaptive,omitempty"`
	// SkewPass is the pass of the skew snapshot this decision consumed, 0
	// when none was complete yet (the first passes of a run, or single-pass
	// runs).
	SkewPass int `json:"skew_pass,omitempty"`
	// Escalations is the live granule map of an adaptive pass: the taxonomy
	// roots whose subtrees were escalated above the base granule, with the
	// granule each runs at now. Empty when no subtree is escalated.
	Escalations []Escalation `json:"escalations,omitempty"`
}

// Escalation is one hot taxonomy subtree's granule override.
type Escalation struct {
	// Root is the taxonomy root item of the escalated subtree.
	Root int `json:"root"`
	// Granule is the duplication granule the subtree was escalated to
	// ("tree", "path" or "fine").
	Granule string `json:"granule"`
}

// GranuleMap renders the decision's effective granule assignment compactly:
// the base granule, then one ",root<id>=<granule>" per escalated subtree —
// e.g. "none,root3=fine". The form model snapshots record.
func (d *PlanDecision) GranuleMap() string {
	if d == nil || d.Granule == "" {
		return ""
	}
	var b strings.Builder
	b.WriteString(d.Granule)
	for _, e := range d.Escalations {
		fmt.Fprintf(&b, ",root%d=%s", e.Root, e.Granule)
	}
	return b.String()
}
