package metrics

// StreamReport is one incremental-mining checkpoint of the streaming bench
// (`pgarm-bench -experiment stream`): how much candidate re-counting the
// FUP carry-forward avoided, how the incremental wall-clock compares to a
// full batch re-mine over the same data, and the end-to-end append→servable
// freshness (append start to snapshot on disk).
type StreamReport struct {
	// Checkpoint is the 0-based delta index; Dataset names the source.
	Checkpoint int     `json:"checkpoint"`
	Dataset    string  `json:"dataset"`
	MinSup     float64 `json:"min_sup"`
	Workers    int     `json:"workers"`

	// DeltaTxns/TotalTxns are the appended and cumulative transaction
	// counts at this checkpoint.
	DeltaTxns int64 `json:"delta_txns"`
	TotalTxns int64 `json:"total_txns"`

	// Passes counts executed passes; Candidates every candidate across the
	// k >= 2 passes; Recounted those absent from the prior border sets (the
	// only ones that forced a prefix rescan); PrefixScans the passes that
	// touched the prefix at all.
	Passes      int `json:"passes"`
	Candidates  int `json:"candidates"`
	Recounted   int `json:"recounted"`
	PrefixScans int `json:"prefix_scans"`
	// RecountFraction is Recounted / Candidates (0 when no candidates).
	RecountFraction float64 `json:"recount_fraction"`

	// IncrementalMS is the checkpoint's mining wall-clock; FullMS the batch
	// re-mine over the identical data; SpeedupX their ratio.
	IncrementalMS float64 `json:"incremental_ms"`
	FullMS        float64 `json:"full_ms"`
	SpeedupX      float64 `json:"speedup_x"`

	// FreshnessMS is append start → snapshot durable on disk: the
	// end-to-end staleness a serving process reloading the snapshot sees.
	FreshnessMS float64 `json:"freshness_ms"`

	// Rules is the derived rule count in the written snapshot.
	Rules int `json:"rules"`

	// Identical reports bit-identity of the incremental large itemsets
	// (items, counts and order) against the full batch re-mine.
	Identical bool `json:"identical"`
}
