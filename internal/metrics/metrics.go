// Package metrics collects the per-node and per-pass measurements the
// paper's evaluation reports: communication volume (Table 6), execution time
// (Figures 13, 14, 16) and hash-table probe counts per node — the load
// distribution of Figure 15 — plus the skew summary statistics used to
// compare algorithms.
package metrics

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// NodeStats are the counters one node accumulates during one pass.
type NodeStats struct {
	Node          int
	TxnsScanned   int64 // transactions read from local disk
	Probes        int64 // candidate-table probes while counting
	Increments    int64 // sup_cou increments actually applied
	ItemsSent     int64 // items shipped to other nodes (paper's "sends N items")
	ItemsReceived int64 // items received from other nodes during count support
	// BytesSent/Received are the whole-pass fabric counters, computed as
	// deltas between monotonic endpoint snapshots taken at pass boundaries.
	// The per-pass windows tile the run exactly: summed over all passes they
	// equal the endpoint's lifetime totals.
	BytesSent     int64
	BytesReceived int64
	// DataBytesSent/Received cover only the count-support exchange (message
	// kind "data") — the traffic Table 6 reports — excluding the L_k gather
	// and broadcast. The sent side is the per-kind snapshot delta, the
	// received side counted at delivery.
	DataBytesSent     int64
	DataBytesReceived int64
	MsgsSent          int64 // fabric messages sent
	MsgsReceived      int64 // fabric messages received
	// BlocksScanned/BlocksSkipped/BytesDecoded profile the block-granular
	// scan path of columnar partitions: blocks decoded, blocks the pass
	// predicate ruled out before any I/O, and encoded bytes actually
	// decoded. Sources without blocks leave them zero; the sequence miners
	// reuse BlocksSkipped with the customer sequence as the skip unit.
	BlocksScanned int64
	BlocksSkipped int64
	BytesDecoded  int64
	ScanTime      time.Duration // local scan + counting wall time
	// BarrierWait is how long this node blocked in the pass-end L_k
	// gather/broadcast barrier — the direct measure of load skew: an idle
	// node waits for the cluster's straggler.
	BarrierWait time.Duration
	// ByKind breaks the pass's fabric traffic down by message kind, indexed
	// by kind; entries for kinds unused this pass are zero.
	ByKind []KindIO
}

// KindIO is one message kind's traffic during one node's pass window.
type KindIO struct {
	Kind          uint8  `json:"kind"`
	Name          string `json:"name,omitempty"`
	MsgsSent      int64  `json:"msgs_sent"`
	MsgsReceived  int64  `json:"msgs_received"`
	BytesSent     int64  `json:"bytes_sent"`
	BytesReceived int64  `json:"bytes_received"`
}

// AddScanCounters folds a scan worker's counters into the node's pass
// totals: the additive quantities a sharded partition scan accumulates per
// worker (transactions, probes, increments, items shipped). Communication
// byte/message counters and wall times are owned by the node, not its
// workers, and are left untouched.
func (s *NodeStats) AddScanCounters(w *NodeStats) {
	s.TxnsScanned += w.TxnsScanned
	s.Probes += w.Probes
	s.Increments += w.Increments
	s.ItemsSent += w.ItemsSent
	s.BlocksScanned += w.BlocksScanned
	s.BlocksSkipped += w.BlocksSkipped
	s.BytesDecoded += w.BytesDecoded
}

// PassStats aggregates one pass across the cluster.
type PassStats struct {
	Pass       int
	Candidates int           // |C_k| (total, before partitioning)
	Duplicated int           // candidates copied to every node (TGD/PGD/FGD)
	Fragments  int           // NPGM candidate fragments (scan repetitions)
	Large      int           // |L_k|
	Elapsed    time.Duration // wall time of the whole pass
	Generate   time.Duration // candidate-generation share of Elapsed
	// Plan is the pass's candidate-to-node assignment decision, recorded by
	// the driver's plan phase (nil only for runs predating it).
	Plan  *PlanDecision
	Nodes []NodeStats
}

// AvgBytesReceived returns mean count-support payload bytes received per
// node — the quantity of Table 6.
func (p *PassStats) AvgBytesReceived() float64 {
	if len(p.Nodes) == 0 {
		return 0
	}
	var sum int64
	for _, n := range p.Nodes {
		sum += n.DataBytesReceived
	}
	return float64(sum) / float64(len(p.Nodes))
}

// AvgTotalBytesReceived returns mean whole-pass payload bytes per node,
// including the L_k gather and broadcast.
func (p *PassStats) AvgTotalBytesReceived() float64 {
	if len(p.Nodes) == 0 {
		return 0
	}
	var sum int64
	for _, n := range p.Nodes {
		sum += n.BytesReceived
	}
	return float64(sum) / float64(len(p.Nodes))
}

// TotalItemsSent sums the items shipped between nodes.
func (p *PassStats) TotalItemsSent() int64 {
	var sum int64
	for _, n := range p.Nodes {
		sum += n.ItemsSent
	}
	return sum
}

// ProbeSkew summarizes the per-node probe distribution.
func (p *PassStats) ProbeSkew() Skew {
	vals := make([]float64, len(p.Nodes))
	for i, n := range p.Nodes {
		vals[i] = float64(n.Probes)
	}
	return Summarize(vals)
}

// Skew describes how evenly a per-node quantity is distributed.
type Skew struct {
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
	// CV is the coefficient of variation (stddev/mean); 0 is perfectly flat.
	CV float64 `json:"cv"`
	// MaxOverMean is the bottleneck factor: >1 means the busiest node does
	// proportionally more work than average, bounding speedup.
	MaxOverMean float64 `json:"max_over_mean"`
}

// Summarize computes skew statistics over per-node values.
func Summarize(vals []float64) Skew {
	if len(vals) == 0 {
		return Skew{}
	}
	s := Skew{Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, v := range vals {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(vals))
	var ss float64
	for _, v := range vals {
		d := v - s.Mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(len(vals)))
	if s.Mean != 0 {
		s.CV = sd / s.Mean
		s.MaxOverMean = s.Max / s.Mean
	}
	return s
}

// SkewReport is the per-pass cluster-imbalance summary the coordinator's
// telemetry plane computes and the JSON run report carries: how unevenly one
// pass's work landed across nodes, and who the straggler was — the direct
// input for adaptive re-partitioning.
type SkewReport struct {
	Pass int `json:"pass"`
	// BarrierWaitMaxOverMean is the barrier-wait imbalance ratio: 1.0 means
	// every node idled equally long at the L_k barrier; large values mean one
	// straggler held the cluster while the rest waited.
	BarrierWaitMaxOverMean float64 `json:"barrier_wait_max_over_mean"`
	// BytesSentCV / BlocksScannedCV are coefficients of variation of the
	// per-node fabric bytes sent and blocks scanned this pass — communication
	// and scan-load spread (Aouad et al.'s dominant distributed-Apriori
	// variance sources).
	BytesSentCV     float64 `json:"bytes_sent_cv"`
	BlocksScannedCV float64 `json:"blocks_scanned_cv"`
	// Straggler is the node with the longest local scan+count time this pass
	// (ties resolved to the lowest id); -1 when no node stats are available.
	Straggler int `json:"straggler"`
}

// ComputeSkew derives the pass's skew summary from its per-node stats.
func ComputeSkew(pass int, nodes []NodeStats) SkewReport {
	sr := SkewReport{Pass: pass, Straggler: -1}
	if len(nodes) == 0 {
		return sr
	}
	bw := make([]float64, len(nodes))
	bs := make([]float64, len(nodes))
	bl := make([]float64, len(nodes))
	straggler := nodes[0]
	for i, n := range nodes {
		bw[i] = float64(n.BarrierWait)
		bs[i] = float64(n.BytesSent)
		bl[i] = float64(n.BlocksScanned)
		if n.ScanTime > straggler.ScanTime ||
			(n.ScanTime == straggler.ScanTime && n.Node < straggler.Node) {
			straggler = n
		}
	}
	sr.BarrierWaitMaxOverMean = Summarize(bw).MaxOverMean
	sr.BytesSentCV = Summarize(bs).CV
	sr.BlocksScannedCV = Summarize(bl).CV
	sr.Straggler = straggler.Node
	return sr
}

// String renders the skew summary.
func (s Skew) String() string {
	return fmt.Sprintf("min=%.0f max=%.0f mean=%.0f cv=%.3f max/mean=%.2f",
		s.Min, s.Max, s.Mean, s.CV, s.MaxOverMean)
}

// RunStats aggregates a whole mining run.
type RunStats struct {
	Algorithm string
	Dataset   string
	Nodes     int
	MinSup    float64
	Elapsed   time.Duration
	Passes    []PassStats
	// Endpoints are the lifetime fabric totals per node, captured when the
	// run finishes. Per-pass windows reconcile against them: for every node
	// and kind, the pass deltas sum exactly to these totals.
	Endpoints []EndpointTotals
}

// EndpointTotals are one node's lifetime fabric counters.
type EndpointTotals struct {
	Node          int      `json:"node"`
	MsgsSent      int64    `json:"msgs_sent"`
	MsgsReceived  int64    `json:"msgs_received"`
	BytesSent     int64    `json:"bytes_sent"`
	BytesReceived int64    `json:"bytes_received"`
	ByKind        []KindIO `json:"by_kind,omitempty"`
}

// FinalPlan returns the last pass's plan decision — the granule map the run
// ended on — or nil when no pass recorded one.
func (r *RunStats) FinalPlan() *PlanDecision {
	for i := len(r.Passes) - 1; i >= 0; i-- {
		if r.Passes[i].Plan != nil {
			return r.Passes[i].Plan
		}
	}
	return nil
}

// Pass returns the stats of pass k, or nil if the run ended earlier.
func (r *RunStats) Pass(k int) *PassStats {
	for i := range r.Passes {
		if r.Passes[i].Pass == k {
			return &r.Passes[i]
		}
	}
	return nil
}

// String renders a multi-line run summary.
func (r *RunStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s, %d nodes, minsup %.3g%%: %v total\n",
		r.Algorithm, r.Dataset, r.Nodes, r.MinSup*100, r.Elapsed.Round(time.Millisecond))
	for _, p := range r.Passes {
		fmt.Fprintf(&b, "  pass %d: |C|=%d dup=%d frag=%d |L|=%d %v (gen %v) recv/node=%.1fKB probeskew{%s}\n",
			p.Pass, p.Candidates, p.Duplicated, p.Fragments, p.Large,
			p.Elapsed.Round(time.Millisecond), p.Generate.Round(time.Millisecond),
			p.AvgBytesReceived()/1024, p.ProbeSkew())
	}
	return b.String()
}
