package metrics

// ServeReport summarizes one arm of the serving load bench
// (`pgarm-bench -experiment serve`): a fixed request mix replayed against a
// pgarm-serve index by concurrent clients, with the recommendation cache
// either off or on. Latencies are measured per request at the client and
// reported as percentiles; QPS counts successful requests over the arm's
// wall-clock span. Unlike the mining reports, these numbers are real
// wall-clock measurements, not cost-model time.
type ServeReport struct {
	// Dataset is the mined dataset name (with scale suffix).
	Dataset string `json:"dataset"`
	// Rules is the size of the served rule index.
	Rules int `json:"rules"`
	// Clients is the number of concurrent load-generator goroutines.
	Clients int `json:"clients"`
	// Requests is the number of recommendation requests issued.
	Requests int `json:"requests"`
	// Cache reports whether the recommendation cache was enabled.
	Cache bool `json:"cache"`
	// CacheHits and CacheMisses count requests answered from / past the
	// cache (from the per-response cached flag; both zero when Cache is
	// false).
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// Errors counts transport failures and non-200 responses.
	Errors int64 `json:"errors"`
	// QPS is successful requests divided by the arm's elapsed wall time.
	QPS float64 `json:"qps"`
	// P50Ms and P99Ms are client-observed latency percentiles in
	// milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
}
