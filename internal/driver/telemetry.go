package driver

import (
	"fmt"
	"time"

	"pgarm/internal/cluster"
	"pgarm/internal/metrics"
	"pgarm/internal/obs"
	"pgarm/internal/wire"
)

// The cluster telemetry plane: followers ship their completed-pass stats and
// span batches to the coordinator as KTelemetry messages, piggybacked on the
// barriers the protocol already has. The coordinator merges them into one
// cluster-wide view — live skew gauges and /debug/cluster during the run, a
// merged Chrome trace and per-pass SkewReports after it.
//
// Message schedule (all deterministic, so every node agrees on the count):
//
//   - at each pass-k barrier (k >= 2), every follower sends one KTelemetry
//     right after its KDupCounts, carrying the pass windows completed since
//     its previous batch (normally just pass k-1) and the spans recorded
//     since its previous export;
//   - after the protocol ends (every termination path — empty F_1, empty
//     C_k, empty F_k, MaxK — is decided identically on all nodes), every
//     follower sends one final KTelemetry with the remaining pass windows,
//     remaining spans and a snapshot of its endpoint lifetime totals; the
//     coordinator receives exactly numPeers of them.
//
// Exact accounting is preserved on both sides of the plane:
//
//   - barrier batches are sent before capturePassComm closes the pass
//     window, so their bytes land inside the window like any other barrier
//     traffic;
//   - the final batch is sent after the last window closed, so every node
//     folds its flush-window delta into its last pass window
//     (foldFlushWindow) — the windows keep tiling the endpoint's lifetime
//     totals exactly;
//   - the totals snapshot a follower ships is taken before the flush send,
//     and the pass windows it shipped tile to exactly that snapshot, so the
//     coordinator's merged RunStats reconciles too (the flush message itself
//     belongs to neither view's totals — it is accounted only in the
//     follower's local post-fold stats).
const telemetryVersion = 1

// telemetryBatch is the decoded form of one KTelemetry payload.
type telemetryBatch struct {
	final     bool
	epoch     int64 // sender tracer epoch as wall-clock Unix nanos (0 = no spans)
	dropped   int64 // sender's cumulative dropped-span count
	firstPass int   // 1-based pass number of passes[0]
	passes    []metrics.NodeStats
	tracks    []obs.TrackName
	spans     []obs.SpanRecord
	totals    *metrics.EndpointTotals // final batches only
}

// telemetryState is the per-node state of the plane: ship cursors on
// followers, the ingested cluster view on the coordinator.
type telemetryState struct {
	shipped  int // perPass entries already shipped
	spanMark int // tracer export watermark

	// Coordinator: ingested remote pass windows ([peer][passIdx]), final
	// endpoint totals, last cumulative dropped count per peer, the next pass
	// index awaiting a complete skew snapshot, and the skew gauges.
	remote   [][]metrics.NodeStats
	totals   []*metrics.EndpointTotals
	dropped  []int64
	skewNext int
	gauges   skewGauges

	// lastSkew is the latest *complete* skew snapshot — the replan state's
	// output and the next plan phase's input (broadcast as the KPlan hint).
	// On followers and single-node runs it advances from local stats only.
	lastSkew *metrics.SkewReport
}

// telemetryEnabled reports whether the plane runs at all: it needs peers.
func (n *Node) telemetryEnabled() bool { return n.ep.N() > 1 }

// shipTelemetry encodes and sends this follower's batch: pass windows
// completed since the last batch, plus (in per-process runs) the spans
// recorded since the last export. final batches add the endpoint-totals
// snapshot, taken before the send so the shipped windows tile to it exactly.
func (n *Node) shipTelemetry(final bool) error {
	b := telemetryBatch{
		final:     final,
		firstPass: n.tel.shipped + 1,
		passes:    n.perPass[n.tel.shipped:],
	}
	n.tel.shipped = len(n.perPass)
	if n.tr.Enabled() && !n.cfg.sharedObs {
		b.epoch = n.tr.EpochWallNanos()
		b.dropped = n.tr.Dropped()
		b.tracks = n.tr.Tracks()
		b.spans, n.tel.spanMark = n.tr.ExportSince(n.tel.spanMark)
	}
	if final {
		t := EndpointTotals(n.id, n.ep)
		b.totals = &t
	}
	return n.ep.Send(0, KTelemetry, appendTelemetry(nil, &b))
}

// ingestTelemetry merges one follower batch into the coordinator's view:
// pass windows into tel.remote, spans (clock-rebased) into the tracer,
// dropped-count deltas into the tracer's tally, totals into tel.totals —
// then advances the live skew snapshot.
func (n *Node) ingestTelemetry(m cluster.Message) error {
	b, err := decodeTelemetry(m.Payload)
	if err != nil {
		return fmt.Errorf("driver: decode telemetry from node %d: %w", m.From, err)
	}
	t := &n.tel
	if t.remote == nil {
		t.remote = make([][]metrics.NodeStats, n.ep.N())
		t.totals = make([]*metrics.EndpointTotals, n.ep.N())
		t.dropped = make([]int64, n.ep.N())
	}
	node := m.From
	if node <= 0 || node >= n.ep.N() {
		return fmt.Errorf("driver: telemetry from unexpected node %d", node)
	}
	if b.firstPass != len(t.remote[node])+1 {
		return fmt.Errorf("driver: telemetry from node %d starts at pass %d, want %d",
			node, b.firstPass, len(t.remote[node])+1)
	}
	for _, ps := range b.passes {
		ps.Node = node
		t.remote[node] = append(t.remote[node], ps)
	}

	if b.epoch != 0 && n.tr.Enabled() && !n.cfg.sharedObs {
		// Rebase: a remote span at s nanos past its epoch E_r happened at
		// wall time E_r+s on the remote clock, which is E_r+s-offset on the
		// coordinator's clock, i.e. E_r+s-offset-E_c past our epoch.
		var offset int64
		if node < len(n.cfg.ClockOffsets) {
			offset = int64(n.cfg.ClockOffsets[node])
		}
		shift := b.epoch - offset - n.tr.EpochWallNanos()
		for _, tr := range b.tracks {
			n.tr.SetThreadName(int(tr.Node), int(tr.Lane), tr.Name)
		}
		for _, sp := range b.spans {
			sp.Start += shift
			n.tr.Record(sp)
		}
	}
	if d := b.dropped - t.dropped[node]; d > 0 {
		n.tr.AddDropped(d)
		t.dropped[node] = b.dropped
	}
	if b.totals != nil {
		tt := *b.totals
		tt.Node = node
		t.totals[node] = &tt
	}
	n.cfg.View.SetNodePass(node, len(t.remote[node]))
	n.updateSkew()
	return nil
}

// peerQuiescer is implemented by connection-oriented fabrics (TCP): marking
// a peer quiesced makes its subsequent EOF part of orderly shutdown instead
// of a failure. Channel fabrics have no connections to lose and simply don't
// implement it.
type peerQuiescer interface{ QuiescePeer(peer int) }

func quiescePeer(ep cluster.Endpoint, peer int) {
	if q, ok := ep.(peerQuiescer); ok {
		q.QuiescePeer(peer)
	}
}

// flushTelemetry is the run-end exchange: followers ship their final batch,
// wait for the coordinator's empty acknowledgement, and fold the flush
// traffic into their last pass window; the coordinator collects every final
// batch, acks, and folds its side the same way. The ack doubles as a
// shutdown barrier — without it a finished follower would close its
// connection while the coordinator still waits on other peers' finals, and
// the EOF would be mistaken for a peer failure.
//
// The ack releases followers one at a time, so their closes are staggered:
// each node quiesces the peers it no longer owes anything — a follower owes
// the other followers nothing once it enters the flush (only the
// coordinator's ack is outstanding), and the coordinator owes a follower
// nothing once its ack is sent — so those peers' EOFs read as the clean
// exits they are. A peer dying *before* it is quiesced (e.g. a follower
// crashing before its final batch) still fails the run.
func (n *Node) flushTelemetry() error {
	if !n.telemetryEnabled() {
		return nil
	}
	if !n.IsCoord() {
		for p := 1; p < n.ep.N(); p++ {
			if p != n.ep.ID() {
				quiescePeer(n.ep, p)
			}
		}
		if err := n.shipTelemetry(true); err != nil {
			return err
		}
		if _, err := n.recvKind(KTelemetry); err != nil {
			return err
		}
		quiescePeer(n.ep, 0)
		n.foldFlushWindow()
		return nil
	}
	for p := 0; p < n.numPeers(); p++ {
		m, err := n.recvKind(KTelemetry)
		if err != nil {
			return err
		}
		if err := n.ingestTelemetry(m); err != nil {
			return err
		}
	}
	for p := 1; p < n.ep.N(); p++ {
		if err := n.ep.Send(p, KTelemetry, nil); err != nil {
			return err
		}
		quiescePeer(n.ep, p)
	}
	n.foldFlushWindow()
	return nil
}

// updateSkew advances the live skew snapshot over every pass that now has
// stats from all nodes (a pass completes on the coordinator one barrier
// before its remote windows arrive, so the live view trails by one pass) and
// publishes it to the skew gauges and the ClusterView.
func (n *Node) updateSkew() {
	for {
		pi := n.tel.skewNext
		if pi >= len(n.perPass) {
			return
		}
		nodes := make([]metrics.NodeStats, 0, n.ep.N())
		nodes = append(nodes, n.perPass[pi])
		for p := 1; p < n.ep.N(); p++ {
			if n.tel.remote == nil || pi >= len(n.tel.remote[p]) {
				return
			}
			nodes = append(nodes, n.tel.remote[p][pi])
		}
		pass := pi + 1 // pass numbers are sequential from 1
		if pi < len(n.passMeta) {
			pass = n.passMeta[pi].pass
		}
		s := metrics.ComputeSkew(pass, nodes)
		if n.tel.gauges == (skewGauges{}) && n.cfg.Registry != nil {
			n.tel.gauges = newSkewGauges(n.cfg.Registry)
		}
		n.tel.gauges.set(s)
		n.cfg.View.SetSkew(s)
		sc := s
		n.tel.lastSkew = &sc
		n.tel.skewNext++
	}
}

// skewGauges are the coordinator's cluster-level pgarm_skew_* series,
// refreshed as each pass's skew snapshot completes. Zero value is inert.
type skewGauges struct {
	pass      *obs.Gauge
	straggler *obs.Gauge
	barrier   *obs.FloatGauge
	bytesCV   *obs.FloatGauge
	blocksCV  *obs.FloatGauge
}

func newSkewGauges(r *obs.Registry) skewGauges {
	return skewGauges{
		pass:      r.Gauge("pgarm_skew_pass", "Pass of the latest complete skew snapshot."),
		straggler: r.Gauge("pgarm_skew_straggler_node", "Node with the longest scan time in the latest complete pass."),
		barrier:   r.FloatGauge("pgarm_skew_barrier_max_over_mean", "Barrier-wait imbalance ratio (max/mean) of the latest complete pass."),
		bytesCV:   r.FloatGauge("pgarm_skew_bytes_sent_cv", "Coefficient of variation of per-node fabric bytes sent in the latest complete pass."),
		blocksCV:  r.FloatGauge("pgarm_skew_blocks_scanned_cv", "Coefficient of variation of per-node blocks scanned in the latest complete pass."),
	}
}

func (g skewGauges) set(s metrics.SkewReport) {
	g.pass.Set(int64(s.Pass))
	g.straggler.Set(int64(s.Straggler))
	g.barrier.Set(s.BarrierWaitMaxOverMean)
	g.bytesCV.Set(s.BytesSentCV)
	g.blocksCV.Set(s.BlocksScannedCV)
}

// AssembleClusterStats builds a RunStats from one node's view of the run. On
// the coordinator of a multi-node run this is the merged cluster view: its
// own pass windows plus every follower's shipped windows and endpoint-totals
// snapshots, reconciling exactly. On a follower (or a single-node run) it
// degrades to that node's own stats, identical to a single-node
// AssembleStats.
func AssembleClusterStats(algorithm string, minSup float64, nd *Node, elapsed time.Duration) *metrics.RunStats {
	rs := &metrics.RunStats{
		Algorithm: algorithm,
		Nodes:     nd.ep.N(),
		MinSup:    minSup,
		Elapsed:   elapsed,
	}
	for pi, meta := range nd.passMeta {
		ps := metrics.PassStats{
			Pass:       meta.pass,
			Candidates: meta.candidates,
			Duplicated: meta.duplicated,
			Fragments:  meta.fragments,
			Large:      meta.large,
			Elapsed:    meta.elapsed,
			Generate:   meta.generate,
		}
		pl := meta.plan
		ps.Plan = &pl
		if pi < len(nd.perPass) {
			ps.Nodes = append(ps.Nodes, nd.perPass[pi])
		}
		for p := 1; p < nd.ep.N(); p++ {
			if nd.tel.remote != nil && pi < len(nd.tel.remote[p]) {
				ps.Nodes = append(ps.Nodes, nd.tel.remote[p][pi])
			}
		}
		rs.Passes = append(rs.Passes, ps)
	}
	rs.Endpoints = append(rs.Endpoints, EndpointTotals(nd.id, nd.ep))
	for p := 1; p < nd.ep.N(); p++ {
		if nd.tel.totals != nil && nd.tel.totals[p] != nil {
			rs.Endpoints = append(rs.Endpoints, *nd.tel.totals[p])
		}
	}
	return rs
}

// --- wire codec -----------------------------------------------------------

// appendTelemetry encodes a batch with the repo's varint conventions:
//
//	version byte | flags byte (bit0 = final) | epoch | dropped | firstPass
//	| numPasses passes | numTracks tracks | numSpans spans
//	| totals (final batches only)
//
// All scalars are uvarints except span arg values (zigzag — they may be
// negative) and span starts (zigzag — rebasing can shift them negative).
func appendTelemetry(dst []byte, b *telemetryBatch) []byte {
	dst = append(dst, telemetryVersion)
	var flags byte
	if b.final {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = wire.AppendUvarint(dst, uint64(b.epoch))
	dst = wire.AppendUvarint(dst, uint64(b.dropped))
	dst = wire.AppendUvarint(dst, uint64(b.firstPass))

	dst = wire.AppendUvarint(dst, uint64(len(b.passes)))
	for i := range b.passes {
		dst = appendNodeStats(dst, &b.passes[i])
	}
	dst = wire.AppendUvarint(dst, uint64(len(b.tracks)))
	for _, t := range b.tracks {
		dst = wire.AppendUvarint(dst, uint64(t.Node))
		dst = wire.AppendUvarint(dst, uint64(t.Lane))
		dst = appendString(dst, t.Name)
	}
	dst = wire.AppendUvarint(dst, uint64(len(b.spans)))
	for i := range b.spans {
		sp := &b.spans[i]
		dst = appendString(dst, sp.Name)
		dst = wire.AppendUvarint(dst, uint64(sp.Node))
		dst = wire.AppendUvarint(dst, uint64(sp.Lane))
		dst = wire.AppendUvarint(dst, zigzag(sp.Start))
		dst = wire.AppendUvarint(dst, uint64(sp.Dur))
		dst = wire.AppendUvarint(dst, uint64(len(sp.Args)))
		for _, a := range sp.Args {
			dst = appendString(dst, a.Key)
			dst = wire.AppendUvarint(dst, zigzag(a.Val))
		}
	}
	if b.final {
		t := b.totals
		dst = wire.AppendUvarint(dst, uint64(t.MsgsSent))
		dst = wire.AppendUvarint(dst, uint64(t.MsgsReceived))
		dst = wire.AppendUvarint(dst, uint64(t.BytesSent))
		dst = wire.AppendUvarint(dst, uint64(t.BytesReceived))
		dst = appendKindIO(dst, t.ByKind)
	}
	return dst
}

func appendNodeStats(dst []byte, s *metrics.NodeStats) []byte {
	for _, v := range [...]int64{
		s.TxnsScanned, s.Probes, s.Increments, s.ItemsSent, s.ItemsReceived,
		s.BytesSent, s.BytesReceived, s.DataBytesSent, s.DataBytesReceived,
		s.MsgsSent, s.MsgsReceived, s.BlocksScanned, s.BlocksSkipped,
		s.BytesDecoded, int64(s.ScanTime), int64(s.BarrierWait),
	} {
		dst = wire.AppendUvarint(dst, uint64(v))
	}
	return appendKindIO(dst, s.ByKind)
}

func appendKindIO(dst []byte, ks []metrics.KindIO) []byte {
	dst = wire.AppendUvarint(dst, uint64(len(ks)))
	for _, k := range ks {
		dst = append(dst, k.Kind)
		dst = wire.AppendUvarint(dst, uint64(k.MsgsSent))
		dst = wire.AppendUvarint(dst, uint64(k.MsgsReceived))
		dst = wire.AppendUvarint(dst, uint64(k.BytesSent))
		dst = wire.AppendUvarint(dst, uint64(k.BytesReceived))
	}
	return dst
}

func appendString(dst []byte, s string) []byte {
	dst = wire.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// teldec is a sequential decoder with a sticky error, so the happy path
// reads linearly and one check at the end suffices.
type teldec struct {
	b   []byte
	err error
}

func (d *teldec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *teldec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n, err := wire.Uvarint(d.b)
	if err != nil {
		d.err = err
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *teldec) i64() int64 { return int64(d.u64()) }

func (d *teldec) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) == 0 {
		d.fail("driver: truncated telemetry payload")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *teldec) str() string {
	n := d.u64()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail("driver: telemetry string length %d exceeds payload", n)
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// count reads a collection length and bounds it by the remaining payload
// (each element costs at least minBytes), so corrupt lengths cannot drive
// huge allocations.
func (d *teldec) count(minBytes int) int {
	n := d.u64()
	if d.err != nil {
		return 0
	}
	if n*uint64(minBytes) > uint64(len(d.b)) {
		d.fail("driver: telemetry collection length %d exceeds payload", n)
		return 0
	}
	return int(n)
}

func decodeTelemetry(p []byte) (*telemetryBatch, error) {
	d := &teldec{b: p}
	if v := d.byte(); d.err == nil && v != telemetryVersion {
		return nil, fmt.Errorf("driver: unsupported telemetry version %d", v)
	}
	flags := d.byte()
	b := &telemetryBatch{
		final:     flags&1 != 0,
		epoch:     d.i64(),
		dropped:   d.i64(),
		firstPass: int(d.u64()),
	}
	nPasses := d.count(16)
	for i := 0; i < nPasses && d.err == nil; i++ {
		b.passes = append(b.passes, decodeNodeStats(d))
	}
	nTracks := d.count(3)
	for i := 0; i < nTracks && d.err == nil; i++ {
		b.tracks = append(b.tracks, obs.TrackName{
			Node: int32(d.u64()), Lane: int32(d.u64()), Name: d.str(),
		})
	}
	nSpans := d.count(5)
	for i := 0; i < nSpans && d.err == nil; i++ {
		sp := obs.SpanRecord{
			Name:  d.str(),
			Node:  int32(d.u64()),
			Lane:  int32(d.u64()),
			Start: unzigzag(d.u64()),
			Dur:   d.i64(),
		}
		nArgs := d.count(2)
		for j := 0; j < nArgs && d.err == nil; j++ {
			sp.Args = append(sp.Args, obs.Arg{Key: d.str(), Val: unzigzag(d.u64())})
		}
		b.spans = append(b.spans, sp)
	}
	if b.final && d.err == nil {
		t := metrics.EndpointTotals{
			MsgsSent:      d.i64(),
			MsgsReceived:  d.i64(),
			BytesSent:     d.i64(),
			BytesReceived: d.i64(),
			ByKind:        decodeKindIO(d),
		}
		b.totals = &t
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("driver: %d trailing telemetry bytes", len(d.b))
	}
	return b, nil
}

func decodeNodeStats(d *teldec) metrics.NodeStats {
	var s metrics.NodeStats
	for _, p := range [...]*int64{
		&s.TxnsScanned, &s.Probes, &s.Increments, &s.ItemsSent, &s.ItemsReceived,
		&s.BytesSent, &s.BytesReceived, &s.DataBytesSent, &s.DataBytesReceived,
		&s.MsgsSent, &s.MsgsReceived, &s.BlocksScanned, &s.BlocksSkipped,
		&s.BytesDecoded,
	} {
		*p = d.i64()
	}
	s.ScanTime = time.Duration(d.i64())
	s.BarrierWait = time.Duration(d.i64())
	s.ByKind = decodeKindIO(d)
	return s
}

func decodeKindIO(d *teldec) []metrics.KindIO {
	n := d.count(5)
	if n == 0 {
		return nil
	}
	out := make([]metrics.KindIO, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		k := d.byte()
		out = append(out, metrics.KindIO{
			Kind: k, Name: kindName(k),
			MsgsSent: d.i64(), MsgsReceived: d.i64(),
			BytesSent: d.i64(), BytesReceived: d.i64(),
		})
	}
	return out
}
