package driver

import (
	"fmt"
	"math"

	"pgarm/internal/cluster"
	"pgarm/internal/metrics"
	"pgarm/internal/wire"
)

// The plan phase's cross-node exchange: replanning from observed skew must be
// identical on every node, but the skew signal (barrier waits, per-node
// bytes) is wall-clock data only the coordinator's telemetry plane holds. So
// at the start of each pass k >= 2 — a point every node reaches iff the run
// continues, since the empty-C_k termination is decided identically
// everywhere — the coordinator broadcasts its latest *complete* skew snapshot
// as one KPlan message, and every node feeds the identical snapshot into
// PlanPass. Floats travel as raw IEEE-754 bits, so the hint (and therefore
// the plan derived from it) is bit-identical across nodes and across
// in-process/multi-process runs.
//
// A pass's complete snapshot exists only after the *next* barrier ingests the
// followers' telemetry, so the hint for pass k describes pass k-2 (nil for
// the first passes). Adaptation therefore trails the signal by one pass —
// the price of keeping the plan deterministic without an extra barrier.

// passPhase labels the per-pass state machine's states for error context and
// the /debug/cluster view.
type passPhase uint8

const (
	phaseStartup passPhase = iota
	phasePlan
	phaseExecute
	phaseBarrier
	phaseReplan
	phaseFlush
)

var phaseNames = [...]string{"startup", "plan", "execute", "barrier", "replan", "flush"}

func (p passPhase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// setPhase publishes the protocol position (pass, phase) this node is in.
// Read by the fabric's peer-loss path and the ClusterView, so aborts and
// /debug/cluster name the pass and phase the run died in.
func (n *Node) setPhase(pass int, ph passPhase) {
	n.phaseWord.Store(uint64(pass)<<8 | uint64(ph))
	n.cfg.View.SetPhase(ph.String())
}

// phaseLabel renders the published position, e.g. "pass 3/execute".
func (n *Node) phaseLabel() string {
	w := n.phaseWord.Load()
	pass, ph := int(w>>8), passPhase(w&0xff)
	if pass == 0 {
		return ph.String()
	}
	return fmt.Sprintf("pass %d/%s", pass, ph)
}

// phaseSetter is implemented by connection-oriented endpoints (TCP fabric,
// DialMesh): a callback describing the protocol position, woven into
// peer-loss errors. Channel fabrics have no connections to lose and simply
// don't implement it.
type phaseSetter interface{ SetPhase(fn func() string) }

func installPhaseHook(ep cluster.Endpoint, n *Node) {
	if ps, ok := ep.(phaseSetter); ok {
		ps.SetPhase(n.phaseLabel)
	}
}

// exchangeSkewHint runs the plan phase's protocol step for pass k: the
// coordinator broadcasts its latest complete skew snapshot (possibly none)
// and every node returns the identical hint. Single-node runs skip the wire
// and use the local snapshot directly.
func (n *Node) exchangeSkewHint(k int) (*metrics.SkewReport, error) {
	if n.ep.N() == 1 {
		return n.tel.lastSkew, nil
	}
	if n.IsCoord() {
		payload := appendSkewHint(wire.AppendUvarint(nil, uint64(k)), n.tel.lastSkew)
		for p := 1; p < n.ep.N(); p++ {
			if err := n.ep.Send(p, KPlan, payload); err != nil {
				return nil, err
			}
		}
		return n.tel.lastSkew, nil
	}
	m, err := n.recvKind(KPlan)
	if err != nil {
		return nil, err
	}
	pass, hint, err := decodeSkewHint(m.Payload)
	if err != nil {
		return nil, fmt.Errorf("driver: node %d decode plan hint: %w", n.id, err)
	}
	if pass != k {
		return nil, fmt.Errorf("driver: node %d got plan hint for pass %d, want %d", n.id, pass, k)
	}
	return hint, nil
}

// appendSkewHint encodes an optional SkewReport: a presence byte, then the
// pass, the three ratios as raw IEEE-754 bit patterns (bit-exact across
// nodes) and the straggler (zigzag; may be -1).
func appendSkewHint(dst []byte, s *metrics.SkewReport) []byte {
	if s == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = wire.AppendUvarint(dst, uint64(s.Pass))
	dst = wire.AppendUvarint(dst, math.Float64bits(s.BarrierWaitMaxOverMean))
	dst = wire.AppendUvarint(dst, math.Float64bits(s.BytesSentCV))
	dst = wire.AppendUvarint(dst, math.Float64bits(s.BlocksScannedCV))
	dst = wire.AppendUvarint(dst, zigzag(int64(s.Straggler)))
	return dst
}

// decodeSkewHint decodes a KPlan payload: the pass the hint is for, then the
// optional snapshot.
func decodeSkewHint(p []byte) (int, *metrics.SkewReport, error) {
	d := &teldec{b: p}
	pass := int(d.u64())
	present := d.byte()
	var s *metrics.SkewReport
	if present == 1 {
		s = &metrics.SkewReport{
			Pass:                   int(d.u64()),
			BarrierWaitMaxOverMean: math.Float64frombits(d.u64()),
			BytesSentCV:            math.Float64frombits(d.u64()),
			BlocksScannedCV:        math.Float64frombits(d.u64()),
			Straggler:              int(unzigzag(d.u64())),
		}
	} else if present != 0 && d.err == nil {
		return 0, nil, fmt.Errorf("driver: bad plan-hint presence byte %d", present)
	}
	if d.err != nil {
		return 0, nil, d.err
	}
	if len(d.b) != 0 {
		return 0, nil, fmt.Errorf("driver: %d trailing plan-hint bytes", len(d.b))
	}
	return pass, s, nil
}
