package driver

import (
	"fmt"
	"sync/atomic"
	"time"

	"pgarm/internal/cluster"
	"pgarm/internal/cumulate"
	"pgarm/internal/metrics"
	"pgarm/internal/obs"
	"pgarm/internal/wire"
)

// Node is one shared-nothing processor of the runtime: a fabric endpoint,
// the pass-driver state machine and the per-pass instrumentation. Node 0
// doubles as the coordinator, as in the paper. The mining logic itself lives
// in the attached Miner.
type Node struct {
	id    int
	ep    cluster.Endpoint
	cfg   Config
	miner Miner

	totalSize int
	minCount  int64

	// pending holds inbox messages that arrived ahead of the phase that
	// consumes them (e.g. a fast peer's pass-k data while we still await the
	// pass-(k-1) KLarge broadcast).
	pending []cluster.Message

	// Pass metadata, recorded where results are kept (coordinator, or every
	// node with Config.KeepResults).
	passMeta []passMeta

	// Per-pass metrics, one entry per completed pass.
	perPass []metrics.NodeStats
	cur     metrics.NodeStats // counters of the pass in flight

	// Observability: phase-span tracer and live instruments (both inert when
	// unconfigured), plus the monotonic fabric snapshots that delimit the
	// current pass's communication window.
	tr       *obs.Tracer
	ins      nodeInstruments
	base     cluster.Stats
	baseKind []cluster.KindStat

	// lastGenerate is the wall time of the most recent candidate generation,
	// recorded into the following pass's metadata.
	lastGenerate time.Duration

	// tel is the cluster telemetry plane's state: ship cursors on followers,
	// the ingested cluster-wide view on the coordinator (see telemetry.go).
	tel telemetryState

	// phaseWord packs the published protocol position (pass << 8 | phase),
	// read by the fabric's peer-loss path so aborts name the pass and phase
	// the run died in (see plan.go).
	phaseWord atomic.Uint64
}

// NewNode wires one node of the protocol to an endpoint. Run executes it.
func NewNode(ep cluster.Endpoint, cfg Config, m Miner) *Node {
	n := &Node{
		id:    ep.ID(),
		ep:    ep,
		cfg:   cfg,
		miner: m,
		tr:    cfg.Tracer,
		ins:   newNodeInstruments(cfg.Registry, ep.ID()),
	}
	installPhaseHook(ep, n)
	return n
}

// ID is this node's cluster rank; node 0 is the coordinator.
func (n *Node) ID() int { return n.id }

// NumNodes is the cluster size.
func (n *Node) NumNodes() int { return n.ep.N() }

// IsCoord reports whether this node is the coordinator.
func (n *Node) IsCoord() bool { return n.id == 0 }

// Keep reports whether this node records result levels (the coordinator
// always does; followers only in KeepResults worker mode).
func (n *Node) Keep() bool { return n.IsCoord() || n.cfg.KeepResults }

// TotalSize is the global database size |D| established by the size
// exchange.
func (n *Node) TotalSize() int { return n.totalSize }

// MinCount is the absolute minimum support count derived from |D|.
func (n *Node) MinCount() int64 { return n.minCount }

// Workers is the effective scan-worker count (>= 1).
func (n *Node) Workers() int { return n.cfg.workers() }

// Span opens a phase span on this node's driver lane (lane 0). Inert when
// no tracer is configured.
func (n *Node) Span(name string) obs.Span { return n.tr.Begin(n.id, 0, name) }

// numPeers returns the number of other nodes.
func (n *Node) numPeers() int { return n.ep.N() - 1 }

// recvKind blocks until a message of one of the wanted kinds arrives,
// stashing everything else in the pending queue for later phases. When the
// inbox closes the endpoint's terminal error (e.g. a lost TCP peer) is
// attached as the cause.
func (n *Node) recvKind(want ...uint8) (cluster.Message, error) {
	match := func(k uint8) bool {
		for _, w := range want {
			if k == w {
				return true
			}
		}
		return false
	}
	for i, m := range n.pending {
		if match(m.Kind) {
			n.pending = append(n.pending[:i], n.pending[i+1:]...)
			return m, nil
		}
	}
	for m := range n.ep.Inbox() {
		if match(m.Kind) {
			return m, nil
		}
		n.pending = append(n.pending, m)
	}
	if cause := n.ep.Err(); cause != nil {
		return cluster.Message{}, fmt.Errorf("driver: node %d inbox closed while waiting for kind %v: %w", n.id, want, cause)
	}
	return cluster.Message{}, fmt.Errorf("driver: node %d inbox closed while waiting for kind %v", n.id, want)
}

// Run executes the whole mining protocol on this node, then the run-end
// telemetry flush (every protocol termination path is decided identically on
// all nodes, so the flush exchange is always consistent).
func (n *Node) Run() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("driver: node %d panicked: %v", n.id, r)
		}
	}()
	if err := n.runProtocol(); err != nil {
		return err
	}
	n.setPhase(0, phaseFlush)
	if err := n.flushTelemetry(); err != nil {
		return err
	}
	n.cfg.View.Finish()
	return nil
}

// runProtocol is the mining protocol proper: size exchange, pass 1, then the
// level-wise generate/count/barrier loop.
func (n *Node) runProtocol() error {
	if n.tr.Enabled() {
		n.tr.SetThreadName(n.id, 0, "driver")
	}
	n.cfg.View.Init(n.id, n.ep.N())
	ssp := n.tr.Begin(n.id, 0, "size-exchange")
	if err := n.sizeExchange(); err != nil {
		return err
	}
	ssp.End()
	nf, err := n.pass1()
	if err != nil {
		return err
	}
	if nf == 0 {
		return nil
	}
	for k := 2; n.cfg.MaxK == 0 || k <= n.cfg.MaxK; k++ {
		// Candidate generation opens the plan phase: deterministic on every
		// node (same F_(k-1), same generator), and the nc == 0 termination
		// below is therefore decided identically everywhere — which is what
		// lets the plan phase exchange messages without stranding them.
		n.setPhase(k, phasePlan)
		gsp := n.tr.Begin(n.id, 0, "generate")
		genStart := time.Now()
		nc, err := n.miner.Generate(n, k)
		if err != nil {
			return err
		}
		n.lastGenerate = time.Since(genStart)
		gsp.Arg("candidates", int64(nc))
		gsp.Arg("workers", int64(n.Workers()))
		gsp.End()
		if nc == 0 {
			return nil
		}
		nf, err = n.runPass(k, nc)
		if err != nil {
			return err
		}
		if nf == 0 {
			return nil
		}
	}
	return nil
}

// sizeExchange establishes the global database size |D| (and from it the
// absolute minimum support count): every node reports its local partition
// size to the coordinator, which broadcasts the sum. In-process clusters
// could compute this directly, but routing it through the protocol keeps a
// single code path for multi-process workers that only know their own disk.
func (n *Node) sizeExchange() error {
	if n.IsCoord() {
		total := int64(n.miner.LocalSize())
		for p := 0; p < n.numPeers(); p++ {
			m, err := n.recvKind(KSize)
			if err != nil {
				return err
			}
			v, _, err := wire.Uvarint(m.Payload)
			if err != nil {
				return fmt.Errorf("driver: decode size from node %d: %w", m.From, err)
			}
			total += int64(v)
		}
		payload := wire.AppendUvarint(nil, uint64(total))
		for p := 1; p < n.ep.N(); p++ {
			if err := n.ep.Send(p, KSize, payload); err != nil {
				return err
			}
		}
		n.totalSize = int(total)
	} else {
		if err := n.ep.Send(0, KSize, wire.AppendUvarint(nil, uint64(n.miner.LocalSize()))); err != nil {
			return err
		}
		m, err := n.recvKind(KSize)
		if err != nil {
			return err
		}
		v, _, err := wire.Uvarint(m.Payload)
		if err != nil {
			return fmt.Errorf("driver: decode |D| broadcast: %w", err)
		}
		n.totalSize = int(v)
	}
	n.minCount = cumulate.MinCount(n.cfg.MinSupport, n.totalSize)
	return nil
}

// pass1 runs the miner's dense pass-1 count over the local partition,
// reduces the vectors on the coordinator and broadcasts the global result.
// Every algorithm shares it: C_1 is just an array indexed by item, so there
// is nothing to partition.
func (n *Node) pass1() (int, error) {
	started := time.Now()
	n.cur = metrics.NodeStats{Node: n.id}
	numItems := n.miner.NumItems()
	n.ins.startPass(1, numItems)
	n.cfg.View.StartPass(1, numItems)
	// Pass 1 has a fixed plan — the dense count vector is reduced, never
	// partitioned — recorded anyway so the report's plan section covers every
	// pass.
	plan := PlanDecision{Pass: 1, Partitioner: "dense-reduce", Granule: "all", Candidates: numItems, Duplicated: numItems}
	n.cfg.View.SetPlan(plan)
	n.setPhase(1, phaseExecute)
	psp := n.tr.Begin(n.id, 0, "pass 1")
	counts, err := n.miner.CountPass1(n, &n.cur)
	if err != nil {
		return 0, fmt.Errorf("driver: node %d pass 1 scan: %w", n.id, err)
	}
	n.cur.ScanTime = time.Since(started)

	n.setPhase(1, phaseBarrier)
	bsp := n.tr.Begin(n.id, 0, "barrier")
	global, err := n.reduceCounts(counts)
	if err != nil {
		return 0, err
	}
	bsp.End()
	n.setPhase(1, phaseReplan)

	nf, err := n.miner.FinishPass1(n, global)
	if err != nil {
		return 0, err
	}
	n.capturePassComm()
	n.ins.endPass(&n.cur)
	n.finishPassStats()
	psp.Arg("candidates", int64(numItems))
	psp.Arg("large", int64(nf))
	psp.End()
	if n.Keep() {
		n.passMeta = append(n.passMeta, passMeta{
			pass:       1,
			candidates: numItems,
			large:      nf,
			elapsed:    time.Since(started),
			plan:       plan,
		})
	}
	n.emitProgress(1, numItems, nf, time.Since(started))
	return nf, nil
}

// reduceCounts sums dense count vectors at the coordinator (KCounts1) and
// broadcasts the global vector (KLarge).
func (n *Node) reduceCounts(counts []int64) ([]int64, error) {
	if n.IsCoord() {
		wait := time.Now()
		for p := 0; p < n.numPeers(); p++ {
			m, err := n.recvKind(KCounts1)
			if err != nil {
				return nil, err
			}
			remote, _, err := wire.CountsAuto(m.Payload)
			if err != nil {
				return nil, fmt.Errorf("driver: decode pass-1 counts from node %d: %w", m.From, err)
			}
			if len(remote) != len(counts) {
				return nil, fmt.Errorf("driver: node %d sent %d item counts, want %d", m.From, len(remote), len(counts))
			}
			for i, c := range remote {
				counts[i] += c
			}
		}
		n.cur.BarrierWait += time.Since(wait)
		payload := wire.AppendCountsAuto(nil, counts)
		for p := 1; p < n.ep.N(); p++ {
			if err := n.ep.Send(p, KLarge, payload); err != nil {
				return nil, err
			}
		}
		return counts, nil
	}
	if err := n.ep.Send(0, KCounts1, wire.AppendCountsAuto(nil, counts)); err != nil {
		return nil, err
	}
	wait := time.Now()
	m, err := n.recvKind(KLarge)
	if err != nil {
		return nil, err
	}
	n.cur.BarrierWait += time.Since(wait)
	global, _, err := wire.CountsAuto(m.Payload)
	if err != nil {
		return nil, fmt.Errorf("driver: decode global pass-1 counts: %w", err)
	}
	return global, nil
}

// passState is one state of the per-pass state machine.
type passState int

const (
	statePlan passState = iota
	stateExecute
	stateBarrier
	stateReplan
	statePassDone
)

// passRun is the per-pass context the state machine threads through its
// states.
type passRun struct {
	k       int
	nCands  int
	started time.Time
	psp     obs.Span     // the whole-pass span, opened by plan, closed by replan
	plan    PlanDecision // the plan phase's decision
	out     PassOutcome  // the execute phase's barrier contribution
	large   int          // |F_k| once the barrier resolves
}

// runPass executes one count-support pass for k >= 2 as an explicit state
// machine — Plan -> Execute -> Barrier -> Replan — and returns |F_k|
// (identical on every node after the broadcast).
//
//	Plan     exchange the coordinator's latest complete skew snapshot
//	         (KPlan) and compute the pass's candidate-to-node assignment via
//	         the miner's PassPlanner facet; identical on every node.
//	Execute  the miner's count-support phase over the plan.
//	Barrier  the F_k gather/broadcast (gatherFrequents), which also carries
//	         the followers' telemetry batches.
//	Replan   close the pass window: capture communication, advance the
//	         coordinator's skew snapshot (the input to the *next* pass's
//	         Plan state) and record the pass metadata.
func (n *Node) runPass(k, nCands int) (int, error) {
	pr := &passRun{k: k, nCands: nCands, started: time.Now()}
	for st := statePlan; st != statePassDone; {
		var err error
		switch st {
		case statePlan:
			err = n.planPhase(pr)
			st = stateExecute
		case stateExecute:
			err = n.executePhase(pr)
			st = stateBarrier
		case stateBarrier:
			err = n.barrierPhase(pr)
			st = stateReplan
		case stateReplan:
			err = n.replanPhase(pr)
			st = statePassDone
		}
		if err != nil {
			return 0, err
		}
	}
	return pr.large, nil
}

// planPhase opens the pass window and turns the latest complete skew
// snapshot into this pass's plan. The KPlan exchange happens here — after
// every node has decided (via the identical nc > 0 check) that the run
// continues, so no hint message can be stranded by termination.
func (n *Node) planPhase(pr *passRun) error {
	n.setPhase(pr.k, phasePlan)
	n.cur = metrics.NodeStats{Node: n.id}
	n.ins.startPass(pr.k, pr.nCands)
	n.cfg.View.StartPass(pr.k, pr.nCands)
	if n.tr.Enabled() {
		pr.psp = n.tr.Begin(n.id, 0, fmt.Sprintf("pass %d", pr.k))
	}
	if n.IsCoord() && n.cfg.OnPassStart != nil {
		n.cfg.OnPassStart(pr.k, pr.nCands)
	}

	wait := time.Now()
	hint, err := n.exchangeSkewHint(pr.k)
	if err != nil {
		return err
	}
	// A follower blocking on the hint is barrier-like idle time; charge it
	// to the same counter so the skew signal stays honest.
	n.cur.BarrierWait += time.Since(wait)

	plsp := n.tr.Begin(n.id, 0, "plan")
	dec, err := n.miner.PlanPass(n, pr.k, hint)
	if err != nil {
		return fmt.Errorf("driver: node %d pass %d plan: %w", n.id, pr.k, err)
	}
	dec.Pass = pr.k
	if hint != nil {
		dec.SkewPass = hint.Pass
	}
	pr.plan = dec
	n.cfg.View.SetPlan(dec)
	plsp.Arg("duplicated", int64(dec.Duplicated))
	plsp.Arg("escalations", int64(len(dec.Escalations)))
	plsp.End()
	return nil
}

// executePhase runs the miner's count-support phase over the plan.
func (n *Node) executePhase(pr *passRun) error {
	n.setPhase(pr.k, phaseExecute)
	out, err := n.miner.CountPass(n, pr.k, &n.cur)
	if err != nil {
		return fmt.Errorf("driver: node %d pass %d: %w", n.id, pr.k, err)
	}
	pr.out = out
	return nil
}

// barrierPhase resolves the global F_k.
func (n *Node) barrierPhase(pr *passRun) error {
	n.setPhase(pr.k, phaseBarrier)
	nf, err := n.gatherFrequents(pr.k, pr.out)
	if err != nil {
		return err
	}
	pr.large = nf
	return nil
}

// replanPhase closes the pass window and stages the replan input: the
// telemetry the barrier ingested advances the coordinator's complete skew
// snapshot (inside finishPassStats), which the *next* pass's plan phase
// broadcasts. Pass metadata — including the plan decision — is recorded
// here.
func (n *Node) replanPhase(pr *passRun) error {
	n.setPhase(pr.k, phaseReplan)
	n.capturePassComm()
	n.ins.endPass(&n.cur)
	n.finishPassStats()
	pr.psp.Arg("candidates", int64(pr.nCands))
	pr.psp.Arg("large", int64(pr.large))
	pr.psp.End()
	if n.Keep() {
		n.passMeta = append(n.passMeta, passMeta{
			pass:       pr.k,
			candidates: pr.nCands,
			duplicated: pr.out.Duplicated,
			fragments:  pr.out.Fragments,
			large:      pr.large,
			elapsed:    time.Since(pr.started),
			generate:   n.lastGenerate,
			plan:       pr.plan,
		})
	}
	n.emitProgress(pr.k, pr.nCands, pr.large, time.Since(pr.started))
	return nil
}

func (n *Node) finishPassStats() {
	n.perPass = append(n.perPass, n.cur)
	n.cfg.View.SetNodePass(n.id, len(n.perPass))
	if n.IsCoord() {
		n.updateSkew()
	}
}

// gatherFrequents implements the pass-end protocol shared by every miner:
//
//   - every non-coordinator sends its locally determined frequents
//     (out.Owned, already filtered by MinCount and encoded by the miner) and
//     the dense count vector of its replicated candidates (out.DupCounts,
//     may be empty);
//   - the coordinator reduces the replicated counts, hands both to the
//     miner's MergeFrequents, and broadcasts the returned global F_k.
func (n *Node) gatherFrequents(k int, out PassOutcome) (int, error) {
	bsp := n.tr.Begin(n.id, 0, "barrier")
	defer bsp.End()
	if !n.IsCoord() {
		if err := n.ep.Send(0, KLocalLarge, out.Owned); err != nil {
			return 0, err
		}
		if err := n.ep.Send(0, KDupCounts, wire.AppendCountsAuto(nil, out.DupCounts)); err != nil {
			return 0, err
		}
		// Piggyback this node's telemetry batch on the barrier it already
		// pays for; sent before capturePassComm, so its bytes land inside
		// the current pass window like the rest of the barrier traffic.
		if err := n.shipTelemetry(false); err != nil {
			return 0, err
		}
		wait := time.Now()
		m, err := n.recvKind(KLarge)
		if err != nil {
			return 0, err
		}
		n.cur.BarrierWait += time.Since(wait)
		return n.miner.FinishPass(n, k, m.Payload)
	}

	// Coordinator: collect N-1 owned-frequent messages, N-1 replicated count
	// vectors and N-1 telemetry batches. The batches are stashed raw and
	// decoded only after the barrier wait is measured, so ingest cost never
	// contaminates the skew signal it feeds.
	dupTotal := make([]int64, len(out.DupCounts))
	copy(dupTotal, out.DupCounts)
	var peerOwned [][]byte
	var telem []cluster.Message
	wait := time.Now()
	for got := 0; got < 3*n.numPeers(); got++ {
		m, err := n.recvKind(KLocalLarge, KDupCounts, KTelemetry)
		if err != nil {
			return 0, err
		}
		switch m.Kind {
		case KLocalLarge:
			peerOwned = append(peerOwned, m.Payload)
		case KDupCounts:
			counts, _, err := wire.CountsAuto(m.Payload)
			if err != nil {
				return 0, fmt.Errorf("driver: decode replicated counts from node %d: %w", m.From, err)
			}
			if len(counts) != len(dupTotal) {
				return 0, fmt.Errorf("driver: node %d sent %d replicated counts, want %d", m.From, len(counts), len(dupTotal))
			}
			for i, c := range counts {
				dupTotal[i] += c
			}
		case KTelemetry:
			telem = append(telem, m)
		}
	}
	n.cur.BarrierWait += time.Since(wait)
	for _, m := range telem {
		if err := n.ingestTelemetry(m); err != nil {
			return 0, err
		}
	}
	payload, nf, err := n.miner.MergeFrequents(n, k, peerOwned, dupTotal)
	if err != nil {
		return 0, err
	}
	for p := 1; p < n.ep.N(); p++ {
		if err := n.ep.Send(p, KLarge, payload); err != nil {
			return 0, err
		}
	}
	return nf, nil
}
