// Package driver is the shared-nothing pass runtime every parallel miner in
// this repository runs on: N node goroutines (or processes) over a
// cluster.Fabric, node 0 doubling as coordinator, executing the level-wise
// protocol of the paper — size exchange, pass 1 reduce, then for each k a
// candidate generation, a count-support phase and an F_k gather/broadcast
// barrier.
//
// The runtime owns everything that is identical across workloads:
//
//   - coordinator/worker lifecycle and kind-filtered receive with a pending
//     stash (a fast peer's pass-k traffic must not be lost while this node
//     still waits on its pass-(k-1) barrier);
//   - the size exchange and the dense pass-1 count reduce;
//   - the count-support Exchange (producer/consumer split with loopback,
//     batching and buffer recycling) and the sharded local scan;
//   - the F_k barrier: locally-owned frequents gathered from every node plus
//     a reduce of replicated count vectors, merged and broadcast;
//   - per-pass metrics.NodeStats capture with monotonic fabric snapshots
//     whose windows tile the run, phase-span tracing and registry
//     instruments.
//
// What varies per workload — candidate representation, partitioning,
// counting a local shard, encoding frequents — is behind the Miner
// interface. internal/core (the paper's six itemset algorithms) and
// internal/seq (the SK98 NPSPM/SPSPM/HPSPM sequence miners) are both Miner
// implementations.
package driver

import (
	"fmt"
	"time"

	"pgarm/internal/cluster"
	"pgarm/internal/metrics"
	"pgarm/internal/obs"
)

// Message kinds of the mining protocol. Per-sender FIFO delivery (all
// fabrics guarantee it) plus the pass barriers make each kind unambiguous:
// within a pass a sender emits KData* messages, then one KDone, then its
// results (KLocalLarge/KDupCounts), and the coordinator answers with one
// KLarge. The numeric values and display names predate this package and are
// part of the per-kind accounting surface (metrics.KindIO.Name).
const (
	KSize       uint8 = iota + 1 // node -> coord: local partition size; coord -> node: |D|
	KCounts1                     // node -> coord: pass-1 dense item counts
	KData                        // node -> node: count-support payload batch
	KDone                        // node -> node: end of count-support stream
	KLocalLarge                  // node -> coord: locally-owned frequents
	KDupCounts                   // node -> coord: duplicated/replicated table counts
	KLarge                       // coord -> node: global F_k broadcast
	KTelemetry                   // node -> coord: per-pass stats + span batches (see telemetry.go)
	KPlan                        // coord -> node: pass-k skew hint for the plan phase (see plan.go)
	KCondBase                    // node -> node: FP-Growth conditional pattern-base batch (see internal/fpg)
)

// FabricKind selects the interconnect emulation for in-process clusters.
type FabricKind int

const (
	// FabricChan runs the nodes over in-process channels (default).
	FabricChan FabricKind = iota
	// FabricTCP runs the nodes over loopback TCP connections.
	FabricTCP
)

// NewFabric constructs the selected in-process fabric for n nodes.
func NewFabric(kind FabricKind, n, buffer int) (cluster.Fabric, error) {
	switch kind {
	case FabricChan:
		return cluster.NewChanFabric(n, buffer), nil
	case FabricTCP:
		return cluster.NewTCPFabric(n, buffer)
	}
	return nil, fmt.Errorf("driver: unknown fabric kind %d", kind)
}

// Config parameterizes the runtime side of a run; the mining side lives in
// the Miner.
type Config struct {
	MinSupport float64 // fraction of the global database size
	MaxK       int     // 0 = run until F_k is empty

	// Workers is the number of scan goroutines each node uses over its local
	// partition (see ScanShards). 0 or 1 scans on the node goroutine itself.
	Workers int

	// BatchBytes is the count-support send batching threshold; 0 = 4KB.
	BatchBytes int

	// KeepResults makes every node record result levels and pass metadata,
	// not just the coordinator — the multi-process worker mode, where each
	// process only sees its own node.
	KeepResults bool

	// Tracer, when non-nil, records phase spans for every node (pass,
	// generate, scan shards, exchange, barrier) for Chrome-trace export.
	// Nil tracing costs nothing on the hot path.
	Tracer *obs.Tracer
	// Registry, when non-nil, receives live counters/gauges/histograms per
	// node (current pass, probes, scan and barrier timings) for /metrics.
	Registry *obs.Registry
	// OnPassStart, when non-nil, fires on the coordinator as each pass k>=2
	// begins, before any scanning.
	OnPassStart func(pass, candidates int)
	// OnPass, when non-nil, fires on the coordinator as each pass completes.
	OnPass func(PassProgress)

	// ClockOffsets, on the coordinator of a multi-process mesh, holds the
	// estimated wall-clock offset of every node relative to node 0 (from
	// cluster.Mesh.ClockOffsets). Remote span timestamps are rebased by it
	// when merged into the coordinator's trace; nil means offset 0.
	ClockOffsets []time.Duration
	// View, when non-nil, receives live run-introspection updates (current
	// pass, per-node progress, last skew snapshot) for /debug/cluster. The
	// coordinator feeds it cluster-wide data from the telemetry stream;
	// followers only see their own progress.
	View *ClusterView

	// sharedObs marks an in-process run where every node writes to the same
	// Tracer: span batches are then skipped on the telemetry plane (they are
	// already in the shared trace), while pass stats still flow so the
	// coordinator's skew analytics and View stay live. Set by Run.
	sharedObs bool
}

func (c *Config) batchBytes() int {
	if c.BatchBytes <= 0 {
		return 4 << 10
	}
	return c.BatchBytes
}

func (c *Config) workers() int {
	if c.Workers <= 1 {
		return 1
	}
	return c.Workers
}

// PlanDecision is re-exported from metrics: the plan phase's output, one per
// pass, recorded in pass metadata and the run report.
type PlanDecision = metrics.PlanDecision

// PassPlanner is the planning facet of a Miner: it turns the pass's
// candidate set into an explicit candidate-to-node assignment before any
// scanning starts. Extracted from Generate/CountPass so the assignment is a
// first-class, inspectable artifact (report `plan` section, /debug/cluster)
// instead of a side effect of the count phase.
type PassPlanner interface {
	// PlanPass computes pass k's assignment plan. prev is the latest
	// complete cluster skew snapshot, broadcast by the coordinator at the
	// start of the pass (nil while none is complete — the first passes of a
	// run); adaptive miners may escalate duplication per hot taxonomy
	// subtree from it. The decision must be a pure function of prev and
	// state replicated on every node, so all nodes compute the identical
	// plan. Runs strictly before CountPass; any state the plan derives
	// (owners, duplication choice) is held by the miner for the count phase.
	PlanPass(n *Node, k int, prev *metrics.SkewReport) (PlanDecision, error)
}

// Miner is the mining-logic half of a run. The runtime calls these hooks
// from the node goroutine in protocol order; every hook receives the Node
// for access to cluster position (ID/NumNodes), the derived global state
// (TotalSize/MinCount) and the communication helpers (StartExchange,
// ShardObs, Span).
//
// A Miner instance belongs to exactly one node and is never called
// concurrently with itself; replicated derivations (candidate generation)
// must be pure functions of state identical on every node after each
// barrier.
type Miner interface {
	// PassPlanner runs between Generate and CountPass (the plan phase of the
	// per-pass state machine).
	PassPlanner

	// LocalSize is the size of the local partition (transactions, customers)
	// reported during the size exchange.
	LocalSize() int

	// NumItems is the size of the dense pass-1 count vector (the item
	// universe).
	NumItems() int

	// CountPass1 scans the local partition and returns the dense per-item
	// support counts; scan counters (TxnsScanned, ...) go into st.
	CountPass1(n *Node, st *metrics.NodeStats) ([]int64, error)

	// FinishPass1 consumes the globally reduced pass-1 counts, records F_1
	// (when n.Keep()) and returns |F_1|. Returning 0 ends the run.
	FinishPass1(n *Node, global []int64) (int, error)

	// Generate materializes C_k from F_(k-1) — identical on every node — and
	// returns |C_k|. Returning 0 ends the run.
	Generate(n *Node, k int) (int, error)

	// CountPass runs pass k's partition and count-support phase over the
	// local shard (routing units through n.StartExchange as needed) and
	// returns this node's barrier contribution. Scan and probe counters go
	// into st, which is the node's live pass window.
	CountPass(n *Node, k int, st *metrics.NodeStats) (PassOutcome, error)

	// MergeFrequents runs on the coordinator only: it merges its own pass
	// outcome (held internally by the miner), the peers' encoded owned
	// frequents and the reduced replicated counts into the global F_k,
	// records it (when n.Keep()) and returns its encoded broadcast form plus
	// |F_k|.
	MergeFrequents(n *Node, k int, peerOwned [][]byte, dupTotal []int64) ([]byte, int, error)

	// FinishPass runs on followers only: it decodes the coordinator's F_k
	// broadcast, records it (when n.Keep()) and returns |F_k|.
	FinishPass(n *Node, k int, payload []byte) (int, error)
}

// PassOutcome is one node's contribution to the pass-k barrier.
type PassOutcome struct {
	// Owned is the encoded locally-determined frequents, sent to the
	// coordinator as KLocalLarge. Followers must always set it (possibly to
	// an encoded empty list); the coordinator keeps its own share in miner
	// state for MergeFrequents and may leave Owned nil.
	Owned []byte

	// DupCounts is the dense count vector of candidates this node counted
	// redundantly (replicated or duplicated candidates); the coordinator
	// reduces the vectors element-wise before thresholding. May be nil when
	// the algorithm has no replicated candidates. The vector layout must be
	// identical on every node.
	DupCounts []int64

	// Duplicated and Fragments feed the pass metadata (metrics.PassStats).
	Duplicated int
	Fragments  int
}

// passMeta is the coordinator-side metadata of one pass.
type passMeta struct {
	pass       int
	candidates int
	duplicated int
	fragments  int
	large      int
	elapsed    time.Duration
	generate   time.Duration // candidate-generation share of elapsed
	plan       PlanDecision  // the plan phase's decision
}

// PassProgress is the per-pass progress callback payload (Config.OnPass),
// delivered on the coordinator when a pass completes.
type PassProgress struct {
	Pass       int
	Candidates int
	Large      int
	Elapsed    time.Duration
	// BytesIn/BytesOut are the coordinator's fabric payload bytes for the
	// pass window.
	BytesIn  int64
	BytesOut int64
}
