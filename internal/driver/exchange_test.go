package driver

import (
	"sync"
	"testing"

	"pgarm/internal/cluster"
	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/wire"
)

// newTestNodes wires bare nodes (no miner) to a channel fabric for
// exercising the count-phase machinery directly.
func newTestNodes(t *testing.T, n int) ([]*Node, cluster.Fabric) {
	t.Helper()
	f := cluster.NewChanFabric(n, 16)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = &Node{id: i, ep: f.Endpoint(i), cfg: Config{BatchBytes: 64}}
	}
	return nodes, f
}

func TestCountPhaseDeliversAllUnits(t *testing.T) {
	nodes, f := newTestNodes(t, 3)
	defer f.Close()

	const unitsPerPeer = 500
	var wg sync.WaitGroup
	received := make([]map[string]int, 3)
	for i, nd := range nodes {
		received[i] = map[string]int{}
		wg.Add(1)
		go func(i int, nd *Node) {
			defer wg.Done()
			recv := received[i]
			cp := nd.StartExchange(ItemsApplier(func(items []item.Item) {
				recv[itemset.Key(items)]++
			}))
			bat := cp.NewBatcher()
			for u := 0; u < unitsPerPeer; u++ {
				// Unit value encodes the sender so receivers can verify.
				unit := []item.Item{item.Item(i), item.Item(100 + u)}
				for dest := 0; dest < 3; dest++ {
					if err := bat.AddItems(dest, unit); err != nil {
						t.Errorf("add: %v", err)
					}
				}
			}
			if err := bat.FlushAll(); err != nil {
				t.Errorf("flush: %v", err)
			}
			if err := cp.Finish(); err != nil {
				t.Errorf("finish: %v", err)
			}
		}(i, nd)
	}
	wg.Wait()
	for i := range nodes {
		total := 0
		for _, c := range received[i] {
			total += c
		}
		if total != 3*unitsPerPeer {
			t.Errorf("node %d received %d units, want %d", i, total, 3*unitsPerPeer)
		}
		// Every unit must arrive exactly once.
		for key, c := range received[i] {
			if c != 1 {
				t.Errorf("node %d unit %v delivered %d times", i, itemset.ParseKey(key), c)
			}
		}
	}
}

func TestCountPhaseSingleNodeLoopback(t *testing.T) {
	nodes, f := newTestNodes(t, 1)
	defer f.Close()
	nd := nodes[0]
	got := 0
	cp := nd.StartExchange(ItemsApplier(func(items []item.Item) { got += len(items) }))
	bat := cp.NewBatcher()
	for i := 0; i < 10; i++ {
		if err := bat.AddItems(0, []item.Item{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	if err := bat.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := cp.Finish(); err != nil {
		t.Fatal(err)
	}
	if got != 30 {
		t.Errorf("received %d items, want 30", got)
	}
}

func TestBatcherFlushesAtThreshold(t *testing.T) {
	nodes, f := newTestNodes(t, 2)
	defer f.Close()
	a, b := nodes[0], nodes[1]

	var recvUnits int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		cp := b.StartExchange(ItemsApplier(func([]item.Item) { recvUnits++ }))
		if err := cp.Finish(); err != nil {
			t.Errorf("b finish: %v", err)
		}
	}()

	cp := a.StartExchange(ItemsApplier(func([]item.Item) {}))
	bat := cp.NewBatcher()
	// BatchBytes is 64; a 2-item unit encodes to ~3-9 bytes, so well before
	// 100 units at least one flush must have happened without FlushAll.
	for i := 0; i < 100; i++ {
		if err := bat.AddItems(1, []item.Item{item.Item(i), item.Item(i + 1000)}); err != nil {
			t.Fatal(err)
		}
	}
	if a.ep.Stats().MsgsSent == 0 {
		t.Error("no automatic flush at threshold")
	}
	if err := bat.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := cp.Finish(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if recvUnits != 100 {
		t.Errorf("receiver saw %d units, want 100", recvUnits)
	}
}

func TestBatcherAddRawMatchesAddItems(t *testing.T) {
	nodes, f := newTestNodes(t, 1)
	defer f.Close()
	nd := nodes[0]
	var got [][]item.Item
	cp := nd.StartExchange(ItemsApplier(func(items []item.Item) {
		cp := make([]item.Item, len(items))
		copy(cp, items)
		got = append(got, cp)
	}))
	bat := cp.NewBatcher()
	if err := bat.AddRaw(0, wire.AppendItems(nil, []item.Item{4, 5, 6})); err != nil {
		t.Fatal(err)
	}
	if err := bat.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := cp.Finish(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0]) != 3 || got[0][0] != 4 || got[0][2] != 6 {
		t.Fatalf("AddRaw unit decoded as %v", got)
	}
}

func TestRecvKindStashesOthers(t *testing.T) {
	nodes, f := newTestNodes(t, 2)
	defer f.Close()
	a, b := nodes[0], nodes[1]
	// b sends a data message then a large broadcast; a waits for the
	// broadcast first — the data message must survive in pending.
	if err := b.ep.Send(0, KData, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := b.ep.Send(0, KLarge, []byte{2}); err != nil {
		t.Fatal(err)
	}
	m, err := a.recvKind(KLarge)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != KLarge {
		t.Fatalf("got kind %d", m.Kind)
	}
	if len(a.pending) != 1 || a.pending[0].Kind != KData {
		t.Fatalf("pending = %+v", a.pending)
	}
	// And the stashed message is consumed first on the next matching recv.
	m, err = a.recvKind(KData)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != KData || len(a.pending) != 0 {
		t.Fatalf("stash replay failed: %+v pending=%d", m, len(a.pending))
	}
}

func TestCountPhaseConsumesPreStashedData(t *testing.T) {
	nodes, f := newTestNodes(t, 2)
	defer f.Close()
	a, b := nodes[0], nodes[1]

	// b runs a full (empty) count phase later; first it pushes data + done
	// to a, which a stashes while waiting for an unrelated kind.
	unit := wire.AppendItems(nil, []item.Item{7, 9})
	if err := b.ep.Send(0, KData, unit); err != nil {
		t.Fatal(err)
	}
	if err := b.ep.Send(0, KDone, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.ep.Send(0, KLarge, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.recvKind(KLarge); err != nil {
		t.Fatal(err)
	}
	if len(a.pending) != 2 {
		t.Fatalf("pending = %d, want 2", len(a.pending))
	}

	got := 0
	cp := a.StartExchange(ItemsApplier(func(items []item.Item) { got++ }))
	if err := cp.Finish(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("pre-stashed unit not applied: got %d", got)
	}
	if len(a.pending) != 0 {
		t.Errorf("pending not drained: %d", len(a.pending))
	}
}
