package driver

import (
	"encoding/json"
	"net/http"
	"sync"

	"pgarm/internal/metrics"
)

// ClusterView is the live run-introspection surface behind /debug/cluster: a
// mutex-guarded snapshot of the run the node goroutine updates at pass
// boundaries and the telemetry ingest path updates per peer. It implements
// http.Handler, replying with the JSON snapshot, and is safe for concurrent
// readers during a run.
type ClusterView struct {
	mu sync.Mutex
	v  ClusterSnapshot
}

// ClusterSnapshot is the JSON shape /debug/cluster serves.
type ClusterSnapshot struct {
	// Nodes is the cluster size; Node the id of the process serving this view.
	Nodes int `json:"nodes"`
	Node  int `json:"node"`
	// Pass and Candidates describe the pass currently executing on this node.
	Pass       int `json:"pass"`
	Candidates int `json:"candidates"`
	// Done flips when the protocol has completed on this node.
	Done bool `json:"done"`
	// Phase is the state-machine state this node is currently in (plan,
	// execute, barrier, replan; startup/flush outside the pass loop).
	Phase string `json:"phase,omitempty"`
	// Progress lists, per node, the last pass this view has complete stats
	// for, and its lag behind the current pass. On a follower only the local
	// entry is populated; the coordinator sees the whole cluster via the
	// telemetry stream (remote entries trail by one pass: a peer's pass-k
	// stats arrive with its pass-(k+1) barrier message or the final flush).
	Progress []NodeProgress `json:"progress,omitempty"`
	// Skew is the most recent complete-pass skew snapshot (coordinator only).
	Skew *metrics.SkewReport `json:"skew,omitempty"`
	// Plan is the current pass's plan decision — the live granule map: which
	// partitioner the pass runs, the base duplication granule and any
	// adaptive per-subtree escalations.
	Plan *metrics.PlanDecision `json:"plan,omitempty"`
}

// NodeProgress is one node's entry in a ClusterSnapshot.
type NodeProgress struct {
	Node     int `json:"node"`
	LastPass int `json:"last_pass"`
	Lag      int `json:"lag"`
}

// Init sizes the view for a run. Called by the node at run start; resets any
// previous run's state.
func (cv *ClusterView) Init(self, nodes int) {
	if cv == nil {
		return
	}
	cv.mu.Lock()
	defer cv.mu.Unlock()
	cv.v = ClusterSnapshot{Nodes: nodes, Node: self, Progress: make([]NodeProgress, nodes)}
	for i := range cv.v.Progress {
		cv.v.Progress[i].Node = i
	}
}

// StartPass records the pass now executing.
func (cv *ClusterView) StartPass(pass, candidates int) {
	if cv == nil {
		return
	}
	cv.mu.Lock()
	defer cv.mu.Unlock()
	cv.v.Pass = pass
	cv.v.Candidates = candidates
	cv.refreshLag()
}

// SetNodePass records that this view has complete pass stats for node up to
// lastPass.
func (cv *ClusterView) SetNodePass(node, lastPass int) {
	if cv == nil {
		return
	}
	cv.mu.Lock()
	defer cv.mu.Unlock()
	if node < 0 || node >= len(cv.v.Progress) {
		return
	}
	cv.v.Progress[node].LastPass = lastPass
	cv.refreshLag()
}

// SetSkew publishes the latest complete-pass skew snapshot.
func (cv *ClusterView) SetSkew(s metrics.SkewReport) {
	if cv == nil {
		return
	}
	cv.mu.Lock()
	defer cv.mu.Unlock()
	cv.v.Skew = &s
}

// SetPlan publishes the current pass's plan decision (the live granule map).
func (cv *ClusterView) SetPlan(d metrics.PlanDecision) {
	if cv == nil {
		return
	}
	cv.mu.Lock()
	defer cv.mu.Unlock()
	cv.v.Plan = &d
}

// SetPhase publishes the state-machine state this node is in.
func (cv *ClusterView) SetPhase(phase string) {
	if cv == nil {
		return
	}
	cv.mu.Lock()
	defer cv.mu.Unlock()
	cv.v.Phase = phase
}

// Finish marks the run complete.
func (cv *ClusterView) Finish() {
	if cv == nil {
		return
	}
	cv.mu.Lock()
	defer cv.mu.Unlock()
	cv.v.Done = true
	cv.refreshLag()
}

func (cv *ClusterView) refreshLag() {
	for i := range cv.v.Progress {
		lag := cv.v.Pass - cv.v.Progress[i].LastPass
		if cv.v.Done || lag < 0 {
			lag = 0
		}
		cv.v.Progress[i].Lag = lag
	}
}

// Snapshot returns a deep copy of the current view.
func (cv *ClusterView) Snapshot() ClusterSnapshot {
	if cv == nil {
		return ClusterSnapshot{}
	}
	cv.mu.Lock()
	defer cv.mu.Unlock()
	out := cv.v
	out.Progress = append([]NodeProgress(nil), cv.v.Progress...)
	if cv.v.Skew != nil {
		s := *cv.v.Skew
		out.Skew = &s
	}
	if cv.v.Plan != nil {
		p := *cv.v.Plan
		p.Escalations = append([]metrics.Escalation(nil), cv.v.Plan.Escalations...)
		out.Plan = &p
	}
	return out
}

// ServeHTTP serves the snapshot as JSON — the /debug/cluster endpoint.
func (cv *ClusterView) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	snap := cv.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(&snap)
}
