package driver

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"pgarm/internal/metrics"
	"pgarm/internal/obs"
)

func TestZigzagRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 2, -2, 1998, -1998, math.MaxInt64, math.MinInt64} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("unzigzag(zigzag(%d)) = %d", v, got)
		}
	}
}

// testBatch builds a batch exercising every codec field: multiple passes with
// per-kind breakdowns, named tracks, spans with negative starts (a rebased
// remote span can precede the receiving epoch) and negative arg values, and —
// when final — an endpoint-totals snapshot.
func testBatch(final bool) *telemetryBatch {
	b := &telemetryBatch{
		final:     final,
		epoch:     time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC).UnixNano(),
		dropped:   7,
		firstPass: 3,
		passes: []metrics.NodeStats{
			{
				TxnsScanned: 1200, Probes: 33000, Increments: 8100,
				ItemsSent: 41, ItemsReceived: 52, BytesSent: 9001, BytesReceived: 777,
				DataBytesSent: 8000, DataBytesReceived: 600, MsgsSent: 12, MsgsReceived: 9,
				BlocksScanned: 5, BlocksSkipped: 2, BytesDecoded: 4096,
				ScanTime: 18 * time.Millisecond, BarrierWait: 3 * time.Millisecond,
				ByKind: []metrics.KindIO{
					{Kind: uint8(KData), Name: kindName(uint8(KData)), MsgsSent: 4, MsgsReceived: 3, BytesSent: 8000, BytesReceived: 600},
					{Kind: uint8(KTelemetry), Name: kindName(uint8(KTelemetry)), MsgsSent: 1, BytesSent: 120},
				},
			},
			{TxnsScanned: 900, ScanTime: 2 * time.Millisecond},
		},
		tracks: []obs.TrackName{
			{Node: 2, Lane: 0, Name: "node 2"},
			{Node: 2, Lane: 1, Name: "scan w0"},
		},
		spans: []obs.SpanRecord{
			{Name: "pass 3", Node: 2, Lane: 0, Start: -1500, Dur: 900000,
				Args: []obs.Arg{{Key: "candidates", Val: 412}, {Key: "delta", Val: -9}}},
			{Name: "barrier", Node: 2, Lane: 0, Start: 880000, Dur: 20000},
		},
	}
	if final {
		b.totals = &metrics.EndpointTotals{
			MsgsSent: 240, MsgsReceived: 238, BytesSent: 131072, BytesReceived: 99000,
			ByKind: []metrics.KindIO{
				{Kind: uint8(KSize), Name: kindName(uint8(KSize)), MsgsSent: 1, MsgsReceived: 1, BytesSent: 9, BytesReceived: 9},
			},
		}
	}
	return b
}

func TestTelemetryCodecRoundTrip(t *testing.T) {
	for _, final := range []bool{false, true} {
		in := testBatch(final)
		got, err := decodeTelemetry(appendTelemetry(nil, in))
		if err != nil {
			t.Fatalf("final=%v: decode: %v", final, err)
		}
		if !reflect.DeepEqual(got, in) {
			t.Fatalf("final=%v: round trip mismatch:\n got %+v\nwant %+v", final, got, in)
		}
	}
}

func TestTelemetryCodecRejectsCorruption(t *testing.T) {
	good := appendTelemetry(nil, testBatch(true))
	if _, err := decodeTelemetry(good); err != nil {
		t.Fatalf("control decode failed: %v", err)
	}

	cases := map[string][]byte{
		"wrong version":  append([]byte{telemetryVersion + 1}, good[1:]...),
		"empty":          {},
		"trailing bytes": append(append([]byte(nil), good...), 0xee),
		// A truncation at every prefix length must error, never panic or
		// fabricate a batch.
		"truncated": good[:len(good)-1],
	}
	for name, p := range cases {
		if _, err := decodeTelemetry(p); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
	for cut := 0; cut < len(good); cut++ {
		if _, err := decodeTelemetry(good[:cut]); err == nil {
			t.Errorf("truncation at %d bytes decoded successfully", cut)
		}
	}

	// A corrupt collection count larger than the payload must be rejected by
	// the length bound, not drive a huge allocation.
	huge := []byte{telemetryVersion, 0}
	huge = append(huge, 0x80, 0x80, 0x80, 0x80, 0x10) // epoch
	huge = append(huge, 0)                            // dropped
	huge = append(huge, 1)                            // firstPass
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0x7f) // numPasses: absurd
	if _, err := decodeTelemetry(huge); err == nil {
		t.Error("absurd collection count decoded successfully")
	}
}

func TestClusterViewLifecycle(t *testing.T) {
	// Nil receiver: every method is a safe no-op.
	var nilView *ClusterView
	nilView.Init(0, 4)
	nilView.StartPass(2, 10)
	nilView.SetNodePass(1, 1)
	nilView.SetSkew(metrics.SkewReport{})
	nilView.Finish()
	if snap := nilView.Snapshot(); snap.Nodes != 0 {
		t.Fatalf("nil snapshot = %+v", snap)
	}

	cv := &ClusterView{}
	cv.Init(0, 3)
	cv.StartPass(2, 41)
	cv.SetNodePass(0, 2)
	cv.SetNodePass(1, 1)
	cv.SetNodePass(99, 5) // out of range: ignored
	cv.SetSkew(metrics.SkewReport{Pass: 1, Straggler: 2})

	snap := cv.Snapshot()
	if snap.Nodes != 3 || snap.Node != 0 || snap.Pass != 2 || snap.Candidates != 41 || snap.Done {
		t.Fatalf("snapshot = %+v", snap)
	}
	if len(snap.Progress) != 3 {
		t.Fatalf("progress = %+v", snap.Progress)
	}
	// Node 1 has shipped only pass 1 while pass 2 runs: lag 1. Node 2 has
	// shipped nothing: lag 2.
	if snap.Progress[1].Lag != 1 || snap.Progress[2].Lag != 2 || snap.Progress[0].Lag != 0 {
		t.Fatalf("lags = %+v", snap.Progress)
	}
	if snap.Skew == nil || snap.Skew.Straggler != 2 {
		t.Fatalf("skew = %+v", snap.Skew)
	}

	cv.Finish()
	if snap := cv.Snapshot(); !snap.Done || snap.Progress[2].Lag != 0 {
		t.Fatalf("after Finish: %+v", snap)
	}

	// The HTTP surface serves the same snapshot as JSON.
	rec := httptest.NewRecorder()
	cv.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/cluster", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var decoded ClusterSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("body not JSON: %v", err)
	}
	if !reflect.DeepEqual(decoded, cv.Snapshot()) {
		t.Fatalf("served %+v, snapshot %+v", decoded, cv.Snapshot())
	}
}
