package driver

import (
	"fmt"
	"strconv"
	"time"

	"pgarm/internal/cluster"
	"pgarm/internal/metrics"
	"pgarm/internal/obs"
	"pgarm/internal/txn"
)

// kindNames maps the mining protocol's message kinds to stable display names
// (index = kind value).
var kindNames = [...]string{"", "size", "counts1", "data", "done", "local-large", "dup-counts", "large", "telemetry", "plan", "cond-base"}

func kindName(k uint8) string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind-%d", k)
}

// kindDeltas converts the per-kind window delta (cur − base) into the
// metrics form, naming each kind.
func kindDeltas(cur, base []cluster.KindStat) []metrics.KindIO {
	if len(cur) == 0 {
		return nil
	}
	out := make([]metrics.KindIO, len(cur))
	for k := range cur {
		d := cur[k]
		if k < len(base) {
			d = d.Sub(base[k])
		}
		out[k] = metrics.KindIO{
			Kind: uint8(k), Name: kindName(uint8(k)),
			MsgsSent: d.MsgsSent, MsgsReceived: d.MsgsRecv,
			BytesSent: d.BytesSent, BytesReceived: d.BytesRecv,
		}
	}
	return out
}

// capturePassComm closes the current pass's communication window: the fabric
// counters are monotonic, so the pass's traffic is the delta against the
// snapshot taken at the previous pass's end. The windows tile the whole run
// (the first window opens at zero, before the size exchange), so summed over
// all passes they reconcile exactly with the endpoint's lifetime totals.
func (n *Node) capturePassComm() {
	st := n.ep.Stats()
	ks := n.ep.KindStats()
	d := st.Sub(n.base)
	n.cur.BytesSent = d.BytesSent
	n.cur.BytesReceived = d.BytesRecv
	n.cur.MsgsSent = d.MsgsSent
	n.cur.MsgsReceived = d.MsgsRecv
	n.cur.ByKind = kindDeltas(ks, n.baseKind)
	// The count-support data plane (Table 6's sent side) is exactly the
	// KData slice of this window: data batches are only sent during the
	// node's own count phase, never across a pass boundary. The FP-Growth
	// engine's conditional-base stream (KCondBase) is the same plane under a
	// different kind, so it folds in too.
	if int(KData) < len(n.cur.ByKind) {
		n.cur.DataBytesSent = n.cur.ByKind[KData].BytesSent
	}
	if int(KCondBase) < len(n.cur.ByKind) {
		n.cur.DataBytesSent += n.cur.ByKind[KCondBase].BytesSent
	}
	n.base = st
	n.baseKind = ks
}

// foldFlushWindow folds the traffic of the run-end telemetry flush — which
// happens after the last pass window closed — into the last pass window, so
// the per-pass windows keep tiling the endpoint's lifetime totals exactly
// (ReconcileEndpoints stays balanced with telemetry traffic included).
func (n *Node) foldFlushWindow() {
	if len(n.perPass) == 0 {
		return
	}
	st := n.ep.Stats()
	ks := n.ep.KindStats()
	d := st.Sub(n.base)
	last := &n.perPass[len(n.perPass)-1]
	last.BytesSent += d.BytesSent
	last.BytesReceived += d.BytesRecv
	last.MsgsSent += d.MsgsSent
	last.MsgsReceived += d.MsgsRecv
	last.ByKind = mergeKindIO(last.ByKind, kindDeltas(ks, n.baseKind))
	n.base = st
	n.baseKind = ks
}

// mergeKindIO adds the per-kind deltas of add into dst element-wise,
// extending dst when add covers kinds dst has not seen (the telemetry kind
// first appears mid-run).
func mergeKindIO(dst, add []metrics.KindIO) []metrics.KindIO {
	if len(add) > len(dst) {
		grown := make([]metrics.KindIO, len(add))
		copy(grown, dst)
		for k := len(dst); k < len(add); k++ {
			grown[k] = metrics.KindIO{Kind: uint8(k), Name: kindName(uint8(k))}
		}
		dst = grown
	}
	for k := range add {
		dst[k].MsgsSent += add[k].MsgsSent
		dst[k].MsgsReceived += add[k].MsgsReceived
		dst[k].BytesSent += add[k].BytesSent
		dst[k].BytesReceived += add[k].BytesReceived
	}
	return dst
}

// EndpointTotals snapshots one node's lifetime fabric counters for RunStats.
func EndpointTotals(id int, ep cluster.Endpoint) metrics.EndpointTotals {
	st := ep.Stats()
	return metrics.EndpointTotals{
		Node:          id,
		MsgsSent:      st.MsgsSent,
		MsgsReceived:  st.MsgsRecv,
		BytesSent:     st.BytesSent,
		BytesReceived: st.BytesRecv,
		ByKind:        kindDeltas(ep.KindStats(), nil),
	}
}

// nodeInstruments are one node's live registry series. The zero value (no
// registry configured) is fully inert.
type nodeInstruments struct {
	pass          *obs.Gauge
	candidates    *obs.Gauge
	txns          *obs.Counter
	probes        *obs.Counter
	increments    *obs.Counter
	itemsSent     *obs.Counter
	blocksScanned *obs.Counter
	blocksSkipped *obs.Counter
	bytesDecoded  *obs.Counter
	scanSec       *obs.Histogram
	barrierSec    *obs.Histogram
}

func newNodeInstruments(r *obs.Registry, node int) nodeInstruments {
	if r == nil {
		return nodeInstruments{}
	}
	l := obs.L("node", strconv.Itoa(node))
	return nodeInstruments{
		pass:          r.Gauge("pgarm_pass", "Pass currently executing.", l),
		candidates:    r.Gauge("pgarm_pass_candidates", "Candidate itemsets |C_k| of the current pass.", l),
		txns:          r.Counter("pgarm_txns_scanned_total", "Transactions scanned across all passes.", l),
		probes:        r.Counter("pgarm_probes_total", "Candidate-table probes.", l),
		increments:    r.Counter("pgarm_increments_total", "Support-count increments applied.", l),
		itemsSent:     r.Counter("pgarm_items_sent_total", "Items shipped to other nodes.", l),
		blocksScanned: r.Counter("pgarm_blocks_scanned_total", "Columnar partition blocks decoded during local scans.", l),
		blocksSkipped: r.Counter("pgarm_blocks_skipped_total", "Blocks (or sequences) the pass predicate ruled out before decode.", l),
		bytesDecoded:  r.Counter("pgarm_bytes_decoded_total", "Encoded bytes of decoded columnar blocks.", l),
		scanSec:       r.Histogram("pgarm_scan_shard_seconds", "Per-shard local scan wall time.", nil, l),
		barrierSec:    r.Histogram("pgarm_barrier_wait_seconds", "Per-pass L_k barrier wait.", nil, l),
	}
}

func (ins *nodeInstruments) startPass(k, candidates int) {
	ins.pass.Set(int64(k))
	ins.candidates.Set(int64(candidates))
}

func (ins *nodeInstruments) endPass(cur *metrics.NodeStats) {
	ins.txns.Add(cur.TxnsScanned)
	ins.probes.Add(cur.Probes)
	ins.increments.Add(cur.Increments)
	ins.itemsSent.Add(cur.ItemsSent)
	ins.blocksScanned.Add(cur.BlocksScanned)
	ins.blocksSkipped.Add(cur.BlocksSkipped)
	ins.bytesDecoded.Add(cur.BytesDecoded)
	ins.barrierSec.Observe(cur.BarrierWait.Seconds())
}

// ShardObs carries the per-shard observability hooks of one sharded scan;
// the zero value disables them at no cost.
type ShardObs struct {
	tr   *obs.Tracer
	hist *obs.Histogram
	node int
	name string
}

// ShardObs builds the hooks for one of this node's scans. name labels the
// shard spans ("scan" for pure local scans, "count" when the scan also
// routes count-support units).
func (n *Node) ShardObs(name string) ShardObs {
	if n.tr == nil && n.ins.scanSec == nil {
		return ShardObs{}
	}
	return ShardObs{tr: n.tr, hist: n.ins.scanSec, node: n.id, name: name}
}

// BoundaryObs builds tracer-only shard hooks for a pass-boundary build
// (candidate generation, partition planning). Unlike ShardObs it carries no
// scan histogram, so boundary sub-spans never feed pgarm_scan_shard_seconds.
// name should differ from the lane-0 phase span ("generate shard",
// "partition shard") so span rollups don't double-count the phase.
func (n *Node) BoundaryObs(name string) ShardObs {
	if !n.tr.Enabled() {
		return ShardObs{}
	}
	return ShardObs{tr: n.tr, node: n.id, name: name}
}

// Hook adapts the observer to the hook shape the parallel pass-boundary
// builders take (itemset.Hook): worker w's sub-span opens on lane w+1, lane 0
// being the node driver. An inert observer returns nil, which the builders
// treat as free.
func (so ShardObs) Hook() func(w int) func() {
	if so.tr == nil && so.hist == nil {
		return nil
	}
	return func(w int) func() { return so.begin(w+1, w) }
}

// begin opens the shard's span and timer; the returned func closes them.
// lane 0 is the node driver itself (inline scan, nesting under the pass
// span); worker shards live on lanes 1..W so overlapping workers get their
// own trace rows.
func (so ShardObs) begin(lane, shard int) func() {
	if so.tr == nil && so.hist == nil {
		return func() {}
	}
	start := time.Now()
	var sp obs.Span
	if so.tr.Enabled() {
		if lane > 0 {
			so.tr.SetThreadName(so.node, lane, fmt.Sprintf("scan w%d", shard))
		}
		sp = so.tr.Begin(so.node, lane, so.name)
	}
	return func() {
		if so.hist != nil {
			so.hist.Observe(time.Since(start).Seconds())
		}
		sp.End()
	}
}

// beginBlocks opens the block-scan sub-span nested inside a shard's span on
// the same lane; on close it annotates the span with the shard's block
// counters, so traces show per-worker decode vs. skip behaviour.
func (so ShardObs) beginBlocks(lane int, st *txn.ScanStats) func() {
	if !so.tr.Enabled() {
		return func() {}
	}
	sp := so.tr.Begin(so.node, lane, "blocks")
	return func() {
		sp.Arg("blocks_scanned", st.BlocksScanned)
		sp.Arg("blocks_skipped", st.BlocksSkipped)
		sp.Arg("bytes_decoded", st.BytesDecoded)
		sp.End()
	}
}

// beginRecv opens the count-phase receiver span on its own lane (W+1).
func (n *Node) beginRecv() obs.Span {
	if !n.tr.Enabled() {
		return obs.Span{}
	}
	lane := n.cfg.workers() + 1
	n.tr.SetThreadName(n.id, lane, "recv")
	return n.tr.Begin(n.id, lane, "recv")
}

// emitProgress fires the coordinator's pass callbacks; a no-op elsewhere.
func (n *Node) emitProgress(pass, candidates, large int, elapsed time.Duration) {
	if !n.IsCoord() || n.cfg.OnPass == nil {
		return
	}
	n.cfg.OnPass(PassProgress{
		Pass:       pass,
		Candidates: candidates,
		Large:      large,
		Elapsed:    elapsed,
		BytesIn:    n.cur.BytesReceived,
		BytesOut:   n.cur.BytesSent,
	})
}
