package driver

import (
	"fmt"
	"sync"

	"pgarm/internal/item"
	"pgarm/internal/metrics"
	"pgarm/internal/txn"
)

// ScanShards drives one pass over a node's local partition with `workers`
// scan goroutines. Worker w receives exactly the records whose scan ordinal
// o satisfies o % workers == w, so the shard assignment is a pure function
// of storage order — independent of goroutine scheduling. fn runs
// concurrently across workers but serially within one worker; all fn calls
// happen-before ScanShards returns.
//
// scan is the partition's iteration primitive (txn.Scanner.Scan, seq.DB.Scan,
// ...): each worker performs its own scan and skips foreign ordinals. The
// storage types used here all support concurrent independent scans (slice
// iteration, or a private file handle per scan), and skipping a record costs
// one ordinal check — negligible next to extension + subset enumeration,
// which only the owning worker performs.
//
// With workers == 1 the scan runs inline on the calling goroutine, exactly
// like the pre-worker-pool code path.
//
// so carries the per-shard observability hooks (span + timing histogram);
// the zero value disables them. An inline scan records on trace lane 0 (the
// driver's own row), worker shards on lanes 1..W.
func ScanShards[T any](scan func(func(T) error) error, workers int, so ShardObs, fn func(w int, t T) error) error {
	if workers <= 1 {
		done := so.begin(0, 0)
		defer done()
		return scan(func(t T) error { return fn(0, t) })
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			done := so.begin(1+w, w)
			defer done()
			defer func() {
				// A panic on a worker goroutine would escape the node
				// goroutine's recover and kill the process; convert it to a
				// scan error instead.
				if r := recover(); r != nil {
					errs[w] = fmt.Errorf("scan worker %d panicked: %v", w, r)
				}
			}()
			ord := 0
			errs[w] = scan(func(t T) error {
				mine := ord%workers == w
				ord++
				if !mine {
					return nil
				}
				return fn(w, t)
			})
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ScanTxnShards drives one pass over a transaction partition with `workers`
// scan goroutines, sharding by storage block when the source supports it.
//
// For a txn.BlockScanner source (columnar partition), worker w owns exactly
// the blocks whose ordinal o satisfies o % workers == w: each worker preads
// and decodes only its own blocks, so decode itself parallelizes instead of
// every worker re-decoding the whole partition, and pred — the per-pass
// candidate predicate — is consulted before a block is read, so filtered
// blocks are never decompressed. Each worker Matches on a private Clone of
// pred and folds its block counters into wstats[w]; MergeWorkerStats carries
// them into the node's pass totals in worker order.
//
// Any other source falls back to transaction-granular ScanShards, where
// every worker runs its own full scan and skips foreign ordinals.
//
// Both paths preserve bit-identity at every worker count: shard assignment
// is a pure function of storage order, count merges are exact integer sums
// in fixed worker order, and a skipped block contributes nothing to any
// count anywhere (see txn.Predicate for the proof).
func ScanTxnShards(src txn.Scanner, pred *txn.Predicate, workers int, so ShardObs, wstats []metrics.NodeStats, fn func(w int, t txn.Transaction) error) error {
	bs, ok := src.(txn.BlockScanner)
	if !ok {
		return ScanShards(src.Scan, workers, so, fn)
	}
	if workers <= 1 {
		workers = 1
	}
	scanShard := func(w, nShards, lane int) (txn.ScanStats, error) {
		var st txn.ScanStats
		done := so.beginBlocks(lane, &st)
		defer done()
		err := bs.ScanBlocks(txn.BlockScanOptions{
			Shard:     w,
			NumShards: nShards,
			Pred:      pred.Clone(),
			Stats:     &st,
		}, func(b txn.Block) error {
			for _, t := range b.Txns {
				if err := fn(w, t); err != nil {
					return err
				}
			}
			return nil
		})
		return st, err
	}
	if workers == 1 {
		done := so.begin(0, 0)
		defer done()
		st, err := scanShard(0, 1, 0)
		addBlockStats(wstats, 0, st)
		return err
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			done := so.begin(1+w, w)
			defer done()
			defer func() {
				if r := recover(); r != nil {
					errs[w] = fmt.Errorf("scan worker %d panicked: %v", w, r)
				}
			}()
			st, err := scanShard(w, workers, 1+w)
			addBlockStats(wstats, w, st)
			errs[w] = err
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// addBlockStats folds one shard's block counters into its worker stats slot;
// callers without per-worker stats (nil or short wstats) simply lose the
// counters, never crash.
func addBlockStats(wstats []metrics.NodeStats, w int, st txn.ScanStats) {
	if w >= len(wstats) {
		return
	}
	wstats[w].BlocksScanned += st.BlocksScanned
	wstats[w].BlocksSkipped += st.BlocksSkipped
	wstats[w].BytesDecoded += st.BytesDecoded
}

// WorkerVectors returns `workers` count vectors of length n whose index-0
// vector is primary: worker w accumulates into vectors[w], and
// MergeWorkerVectors folds vectors 1..W-1 back into vectors[0]. With one
// worker this allocates exactly the single vector the sequential path used.
func WorkerVectors(workers, n int) [][]int64 {
	vs := make([][]int64, workers)
	for w := range vs {
		vs[w] = make([]int64, n)
	}
	return vs
}

// MergeWorkerVectors sums vectors[1..] into vectors[0] and returns it.
// Addition is associative and commutative over exact integers, and the merge
// order (ascending worker index) is fixed, so the result is bit-identical to
// a sequential scan regardless of how the workers were scheduled.
func MergeWorkerVectors(vectors [][]int64) []int64 {
	total := vectors[0]
	for _, v := range vectors[1:] {
		for i, c := range v {
			total[i] += c
		}
	}
	return total
}

// MergeWorkerStats folds per-worker scan counters into the node's pass
// counters, in worker order.
func MergeWorkerStats(cur *metrics.NodeStats, ws []metrics.NodeStats) {
	for i := range ws {
		cur.AddScanCounters(&ws[i])
	}
}

// WorkerScratch allocates one reusable item buffer per worker.
func WorkerScratch(workers, capacity int) [][]item.Item {
	out := make([][]item.Item, workers)
	for w := range out {
		out[w] = make([]item.Item, 0, capacity)
	}
	return out
}
