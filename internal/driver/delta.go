package driver

import (
	"pgarm/internal/cumulate"
	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/metrics"
	"pgarm/internal/taxonomy"
	"pgarm/internal/txn"
)

// CountOptions configures one CountTable scan.
type CountOptions struct {
	// Workers is the scan worker count (<= 1 scans inline).
	Workers int
	// Lo/Hi restrict counting to the candidate id range [Lo, Hi) — NPGM's
	// memory fragments. Hi <= 0 means the whole index.
	Lo, Hi int32
	// Pred is the per-pass block-skip predicate; nil scans every block.
	Pred *txn.Predicate
	// Obs carries the per-shard observability hooks; the zero value
	// disables them.
	Obs ShardObs
	// WStats accumulates TxnsScanned, Probes, Increments and block
	// counters per worker, exactly as the batch engines record them. It
	// must hold at least Workers slots (min 1).
	WStats []metrics.NodeStats
}

// CountTable counts support for the candidates behind index over one
// transaction source: each transaction is extended with its kept ancestors
// (view), filtered to candidate members (member), and every k-subset is
// probed against the index, incrementing wcounts. It is the count-support
// kernel shared by the batch NPGM pass and the incremental miner's delta
// and prefix scans, so both count bit-identically by construction.
//
// wcounts must have opt.Workers (min 1) vectors of length index.Len();
// callers fold them with MergeWorkerVectors. src must support concurrent
// independent Scan calls when opt.Workers > 1 (every txn.Scanner in the
// repo does).
func CountTable(view *taxonomy.View, member []bool, index *itemset.Index, k int, src txn.Scanner, wcounts [][]int64, opt CountOptions) error {
	W := opt.Workers
	if W < 1 {
		W = 1
	}
	lo, hi := opt.Lo, opt.Hi
	if hi <= 0 {
		hi = int32(index.Len())
	}
	wext := WorkerScratch(W, 64)
	wsub := WorkerScratch(W, 2*k)
	return ScanTxnShards(src, opt.Pred, W, opt.Obs, opt.WStats, func(w int, t txn.Transaction) error {
		ws := &opt.WStats[w]
		ws.TxnsScanned++
		ext := cumulate.ExtendFiltered(view, member, wext[w][:0], t.Items)
		wext[w] = ext
		counts := wcounts[w]
		itemset.ForEachSubsetScratch(ext, k, wsub[w], func(sub []item.Item) bool {
			ws.Probes++
			if id := index.Lookup(sub); id >= lo && id < hi {
				counts[id]++
				ws.Increments++
			}
			return true
		})
		return nil
	})
}
