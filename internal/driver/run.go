package driver

import (
	"time"

	"pgarm/internal/cluster"
	"pgarm/internal/metrics"
)

// Run executes the full mining protocol over fabric with one node goroutine
// per miner (miners[i] becomes node i; node 0 coordinates). It returns the
// nodes — whose miners now hold the results — and the wall-clock elapsed
// time. The first node error, if any, is returned after every node has
// exited.
func Run(fabric cluster.Fabric, cfg Config, miners []Miner) ([]*Node, time.Duration, error) {
	// In-process nodes share one Tracer, so the telemetry plane skips span
	// shipping (they are already in the shared trace); pass stats still flow
	// to keep the coordinator's skew analytics and ClusterView live.
	cfg.sharedObs = true
	nodes := make([]*Node, len(miners))
	for i, m := range miners {
		nodes[i] = NewNode(fabric.Endpoint(i), cfg, m)
	}
	start := time.Now()
	errs := make(chan error, len(nodes))
	for _, nd := range nodes {
		go func(nd *Node) { errs <- nd.Run() }(nd)
	}
	var firstErr error
	for range nodes {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, 0, firstErr
	}
	return nodes, time.Since(start), nil
}

// RunWorker executes one node of the protocol over a caller-provided
// endpoint — the entry point for true multi-process clusters (DialMesh).
// KeepResults is forced on so this process's miner records the global
// frequents even when it is not the coordinator.
func RunWorker(ep cluster.Endpoint, cfg Config, m Miner) (*Node, time.Duration, error) {
	cfg.KeepResults = true
	nd := NewNode(ep, cfg, m)
	start := time.Now()
	if err := nd.Run(); err != nil {
		return nil, 0, err
	}
	return nd, time.Since(start), nil
}

// AssembleStats merges each node's per-pass counters with the coordinator's
// per-pass metadata into a RunStats. nodes[0] must be the node that recorded
// pass metadata (the coordinator, or the single local node of a worker run).
func AssembleStats(algorithm string, minSup float64, nodes []*Node, elapsed time.Duration) *metrics.RunStats {
	coord := nodes[0]
	rs := &metrics.RunStats{
		Algorithm: algorithm,
		Nodes:     len(nodes),
		MinSup:    minSup,
		Elapsed:   elapsed,
	}
	for pi, meta := range coord.passMeta {
		ps := metrics.PassStats{
			Pass:       meta.pass,
			Candidates: meta.candidates,
			Duplicated: meta.duplicated,
			Fragments:  meta.fragments,
			Large:      meta.large,
			Elapsed:    meta.elapsed,
			Generate:   meta.generate,
		}
		pl := meta.plan
		ps.Plan = &pl
		for _, nd := range nodes {
			if pi < len(nd.perPass) {
				ps.Nodes = append(ps.Nodes, nd.perPass[pi])
			}
		}
		rs.Passes = append(rs.Passes, ps)
	}
	for _, nd := range nodes {
		rs.Endpoints = append(rs.Endpoints, EndpointTotals(nd.id, nd.ep))
	}
	return rs
}
