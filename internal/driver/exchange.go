package driver

import (
	"fmt"

	"pgarm/internal/cluster"
	"pgarm/internal/item"
	"pgarm/internal/wire"
)

// Exchange runs the count-support communication of one pass. The node's
// scan side — the node goroutine itself, or Config.Workers sharded scan
// workers — reads the local partition and routes payload units (single
// k-itemsets for HPGM, per-transaction item groups for the H-HPGM family,
// encoded customer sequences for SPSPM/HPSPM) while a single receiver
// goroutine owns the node's partitioned candidate state and applies every
// batch — remote batches from the fabric inbox and local batches through an
// in-memory loopback queue. Splitting producer and consumer this way is
// what prevents the classic all-to-all deadlock of two nodes blocked
// sending into each other's full inboxes, and it means scan parallelism
// never contends on the candidate tables: workers batch into per-worker
// send buffers (one Batcher per worker) and all routed units funnel through
// this one consumer.
//
// Termination: after the scan workers have joined and every per-worker
// batch is flushed, the main goroutine sends KDone to every peer and closes
// the loopback; the receiver finishes once it has seen KDone from every
// peer and loopback close. Worker sends happen-before the KDone send (the
// pool joins first), so per-sender FIFO delivery still guarantees no data
// trails a peer's KDone.
type Exchange struct {
	n     *Node
	kind  uint8 // data-batch message kind (KData for count-support, KCondBase for pattern bases)
	apply func(batch []byte) (int64, error)
	selfq chan []byte
	done  chan error
	stash []cluster.Message // non-count-phase messages that arrived early
	// free recycles drained loopback batch buffers back to the batchers, so
	// steady-state local routing allocates no fresh batch buffers. Remote
	// buffers are never recycled: the fabric hands them to the peer by
	// reference.
	free chan []byte
	// itemsRecv/bytesRecv count items and payload bytes decoded from
	// *remote* batches (loopback units excluded) — the receiver-side half
	// of the paper's communication metrics. Counting at delivery rather
	// than from fabric counters keeps pass attribution exact even when a
	// peer's pass-end control messages arrive early.
	itemsRecv int64
	bytesRecv int64
}

// StartExchange launches the receiver goroutine for this pass's
// count-support phase. apply is invoked once per batch payload, from the
// receiver goroutine only — it has exclusive access to the candidate state
// it touches until Finish returns. It must decode the batch's concatenated
// units and return the number of items it decoded (the receive-side item
// accounting for remote batches); ItemsApplier adapts the common
// one-itemset-per-unit shape.
func (n *Node) StartExchange(apply func(batch []byte) (int64, error)) *Exchange {
	return n.StartExchangeKind(KData, apply)
}

// StartExchangeKind is StartExchange with an explicit data-batch message
// kind. The count-support phase uses KData; the FP-Growth engine routes
// conditional pattern bases as KCondBase so the per-kind byte accounting
// separates the two streams. Termination is KDone in either case.
func (n *Node) StartExchangeKind(kind uint8, apply func(batch []byte) (int64, error)) *Exchange {
	ex := &Exchange{
		n:     n,
		kind:  kind,
		apply: apply,
		selfq: make(chan []byte, 64),
		done:  make(chan error, 1),
		free:  make(chan []byte, 64),
	}
	// Hand any already-stashed count-phase messages (a fast peer may have
	// started this pass before our previous barrier receive completed) to
	// the receiver.
	var pre []cluster.Message
	rest := n.pending[:0]
	for _, m := range n.pending {
		if m.Kind == kind || m.Kind == KDone {
			pre = append(pre, m)
		} else {
			rest = append(rest, m)
		}
	}
	n.pending = rest
	go func() {
		sp := n.beginRecv()
		err := ex.loop(pre)
		sp.Arg("items", ex.itemsRecv)
		sp.Arg("bytes", ex.bytesRecv)
		sp.End()
		ex.done <- err
	}()
	return ex
}

// loop is the receiver body.
func (ex *Exchange) loop(pre []cluster.Message) error {
	peersLeft := ex.n.numPeers()
	for _, m := range pre {
		switch m.Kind {
		case ex.kind:
			if err := ex.applyBatch(m.Payload, true); err != nil {
				return err
			}
		case KDone:
			peersLeft--
		}
	}
	selfq := ex.selfq
	inbox := ex.n.ep.Inbox()
	for peersLeft > 0 || selfq != nil {
		select {
		case m, ok := <-inbox:
			if !ok {
				if cause := ex.n.ep.Err(); cause != nil {
					return fmt.Errorf("driver: node %d inbox closed mid count phase: %w", ex.n.id, cause)
				}
				return fmt.Errorf("driver: node %d inbox closed mid count phase", ex.n.id)
			}
			switch m.Kind {
			case ex.kind:
				if err := ex.applyBatch(m.Payload, true); err != nil {
					return err
				}
			case KDone:
				peersLeft--
			default:
				ex.stash = append(ex.stash, m)
			}
		case b, ok := <-selfq:
			if !ok {
				selfq = nil
				continue
			}
			if err := ex.applyBatch(b, false); err != nil {
				return err
			}
		}
	}
	return nil
}

// applyBatch hands one batch to the miner's decoder and accounts for it.
func (ex *Exchange) applyBatch(b []byte, remote bool) error {
	items, err := ex.apply(b)
	if remote {
		ex.bytesRecv += int64(len(b))
		ex.itemsRecv += items
	}
	if err != nil {
		return fmt.Errorf("driver: node %d decode count batch: %w", ex.n.id, err)
	}
	if !remote {
		// Loopback buffers are owned by this node end to end; hand the
		// drained buffer back to the batchers.
		select {
		case ex.free <- b[:0]:
		default:
		}
	}
	return nil
}

// Finish is called by the main goroutine after its scan: it signals end of
// stream, waits for the receiver, folds the receive-side counters into the
// pass window and re-queues any stashed messages for the pass-end protocol.
func (ex *Exchange) Finish() error {
	for p := 0; p < ex.n.ep.N(); p++ {
		if p == ex.n.id {
			continue
		}
		if err := ex.n.ep.Send(p, KDone, nil); err != nil {
			return err
		}
	}
	close(ex.selfq)
	err := <-ex.done
	ex.n.pending = append(ex.n.pending, ex.stash...)
	ex.stash = nil
	ex.n.cur.ItemsReceived += ex.itemsRecv
	ex.n.cur.DataBytesReceived += ex.bytesRecv
	return err
}

// ItemsApplier adapts a per-itemset apply function to the Exchange's
// per-batch callback: batches are concatenations of wire item units, decoded
// with a reusable scratch buffer. The returned function is single-goroutine
// (the Exchange receiver), like apply itself.
func ItemsApplier(apply func(items []item.Item)) func(batch []byte) (int64, error) {
	dec := make([]item.Item, 0, 32)
	return func(b []byte) (int64, error) {
		var n int64
		for off := 0; off < len(b); {
			items, used, err := wire.Items(b[off:], dec[:0])
			if err != nil {
				return n, err
			}
			dec = items
			off += used
			n += int64(len(items))
			apply(items)
		}
		return n, nil
	}
}

// Batcher accumulates payload units per destination and flushes them as
// KData messages once a batch exceeds the configured threshold; units for
// the local node go through the loopback queue without touching the fabric.
// Each producer (scan worker) must own its own Batcher.
type Batcher struct {
	ex    *Exchange
	bufs  [][]byte
	limit int
}

// NewBatcher returns a fresh per-producer batcher for this exchange.
func (ex *Exchange) NewBatcher() *Batcher {
	return &Batcher{
		ex:    ex,
		bufs:  make([][]byte, ex.n.ep.N()),
		limit: ex.n.cfg.batchBytes(),
	}
}

// AddItems appends one itemset unit (wire item encoding) for dest, flushing
// if the batch is full.
func (b *Batcher) AddItems(dest int, items []item.Item) error {
	b.bufs[dest] = wire.AppendItems(b.take(dest), items)
	if len(b.bufs[dest]) >= b.limit {
		return b.Flush(dest)
	}
	return nil
}

// AddRaw appends one already-encoded unit for dest (the unit bytes are
// copied), flushing if the batch is full. The unit encoding must match what
// the exchange's apply callback decodes.
func (b *Batcher) AddRaw(dest int, unit []byte) error {
	b.bufs[dest] = append(b.take(dest), unit...)
	if len(b.bufs[dest]) >= b.limit {
		return b.Flush(dest)
	}
	return nil
}

// take returns dest's batch buffer, preferring a recycled loopback buffer
// over a fresh allocation when the batch is empty.
func (b *Batcher) take(dest int) []byte {
	if b.bufs[dest] == nil {
		select {
		case buf := <-b.ex.free:
			b.bufs[dest] = buf
		default:
		}
	}
	return b.bufs[dest]
}

// Flush sends dest's accumulated batch, if any.
func (b *Batcher) Flush(dest int) error {
	buf := b.bufs[dest]
	if len(buf) == 0 {
		return nil
	}
	b.bufs[dest] = nil // receiver takes ownership of the buffer
	if dest == b.ex.n.id {
		b.ex.selfq <- buf
		return nil
	}
	return b.ex.n.ep.Send(dest, b.ex.kind, buf)
}

// FlushAll drains every destination buffer.
func (b *Batcher) FlushAll() error {
	for dest := range b.bufs {
		if err := b.Flush(dest); err != nil {
			return err
		}
	}
	return nil
}
