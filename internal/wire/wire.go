// Package wire is the binary codec for everything the mining algorithms put
// on the fabric: itemset lists, count vectors, and the per-transaction item
// groups the count-support phase exchanges. Encodings are varint-based and
// self-describing enough for the TCP fabric to carry them between real
// processes; the channel fabric carries the same bytes so both fabrics
// report identical communication volume.
package wire

import (
	"encoding/binary"
	"fmt"

	"pgarm/internal/item"
)

// AppendUvarint appends v to dst.
func AppendUvarint(dst []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	return append(dst, buf[:n]...)
}

// Uvarint decodes a uvarint from b, returning the value and bytes consumed.
func Uvarint(b []byte) (uint64, int, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0, fmt.Errorf("wire: truncated or overlong uvarint")
	}
	return v, n, nil
}

// AppendItems appends a delta-encoded canonical itemset: count, then first
// item absolute and the rest as deltas.
func AppendItems(dst []byte, items []item.Item) []byte {
	dst = AppendUvarint(dst, uint64(len(items)))
	prev := item.Item(0)
	for i, x := range items {
		if i == 0 {
			dst = AppendUvarint(dst, uint64(x))
		} else {
			dst = AppendUvarint(dst, uint64(x-prev))
		}
		prev = x
	}
	return dst
}

// Items decodes an itemset encoded by AppendItems, appending the items to
// out. It returns the extended slice and the number of bytes consumed.
func Items(b []byte, out []item.Item) ([]item.Item, int, error) {
	n, used, err := Uvarint(b)
	if err != nil {
		return out, 0, err
	}
	if n > uint64(len(b)) { // each item takes >= 1 byte
		return out, 0, fmt.Errorf("wire: itemset length %d exceeds payload", n)
	}
	off := used
	prev := item.Item(0)
	for i := uint64(0); i < n; i++ {
		v, u, err := Uvarint(b[off:])
		if err != nil {
			return out, 0, err
		}
		off += u
		if i == 0 {
			prev = item.Item(v)
		} else {
			prev += item.Item(v)
		}
		out = append(out, prev)
	}
	return out, off, nil
}

// AppendItemsList appends a list of itemsets: count, then each itemset.
func AppendItemsList(dst []byte, sets [][]item.Item) []byte {
	dst = AppendUvarint(dst, uint64(len(sets)))
	for _, s := range sets {
		dst = AppendItems(dst, s)
	}
	return dst
}

// ItemsList decodes a list of itemsets encoded by AppendItemsList.
func ItemsList(b []byte) ([][]item.Item, int, error) {
	n, off, err := Uvarint(b)
	if err != nil {
		return nil, 0, err
	}
	if n > uint64(len(b)) {
		return nil, 0, fmt.Errorf("wire: list length %d exceeds payload", n)
	}
	out := make([][]item.Item, 0, n)
	for i := uint64(0); i < n; i++ {
		items, used, err := Items(b[off:], nil)
		if err != nil {
			return nil, 0, err
		}
		off += used
		out = append(out, items)
	}
	return out, off, nil
}

// AppendPatternList appends sequential-pattern/count pairs: each pattern is
// its element list (itemsets in temporal order, encoded as an itemset list)
// followed by its support count — what the partitioned sequence miners send
// the coordinator as their locally determined frequent patterns, and what the
// F_k broadcast carries back. len(counts) must equal len(patterns).
func AppendPatternList(dst []byte, patterns [][][]item.Item, counts []int64) []byte {
	dst = AppendUvarint(dst, uint64(len(patterns)))
	for i, p := range patterns {
		dst = AppendItemsList(dst, p)
		dst = AppendUvarint(dst, uint64(counts[i]))
	}
	return dst
}

// PatternList decodes pairs encoded by AppendPatternList.
func PatternList(b []byte) (patterns [][][]item.Item, counts []int64, used int, err error) {
	n, off, err := Uvarint(b)
	if err != nil {
		return nil, nil, 0, err
	}
	if n > uint64(len(b)) { // each pattern takes >= 2 bytes
		return nil, nil, 0, fmt.Errorf("wire: pattern list length %d exceeds payload", n)
	}
	patterns = make([][][]item.Item, 0, n)
	counts = make([]int64, 0, n)
	for i := uint64(0); i < n; i++ {
		elements, u, err := ItemsList(b[off:])
		if err != nil {
			return nil, nil, 0, err
		}
		off += u
		c, u2, err := Uvarint(b[off:])
		if err != nil {
			return nil, nil, 0, err
		}
		off += u2
		patterns = append(patterns, elements)
		counts = append(counts, int64(c))
	}
	return patterns, counts, off, nil
}

// AppendCounts appends a dense support-count vector (what nodes send to the
// coordinator when gathering sup_cou of replicated candidates).
func AppendCounts(dst []byte, counts []int64) []byte {
	dst = AppendUvarint(dst, uint64(len(counts)))
	for _, c := range counts {
		dst = AppendUvarint(dst, uint64(c))
	}
	return dst
}

// Counts decodes a count vector encoded by AppendCounts.
func Counts(b []byte) ([]int64, int, error) {
	n, off, err := Uvarint(b)
	if err != nil {
		return nil, 0, err
	}
	if n > uint64(len(b)) {
		return nil, 0, fmt.Errorf("wire: count vector length %d exceeds payload", n)
	}
	out := make([]int64, n)
	for i := range out {
		v, u, err := Uvarint(b[off:])
		if err != nil {
			return nil, 0, err
		}
		off += u
		out[i] = int64(v)
	}
	return out, off, nil
}

// uvarintLen returns the encoded size of v in bytes.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// AppendSparseCounts appends a sparse support-count vector: total length,
// number of non-zero entries, then each non-zero entry as (index delta,
// value). The first index is absolute and the rest are gaps from the previous
// non-zero index, so long zero runs — the common case for pass-1 item count
// vectors at low support — cost nothing.
func AppendSparseCounts(dst []byte, counts []int64) []byte {
	dst = AppendUvarint(dst, uint64(len(counts)))
	nnz := 0
	for _, c := range counts {
		if c != 0 {
			nnz++
		}
	}
	dst = AppendUvarint(dst, uint64(nnz))
	prev := 0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		dst = AppendUvarint(dst, uint64(i-prev))
		dst = AppendUvarint(dst, uint64(c))
		prev = i
	}
	return dst
}

// SparseCounts decodes a count vector encoded by AppendSparseCounts.
func SparseCounts(b []byte) ([]int64, int, error) {
	n, off, err := Uvarint(b)
	if err != nil {
		return nil, 0, err
	}
	nnz, u, err := Uvarint(b[off:])
	if err != nil {
		return nil, 0, err
	}
	off += u
	if nnz > n || 2*nnz > uint64(len(b)) { // each entry takes >= 2 bytes
		return nil, 0, fmt.Errorf("wire: sparse count entries %d exceed payload", nnz)
	}
	out := make([]int64, n)
	idx := uint64(0)
	for i := uint64(0); i < nnz; i++ {
		gap, u, err := Uvarint(b[off:])
		if err != nil {
			return nil, 0, err
		}
		off += u
		v, u2, err := Uvarint(b[off:])
		if err != nil {
			return nil, 0, err
		}
		off += u2
		idx += gap
		if idx >= n {
			return nil, 0, fmt.Errorf("wire: sparse count index %d out of range %d", idx, n)
		}
		out[idx] = int64(v)
	}
	return out, off, nil
}

// Encoding tags for AppendCountsAuto.
const (
	countsDense  = 0
	countsSparse = 1
)

// AppendCountsAuto appends a count vector under whichever of the dense and
// sparse encodings is smaller for this vector, prefixed with a one-byte tag.
// Both sizes are computed exactly before encoding, so the choice never loses.
func AppendCountsAuto(dst []byte, counts []int64) []byte {
	dense := uvarintLen(uint64(len(counts)))
	sparse := dense
	nnz := 0
	prev := 0
	for i, c := range counts {
		dense += uvarintLen(uint64(c))
		if c != 0 {
			sparse += uvarintLen(uint64(i-prev)) + uvarintLen(uint64(c))
			prev = i
			nnz++
		}
	}
	sparse += uvarintLen(uint64(nnz))
	if sparse < dense {
		dst = append(dst, countsSparse)
		return AppendSparseCounts(dst, counts)
	}
	dst = append(dst, countsDense)
	return AppendCounts(dst, counts)
}

// CountsAuto decodes a count vector encoded by AppendCountsAuto.
func CountsAuto(b []byte) ([]int64, int, error) {
	if len(b) == 0 {
		return nil, 0, fmt.Errorf("wire: empty tagged count vector")
	}
	switch b[0] {
	case countsDense:
		out, used, err := Counts(b[1:])
		return out, used + 1, err
	case countsSparse:
		out, used, err := SparseCounts(b[1:])
		return out, used + 1, err
	}
	return nil, 0, fmt.Errorf("wire: unknown count vector tag %d", b[0])
}

// AppendCounted appends itemset/count pairs (what partitioned nodes send the
// coordinator as their locally determined large itemsets).
func AppendCounted(dst []byte, sets [][]item.Item, counts []int64) []byte {
	dst = AppendUvarint(dst, uint64(len(sets)))
	for i, s := range sets {
		dst = AppendItems(dst, s)
		dst = AppendUvarint(dst, uint64(counts[i]))
	}
	return dst
}

// Counted decodes pairs encoded by AppendCounted.
func Counted(b []byte) (sets [][]item.Item, counts []int64, used int, err error) {
	n, off, err := Uvarint(b)
	if err != nil {
		return nil, nil, 0, err
	}
	if n > uint64(len(b)) {
		return nil, nil, 0, fmt.Errorf("wire: counted length %d exceeds payload", n)
	}
	sets = make([][]item.Item, 0, n)
	counts = make([]int64, 0, n)
	for i := uint64(0); i < n; i++ {
		items, u, err := Items(b[off:], nil)
		if err != nil {
			return nil, nil, 0, err
		}
		off += u
		c, u2, err := Uvarint(b[off:])
		if err != nil {
			return nil, nil, 0, err
		}
		off += u2
		sets = append(sets, items)
		counts = append(counts, int64(c))
	}
	return sets, counts, off, nil
}
