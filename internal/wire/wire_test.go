package wire

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pgarm/internal/item"
)

func TestUvarintRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 1 << 20, 1<<63 - 1} {
		b := AppendUvarint(nil, v)
		got, n, err := Uvarint(b)
		if err != nil || got != v || n != len(b) {
			t.Errorf("round trip %d: got %d n=%d err=%v", v, got, n, err)
		}
	}
	if _, _, err := Uvarint(nil); err == nil {
		t.Error("empty input must fail")
	}
	if _, _, err := Uvarint([]byte{0x80}); err == nil {
		t.Error("truncated varint must fail")
	}
}

func TestItemsRoundTrip(t *testing.T) {
	cases := [][]item.Item{nil, {0}, {5}, {1, 2, 3}, {10, 1000, 1 << 20}}
	for _, c := range cases {
		b := AppendItems(nil, c)
		got, used, err := Items(b, nil)
		if err != nil {
			t.Fatalf("decode %v: %v", c, err)
		}
		if used != len(b) {
			t.Errorf("%v used %d of %d bytes", c, used, len(b))
		}
		if len(c) == 0 && len(got) == 0 {
			continue
		}
		if !item.Equal(got, c) {
			t.Errorf("round trip %v -> %v", c, got)
		}
	}
}

func TestItemsAppendsToDst(t *testing.T) {
	b := AppendItems(nil, []item.Item{7, 9})
	out, _, err := Items(b, []item.Item{1})
	if err != nil {
		t.Fatal(err)
	}
	if !item.Equal(out, []item.Item{1, 7, 9}) {
		t.Errorf("append semantics broken: %v", out)
	}
}

func TestItemsListRoundTrip(t *testing.T) {
	sets := [][]item.Item{{1, 2}, {9}, {3, 4, 5}}
	b := AppendItemsList(nil, sets)
	got, used, err := ItemsList(b)
	if err != nil || used != len(b) {
		t.Fatalf("decode: %v used=%d", err, used)
	}
	if len(got) != len(sets) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range sets {
		if !item.Equal(got[i], sets[i]) {
			t.Errorf("sets[%d] = %v", i, got[i])
		}
	}
}

func TestCountsRoundTrip(t *testing.T) {
	cs := []int64{0, 1, 1 << 40, 7}
	b := AppendCounts(nil, cs)
	got, used, err := Counts(b)
	if err != nil || used != len(b) {
		t.Fatalf("decode: %v", err)
	}
	for i := range cs {
		if got[i] != cs[i] {
			t.Errorf("counts[%d] = %d", i, got[i])
		}
	}
}

func TestCountedRoundTrip(t *testing.T) {
	sets := [][]item.Item{{1, 5}, {2, 3, 4}}
	counts := []int64{42, 7}
	b := AppendCounted(nil, sets, counts)
	gs, gc, used, err := Counted(b)
	if err != nil || used != len(b) {
		t.Fatalf("decode: %v", err)
	}
	for i := range sets {
		if !item.Equal(gs[i], sets[i]) || gc[i] != counts[i] {
			t.Errorf("pair %d: %v/%d", i, gs[i], gc[i])
		}
	}
}

func TestPatternListRoundTrip(t *testing.T) {
	patterns := [][][]item.Item{
		{{1, 2}, {3}},
		{{9}},
		{{4, 5, 6}, {7}, {8}},
	}
	counts := []int64{42, 7, 1 << 33}
	b := AppendPatternList(nil, patterns, counts)
	gp, gc, used, err := PatternList(b)
	if err != nil || used != len(b) {
		t.Fatalf("decode: %v used=%d", err, used)
	}
	if len(gp) != len(patterns) {
		t.Fatalf("len = %d", len(gp))
	}
	for i := range patterns {
		if gc[i] != counts[i] || len(gp[i]) != len(patterns[i]) {
			t.Fatalf("pattern %d: %v/%d", i, gp[i], gc[i])
		}
		for j := range patterns[i] {
			if !item.Equal(gp[i][j], patterns[i][j]) {
				t.Errorf("pattern %d element %d: %v", i, j, gp[i][j])
			}
		}
	}
	// Empty list round-trips (the partitioned miners send it when a node owns
	// no frequent candidates).
	ep, ec, used, err := PatternList(AppendPatternList(nil, nil, nil))
	if err != nil || used != 1 || len(ep) != 0 || len(ec) != 0 {
		t.Errorf("empty pattern list: %v %v used=%d err=%v", ep, ec, used, err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	b := AppendItems(nil, []item.Item{1, 2, 3})
	for cut := 1; cut < len(b); cut++ {
		if _, _, err := Items(b[:cut], nil); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	bl := AppendItemsList(nil, [][]item.Item{{1}, {2}})
	if _, _, err := ItemsList(bl[:1]); err == nil {
		t.Error("truncated list accepted")
	}
	bc := AppendCounts(nil, []int64{1, 2, 3})
	if _, _, err := Counts(bc[:2]); err == nil {
		t.Error("truncated counts accepted")
	}
	// Length fields larger than the remaining payload must be rejected, not
	// allocated.
	huge := AppendUvarint(nil, 1<<40)
	if _, _, err := Items(huge, nil); err == nil {
		t.Error("oversized itemset length accepted")
	}
	if _, _, err := ItemsList(huge); err == nil {
		t.Error("oversized list length accepted")
	}
	if _, _, err := Counts(huge); err == nil {
		t.Error("oversized count length accepted")
	}
	if _, _, _, err := Counted(huge); err == nil {
		t.Error("oversized counted length accepted")
	}
	if _, _, _, err := PatternList(huge); err == nil {
		t.Error("oversized pattern list length accepted")
	}
	bp := AppendPatternList(nil, [][][]item.Item{{{1, 2}, {3}}}, []int64{5})
	for cut := 1; cut < len(bp); cut++ {
		if _, _, _, err := PatternList(bp[:cut]); err == nil {
			t.Errorf("truncated pattern list at %d accepted", cut)
		}
	}
}

// Property: concatenated itemset encodings decode back unit by unit — the
// exact framing the count-support batches rely on.
func TestBatchFramingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var sets [][]item.Item
		var buf []byte
		for i := 0; i < rng.Intn(20); i++ {
			s := make([]item.Item, rng.Intn(6))
			for j := range s {
				s[j] = item.Item(rng.Intn(1 << 12))
			}
			s = item.Dedup(s)
			sets = append(sets, s)
			buf = AppendItems(buf, s)
		}
		i := 0
		for off := 0; off < len(buf); i++ {
			got, used, err := Items(buf[off:], nil)
			if err != nil || i >= len(sets) {
				return false
			}
			if len(got) != len(sets[i]) {
				return false
			}
			if len(got) > 0 && !item.Equal(got, sets[i]) {
				return false
			}
			off += used
		}
		return i == len(sets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSparseCountsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		n := rng.Intn(200)
		cs := make([]int64, n)
		// Mostly-zero vectors with occasional dense stretches, plus large
		// values to exercise multi-byte varints.
		for i := range cs {
			switch rng.Intn(10) {
			case 0:
				cs[i] = int64(rng.Intn(1 << 20))
			case 1:
				cs[i] = 1 + int64(rng.Intn(100))
			}
		}
		decodes := []struct {
			enc []byte
			dec func([]byte) ([]int64, int, error)
		}{
			{AppendSparseCounts(nil, cs), SparseCounts},
			{AppendCountsAuto(nil, cs), CountsAuto},
		}
		for _, d := range decodes {
			got, used, err := d.dec(d.enc)
			if err != nil || used != len(d.enc) || len(got) != len(cs) {
				return false
			}
			for i := range cs {
				if got[i] != cs[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCountsAutoPicksSmaller(t *testing.T) {
	sparse := make([]int64, 1000)
	sparse[3] = 9
	sparse[800] = 2
	dense := make([]int64, 1000)
	for i := range dense {
		dense[i] = int64(1 + i%127)
	}
	if b := AppendCountsAuto(nil, sparse); b[0] != countsSparse {
		t.Errorf("sparse vector encoded dense (%d bytes)", len(b))
	}
	if b := AppendCountsAuto(nil, dense); b[0] != countsDense {
		t.Errorf("dense vector encoded sparse (%d bytes)", len(b))
	}
	// The tagged form is never more than one byte over the best encoding.
	for _, cs := range [][]int64{sparse, dense, {}, {0}, {1 << 50}} {
		auto := AppendCountsAuto(nil, cs)
		best := len(AppendCounts(nil, cs))
		if s := len(AppendSparseCounts(nil, cs)); s < best {
			best = s
		}
		if len(auto) != best+1 {
			t.Errorf("auto %d bytes, best %d", len(auto), best)
		}
	}
}

func TestSparseCountsRejectsCorruption(t *testing.T) {
	b := AppendSparseCounts(nil, []int64{0, 5, 0, 7})
	if _, _, err := SparseCounts(b[:len(b)-1]); err == nil {
		t.Error("truncated sparse vector decoded")
	}
	// Gap pointing past the declared length must be rejected.
	bad := AppendUvarint(nil, 4) // n = 4
	bad = AppendUvarint(bad, 1)  // nnz = 1
	bad = AppendUvarint(bad, 10) // index 10 >= 4
	bad = AppendUvarint(bad, 1)
	if _, _, err := SparseCounts(bad); err == nil {
		t.Error("out-of-range sparse index decoded")
	}
	if _, _, err := CountsAuto([]byte{99, 0}); err == nil {
		t.Error("unknown tag decoded")
	}
	if _, _, err := CountsAuto(nil); err == nil {
		t.Error("empty tagged vector decoded")
	}
}
