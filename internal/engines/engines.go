// Package engines is the CLI-facing registry of miner engines: the six
// candidate-generate-and-count algorithms of internal/core plus the
// pattern-growth engine of internal/fpg. It gives pgarm-mine and pgarm-worker
// one flag vocabulary — `-engine` — that spans both families, with
// validation that names every valid choice.
package engines

import (
	"fmt"
	"strings"

	"pgarm/internal/core"
	"pgarm/internal/fpg"
)

// Engine is a validated engine name: a core.Algorithm or fpg.Engine.
type Engine string

// FPG is the taxonomy-aware parallel FP-Growth engine (internal/fpg).
const FPG = Engine(fpg.Engine)

// List returns every runnable engine in presentation order: the paper's six
// candidate engines first, then the pattern-growth engine.
func List() []Engine {
	var out []Engine
	for _, a := range core.Algorithms() {
		out = append(out, Engine(a))
	}
	return append(out, FPG)
}

// Names renders List for flag help and error messages.
func Names() string {
	var names []string
	for _, e := range List() {
		names = append(names, string(e))
	}
	return strings.Join(names, ", ")
}

// Parse resolves a name (case-sensitive, as printed by List) to an Engine.
// An unknown name errors with the complete engine list, so a typo at the
// command line always shows every valid choice.
func Parse(s string) (Engine, error) {
	for _, e := range List() {
		if string(e) == s {
			return e, nil
		}
	}
	return "", fmt.Errorf("engines: unknown engine %q (valid: %s)", s, Names())
}

// IsFPG reports whether e selects the pattern-growth family.
func (e Engine) IsFPG() bool { return e == FPG }

// Algorithm returns the core algorithm for a candidate-family engine; it
// panics on FPG (guard with IsFPG first).
func (e Engine) Algorithm() core.Algorithm {
	if e.IsFPG() {
		panic("engines: FPG has no core algorithm")
	}
	return core.Algorithm(e)
}
