package engines

import (
	"strings"
	"testing"

	"pgarm/internal/core"
)

func TestParseAcceptsEveryListedEngine(t *testing.T) {
	for _, e := range List() {
		got, err := Parse(string(e))
		if err != nil {
			t.Fatalf("Parse(%q): %v", e, err)
		}
		if got != e {
			t.Fatalf("Parse(%q) = %q", e, got)
		}
	}
	if n := len(List()); n != len(core.Algorithms())+1 {
		t.Fatalf("List has %d engines, want %d core + FPG", n, len(core.Algorithms()))
	}
}

func TestParseUnknownNamesEveryEngine(t *testing.T) {
	_, err := Parse("fpg") // case matters, like core.ParseAlgorithm
	if err == nil {
		t.Fatal("expected error for unknown engine")
	}
	for _, e := range List() {
		if !strings.Contains(err.Error(), string(e)) {
			t.Errorf("error %q does not name engine %s", err, e)
		}
	}
}

func TestFamilyDispatch(t *testing.T) {
	if !FPG.IsFPG() {
		t.Error("FPG.IsFPG() = false")
	}
	e, err := Parse("H-HPGM-FGD")
	if err != nil {
		t.Fatal(err)
	}
	if e.IsFPG() {
		t.Error("H-HPGM-FGD classified as FPG")
	}
	if e.Algorithm() != core.HHPGMFGD {
		t.Errorf("Algorithm() = %q", e.Algorithm())
	}
	defer func() {
		if recover() == nil {
			t.Error("FPG.Algorithm() did not panic")
		}
	}()
	_ = FPG.Algorithm()
}
