// Package logx is the binaries' shared structured-logging setup: every pgarm
// command takes the same -log-level and -log-format flags and emits log/slog
// records keyed by component, so cluster runs produce greppable (text) or
// machine-parseable (json) logs with consistent field names — node, pass, k,
// candidates, elapsed — across pgarm-mine, pgarm-worker, pgarm-bench,
// pgarm-serve and pgarm-gen.
package logx

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
)

// Options holds the parsed values of the shared logging flags.
type Options struct {
	Level  string
	Format string
}

// Flags registers -log-level and -log-format on the default flag set and
// returns the destination. Call once before flag.Parse.
func Flags() *Options {
	o := &Options{}
	flag.StringVar(&o.Level, "log-level", "info", "minimum log level: debug, info, warn or error")
	flag.StringVar(&o.Format, "log-format", "text", "log output format: text or json")
	return o
}

// Init builds the process logger from the parsed options, installs it as the
// slog default and returns it. Every record carries component as a top-level
// attribute. Records go to stderr, keeping stdout free for results. Invalid
// flag values exit(2) like any other flag error.
func (o *Options) Init(component string) *slog.Logger {
	var level slog.Level
	switch strings.ToLower(o.Level) {
	case "debug":
		level = slog.LevelDebug
	case "info", "":
		level = slog.LevelInfo
	case "warn", "warning":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		fmt.Fprintf(os.Stderr, "invalid -log-level %q (debug, info, warn or error)\n", o.Level)
		os.Exit(2)
	}
	hopts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch strings.ToLower(o.Format) {
	case "text", "":
		// Drop the wall-clock timestamp in text mode: interactive runs read
		// better without it, and structured consumers use -log-format json.
		hopts.ReplaceAttr = func(groups []string, a slog.Attr) slog.Attr {
			if len(groups) == 0 && a.Key == slog.TimeKey {
				return slog.Attr{}
			}
			return a
		}
		h = slog.NewTextHandler(os.Stderr, hopts)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, hopts)
	default:
		fmt.Fprintf(os.Stderr, "invalid -log-format %q (text or json)\n", o.Format)
		os.Exit(2)
	}
	l := slog.New(h).With("component", component)
	slog.SetDefault(l)
	return l
}

// Fatal logs msg at error level with the given attrs and exits 1 — the
// structured replacement for log.Fatal in the binaries.
func Fatal(l *slog.Logger, msg string, args ...any) {
	if l == nil {
		l = slog.Default()
	}
	l.Error(msg, args...)
	os.Exit(1)
}
