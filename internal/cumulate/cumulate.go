// Package cumulate implements the sequential baselines the paper builds on:
// Cumulate (Srikant & Agrawal, VLDB'95) for generalized association rules
// over a classification hierarchy, and plain Apriori (Agrawal & Srikant,
// VLDB'94) for flat itemsets. The parallel algorithms in internal/core must
// produce exactly the large itemsets and support counts Cumulate produces;
// the integration tests enforce that equivalence.
package cumulate

import (
	"fmt"
	"math"
	"sync"

	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/metrics"
	"pgarm/internal/taxonomy"
	"pgarm/internal/txn"
)

// Config controls a sequential mining run.
type Config struct {
	// MinSupport is the minimum support as a fraction of the database size
	// (0.003 means 0.3%).
	MinSupport float64
	// MaxK bounds the itemset size; 0 means run until L_k is empty.
	MaxK int
}

// MinCount converts fractional support into the smallest absolute count that
// satisfies it for a database of n transactions.
func MinCount(minSupport float64, n int) int64 {
	c := int64(math.Ceil(minSupport*float64(n) - 1e-9))
	if c < 1 {
		c = 1
	}
	return c
}

// Result holds the large itemsets of every pass.
type Result struct {
	// Large[k-1] holds the large k-itemsets with their support counts,
	// lexicographically ordered.
	Large   [][]itemset.Counted
	NumTxns int
	// Probes counts candidate-table lookups across all passes.
	Probes int64
	// BlocksScanned/BlocksSkipped profile the block-granular scan path when
	// the database is a columnar partition: blocks decoded vs. blocks the
	// per-pass candidate predicate ruled out before any decode, summed over
	// all passes (pass 1 always decodes everything). Zero for other sources.
	BlocksScanned int64
	BlocksSkipped int64
	// Plan records one plan decision per executed pass — the sequential
	// run's trivial instance of the plan/execute/replan seam the parallel
	// driver formalizes: a single node counts every candidate locally, so
	// every pass is the static "sequential/all" plan.
	Plan []metrics.PlanDecision
}

// StaticPlan is the sequential baseline's per-pass plan decision: no
// partitioning, every candidate counted locally ("all" granule).
func StaticPlan(pass, candidates int) metrics.PlanDecision {
	return metrics.PlanDecision{
		Pass:        pass,
		Partitioner: "sequential",
		Granule:     "all",
		Candidates:  candidates,
		Duplicated:  candidates,
	}
}

// LargeK returns the large k-itemsets, or nil when the run ended before k.
func (r *Result) LargeK(k int) []itemset.Counted {
	if k < 1 || k > len(r.Large) {
		return nil
	}
	return r.Large[k-1]
}

// All returns every large itemset of size >= 2 along with all large single
// items, flattened (the input to rule derivation).
func (r *Result) All() []itemset.Counted {
	var out []itemset.Counted
	for _, l := range r.Large {
		out = append(out, l...)
	}
	return out
}

// SupportIndex builds a lookup from itemset key to support count over every
// large itemset (all sizes). Rule derivation uses it for confidence.
func (r *Result) SupportIndex() map[string]int64 {
	idx := make(map[string]int64)
	for _, level := range r.Large {
		for _, c := range level {
			idx[itemset.Key(c.Items)] = c.Count
		}
	}
	return idx
}

// Mine runs sequential Cumulate: pass 1 counts every item and its ancestors;
// pass k >= 2 generates candidates from L_{k-1} (deleting item/ancestor pairs
// at k = 2 and pruning ancestors absent from C_k), then counts candidates
// contained in the ancestor-extended transactions.
func Mine(tax *taxonomy.Taxonomy, db txn.Scanner, cfg Config) (*Result, error) {
	if tax == nil {
		return nil, fmt.Errorf("cumulate: nil taxonomy")
	}
	return mine(tax, db, cfg)
}

// Apriori runs plain Apriori, ignoring any hierarchy: only literal basket
// items are counted. It serves as the non-generalized comparison point.
func Apriori(db txn.Scanner, cfg Config, numItems int) (*Result, error) {
	// A taxonomy with no edges degenerates Cumulate to Apriori: every item
	// is its own root, extension adds nothing, and no ancestor pairs exist.
	parent := make([]item.Item, numItems)
	for i := range parent {
		parent[i] = item.None
	}
	flat, err := taxonomy.New(parent)
	if err != nil {
		return nil, err
	}
	return mine(flat, db, cfg)
}

func mine(tax *taxonomy.Taxonomy, db txn.Scanner, cfg Config) (*Result, error) {
	n := db.Len()
	if n == 0 {
		return &Result{}, nil
	}
	minCount := MinCount(cfg.MinSupport, n)
	res := &Result{NumTxns: n}

	// Pass 1: count items and all their ancestors, once per transaction.
	counts := make([]int64, tax.NumItems())
	scratch := make([]item.Item, 0, 64)
	subScratch := make([]item.Item, 0, 16)
	var scanStats txn.ScanStats
	err := txn.ScanFiltered(db, nil, &scanStats, func(t txn.Transaction) error {
		scratch = tax.ExtendTransaction(scratch[:0], t.Items)
		for _, x := range scratch {
			counts[x]++
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("cumulate: pass 1: %w", err)
	}
	res.Plan = append(res.Plan, StaticPlan(1, tax.NumItems()))
	large := make([]bool, tax.NumItems())
	var l1 []itemset.Counted
	var largeItems []item.Item
	for i, c := range counts {
		if c >= minCount {
			large[i] = true
			largeItems = append(largeItems, item.Item(i))
			l1 = append(l1, itemset.Counted{Items: []item.Item{item.Item(i)}, Count: c})
		}
	}
	res.Large = append(res.Large, l1)
	if len(largeItems) < 2 || cfg.MaxK == 1 {
		res.BlocksScanned = scanStats.BlocksScanned
		res.BlocksSkipped = scanStats.BlocksSkipped
		return res, nil
	}

	prev := make([][]item.Item, len(l1))
	for i, c := range l1 {
		prev[i] = c.Items
	}
	for k := 2; cfg.MaxK == 0 || k <= cfg.MaxK; k++ {
		cands := GenerateCandidates(tax, prev, k)
		if len(cands) == 0 {
			break
		}
		res.Plan = append(res.Plan, StaticPlan(k, len(cands)))
		table := itemset.NewTable(len(cands))
		for _, c := range cands {
			table.Add(c)
		}
		member := KeepSet(tax, cands)
		view := taxonomy.NewView(tax, large, member)

		if cap(subScratch) < k {
			subScratch = make([]item.Item, 0, 2*k)
		}
		// On a columnar partition the per-pass candidate predicate skips
		// blocks that cannot contain any candidate; other sources scan plain.
		pred := txn.NewPredicate(tax, cands)
		err := txn.ScanFiltered(db, pred, &scanStats, func(t txn.Transaction) error {
			ext := ExtendFiltered(view, member, scratch[:0], t.Items)
			scratch = ext
			itemset.ForEachSubsetScratch(ext, k, subScratch, func(sub []item.Item) bool {
				if id := table.Lookup(sub); id >= 0 {
					table.Increment(id)
				}
				return true
			})
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("cumulate: pass %d: %w", k, err)
		}
		res.Probes += table.Probes()
		lk := table.Large(minCount)
		if len(lk) == 0 {
			break
		}
		res.Large = append(res.Large, lk)
		prev = prev[:0]
		for _, c := range lk {
			prev = append(prev, c.Items)
		}
	}
	res.BlocksScanned = scanStats.BlocksScanned
	res.BlocksSkipped = scanStats.BlocksSkipped
	return res, nil
}

// GenerateCandidates produces C_k for pass k from the large (k-1)-itemsets:
// apriori join + prune, and for k = 2 the deletion of candidates containing
// an item and one of its ancestors.
func GenerateCandidates(tax *taxonomy.Taxonomy, prev [][]item.Item, k int) [][]item.Item {
	return GenerateCandidatesN(tax, prev, k, 1, nil)
}

// GenerateCandidatesN is GenerateCandidates with the pass boundary spread
// across workers: the k = 2 pair filter shards rows of the L_1 × L_1 triangle
// and k > 2 uses the sharded join+prune of itemset.GenParallel. Output is
// bit-identical (order included) to the sequential path at every worker
// count; hook, if non-nil, brackets each worker for tracing.
func GenerateCandidatesN(tax *taxonomy.Taxonomy, prev [][]item.Item, k, workers int, hook itemset.Hook) [][]item.Item {
	if k == 2 {
		flat := make([]item.Item, len(prev))
		for i, s := range prev {
			flat[i] = s[0]
		}
		item.Sort(flat)
		return pairsFiltered(tax, flat, workers, hook)
	}
	return itemset.GenParallel(prev, workers, hook)
}

// pairsFiltered builds C_2 = L_1 × L_1 minus item/ancestor pairs. Survivors
// are counted first and then written into an exactly-sized flat backing, so
// rejected pairs pin no memory for the rest of the pass (each candidate is a
// full cap-2 slice of the backing, unlike the old filter over Pairs output,
// which kept the whole triangle's backing array alive). Rows are sharded on
// cumulative pair count — row i contributes n-1-i pairs — so workers filter
// comparable shares; each shard writes at its exact offset, reproducing the
// sequential order bit-identically.
func pairsFiltered(tax *taxonomy.Taxonomy, large []item.Item, workers int, hook itemset.Hook) [][]item.Item {
	n := len(large)
	if n < 2 {
		return nil
	}
	rows := n - 1 // row i pairs large[i] with every later item
	if workers > rows {
		workers = rows
	}
	if workers < 1 {
		workers = 1
	}
	totalPairs := n * (n - 1) / 2
	bounds := make([]int, 1, workers+1)
	for cum, i, next := 0, 0, 1; i < rows && next < workers; i++ {
		cum += rows - i
		if cum >= totalPairs*next/workers {
			bounds = append(bounds, i+1)
			next++
		}
	}
	bounds = append(bounds, rows)
	nShards := len(bounds) - 1

	keepPair := func(a, b item.Item) bool {
		return !tax.IsAncestor(a, b) && !tax.IsAncestor(b, a)
	}

	// Phase 1: count survivors per shard.
	counts := make([]int, nShards)
	var wg sync.WaitGroup
	for s := 0; s < nShards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			done := hook.Begin(s)
			defer done()
			c := 0
			for i := bounds[s]; i < bounds[s+1]; i++ {
				for j := i + 1; j < n; j++ {
					if keepPair(large[i], large[j]) {
						c++
					}
				}
			}
			counts[s] = c
		}(s)
	}
	wg.Wait()

	total := 0
	offs := make([]int, nShards+1)
	for s, c := range counts {
		total += c
		offs[s+1] = total
	}
	if total == 0 {
		return nil
	}

	// Phase 2: each shard fills its own range of the backing.
	backing := make([]item.Item, 2*total)
	out := make([][]item.Item, total)
	for s := 0; s < nShards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			done := hook.Begin(s)
			defer done()
			pos := offs[s]
			for i := bounds[s]; i < bounds[s+1]; i++ {
				for j := i + 1; j < n; j++ {
					if !keepPair(large[i], large[j]) {
						continue
					}
					p := backing[2*pos : 2*pos+2 : 2*pos+2]
					p[0], p[1] = large[i], large[j]
					out[pos] = p
					pos++
				}
			}
		}(s)
	}
	wg.Wait()
	return out
}

// KeepSet flags every item that appears in some candidate. It serves two
// roles per pass, from one computation: for interior items these are the
// ancestors that survive "delete any ancestors in T that are not present in
// any of the candidates in C_k" (the View's keep set), and for all items it
// is the membership filter applied before subset enumeration — transaction
// items outside the set cannot contribute to any candidate.
func KeepSet(tax *taxonomy.Taxonomy, cands [][]item.Item) []bool {
	keep := make([]bool, tax.NumItems())
	for _, c := range cands {
		for _, x := range c {
			keep[x] = true
		}
	}
	return keep
}

// ExtendFiltered computes the extended, candidate-filtered transaction used
// for counting: items plus kept ancestors, restricted to candidate members.
// A candidate is contained in the original transaction's ancestor closure
// exactly when it is a subset of this extension, so enumerating its
// k-subsets against a candidate table yields closure-semantics support
// counts with no per-transaction deduplication (subsets of a set are
// distinct). The parallel engines in internal/core share it.
func ExtendFiltered(view *taxonomy.View, member []bool, dst []item.Item, items []item.Item) []item.Item {
	dst = view.ExtendPruned(dst, items)
	w := 0
	for _, x := range dst {
		if member[x] {
			dst[w] = x
			w++
		}
	}
	return dst[:w]
}
