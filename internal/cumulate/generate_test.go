package cumulate

import (
	"math/rand"
	"reflect"
	"testing"

	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/taxonomy"
)

// randomLevel builds a plausible L_{k-1}: distinct sorted (k-1)-itemsets in
// lexicographic order, many sharing prefixes so the join has real work.
func randomLevel(rng *rand.Rand, numItems, n, k1 int) [][]item.Item {
	seen := make(map[string]bool, n)
	var sets [][]item.Item
	for len(sets) < n {
		s := make([]item.Item, 0, k1)
		for len(s) < k1 {
			s = item.Dedup(append(s, item.Item(rng.Intn(numItems))))
		}
		if key := itemset.Key(s); !seen[key] {
			seen[key] = true
			sets = append(sets, s)
		}
	}
	itemset.SortSets(sets)
	return sets
}

// TestGenerateCandidatesNMatchesSequential asserts the sharded pass-boundary
// generator is bit-identical (order included) to the workers=1 path at every
// worker count, for both the k=2 pair filter and the k>2 apriori join.
func TestGenerateCandidatesNMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	tax := taxonomy.MustBalanced(120, 4, 3)
	for trial := 0; trial < 30; trial++ {
		k1 := 1 + rng.Intn(3)
		prev := randomLevel(rng, tax.NumItems(), 20+rng.Intn(60), k1)
		k := k1 + 1
		want := GenerateCandidatesN(tax, prev, k, 1, nil)
		for _, w := range []int{2, 4, 8} {
			got := GenerateCandidatesN(tax, prev, k, w, nil)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("k=%d workers=%d: output diverged from sequential (%d vs %d candidates, or order)",
					k, w, len(got), len(want))
			}
		}
	}
}

// TestPairsFilteredCompaction pins the k=2 memory-retention fix: every pair
// candidate must be a full (cap==2) slice of an exactly-sized backing, so
// rejected pairs pin nothing.
func TestPairsFilteredCompaction(t *testing.T) {
	tax := taxonomy.MustBalanced(120, 4, 3)
	prev := randomLevel(rand.New(rand.NewSource(23)), tax.NumItems(), 60, 1)
	cands := GenerateCandidatesN(tax, prev, 2, 4, nil)
	if len(cands) == 0 {
		t.Fatal("no pair candidates generated")
	}
	total := 0
	for i, c := range cands {
		if len(c) != 2 || cap(c) != 2 {
			t.Fatalf("candidate %d: len=%d cap=%d, want 2/2 (full slice of compact backing)", i, len(c), cap(c))
		}
		total++
	}
	// The filter must actually have rejected something for the compaction to
	// matter; a balanced taxonomy guarantees item/ancestor pairs exist when
	// interior items are present.
	n := len(prev)
	if total == n*(n-1)/2 {
		t.Log("warning: no pairs rejected this seed; compaction untested against rejections")
	}
}
