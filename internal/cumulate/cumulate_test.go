package cumulate

import (
	"testing"

	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/taxonomy"
	"pgarm/internal/txn"
)

// paperTaxonomy builds the Figure 1-style hierarchy used across these tests:
//
//	0 (root) -> 2, 3;  2 -> 5, 6;  3 -> 7
//	1 (root) -> 4;     4 -> 8, 9
func paperTaxonomy() *taxonomy.Taxonomy {
	return taxonomy.MustNew([]item.Item{
		item.None, item.None, 0, 0, 1, 2, 2, 3, 4, 4,
	})
}

func db(txns ...[]item.Item) *txn.DB {
	d := &txn.DB{}
	for i, items := range txns {
		d.Append(txn.Transaction{TID: int64(i + 1), Items: item.Dedup(item.Clone(items))})
	}
	return d
}

func TestMinCount(t *testing.T) {
	cases := []struct {
		sup  float64
		n    int
		want int64
	}{
		{0.5, 10, 5},
		{0.3, 10, 3},
		{0.25, 10, 3}, // ceil(2.5)
		{0.01, 10, 1},
		{1e-9, 10, 1}, // floor of 1
		{1.0, 7, 7},
	}
	for _, c := range cases {
		if got := MinCount(c.sup, c.n); got != c.want {
			t.Errorf("MinCount(%g, %d) = %d, want %d", c.sup, c.n, got, c.want)
		}
	}
}

func TestClosureSemantics(t *testing.T) {
	tax := paperTaxonomy()
	// Transactions over leaves; ancestors count through the closure.
	d := db(
		[]item.Item{5, 8}, // closure: 5,2,0,8,4,1
		[]item.Item{6, 8}, // closure: 6,2,0,8,4,1
		[]item.Item{5, 9}, // closure: 5,2,0,9,4,1
		[]item.Item{7},    // closure: 7,3,0
	)
	res, err := Mine(tax, d, Config{MinSupport: 0.5}) // minCount 2
	if err != nil {
		t.Fatal(err)
	}
	idx := res.SupportIndex()
	wantCounts := map[string]int64{
		itemset.Key([]item.Item{0}):    4, // root 0 in every closure
		itemset.Key([]item.Item{2}):    3,
		itemset.Key([]item.Item{1}):    3,
		itemset.Key([]item.Item{4}):    3,
		itemset.Key([]item.Item{5}):    2,
		itemset.Key([]item.Item{8}):    2,
		itemset.Key([]item.Item{0, 1}): 3, // cross-tree pair of roots
		itemset.Key([]item.Item{2, 4}): 3,
		itemset.Key([]item.Item{0, 4}): 3,
		itemset.Key([]item.Item{1, 2}): 3,
	}
	for key, want := range wantCounts {
		if got := idx[key]; got != want {
			t.Errorf("sup_cou(%v) = %d, want %d", itemset.ParseKey(key), got, want)
		}
	}
	// {5,2} would pair an item with its ancestor: must never be counted.
	if _, ok := idx[itemset.Key([]item.Item{2, 5})]; ok {
		t.Error("item-ancestor pair {2,5} leaked into large itemsets")
	}
}

func TestAncestorPairsPrunedFromC2(t *testing.T) {
	tax := paperTaxonomy()
	l1 := [][]item.Item{{0}, {2}, {5}, {1}}
	c2 := GenerateCandidates(tax, l1, 2)
	for _, c := range c2 {
		if tax.IsAncestor(c[0], c[1]) || tax.IsAncestor(c[1], c[0]) {
			t.Errorf("candidate %v contains an item and its ancestor", c)
		}
	}
	// 0-2, 0-5, 2-5 excluded; pairs with 1 kept: {0,1},{1,2},{1,5}.
	if len(c2) != 3 {
		t.Errorf("C2 = %v, want 3 candidates", c2)
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	tax := paperTaxonomy()
	res, err := Mine(tax, &txn.DB{}, Config{MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Large) != 0 {
		t.Errorf("empty db produced %d levels", len(res.Large))
	}
	if res.LargeK(1) != nil || res.LargeK(99) != nil || res.LargeK(0) != nil {
		t.Error("LargeK out of range must be nil")
	}
	// Support too high for everything: only L1 may exist or nothing.
	res, err = Mine(tax, db([]item.Item{5}, []item.Item{8}), Config{MinSupport: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Large) > 1 {
		t.Errorf("unexpected levels: %d", len(res.Large))
	}
	if _, err := Mine(nil, &txn.DB{}, Config{}); err == nil {
		t.Error("nil taxonomy must fail")
	}
}

func TestMaxK(t *testing.T) {
	tax := paperTaxonomy()
	d := db(
		[]item.Item{5, 8, 7},
		[]item.Item{5, 8, 7},
		[]item.Item{5, 8, 7},
	)
	full, err := Mine(tax, d, Config{MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Large) < 3 {
		t.Fatalf("expected at least 3 levels, got %d", len(full.Large))
	}
	capped, err := Mine(tax, d, Config{MinSupport: 0.5, MaxK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Large) != 2 {
		t.Errorf("MaxK=2 produced %d levels", len(capped.Large))
	}
	one, err := Mine(tax, d, Config{MinSupport: 0.5, MaxK: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Large) != 1 {
		t.Errorf("MaxK=1 produced %d levels", len(one.Large))
	}
}

func TestAprioriIgnoresHierarchy(t *testing.T) {
	d := db(
		[]item.Item{5, 8},
		[]item.Item{5, 8},
		[]item.Item{5, 9},
	)
	res, err := Apriori(d, Config{MinSupport: 0.6}, 10)
	if err != nil {
		t.Fatal(err)
	}
	idx := res.SupportIndex()
	if idx[itemset.Key([]item.Item{5})] != 3 {
		t.Errorf("sup(5) = %d", idx[itemset.Key([]item.Item{5})])
	}
	if _, ok := idx[itemset.Key([]item.Item{2})]; ok {
		t.Error("flat Apriori counted an ancestor")
	}
	if idx[itemset.Key([]item.Item{5, 8})] != 2 {
		t.Errorf("sup(5,8) = %d", idx[itemset.Key([]item.Item{5, 8})])
	}
}

func TestLargeMonotonicity(t *testing.T) {
	// Apriori property: support of a superset never exceeds any subset's.
	tax := paperTaxonomy()
	d := db(
		[]item.Item{5, 8, 7}, []item.Item{5, 8}, []item.Item{5, 9, 7},
		[]item.Item{6, 8}, []item.Item{5, 8, 7}, []item.Item{7, 9},
	)
	res, err := Mine(tax, d, Config{MinSupport: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	idx := res.SupportIndex()
	for k := 2; k <= len(res.Large); k++ {
		for _, c := range res.LargeK(k) {
			itemset.ForEachSubset(c.Items, k-1, func(sub []item.Item) bool {
				if subCount, ok := idx[itemset.Key(sub)]; !ok {
					t.Errorf("subset %v of large %v is not large (anti-monotone violation)", sub, c.Items)
				} else if subCount < c.Count {
					t.Errorf("sup(%v)=%d < sup(%v)=%d", sub, subCount, c.Items, c.Count)
				}
				return true
			})
		}
	}
	if res.Probes == 0 {
		t.Error("probe accounting inactive")
	}
	if got := len(res.All()); got == 0 {
		t.Error("All() empty")
	}
}
