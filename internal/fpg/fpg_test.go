package fpg

import (
	"fmt"
	"testing"

	"pgarm/internal/cumulate"
	"pgarm/internal/gen"
	"pgarm/internal/item"
	"pgarm/internal/taxonomy"
	"pgarm/internal/txn"
)

// testDataset generates a small but structurally faithful dataset.
func testDataset(tb testing.TB, numTxns int) *gen.Dataset {
	tb.Helper()
	p := gen.Params{
		Name:            "unit",
		NumTxns:         numTxns,
		AvgTxnSize:      6,
		AvgPatternSize:  3,
		NumPatterns:     300,
		NumItems:        900,
		Roots:           8,
		Fanout:          4,
		CorrelationMean: 0.25,
		CorruptionMean:  0.6,
		CorruptionSD:    0.1,
		Seed:            7,
	}
	ds, err := gen.Generate(p)
	if err != nil {
		tb.Fatalf("generate: %v", err)
	}
	return ds
}

// assertSameLarge compares FP-Growth output against the sequential Cumulate
// baseline, level by level, itemset by itemset, count by count.
func assertSameLarge(t *testing.T, want *cumulate.Result, got *Result) {
	t.Helper()
	if len(want.Large) != len(got.Large) {
		t.Fatalf("level count: cumulate found %d levels, fpg %d", len(want.Large), len(got.Large))
	}
	for k := 1; k <= len(want.Large); k++ {
		w, g := want.Large[k-1], got.LargeK(k)
		if len(w) != len(g) {
			t.Fatalf("L_%d size: cumulate %d, fpg %d", k, len(w), len(g))
		}
		for i := range w {
			if !item.Equal(w[i].Items, g[i].Items) {
				t.Fatalf("L_%d[%d]: cumulate %v, fpg %v", k, i, w[i].Items, g[i].Items)
			}
			if w[i].Count != g[i].Count {
				t.Fatalf("L_%d[%d] %v count: cumulate %d, fpg %d",
					k, i, w[i].Items, w[i].Count, g[i].Count)
			}
		}
	}
}

// partsOf clones the round-robin partitioning used by the experiments.
func partsOf(db *txn.DB, n int) []txn.Scanner {
	parts := txn.Partition(db, n)
	out := make([]txn.Scanner, n)
	for i, p := range parts {
		out[i] = p
	}
	return out
}

// TestFpgMatchesCumulateSweep is the engine's bit-identity contract: at
// every minimum support — down into the low-minsup regime where Apriori's
// candidate sets explode — and at every node count, worker count and fabric,
// the FP-Growth result must equal sequential Cumulate's exactly.
func TestFpgMatchesCumulateSweep(t *testing.T) {
	ds := testDataset(t, 3000)
	minSups := []float64{0.05, 0.02, 0.01, 0.005}
	for _, minSup := range minSups {
		want, err := cumulate.Mine(ds.Taxonomy, ds.DB, cumulate.Config{MinSupport: minSup})
		if err != nil {
			t.Fatalf("cumulate: %v", err)
		}
		if minSup <= 0.01 && len(want.Large) < 3 {
			t.Fatalf("weak test data: only %d large levels at minsup %g", len(want.Large), minSup)
		}
		for _, nodes := range []int{1, 3} {
			for _, workers := range []int{1, 2, 4, 8} {
				t.Run(fmt.Sprintf("minsup%g/%dnodes/%dworkers", minSup, nodes, workers), func(t *testing.T) {
					got, err := Mine(ds.Taxonomy, partsOf(ds.DB, nodes), Config{
						MinSupport: minSup,
						Workers:    workers,
					})
					if err != nil {
						t.Fatalf("fpg mine: %v", err)
					}
					assertSameLarge(t, want, got)
				})
			}
		}
	}
}

// TestFpgTCPFabricMatches runs the same identity over the loopback TCP
// fabric, where message framing and delivery interleavings differ.
func TestFpgTCPFabricMatches(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP fabric round in short mode")
	}
	ds := testDataset(t, 1500)
	for _, minSup := range []float64{0.02, 0.005} {
		want, err := cumulate.Mine(ds.Taxonomy, ds.DB, cumulate.Config{MinSupport: minSup})
		if err != nil {
			t.Fatalf("cumulate: %v", err)
		}
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("minsup%g/%dworkers", minSup, workers), func(t *testing.T) {
				got, err := Mine(ds.Taxonomy, partsOf(ds.DB, 4), Config{
					MinSupport: minSup,
					Workers:    workers,
					Fabric:     FabricTCP,
				})
				if err != nil {
					t.Fatalf("fpg mine over TCP: %v", err)
				}
				assertSameLarge(t, want, got)
			})
		}
	}
}

// TestFpgMaxK bounds pattern length like the candidate engines do.
func TestFpgMaxK(t *testing.T) {
	ds := testDataset(t, 1500)
	for _, maxK := range []int{1, 2, 3} {
		want, err := cumulate.Mine(ds.Taxonomy, ds.DB, cumulate.Config{MinSupport: 0.01, MaxK: maxK})
		if err != nil {
			t.Fatalf("cumulate: %v", err)
		}
		got, err := Mine(ds.Taxonomy, partsOf(ds.DB, 3), Config{
			MinSupport: 0.01,
			MaxK:       maxK,
			Workers:    2,
		})
		if err != nil {
			t.Fatalf("fpg mine: %v", err)
		}
		if len(got.Large) > maxK {
			t.Fatalf("MaxK %d: fpg recorded %d levels", maxK, len(got.Large))
		}
		assertSameLarge(t, want, got)
	}
}

// TestFpgRejectsBadConfig mirrors the family contract of core.Mine.
func TestFpgRejectsBadConfig(t *testing.T) {
	tax := taxonomy.MustBalanced(10, 2, 3)
	db := txn.NewDB([]txn.Transaction{{TID: 1, Items: []item.Item{5}}})
	if _, err := Mine(tax, nil, Config{MinSupport: 0.1}); err == nil {
		t.Error("expected error for zero partitions")
	}
	if _, err := Mine(tax, []txn.Scanner{db}, Config{MinSupport: 0}); err == nil {
		t.Error("expected error for zero minimum support")
	}
}

// TestFpgCondBaseAccounting asserts the cond-base exchange is visible in the
// per-kind byte accounting: a multi-node run must ship cond-base bytes, and
// the pass-2 data plane must equal that kind's traffic exactly.
func TestFpgCondBaseAccounting(t *testing.T) {
	ds := testDataset(t, 2000)
	got, err := Mine(ds.Taxonomy, partsOf(ds.DB, 4), Config{MinSupport: 0.01, Workers: 2})
	if err != nil {
		t.Fatalf("fpg mine: %v", err)
	}
	p2 := got.Stats.Pass(2)
	if p2 == nil {
		t.Fatal("missing pass-2 stats")
	}
	var condBytes, dataBytes int64
	for _, nd := range p2.Nodes {
		for _, k := range nd.ByKind {
			switch k.Name {
			case "cond-base":
				condBytes += k.BytesSent
			case "data":
				dataBytes += k.BytesSent
			}
		}
		if nd.DataBytesSent == 0 && nd.ItemsSent > 0 {
			t.Errorf("node %d shipped %d items but reports 0 data bytes", nd.Node, nd.ItemsSent)
		}
	}
	if condBytes == 0 {
		t.Fatal("4-node run shipped no cond-base bytes")
	}
	if dataBytes != 0 {
		t.Fatalf("fpg should not use the KData plane, saw %d bytes", dataBytes)
	}
}

// BenchmarkBuildTree is the allocs/op regression fence for the FP-tree build
// hot path: inserting a transaction into the arena tree must not allocate
// beyond arena growth (amortized ~0 allocs/op at steady state).
func BenchmarkBuildTree(b *testing.B) {
	ds := testDataset(b, 4000)
	// Fix the frequency order the way pass 1 would.
	counts := make([]int64, ds.Taxonomy.NumItems())
	var ext []item.Item
	_ = ds.DB.Scan(func(t txn.Transaction) error {
		ext = ds.Taxonomy.ExtendTransaction(ext[:0], t.Items)
		for _, x := range ext {
			counts[x]++
		}
		return nil
	})
	minCount := cumulate.MinCount(0.01, ds.DB.Len())
	rank := make([]int32, len(counts))
	var order []item.Item
	for i := range rank {
		rank[i] = -1
		if counts[i] >= minCount {
			order = append(order, item.Item(i))
		}
	}
	for r, it := range order {
		rank[it] = int32(r)
	}
	// Pre-extend every transaction to its sorted rank list, so the benchmark
	// isolates tree insertion.
	var txns [][]item.Item
	_ = ds.DB.Scan(func(t txn.Transaction) error {
		ext = ds.Taxonomy.ExtendTransaction(ext[:0], t.Items)
		var rs []item.Item
		for _, x := range ext {
			if r := rank[x]; r >= 0 {
				rs = append(rs, item.Item(r))
			}
		}
		item.Sort(rs)
		txns = append(txns, rs)
		return nil
	})

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := newFPTree(len(order))
		for _, rs := range txns {
			t.add(rs, 1)
		}
	}
}
