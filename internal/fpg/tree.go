package fpg

import (
	"pgarm/internal/item"
)

// fpNode is one arena slot of an FP-tree. Links are arena indices (-1 =
// none); node 0 is the root. Keeping the tree in one flat slice with int32
// links — instead of pointer-linked heap nodes with per-node child maps —
// is what makes tree build allocation-free in steady state (see
// BenchmarkBuildTree): growing the arena is the only allocation, and child
// lookup is a sibling scan with move-to-front, so hot branches resolve in
// O(1) without any map.
type fpNode struct {
	rank   item.Item // frequency rank of the item at this node (-1 at the root)
	parent int32
	child  int32 // first child
	sib    int32 // next sibling under the same parent
	next   int32 // next node of the same rank (header-table chain)
	count  int64
}

// fpTree is a compact FP-tree over frequency ranks. Paths are inserted in
// ascending rank order (rank 0 = most frequent item), so every root-to-node
// path is rank-ascending and a node's prefix path contains only ranks lower
// than its own — the invariant the per-suffix task decomposition relies on.
type fpTree struct {
	nodes []fpNode
	// heads[r] is the head of rank r's header chain (-1 = rank absent).
	heads []int32
	// present lists the ranks that occur in this tree, in first-insertion
	// order; it makes reset and tally O(ranks present) instead of O(all
	// ranks), which matters for the small conditional trees of deep
	// recursion levels.
	present []item.Item
}

// newFPTree returns an empty tree over numRanks frequency ranks.
func newFPTree(numRanks int) *fpTree {
	t := &fpTree{
		nodes: make([]fpNode, 1, 256),
		heads: make([]int32, numRanks),
	}
	for i := range t.heads {
		t.heads[i] = -1
	}
	t.nodes[0] = fpNode{rank: -1, parent: -1, child: -1, sib: -1, next: -1}
	return t
}

// reset empties the tree for reuse without releasing its arena.
func (t *fpTree) reset() {
	for _, r := range t.present {
		t.heads[r] = -1
	}
	t.present = t.present[:0]
	t.nodes = t.nodes[:1]
	t.nodes[0].child = -1
}

// add inserts one rank-ascending path with the given count, sharing prefixes
// with previously inserted paths.
func (t *fpTree) add(path []item.Item, count int64) {
	cur := int32(0)
	for _, r := range path {
		// Find r among cur's children; move a found child to the front so
		// frequently extended branches stay O(1).
		found, prev := int32(-1), int32(-1)
		for c := t.nodes[cur].child; c != -1; c = t.nodes[c].sib {
			if t.nodes[c].rank == r {
				found = c
				break
			}
			prev = c
		}
		if found == -1 {
			found = int32(len(t.nodes))
			if t.heads[r] == -1 {
				t.present = append(t.present, r)
			}
			t.nodes = append(t.nodes, fpNode{
				rank:   r,
				parent: cur,
				child:  -1,
				sib:    t.nodes[cur].child,
				next:   t.heads[r],
			})
			t.nodes[cur].child = found
			t.heads[r] = found
		} else if prev != -1 {
			t.nodes[prev].sib = t.nodes[found].sib
			t.nodes[found].sib = t.nodes[cur].child
			t.nodes[cur].child = found
		}
		t.nodes[found].count += count
		cur = found
	}
}

// pathSet is a flat store of rank-ascending paths with per-path counts — a
// conditional pattern base. Paths share one backing arena, so accumulating a
// base (locally or from the cond-base exchange) costs three appends, not a
// slice allocation per path.
type pathSet struct {
	ranks  []item.Item // all paths, concatenated
	ends   []int32     // ends[i] = end offset of path i in ranks
	counts []int64
}

func (ps *pathSet) add(path []item.Item, count int64) {
	ps.ranks = append(ps.ranks, path...)
	ps.ends = append(ps.ends, int32(len(ps.ranks)))
	ps.counts = append(ps.counts, count)
}

func (ps *pathSet) size() int { return len(ps.counts) }

func (ps *pathSet) path(i int) []item.Item {
	lo := int32(0)
	if i > 0 {
		lo = ps.ends[i-1]
	}
	return ps.ranks[lo:ps.ends[i]]
}

func (ps *pathSet) reset() {
	ps.ranks = ps.ranks[:0]
	ps.ends = ps.ends[:0]
	ps.counts = ps.counts[:0]
}

// extractPaths walks rank r's header chains across trees and emits, for each
// tree node of rank r, its prefix path (rank-ascending, r excluded) filtered
// by skip, with the node's count. Empty filtered paths are skipped — they
// carry no information beyond r's own support, which pass 1 already fixed.
// climb is a reusable scratch buffer (returned grown).
func extractPaths(trees []*fpTree, r item.Item, skip func(item.Item) bool,
	climb []item.Item, emit func(path []item.Item, count int64) error) ([]item.Item, error) {
	for _, t := range trees {
		if int(r) >= len(t.heads) {
			continue
		}
		for ni := t.heads[r]; ni != -1; ni = t.nodes[ni].next {
			climb = climb[:0]
			for p := t.nodes[ni].parent; p > 0; p = t.nodes[p].parent {
				pr := t.nodes[p].rank
				if skip == nil || !skip(pr) {
					climb = append(climb, pr)
				}
			}
			if len(climb) == 0 {
				continue
			}
			// The climb collected ranks root-ward (descending); reverse to
			// the canonical ascending order.
			for i, j := 0, len(climb)-1; i < j; i, j = i+1, j-1 {
				climb[i], climb[j] = climb[j], climb[i]
			}
			if err := emit(climb, t.nodes[ni].count); err != nil {
				return climb, err
			}
		}
	}
	return climb, nil
}

// mineScratch is one mining worker's reusable state: the dense tally vector,
// free lists of conditional trees and path sets for the recursion, and climb
// scratch. One instance per worker goroutine; never shared.
type mineScratch struct {
	tally      []int64
	touched    []item.Item
	climb      []item.Item
	trees      []*fpTree
	paths      []*pathSet
	increments int64
}

func newMineScratch(numRanks int) *mineScratch {
	return &mineScratch{tally: make([]int64, numRanks)}
}

func (sc *mineScratch) getTree(numRanks int) *fpTree {
	if n := len(sc.trees); n > 0 {
		t := sc.trees[n-1]
		sc.trees = sc.trees[:n-1]
		return t
	}
	return newFPTree(numRanks)
}

func (sc *mineScratch) putTree(t *fpTree) {
	t.reset()
	sc.trees = append(sc.trees, t)
}

func (sc *mineScratch) getPaths() *pathSet {
	if n := len(sc.paths); n > 0 {
		ps := sc.paths[n-1]
		sc.paths = sc.paths[:n-1]
		return ps
	}
	return &pathSet{}
}

func (sc *mineScratch) putPaths(ps *pathSet) {
	ps.reset()
	sc.paths = append(sc.paths, ps)
}
