// Package fpg is the repository's second miner family: a generalized
// (taxonomy-aware) parallel FP-Growth engine over the shared pass driver.
//
// Where the Cumulate/H-HPGM family (internal/core) is
// candidate-generate-and-count — and pays Apriori's exponential candidate
// explosion at low minimum support — this engine grows patterns directly
// from a compact FP-tree and never materializes a candidate set:
//
//   - Pass 1 is the same closure item count as Cumulate's, and fixes the
//     global frequency order (count descending, item id ascending) — a pure
//     function of the broadcast count vector, identical on every node.
//   - Each node builds an FP-tree forest (one arena-allocated tree per scan
//     worker, header-table links, no maps on the hot path) over the
//     ancestor-closure of its local partition, restricted to large items.
//   - Mining decomposes into independent per-suffix-item tasks: the patterns
//     whose highest-frequency-rank item is r come exactly from r's
//     conditional pattern base, so the tasks partition the output and fan
//     out across nodes (rank mod N) and Workers with no deduplication.
//   - In cluster mode each suffix rank's conditional base is shipped to its
//     owner through the driver's exchange machinery as a dedicated fabric
//     message kind (KCondBase) with exact per-kind byte accounting; once
//     exchanged the bases are global, so mined counts are exact global
//     supports and the barrier needs no replicated count reduce.
//   - The taxonomy is enforced by construction: prefix items in the ancestor
//     relation with the suffix item are filtered as each base is extracted,
//     which excludes exactly the item/ancestor pairs Cumulate prunes from
//     C_2 (and by apriori closure, from every C_k).
//
// The result is bit-identical to cumulate.Mine — same levels, same counts,
// same canonical (size, lex) order — at any node count, worker count and
// fabric, which the bit-identity sweep in fpg_test.go asserts.
package fpg

import (
	"fmt"
	"time"

	"pgarm/internal/cluster"
	"pgarm/internal/driver"
	"pgarm/internal/itemset"
	"pgarm/internal/metrics"
	"pgarm/internal/obs"
	"pgarm/internal/taxonomy"
	"pgarm/internal/txn"
)

// Engine is the engine name this family registers under (see
// internal/engines); also the algorithm label in run reports.
const Engine = "FPG"

// FabricKind selects the interconnect emulation (see internal/driver).
type FabricKind = driver.FabricKind

const (
	// FabricChan runs the nodes over in-process channels (default).
	FabricChan = driver.FabricChan
	// FabricTCP runs the nodes over loopback TCP connections.
	FabricTCP = driver.FabricTCP
)

// Config parameterizes a parallel FP-Growth run. The knobs mirror
// core.Config where they overlap, so callers can drive either family from
// the same flag set.
type Config struct {
	MinSupport float64 // fraction of |D|, e.g. 0.003 for 0.3%
	MaxK       int     // 0 = grow patterns of every size; k bounds pattern length

	// Workers is the number of goroutines each node uses for the local scan,
	// the tree build, the base shipping and the suffix-task mining. 0 or 1
	// runs everything on the node goroutine itself. Results are
	// bit-identical for every setting.
	Workers int

	Fabric       FabricKind
	FabricBuffer int // per-inbox message buffer; 0 = default
	BatchBytes   int // cond-base send batching threshold; 0 = default (4KB)

	// Tracer/Registry/OnPassStart/OnPass/ClockOffsets/View: see core.Config;
	// the driver wires them identically for every miner family.
	Tracer       *obs.Tracer
	Registry     *obs.Registry
	OnPassStart  func(pass, candidates int)
	OnPass       func(driver.PassProgress)
	ClockOffsets []time.Duration
	View         *driver.ClusterView
}

// driverConfig maps the runtime half of the Config onto the shared driver.
// The whole pattern growth happens in driver pass 2 (Generate(3) returns 0),
// so the driver's MaxK only matters for MaxK == 1 — pattern length is
// bounded inside the recursion instead.
func (c *Config) driverConfig() driver.Config {
	maxK := 0
	if c.MaxK == 1 {
		maxK = 1
	}
	return driver.Config{
		MinSupport:   c.MinSupport,
		MaxK:         maxK,
		Workers:      c.Workers,
		BatchBytes:   c.BatchBytes,
		Tracer:       c.Tracer,
		Registry:     c.Registry,
		OnPassStart:  c.OnPassStart,
		OnPass:       c.OnPass,
		ClockOffsets: c.ClockOffsets,
		View:         c.View,
	}
}

// Result is the outcome of a parallel FP-Growth run; the shape mirrors
// core.Result so downstream consumers (rule derivation, model snapshots)
// work with either family.
type Result struct {
	// Large[k-1] holds the global large k-itemsets with exact support
	// counts, lexicographically ordered — identical to sequential Cumulate.
	Large [][]itemset.Counted
	Stats *metrics.RunStats
}

// LargeK returns the large k-itemsets, or nil when the run ended before k.
func (r *Result) LargeK(k int) []itemset.Counted {
	if k < 1 || k > len(r.Large) {
		return nil
	}
	return r.Large[k-1]
}

// All returns every large itemset across all sizes.
func (r *Result) All() []itemset.Counted {
	var out []itemset.Counted
	for _, l := range r.Large {
		out = append(out, l...)
	}
	return out
}

// SupportIndex builds itemset-key -> support over all large itemsets.
func (r *Result) SupportIndex() map[string]int64 {
	idx := make(map[string]int64)
	for _, level := range r.Large {
		for _, c := range level {
			idx[itemset.Key(c.Items)] = c.Count
		}
	}
	return idx
}

// Mine runs generalized FP-Growth over a cluster of len(parts) in-process
// nodes; parts[i] is node i's local database partition. The taxonomy is
// shared read-only, as the paper assumes.
func Mine(tax *taxonomy.Taxonomy, parts []txn.Scanner, cfg Config) (*Result, error) {
	n := len(parts)
	if n == 0 {
		return nil, fmt.Errorf("fpg: no database partitions")
	}
	if cfg.MinSupport <= 0 || cfg.MinSupport > 1 {
		return nil, fmt.Errorf("fpg: minimum support %g out of (0,1]", cfg.MinSupport)
	}
	fabric, err := driver.NewFabric(cfg.Fabric, n, cfg.FabricBuffer)
	if err != nil {
		return nil, err
	}
	defer fabric.Close()

	miners := make([]driver.Miner, n)
	coord := (*fpgMiner)(nil)
	for i := 0; i < n; i++ {
		m := newFpgMiner(tax, parts[i], cfg)
		if i == 0 {
			coord = m
		}
		miners[i] = m
	}
	nodes, elapsed, err := driver.Run(fabric, cfg.driverConfig(), miners)
	if err != nil {
		return nil, err
	}
	res := &Result{Large: coord.large}
	res.Stats = driver.AssembleStats(Engine, cfg.MinSupport, nodes, elapsed)
	return res, nil
}

// MineWorker runs a single node of the FP-Growth protocol over a caller-
// provided endpoint — the multi-process entry point (cmd/pgarm-worker via
// cluster.DialMesh). Every worker must run the same Config; node 0 acts as
// coordinator.
func MineWorker(tax *taxonomy.Taxonomy, local txn.Scanner, cfg Config, ep cluster.Endpoint) (*Result, error) {
	if cfg.MinSupport <= 0 || cfg.MinSupport > 1 {
		return nil, fmt.Errorf("fpg: minimum support %g out of (0,1]", cfg.MinSupport)
	}
	m := newFpgMiner(tax, local, cfg)
	nd, elapsed, err := driver.RunWorker(ep, cfg.driverConfig(), m)
	if err != nil {
		return nil, err
	}
	res := &Result{Large: m.large}
	res.Stats = driver.AssembleClusterStats(Engine, cfg.MinSupport, nd, elapsed)
	return res, nil
}
