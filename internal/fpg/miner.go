package fpg

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pgarm/internal/driver"
	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/metrics"
	"pgarm/internal/taxonomy"
	"pgarm/internal/txn"
	"pgarm/internal/wire"
)

// fpgMiner is the pattern-growth half of a node: the driver.Miner that plugs
// the generalized FP-Growth engine into the shared-nothing runtime. One
// instance per node; the runtime calls its hooks from the node goroutine in
// protocol order.
//
// The whole pattern-growth phase maps onto a single driver pass (k = 2):
// Generate(2) reports the number of per-suffix-item tasks, CountPass(2)
// builds the local FP-tree forest, ships conditional pattern bases to their
// owners (KCondBase) and mines every owned suffix task, and the pass barrier
// then merges ALL frequent itemsets of size >= 2 at once. Generate(3)
// returns 0, ending the run on every node identically.
type fpgMiner struct {
	tax *taxonomy.Taxonomy
	db  txn.Scanner
	cfg Config

	// Global mining state, identical on every node after the pass-1 barrier.
	itemCounts []int64     // global pass-1 closure counts per item
	rank       []int32     // item -> frequency rank, -1 when not large
	itemAt     []item.Item // frequency rank -> item
	numLarge   int
	numNodes   int
	nodeID     int

	// bases[q] is the conditional pattern base of owned suffix rank
	// id + q*NumNodes, accumulated by the cond-base exchange receiver.
	bases []*pathSet

	// own is this node's mined share of the pass-2 barrier (all pattern
	// sizes mixed); the coordinator merges it directly in MergeFrequents.
	own []itemset.Counted

	// Result accumulation, filled where the runtime keeps results.
	large [][]itemset.Counted
}

func newFpgMiner(tax *taxonomy.Taxonomy, db txn.Scanner, cfg Config) *fpgMiner {
	return &fpgMiner{tax: tax, db: db, cfg: cfg}
}

func (m *fpgMiner) LocalSize() int { return m.db.Len() }

func (m *fpgMiner) NumItems() int { return m.tax.NumItems() }

// CountPass1 counts every item and all its ancestors over the local
// partition — identical to the Cumulate family's pass 1, which is what fixes
// the frequency order from the same vector the candidate engines use.
func (m *fpgMiner) CountPass1(n *driver.Node, st *metrics.NodeStats) ([]int64, error) {
	W := n.Workers()
	wcounts := driver.WorkerVectors(W, m.tax.NumItems())
	wstats := make([]metrics.NodeStats, W)
	wext := driver.WorkerScratch(W, 64)
	err := driver.ScanTxnShards(m.db, nil, W, n.ShardObs("scan"), wstats, func(w int, t txn.Transaction) error {
		wstats[w].TxnsScanned++
		ext := m.tax.ExtendTransaction(wext[w][:0], t.Items)
		wext[w] = ext
		counts := wcounts[w]
		for _, x := range ext {
			counts[x]++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	counts := driver.MergeWorkerVectors(wcounts)
	driver.MergeWorkerStats(st, wstats)
	return counts, nil
}

// FinishPass1 records F_1 and derives the global frequency order: large
// items ranked by (closure count descending, item id ascending). The order
// is a pure function of the broadcast count vector, so every node derives
// the identical ranking — the root of the engine's bit-identity at any node
// and worker count.
func (m *fpgMiner) FinishPass1(n *driver.Node, global []int64) (int, error) {
	m.itemCounts = global
	m.rank = make([]int32, m.tax.NumItems())
	for i := range m.rank {
		m.rank[i] = -1
	}
	var l1 []itemset.Counted
	for i, c := range global {
		if c >= n.MinCount() {
			m.itemAt = append(m.itemAt, item.Item(i))
			l1 = append(l1, itemset.Counted{Items: []item.Item{item.Item(i)}, Count: c})
		}
	}
	sort.Slice(m.itemAt, func(a, b int) bool {
		ia, ib := m.itemAt[a], m.itemAt[b]
		if global[ia] != global[ib] {
			return global[ia] > global[ib]
		}
		return ia < ib
	})
	for r, it := range m.itemAt {
		m.rank[it] = int32(r)
	}
	m.numLarge = len(m.itemAt)
	if n.Keep() {
		m.large = append(m.large, l1)
	}
	return len(l1), nil
}

// Generate reports the pattern-growth task count for the single growth pass:
// one task per suffix rank 1..numLarge-1 (rank 0's prefix paths are always
// empty). Returning 0 — fewer than two large items, or k >= 3 — ends the run
// identically on every node.
func (m *fpgMiner) Generate(_ *driver.Node, k int) (int, error) {
	if k != 2 {
		return 0, nil
	}
	if m.numLarge < 2 {
		return 0, nil
	}
	return m.numLarge - 1, nil
}

// PlanPass records the static suffix-task assignment: suffix rank r is mined
// by node r mod N. Frequency ranks of hot items are low and the modulo
// stripes them across nodes, so the heaviest conditional trees spread evenly
// without any skew feedback.
func (m *fpgMiner) PlanPass(n *driver.Node, k int, _ *metrics.SkewReport) (driver.PlanDecision, error) {
	m.numNodes = n.NumNodes()
	m.nodeID = n.ID()
	return driver.PlanDecision{
		Partitioner: "suffix-rank-mod",
		Granule:     "none",
		Candidates:  m.numLarge - 1,
	}, nil
}

// conflicts reports whether two items are in the ancestor relation (either
// direction) — the pairs Cumulate prunes from C_2, which pattern growth must
// exclude from every grown set.
func (m *fpgMiner) conflicts(a, b item.Item) bool {
	return m.tax.IsAncestor(a, b) || m.tax.IsAncestor(b, a)
}

// CountPass runs the entire pattern-growth phase: build the local FP-tree
// forest, ship every suffix rank's conditional pattern base to its owner
// through the KCondBase exchange, then mine the owned suffix tasks across
// Workers. The outcome is this node's complete set of frequent itemsets of
// size >= 2 with exact global counts (bases are global once exchanged, so no
// replicated count vectors are needed).
func (m *fpgMiner) CountPass(n *driver.Node, k int, st *metrics.NodeStats) (driver.PassOutcome, error) {
	if k != 2 {
		return driver.PassOutcome{}, fmt.Errorf("fpg: unexpected pass %d", k)
	}
	scanStart := time.Now()
	forest, err := m.buildForest(n, st)
	if err != nil {
		return driver.PassOutcome{}, err
	}

	slots := 0
	if n.ID() < m.numLarge {
		slots = (m.numLarge-1-n.ID())/m.numNodes + 1
	}
	m.bases = make([]*pathSet, slots)
	ex := n.StartExchangeKind(driver.KCondBase, m.applyBases)
	shipErr := m.shipBases(n, ex, forest, st)
	finErr := ex.Finish()
	st.ScanTime += time.Since(scanStart)
	if shipErr != nil {
		return driver.PassOutcome{}, shipErr
	}
	if finErr != nil {
		return driver.PassOutcome{}, finErr
	}
	forest = nil

	if err := m.mineOwned(n, st); err != nil {
		return driver.PassOutcome{}, err
	}
	m.bases = nil

	po := driver.PassOutcome{}
	if !n.IsCoord() {
		sets := make([][]item.Item, len(m.own))
		counts := make([]int64, len(m.own))
		for i, c := range m.own {
			sets[i] = c.Items
			counts[i] = c.Count
		}
		po.Owned = wire.AppendCounted(nil, sets, counts)
	}
	return po, nil
}

// buildForest builds one FP-tree per scan worker over the ancestor-closure
// of the local partition, restricted to large items and mapped to frequency
// ranks. The trees are never merged: conditional-base extraction walks a
// rank's header chain in every tree, and counts are exact sums either way.
func (m *fpgMiner) buildForest(n *driver.Node, st *metrics.NodeStats) ([]*fpTree, error) {
	W := n.Workers()
	sp := n.Span("build-forest")
	defer sp.End()
	trees := make([]*fpTree, W)
	for w := range trees {
		trees[w] = newFPTree(m.numLarge)
	}
	wstats := make([]metrics.NodeStats, W)
	wext := driver.WorkerScratch(W, 64)
	wranks := driver.WorkerScratch(W, 64)
	err := driver.ScanTxnShards(m.db, nil, W, n.ShardObs("build"), wstats, func(w int, t txn.Transaction) error {
		wstats[w].TxnsScanned++
		ext := m.tax.ExtendTransaction(wext[w][:0], t.Items)
		wext[w] = ext
		rs := wranks[w][:0]
		for _, x := range ext {
			if r := m.rank[x]; r >= 0 {
				rs = append(rs, item.Item(r))
			}
		}
		item.Sort(rs) // ascending rank = frequency-descending item order
		wranks[w] = rs
		trees[w].add(rs, 1)
		return nil
	})
	if err != nil {
		return nil, err
	}
	driver.MergeWorkerStats(st, wstats)
	var nodes int64
	for _, t := range trees {
		nodes += int64(len(t.nodes) - 1)
	}
	sp.Arg("tree-nodes", nodes)
	return trees, nil
}

// shipBases extracts every suffix rank's conditional pattern base from the
// local forest and routes it to the rank's owner through the exchange,
// sharded over Workers. The taxonomy filter runs at the sender: prefix items
// in the ancestor relation with the suffix item can never co-occur with it
// in a frequent set, so they are dropped before they cost wire bytes.
func (m *fpgMiner) shipBases(n *driver.Node, ex *driver.Exchange, forest []*fpTree, st *metrics.NodeStats) error {
	sp := n.Span("ship-bases")
	defer sp.End()
	W := n.Workers()
	numTasks := m.numLarge - 1
	werrs := make([]error, W)
	wsent := make([]int64, W)
	itemset.ForShards(numTasks, W, itemset.Hook(n.ShardObs("ship").Hook()), func(w, lo, hi int) {
		defer func() {
			if r := recover(); r != nil {
				werrs[w] = fmt.Errorf("fpg: ship worker %d panicked: %v", w, r)
			}
		}()
		b := ex.NewBatcher()
		var unit []byte
		var climb []item.Item
		for t := lo; t < hi; t++ {
			r := item.Item(t + 1) // suffix ranks start at 1
			x := m.itemAt[r]
			dest := int(r) % m.numNodes
			skip := func(pr item.Item) bool { return m.conflicts(m.itemAt[pr], x) }
			var err error
			climb, err = extractPaths(forest, r, skip, climb, func(path []item.Item, count int64) error {
				unit = wire.AppendUvarint(unit[:0], uint64(r))
				unit = wire.AppendUvarint(unit, uint64(count))
				unit = wire.AppendItems(unit, path)
				if dest != n.ID() {
					wsent[w] += int64(len(path))
				}
				return b.AddRaw(dest, unit)
			})
			if err != nil {
				werrs[w] = err
				return
			}
		}
		werrs[w] = b.FlushAll()
	})
	for _, it := range wsent {
		st.ItemsSent += it
	}
	for _, err := range werrs {
		if err != nil {
			return err
		}
	}
	return nil
}

// applyBases is the cond-base exchange's receive callback: it decodes one
// batch of (suffix rank, count, path) units into the owned bases. Runs on
// the exchange receiver goroutine only, which has exclusive access to
// m.bases until Finish returns.
func (m *fpgMiner) applyBases(b []byte) (int64, error) {
	var items int64
	dec := make([]item.Item, 0, 32)
	for off := 0; off < len(b); {
		r, used, err := wire.Uvarint(b[off:])
		if err != nil {
			return items, err
		}
		off += used
		count, used, err := wire.Uvarint(b[off:])
		if err != nil {
			return items, err
		}
		off += used
		path, used, err := wire.Items(b[off:], dec[:0])
		if err != nil {
			return items, err
		}
		dec = path
		off += used
		items += int64(len(path))
		q := int(r) / m.numNodes
		if int(r) >= m.numLarge || int(r)%m.numNodes != m.nodeID || q >= len(m.bases) {
			return items, fmt.Errorf("fpg: cond base for foreign rank %d", r)
		}
		if m.bases[q] == nil {
			m.bases[q] = &pathSet{}
		}
		m.bases[q].add(path, int64(count))
	}
	return items, nil
}

// mineOwned mines every owned suffix task across Workers. Tasks are claimed
// dynamically (conditional tree sizes are highly skewed — a static split
// would strand workers), but each task's output lands in its own slot and
// the slots are concatenated in rank order, so the result is independent of
// scheduling.
func (m *fpgMiner) mineOwned(n *driver.Node, st *metrics.NodeStats) error {
	sp := n.Span("mine")
	defer sp.End()
	var tasks []item.Item
	start := n.ID()
	if start == 0 {
		start = m.numNodes
	}
	for r := start; r < m.numLarge; r += m.numNodes {
		tasks = append(tasks, item.Item(r))
	}
	results := make([][]itemset.Counted, len(tasks))
	W := n.Workers()
	if W > len(tasks) {
		W = len(tasks)
	}
	if W < 1 {
		W = 1
	}
	hook := itemset.Hook(n.BoundaryObs("mine shard").Hook())
	minCount := n.MinCount()
	var next atomic.Int64
	var incs atomic.Int64
	werrs := make([]error, W)
	var wg sync.WaitGroup
	for w := 0; w < W; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			done := hook.Begin(w)
			defer done()
			defer func() {
				if r := recover(); r != nil {
					werrs[w] = fmt.Errorf("fpg: mine worker %d panicked: %v", w, r)
				}
			}()
			sc := newMineScratch(m.numLarge)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					break
				}
				results[i] = m.mineTask(tasks[i], minCount, sc)
			}
			incs.Add(sc.increments)
		}(w)
	}
	wg.Wait()
	for _, err := range werrs {
		if err != nil {
			return err
		}
	}
	st.Increments += incs.Load()
	m.own = m.own[:0]
	for _, res := range results {
		m.own = append(m.own, res...)
	}
	sp.Arg("tasks", int64(len(tasks)))
	sp.Arg("patterns", int64(len(m.own)))
	return nil
}

// mineTask grows every frequent pattern whose highest-frequency-rank item is
// the suffix rank r, from r's (now global) conditional pattern base.
func (m *fpgMiner) mineTask(r item.Item, minCount int64, sc *mineScratch) []itemset.Counted {
	ps := m.bases[int(r)/m.numNodes]
	if ps == nil || ps.size() == 0 {
		return nil
	}
	t := sc.getTree(m.numLarge)
	for i := 0; i < ps.size(); i++ {
		t.add(ps.path(i), ps.counts[i])
	}
	var out []itemset.Counted
	m.grow([]*fpTree{t}, []item.Item{m.itemAt[r]}, 2, minCount, sc, &out)
	sc.putTree(t)
	return out
}

// grow is the conditional pattern-base recursion: tally the trees' per-rank
// totals, emit suffix+item for every rank at or above minCount, and recurse
// into each survivor's conditional tree. size is the size of the sets
// emitted at this level; suffix holds size-1 items. The base was filtered
// against every suffix item as it was added, so no tree path contains an
// item in the ancestor relation with any suffix item.
func (m *fpgMiner) grow(trees []*fpTree, suffix []item.Item, size int, minCount int64, sc *mineScratch, out *[]itemset.Counted) {
	touched := sc.touched[:0]
	for _, t := range trees {
		for _, r := range t.present {
			var sum int64
			for ni := t.heads[r]; ni != -1; ni = t.nodes[ni].next {
				sum += t.nodes[ni].count
				sc.increments++
			}
			if sc.tally[r] == 0 && sum > 0 {
				touched = append(touched, r)
			}
			sc.tally[r] += sum
		}
	}
	sc.touched = touched[:0] // consumed below; recursion may reuse the buffer

	var surv []rankCount
	for _, r := range touched {
		if sc.tally[r] >= minCount {
			surv = append(surv, rankCount{rank: r, count: sc.tally[r]})
		}
		sc.tally[r] = 0
	}
	if len(surv) == 0 {
		return
	}
	sort.Slice(surv, func(a, b int) bool { return surv[a].rank < surv[b].rank })

	for _, s := range surv {
		r, x := s.rank, m.itemAt[s.rank]
		set := make([]item.Item, 0, size)
		set = append(set, suffix...)
		set = append(set, x)
		item.Sort(set)
		*out = append(*out, itemset.Counted{Items: set, Count: s.count})

		if m.cfg.MaxK > 0 && size >= m.cfg.MaxK {
			continue
		}
		ps := sc.getPaths()
		skip := func(pr item.Item) bool { return m.conflicts(m.itemAt[pr], x) }
		var err error
		sc.climb, err = extractPaths(trees, r, skip, sc.climb, func(path []item.Item, count int64) error {
			ps.add(path, count)
			return nil
		})
		if err == nil && ps.size() > 0 {
			sub := sc.getTree(m.numLarge)
			for i := 0; i < ps.size(); i++ {
				sub.add(ps.path(i), ps.counts[i])
			}
			m.grow([]*fpTree{sub}, set, size+1, minCount, sc, out)
			sc.putTree(sub)
		}
		sc.putPaths(ps)
	}
}

// rankCount pairs a surviving rank with its exact tally.
type rankCount struct {
	rank  item.Item
	count int64
}

// MergeFrequents merges the coordinator's own mined share with the peers'
// into the global result. Unlike the level-wise engines this one barrier
// carries every pattern size at once: the merged sets are grouped by size,
// each level sorted canonically, and the broadcast payload is the levels'
// concatenation in (size, lex) order — byte-identical regardless of node
// count, worker count or task scheduling.
func (m *fpgMiner) MergeFrequents(n *driver.Node, _ int, peerOwned [][]byte, _ []int64) ([]byte, int, error) {
	all := m.own
	for _, p := range peerOwned {
		sets, counts, _, err := wire.Counted(p)
		if err != nil {
			return nil, 0, fmt.Errorf("fpg: decode owned patterns: %w", err)
		}
		for i := range sets {
			all = append(all, itemset.Counted{Items: sets[i], Count: counts[i]})
		}
	}
	bySize := make(map[int][]itemset.Counted)
	for _, c := range all {
		bySize[len(c.Items)] = append(bySize[len(c.Items)], c)
	}
	var levels [][]itemset.Counted
	total := 0
	for s := 2; ; s++ {
		lk := bySize[s]
		if len(lk) == 0 {
			// Closure support is monotone and subsets of ancestor-free sets
			// are ancestor-free, so frequent levels are contiguous; the first
			// empty size is the last. (A non-contiguous set would indicate a
			// bug — mirroring Cumulate, nothing past the gap is recorded.)
			break
		}
		itemset.SortCounted(lk)
		levels = append(levels, lk)
		total += len(lk)
	}
	if n.Keep() {
		m.large = append(m.large, levels...)
	}
	var sets [][]item.Item
	var counts []int64
	for _, lk := range levels {
		for _, c := range lk {
			sets = append(sets, c.Items)
			counts = append(counts, c.Count)
		}
	}
	return wire.AppendCounted(nil, sets, counts), total, nil
}

// FinishPass decodes the coordinator's broadcast on a follower and regroups
// it into per-size levels (the payload is (size, lex)-ordered).
func (m *fpgMiner) FinishPass(n *driver.Node, _ int, payload []byte) (int, error) {
	sets, counts, _, err := wire.Counted(payload)
	if err != nil {
		return 0, fmt.Errorf("fpg: decode pattern broadcast: %w", err)
	}
	if n.Keep() {
		var levels [][]itemset.Counted
		for i := range sets {
			s := len(sets[i])
			if len(levels) == 0 || len(levels[len(levels)-1][0].Items) != s {
				levels = append(levels, nil)
			}
			levels[len(levels)-1] = append(levels[len(levels)-1], itemset.Counted{Items: sets[i], Count: counts[i]})
		}
		m.large = append(m.large, levels...)
	}
	return len(sets), nil
}
