package model

import (
	"fmt"

	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/wire"
)

// MiningState is the FUP carry-forward an incremental miner stores alongside
// a snapshot: the log offset the model covers, the full per-item
// ancestor-closure count vector, and every candidate counted in the final
// checkpoint's passes with its exact count over the covered prefix — the
// border sets. With this state, the next checkpoint re-counts candidates
// over the delta only and rescans the prefix solely for candidates that did
// not exist at the prior checkpoint.
//
// The state travels in its own snapshot section (secState); snapshots
// written without it (plain batch mines) simply lack the section, and older
// readers skip it, so no format version bump is needed.
type MiningState struct {
	// LogSeg/LogByte/LogTxns name the stream offset (frame boundary) the
	// model was mined through — stream.Offset, spelled out here so model
	// does not import stream.
	LogSeg  uint64
	LogByte int64
	LogTxns int64
	// ItemCounts[i] is the ancestor-closure support count of item i over
	// the covered prefix, for every item in the universe. Pass 1 of the
	// next checkpoint never touches the prefix because of this vector.
	ItemCounts []int64
	// Levels[k-2] holds every candidate k-itemset counted at the final
	// checkpoint (large or not — the negative border matters as much as the
	// positive one) with its exact prefix count, in the candidate-generation
	// order of that pass. A level may be empty: it records that the pass ran
	// and produced no candidates.
	Levels [][]itemset.Counted
}

// validateState checks the state against the model's universe size.
func (m *Model) validateState() error {
	s := m.State
	if s == nil {
		return nil
	}
	n := m.Taxonomy.NumItems()
	if len(s.ItemCounts) != n {
		return fmt.Errorf("model: state item counts %d != universe %d", len(s.ItemCounts), n)
	}
	if s.LogByte < 0 || s.LogTxns < 0 {
		return fmt.Errorf("model: negative state offset %d/%d", s.LogByte, s.LogTxns)
	}
	for k, level := range s.Levels {
		for _, c := range level {
			if len(c.Items) != k+2 {
				return fmt.Errorf("model: state %d-itemset %v stored at level k=%d", len(c.Items), c.Items, k+2)
			}
			if !item.IsSorted(c.Items) {
				return fmt.Errorf("model: state itemset %v not canonical", c.Items)
			}
			for _, x := range c.Items {
				if x < 0 || int(x) >= n {
					return fmt.Errorf("model: state item %d outside universe [0,%d)", x, n)
				}
			}
		}
	}
	return nil
}

// appendState encodes the state section payload.
func appendState(dst []byte, s *MiningState) []byte {
	dst = wire.AppendUvarint(dst, s.LogSeg)
	dst = wire.AppendUvarint(dst, uint64(s.LogByte))
	dst = wire.AppendUvarint(dst, uint64(s.LogTxns))
	dst = wire.AppendCountsAuto(dst, s.ItemCounts)
	dst = wire.AppendUvarint(dst, uint64(len(s.Levels)))
	var sets [][]item.Item
	var counts []int64
	for _, level := range s.Levels {
		sets = sets[:0]
		counts = counts[:0]
		for _, c := range level {
			sets = append(sets, c.Items)
			counts = append(counts, c.Count)
		}
		dst = wire.AppendCounted(dst, sets, counts)
	}
	return dst
}

// readState decodes a state section payload.
func readState(b []byte) (*MiningState, error) {
	s := &MiningState{}
	seg, off, err := wire.Uvarint(b)
	if err != nil {
		return nil, err
	}
	s.LogSeg = seg
	b = b[off:]
	byteOff, off, err := wire.Uvarint(b)
	if err != nil {
		return nil, err
	}
	s.LogByte = int64(byteOff)
	b = b[off:]
	txns, off, err := wire.Uvarint(b)
	if err != nil {
		return nil, err
	}
	s.LogTxns = int64(txns)
	b = b[off:]
	if s.ItemCounts, off, err = wire.CountsAuto(b); err != nil {
		return nil, err
	}
	b = b[off:]
	levels, off, err := wire.Uvarint(b)
	if err != nil {
		return nil, err
	}
	if levels > uint64(len(b)) {
		return nil, fmt.Errorf("model: state level count %d exceeds payload", levels)
	}
	b = b[off:]
	s.Levels = make([][]itemset.Counted, 0, levels)
	for k := uint64(0); k < levels; k++ {
		sets, counts, used, err := wire.Counted(b)
		if err != nil {
			return nil, err
		}
		b = b[used:]
		level := make([]itemset.Counted, len(sets))
		for i := range sets {
			level[i] = itemset.Counted{Items: sets[i], Count: counts[i]}
		}
		s.Levels = append(s.Levels, level)
	}
	return s, nil
}

// State decodes (once) and returns the incremental mining state, or nil if
// the snapshot has none (plain batch mines do not write the section).
func (r *Reader) State() (*MiningState, error) {
	if !r.stateDone {
		sec, ok := r.sections[secState]
		if ok {
			s, err := readState(sec)
			if err != nil {
				return nil, fmt.Errorf("model: corrupt state section: %v", err)
			}
			r.state = s
		}
		r.stateDone = true
	}
	return r.state, nil
}
