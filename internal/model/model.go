// Package model persists a complete mined model — taxonomy, large itemsets
// with exact support counts, derived rules and generation metadata — as a
// versioned, self-describing binary snapshot (a ".pgarm" file). The snapshot
// is the hand-off artifact between the mining side of the repo (pgarm-mine,
// internal/core, internal/rules) and the serving side (internal/serve,
// pgarm-serve): mine once, write a snapshot, serve it for as long as the
// model stays fresh, then hot-swap in the next one.
//
// The encoding reuses the varint codecs of internal/wire, so itemset lists
// and count vectors cost the same bytes on disk as they do on the fabric. A
// fixed header carries a magic, the format version, the body length and a
// CRC-64 of the body; readers refuse truncated or corrupted files before
// decoding anything, so a served model is either complete or absent — never
// partial.
package model

import (
	"fmt"
	"math"

	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/rules"
	"pgarm/internal/taxonomy"
	"pgarm/internal/wire"
)

// FormatVersion identifies the snapshot layout. Bump on any incompatible
// change; readers reject versions they do not understand.
const FormatVersion = 1

// ToolVersion labels snapshots with the producing build. It is a variable so
// release builds can stamp a git-describe string via
// `-ldflags "-X pgarm/internal/model.ToolVersion=v1.2.3-4-gabc"`.
var ToolVersion = "pgarm-dev"

// Meta is the generation metadata stored alongside the model: enough to know
// where a snapshot came from and how it was mined without re-running
// anything.
type Meta struct {
	// Dataset names the dataset configuration the model was mined from
	// (e.g. "R30F5@0.002").
	Dataset string `json:"dataset"`
	// Algorithm is the mining algorithm (e.g. "H-HPGM-FGD" or "Cumulate").
	Algorithm string `json:"algorithm"`
	// Tool is the producing build's version string (see ToolVersion).
	Tool string `json:"tool"`
	// NumTxns is the database size the support fractions refer to.
	NumTxns int64 `json:"num_txns"`
	// MinSupport and MinConfidence are the mining thresholds.
	MinSupport    float64 `json:"min_support"`
	MinConfidence float64 `json:"min_confidence"`
	// CreatedUnix is the snapshot creation time (Unix seconds).
	CreatedUnix int64 `json:"created_unix"`
	// Granules records the duplication granule map the final pass ran with
	// (e.g. "none" or "none,root3=fine" after adaptive escalation). Empty for
	// algorithms without a plan and for snapshots written by older builds.
	Granules string `json:"granules,omitempty"`
}

// Model is one complete mined model: everything a serving process needs.
type Model struct {
	Meta Meta
	// Taxonomy is the classification hierarchy the itemsets and rules are
	// expressed over.
	Taxonomy *taxonomy.Taxonomy
	// Large[k-1] holds the large k-itemsets with exact support counts,
	// lexicographically ordered — the shape core.Result and
	// cumulate.Result produce.
	Large [][]itemset.Counted
	// Rules are the derived generalized association rules, sorted by
	// descending confidence then support.
	Rules []rules.Rule
	// State, when non-nil, is the incremental-mining carry-forward (log
	// offset + border-set counts) a follower needs to resume delta passes
	// from this snapshot. Batch mines leave it nil and write no section.
	State *MiningState
}

// Validate checks internal consistency: every itemset and rule item must be
// inside the taxonomy's universe and in canonical form. Writers call it so a
// snapshot on disk is well-formed by construction.
func (m *Model) Validate() error {
	if m.Taxonomy == nil {
		return fmt.Errorf("model: nil taxonomy")
	}
	n := item.Item(m.Taxonomy.NumItems())
	checkItems := func(what string, items []item.Item) error {
		if !item.IsSorted(items) {
			return fmt.Errorf("model: %s %v not canonical", what, items)
		}
		for _, x := range items {
			if x < 0 || x >= n {
				return fmt.Errorf("model: %s item %d outside universe [0,%d)", what, x, n)
			}
		}
		return nil
	}
	for k, level := range m.Large {
		for _, c := range level {
			if len(c.Items) != k+1 {
				return fmt.Errorf("model: %d-itemset %v stored at level %d", len(c.Items), c.Items, k+1)
			}
			if err := checkItems("itemset", c.Items); err != nil {
				return err
			}
		}
	}
	for _, r := range m.Rules {
		if len(r.Antecedent) == 0 || len(r.Consequent) == 0 {
			return fmt.Errorf("model: rule with empty side: %v", r)
		}
		if err := checkItems("rule antecedent", r.Antecedent); err != nil {
			return err
		}
		if err := checkItems("rule consequent", r.Consequent); err != nil {
			return err
		}
	}
	return m.validateState()
}

// NumItemsets returns the total large itemset count across all levels.
func (m *Model) NumItemsets() int {
	n := 0
	for _, level := range m.Large {
		n += len(level)
	}
	return n
}

// section identifiers inside the snapshot body. Unknown sections are skipped
// by readers, so additive extensions do not need a version bump.
const (
	secMeta     = 1
	secTaxonomy = 2
	secItemsets = 3
	secRules    = 4
	secState    = 5
)

// appendString appends a length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = wire.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// readString decodes a string appended by appendString.
func readString(b []byte) (string, int, error) {
	n, off, err := wire.Uvarint(b)
	if err != nil {
		return "", 0, err
	}
	if n > uint64(len(b)-off) {
		return "", 0, fmt.Errorf("model: string length %d exceeds payload", n)
	}
	return string(b[off : off+int(n)]), off + int(n), nil
}

// appendFloat appends a float64 as its IEEE-754 bits, varint encoded.
func appendFloat(dst []byte, f float64) []byte {
	return wire.AppendUvarint(dst, math.Float64bits(f))
}

// readFloat decodes a float appended by appendFloat.
func readFloat(b []byte) (float64, int, error) {
	v, off, err := wire.Uvarint(b)
	if err != nil {
		return 0, 0, err
	}
	return math.Float64frombits(v), off, nil
}

// appendMeta encodes the meta section payload.
func appendMeta(dst []byte, m Meta) []byte {
	dst = appendString(dst, m.Dataset)
	dst = appendString(dst, m.Algorithm)
	dst = appendString(dst, m.Tool)
	dst = wire.AppendUvarint(dst, uint64(m.NumTxns))
	dst = appendFloat(dst, m.MinSupport)
	dst = appendFloat(dst, m.MinConfidence)
	dst = wire.AppendUvarint(dst, uint64(m.CreatedUnix))
	// Granules is appended last: readers of older snapshots simply run out of
	// bytes before it and leave the field empty.
	dst = appendString(dst, m.Granules)
	return dst
}

// readMeta decodes a meta section payload.
func readMeta(b []byte) (Meta, error) {
	var m Meta
	var off int
	var err error
	if m.Dataset, off, err = readString(b); err != nil {
		return m, err
	}
	b = b[off:]
	if m.Algorithm, off, err = readString(b); err != nil {
		return m, err
	}
	b = b[off:]
	if m.Tool, off, err = readString(b); err != nil {
		return m, err
	}
	b = b[off:]
	n, off, err := wire.Uvarint(b)
	if err != nil {
		return m, err
	}
	m.NumTxns = int64(n)
	b = b[off:]
	if m.MinSupport, off, err = readFloat(b); err != nil {
		return m, err
	}
	b = b[off:]
	if m.MinConfidence, off, err = readFloat(b); err != nil {
		return m, err
	}
	b = b[off:]
	created, off, err := wire.Uvarint(b)
	if err != nil {
		return m, err
	}
	m.CreatedUnix = int64(created)
	b = b[off:]
	if len(b) > 0 { // absent in snapshots written before the field existed
		if m.Granules, _, err = readString(b); err != nil {
			return m, err
		}
	}
	return m, nil
}

// appendTaxonomy encodes the parent vector: item count, then parent+1 per
// item (so the item.None sentinel encodes as 0).
func appendTaxonomy(dst []byte, t *taxonomy.Taxonomy) []byte {
	n := t.NumItems()
	dst = wire.AppendUvarint(dst, uint64(n))
	for i := 0; i < n; i++ {
		dst = wire.AppendUvarint(dst, uint64(t.Parent(item.Item(i))+1))
	}
	return dst
}

// readTaxonomy decodes and rebuilds the taxonomy, re-validating the forest
// structure (New rejects cycles and out-of-range parents).
func readTaxonomy(b []byte) (*taxonomy.Taxonomy, error) {
	n, off, err := wire.Uvarint(b)
	if err != nil {
		return nil, err
	}
	if n > uint64(len(b)) { // each parent takes >= 1 byte
		return nil, fmt.Errorf("model: taxonomy size %d exceeds payload", n)
	}
	parent := make([]item.Item, n)
	for i := range parent {
		v, u, err := wire.Uvarint(b[off:])
		if err != nil {
			return nil, err
		}
		off += u
		parent[i] = item.Item(v) - 1
	}
	return taxonomy.New(parent)
}

// appendItemsets encodes the per-level large itemsets: level count, then one
// wire.AppendCounted block per level.
func appendItemsets(dst []byte, large [][]itemset.Counted) []byte {
	dst = wire.AppendUvarint(dst, uint64(len(large)))
	var sets [][]item.Item
	var counts []int64
	for _, level := range large {
		sets = sets[:0]
		counts = counts[:0]
		for _, c := range level {
			sets = append(sets, c.Items)
			counts = append(counts, c.Count)
		}
		dst = wire.AppendCounted(dst, sets, counts)
	}
	return dst
}

// readItemsets decodes the itemsets section.
func readItemsets(b []byte) ([][]itemset.Counted, error) {
	levels, off, err := wire.Uvarint(b)
	if err != nil {
		return nil, err
	}
	if levels > uint64(len(b)) {
		return nil, fmt.Errorf("model: level count %d exceeds payload", levels)
	}
	large := make([][]itemset.Counted, 0, levels)
	for k := uint64(0); k < levels; k++ {
		sets, counts, used, err := wire.Counted(b[off:])
		if err != nil {
			return nil, err
		}
		off += used
		level := make([]itemset.Counted, len(sets))
		for i := range sets {
			level[i] = itemset.Counted{Items: sets[i], Count: counts[i]}
		}
		large = append(large, level)
	}
	return large, nil
}

// appendRules encodes the rules section: rule count, then per rule the
// antecedent, consequent, absolute count, support and confidence.
func appendRules(dst []byte, rs []rules.Rule) []byte {
	dst = wire.AppendUvarint(dst, uint64(len(rs)))
	for _, r := range rs {
		dst = wire.AppendItems(dst, r.Antecedent)
		dst = wire.AppendItems(dst, r.Consequent)
		dst = wire.AppendUvarint(dst, uint64(r.Count))
		dst = appendFloat(dst, r.Support)
		dst = appendFloat(dst, r.Confidence)
	}
	return dst
}

// readRules decodes the rules section.
func readRules(b []byte) ([]rules.Rule, error) {
	n, off, err := wire.Uvarint(b)
	if err != nil {
		return nil, err
	}
	if n > uint64(len(b)) { // each rule takes >= 5 bytes
		return nil, fmt.Errorf("model: rule count %d exceeds payload", n)
	}
	out := make([]rules.Rule, 0, n)
	for i := uint64(0); i < n; i++ {
		var r rules.Rule
		var used int
		if r.Antecedent, used, err = wire.Items(b[off:], nil); err != nil {
			return nil, err
		}
		off += used
		if r.Consequent, used, err = wire.Items(b[off:], nil); err != nil {
			return nil, err
		}
		off += used
		c, u, err := wire.Uvarint(b[off:])
		if err != nil {
			return nil, err
		}
		off += u
		r.Count = int64(c)
		if r.Support, u, err = readFloat(b[off:]); err != nil {
			return nil, err
		}
		off += u
		if r.Confidence, u, err = readFloat(b[off:]); err != nil {
			return nil, err
		}
		off += u
		out = append(out, r)
	}
	return out, nil
}
