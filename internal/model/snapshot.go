package model

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"os"

	"pgarm/internal/itemset"
	"pgarm/internal/rules"
	"pgarm/internal/taxonomy"
	"pgarm/internal/wire"
)

// Snapshot layout:
//
//	magic    [8]byte  "pgarmmdl"
//	version  uint32   little-endian FormatVersion
//	bodyLen  uint64   little-endian body length in bytes
//	checksum uint64   little-endian CRC-64/ECMA of the body
//	body     [bodyLen]byte: sections, each (id uvarint, len uvarint, payload)
//
// The fixed-width header lets a reader validate completeness and integrity
// with one stat-sized read before touching the body; the sectioned body lets
// it locate and decode only what it needs (a serving process that only wants
// rules never decodes the itemset levels).
var magic = [8]byte{'p', 'g', 'a', 'r', 'm', 'm', 'd', 'l'}

const headerLen = 8 + 4 + 8 + 8

var crcTable = crc64.MakeTable(crc64.ECMA)

// Checksum returns the CRC-64/ECMA of a snapshot body — exposed so callers
// can label a loaded model (serve uses it as the snapshot version id).
func Checksum(body []byte) uint64 { return crc64.Checksum(body, crcTable) }

// Encode renders the model as a complete snapshot (header + body).
func Encode(m *Model) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	body := make([]byte, 0, 1<<16)
	section := func(id uint64, payload []byte) {
		body = wire.AppendUvarint(body, id)
		body = wire.AppendUvarint(body, uint64(len(payload)))
		body = append(body, payload...)
	}
	section(secMeta, appendMeta(nil, m.Meta))
	section(secTaxonomy, appendTaxonomy(nil, m.Taxonomy))
	section(secItemsets, appendItemsets(nil, m.Large))
	section(secRules, appendRules(nil, m.Rules))
	if m.State != nil {
		section(secState, appendState(nil, m.State))
	}

	out := make([]byte, 0, headerLen+len(body))
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint32(out, FormatVersion)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(body)))
	out = binary.LittleEndian.AppendUint64(out, Checksum(body))
	return append(out, body...), nil
}

// Write encodes the model and writes the snapshot to w.
func Write(w io.Writer, m *Model) error {
	b, err := Encode(m)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// WriteFile writes the snapshot atomically: encode, write to a temp file in
// the destination directory, fsync, rename. A serving process reloading the
// path therefore never observes a half-written snapshot.
func WriteFile(path string, m *Model) error {
	b, err := Encode(m)
	if err != nil {
		return err
	}
	dir, base := splitPath(path)
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func splitPath(path string) (dir, base string) {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i+1], path[i+1:]
		}
	}
	return ".", path
}

// Reader is a lazily decoding snapshot reader. NewReader validates the
// header, the body length and the checksum up front; the section payloads
// are decoded on first use and cached. A Reader is safe for use by one
// goroutine (build the Model once, then share the immutable result).
type Reader struct {
	meta     Meta
	checksum uint64
	sections map[uint64][]byte

	tax   *taxonomy.Taxonomy
	large [][]itemset.Counted
	rules []rules.Rule
	state *MiningState
	// decoded flags distinguish "not yet decoded" from "decoded empty".
	taxDone, largeDone, rulesDone, stateDone bool
}

// NewReader validates a complete snapshot held in memory and indexes its
// sections. data must remain unmodified for the Reader's lifetime.
func NewReader(data []byte) (*Reader, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("model: snapshot truncated: %d bytes < %d-byte header", len(data), headerLen)
	}
	if string(data[:8]) != string(magic[:]) {
		return nil, fmt.Errorf("model: bad magic %q (not a pgarm model snapshot)", data[:8])
	}
	version := binary.LittleEndian.Uint32(data[8:12])
	if version != FormatVersion {
		return nil, fmt.Errorf("model: unsupported format version %d (reader supports %d)", version, FormatVersion)
	}
	bodyLen := binary.LittleEndian.Uint64(data[12:20])
	sum := binary.LittleEndian.Uint64(data[20:28])
	body := data[headerLen:]
	if uint64(len(body)) < bodyLen {
		return nil, fmt.Errorf("model: snapshot truncated: body %d bytes < declared %d", len(body), bodyLen)
	}
	body = body[:bodyLen]
	if got := Checksum(body); got != sum {
		return nil, fmt.Errorf("model: checksum mismatch: computed %016x, header says %016x", got, sum)
	}

	r := &Reader{checksum: sum, sections: make(map[uint64][]byte)}
	for off := 0; off < len(body); {
		id, u, err := wire.Uvarint(body[off:])
		if err != nil {
			return nil, fmt.Errorf("model: corrupt section table: %v", err)
		}
		off += u
		n, u, err := wire.Uvarint(body[off:])
		if err != nil {
			return nil, fmt.Errorf("model: corrupt section table: %v", err)
		}
		off += u
		if n > uint64(len(body)-off) {
			return nil, fmt.Errorf("model: section %d length %d exceeds body", id, n)
		}
		// Last section of a given id wins; unknown ids are retained but
		// ignored, so future writers can append sections compatibly.
		r.sections[id] = body[off : off+int(n)]
		off += int(n)
	}
	metaSec, ok := r.sections[secMeta]
	if !ok {
		return nil, fmt.Errorf("model: snapshot has no meta section")
	}
	meta, err := readMeta(metaSec)
	if err != nil {
		return nil, fmt.Errorf("model: corrupt meta section: %v", err)
	}
	r.meta = meta
	return r, nil
}

// Meta returns the generation metadata (decoded eagerly by NewReader).
func (r *Reader) Meta() Meta { return r.meta }

// Checksum returns the body CRC from the header — a stable identity for this
// exact snapshot.
func (r *Reader) Checksum() uint64 { return r.checksum }

// Taxonomy decodes (once) and returns the hierarchy.
func (r *Reader) Taxonomy() (*taxonomy.Taxonomy, error) {
	if !r.taxDone {
		sec, ok := r.sections[secTaxonomy]
		if !ok {
			return nil, fmt.Errorf("model: snapshot has no taxonomy section")
		}
		t, err := readTaxonomy(sec)
		if err != nil {
			return nil, fmt.Errorf("model: corrupt taxonomy section: %v", err)
		}
		r.tax = t
		r.taxDone = true
	}
	return r.tax, nil
}

// Itemsets decodes (once) and returns the per-level large itemsets.
func (r *Reader) Itemsets() ([][]itemset.Counted, error) {
	if !r.largeDone {
		sec, ok := r.sections[secItemsets]
		if !ok {
			return nil, fmt.Errorf("model: snapshot has no itemsets section")
		}
		large, err := readItemsets(sec)
		if err != nil {
			return nil, fmt.Errorf("model: corrupt itemsets section: %v", err)
		}
		r.large = large
		r.largeDone = true
	}
	return r.large, nil
}

// Rules decodes (once) and returns the derived rules.
func (r *Reader) Rules() ([]rules.Rule, error) {
	if !r.rulesDone {
		sec, ok := r.sections[secRules]
		if !ok {
			return nil, fmt.Errorf("model: snapshot has no rules section")
		}
		rs, err := readRules(sec)
		if err != nil {
			return nil, fmt.Errorf("model: corrupt rules section: %v", err)
		}
		r.rules = rs
		r.rulesDone = true
	}
	return r.rules, nil
}

// Model decodes every section and returns the complete model, re-validated.
func (r *Reader) Model() (*Model, error) {
	tax, err := r.Taxonomy()
	if err != nil {
		return nil, err
	}
	large, err := r.Itemsets()
	if err != nil {
		return nil, err
	}
	rs, err := r.Rules()
	if err != nil {
		return nil, err
	}
	st, err := r.State()
	if err != nil {
		return nil, err
	}
	m := &Model{Meta: r.meta, Taxonomy: tax, Large: large, Rules: rs, State: st}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Read decodes a complete snapshot from r (eager: every section).
func Read(rd io.Reader) (*Model, error) {
	data, err := io.ReadAll(rd)
	if err != nil {
		return nil, err
	}
	sr, err := NewReader(data)
	if err != nil {
		return nil, err
	}
	return sr.Model()
}

// ReadFile reads and decodes a snapshot file.
func ReadFile(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sr, err := NewReader(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m, err := sr.Model()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// OpenReader reads a snapshot file and returns its lazy reader.
func OpenReader(path string) (*Reader, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r, err := NewReader(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}
