package model

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/rules"
	"pgarm/internal/taxonomy"
)

// randomModel builds a structurally valid model from a seeded RNG: a random
// forest taxonomy, large itemsets drawn from its universe (canonical, level
// = size), and rules over those itemsets.
func randomModel(rng *rand.Rand) *Model {
	n := 8 + rng.Intn(40)
	parent := make([]item.Item, n)
	for i := range parent {
		// Items only ever point at earlier items, so the forest is acyclic
		// by construction; ~1/4 of items are roots.
		if i == 0 || rng.Intn(4) == 0 {
			parent[i] = item.None
		} else {
			parent[i] = item.Item(rng.Intn(i))
		}
	}
	tax := taxonomy.MustNew(parent)

	maxK := 1 + rng.Intn(3)
	large := make([][]itemset.Counted, maxK)
	for k := 1; k <= maxK; k++ {
		cnt := rng.Intn(6)
		seen := map[string]bool{}
		for c := 0; c < cnt; c++ {
			items := make([]item.Item, 0, k)
			for len(items) < k {
				items = append(items, item.Item(rng.Intn(n)))
				items = item.Dedup(items)
			}
			key := itemset.Key(items)
			if seen[key] {
				continue
			}
			seen[key] = true
			large[k-1] = append(large[k-1], itemset.Counted{Items: items, Count: rng.Int63n(1 << 32)})
		}
		itemset.SortCounted(large[k-1])
	}

	var rs []rules.Rule
	for _, c := range large[maxK-1] {
		if len(c.Items) < 2 {
			continue
		}
		ante := c.Items[:1]
		cons := c.Items[1:]
		rs = append(rs, rules.Rule{
			Antecedent: item.Clone(ante),
			Consequent: item.Clone(cons),
			Support:    rng.Float64(),
			Confidence: rng.Float64(),
			Count:      c.Count,
		})
	}

	return &Model{
		Meta: Meta{
			Dataset:       "R30F5@quick",
			Algorithm:     "H-HPGM-FGD",
			Tool:          ToolVersion,
			NumTxns:       rng.Int63n(1 << 40),
			MinSupport:    rng.Float64(),
			MinConfidence: rng.Float64(),
			CreatedUnix:   rng.Int63n(1 << 35),
		},
		Taxonomy: tax,
		Large:    large,
		Rules:    rs,
	}
}

// equalModels compares everything Write persists.
func equalModels(t *testing.T, want, got *Model) {
	t.Helper()
	if want.Meta != got.Meta {
		t.Fatalf("meta round-trip: want %+v, got %+v", want.Meta, got.Meta)
	}
	if want.Taxonomy.NumItems() != got.Taxonomy.NumItems() {
		t.Fatalf("taxonomy size: want %d, got %d", want.Taxonomy.NumItems(), got.Taxonomy.NumItems())
	}
	for i := 0; i < want.Taxonomy.NumItems(); i++ {
		if want.Taxonomy.Parent(item.Item(i)) != got.Taxonomy.Parent(item.Item(i)) {
			t.Fatalf("parent of %d: want %v, got %v", i, want.Taxonomy.Parent(item.Item(i)), got.Taxonomy.Parent(item.Item(i)))
		}
	}
	if len(want.Large) != len(got.Large) {
		t.Fatalf("levels: want %d, got %d", len(want.Large), len(got.Large))
	}
	for k := range want.Large {
		if len(want.Large[k]) != len(got.Large[k]) {
			t.Fatalf("level %d: want %d itemsets, got %d", k+1, len(want.Large[k]), len(got.Large[k]))
		}
		for i := range want.Large[k] {
			w, g := want.Large[k][i], got.Large[k][i]
			if !item.Equal(w.Items, g.Items) || w.Count != g.Count {
				t.Fatalf("level %d itemset %d: want %v/%d, got %v/%d", k+1, i, w.Items, w.Count, g.Items, g.Count)
			}
		}
	}
	if len(want.Rules) != len(got.Rules) {
		t.Fatalf("rules: want %d, got %d", len(want.Rules), len(got.Rules))
	}
	for i := range want.Rules {
		if !reflect.DeepEqual(want.Rules[i], got.Rules[i]) {
			t.Fatalf("rule %d round-trip: want %+v, got %+v", i, want.Rules[i], got.Rules[i])
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	prop := func(seed int64) bool {
		m := randomModel(rand.New(rand.NewSource(seed)))
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			t.Logf("seed %d: write: %v", seed, err)
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			t.Logf("seed %d: read: %v", seed, err)
			return false
		}
		equalModels(t, m, got)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLazyReaderDecodesOnDemand(t *testing.T) {
	m := randomModel(rand.New(rand.NewSource(7)))
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	if r.Meta() != m.Meta {
		t.Fatalf("meta: want %+v, got %+v", m.Meta, r.Meta())
	}
	// Rules decode without touching taxonomy/itemsets.
	rs, err := r.Rules()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(m.Rules) {
		t.Fatalf("rules: want %d, got %d", len(m.Rules), len(rs))
	}
	if r.taxDone || r.largeDone {
		t.Fatal("Rules() decoded unrelated sections")
	}
	if r.Checksum() == 0 {
		t.Fatal("checksum not surfaced")
	}
	got, err := r.Model()
	if err != nil {
		t.Fatal(err)
	}
	equalModels(t, m, got)
}

// TestTruncatedFails cuts the snapshot at every length shorter than the
// whole and requires a loud error — never a partial model.
func TestTruncatedFails(t *testing.T) {
	m := randomModel(rand.New(rand.NewSource(42)))
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, 7, 8, 12, headerLen - 1, headerLen, headerLen + 1, len(data) / 2, len(data) - 1} {
		if cut >= len(data) {
			continue
		}
		if _, err := NewReader(data[:cut]); err == nil {
			t.Errorf("NewReader accepted snapshot truncated to %d of %d bytes", cut, len(data))
		}
	}
}

// TestCorruptionFails flips one byte at a time across the file and requires
// either a reader error or (for bytes inside ignorable slack, of which this
// format has none) an identical model — silent corruption is the only
// failure mode.
func TestCorruptionFails(t *testing.T) {
	m := randomModel(rand.New(rand.NewSource(13)))
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x5a
		r, err := NewReader(mut)
		if err != nil {
			continue
		}
		if _, err := r.Model(); err == nil {
			t.Fatalf("byte %d corrupted silently (no reader error)", i)
		}
	}
}

func TestWriteFileAtomicAndReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.pgarm")
	m := randomModel(rand.New(rand.NewSource(3)))
	if err := WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	// No temp leftovers.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("expected only the snapshot in %s, found %d entries", dir, len(ents))
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	equalModels(t, m, got)

	if _, err := ReadFile(filepath.Join(dir, "missing.pgarm")); err == nil {
		t.Fatal("ReadFile of missing path succeeded")
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	tax := taxonomy.MustNew([]item.Item{item.None, 0, 0})
	cases := []*Model{
		{Taxonomy: nil},
		{Taxonomy: tax, Large: [][]itemset.Counted{{{Items: []item.Item{5}, Count: 1}}}},               // out of range
		{Taxonomy: tax, Large: [][]itemset.Counted{{{Items: []item.Item{1, 0}, Count: 1}}}},            // not canonical
		{Taxonomy: tax, Large: [][]itemset.Counted{{{Items: []item.Item{0, 1}, Count: 1}}}},            // 2-itemset at level 1
		{Taxonomy: tax, Rules: []rules.Rule{{Antecedent: []item.Item{0}, Consequent: nil}}},            // empty consequent
		{Taxonomy: tax, Rules: []rules.Rule{{Antecedent: []item.Item{9}, Consequent: []item.Item{1}}}}, // out of range
	}
	for i, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted malformed model", i)
		}
	}
}
