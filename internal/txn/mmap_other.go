//go:build !unix

package txn

import (
	"fmt"
	"os"
)

// mmapFile on platforms without a usable mmap syscall reports unsupported;
// OpenColumnarWith falls back to the pread path.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, fmt.Errorf("txn: mmap unsupported on this platform")
}

func munmapFile(data []byte) error { return nil }
