package txn

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"pgarm/internal/item"
)

func sampleDB() *DB {
	return NewDB([]Transaction{
		{TID: 1, Items: []item.Item{1, 5, 9}},
		{TID: 2, Items: []item.Item{2}},
		{TID: 5, Items: []item.Item{0, 3, 4, 1000}},
		{TID: 9, Items: nil},
	})
}

func TestDBBasics(t *testing.T) {
	db := sampleDB()
	if db.Len() != 4 {
		t.Fatalf("Len = %d", db.Len())
	}
	if got := db.At(2); got.TID != 5 || len(got.Items) != 4 {
		t.Errorf("At(2) = %v", got)
	}
	var tids []int64
	if err := db.Scan(func(tr Transaction) error {
		tids = append(tids, tr.TID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(tids) != 4 || tids[0] != 1 || tids[3] != 9 {
		t.Errorf("Scan order = %v", tids)
	}
	want := (3.0 + 1 + 4 + 0) / 4
	if got := db.AvgSize(); got != want {
		t.Errorf("AvgSize = %g, want %g", got, want)
	}
	if got := (&DB{}).AvgSize(); got != 0 {
		t.Errorf("empty AvgSize = %g", got)
	}
}

func TestScanErrorPropagates(t *testing.T) {
	db := sampleDB()
	wantErr := os.ErrClosed
	n := 0
	err := db.Scan(func(Transaction) error {
		n++
		if n == 2 {
			return wantErr
		}
		return nil
	})
	if err != wantErr {
		t.Errorf("err = %v", err)
	}
	if n != 2 {
		t.Errorf("scan continued after error: %d", n)
	}
}

func TestPartitionRoundRobin(t *testing.T) {
	db := &DB{}
	for i := 0; i < 10; i++ {
		db.Append(Transaction{TID: int64(i), Items: []item.Item{item.Item(i)}})
	}
	parts := Partition(db, 3)
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	sizes := []int{parts[0].Len(), parts[1].Len(), parts[2].Len()}
	if sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 3 {
		t.Errorf("sizes = %v", sizes)
	}
	// TIDs stay ascending within each partition (required by WriteFile).
	for pi, p := range parts {
		last := int64(-1)
		p.Scan(func(tr Transaction) error {
			if tr.TID <= last {
				t.Errorf("partition %d TIDs not ascending", pi)
			}
			last = tr.TID
			return nil
		})
	}
}

func TestFileRoundTrip(t *testing.T) {
	db := sampleDB()
	path := filepath.Join(t.TempDir(), "x.ptx")
	if err := WriteFile(path, db); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != db.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), db.Len())
	}
	for i := 0; i < db.Len(); i++ {
		w, g := db.At(i), got.At(i)
		if w.TID != g.TID || !item.Equal(w.Items, g.Items) {
			t.Errorf("txn %d: %v != %v", i, g, w)
		}
	}
}

func TestFileScanTwice(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.ptx")
	if err := WriteFile(path, sampleDB()); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 4 {
		t.Fatalf("header Len = %d", f.Len())
	}
	for round := 0; round < 2; round++ {
		n := 0
		if err := f.Scan(func(Transaction) error { n++; return nil }); err != nil {
			t.Fatal(err)
		}
		if n != 4 {
			t.Fatalf("round %d scanned %d", round, n)
		}
	}
	if f.Path() != path {
		t.Errorf("Path = %q", f.Path())
	}
}

func TestWriteFileRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	bad := NewDB([]Transaction{{TID: 5}, {TID: 1}})
	if err := WriteFile(filepath.Join(dir, "a.ptx"), bad); err == nil {
		t.Error("descending TIDs must fail")
	}
	bad2 := NewDB([]Transaction{{TID: 1, Items: []item.Item{5, 2}}})
	if err := WriteFile(filepath.Join(dir, "b.ptx"), bad2); err == nil {
		t.Error("non-canonical items must fail")
	}
}

func TestOpenFileRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "junk")
	if err := os.WriteFile(path, []byte("not a transaction file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); err == nil {
		t.Error("bad magic must fail")
	}
	if _, err := OpenFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file must fail")
	}
	if err := os.WriteFile(path, []byte{0x50, 0x47}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); err == nil {
		t.Error("truncated header must fail")
	}
}

// Property: any canonical database round-trips through the binary format.
func TestFileRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := &DB{}
		tid := int64(0)
		for i := 0; i < rng.Intn(50); i++ {
			tid += int64(rng.Intn(5) + 1)
			items := make([]item.Item, rng.Intn(8))
			for j := range items {
				items[j] = item.Item(rng.Intn(1 << 16))
			}
			db.Append(Transaction{TID: tid, Items: item.Dedup(items)})
		}
		path := filepath.Join(dir, "p.ptx")
		if err := WriteFile(path, db); err != nil {
			return false
		}
		got, err := ReadFile(path)
		if err != nil || got.Len() != db.Len() {
			return false
		}
		for i := 0; i < db.Len(); i++ {
			if db.At(i).TID != got.At(i).TID || !item.Equal(db.At(i).Items, got.At(i).Items) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTransactionString(t *testing.T) {
	tr := Transaction{TID: 3, Items: []item.Item{1, 2}}
	if got := tr.String(); got != "t3{1,2}" {
		t.Errorf("String = %q", got)
	}
}
