package txn

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"pgarm/internal/item"
	"pgarm/internal/taxonomy"
)

// testTaxonomy returns a small balanced hierarchy covering sampleDB's items.
func testTaxonomy(t *testing.T) *taxonomy.Taxonomy {
	t.Helper()
	tax, err := taxonomy.Balanced(1200, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	return tax
}

func writeColumnarOrDie(t *testing.T, db *DB, tax *taxonomy.Taxonomy, block int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "x.ptc")
	if err := WriteColumnar(path, db, tax, block); err != nil {
		t.Fatal(err)
	}
	return path
}

func scanAll(t *testing.T, s Scanner) []Transaction {
	t.Helper()
	var out []Transaction
	if err := s.Scan(func(tr Transaction) error {
		out = append(out, Transaction{TID: tr.TID, Items: item.Clone(tr.Items)})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestColumnarRoundTrip(t *testing.T) {
	db := sampleDB()
	for _, tax := range []*taxonomy.Taxonomy{nil, testTaxonomy(t)} {
		for _, block := range []int{1, 2, 256} {
			path := writeColumnarOrDie(t, db, tax, block)
			f, err := OpenColumnar(path)
			if err != nil {
				t.Fatal(err)
			}
			if f.Len() != db.Len() {
				t.Fatalf("Len = %d, want %d", f.Len(), db.Len())
			}
			wantBlocks := (db.Len() + block - 1) / block
			if f.NumBlocks() != wantBlocks {
				t.Fatalf("block=%d NumBlocks = %d, want %d", block, f.NumBlocks(), wantBlocks)
			}
			got := scanAll(t, f)
			for i := 0; i < db.Len(); i++ {
				w := db.At(i)
				if got[i].TID != w.TID || !item.Equal(got[i].Items, w.Items) {
					t.Errorf("block=%d txn %d: %v != %v", block, i, got[i], w)
				}
			}
		}
	}
}

func TestColumnarScanTwice(t *testing.T) {
	path := writeColumnarOrDie(t, sampleDB(), nil, 2)
	f, err := OpenColumnar(path)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		n := 0
		if err := f.Scan(func(Transaction) error { n++; return nil }); err != nil {
			t.Fatal(err)
		}
		if n != 4 {
			t.Fatalf("round %d scanned %d", round, n)
		}
	}
	if f.Path() != path {
		t.Errorf("Path = %q", f.Path())
	}
}

func TestOpenAutodetectsFormat(t *testing.T) {
	db := sampleDB()
	dir := t.TempDir()
	rowPath := filepath.Join(dir, "row.ptx")
	if err := WriteFile(rowPath, db); err != nil {
		t.Fatal(err)
	}
	colPath := filepath.Join(dir, "col.ptc")
	if err := WriteColumnar(colPath, db, nil, 2); err != nil {
		t.Fatal(err)
	}
	row, err := Open(rowPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := row.(*File); !ok {
		t.Fatalf("Open(row) = %T", row)
	}
	col, err := Open(colPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := col.(*ColumnarFile); !ok {
		t.Fatalf("Open(columnar) = %T", col)
	}
	for _, s := range []Scanner{row, col} {
		got := scanAll(t, s)
		if len(got) != db.Len() {
			t.Fatalf("%T scanned %d", s, len(got))
		}
	}
	junk := filepath.Join(dir, "junk")
	if err := os.WriteFile(junk, []byte("garbage here"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(junk); err == nil {
		t.Error("unknown magic must fail")
	}
}

func TestColumnarBlockShardsPartition(t *testing.T) {
	db := &DB{}
	for i := 0; i < 37; i++ {
		db.Append(Transaction{TID: int64(i + 1), Items: []item.Item{item.Item(i), item.Item(i + 100)}})
	}
	f, err := OpenColumnar(writeColumnarOrDie(t, db, nil, 4))
	if err != nil {
		t.Fatal(err)
	}
	const shards = 3
	seen := make(map[int]int)
	total := 0
	for s := 0; s < shards; s++ {
		err := f.ScanBlocks(BlockScanOptions{Shard: s, NumShards: shards}, func(b Block) error {
			seen[b.Ordinal]++
			if b.Ordinal%shards != s {
				t.Errorf("block %d delivered to shard %d", b.Ordinal, s)
			}
			total += len(b.Txns)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != f.NumBlocks() {
		t.Errorf("shards covered %d of %d blocks", len(seen), f.NumBlocks())
	}
	for ord, n := range seen {
		if n != 1 {
			t.Errorf("block %d delivered %d times", ord, n)
		}
	}
	if total != db.Len() {
		t.Errorf("shards delivered %d transactions, want %d", total, db.Len())
	}
}

// Property: a predicate-filtered scan yields exactly the transactions whose
// block it could not rule out, every skipped block truly contains no
// transaction supporting any candidate, and candidate support counts match a
// full scan bit-for-bit.
func TestPredicateSkipExact(t *testing.T) {
	tax := testTaxonomy(t)
	rng := rand.New(rand.NewSource(42))
	db := &DB{}
	for i := 0; i < 400; i++ {
		n := rng.Intn(5)
		items := make([]item.Item, n)
		for j := range items {
			items[j] = item.Item(rng.Intn(tax.NumItems()))
		}
		db.Append(Transaction{TID: int64(i + 1), Items: item.Dedup(items)})
	}
	f, err := OpenColumnar(writeColumnarOrDie(t, db, tax, 8))
	if err != nil {
		t.Fatal(err)
	}

	closure := func(items []item.Item) map[item.Item]bool {
		m := make(map[item.Item]bool)
		for _, x := range items {
			for cur := x; cur != item.None; cur = tax.Parent(cur) {
				m[cur] = true
			}
		}
		return m
	}
	supports := func(cand []item.Item, items []item.Item) bool {
		cl := closure(items)
		for _, x := range cand {
			if !cl[x] {
				return false
			}
		}
		return true
	}

	for trial := 0; trial < 20; trial++ {
		var cands [][]item.Item
		for c := 0; c < 1+rng.Intn(4); c++ {
			k := 1 + rng.Intn(3)
			cand := make([]item.Item, k)
			for j := range cand {
				cand[j] = item.Item(rng.Intn(tax.NumItems()))
			}
			cand = item.Dedup(cand)
			if len(cand) > 0 {
				cands = append(cands, cand)
			}
		}
		want := make([]int64, len(cands))
		db.Scan(func(tr Transaction) error {
			for i, c := range cands {
				if supports(c, tr.Items) {
					want[i]++
				}
			}
			return nil
		})

		var st ScanStats
		got := make([]int64, len(cands))
		pred := NewPredicate(tax, cands)
		err := ScanFiltered(f, pred, &st, func(tr Transaction) error {
			for i, c := range cands {
				if supports(c, tr.Items) {
					got[i]++
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range cands {
			if got[i] != want[i] {
				t.Fatalf("trial %d cand %v: filtered count %d != full count %d (skipped %d blocks)",
					trial, cands[i], got[i], want[i], st.BlocksSkipped)
			}
		}
		if st.BlocksScanned+st.BlocksSkipped != int64(f.NumBlocks()) {
			t.Fatalf("trial %d: scanned %d + skipped %d != %d blocks",
				trial, st.BlocksScanned, st.BlocksSkipped, f.NumBlocks())
		}
	}
}

func TestPredicateSkipsAndFingerprint(t *testing.T) {
	tax := testTaxonomy(t)
	db := &DB{}
	// Two populations: blocks of small items, then blocks of large items.
	for i := 0; i < 32; i++ {
		x := item.Item(5)
		if i >= 16 {
			x = item.Item(1100)
		}
		db.Append(Transaction{TID: int64(i + 1), Items: []item.Item{x}})
	}
	f, err := OpenColumnar(writeColumnarOrDie(t, db, tax, 8))
	if err != nil {
		t.Fatal(err)
	}

	// A candidate on item 1100 can only live in the second half's blocks.
	pred := NewPredicate(tax, [][]item.Item{{1100}})
	var st ScanStats
	n := 0
	if err := ScanFiltered(f, pred, &st, func(Transaction) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if st.BlocksSkipped != 2 || st.BlocksScanned != 2 {
		t.Errorf("skipped %d scanned %d, want 2/2", st.BlocksSkipped, st.BlocksScanned)
	}
	if n != 16 {
		t.Errorf("delivered %d transactions, want 16", n)
	}

	// An empty candidate set proves every block irrelevant.
	st = ScanStats{}
	if err := ScanFiltered(f, NewPredicate(tax, nil), &st, func(Transaction) error {
		t.Error("transaction delivered with no candidates")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if st.BlocksSkipped != 4 {
		t.Errorf("empty candidates skipped %d of 4 blocks", st.BlocksSkipped)
	}

	// A predicate built over a different hierarchy must never skip.
	other, err := taxonomy.Balanced(1200, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	st = ScanStats{}
	if err := ScanFiltered(f, NewPredicate(other, [][]item.Item{{1100}}), &st, func(Transaction) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if st.BlocksSkipped != 0 || st.BlocksScanned != 4 {
		t.Errorf("fingerprint mismatch skipped %d blocks", st.BlocksSkipped)
	}

	// A nil predicate Clone stays nil and matches everything.
	var nilPred *Predicate
	if nilPred.Clone() != nil {
		t.Error("Clone of nil predicate")
	}
	if !nilPred.Match(f.BlockMeta(0)) {
		t.Error("nil predicate must match")
	}
}

func TestColumnarRejectsCorruption(t *testing.T) {
	db := sampleDB()
	path := writeColumnarOrDie(t, db, testTaxonomy(t), 2)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	write := func(b []byte) string {
		p := filepath.Join(dir, "c.ptc")
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Truncations anywhere must fail to open (or to scan), never panic.
	for cut := 0; cut < len(orig); cut += 3 {
		f, err := OpenColumnar(write(orig[:cut]))
		if err != nil {
			continue
		}
		n := 0
		if err := f.Scan(func(Transaction) error { n++; return nil }); err == nil && n != db.Len() {
			t.Fatalf("truncation at %d silently dropped transactions (%d of %d)", cut, n, db.Len())
		}
	}

	// Directory bit flip breaks the checksum.
	flip := append([]byte(nil), orig...)
	flip[len(flip)-30] ^= 0x40 // inside the directory, ahead of the trailer
	if _, err := OpenColumnar(write(flip)); err == nil {
		t.Error("directory corruption must fail")
	}

	// Bad version byte.
	flip = append([]byte(nil), orig...)
	flip[4] = 99
	if _, err := OpenColumnar(write(flip)); err == nil {
		t.Error("unknown version must fail")
	}

	// Row-format file through the columnar opener.
	rowPath := filepath.Join(dir, "row.ptx")
	if err := WriteFile(rowPath, db); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenColumnar(rowPath); err == nil {
		t.Error("row magic must fail")
	}
}

func TestWriteColumnarRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	bad := NewDB([]Transaction{{TID: 5}, {TID: 1}})
	if err := WriteColumnar(filepath.Join(dir, "a.ptc"), bad, nil, 4); err == nil {
		t.Error("descending TIDs must fail")
	}
	bad2 := NewDB([]Transaction{{TID: 1, Items: []item.Item{5, 2}}})
	if err := WriteColumnar(filepath.Join(dir, "b.ptc"), bad2, nil, 4); err == nil {
		t.Error("non-canonical items must fail")
	}
	if err := WriteColumnar(filepath.Join(dir, "c.ptc"), sampleDB(), nil, maxTxnsPerBlock+1); err == nil {
		t.Error("oversized block must fail")
	}
}

// Scanning a row file must not allocate per transaction: the scratch basket
// buffer is reused across the scan (the no-retain contract), so allocations
// stay constant no matter how many transactions stream by.
func TestScanAllocsConstant(t *testing.T) {
	dir := t.TempDir()
	build := func(n int) *File {
		db := &DB{}
		for i := 0; i < n; i++ {
			db.Append(Transaction{TID: int64(i + 1), Items: []item.Item{item.Item(i % 7), item.Item(100 + i%13)}})
		}
		path := filepath.Join(dir, "a.ptx")
		if err := WriteFile(path, db); err != nil {
			t.Fatal(err)
		}
		f, err := OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	allocs := func(f *File) float64 {
		return testing.AllocsPerRun(5, func() {
			if err := f.Scan(func(Transaction) error { return nil }); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := allocs(build(50))
	large := allocs(build(5000))
	// Per-scan setup (open, bufio) allocates a fixed amount; 100× more
	// transactions must not add to it.
	if large > small+4 {
		t.Errorf("scan of 5000 txns allocates %.0f vs %.0f for 50: per-transaction allocation crept back in", large, small)
	}
}
