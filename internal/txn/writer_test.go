package txn

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"pgarm/internal/item"
	"pgarm/internal/taxonomy"
)

func writerTestDB(t *testing.T) (*DB, *taxonomy.Taxonomy) {
	t.Helper()
	tax, err := taxonomy.Balanced(120, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	db := &DB{}
	tid := int64(0)
	for i := 0; i < 700; i++ {
		n := 1 + i%7
		items := make([]item.Item, 0, n)
		for j := 0; j < n; j++ {
			items = append(items, item.Item((i*13+j*17)%120))
		}
		items = item.Dedup(items)
		tid += int64(1 + i%3)
		db.Append(Transaction{TID: tid, Items: items})
	}
	return db, tax
}

// TestRowWriterByteIdentity streams the database through RowWriter and
// asserts the spill-and-stitch output is byte-identical to WriteFile's
// single-shot encoding.
func TestRowWriterByteIdentity(t *testing.T) {
	db, _ := writerTestDB(t)
	dir := t.TempDir()
	whole, streamed := filepath.Join(dir, "whole.ptx"), filepath.Join(dir, "stream.ptx")
	if err := WriteFile(whole, db); err != nil {
		t.Fatal(err)
	}
	rw, err := NewRowWriter(streamed)
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]item.Item, 0, 16)
	for i := 0; i < db.Len(); i++ {
		tx := db.At(i)
		// Reuse one scratch buffer across appends: the writer must not
		// depend on the caller's Items surviving the call.
		scratch = append(scratch[:0], tx.Items...)
		if err := rw.Append(Transaction{TID: tx.TID, Items: scratch}); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := rw.Count(), int64(db.Len()); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(whole)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(streamed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("streamed row file differs from WriteFile output (%d vs %d bytes)", len(b), len(a))
	}
	// No spill temp left behind.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("unexpected leftover files in %s: %v", dir, ents)
	}
}

// TestColumnarWriterByteIdentity streams the database through
// ColumnarWriter — with a caller-reused Items buffer, exercising the arena
// clone — and asserts byte identity with WriteColumnar, including a
// partially filled final block.
func TestColumnarWriterByteIdentity(t *testing.T) {
	db, tax := writerTestDB(t)
	for _, blk := range []int{64, 256, 1024} {
		dir := t.TempDir()
		whole, streamed := filepath.Join(dir, "whole.ptc"), filepath.Join(dir, "stream.ptc")
		if err := WriteColumnar(whole, db, tax, blk); err != nil {
			t.Fatal(err)
		}
		cw, err := NewColumnarWriter(streamed, tax, blk)
		if err != nil {
			t.Fatal(err)
		}
		scratch := make([]item.Item, 0, 16)
		for i := 0; i < db.Len(); i++ {
			tx := db.At(i)
			scratch = append(scratch[:0], tx.Items...)
			if err := cw.Append(Transaction{TID: tx.TID, Items: scratch}); err != nil {
				t.Fatal(err)
			}
		}
		if err := cw.Close(); err != nil {
			t.Fatal(err)
		}
		a, err := os.ReadFile(whole)
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(streamed)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("block=%d: streamed columnar file differs from WriteColumnar output (%d vs %d bytes)", blk, len(b), len(a))
		}
		cf, err := OpenColumnar(streamed)
		if err != nil {
			t.Fatal(err)
		}
		if cf.Len() != db.Len() {
			t.Fatalf("block=%d: reopened count %d, want %d", blk, cf.Len(), db.Len())
		}
	}
}

// TestWritersEmpty checks both streaming writers produce valid, openable
// zero-transaction files.
func TestWritersEmpty(t *testing.T) {
	dir := t.TempDir()
	row := filepath.Join(dir, "empty.ptx")
	rw, err := NewRowWriter(row)
	if err != nil {
		t.Fatal(err)
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFile(row)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 0 {
		t.Fatalf("empty row file reports %d txns", f.Len())
	}

	col := filepath.Join(dir, "empty.ptc")
	cw, err := NewColumnarWriter(col, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	cf, err := OpenColumnar(col)
	if err != nil {
		t.Fatal(err)
	}
	if cf.Len() != 0 {
		t.Fatalf("empty columnar file reports %d txns", cf.Len())
	}
}

// TestWritersRejectInvalid checks validation parity with the whole-DB
// writers and that a failed stream leaves no destination file behind.
func TestWritersRejectInvalid(t *testing.T) {
	dir := t.TempDir()
	row := filepath.Join(dir, "bad.ptx")
	rw, err := NewRowWriter(row)
	if err != nil {
		t.Fatal(err)
	}
	if err := rw.Append(Transaction{TID: 5, Items: []item.Item{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := rw.Append(Transaction{TID: 5, Items: []item.Item{3}}); err == nil {
		t.Fatal("duplicate TID accepted")
	}
	if err := rw.Close(); err == nil {
		t.Fatal("Close after sticky error reported success")
	}
	if _, err := os.Stat(row); !os.IsNotExist(err) {
		t.Fatalf("failed stream left destination behind: %v", err)
	}

	col := filepath.Join(dir, "bad.ptc")
	cw, err := NewColumnarWriter(col, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.Append(Transaction{TID: 1, Items: []item.Item{4, 2}}); err == nil {
		t.Fatal("non-canonical itemset accepted")
	}
	if err := cw.Close(); err == nil {
		t.Fatal("Close after sticky error reported success")
	}
	if _, err := os.Stat(col); !os.IsNotExist(err) {
		t.Fatalf("failed stream left destination behind: %v", err)
	}
}
