package txn

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"pgarm/internal/item"
)

// Binary transaction file format, a node's simulated local disk:
//
//	magic  uint32  "PGTX" (0x50475458)
//	count  uvarint number of transactions
//	per transaction:
//	  tidDelta uvarint (TID delta from previous; first is absolute)
//	  n        uvarint item count
//	  items    n × uvarint (delta-encoded, ascending)
//
// Delta coding keeps R30F5-scale files small enough that repeated per-pass
// scans (and NPGM's per-fragment rescans) are I/O realistic without being
// punitive.

const fileMagic = 0x50475458

// WriteFile writes the database to path, creating or truncating it.
func WriteFile(path string, db *DB) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("txn: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("txn: close %s: %w", path, cerr)
		}
	}()
	w := bufio.NewWriterSize(f, 1<<20)
	if err := writeAll(w, db); err != nil {
		return fmt.Errorf("txn: write %s: %w", path, err)
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("txn: flush %s: %w", path, err)
	}
	return nil
}

func writeAll(w *bufio.Writer, db *DB) error {
	var buf [binary.MaxVarintLen64]byte
	binary.BigEndian.PutUint32(buf[:4], fileMagic)
	if _, err := w.Write(buf[:4]); err != nil {
		return err
	}
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := w.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(db.Len())); err != nil {
		return err
	}
	prevTID, first := int64(0), true
	for _, t := range db.txns {
		if t.TID < 0 || (!first && t.TID <= prevTID) {
			return fmt.Errorf("TIDs not strictly ascending: %d after %d", t.TID, prevTID)
		}
		first = false
		if !item.IsSorted(t.Items) {
			return fmt.Errorf("transaction %d items not canonical", t.TID)
		}
		if err := putUvarint(uint64(t.TID - prevTID)); err != nil {
			return err
		}
		prevTID = t.TID
		if err := putUvarint(uint64(len(t.Items))); err != nil {
			return err
		}
		prev := item.Item(0)
		for i, x := range t.Items {
			d := uint64(x - prev)
			if i == 0 {
				d = uint64(x)
			}
			if err := putUvarint(d); err != nil {
				return err
			}
			prev = x
		}
	}
	return nil
}

// File is a disk-backed transaction partition. Each Scan re-reads the file
// from the start, modelling the per-pass database scan of a shared-nothing
// node's local disk.
type File struct {
	path  string
	count int
}

// OpenFile validates the header of a transaction file and returns a Scanner
// over it.
func OpenFile(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("txn: open %s: %w", path, err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("txn: read header of %s: %w", path, err)
	}
	if binary.BigEndian.Uint32(hdr[:]) != fileMagic {
		return nil, fmt.Errorf("txn: %s is not a transaction file (bad magic)", path)
	}
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("txn: read count of %s: %w", path, err)
	}
	// Every transaction occupies at least 2 bytes (TID delta + item count), so
	// a count the file cannot physically hold is corruption. Checking here
	// keeps ReadFile's count-sized preallocation bounded by the file size.
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("txn: stat %s: %w", path, err)
	}
	if count > uint64(fi.Size())/2 {
		return nil, fmt.Errorf("txn: %s: transaction count %d exceeds file capacity", path, count)
	}
	return &File{path: path, count: int(count)}, nil
}

// Path returns the backing file path.
func (f *File) Path() string { return f.path }

// Len returns the number of transactions recorded in the header.
func (f *File) Len() int { return f.count }

// Scan streams all transactions from disk to fn.
//
// The Transaction passed to fn aliases a scratch buffer owned by this scan:
// its Items slice is overwritten by the next transaction and MUST NOT be
// retained past fn's return (the no-retain contract every Scanner caller in
// this repo already honors — counting paths copy into their own extension
// scratch, and table builds copy at insert time). Use ReadFile to obtain
// stable transactions.
func (f *File) Scan(fn func(Transaction) error) error {
	file, err := os.Open(f.path)
	if err != nil {
		return fmt.Errorf("txn: open %s: %w", f.path, err)
	}
	defer file.Close()
	r := bufio.NewReaderSize(file, 1<<20)
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("txn: reread header of %s: %w", f.path, err)
	}
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("txn: reread count of %s: %w", f.path, err)
	}
	tid := int64(0)
	items := make([]item.Item, 0, 64)
	for i := uint64(0); i < count; i++ {
		t, err := readTxn(r, i == 0, &tid, items[:0])
		if err != nil {
			return fmt.Errorf("txn: %s transaction %d: %w", f.path, i, err)
		}
		items = t.Items[:0]
		if err := fn(t); err != nil {
			return err
		}
	}
	return nil
}

// readTxn decodes one transaction into the caller's scratch buffer. The
// decoder rejects anything the writer cannot produce: TID overflow,
// implausible basket sizes, item values outside int32, and non-canonical
// (zero or overflowing) item deltas — so a decoded transaction is always
// canonical and corruption surfaces as an error, never as silently wrong
// itemsets.
func readTxn(r *bufio.Reader, first bool, tid *int64, items []item.Item) (Transaction, error) {
	d, err := binary.ReadUvarint(r)
	if err != nil {
		return Transaction{}, err
	}
	// TIDs are strictly ascending, so only the first transaction (whose
	// "delta" is its absolute TID, possibly 0) may encode a zero here.
	if (d == 0 && !first) || d > uint64(math.MaxInt64-*tid) {
		return Transaction{}, errors.New("non-canonical TID delta (corrupt file?)")
	}
	*tid += int64(d)
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return Transaction{}, err
	}
	if n > maxBasketSize {
		return Transaction{}, errors.New("implausible basket size (corrupt file?)")
	}
	prev := item.Item(0)
	for i := uint64(0); i < n; i++ {
		d, err := binary.ReadUvarint(r)
		if err != nil {
			return Transaction{}, err
		}
		if i == 0 {
			if d > math.MaxInt32 {
				return Transaction{}, errors.New("item out of range (corrupt file?)")
			}
			prev = item.Item(d)
		} else {
			if d == 0 || d > uint64(math.MaxInt32-int64(prev)) {
				return Transaction{}, errors.New("non-canonical item delta (corrupt file?)")
			}
			prev += item.Item(d)
		}
		items = append(items, prev)
	}
	return Transaction{TID: *tid, Items: items}, nil
}

// maxBasketSize bounds per-transaction item counts during decode; the
// generator's baskets are orders of magnitude smaller, so anything beyond it
// is corruption, not data.
const maxBasketSize = 1 << 20

// ReadFile loads a whole transaction file into memory. Itemsets are cloned
// out of the scan's scratch buffer, so the returned DB owns its memory.
func ReadFile(path string) (*DB, error) {
	f, err := OpenFile(path)
	if err != nil {
		return nil, err
	}
	db := &DB{txns: make([]Transaction, 0, f.Len())}
	if err := f.Scan(func(t Transaction) error {
		t.Items = item.Clone(t.Items)
		db.Append(t)
		return nil
	}); err != nil {
		return nil, err
	}
	return db, nil
}

// OpenOptions select how an on-disk partition is accessed.
type OpenOptions struct {
	// Mmap maps columnar files read-only instead of preading blocks per
	// scan. Ignored for the row format and silently downgraded to pread on
	// platforms without mmap support, so it is always safe to request.
	Mmap bool
}

// Open opens a transaction partition in either on-disk format, dispatching on
// the 4-byte magic: row-oriented ("PGTX") or block-compressed columnar
// ("PGTC"). The returned Scanner is a *File or a *ColumnarFile.
func Open(path string) (Scanner, error) {
	return OpenWith(path, OpenOptions{})
}

// OpenWith is Open with explicit access options.
func OpenWith(path string, opts OpenOptions) (Scanner, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("txn: open %s: %w", path, err)
	}
	var hdr [4]byte
	_, rerr := io.ReadFull(f, hdr[:])
	f.Close()
	if rerr != nil {
		return nil, fmt.Errorf("txn: read magic of %s: %w", path, rerr)
	}
	switch binary.BigEndian.Uint32(hdr[:]) {
	case fileMagic:
		return OpenFile(path)
	case columnarMagic:
		return OpenColumnarWith(path, opts)
	}
	return nil, fmt.Errorf("txn: %s is not a transaction file (unknown magic)", path)
}
