package txn

import (
	"pgarm/internal/item"
	"pgarm/internal/taxonomy"
)

// Predicate is a per-pass block skip test built from the live candidate set
// C_k. Match(m) answers "could any transaction in block m support any current
// candidate?" using only the block's directory entry — no I/O.
//
// Skip-correctness argument. A candidate c is supported by transaction t iff
// c ⊆ closure(t), the ancestor extension of t (the paper's t'). The block's
// filter summarizes S = ∪_{t ∈ block} closure(t): every member of S was
// inserted into the bloom filter and lies within [MinItem, MaxItem] at write
// time. MayContain(x) == false therefore proves x ∉ S, hence x ∉ closure(t)
// for every t in the block (a definite negative; bloom false positives only
// ever flip the answer toward true). If every candidate c ∈ C_k has at least
// one item x with x ∉ S, then no c is a subset of any closure(t) in the
// block, so the block contributes nothing to any support count — no local
// increment, no duplicated-candidate count, and no count-support unit shipped
// to a peer, since all of those are derived from candidate-filtered
// extensions of the block's transactions. Skipping the block is then exact,
// not approximate: every algorithm's counts are bit-identical with and
// without the skip, at any worker count, because the predicate is built from
// the full candidate set the pass counts (or, for NPGM, from exactly the
// fragment the re-scan counts).
//
// The predicate records the mining taxonomy's fingerprint; Match refuses to
// skip blocks whose file was written under a different hierarchy (different
// closures ⇒ the filter proves nothing), so a stale file degrades to a full
// scan instead of wrong results.
//
// Match memoizes per-item verdicts for the block under test, so it is NOT
// safe for concurrent use; give each concurrent scan its own Clone (the
// candidate itemsets themselves are shared read-only).
type Predicate struct {
	fingerprint uint64
	cands       [][]item.Item
	memo        []uint8 // per-item verdict for the current Match call
	touched     []item.Item
}

const (
	predUnknown = uint8(0)
	predMaybe   = uint8(1)
	predAbsent  = uint8(2)
)

// NewPredicate builds the pass predicate for candidate set cands under tax.
// cands is retained and must stay immutable for the predicate's lifetime.
func NewPredicate(tax *taxonomy.Taxonomy, cands [][]item.Item) *Predicate {
	n := 0
	var fp uint64
	if tax != nil {
		n = tax.NumItems()
		fp = tax.Fingerprint()
	}
	for _, c := range cands {
		for _, x := range c {
			if int(x) >= n {
				n = int(x) + 1
			}
		}
	}
	return &Predicate{
		fingerprint: fp,
		cands:       cands,
		memo:        make([]uint8, n),
		touched:     make([]item.Item, 0, 64),
	}
}

// Clone returns a predicate sharing the candidate set but owning a private
// memo, so each scan worker can Match concurrently. Clone of nil is nil.
func (p *Predicate) Clone() *Predicate {
	if p == nil {
		return nil
	}
	return &Predicate{
		fingerprint: p.fingerprint,
		cands:       p.cands,
		memo:        make([]uint8, len(p.memo)),
		touched:     make([]item.Item, 0, 64),
	}
}

// NumCandidates returns the size of the candidate set behind the predicate.
func (p *Predicate) NumCandidates() int {
	if p == nil {
		return 0
	}
	return len(p.cands)
}

// Match reports whether block m must be scanned: true unless the filter
// proves that no candidate can be supported by any transaction in the block.
// A nil predicate matches everything.
func (p *Predicate) Match(m *BlockMeta) bool {
	if p == nil {
		return true
	}
	if m.fingerprint != p.fingerprint {
		return true // filter built over a different hierarchy: never skip
	}
	if len(p.cands) == 0 {
		return false // nothing to count: every block is irrelevant
	}
	for _, x := range p.touched {
		p.memo[x] = predUnknown
	}
	p.touched = p.touched[:0]
	for _, c := range p.cands {
		supported := true
		for _, x := range c {
			v := p.memo[x]
			if v == predUnknown {
				if m.MayContain(x) {
					v = predMaybe
				} else {
					v = predAbsent
				}
				p.memo[x] = v
				p.touched = append(p.touched, x)
			}
			if v == predAbsent {
				supported = false
				break
			}
		}
		if supported {
			return true
		}
	}
	return false
}

// ScanFiltered scans src with the per-pass predicate applied at block
// granularity when src supports it, accumulating skip counters into st; a
// source without blocks (in-memory DB, row file) degrades to a plain full
// scan. This is the single-threaded entry point for the sequential miners;
// the parallel runtime shards blocks across workers via driver.ScanTxnShards
// instead.
func ScanFiltered(src Scanner, pred *Predicate, st *ScanStats, fn func(Transaction) error) error {
	bs, ok := src.(BlockScanner)
	if !ok {
		return src.Scan(fn)
	}
	return bs.ScanBlocks(BlockScanOptions{Pred: pred, Stats: st}, func(b Block) error {
		for _, t := range b.Txns {
			if err := fn(t); err != nil {
				return err
			}
		}
		return nil
	})
}
