package txn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"pgarm/internal/item"
	"pgarm/internal/taxonomy"
	"pgarm/internal/wire"
)

// Out-of-core partition writers. WriteFile and WriteColumnar take a fully
// materialized DB; the writers here accept one transaction at a time so a
// generator (or any other unbounded source) can spill paper-scale partitions
// to disk in constant memory. Both produce files byte-identical to their
// whole-DB counterparts for the same transaction sequence (asserted by
// TestRowWriterByteIdentity / TestColumnarWriterByteIdentity).

// RowWriter streams transactions into a row-format ("PGTX") file. The format
// carries the transaction count up front, before the count is known, so the
// encoded body is spilled to a temporary file in the destination directory
// and stitched behind the final header at Close.
//
// Append validates exactly as WriteFile does (strictly ascending TIDs,
// canonical itemsets). Errors are sticky: after any failure every call
// reports it and Close removes the temporary spill without creating path.
type RowWriter struct {
	path    string
	tmp     *os.File
	w       *bufio.Writer
	count   int64
	prevTID int64
	first   bool
	err     error
}

// NewRowWriter creates a streaming row-format writer targeting path. The
// destination is not created (or truncated) until Close succeeds.
func NewRowWriter(path string) (*RowWriter, error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".pgtx-spill-*")
	if err != nil {
		return nil, fmt.Errorf("txn: create spill for %s: %w", path, err)
	}
	return &RowWriter{
		path:  path,
		tmp:   tmp,
		w:     bufio.NewWriterSize(tmp, 1<<20),
		first: true,
	}, nil
}

// Append encodes one transaction into the spill.
func (rw *RowWriter) Append(t Transaction) error {
	if rw.err != nil {
		return rw.err
	}
	if t.TID < 0 || (!rw.first && t.TID <= rw.prevTID) {
		return rw.fail(fmt.Errorf("txn: write %s: TIDs not strictly ascending: %d after %d", rw.path, t.TID, rw.prevTID))
	}
	if !item.IsSorted(t.Items) {
		return rw.fail(fmt.Errorf("txn: write %s: transaction %d items not canonical", rw.path, t.TID))
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := rw.w.Write(buf[:n])
		return err
	}
	if err := put(uint64(t.TID - rw.prevTID)); err != nil {
		return rw.fail(fmt.Errorf("txn: write %s: %w", rw.path, err))
	}
	rw.prevTID, rw.first = t.TID, false
	if err := put(uint64(len(t.Items))); err != nil {
		return rw.fail(fmt.Errorf("txn: write %s: %w", rw.path, err))
	}
	prev := item.Item(0)
	for i, x := range t.Items {
		d := uint64(x - prev)
		if i == 0 {
			d = uint64(x)
		}
		if err := put(d); err != nil {
			return rw.fail(fmt.Errorf("txn: write %s: %w", rw.path, err))
		}
		prev = x
	}
	rw.count++
	return nil
}

// Count returns the number of transactions appended so far.
func (rw *RowWriter) Count() int64 { return rw.count }

func (rw *RowWriter) fail(err error) error {
	rw.err = err
	return err
}

// Close finalizes the destination file: header (magic + count) followed by
// the spilled body. On any error — sticky or during finalization — the spill
// is removed and the destination left uncreated.
func (rw *RowWriter) Close() (err error) {
	if rw.tmp == nil {
		return rw.err
	}
	tmp := rw.tmp
	rw.tmp = nil
	defer func() {
		tmp.Close()
		os.Remove(tmp.Name())
	}()
	if rw.err != nil {
		return rw.err
	}
	if err := rw.w.Flush(); err != nil {
		return rw.fail(fmt.Errorf("txn: flush spill of %s: %w", rw.path, err))
	}
	if _, err := tmp.Seek(0, io.SeekStart); err != nil {
		return rw.fail(fmt.Errorf("txn: rewind spill of %s: %w", rw.path, err))
	}
	f, err := os.Create(rw.path)
	if err != nil {
		return rw.fail(fmt.Errorf("txn: create %s: %w", rw.path, err))
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var hdr [4 + binary.MaxVarintLen64]byte
	binary.BigEndian.PutUint32(hdr[:4], fileMagic)
	n := 4 + binary.PutUvarint(hdr[4:], uint64(rw.count))
	_, werr := w.Write(hdr[:n])
	if werr == nil {
		_, werr = io.Copy(w, bufio.NewReaderSize(tmp, 1<<20))
	}
	if werr == nil {
		werr = w.Flush()
	}
	if cerr := f.Close(); werr == nil && cerr != nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(rw.path)
		return rw.fail(fmt.Errorf("txn: write %s: %w", rw.path, werr))
	}
	return nil
}

// ColumnarWriter streams transactions into a columnar ("PGTC") file. Blocks
// are encoded and written as soon as they fill; only the block under
// construction and the (small) directory are held in memory, so the peak
// footprint is O(txnsPerBlock + blocks) regardless of partition size. The
// header is written up front and the directory + trailer at Close, matching
// WriteColumnar's layout byte for byte.
//
// Append clones item data into an internal arena, so callers may reuse their
// Items slices. Errors are sticky; Close removes the partial file on failure.
type ColumnarWriter struct {
	path         string
	tax          *taxonomy.Taxonomy
	txnsPerBlock int

	f      *os.File
	w      *bufio.Writer
	offset int64

	// Block under construction: TIDs plus [start,end) item ranges into the
	// arena (ranges, not slices, so arena growth cannot invalidate them).
	tids  []int64
	spans [][2]int
	arena []item.Item

	seen    []bool
	closure []item.Item
	body    []byte
	entries []byte // directory entries, the block count is prepended at Close
	blocks  int
	count   int64

	prevTID  int64
	firstTxn bool
	err      error
}

// NewColumnarWriter creates a streaming columnar writer targeting path. tax
// and txnsPerBlock have WriteColumnar's semantics (nil tax = literal-item
// filters with a zero fingerprint; txnsPerBlock <= 0 selects the default).
func NewColumnarWriter(path string, tax *taxonomy.Taxonomy, txnsPerBlock int) (*ColumnarWriter, error) {
	if txnsPerBlock <= 0 {
		txnsPerBlock = DefaultTxnsPerBlock
	}
	if txnsPerBlock > maxTxnsPerBlock {
		return nil, fmt.Errorf("txn: txnsPerBlock %d exceeds %d", txnsPerBlock, maxTxnsPerBlock)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("txn: create %s: %w", path, err)
	}
	cw := &ColumnarWriter{
		path:         path,
		tax:          tax,
		txnsPerBlock: txnsPerBlock,
		f:            f,
		w:            bufio.NewWriterSize(f, 1<<20),
		offset:       columnarHeaderSize,
		firstTxn:     true,
	}
	if tax != nil {
		cw.seen = make([]bool, tax.NumItems())
	}
	var hdr [columnarHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], columnarMagic)
	hdr[4] = columnarVersion
	var fp uint64
	if tax != nil {
		fp = tax.Fingerprint()
	}
	binary.BigEndian.PutUint64(hdr[5:13], fp)
	if _, err := cw.w.Write(hdr[:]); err != nil {
		cw.abort()
		return nil, fmt.Errorf("txn: write %s: %w", path, err)
	}
	return cw, nil
}

// Append buffers one transaction, flushing a full block to disk.
func (cw *ColumnarWriter) Append(t Transaction) error {
	if cw.err != nil {
		return cw.err
	}
	if t.TID < 0 || (!cw.firstTxn && t.TID <= cw.prevTID) {
		return cw.fail(fmt.Errorf("txn: write %s: TIDs not strictly ascending: %d after %d", cw.path, t.TID, cw.prevTID))
	}
	cw.prevTID, cw.firstTxn = t.TID, false
	if !item.IsSorted(t.Items) {
		return cw.fail(fmt.Errorf("txn: write %s: transaction %d items not canonical", cw.path, t.TID))
	}
	start := len(cw.arena)
	cw.arena = append(cw.arena, t.Items...)
	cw.tids = append(cw.tids, t.TID)
	cw.spans = append(cw.spans, [2]int{start, len(cw.arena)})
	cw.count++
	if len(cw.tids) == cw.txnsPerBlock {
		if err := cw.flushBlock(); err != nil {
			return cw.fail(fmt.Errorf("txn: write %s: %w", cw.path, err))
		}
	}
	return nil
}

// Count returns the number of transactions appended so far.
func (cw *ColumnarWriter) Count() int64 { return cw.count }

// flushBlock encodes the buffered transactions as one block — closure + skip
// filter, three columns, directory entry — mirroring writeColumnar exactly.
func (cw *ColumnarWriter) flushBlock() error {
	n := len(cw.tids)
	cw.closure = cw.closure[:0]
	for _, sp := range cw.spans {
		for _, x := range cw.arena[sp[0]:sp[1]] {
			if cw.tax != nil {
				for cur := x; cur != item.None; cur = cw.tax.Parent(cur) {
					if !cw.seen[cur] {
						cw.seen[cur] = true
						cw.closure = append(cw.closure, cur)
					}
				}
			} else {
				if int(x) >= len(cw.seen) {
					grown := make([]bool, int(x)+1)
					copy(grown, cw.seen)
					cw.seen = grown
				}
				if !cw.seen[x] {
					cw.seen[x] = true
					cw.closure = append(cw.closure, x)
				}
			}
		}
	}
	for _, x := range cw.closure {
		cw.seen[x] = false
	}
	minIt, maxIt := item.Item(1), item.Item(0) // min > max: empty closure
	for i, x := range cw.closure {
		if i == 0 || x < minIt {
			minIt = x
		}
		if i == 0 || x > maxIt {
			maxIt = x
		}
	}
	var bloom []byte
	var mask uint32
	if len(cw.closure) > 0 {
		bits := bloomBitsFor(len(cw.closure))
		mask = bits - 1
		bloom = make([]byte, bits/8)
		for _, x := range cw.closure {
			bloomSet(bloom, mask, x)
		}
	}

	body := cw.body[:0]
	for _, sp := range cw.spans {
		body = wire.AppendUvarint(body, uint64(sp[1]-sp[0]))
	}
	prev := cw.tids[0]
	for _, tid := range cw.tids[1:] {
		body = wire.AppendUvarint(body, uint64(tid-prev))
		prev = tid
	}
	for _, sp := range cw.spans {
		pi := item.Item(0)
		for i, x := range cw.arena[sp[0]:sp[1]] {
			d := uint64(x - pi)
			if i == 0 {
				d = uint64(x)
			}
			body = wire.AppendUvarint(body, d)
			pi = x
		}
	}
	cw.body = body
	if _, err := cw.w.Write(body); err != nil {
		return err
	}

	cw.entries = wire.AppendUvarint(cw.entries, uint64(cw.offset))
	cw.entries = wire.AppendUvarint(cw.entries, uint64(len(body)))
	cw.entries = wire.AppendUvarint(cw.entries, uint64(n))
	cw.entries = wire.AppendUvarint(cw.entries, uint64(cw.tids[0]))
	cw.entries = wire.AppendUvarint(cw.entries, uint64(minIt))
	cw.entries = wire.AppendUvarint(cw.entries, uint64(maxIt))
	cw.entries = wire.AppendUvarint(cw.entries, uint64(len(bloom)))
	cw.entries = append(cw.entries, bloom...)
	cw.offset += int64(len(body))
	cw.blocks++

	cw.tids = cw.tids[:0]
	cw.spans = cw.spans[:0]
	cw.arena = cw.arena[:0]
	return nil
}

func (cw *ColumnarWriter) fail(err error) error {
	cw.err = err
	return err
}

// abort closes and removes the partial output.
func (cw *ColumnarWriter) abort() {
	if cw.f != nil {
		cw.f.Close()
		os.Remove(cw.path)
		cw.f = nil
	}
}

// Close flushes the final partial block and writes the directory and
// trailer. On any error — sticky or during finalization — the partial file
// is removed.
func (cw *ColumnarWriter) Close() error {
	if cw.f == nil {
		return cw.err
	}
	if cw.err != nil {
		cw.abort()
		return cw.err
	}
	werr := func() error {
		if len(cw.tids) > 0 {
			if err := cw.flushBlock(); err != nil {
				return err
			}
		}
		dir := wire.AppendUvarint(nil, uint64(cw.blocks))
		dir = append(dir, cw.entries...)
		if _, err := cw.w.Write(dir); err != nil {
			return err
		}
		var tr [columnarTrailerSize]byte
		binary.BigEndian.PutUint64(tr[0:8], uint64(cw.offset))
		binary.BigEndian.PutUint64(tr[8:16], uint64(len(dir)))
		binary.BigEndian.PutUint32(tr[16:20], crc32.ChecksumIEEE(dir))
		binary.BigEndian.PutUint32(tr[20:24], columnarMagic)
		if _, err := cw.w.Write(tr[:]); err != nil {
			return err
		}
		return cw.w.Flush()
	}()
	f := cw.f
	cw.f = nil
	if cerr := f.Close(); werr == nil && cerr != nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(cw.path)
		return cw.fail(fmt.Errorf("txn: write %s: %w", cw.path, werr))
	}
	return nil
}
