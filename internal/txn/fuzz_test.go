package txn

import (
	"os"
	"path/filepath"
	"testing"

	"pgarm/internal/item"
	"pgarm/internal/taxonomy"
)

// checkScan enforces the decoder's safety contract on a successfully opened
// file of either format: scanning must never panic, and when it succeeds it
// must deliver exactly the declared number of transactions, with strictly
// ascending TIDs and canonical (sorted, deduplicated, non-negative) baskets.
// Corrupt input is allowed to error — it is never allowed to lie.
func checkScan(t *testing.T, f interface {
	Scanner
	Len() int
}) {
	n := 0
	lastTID := int64(-1 << 62)
	err := f.Scan(func(tr Transaction) error {
		n++
		if tr.TID <= lastTID {
			t.Fatalf("TIDs not ascending: %d after %d", tr.TID, lastTID)
		}
		lastTID = tr.TID
		for i, x := range tr.Items {
			if x < 0 {
				t.Fatalf("negative item %d", x)
			}
			if i > 0 && tr.Items[i-1] >= x {
				t.Fatalf("non-canonical basket %v", tr.Items)
			}
		}
		return nil
	})
	if err == nil && n != f.Len() {
		t.Fatalf("scan silently delivered %d of %d declared transactions", n, f.Len())
	}
}

func fuzzDB() *DB {
	db := &DB{}
	for i := 0; i < 20; i++ {
		db.Append(Transaction{
			TID:   int64(i*3 + 1),
			Items: []item.Item{item.Item(i % 5), item.Item(10 + i), item.Item(500)},
		})
	}
	return db
}

func FuzzReadFile(f *testing.F) {
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.ptx")
	if err := WriteFile(seedPath, fuzzDB()); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(seed[:8])
	f.Add([]byte{})
	// Regression: a zero mid-file TID delta once decoded as a duplicate TID
	// instead of an error.
	f.Add([]byte("PGTX00\x040000\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "in.ptx")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		fl, err := OpenFile(path)
		if err != nil {
			return
		}
		checkScan(t, fl)
		// ReadFile shares the decoder; it must agree or fail cleanly.
		if db, err := ReadFile(path); err == nil && db.Len() != fl.Len() {
			t.Fatalf("ReadFile loaded %d, header declares %d", db.Len(), fl.Len())
		}
	})
}

func FuzzColumnarOpen(f *testing.F) {
	dir := f.TempDir()
	tax := taxonomy.MustBalanced(600, 3, 4)
	for i, block := range []int{1, 4, 256} {
		path := filepath.Join(dir, "seed.ptc")
		var hier *taxonomy.Taxonomy
		if i%2 == 0 {
			hier = tax
		}
		if err := WriteColumnar(path, fuzzDB(), hier, block); err != nil {
			f.Fatal(err)
		}
		seed, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(seed)
		f.Add(seed[:len(seed)*2/3])
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "in.ptc")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		cf, err := OpenColumnar(path)
		if err != nil {
			return
		}
		checkScan(t, cf)
		// The generic opener must accept exactly what OpenColumnar accepts.
		if _, err := Open(path); err != nil {
			t.Fatalf("Open rejected a file OpenColumnar accepted: %v", err)
		}
	})
}
