package txn_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"pgarm/internal/driver"
	"pgarm/internal/gen"
	"pgarm/internal/txn"
)

// benchFiles generates one smallish R30F5 sample and materializes it in both
// on-disk formats, so the row and columnar arms scan identical data.
func benchFiles(b *testing.B) (rowPath, colPath string) {
	b.Helper()
	p := gen.R30F5()
	p.NumTxns = 8000
	ds, err := gen.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	rowPath = filepath.Join(dir, "part.ptx")
	if err := txn.WriteFile(rowPath, ds.DB); err != nil {
		b.Fatal(err)
	}
	colPath = filepath.Join(dir, "part.ptc")
	if err := txn.WriteColumnar(colPath, ds.DB, ds.Taxonomy, txn.DefaultTxnsPerBlock); err != nil {
		b.Fatal(err)
	}
	return rowPath, colPath
}

func benchScan(b *testing.B, path string, workers int) {
	b.Helper()
	src, err := txn.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	want := src.(interface{ Len() int }).Len()
	sinks := make([]int64, workers)
	b.SetBytes(fi.Size())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for w := range sinks {
			sinks[w] = 0
		}
		err := driver.ScanTxnShards(src, nil, workers, driver.ShardObs{}, nil,
			func(w int, t txn.Transaction) error {
				sinks[w]++
				return nil
			})
		if err != nil {
			b.Fatal(err)
		}
		got := int64(0)
		for _, n := range sinks {
			got += n
		}
		if got != int64(want) {
			b.Fatalf("scanned %d of %d transactions", got, want)
		}
	}
}

// BenchmarkScanRow and BenchmarkScanColumnar compare full-decode throughput
// of the two partition formats over identical data; bytes/op is the on-disk
// partition size, so MB/s numbers are directly comparable between formats.
func BenchmarkScanRow(b *testing.B) {
	rowPath, _ := benchFiles(b)
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchScan(b, rowPath, w) })
	}
}

func BenchmarkScanColumnar(b *testing.B) {
	_, colPath := benchFiles(b)
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchScan(b, colPath, w) })
	}
}
