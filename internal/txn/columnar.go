package txn

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"pgarm/internal/item"
	"pgarm/internal/taxonomy"
	"pgarm/internal/wire"
)

// Block-compressed columnar transaction format, the second on-disk partition
// layout ("PGTC"). Where the row format ("PGTX") interleaves one transaction
// after another, the columnar format groups a fixed number of transactions
// into independently decodable blocks and stores each block column-separated:
//
//	header:   magic uint32 "PGTC" | version byte | taxonomy fingerprint uint64
//	blocks:   block 0 | block 1 | ... (each at the offset its directory
//	          entry records; nothing else between blocks)
//	directory: numBlocks uvarint, then per block:
//	            offset   uvarint  (file offset of the block body)
//	            length   uvarint  (block body bytes)
//	            count    uvarint  (transactions in the block)
//	            firstTID uvarint  (absolute TID of the block's first txn)
//	            minItem  uvarint  ┐ bounds over the block's ancestor
//	            maxItem  uvarint  ┘ closure; min > max encodes "empty"
//	            bloomBytes uvarint, then that many raw filter bytes
//	trailer:  dirOffset uint64 | dirLen uint64 | crc32(directory) uint32 |
//	          end magic uint32 "PGTC"   (24 bytes, fixed, at EOF)
//
// One block body is three delta+varint columns on the internal/wire codecs:
//
//	sizes column: count × uvarint  (basket sizes)
//	TID column:   count-1 × uvarint (TID deltas; txn 0's TID is the
//	              directory's firstTID)
//	item column:  per transaction, first item absolute then ascending
//	              deltas — the same canonical coding as the row format,
//	              but with all varint streams of a kind adjacent
//
// Each directory entry carries a skip filter over the block's item closure:
// the set of items that appear in some transaction of the block PLUS all
// their taxonomy ancestors up to the root. A pass predicate built from the
// live candidate set (see Predicate) consults min/max and the bloom filter to
// prove "no transaction in this block can support any current candidate"
// before the block is ever read or decoded — the disk analogue of the
// in-memory engines' membership pre-filter. Because the filter summarizes the
// closure, not just the literal items, the proof holds under the paper's
// extended-transaction semantics. The taxonomy fingerprint in the header ties
// the filters to the hierarchy they were built over.
const (
	columnarMagic   = 0x50475443 // "PGTC"
	columnarVersion = 1

	columnarHeaderSize  = 4 + 1 + 8
	columnarTrailerSize = 8 + 8 + 4 + 4

	// DefaultTxnsPerBlock is the default block granularity: small enough
	// that late passes — few candidates over low-support items — can prove
	// whole blocks irrelevant, large enough that per-block directory
	// overhead stays under a percent of the data.
	DefaultTxnsPerBlock = 256
	maxTxnsPerBlock     = 1 << 20

	// Bloom sizing: ~8 bits and 3 probes per distinct closure item gives a
	// ~3% false-positive rate; power-of-two bit counts keep probing to a
	// mask. False positives only cost a wasted decode, never correctness.
	bloomBitsPerItem = 8
	bloomProbes      = 3
	minBloomBits     = 256
	maxBloomBits     = 1 << 16
)

// splitmix64 is the bloom filter's base hash; two independent 32-bit halves
// drive double hashing (Kirsch–Mitzenmacher).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func bloomSet(bloom []byte, mask uint32, x item.Item) {
	h := splitmix64(uint64(uint32(x)))
	h1, h2 := uint32(h), uint32(h>>32)|1
	for p := uint32(0); p < bloomProbes; p++ {
		bit := (h1 + p*h2) & mask
		bloom[bit>>3] |= 1 << (bit & 7)
	}
}

func bloomTest(bloom []byte, mask uint32, x item.Item) bool {
	h := splitmix64(uint64(uint32(x)))
	h1, h2 := uint32(h), uint32(h>>32)|1
	for p := uint32(0); p < bloomProbes; p++ {
		bit := (h1 + p*h2) & mask
		if bloom[bit>>3]&(1<<(bit&7)) == 0 {
			return false
		}
	}
	return true
}

// bloomBitsFor picks the filter size for n distinct closure items: the
// smallest power of two covering bloomBitsPerItem bits each, clamped to
// [minBloomBits, maxBloomBits].
func bloomBitsFor(n int) uint32 {
	bits := uint32(minBloomBits)
	for int(bits) < n*bloomBitsPerItem && bits < maxBloomBits {
		bits <<= 1
	}
	return bits
}

// BlockMeta is one block's directory entry: location, shape and skip filter.
// Values are immutable after open; MayContain is safe for concurrent use.
type BlockMeta struct {
	Ordinal  int
	Offset   int64
	Length   int64
	Count    int
	FirstTID int64
	// MinItem/MaxItem bound the block's item closure (items plus all
	// ancestors); MinItem > MaxItem means every transaction is empty.
	MinItem item.Item
	MaxItem item.Item

	fingerprint uint64 // copied from the file header for Predicate.Match
	bloomMask   uint32 // bloom bit count - 1
	bloom       []byte
}

// MayContain reports whether item x may be in the block's closure. False is
// definitive: no transaction in the block contains x or any descendant of x
// (under the taxonomy the file was written with). True may be a bloom false
// positive.
func (m *BlockMeta) MayContain(x item.Item) bool {
	if x < m.MinItem || x > m.MaxItem {
		return false
	}
	if len(m.bloom) == 0 {
		return true
	}
	return bloomTest(m.bloom, m.bloomMask, x)
}

// Block is one decoded block as delivered by ScanBlocks. Txns alias scratch
// buffers owned by the scan: valid only until the callback returns.
type Block struct {
	Ordinal int
	Meta    *BlockMeta
	Txns    []Transaction
}

// ScanStats count what a block-granular scan did and, more importantly, did
// not do.
type ScanStats struct {
	BlocksScanned int64 // blocks read and decoded
	BlocksSkipped int64 // blocks the predicate ruled out before any I/O
	BytesDecoded  int64 // encoded bytes of the decoded blocks
}

// Add folds another stats value in.
func (s *ScanStats) Add(o ScanStats) {
	s.BlocksScanned += o.BlocksScanned
	s.BlocksSkipped += o.BlocksSkipped
	s.BytesDecoded += o.BytesDecoded
}

// BlockScanOptions parameterize one ScanBlocks pass.
type BlockScanOptions struct {
	// Shard/NumShards restrict the scan to blocks whose ordinal o satisfies
	// o % NumShards == Shard, the block-granular analogue of
	// driver.ScanShards' ordinal sharding. NumShards <= 1 scans every block.
	Shard     int
	NumShards int
	// Pred, when non-nil, is consulted per block before any read: blocks it
	// rules out are neither read nor decoded. Pred is used from this scan's
	// goroutine only (Predicate.Match memoizes; clone per concurrent scan).
	Pred *Predicate
	// Stats, when non-nil, receives the scan's counters.
	Stats *ScanStats
}

// BlockScanner is the block-granular scan contract columnar partitions add on
// top of Scanner. driver.ScanTxnShards shards by block — parallelizing decode
// itself — whenever the source implements it.
type BlockScanner interface {
	Scanner
	// NumBlocks returns the number of storage blocks.
	NumBlocks() int
	// ScanBlocks streams decoded blocks to fn in storage order (within the
	// selected shard). A non-nil error from fn aborts the scan and is
	// returned. Block contents alias per-scan scratch: no-retain.
	ScanBlocks(opts BlockScanOptions, fn func(Block) error) error
}

// WriteColumnar writes the database to path in the columnar format,
// txnsPerBlock transactions per block (<= 0 selects DefaultTxnsPerBlock).
// tax supplies the ancestor closure for the skip filters and its fingerprint
// for the header; a nil tax writes filters over the literal items with a zero
// fingerprint, which any taxonomy-carrying predicate refuses to skip on.
// It is a convenience wrapper over the streaming ColumnarWriter.
func WriteColumnar(path string, db *DB, tax *taxonomy.Taxonomy, txnsPerBlock int) error {
	cw, err := NewColumnarWriter(path, tax, txnsPerBlock)
	if err != nil {
		return err
	}
	for _, t := range db.txns {
		if err := cw.Append(t); err != nil {
			cw.Close()
			return err
		}
	}
	return cw.Close()
}

// ColumnarFile is a disk-backed columnar transaction partition. Open parses
// and validates the directory once; every scan opens a private file handle
// and preads only the blocks it needs, so concurrent independent scans (one
// per worker shard) are safe and skipped blocks cost zero I/O.
type ColumnarFile struct {
	path        string
	count       int
	fingerprint uint64
	metas       []BlockMeta

	// data is the whole file mapped read-only when the file was opened with
	// OpenOptions.Mmap (and the platform supports it); nil selects the pread
	// path. With a mapping, block reads are zero-copy slices and skipped
	// blocks never fault a page in.
	data []byte
}

// OpenColumnar validates a columnar transaction file — header, trailer,
// directory checksum, and the internal consistency of every directory entry —
// and returns a BlockScanner over it.
func OpenColumnar(path string) (*ColumnarFile, error) {
	return OpenColumnarWith(path, OpenOptions{})
}

// OpenColumnarWith is OpenColumnar with explicit open options. With
// opts.Mmap the file is mapped read-only once and every scan slices the
// mapping instead of issuing preads; on platforms without mmap (or when the
// mapping fails) it silently falls back to the pread path, so the option is
// always safe to set.
func OpenColumnarWith(path string, opts OpenOptions) (*ColumnarFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("txn: open %s: %w", path, err)
	}
	defer f.Close()
	cf, err := parseColumnar(f)
	if err != nil {
		return nil, fmt.Errorf("txn: %s: %w", path, err)
	}
	cf.path = path
	if opts.Mmap {
		if st, serr := f.Stat(); serr == nil {
			if data, merr := mmapFile(f, st.Size()); merr == nil {
				cf.data = data
			}
		}
	}
	return cf, nil
}

// Mapped reports whether scans read through an mmap'd view of the file.
func (f *ColumnarFile) Mapped() bool { return f.data != nil }

// Close releases the mmap'd view, if any. Scans must not be in flight. A
// pread-mode file holds no resources between scans, so Close is a no-op
// there; calling it is always safe and idempotent.
func (f *ColumnarFile) Close() error {
	if f.data == nil {
		return nil
	}
	data := f.data
	f.data = nil
	return munmapFile(data)
}

func parseColumnar(f *os.File) (*ColumnarFile, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < columnarHeaderSize+columnarTrailerSize {
		return nil, fmt.Errorf("file too short (%d bytes)", size)
	}
	var hdr [columnarHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("read header: %w", err)
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != columnarMagic {
		return nil, fmt.Errorf("not a columnar transaction file (bad magic)")
	}
	if hdr[4] != columnarVersion {
		return nil, fmt.Errorf("unsupported columnar version %d", hdr[4])
	}
	cf := &ColumnarFile{fingerprint: binary.BigEndian.Uint64(hdr[5:13])}

	var tr [columnarTrailerSize]byte
	if _, err := f.ReadAt(tr[:], size-columnarTrailerSize); err != nil {
		return nil, fmt.Errorf("read trailer: %w", err)
	}
	if binary.BigEndian.Uint32(tr[20:24]) != columnarMagic {
		return nil, fmt.Errorf("truncated file (bad end magic)")
	}
	dirOff := binary.BigEndian.Uint64(tr[0:8])
	dirLen := binary.BigEndian.Uint64(tr[8:16])
	if dirOff < columnarHeaderSize || dirLen > uint64(size) ||
		dirOff+dirLen != uint64(size-columnarTrailerSize) {
		return nil, fmt.Errorf("directory bounds [%d,+%d) inconsistent with file size %d", dirOff, dirLen, size)
	}
	dir := make([]byte, dirLen)
	if _, err := f.ReadAt(dir, int64(dirOff)); err != nil {
		return nil, fmt.Errorf("read directory: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(dir), binary.BigEndian.Uint32(tr[16:20]); got != want {
		return nil, fmt.Errorf("directory checksum mismatch (%08x != %08x)", got, want)
	}

	numBlocks, off, err := wire.Uvarint(dir)
	if err != nil {
		return nil, fmt.Errorf("directory: %w", err)
	}
	if numBlocks > uint64(len(dir)) { // each entry takes >= 7 bytes
		return nil, fmt.Errorf("directory block count %d exceeds payload", numBlocks)
	}
	cf.metas = make([]BlockMeta, 0, numBlocks)
	nextOff := uint64(columnarHeaderSize)
	prevTID := int64(0)
	u := func() (uint64, error) {
		v, n, err := wire.Uvarint(dir[off:])
		off += n
		return v, err
	}
	for b := uint64(0); b < numBlocks; b++ {
		blockOff, err := u()
		if err != nil {
			return nil, fmt.Errorf("directory entry %d: %w", b, err)
		}
		length, err := u()
		if err != nil {
			return nil, fmt.Errorf("directory entry %d: %w", b, err)
		}
		count, err := u()
		if err != nil {
			return nil, fmt.Errorf("directory entry %d: %w", b, err)
		}
		firstTID, err := u()
		if err != nil {
			return nil, fmt.Errorf("directory entry %d: %w", b, err)
		}
		minIt, err := u()
		if err != nil {
			return nil, fmt.Errorf("directory entry %d: %w", b, err)
		}
		maxIt, err := u()
		if err != nil {
			return nil, fmt.Errorf("directory entry %d: %w", b, err)
		}
		bloomBytes, err := u()
		if err != nil {
			return nil, fmt.Errorf("directory entry %d: %w", b, err)
		}
		// Blocks must tile [header, directory) exactly, in order: that makes
		// every block independently locatable and rules out overlapping or
		// dangling extents in corrupt directories.
		if blockOff != nextOff || length == 0 || blockOff+length > dirOff {
			return nil, fmt.Errorf("directory entry %d: block extent [%d,+%d) out of place", b, blockOff, length)
		}
		nextOff = blockOff + length
		// The sizes column alone needs one byte per transaction, so a count
		// beyond the block's byte length is corruption; rejecting it here also
		// bounds the decoder's count-sized scratch by the block size.
		if count == 0 || count > maxTxnsPerBlock || count > length {
			return nil, fmt.Errorf("directory entry %d: implausible block count %d", b, count)
		}
		// TIDs are strictly ascending file-wide and in-block deltas are
		// >= 1, so block b's first TID must clear the previous block's
		// minimum possible last TID (its first TID + count - 1).
		if firstTID > math.MaxInt64-count || (b > 0 && int64(firstTID) < prevTID) {
			return nil, fmt.Errorf("directory entry %d: first TID %d not ascending", b, firstTID)
		}
		prevTID = int64(firstTID) + int64(count)
		if minIt > math.MaxInt32 || maxIt > math.MaxInt32 {
			return nil, fmt.Errorf("directory entry %d: item bound out of range", b)
		}
		if bloomBytes > maxBloomBits/8 || uint64(off)+bloomBytes > uint64(len(dir)) {
			return nil, fmt.Errorf("directory entry %d: bloom length %d exceeds payload", b, bloomBytes)
		}
		if bloomBytes != 0 && (bloomBytes*8&(bloomBytes*8-1)) != 0 {
			return nil, fmt.Errorf("directory entry %d: bloom bit count %d not a power of two", b, bloomBytes*8)
		}
		m := BlockMeta{
			Ordinal:     int(b),
			Offset:      int64(blockOff),
			Length:      int64(length),
			Count:       int(count),
			FirstTID:    int64(firstTID),
			MinItem:     item.Item(minIt),
			MaxItem:     item.Item(maxIt),
			fingerprint: cf.fingerprint,
		}
		if bloomBytes > 0 {
			m.bloom = dir[off : off+int(bloomBytes) : off+int(bloomBytes)]
			m.bloomMask = uint32(bloomBytes*8) - 1
			off += int(bloomBytes)
		}
		cf.metas = append(cf.metas, m)
		cf.count += int(count)
	}
	if nextOff != dirOff {
		return nil, fmt.Errorf("blocks end at %d but directory starts at %d", nextOff, dirOff)
	}
	if off != len(dir) {
		return nil, fmt.Errorf("%d trailing bytes after directory entries", len(dir)-off)
	}
	return cf, nil
}

// Path returns the backing file path.
func (f *ColumnarFile) Path() string { return f.path }

// Len returns the total number of transactions (sum of block counts).
func (f *ColumnarFile) Len() int { return f.count }

// NumBlocks returns the number of storage blocks.
func (f *ColumnarFile) NumBlocks() int { return len(f.metas) }

// BlockMeta returns block i's directory entry. Shared and immutable.
func (f *ColumnarFile) BlockMeta(i int) *BlockMeta { return &f.metas[i] }

// Fingerprint returns the taxonomy fingerprint recorded at write time.
func (f *ColumnarFile) Fingerprint() uint64 { return f.fingerprint }

// Scan streams all transactions in storage order, satisfying Scanner. Like
// File.Scan, the Transaction's Items alias per-scan scratch: no-retain.
func (f *ColumnarFile) Scan(fn func(Transaction) error) error {
	// The decoder guarantees strictly ascending TIDs inside each block and the
	// directory bounds each block's first TID, but only a sequential pass can
	// see a block's true last TID overlap its successor — check it here.
	last, seen := int64(0), false
	return f.ScanBlocks(BlockScanOptions{}, func(b Block) error {
		for _, t := range b.Txns {
			if seen && t.TID <= last {
				return fmt.Errorf("txn: %s block %d: TID %d not ascending across blocks (corrupt file?)", f.path, b.Ordinal, t.TID)
			}
			last, seen = t.TID, true
			if err := fn(t); err != nil {
				return err
			}
		}
		return nil
	})
}

// ScanBlocks implements BlockScanner: it reads and decodes exactly the
// blocks in this shard that the predicate cannot rule out, reusing one set of
// scratch buffers across blocks. A mapped file serves each block as a
// zero-copy slice of the mapping; otherwise every scan opens a private
// handle and preads, so concurrent shard scans never share a file offset.
func (f *ColumnarFile) ScanBlocks(opts BlockScanOptions, fn func(Block) error) error {
	var file *os.File
	if f.data == nil {
		var err error
		file, err = os.Open(f.path)
		if err != nil {
			return fmt.Errorf("txn: open %s: %w", f.path, err)
		}
		defer file.Close()
	}
	shard, nShards := opts.Shard, opts.NumShards
	if nShards <= 1 {
		shard, nShards = 0, 1
	}
	var dec blockDecoder
	var buf []byte
	for i := range f.metas {
		if i%nShards != shard {
			continue
		}
		m := &f.metas[i]
		if opts.Pred != nil && !opts.Pred.Match(m) {
			if opts.Stats != nil {
				opts.Stats.BlocksSkipped++
			}
			continue
		}
		if f.data != nil {
			buf = f.data[m.Offset : m.Offset+m.Length : m.Offset+m.Length]
		} else {
			if int64(cap(buf)) < m.Length {
				buf = make([]byte, m.Length)
			}
			buf = buf[:m.Length]
			if _, err := file.ReadAt(buf, m.Offset); err != nil {
				return fmt.Errorf("txn: %s block %d: read: %w", f.path, i, err)
			}
		}
		txns, err := dec.decode(m, buf)
		if err != nil {
			return fmt.Errorf("txn: %s block %d: %w", f.path, i, err)
		}
		if opts.Stats != nil {
			opts.Stats.BlocksScanned++
			opts.Stats.BytesDecoded += m.Length
		}
		if err := fn(Block{Ordinal: i, Meta: m, Txns: txns}); err != nil {
			return err
		}
	}
	return nil
}

// blockDecoder holds the reusable scratch one scan decodes every block into:
// a transaction slice, the sizes column, and a single item arena the
// transactions' itemsets point into. Steady-state decode allocates nothing.
type blockDecoder struct {
	txns  []Transaction
	sizes []int
	arena []item.Item
}

// decode parses one block body against its directory entry. Beyond the
// format itself it enforces every invariant the writer guarantees — exact
// column lengths, ascending TIDs, canonical in-range itemsets, items inside
// the closure bounds, no trailing bytes — so a corrupt block is an error,
// never a silently short or wrong scan.
func (d *blockDecoder) decode(m *BlockMeta, buf []byte) ([]Transaction, error) {
	n := m.Count
	if cap(d.txns) < n {
		d.txns = make([]Transaction, n)
		d.sizes = make([]int, n)
	}
	txns := d.txns[:n]
	sizes := d.sizes[:n]
	off := 0
	u := func() (uint64, bool) {
		v, used, err := wire.Uvarint(buf[off:])
		if err != nil {
			return 0, false
		}
		off += used
		return v, true
	}

	// Sizes column; the total sizes the item arena.
	total := 0
	for i := 0; i < n; i++ {
		sz, ok := u()
		if !ok {
			return nil, fmt.Errorf("truncated sizes column at txn %d", i)
		}
		if sz > maxBasketSize {
			return nil, fmt.Errorf("implausible basket size %d", sz)
		}
		sizes[i] = int(sz)
		total += int(sz)
	}
	// Every item takes at least one encoded byte, so the item column cannot
	// hold more items than the block has bytes left; rejecting impossible
	// totals here keeps the arena allocation bounded by the block size.
	if total > len(buf)-off {
		return nil, fmt.Errorf("item total %d exceeds block capacity", total)
	}

	// TID column: n-1 deltas from the directory's firstTID.
	tid := m.FirstTID
	txns[0].TID = tid
	for i := 1; i < n; i++ {
		dt, ok := u()
		if !ok {
			return nil, fmt.Errorf("truncated TID column at txn %d", i)
		}
		if dt == 0 || dt > uint64(math.MaxInt64-tid) {
			return nil, fmt.Errorf("non-canonical TID delta at txn %d", i)
		}
		tid += int64(dt)
		txns[i].TID = tid
	}

	// Item column into the arena; itemsets are sub-slices of it.
	if cap(d.arena) < total {
		d.arena = make([]item.Item, total)
	}
	arena := d.arena[:0]
	for i := 0; i < n; i++ {
		start := len(arena)
		prev := item.Item(0)
		for j := 0; j < sizes[i]; j++ {
			dv, ok := u()
			if !ok {
				return nil, fmt.Errorf("truncated item column at txn %d", i)
			}
			if j == 0 {
				if dv > math.MaxInt32 {
					return nil, fmt.Errorf("item out of range at txn %d", i)
				}
				prev = item.Item(dv)
			} else {
				if dv == 0 || dv > uint64(math.MaxInt32-int64(prev)) {
					return nil, fmt.Errorf("non-canonical item delta at txn %d", i)
				}
				prev += item.Item(dv)
			}
			if prev < m.MinItem || prev > m.MaxItem {
				return nil, fmt.Errorf("item %d outside block closure bounds at txn %d", prev, i)
			}
			arena = append(arena, prev)
		}
		txns[i].Items = arena[start:len(arena):len(arena)]
	}
	d.arena = arena[:0]
	if off != len(buf) {
		return nil, fmt.Errorf("%d trailing bytes in block body", len(buf)-off)
	}
	return txns, nil
}
