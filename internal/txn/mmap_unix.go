//go:build unix

package txn

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps the whole file read-only and shared. The mapping outlives the
// descriptor (POSIX keeps pages valid after close), so the caller may close f
// immediately; the bytes stay valid until munmapFile.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size == 0 {
		return nil, fmt.Errorf("txn: empty file")
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("txn: file size %d exceeds address space", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("txn: mmap: %w", err)
	}
	return data, nil
}

func munmapFile(data []byte) error {
	return syscall.Munmap(data)
}
