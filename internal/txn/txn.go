// Package txn implements the transaction database substrate: transaction
// values, in-memory partitions, a compact binary on-disk format, and the
// horizontal partitioner that spreads the database over the nodes' simulated
// local disks ("the transaction data is evenly spread over the local disks
// of all the nodes", §4.2 of the paper).
package txn

import (
	"fmt"

	"pgarm/internal/item"
)

// Transaction is one market basket: a unique identifier and a canonical
// (sorted, deduplicated) itemset.
type Transaction struct {
	TID   int64
	Items []item.Item
}

// String renders the transaction compactly.
func (t Transaction) String() string {
	return fmt.Sprintf("t%d%s", t.TID, item.Format(t.Items))
}

// DB is an in-memory transaction database. The zero value is an empty
// database ready for Append.
type DB struct {
	txns []Transaction
}

// NewDB wraps a transaction slice (retained, not copied).
func NewDB(txns []Transaction) *DB { return &DB{txns: txns} }

// Append adds a transaction.
func (db *DB) Append(t Transaction) { db.txns = append(db.txns, t) }

// Len returns the number of transactions.
func (db *DB) Len() int { return len(db.txns) }

// At returns transaction i. The itemset is shared; do not modify.
func (db *DB) At(i int) Transaction { return db.txns[i] }

// Scan invokes fn for every transaction in order; it stops and returns the
// first error fn reports. It satisfies Scanner.
func (db *DB) Scan(fn func(Transaction) error) error {
	for _, t := range db.txns {
		if err := fn(t); err != nil {
			return err
		}
	}
	return nil
}

// AvgSize returns the mean basket size.
func (db *DB) AvgSize() float64 {
	if len(db.txns) == 0 {
		return 0
	}
	var sum int
	for _, t := range db.txns {
		sum += len(t.Items)
	}
	return float64(sum) / float64(len(db.txns))
}

// Scanner is a source of transactions a node can re-scan once per pass (and
// once per candidate fragment in NPGM). Both the in-memory DB and the
// on-disk File implement it.
type Scanner interface {
	// Scan streams every transaction to fn in storage order; a non-nil error
	// from fn aborts the scan and is returned.
	Scan(fn func(Transaction) error) error
	// Len returns the number of transactions.
	Len() int
}

// Partition splits the database into n horizontal partitions, round-robin,
// modelling the even spread of transactions across node-local disks. The
// transaction slices are shared with db.
func Partition(db *DB, n int) []*DB {
	parts := make([]*DB, n)
	for i := range parts {
		parts[i] = &DB{}
	}
	for i, t := range db.txns {
		p := parts[i%n]
		p.txns = append(p.txns, t)
	}
	return parts
}
