package txn

import (
	"runtime"
	"testing"

	"pgarm/internal/item"
)

// TestColumnarMmapMatchesPread opens the same columnar file through both
// access paths and asserts scans are identical, including under block
// sharding and repeated/concurrent use of the mapping.
func TestColumnarMmapMatchesPread(t *testing.T) {
	db := sampleDB()
	path := writeColumnarOrDie(t, db, testTaxonomy(t), 2)

	pread, err := OpenColumnar(path)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := OpenColumnarWith(path, OpenOptions{Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	switch runtime.GOOS {
	case "linux", "darwin", "freebsd", "netbsd", "openbsd":
		if !mapped.Mapped() {
			t.Fatalf("Mmap requested on %s but file is not mapped", runtime.GOOS)
		}
	}

	want := scanAll(t, pread)
	for round := 0; round < 2; round++ {
		got := scanAll(t, mapped)
		if len(got) != len(want) {
			t.Fatalf("round %d: mmap scan saw %d txns, pread %d", round, len(got), len(want))
		}
		for i := range want {
			if got[i].TID != want[i].TID || !item.Equal(got[i].Items, want[i].Items) {
				t.Fatalf("round %d txn %d: mmap %v != pread %v", round, i, got[i], want[i])
			}
		}
	}

	// Sharded block scans over the shared mapping, as worker scans issue them.
	total := 0
	for shard := 0; shard < 2; shard++ {
		err := mapped.ScanBlocks(BlockScanOptions{Shard: shard, NumShards: 2}, func(b Block) error {
			total += len(b.Txns)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if total != db.Len() {
		t.Fatalf("sharded mmap scan saw %d txns, want %d", total, db.Len())
	}

	if err := mapped.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mapped.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if mapped.Mapped() {
		t.Fatal("still mapped after Close")
	}
	// After Close the file silently reverts to pread scans.
	if got := scanAll(t, mapped); len(got) != len(want) {
		t.Fatalf("post-Close scan saw %d txns, want %d", len(got), len(want))
	}
}

// TestOpenWithMmapAutodetects routes the option through the format sniffer:
// columnar files come back mapped, row files ignore the option.
func TestOpenWithMmapAutodetects(t *testing.T) {
	path := writeColumnarOrDie(t, sampleDB(), nil, 2)
	s, err := OpenWith(path, OpenOptions{Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	cf, ok := s.(*ColumnarFile)
	if !ok {
		t.Fatalf("OpenWith returned %T, want *ColumnarFile", s)
	}
	defer cf.Close()
	if got := scanAll(t, cf); len(got) != sampleDB().Len() {
		t.Fatalf("scan saw %d txns, want %d", len(got), sampleDB().Len())
	}
}
