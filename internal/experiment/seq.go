package experiment

import (
	"fmt"

	"pgarm/internal/seq"
	"pgarm/internal/taxonomy"
)

// seqMinSup is the fixed support of the sequence sweep. Customer-sequence
// supports sit far above basket-itemset supports (a woven pattern reaches a
// large fraction of its customers), so the itemset sweep's 0.3% point would
// drown the run in candidates.
const seqMinSup = 0.05

// SeqSweep runs the three [SK98] parallel sequence miners over one generated
// customer-sequence database and compares their count-support communication:
// NPSPM ships nothing (replicated candidates), SPSPM broadcasts every closed
// customer sequence N-1 times, HPSPM ships each owner only the items its
// candidates can use. All three produce bit-identical frequent patterns.
func (e *Env) SeqSweep() (*Table, error) {
	tax, err := taxonomy.Balanced(300, 5, 4)
	if err != nil {
		return nil, err
	}
	p := seq.DefaultGenParams()
	// The itemset experiments scale the paper's 3.2M transactions; the
	// sequence generator's natural unit is customers, scaled off a 200k base
	// so the default 1% harness scale yields 2000 customers.
	p.NumCustomers = int(200000 * e.opt.Scale)
	if p.NumCustomers < 100 {
		p.NumCustomers = 100
	}
	db := seq.GenerateSequences(tax, p)
	parts := seq.Partition(db, e.opt.Nodes)

	t := &Table{
		Title:  fmt.Sprintf("Sequence miners ([SK98]), %d customers, %d nodes, minsup %g", db.Len(), e.opt.Nodes, seqMinSup),
		Header: []string{"algorithm", "patterns", "items sent", "data MB sent", "elapsed"},
		Notes: []string{
			"items/bytes cover the count-support passes (k >= 2); pass 1 is a dense reduce for all three",
			"NPSPM replicates candidates (no data movement); HPSPM routes by candidate root vector, SPSPM broadcasts whole sequences",
		},
	}
	var spspmBytes, hpspmBytes float64
	for _, alg := range seq.Algorithms() {
		res, err := seq.MineParallel(tax, parts, seq.ParallelConfig{
			Algorithm:  alg,
			MinSupport: seqMinSup,
			MaxK:       3,
			Workers:    e.opt.Workers,
			Fabric:     e.opt.Fabric,
			Tracer:     e.opt.Tracer,
		})
		if err != nil {
			return nil, fmt.Errorf("%s on %d nodes: %w", alg, e.opt.Nodes, err)
		}
		res.Stats.Dataset = fmt.Sprintf("SEQ-C%d", db.Len())
		e.runs = append(e.runs, res.Stats)

		var items, bytes int64
		for _, ps := range res.Stats.Passes {
			if ps.Pass < 2 {
				continue
			}
			items += ps.TotalItemsSent()
			for _, ns := range ps.Nodes {
				bytes += ns.DataBytesSent
			}
		}
		switch alg {
		case seq.SPSPM:
			spspmBytes = float64(bytes)
		case seq.HPSPM:
			hpspmBytes = float64(bytes)
		}
		t.AddRow(string(alg), fmt.Sprint(len(res.All())), fmt.Sprint(items),
			fmtMB(float64(bytes)), fmtDuration(res.Stats.Elapsed))
	}
	if spspmBytes > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("HPSPM moved %.1f%% of SPSPM's count-support bytes", 100*hpspmBytes/spspmBytes))
	}
	return t, nil
}
