package experiment

import (
	"fmt"
	"sort"
	"time"

	"pgarm/internal/core"
	"pgarm/internal/cumulate"
	"pgarm/internal/gen"
	"pgarm/internal/metrics"
	"pgarm/internal/obs"
	"pgarm/internal/txn"
)

// Options parameterize a harness run. The zero value is not usable; start
// from Defaults.
type Options struct {
	// Scale multiplies the paper's 3.2M-transaction datasets; experiments
	// keep item universe and pattern pool fixed so frequency shape is
	// preserved.
	Scale float64
	// Nodes is the cluster size for the fixed-size experiments (the paper
	// uses 16).
	Nodes int
	// MinSups is the minimum-support sweep for Figures 13/14, descending.
	MinSups []float64
	// PointMinSup is the fixed support of Table 6 and Figure 15 (the paper
	// uses 0.3%); override at very small scales where 0.3% sits below the
	// noise floor.
	PointMinSup float64
	// Fig16MinSups are the speedup experiment's support levels (the paper
	// uses 0.5% and 0.3%).
	Fig16MinSups []float64
	// Budget is the per-node candidate memory in bytes; 0 derives one from
	// the candidate volume at the smallest swept support so that NPGM
	// fragments and TGD starves there, as on the SP-2.
	Budget int64
	// Fabric selects the interconnect (channels by default).
	Fabric core.FabricKind
	// Workers is the per-node scan worker pool size (0 or 1 scans on the
	// node goroutine); results are identical at any setting.
	Workers int
	// Cost converts exact work counters into modeled shared-nothing time;
	// see metrics.CostModel for why wall-clock is not used on a one-box
	// reproduction.
	Cost metrics.CostModel
	// Tracer, when non-nil, records phase spans of every mining run for
	// Chrome-trace export (pgarm-bench -trace).
	Tracer *obs.Tracer
}

// Defaults returns the options used by `pgarm-bench` and the repo benches:
// a 1% scale of the paper datasets (32,000 transactions), 16 nodes and the
// paper's 0.3%–2% support range.
func Defaults() Options {
	return Options{
		Scale:        0.01,
		Nodes:        16,
		MinSups:      []float64{0.02, 0.01, 0.007, 0.005, 0.003},
		PointMinSup:  0.003,
		Fig16MinSups: []float64{0.005, 0.003},
		Cost:         metrics.DefaultCostModel(),
	}
}

// dataset bundles a generated dataset with its per-node-count partitions.
type dataset struct {
	ds    *gen.Dataset
	parts map[int][]txn.Scanner
}

// Env carries shared state (generated datasets) across the experiments of
// one harness invocation so each dataset is generated once.
type Env struct {
	opt  Options
	data map[string]*dataset
	runs []*metrics.RunStats
}

// Runs returns the stats of every mining run executed by this environment so
// far, in execution order — the raw material of `pgarm-bench -json` reports.
func (e *Env) Runs() []*metrics.RunStats { return e.runs }

// NewEnv validates options and prepares an empty environment.
func NewEnv(opt Options) (*Env, error) {
	if opt.Scale <= 0 || opt.Scale > 1 {
		return nil, fmt.Errorf("experiment: scale %g out of (0,1]", opt.Scale)
	}
	if opt.Nodes < 2 {
		return nil, fmt.Errorf("experiment: need at least 2 nodes, got %d", opt.Nodes)
	}
	if len(opt.MinSups) == 0 {
		return nil, fmt.Errorf("experiment: empty minimum-support sweep")
	}
	if opt.PointMinSup <= 0 {
		opt.PointMinSup = 0.003
	}
	if len(opt.Fig16MinSups) == 0 {
		opt.Fig16MinSups = []float64{0.005, 0.003}
	}
	if opt.Cost == (metrics.CostModel{}) {
		opt.Cost = metrics.DefaultCostModel()
	}
	return &Env{opt: opt, data: make(map[string]*dataset)}, nil
}

// Dataset generates (or returns the cached) scaled paper dataset.
func (e *Env) Dataset(name string) (*dataset, error) {
	if d, ok := e.data[name]; ok {
		return d, nil
	}
	p, err := gen.ByName(name)
	if err != nil {
		return nil, err
	}
	ds, err := gen.Generate(p.Scaled(e.opt.Scale))
	if err != nil {
		return nil, err
	}
	d := &dataset{ds: ds, parts: make(map[int][]txn.Scanner)}
	e.data[name] = d
	return d, nil
}

// Parts returns the n-way round-robin partitioning of the dataset.
func (d *dataset) Parts(n int) []txn.Scanner {
	if p, ok := d.parts[n]; ok {
		return p
	}
	raw := txn.Partition(d.ds.DB, n)
	out := make([]txn.Scanner, n)
	for i := range raw {
		out[i] = raw[i]
	}
	d.parts[n] = out
	return out
}

// run executes one mining configuration restricted to pass 2 (the paper
// evaluates pass 2; other passes behave alike, §4.2) and returns its stats.
func (e *Env) run(d *dataset, alg core.Algorithm, nodes int, minSup float64, budget int64) (*metrics.RunStats, error) {
	res, err := core.Mine(d.ds.Taxonomy, d.Parts(nodes), core.Config{
		Algorithm:    alg,
		MinSupport:   minSup,
		MaxK:         2,
		MemoryBudget: budget,
		Fabric:       e.opt.Fabric,
		Workers:      e.opt.Workers,
		Tracer:       e.opt.Tracer,
	})
	if err != nil {
		return nil, fmt.Errorf("%s on %s, %d nodes, minsup %g: %w", alg, d.ds.Params.Name, nodes, minSup, err)
	}
	res.Stats.Dataset = d.ds.Params.Name
	e.runs = append(e.runs, res.Stats)
	return res.Stats, nil
}

// pass2 extracts the pass-2 stats or errors (a sweep point whose L1 is too
// small to form candidates would miss it).
func pass2(rs *metrics.RunStats) (*metrics.PassStats, error) {
	if ps := rs.Pass(2); ps != nil {
		return ps, nil
	}
	return nil, fmt.Errorf("%s on %s: no pass 2 (support too high for this scale)", rs.Algorithm, rs.Dataset)
}

// autoBudget derives the per-node memory byte budget: 20%% of the total
// candidate volume at the smallest swept support. That is the paper's
// stressed regime — M < |C_2| < N·M: NPGM must split C_2 into ~5 fragments
// and re-scan its local disk for each ("the disk I/O becomes prohibitively
// costly"), while the root-hash algorithms hold only |C_2|/N each and keep
// real free space whose use separates H-HPGM from its duplicating variants.
func (e *Env) autoBudget(d *dataset) (int64, error) {
	if e.opt.Budget > 0 {
		return e.opt.Budget, nil
	}
	minSup := e.opt.MinSups[0]
	for _, s := range e.opt.MinSups {
		if s < minSup {
			minSup = s
		}
	}
	n, err := candidatesAt(d, minSup)
	if err != nil {
		return 0, err
	}
	b := int64(float64(n) * 56 * 0.2) // 56 ≈ candBytes(2)
	if b < 1<<10 {
		b = 1 << 10
	}
	return b, nil
}

// candidatesAt counts |C_2| at the given support without running a full
// parallel pass.
func candidatesAt(d *dataset, minSup float64) (int, error) {
	res, err := cumulate.Mine(d.ds.Taxonomy, d.ds.DB, cumulate.Config{MinSupport: minSup, MaxK: 1})
	if err != nil {
		return 0, err
	}
	l1 := res.LargeK(1)
	// Pairs minus ancestor pairs: count exactly as candidate generation
	// does.
	n := 0
	for i := 0; i < len(l1); i++ {
		for j := i + 1; j < len(l1); j++ {
			a, b := l1[i].Items[0], l1[j].Items[0]
			if d.ds.Taxonomy.IsAncestor(a, b) || d.ds.Taxonomy.IsAncestor(b, a) {
				continue
			}
			n++
		}
	}
	return n, nil
}

// fmtDuration renders modeled times compactly.
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// fmtMB renders byte counts as MB with adaptive precision.
func fmtMB(b float64) string {
	mb := b / (1 << 20)
	switch {
	case mb >= 100:
		return fmt.Sprintf("%.0f", mb)
	case mb >= 1:
		return fmt.Sprintf("%.1f", mb)
	default:
		return fmt.Sprintf("%.3f", mb)
	}
}

// sortedCopy returns the sweep in descending order (large support first),
// matching the paper's x-axes.
func sortedCopy(s []float64) []float64 {
	out := append([]float64(nil), s...)
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}
