// Package experiment is the harness that regenerates every table and figure
// of the paper's evaluation (§4): Table 6 (communication volume), Figure 13
// (HPGM vs H-HPGM execution time), Figure 14 (all algorithms vs minimum
// support), Figure 15 (per-node probe distribution) and Figure 16 (speedup).
// Results are rendered as aligned text tables; figures become series tables
// whose rows are the plotted points, plus an ASCII bar chart for the load
// distribution.
package experiment

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a title, a header row and data
// rows. Cells are pre-formatted strings.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes are free-form lines appended after the table (methodology,
	// paper-expected shape, substitutions).
	Notes []string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			// Right-align numeric-looking cells, left-align the rest.
			if looksNumeric(c) {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(c)
			} else {
				b.WriteString(c)
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total > 2 {
		b.WriteString(strings.Repeat("-", total-2))
		b.WriteByte('\n')
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, nt := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", nt)
	}
	return b.String()
}

func looksNumeric(s string) bool {
	if s == "" {
		return false
	}
	digits := 0
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9':
			digits++
		case r == '.' || r == '-' || r == '+' || r == '%' || r == 'x' ||
			r == 'e' || r == 'K' || r == 'M' || r == 'G' || r == 'B' || r == 's' || r == 'm' || r == 'µ' || r == 'n':
		default:
			return false
		}
	}
	return digits > 0
}

// Bars renders per-label values as an ASCII bar chart scaled to width,
// the textual stand-in for Figure 15's per-node histograms.
func Bars(labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 50
	}
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	lw := 0
	for _, l := range labels {
		if len(l) > lw {
			lw = len(l)
		}
	}
	var b strings.Builder
	for i, v := range values {
		n := 0
		if max > 0 {
			n = int(v / max * float64(width))
		}
		fmt.Fprintf(&b, "%-*s |%s %.0f\n", lw, labels[i], strings.Repeat("#", n), v)
	}
	return b.String()
}
