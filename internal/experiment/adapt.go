package experiment

import (
	"fmt"
	"math"
	"strings"
	"time"

	"pgarm/internal/core"
	"pgarm/internal/cumulate"
	"pgarm/internal/metrics"
	"pgarm/internal/txn"
)

// AdaptOptions parameterize the skew-adaptation experiment
// (`pgarm-bench -experiment adapt`). The transaction database is split into
// deliberately uneven zipf-sized partitions — the load-skew regime the
// even round-robin split of the paper experiments avoids — and mined three
// times: by the sequential reference, by the static base algorithm and with
// skew-adaptive granule escalation on. Barrier waits are real wall-clock on
// the machine running the bench; byte and item counters are exact.
type AdaptOptions struct {
	// Dataset names the Table 5 configuration to generate.
	Dataset string
	// Algorithm is the parallel base (an H-HPGM-family algorithm); adaptive
	// escalation starts from its granule.
	Algorithm core.Algorithm
	// MinSup is the support threshold. Low enough for several passes: the
	// adaptive plan needs at least three (the skew hint at pass k describes
	// pass k-2).
	MinSup float64
	// Zipf is the partition-size skew exponent: partition i receives a share
	// proportional to 1/(i+1)^Zipf. 0 disables the skew (even split).
	Zipf float64
	// EscalateAt / JumpAt override the adaptive arm's escalation thresholds
	// (0 = the core defaults, 1.25 and 4.0).
	EscalateAt float64
	JumpAt     float64
}

// AdaptDefaults returns the adapt bench configuration used by pgarm-bench.
func AdaptDefaults() AdaptOptions {
	return AdaptOptions{
		Dataset:   "R30F5",
		Algorithm: core.HHPGM,
		MinSup:    0.01,
		Zipf:      1.5,
	}
}

// Adapt runs the skew-adaptation experiment: one zipf-skewed partitioning,
// three arms (sequential reference, static, adaptive), reporting per-pass
// barrier waits, traffic and the granule map each pass ran with, plus
// bit-identity of both parallel arms against the sequential reference.
func (e *Env) Adapt(o AdaptOptions) (*Table, []metrics.AdaptReport, error) {
	if o.Dataset == "" {
		o.Dataset = "R30F5"
	}
	if o.Algorithm == "" {
		o.Algorithm = core.HHPGM
	}
	if o.MinSup <= 0 {
		o.MinSup = 0.01
	}
	d, err := e.Dataset(o.Dataset)
	if err != nil {
		return nil, nil, err
	}
	parts := zipfSplit(d.ds.DB, e.opt.Nodes, o.Zipf)

	ref, err := cumulate.Mine(d.ds.Taxonomy, d.ds.DB, cumulate.Config{MinSupport: o.MinSup})
	if err != nil {
		return nil, nil, err
	}
	reports := []metrics.AdaptReport{{
		Arm: "cumulate", Algorithm: "Cumulate", Nodes: 1, MinSup: o.MinSup,
		Identical: true,
	}}

	for _, arm := range []string{"static", "adaptive"} {
		cfg := core.Config{
			Algorithm:  o.Algorithm,
			MinSupport: o.MinSup,
			Fabric:     e.opt.Fabric,
			Workers:    e.opt.Workers,
			Tracer:     e.opt.Tracer,
		}
		if arm == "adaptive" {
			cfg.Adaptive = true
			cfg.EscalateAt = o.EscalateAt
			cfg.JumpAt = o.JumpAt
		}
		res, err := core.Mine(d.ds.Taxonomy, parts, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("adapt arm %s: %w", arm, err)
		}
		res.Stats.Dataset = fmt.Sprintf("%s/zipf%.2g", d.ds.Params.Name, o.Zipf)
		e.runs = append(e.runs, res.Stats)

		rep := metrics.AdaptReport{
			Arm: arm, Algorithm: string(o.Algorithm), Nodes: e.opt.Nodes,
			MinSup: o.MinSup, Zipf: o.Zipf,
			FinalGranules: res.Stats.FinalPlan().GranuleMap(),
			Identical:     equalLevels(res.Large, ref.Large),
		}
		for _, ps := range res.Stats.Passes {
			ap := metrics.AdaptPass{Pass: ps.Pass, Duplicated: ps.Duplicated}
			ap.Granule = ps.Plan.GranuleMap()
			var max, sum time.Duration
			for _, n := range ps.Nodes {
				if n.BarrierWait > max {
					max = n.BarrierWait
				}
				sum += n.BarrierWait
				ap.BytesTotal += n.BytesSent
				rep.ItemsSent += n.ItemsSent
			}
			ap.BarrierWaitMaxMS = float64(max.Microseconds()) / 1000
			if len(ps.Nodes) > 0 {
				ap.BarrierWaitMeanMS = float64(sum.Microseconds()) / 1000 / float64(len(ps.Nodes))
			}
			rep.TotalBytes += ap.BytesTotal
			rep.Passes = append(rep.Passes, ap)
		}
		reports = append(reports, rep)
	}

	t := &Table{
		Title: fmt.Sprintf("Skew adaptation (%s, %s, %d nodes, minsup %.3g%%, zipf %.2g)",
			o.Dataset, o.Algorithm, e.opt.Nodes, o.MinSup*100, o.Zipf),
		Header: []string{"arm", "pass", "granules", "dup", "wait max ms", "wait mean ms", "MB", "identical"},
	}
	for _, rep := range reports[1:] {
		for _, ap := range rep.Passes {
			t.AddRow(rep.Arm, fmt.Sprintf("%d", ap.Pass), shortGranules(ap.Granule),
				fmt.Sprintf("%d", ap.Duplicated),
				fmt.Sprintf("%.2f", ap.BarrierWaitMaxMS),
				fmt.Sprintf("%.2f", ap.BarrierWaitMeanMS),
				fmtMB(float64(ap.BytesTotal)), "")
		}
		t.AddRow(rep.Arm, "all", shortGranules(rep.FinalGranules), "", "", "",
			fmtMB(float64(rep.TotalBytes)), fmt.Sprintf("%v", rep.Identical))
	}
	t.Notes = []string{
		"partitions are zipf-sized: node 0 holds the largest share, so it straggles and peers idle at the barrier",
		"the adaptive arm escalates duplication granules per hot taxonomy subtree once the wait imbalance crosses the threshold",
		"identical: frequent itemsets and counts match the sequential Cumulate reference bit-for-bit",
	}
	return t, reports, nil
}

// shortGranules compresses a long granule map for table cells ("none + 30
// escalated roots"); the full map is in the JSON report.
func shortGranules(g string) string {
	base, rest, found := strings.Cut(g, ",")
	if !found {
		return g
	}
	n := 1 + strings.Count(rest, ",")
	if n <= 2 {
		return g
	}
	return fmt.Sprintf("%s + %d escalated roots", base, n)
}

// zipfSplit partitions the database into n contiguous slices whose sizes
// follow a zipf distribution with exponent theta (partition i's share is
// proportional to 1/(i+1)^theta); theta 0 degenerates to an even contiguous
// split. Every partition receives at least one transaction when the database
// allows it, so no node joins the protocol empty.
func zipfSplit(db *txn.DB, n int, theta float64) []txn.Scanner {
	weights := make([]float64, n)
	var wsum float64
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), theta)
		wsum += weights[i]
	}
	total := db.Len()
	sizes := make([]int, n)
	used := 0
	for i := range sizes {
		sizes[i] = int(float64(total) * weights[i] / wsum)
		if sizes[i] < 1 {
			sizes[i] = 1
		}
		if used+sizes[i] > total-(n-1-i) { // leave >=1 txn per remaining node
			sizes[i] = total - (n - 1 - i) - used
			if sizes[i] < 0 {
				sizes[i] = 0
			}
		}
		used += sizes[i]
	}
	sizes[n-1] += total - used // remainder joins the last (smallest) partition

	out := make([]txn.Scanner, n)
	off := 0
	for i, sz := range sizes {
		p := &txn.DB{}
		for j := 0; j < sz; j++ {
			p.Append(db.At(off + j))
		}
		off += sz
		out[i] = p
	}
	return out
}
