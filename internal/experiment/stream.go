package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"pgarm/internal/cumulate"
	"pgarm/internal/gen"
	"pgarm/internal/item"
	"pgarm/internal/metrics"
	"pgarm/internal/model"
	"pgarm/internal/rules"
	"pgarm/internal/stream"
	"pgarm/internal/taxonomy"
	"pgarm/internal/txn"
)

// StreamOptions parameterize the streaming-ingestion experiment
// (`pgarm-bench -experiment stream`). Like the serve/scan/adapt benches it
// measures real wall-clock on the machine running it.
type StreamOptions struct {
	// Dataset names the Table 5 configuration to generate and stream.
	Dataset string
	// Checkpoints is how many deltas the stream is split into; each delta
	// triggers one incremental checkpoint.
	Checkpoints int
	// MinSup is the mining threshold; MinConf the rule-derivation threshold
	// (the snapshot write includes rules, so both shape the freshness path).
	MinSup  float64
	MinConf float64
	// Workers is the incremental miner's scan parallelism.
	Workers int
}

// StreamDefaults returns the stream bench configuration used by pgarm-bench.
func StreamDefaults() StreamOptions {
	return StreamOptions{
		Dataset:     "R30F5",
		Checkpoints: 4,
		MinSup:      0.02,
		MinConf:     0.5,
		Workers:     4,
	}
}

// Stream runs the streaming-ingestion bench: the dataset is appended to a
// real stream log in Checkpoints batches; after each append one FUP-style
// incremental checkpoint runs (tail the log, delta-mine, derive rules, write
// the snapshot) and is compared — wall-clock and bit-for-bit — against a
// full batch re-mine of the same log prefix. Each row reports how little of
// the candidate space the carry-forward had to re-count and the end-to-end
// append→servable freshness.
func (e *Env) Stream(o StreamOptions) (*Table, []metrics.StreamReport, error) {
	if o.Dataset == "" {
		o.Dataset = "R30F5"
	}
	if o.Checkpoints < 1 {
		o.Checkpoints = 4
	}
	if o.MinSup <= 0 {
		o.MinSup = 0.02
	}
	if o.MinConf <= 0 {
		o.MinConf = 0.5
	}
	if o.Workers < 1 {
		o.Workers = 4
	}
	p, err := gen.ByName(o.Dataset)
	if err != nil {
		return nil, nil, err
	}
	ds, err := gen.Generate(p.Scaled(e.opt.Scale))
	if err != nil {
		return nil, nil, err
	}
	tax := ds.Taxonomy
	n := ds.DB.Len()
	if n < o.Checkpoints {
		return nil, nil, fmt.Errorf("experiment: %d txns cannot fill %d checkpoints", n, o.Checkpoints)
	}

	dir, err := os.MkdirTemp("", "pgarm-stream-*")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(dir)
	logDir := filepath.Join(dir, "log")
	snapPath := filepath.Join(dir, "model.pgarm")
	// A small segment cap keeps rotation on the measured path.
	l, err := stream.OpenLog(logDir, stream.Options{SegmentBytes: 1 << 20})
	if err != nil {
		return nil, nil, err
	}
	defer l.Close()
	reader, err := stream.OpenReader(logDir)
	if err != nil {
		return nil, nil, err
	}

	table := &Table{
		Title: fmt.Sprintf("Streaming ingestion: FUP incremental vs full re-mine (%s, %d txns, minsup %g, %d workers)",
			ds.Params.Name, n, o.MinSup, o.Workers),
		Header: []string{"ckpt", "delta", "total", "cands", "recounted", "recount%", "incr ms", "full ms", "speedup", "fresh ms", "identical"},
		Notes: []string{
			"recounted = candidates absent from the prior border sets: the only ones whose prefix support had to be re-counted.",
			"fresh ms = append start -> snapshot (with rules + carry-forward state) durable on disk.",
			"identical = incremental large itemsets bit-identical to the full batch re-mine of the same log prefix.",
		},
	}

	var reports []metrics.StreamReport
	var prior *model.MiningState
	var minedOff stream.Offset
	cfg := stream.MineConfig{MinSupport: o.MinSup, Workers: o.Workers}
	for ci := 0; ci < o.Checkpoints; ci++ {
		lo, hi := ci*n/o.Checkpoints, (ci+1)*n/o.Checkpoints

		// Append the delta, fsync'd — freshness starts here.
		t0 := time.Now()
		batch := make([]txn.Transaction, 0, hi-lo)
		for i := lo; i < hi; i++ {
			batch = append(batch, ds.DB.At(i))
		}
		if err := l.Append(batch); err != nil {
			return nil, nil, err
		}
		if err := l.Sync(); err != nil {
			return nil, nil, err
		}

		// Tail the log like a follower would and run the checkpoint.
		var pending []txn.Transaction
		curOff, err := reader.ReadFrom(minedOff, func(t txn.Transaction) error {
			pending = append(pending, txn.Transaction{TID: t.TID, Items: item.Clone(t.Items)})
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		tMine := time.Now()
		res, state, stats, err := stream.IncrementalMine(tax, prior, reader.Prefix(minedOff), txn.NewDB(pending), cfg)
		if err != nil {
			return nil, nil, err
		}
		incrMS := float64(time.Since(tMine)) / float64(time.Millisecond)
		state.LogSeg, state.LogByte = curOff.Seg, curOff.Byte

		support := res.SupportIndex()
		rs, err := rules.Derive(tax, res.All(), support, rules.Config{
			MinConfidence: o.MinConf,
			NumTxns:       res.NumTxns,
		})
		if err != nil {
			return nil, nil, err
		}
		m := &model.Model{
			Meta: model.Meta{
				Dataset:       ds.Params.Name,
				Algorithm:     "Cumulate-FUP",
				Tool:          model.ToolVersion,
				NumTxns:       int64(res.NumTxns),
				MinSupport:    o.MinSup,
				MinConfidence: o.MinConf,
				CreatedUnix:   time.Now().Unix(),
			},
			Taxonomy: tax,
			Large:    res.Large,
			Rules:    rs,
			State:    state,
		}
		if err := model.WriteFile(snapPath, m); err != nil {
			return nil, nil, err
		}
		freshMS := float64(time.Since(t0)) / float64(time.Millisecond)

		// Reference arm: full batch re-mine over the identical log prefix.
		full, fullMS, err := fullRemine(tax, ds, hi, o.MinSup)
		if err != nil {
			return nil, nil, err
		}
		identical := equalLevels(res.Large, full.Large)

		recount := 0.0
		if stats.Candidates > 0 {
			recount = float64(stats.Recounted) / float64(stats.Candidates)
		}
		speedup := 0.0
		if incrMS > 0 {
			speedup = fullMS / incrMS
		}
		rep := metrics.StreamReport{
			Checkpoint:      ci,
			Dataset:         ds.Params.Name,
			MinSup:          o.MinSup,
			Workers:         o.Workers,
			DeltaTxns:       stats.DeltaTxns,
			TotalTxns:       stats.TotalTxns,
			Passes:          stats.Passes,
			Candidates:      stats.Candidates,
			Recounted:       stats.Recounted,
			PrefixScans:     stats.PrefixScans,
			RecountFraction: recount,
			IncrementalMS:   incrMS,
			FullMS:          fullMS,
			SpeedupX:        speedup,
			FreshnessMS:     freshMS,
			Rules:           len(rs),
			Identical:       identical,
		}
		reports = append(reports, rep)
		table.AddRow(
			fmt.Sprintf("%d", ci),
			fmt.Sprintf("%d", rep.DeltaTxns),
			fmt.Sprintf("%d", rep.TotalTxns),
			fmt.Sprintf("%d", rep.Candidates),
			fmt.Sprintf("%d", rep.Recounted),
			fmt.Sprintf("%.1f%%", recount*100),
			fmt.Sprintf("%.1f", incrMS),
			fmt.Sprintf("%.1f", fullMS),
			fmt.Sprintf("%.2fx", speedup),
			fmt.Sprintf("%.1f", freshMS),
			fmt.Sprintf("%v", identical),
		)

		prior = state
		minedOff = curOff
	}
	return table, reports, nil
}

// fullRemine mines the first hi transactions from scratch with the serial
// reference miner and returns the result with its wall-clock in ms.
func fullRemine(tax *taxonomy.Taxonomy, ds *gen.Dataset, hi int, minSup float64) (*cumulate.Result, float64, error) {
	union := &txn.DB{}
	for i := 0; i < hi; i++ {
		union.Append(ds.DB.At(i))
	}
	t0 := time.Now()
	full, err := cumulate.Mine(tax, union, cumulate.Config{MinSupport: minSup})
	if err != nil {
		return nil, 0, err
	}
	return full, float64(time.Since(t0)) / float64(time.Millisecond), nil
}
