package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pgarm/internal/cumulate"
	"pgarm/internal/metrics"
	"pgarm/internal/model"
	"pgarm/internal/obs"
	"pgarm/internal/rules"
	"pgarm/internal/serve"
)

// ServeOptions parameterize the serving load bench.
type ServeOptions struct {
	// Dataset is the paper dataset to mine and serve (default R30F5).
	Dataset string
	// Clients is the number of concurrent load-generator goroutines.
	Clients int
	// Requests is the total request count per arm.
	Requests int
	// MinConfidence is the rule-derivation confidence threshold.
	MinConfidence float64
	// Seed fixes the basket mix so both arms (and repeated runs) replay the
	// same workload.
	Seed int64
}

// ServeDefaults returns the bench configuration used by
// `pgarm-bench -experiment serve`.
func ServeDefaults() ServeOptions {
	return ServeOptions{Dataset: "R30F5", Clients: 8, Requests: 2000, MinConfidence: 0.3, Seed: 1}
}

// Serve runs the serving load bench: mine the dataset at the point support,
// derive rules, build a pgarm-serve index, then replay a zipf-skewed basket
// mix against it over real HTTP with N concurrent clients — once with the
// recommendation cache off and once with it on, using the identical request
// sequence. The zipf skew models a popularity distribution over baskets,
// which is what gives a basket-keyed cache something to hit.
func (e *Env) Serve(so ServeOptions) (*Table, []metrics.ServeReport, error) {
	if so.Dataset == "" {
		so.Dataset = "R30F5"
	}
	if so.Clients <= 0 || so.Requests <= 0 {
		return nil, nil, fmt.Errorf("experiment: serve bench needs positive clients (%d) and requests (%d)", so.Clients, so.Requests)
	}
	d, err := e.Dataset(so.Dataset)
	if err != nil {
		return nil, nil, err
	}
	res, err := cumulate.Mine(d.ds.Taxonomy, d.ds.DB, cumulate.Config{MinSupport: e.opt.PointMinSup})
	if err != nil {
		return nil, nil, err
	}
	rs, err := rules.Derive(d.ds.Taxonomy, res.All(), res.SupportIndex(),
		rules.Config{MinConfidence: so.MinConfidence, NumTxns: d.ds.DB.Len()})
	if err != nil {
		return nil, nil, err
	}
	m := &model.Model{
		Meta: model.Meta{
			Dataset:       d.ds.Params.Name,
			Algorithm:     "Cumulate",
			Tool:          model.ToolVersion,
			NumTxns:       int64(d.ds.DB.Len()),
			MinSupport:    e.opt.PointMinSup,
			MinConfidence: so.MinConfidence,
		},
		Taxonomy: d.ds.Taxonomy,
		Large:    res.Large,
		Rules:    rs,
	}
	bodies := serveBaskets(d, so)

	var reports []metrics.ServeReport
	for _, cached := range []bool{false, true} {
		r, err := serveArm(m, so, bodies, cached)
		if err != nil {
			return nil, nil, err
		}
		reports = append(reports, r)
	}

	t := &Table{
		Title:  fmt.Sprintf("Serving load: %s, %d rules, %d clients × %d requests", d.ds.Params.Name, len(rs), so.Clients, so.Requests),
		Header: []string{"cache", "QPS", "p50 ms", "p99 ms", "hits", "misses", "errors"},
		Notes: []string{
			fmt.Sprintf("minsup %.3g%%, minconf %.3g%%; zipf-skewed baskets drawn from the dataset's own transactions (seed %d)",
				e.opt.PointMinSup*100, so.MinConfidence*100, so.Seed),
			"latencies are client-observed wall clock over loopback HTTP, identical request sequence in both arms",
		},
	}
	for _, r := range reports {
		state := "off"
		if r.Cache {
			state = "on"
		}
		t.AddRow(state,
			fmt.Sprintf("%.0f", r.QPS),
			fmt.Sprintf("%.3f", r.P50Ms),
			fmt.Sprintf("%.3f", r.P99Ms),
			fmt.Sprintf("%d", r.CacheHits),
			fmt.Sprintf("%d", r.CacheMisses),
			fmt.Sprintf("%d", r.Errors))
	}
	return t, reports, nil
}

// serveBaskets pre-marshals the request bodies replayed by both arms: a
// zipf-ranked draw over the dataset's transactions, so a small set of
// popular baskets dominates while the tail stays long.
func serveBaskets(d *dataset, so ServeOptions) [][]byte {
	rng := rand.New(rand.NewSource(so.Seed))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(d.ds.DB.Len()-1))
	// A fixed permutation decouples zipf rank from transaction order, so
	// "popular" baskets are spread across the dataset rather than being its
	// first few rows.
	perm := rng.Perm(d.ds.DB.Len())
	bodies := make([][]byte, so.Requests)
	for i := range bodies {
		txns := d.ds.DB.At(perm[zipf.Uint64()])
		basket := txns.Items
		if len(basket) > 12 {
			basket = basket[:12]
		}
		b, err := json.Marshal(serve.RecommendRequest{Basket: basket, K: 5})
		if err != nil {
			panic(err) // static struct; cannot fail
		}
		bodies[i] = b
	}
	return bodies
}

// serveArm stands up one HTTP server over the model and replays the request
// mix with so.Clients concurrent workers, measuring per-request latency.
func serveArm(m *model.Model, so ServeOptions, bodies [][]byte, cached bool) (metrics.ServeReport, error) {
	ix, err := serve.NewIndex(m, "bench")
	if err != nil {
		return metrics.ServeReport{}, err
	}
	var cache *serve.Cache
	if cached {
		cache = serve.NewCache(4096)
	}
	srv := serve.NewServer(serve.NewHolder(ix), cache, serve.ServerOptions{Registry: obs.NewRegistry()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	tr := &http.Transport{MaxIdleConns: so.Clients, MaxIdleConnsPerHost: so.Clients}
	client := &http.Client{Transport: tr, Timeout: 30 * time.Second}
	defer tr.CloseIdleConnections()

	var (
		wg            sync.WaitGroup
		hits, errors  atomic.Int64
		latencyShards = make([][]float64, so.Clients)
	)
	url := ts.URL + "/v1/recommend"
	start := time.Now()
	for c := 0; c < so.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lat := make([]float64, 0, so.Requests/so.Clients+1)
			for i := c; i < len(bodies); i += so.Clients {
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(bodies[i]))
				if err != nil {
					errors.Add(1)
					continue
				}
				var out serve.RecommendResponse
				decErr := json.NewDecoder(resp.Body).Decode(&out)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decErr != nil {
					errors.Add(1)
					continue
				}
				lat = append(lat, float64(time.Since(t0).Nanoseconds())/1e6)
				if out.Cached {
					hits.Add(1)
				}
			}
			latencyShards[c] = lat
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var latencies []float64
	for _, s := range latencyShards {
		latencies = append(latencies, s...)
	}
	sort.Float64s(latencies)
	ok := int64(len(latencies))
	rep := metrics.ServeReport{
		Dataset:  m.Meta.Dataset,
		Rules:    len(m.Rules),
		Clients:  so.Clients,
		Requests: so.Requests,
		Cache:    cached,
		Errors:   errors.Load(),
		QPS:      float64(ok) / elapsed.Seconds(),
		P50Ms:    percentile(latencies, 0.50),
		P99Ms:    percentile(latencies, 0.99),
	}
	if cached {
		rep.CacheHits = hits.Load()
		rep.CacheMisses = ok - hits.Load()
	}
	return rep, nil
}

// percentile returns the p-quantile of ascending-sorted values by
// nearest-rank, 0 when empty.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
