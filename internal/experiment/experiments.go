package experiment

import (
	"fmt"

	"pgarm/internal/core"
	"pgarm/internal/metrics"
)

// Table6 reproduces Table 6: average payload volume received per node at
// pass 2 for HPGM vs H-HPGM on R30F5 at 0.3% minimum support, for 8, 12 and
// 16 nodes. The paper reports 360.7/251.9/193.3 MB vs 12.5/9.6/7.8 MB — a
// 26–29× reduction whose *ratio* is the reproduction target.
func (e *Env) Table6() (*Table, error) {
	d, err := e.Dataset("R30F5")
	if err != nil {
		return nil, err
	}
	minSup := e.opt.PointMinSup
	t := &Table{
		Title:  fmt.Sprintf("Table 6: avg payload received per node, pass 2 (%s, minsup %.2g%%)", d.ds.Params.Name, minSup*100),
		Header: []string{"# of nodes", "HPGM (MB)", "H-HPGM (MB)", "reduction"},
		Notes: []string{
			"paper (full scale): 8 nodes 360.7 vs 12.5 MB, 12 nodes 251.9 vs 9.6, 16 nodes 193.3 vs 7.8 (26-29x)",
		},
	}
	for _, nodes := range []int{8, 12, 16} {
		h, err := e.run(d, core.HPGM, nodes, minSup, 0)
		if err != nil {
			return nil, err
		}
		hh, err := e.run(d, core.HHPGM, nodes, minSup, 0)
		if err != nil {
			return nil, err
		}
		hp, err := pass2(h)
		if err != nil {
			return nil, err
		}
		hhp, err := pass2(hh)
		if err != nil {
			return nil, err
		}
		ratio := 0.0
		if hhp.AvgBytesReceived() > 0 {
			ratio = hp.AvgBytesReceived() / hhp.AvgBytesReceived()
		}
		t.AddRow(fmt.Sprint(nodes), fmtMB(hp.AvgBytesReceived()), fmtMB(hhp.AvgBytesReceived()),
			fmt.Sprintf("%.1fx", ratio))
	}
	return t, nil
}

// Fig13 reproduces Figure 13: pass-2 execution time of HPGM vs H-HPGM as a
// function of minimum support, one table per dataset (R30F5, R30F3, R30F10),
// on Options.Nodes nodes. Time is the cost-model shared-nothing time (the
// slowest node); HPGM's curve should sit far above H-HPGM's at every point,
// dominated by its communication term.
func (e *Env) Fig13() ([]*Table, error) {
	var out []*Table
	for _, name := range []string{"R30F5", "R30F3", "R30F10"} {
		d, err := e.Dataset(name)
		if err != nil {
			return nil, err
		}
		t := &Table{
			Title:  fmt.Sprintf("Figure 13 (%s): pass-2 execution time, HPGM vs H-HPGM, %d nodes", name, e.opt.Nodes),
			Header: []string{"minsup %", "HPGM", "H-HPGM", "HPGM recv MB/node", "H-HPGM recv MB/node"},
			Notes:  []string{"modeled shared-nothing time = max over nodes of (probes + bytes + scan) under metrics.CostModel"},
		}
		for _, ms := range sortedCopy(e.opt.MinSups) {
			h, err := e.run(d, core.HPGM, e.opt.Nodes, ms, 0)
			if err != nil {
				return nil, err
			}
			hh, err := e.run(d, core.HHPGM, e.opt.Nodes, ms, 0)
			if err != nil {
				return nil, err
			}
			hp, err := pass2(h)
			if err != nil {
				return nil, err
			}
			hhp, err := pass2(hh)
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%.2f", ms*100),
				fmtDuration(e.opt.Cost.PassTime(*hp)),
				fmtDuration(e.opt.Cost.PassTime(*hhp)),
				fmtMB(hp.AvgBytesReceived()),
				fmtMB(hhp.AvgBytesReceived()))
		}
		out = append(out, t)
	}
	return out, nil
}

// Fig14 reproduces Figure 14: pass-2 execution time of NPGM, H-HPGM and the
// three duplicating variants versus minimum support under a per-node memory
// budget, one table per dataset. Expected shape: NPGM explodes once C_2
// stops fitting in one node's memory; TGD degenerates to H-HPGM at small
// support (no room for whole trees); FGD is best everywhere.
func (e *Env) Fig14() ([]*Table, error) {
	algs := []core.Algorithm{core.NPGM, core.HHPGM, core.HHPGMTGD, core.HHPGMPGD, core.HHPGMFGD}
	var out []*Table
	for _, name := range []string{"R30F5", "R30F3", "R30F10"} {
		d, err := e.Dataset(name)
		if err != nil {
			return nil, err
		}
		budget, err := e.autoBudget(d)
		if err != nil {
			return nil, err
		}
		t := &Table{
			Title: fmt.Sprintf("Figure 14 (%s): pass-2 execution time vs minimum support, %d nodes, M=%s MB/node",
				name, e.opt.Nodes, fmtMB(float64(budget))),
			Header: []string{"minsup %", "NPGM", "H-HPGM", "H-HPGM-TGD", "H-HPGM-PGD", "H-HPGM-FGD"},
			Notes: []string{
				"modeled shared-nothing time (max node) under metrics.CostModel",
				"NPGM re-scans its local disk once per candidate fragment when C2 exceeds M",
			},
		}
		for _, ms := range sortedCopy(e.opt.MinSups) {
			row := []string{fmt.Sprintf("%.2f", ms*100)}
			for _, alg := range algs {
				rs, err := e.run(d, alg, e.opt.Nodes, ms, budget)
				if err != nil {
					return nil, err
				}
				ps, err := pass2(rs)
				if err != nil {
					return nil, err
				}
				row = append(row, fmtDuration(e.opt.Cost.PassTime(*ps)))
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	return out, nil
}

// Fig15 reproduces Figure 15: the per-node distribution of candidate-table
// probes at pass 2 (R30F5, minsup 0.3%) for H-HPGM and the three duplicating
// variants — the load-balance picture. Returns a summary table plus an
// ASCII per-node bar chart for each algorithm.
func (e *Env) Fig15() (*Table, map[string]string, error) {
	d, err := e.Dataset("R30F5")
	if err != nil {
		return nil, nil, err
	}
	budget, err := e.autoBudget(d)
	if err != nil {
		return nil, nil, err
	}
	minSup := e.opt.PointMinSup
	algs := []core.Algorithm{core.HHPGM, core.HHPGMTGD, core.HHPGMPGD, core.HHPGMFGD}
	t := &Table{
		Title: fmt.Sprintf("Figure 15: per-node probe distribution, pass 2 (R30F5, minsup %.2g%%, %d nodes, M=%s MB)",
			minSup*100, e.opt.Nodes, fmtMB(float64(budget))),
		Header: []string{"algorithm", "min", "max", "mean", "max/mean", "cv", "duplicated"},
		Notes:  []string{"paper: H-HPGM heavily fractured; FGD almost flat"},
	}
	charts := make(map[string]string, len(algs))
	for _, alg := range algs {
		rs, err := e.run(d, alg, e.opt.Nodes, minSup, budget)
		if err != nil {
			return nil, nil, err
		}
		ps, err := pass2(rs)
		if err != nil {
			return nil, nil, err
		}
		sk := ps.ProbeSkew()
		t.AddRow(string(alg),
			fmt.Sprintf("%.0f", sk.Min), fmt.Sprintf("%.0f", sk.Max), fmt.Sprintf("%.0f", sk.Mean),
			fmt.Sprintf("%.2f", sk.MaxOverMean), fmt.Sprintf("%.3f", sk.CV),
			fmt.Sprint(ps.Duplicated))
		labels := make([]string, len(ps.Nodes))
		vals := make([]float64, len(ps.Nodes))
		for i, ns := range ps.Nodes {
			labels[i] = fmt.Sprintf("node %2d", ns.Node)
			vals[i] = float64(ns.Probes)
		}
		charts[string(alg)] = Bars(labels, vals, 50)
	}
	return t, charts, nil
}

// Fig16 reproduces Figure 16: speedup over 4 nodes for 4/6/8/12/16 nodes on
// R30F5 at 0.5% and 0.3% minimum support, for H-HPGM and the duplicating
// variants. Speedup uses the modeled pass-2 time; the paper's shape is
// FGD ≥ PGD ≥ TGD ≥ H-HPGM in linearity.
func (e *Env) Fig16() ([]*Table, error) {
	d, err := e.Dataset("R30F5")
	if err != nil {
		return nil, err
	}
	budget, err := e.autoBudget(d)
	if err != nil {
		return nil, err
	}
	algs := []core.Algorithm{core.HHPGM, core.HHPGMTGD, core.HHPGMPGD, core.HHPGMFGD}
	nodeCounts := []int{4, 6, 8, 12, 16}
	var out []*Table
	for _, ms := range e.opt.Fig16MinSups {
		t := &Table{
			Title:  fmt.Sprintf("Figure 16: speedup vs nodes (R30F5, minsup %.1f%%, normalized to 4 nodes, M=%s MB)", ms*100, fmtMB(float64(budget))),
			Header: append([]string{"# nodes"}, algNames(algs)...),
			Notes:  []string{"speedup = modeled pass-2 time at 4 nodes / modeled pass-2 time at N nodes"},
		}
		base := make(map[core.Algorithm]float64)
		for _, nodes := range nodeCounts {
			row := []string{fmt.Sprint(nodes)}
			for _, alg := range algs {
				rs, err := e.run(d, alg, nodes, ms, budget)
				if err != nil {
					return nil, err
				}
				ps, err := pass2(rs)
				if err != nil {
					return nil, err
				}
				tm := e.opt.Cost.PassTime(*ps).Seconds()
				if nodes == nodeCounts[0] {
					base[alg] = tm
				}
				sp := 0.0
				if tm > 0 {
					sp = base[alg] / tm * float64(nodeCounts[0])
				}
				row = append(row, fmt.Sprintf("%.2f", sp))
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	return out, nil
}

func algNames(algs []core.Algorithm) []string {
	out := make([]string, len(algs))
	for i, a := range algs {
		out[i] = string(a)
	}
	return out
}

// Table5 renders the dataset parameter table.
func (e *Env) Table5() *Table {
	t := &Table{
		Title:  "Table 5: dataset parameters (scaled transaction counts in parentheses)",
		Header: []string{"parameter", "R30F5", "R30F3", "R30F10"},
	}
	// Static paper values with this run's scaled |D|.
	scaled := func() string {
		return fmt.Sprintf("3200000 (%d)", int(3200000*e.opt.Scale))
	}
	t.AddRow("Number of transactions", scaled(), scaled(), scaled())
	t.AddRow("Average size of the transactions", "10", "10", "10")
	t.AddRow("Average size of the maximal potentially large itemsets", "5", "5", "5")
	t.AddRow("Number of maximal potentially large itemsets", "10000", "10000", "10000")
	t.AddRow("Number of items", "30000", "30000", "30000")
	t.AddRow("Number of roots", "30", "30", "30")
	t.AddRow("Fanout", "5", "3", "10")
	return t
}

var _ = metrics.Skew{} // imported for documentation references
