package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"pgarm/internal/core"
	"pgarm/internal/cumulate"
	"pgarm/internal/driver"
	"pgarm/internal/gen"
	"pgarm/internal/itemset"
	"pgarm/internal/metrics"
	"pgarm/internal/txn"
)

// ScanOptions parameterize the storage-format scan experiment
// (`pgarm-bench -experiment scan`). Unlike the modeled mining experiments it
// measures real wall-clock on the machine running the bench.
type ScanOptions struct {
	// Dataset names the Table 5 configuration to generate.
	Dataset string
	// ScaleFactors multiply the environment's Scale to form the decode-arm
	// scales, ascending; the largest also hosts the mining arm.
	ScaleFactors []float64
	// Workers is the scan parallelism of the decode arm and the worker sweep
	// baseline of the mining arm.
	Workers int
	// Reps is how many times each decode measurement repeats; the minimum is
	// reported.
	Reps int
	// MinSup is the mining arm's support threshold. High support keeps
	// late-pass candidate sets small — the regime where block skipping
	// materializes: a block is skippable only when every remaining candidate
	// has at least one item absent from the block's whole closure.
	MinSup float64
	// TxnsPerBlock is the mining arm's columnar block size. Small blocks make
	// per-block item sets sparse enough for the skip filters to bite: an item
	// at 5% support is absent from an 8-transaction block two times in three,
	// but almost never from a 256-transaction one.
	TxnsPerBlock int
	// Nodes is the mining arm's cluster size for the parallel identity sweep.
	Nodes int
	// Mmap opens columnar partitions through a read-only mapping instead of
	// per-scan preads (falls back to pread where mmap is unavailable).
	Mmap bool
}

// ScanDefaults returns the scan bench configuration used by pgarm-bench.
func ScanDefaults() ScanOptions {
	return ScanOptions{
		Dataset:      "R30F5",
		ScaleFactors: []float64{0.25, 0.5, 1},
		Workers:      4,
		Reps:         3,
		MinSup:       0.05,
		TxnsPerBlock: 8,
		Nodes:        3,
	}
}

// Scan runs the storage-format experiment: a decode-throughput comparison of
// the row and columnar partition formats at several scales, then a mining arm
// over columnar partitions measuring how much the per-pass block predicates
// skip — with bit-identity checks of every arm against the in-memory
// reference at several worker counts.
func (e *Env) Scan(o ScanOptions) ([]*Table, []metrics.ScanReport, error) {
	if o.Dataset == "" {
		o.Dataset = "R30F5"
	}
	if len(o.ScaleFactors) == 0 {
		o.ScaleFactors = []float64{0.25, 0.5, 1}
	}
	if o.Workers < 1 {
		o.Workers = 4
	}
	if o.Reps < 1 {
		o.Reps = 3
	}
	if o.MinSup <= 0 {
		o.MinSup = 0.05
	}
	if o.TxnsPerBlock < 1 {
		o.TxnsPerBlock = 8
	}
	if o.Nodes < 2 {
		o.Nodes = 3
	}
	dir, err := os.MkdirTemp("", "pgarm-scan-*")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(dir)

	var reports []metrics.ScanReport
	decodeTable := &Table{
		Title:  fmt.Sprintf("Scan throughput: row vs columnar (%s, %d workers, best of %d)", o.Dataset, o.Workers, o.Reps),
		Header: []string{"txns", "format", "file KB", "scan ms", "speedup"},
	}

	var largest *gen.Dataset
	for _, f := range o.ScaleFactors {
		scale := e.opt.Scale * f
		p, err := gen.ByName(o.Dataset)
		if err != nil {
			return nil, nil, err
		}
		ds, err := gen.Generate(p.Scaled(scale))
		if err != nil {
			return nil, nil, err
		}
		largest = ds

		rowPath := filepath.Join(dir, fmt.Sprintf("%s-%g.ptx", o.Dataset, scale))
		colPath := filepath.Join(dir, fmt.Sprintf("%s-%g.ptc", o.Dataset, scale))
		if err := txn.WriteFile(rowPath, ds.DB); err != nil {
			return nil, nil, err
		}
		if err := txn.WriteColumnar(colPath, ds.DB, ds.Taxonomy, txn.DefaultTxnsPerBlock); err != nil {
			return nil, nil, err
		}

		var rowMS float64
		for _, format := range []string{"row", "columnar"} {
			path := rowPath
			if format == "columnar" {
				path = colPath
			}
			src, err := txn.OpenWith(path, txn.OpenOptions{Mmap: o.Mmap})
			if err != nil {
				return nil, nil, err
			}
			bytes, ms, err := timeScan(src, ds.DB.Len(), o.Workers, o.Reps, path)
			if err != nil {
				return nil, nil, err
			}
			rep := metrics.ScanReport{
				Kind: "decode", Dataset: o.Dataset, Scale: scale, Format: format,
				Txns: ds.DB.Len(), FileBytes: bytes, Workers: o.Workers,
				ScanMS: ms, Speedup: 1, Identical: true,
			}
			if format == "row" {
				rowMS = ms
			} else if ms > 0 {
				rep.Speedup = rowMS / ms
			}
			reports = append(reports, rep)
			decodeTable.AddRow(
				fmt.Sprintf("%d", ds.DB.Len()), format,
				fmt.Sprintf("%.0f", float64(bytes)/1024),
				fmt.Sprintf("%.2f", ms),
				fmt.Sprintf("%.2f", rep.Speedup))
		}
	}
	decodeTable.Notes = []string{
		"row: every worker decodes the full partition and keeps its ordinals (the pre-columnar path)",
		"columnar: workers decode disjoint block shards, so decode itself parallelizes",
	}

	mineTable, mineReports, err := e.scanMineArm(o, largest, dir)
	if err != nil {
		return nil, nil, err
	}
	reports = append(reports, mineReports...)
	return []*Table{decodeTable, mineTable}, reports, nil
}

// timeScan measures a full scan of src with the block-aware sharded driver,
// returning the file size and the best wall-clock of reps repetitions. The
// consume loop folds item counts into per-worker sinks so the compiler cannot
// elide the decode.
func timeScan(src txn.Scanner, wantTxns, workers, reps int, path string) (int64, float64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, 0, err
	}
	best := 0.0
	for r := 0; r < reps; r++ {
		sink := make([]int64, workers)
		txns := make([]int64, workers)
		start := time.Now()
		err := driver.ScanTxnShards(src, nil, workers, driver.ShardObs{}, nil, func(w int, t txn.Transaction) error {
			txns[w]++
			sink[w] += int64(len(t.Items))
			return nil
		})
		ms := float64(time.Since(start).Microseconds()) / 1000
		if err != nil {
			return 0, 0, err
		}
		var total int64
		for _, n := range txns {
			total += n
		}
		if total != int64(wantTxns) {
			return 0, 0, fmt.Errorf("scan of %s saw %d transactions, want %d", path, total, wantTxns)
		}
		if r == 0 || ms < best {
			best = ms
		}
	}
	return fi.Size(), best, nil
}

// scanMineArm runs the mining side at the largest scale: sequential Cumulate
// over memory, row and columnar sources (block-skip counters + bit-identity),
// then parallel H-HPGM-FGD over columnar partitions at several worker counts
// against the in-memory reference.
func (e *Env) scanMineArm(o ScanOptions, ds *gen.Dataset, dir string) (*Table, []metrics.ScanReport, error) {
	var reports []metrics.ScanReport
	table := &Table{
		Title: fmt.Sprintf("Block skipping while mining (%s, minsup %.3g%%, %d txns/block)",
			o.Dataset, o.MinSup*100, o.TxnsPerBlock),
		Header: []string{"arm", "workers", "passes", "blocks scanned", "blocks skipped", "skip %", "identical"},
	}
	cfg := cumulate.Config{MinSupport: o.MinSup}

	ref, err := cumulate.Mine(ds.Taxonomy, ds.DB, cfg)
	if err != nil {
		return nil, nil, err
	}
	rowPath := filepath.Join(dir, "mine.ptx")
	colPath := filepath.Join(dir, "mine.ptc")
	if err := txn.WriteFile(rowPath, ds.DB); err != nil {
		return nil, nil, err
	}
	if err := txn.WriteColumnar(colPath, ds.DB, ds.Taxonomy, o.TxnsPerBlock); err != nil {
		return nil, nil, err
	}
	for _, format := range []string{"memory", "row", "columnar"} {
		var src txn.Scanner = ds.DB
		if format != "memory" {
			path := rowPath
			if format == "columnar" {
				path = colPath
			}
			f, err := txn.OpenWith(path, txn.OpenOptions{Mmap: o.Mmap})
			if err != nil {
				return nil, nil, err
			}
			src = f
		}
		res, err := cumulate.Mine(ds.Taxonomy, src, cfg)
		if err != nil {
			return nil, nil, err
		}
		identical := equalLevels(res.Large, ref.Large)
		rep := metrics.ScanReport{
			Kind: "mine", Dataset: o.Dataset, Scale: float64(ds.DB.Len()), Format: format,
			Txns: ds.DB.Len(), Workers: 1, MinSup: o.MinSup, TxnsPerBlock: o.TxnsPerBlock,
			Passes: len(res.Large), BlocksScanned: res.BlocksScanned,
			BlocksSkipped: res.BlocksSkipped, SkipRatio: skipRatio(res.BlocksScanned, res.BlocksSkipped),
			Identical: identical,
		}
		reports = append(reports, rep)
		table.AddRow("cumulate/"+format, "1", fmt.Sprintf("%d", rep.Passes),
			fmt.Sprintf("%d", rep.BlocksScanned), fmt.Sprintf("%d", rep.BlocksSkipped),
			fmt.Sprintf("%.1f", rep.SkipRatio*100), fmt.Sprintf("%v", identical))
	}

	// Parallel identity sweep: the same columnar partitions mined by the
	// shared-nothing runtime at several worker counts must reproduce the
	// in-memory cluster's itemsets bit-for-bit.
	memParts := txn.Partition(ds.DB, o.Nodes)
	memScanners := make([]txn.Scanner, len(memParts))
	for i := range memParts {
		memScanners[i] = memParts[i]
	}
	colParts := make([]txn.Scanner, len(memParts))
	for i, part := range memParts {
		path := filepath.Join(dir, fmt.Sprintf("mine.n%02d.ptc", i))
		if err := txn.WriteColumnar(path, part, ds.Taxonomy, o.TxnsPerBlock); err != nil {
			return nil, nil, err
		}
		f, err := txn.OpenColumnarWith(path, txn.OpenOptions{Mmap: o.Mmap})
		if err != nil {
			return nil, nil, err
		}
		colParts[i] = f
	}
	coreCfg := core.Config{Algorithm: core.HHPGMFGD, MinSupport: o.MinSup}
	coreRef, err := core.Mine(ds.Taxonomy, memScanners, coreCfg)
	if err != nil {
		return nil, nil, err
	}
	for _, w := range []int{1, 2, 4, 8} {
		wcfg := coreCfg
		wcfg.Workers = w
		res, err := core.Mine(ds.Taxonomy, colParts, wcfg)
		if err != nil {
			return nil, nil, err
		}
		identical := equalLevels(res.Large, coreRef.Large)
		var scanned, skipped int64
		for _, p := range res.Stats.Passes {
			for _, n := range p.Nodes {
				scanned += n.BlocksScanned
				skipped += n.BlocksSkipped
			}
		}
		rep := metrics.ScanReport{
			Kind: "mine", Dataset: o.Dataset, Scale: float64(ds.DB.Len()), Format: "columnar",
			Txns: ds.DB.Len(), Workers: w, MinSup: o.MinSup, TxnsPerBlock: o.TxnsPerBlock,
			Passes: len(res.Large), BlocksScanned: scanned, BlocksSkipped: skipped,
			SkipRatio: skipRatio(scanned, skipped), Identical: identical,
		}
		reports = append(reports, rep)
		table.AddRow(string(core.HHPGMFGD)+"/columnar", fmt.Sprintf("%d", w),
			fmt.Sprintf("%d", rep.Passes), fmt.Sprintf("%d", scanned),
			fmt.Sprintf("%d", skipped), fmt.Sprintf("%.1f", rep.SkipRatio*100),
			fmt.Sprintf("%v", identical))
	}
	table.Notes = []string{
		"identical: frequent itemsets and counts match the in-memory reference bit-for-bit",
		"skipped blocks were ruled out by the per-pass candidate predicate before any decode",
	}
	return table, reports, nil
}

// skipRatio is skipped / (scanned + skipped), 0 when nothing was visited.
func skipRatio(scanned, skipped int64) float64 {
	if scanned+skipped == 0 {
		return 0
	}
	return float64(skipped) / float64(scanned+skipped)
}

// equalLevels compares two frequent-itemset pyramids including counts.
func equalLevels(a, b [][]itemset.Counted) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if len(a[k]) != len(b[k]) {
			return false
		}
		for i := range a[k] {
			x, y := a[k][i], b[k][i]
			if x.Count != y.Count || len(x.Items) != len(y.Items) {
				return false
			}
			for j := range x.Items {
				if x.Items[j] != y.Items[j] {
					return false
				}
			}
		}
	}
	return true
}
