package experiment

import (
	"fmt"
	"time"

	"pgarm/internal/core"
	"pgarm/internal/cumulate"
	"pgarm/internal/fpg"
	"pgarm/internal/metrics"
)

// FpgOptions parameterize the FP-Growth head-to-head
// (`pgarm-bench -experiment fpg`): the same partitioned dataset mined at
// every swept support by the candidate-generate-and-count arms and by the
// pattern-growth engine. The sweep runs into the low-minsup regime, where
// Apriori's candidate explosion is the dominant cost and pattern growth is
// expected to pull away. Arm timings are wall-clock on the bench machine
// (the two families do incomparable work, so the modeled cost of the paper
// experiments does not apply); identity against sequential Cumulate is
// asserted per arm and per support level.
type FpgOptions struct {
	// Dataset names the Table 5 configuration to generate.
	Dataset string
	// MinSups is the support sweep, descending into the low-minsup regime.
	MinSups []float64
	// Algorithms are the candidate-engine arms raced against FPG.
	Algorithms []core.Algorithm
}

// FpgDefaults returns the fpg bench configuration used by pgarm-bench.
func FpgDefaults() FpgOptions {
	return FpgOptions{
		Dataset:    "R30F5",
		MinSups:    []float64{0.01, 0.005, 0.003, 0.002},
		Algorithms: []core.Algorithm{core.HHPGM, core.HHPGMFGD},
	}
}

// Fpg runs the FP-Growth vs. Cumulate-family head-to-head and returns the
// rendered table plus one FpgReport per arm × support level.
func (e *Env) Fpg(o FpgOptions) (*Table, []metrics.FpgReport, error) {
	if o.Dataset == "" {
		o.Dataset = "R30F5"
	}
	if len(o.MinSups) == 0 {
		o.MinSups = FpgDefaults().MinSups
	}
	if len(o.Algorithms) == 0 {
		o.Algorithms = FpgDefaults().Algorithms
	}
	d, err := e.Dataset(o.Dataset)
	if err != nil {
		return nil, nil, err
	}
	parts := d.Parts(e.opt.Nodes)

	var reports []metrics.FpgReport
	t := &Table{
		Title: fmt.Sprintf("FP-Growth vs. candidate engines (%s, %d nodes, %d workers, wall-clock)",
			o.Dataset, e.opt.Nodes, e.opt.Workers),
		Header: []string{"minsup %", "arm", "candidates", "itemsets", "elapsed", "vs FPG", "identical"},
	}

	for _, minSup := range sortedCopy(o.MinSups) {
		ref, err := cumulate.Mine(d.ds.Taxonomy, d.ds.DB, cumulate.Config{MinSupport: minSup})
		if err != nil {
			return nil, nil, fmt.Errorf("fpg reference at minsup %g: %w", minSup, err)
		}

		fres, err := fpg.Mine(d.ds.Taxonomy, parts, fpg.Config{
			MinSupport: minSup,
			Fabric:     e.opt.Fabric,
			Workers:    e.opt.Workers,
			Tracer:     e.opt.Tracer,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("fpg arm at minsup %g: %w", minSup, err)
		}
		fres.Stats.Dataset = d.ds.Params.Name
		e.runs = append(e.runs, fres.Stats)
		fpgRow := metrics.FpgReport{
			Arm: fpg.Engine, Dataset: o.Dataset, MinSup: minSup,
			Nodes: e.opt.Nodes, Workers: e.opt.Workers,
			ElapsedMS:  float64(fres.Stats.Elapsed.Microseconds()) / 1000,
			Levels:     len(fres.Large),
			Itemsets:   len(fres.All()),
			Candidates: sumCandidates(fres.Stats),
			SpeedupX:   1,
			Identical:  equalLevels(fres.Large, ref.Large),
		}

		var armRows []metrics.FpgReport
		for _, alg := range o.Algorithms {
			res, err := core.Mine(d.ds.Taxonomy, parts, core.Config{
				Algorithm:  alg,
				MinSupport: minSup,
				Fabric:     e.opt.Fabric,
				Workers:    e.opt.Workers,
				Tracer:     e.opt.Tracer,
			})
			if err != nil {
				return nil, nil, fmt.Errorf("fpg arm %s at minsup %g: %w", alg, minSup, err)
			}
			res.Stats.Dataset = d.ds.Params.Name
			e.runs = append(e.runs, res.Stats)
			row := metrics.FpgReport{
				Arm: string(alg), Dataset: o.Dataset, MinSup: minSup,
				Nodes: e.opt.Nodes, Workers: e.opt.Workers,
				ElapsedMS:  float64(res.Stats.Elapsed.Microseconds()) / 1000,
				Levels:     len(res.Large),
				Itemsets:   len(res.All()),
				Candidates: sumCandidates(res.Stats),
				Identical:  equalLevels(res.Large, ref.Large),
			}
			if fpgRow.ElapsedMS > 0 {
				row.SpeedupX = row.ElapsedMS / fpgRow.ElapsedMS
			}
			armRows = append(armRows, row)
		}

		rows := append(armRows, fpgRow)
		for _, r := range rows {
			vs := ""
			if r.Arm != fpg.Engine {
				vs = fmt.Sprintf("%.2fx", r.SpeedupX)
			}
			t.AddRow(fmt.Sprintf("%.3g", minSup*100), r.Arm,
				fmt.Sprintf("%d", r.Candidates), fmt.Sprintf("%d", r.Itemsets),
				fmtDuration(msToDuration(r.ElapsedMS)), vs, fmt.Sprintf("%v", r.Identical))
		}
		reports = append(reports, rows...)
	}

	t.Notes = []string{
		"every arm mines the identical round-robin partitioning; timings are wall-clock, full depth (no MaxK bound)",
		"candidates: total |C_k| across k >= 2 for the generate-and-count arms; suffix-task count for FPG",
		"vs FPG: the arm's elapsed over FPG's at the same support (>1 = FPG faster)",
		"identical: frequent itemsets and counts match the sequential Cumulate reference bit-for-bit",
	}
	return t, reports, nil
}

// msToDuration converts report milliseconds back to a duration for display.
func msToDuration(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}

// sumCandidates totals the candidate counts of every k >= 2 pass.
func sumCandidates(rs *metrics.RunStats) int {
	n := 0
	for _, ps := range rs.Passes {
		if ps.Pass >= 2 {
			n += ps.Candidates
		}
	}
	return n
}
