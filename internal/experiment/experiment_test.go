package experiment

import (
	"strconv"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:  "demo",
		Header: []string{"name", "value"},
		Notes:  []string{"a note"},
	}
	tbl.AddRow("alpha", "12.5")
	tbl.AddRow("beta-long-name", "3")
	out := tbl.Render()
	for _, want := range []string{"demo", "name", "alpha", "12.5", "note: a note", "===="} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header row and data rows align to the same width.
	var width int
	for _, l := range lines[2:5] {
		if width == 0 {
			width = len(l)
		}
	}
	if width == 0 {
		t.Fatalf("unexpected layout:\n%s", out)
	}
}

func TestLooksNumeric(t *testing.T) {
	for _, s := range []string{"12", "3.5", "-1", "4x", "10ms", "99%", "1.2e3"} {
		if !looksNumeric(s) {
			t.Errorf("%q should look numeric", s)
		}
	}
	for _, s := range []string{"", "abc", "node 1", "H-HPGM"} {
		if looksNumeric(s) {
			t.Errorf("%q should not look numeric", s)
		}
	}
}

func TestBars(t *testing.T) {
	out := Bars([]string{"a", "bb"}, []float64{10, 5}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("bars = %q", out)
	}
	if !strings.Contains(lines[0], "##########") {
		t.Errorf("max bar not full width: %q", lines[0])
	}
	if !strings.Contains(lines[1], "#####") || strings.Contains(lines[1], "######") {
		t.Errorf("half bar wrong: %q", lines[1])
	}
	if Bars(nil, nil, 0) != "" {
		t.Error("empty bars should render empty")
	}
}

func TestNewEnvValidation(t *testing.T) {
	opt := Defaults()
	if _, err := NewEnv(opt); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
	bad := opt
	bad.Scale = 0
	if _, err := NewEnv(bad); err == nil {
		t.Error("zero scale must fail")
	}
	bad = opt
	bad.Nodes = 1
	if _, err := NewEnv(bad); err == nil {
		t.Error("single node must fail")
	}
	bad = opt
	bad.MinSups = nil
	if _, err := NewEnv(bad); err == nil {
		t.Error("empty sweep must fail")
	}
}

func TestDatasetCaching(t *testing.T) {
	opt := Defaults()
	opt.Scale = 0.0004 // ~1280 txns
	env, err := NewEnv(opt)
	if err != nil {
		t.Fatal(err)
	}
	a, err := env.Dataset("R30F5")
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.Dataset("R30F5")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("dataset not cached")
	}
	if _, err := env.Dataset("nope"); err == nil {
		t.Error("unknown dataset must fail")
	}
	p1 := a.Parts(4)
	p2 := a.Parts(4)
	if &p1[0] == nil || len(p1) != 4 || len(p2) != 4 {
		t.Error("partitioning broken")
	}
}

func TestTable5Static(t *testing.T) {
	env, err := NewEnv(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	out := env.Table5().Render()
	for _, want := range []string{"R30F5", "R30F3", "R30F10", "Fanout", "3200000"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table5 missing %q", want)
		}
	}
}

func TestFmtHelpers(t *testing.T) {
	if got := fmtMB(float64(2 << 20)); got != "2.0" {
		t.Errorf("fmtMB(2MB) = %q", got)
	}
	if got := fmtMB(512 << 20); got != "512" {
		t.Errorf("fmtMB(512MB) = %q", got)
	}
	if got := fmtMB(1024); got != "0.001" {
		t.Errorf("fmtMB(1KB) = %q", got)
	}
	if got := fmtDuration(1500 * 1e6); got != "1.50s" {
		t.Errorf("fmtDuration = %q", got)
	}
	if got := fmtDuration(2 * 1e6); got != "2.0ms" {
		t.Errorf("fmtDuration(2ms) = %q", got)
	}
	if got := fmtDuration(900); !strings.Contains(got, "µs") {
		t.Errorf("fmtDuration(900ns) = %q", got)
	}
	sorted := sortedCopy([]float64{0.003, 0.02, 0.01})
	if sorted[0] != 0.02 || sorted[2] != 0.003 {
		t.Errorf("sortedCopy = %v", sorted)
	}
}

// TestTable6SmallScale runs the real experiment at a tiny scale: an
// end-to-end check that the harness produces the paper's qualitative result
// (H-HPGM receives less than HPGM at every node count).
func TestTable6SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run in short mode")
	}
	opt := Defaults()
	opt.Scale = 0.0006 // ~1900 txns
	opt.MinSups = []float64{0.02}
	opt.PointMinSup = 0.02 // 0.3% sits below the noise floor at this scale
	env, err := NewEnv(opt)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := env.Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		// reduction column like "12.3x" must be > 1.
		if !strings.HasSuffix(row[3], "x") {
			t.Fatalf("bad reduction cell %q", row[3])
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "x"), 64)
		if err != nil {
			t.Fatalf("parse %q: %v", row[3], err)
		}
		if v <= 1 {
			t.Errorf("H-HPGM did not reduce traffic at %s nodes: %gx", row[0], v)
		}
	}
	t.Log("\n" + tbl.Render())
}
