package experiment

import (
	"strings"
	"testing"

	"pgarm/internal/core"
)

// tinyEnv builds an environment small enough for CI: ~1300 transactions,
// 8 nodes, two support points.
func tinyEnv(t *testing.T) *Env {
	t.Helper()
	opt := Defaults()
	opt.Scale = 0.0004
	opt.Nodes = 8
	opt.MinSups = []float64{0.02, 0.01}
	opt.PointMinSup = 0.02
	opt.Fig16MinSups = []float64{0.02}
	env, err := NewEnv(opt)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestFig13SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run in short mode")
	}
	env := tinyEnv(t)
	tables, err := env.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("tables = %d, want one per dataset", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) != 2 {
			t.Errorf("%s: rows = %d", tbl.Title, len(tbl.Rows))
		}
		out := tbl.Render()
		if !strings.Contains(out, "HPGM") || !strings.Contains(out, "H-HPGM") {
			t.Errorf("missing algorithms:\n%s", out)
		}
	}
}

func TestFig14SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run in short mode")
	}
	env := tinyEnv(t)
	tables, err := env.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("tables = %d", len(tables))
	}
	for _, tbl := range tables {
		for _, row := range tbl.Rows {
			if len(row) != 6 { // minsup + 5 algorithms
				t.Errorf("row %v has %d cells", row, len(row))
			}
		}
	}
}

func TestFig15SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run in short mode")
	}
	env := tinyEnv(t)
	tbl, charts, err := env.Fig15()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 algorithms", len(tbl.Rows))
	}
	for _, alg := range []core.Algorithm{core.HHPGM, core.HHPGMTGD, core.HHPGMPGD, core.HHPGMFGD} {
		chart, ok := charts[string(alg)]
		if !ok || !strings.Contains(chart, "node") {
			t.Errorf("missing chart for %s", alg)
		}
	}
}

func TestFig16SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run in short mode")
	}
	env := tinyEnv(t)
	tables, err := env.Fig16()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("tables = %d, want one per configured support level", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) != 5 {
			t.Errorf("rows = %d, want 5 node counts", len(tbl.Rows))
		}
		// The 4-node row is the normalization base: speedup 4.00 for every
		// algorithm.
		for _, cell := range tbl.Rows[0][1:] {
			if cell != "4.00" {
				t.Errorf("base row cell = %q, want 4.00", cell)
			}
		}
	}
}
