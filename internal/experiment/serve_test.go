package experiment

import (
	"strings"
	"testing"
)

func TestServeBenchSmall(t *testing.T) {
	opt := Defaults()
	opt.Scale = 0.0005 // clamps to the 1,000-transaction floor
	opt.PointMinSup = 0.02
	env, err := NewEnv(opt)
	if err != nil {
		t.Fatal(err)
	}
	so := ServeDefaults()
	so.Clients = 2
	so.Requests = 60
	tbl, reps, err := env.Serve(so)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 || reps[0].Cache || !reps[1].Cache {
		t.Fatalf("want [cache-off cache-on] arms, got %+v", reps)
	}
	for _, r := range reps {
		if r.Errors != 0 {
			t.Errorf("arm cache=%v saw %d errors", r.Cache, r.Errors)
		}
		if r.QPS <= 0 || r.P50Ms <= 0 || r.P99Ms < r.P50Ms {
			t.Errorf("arm cache=%v has degenerate latency stats: %+v", r.Cache, r)
		}
		if r.Requests != so.Requests || r.Clients != so.Clients {
			t.Errorf("arm cache=%v misreports workload: %+v", r.Cache, r)
		}
	}
	if reps[0].CacheHits != 0 || reps[0].CacheMisses != 0 {
		t.Errorf("cache-off arm reports cache traffic: %+v", reps[0])
	}
	if got := reps[1].CacheHits + reps[1].CacheMisses; got != int64(so.Requests) {
		t.Errorf("cache-on arm hits+misses = %d, want %d", got, so.Requests)
	}
	// The zipf mix repeats baskets, so a working cache must hit at least once.
	if reps[1].CacheHits == 0 {
		t.Error("cache-on arm never hit the cache")
	}
	for _, want := range []string{"Serving load", "cache", "QPS", "p50 ms"} {
		if !strings.Contains(tbl.Render(), want) {
			t.Errorf("table missing %q", want)
		}
	}
}

func TestPercentile(t *testing.T) {
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %g", got)
	}
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(vals, 0.5); got != 5 {
		t.Errorf("p50 = %g, want 5", got)
	}
	if got := percentile(vals, 0.99); got != 10 {
		t.Errorf("p99 = %g, want 10", got)
	}
	if got := percentile(vals, 0.01); got != 1 {
		t.Errorf("p1 = %g, want 1", got)
	}
}
