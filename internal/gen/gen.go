// Package gen implements the synthetic retail-transaction generator of
// Srikant & Agrawal (VLDB'95, §4 "Mining Generalized Association Rules"),
// the exact procedure the paper uses to build its evaluation datasets
// (Table 5): a forest taxonomy, a pool of weighted "potentially large"
// itemsets with inter-itemset correlation and per-itemset corruption, and
// transactions assembled from those itemsets with interior items specialized
// to randomly chosen leaf descendants.
//
// The three named configurations R30F5, R30F3 and R30F10 match Table 5 of
// the paper (3.2M transactions, 30,000 items, 30 roots, fanout 5/3/10).
// Scaled lets benchmarks shrink the transaction count while preserving the
// generative structure — and therefore the skew and frequency shape the
// parallel algorithms are sensitive to.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"pgarm/internal/item"
	"pgarm/internal/taxonomy"
	"pgarm/internal/txn"
)

// Params are the knobs of Table 5 plus the standard Quest-generator
// parameters the paper inherits from SA95.
type Params struct {
	Name string // dataset label, e.g. "R30F5"

	NumTxns        int     // |D|: number of transactions
	AvgTxnSize     float64 // |T|: average basket size (Poisson mean)
	AvgPatternSize float64 // |I|: average size of maximal potentially large itemsets
	NumPatterns    int     // |L|: number of maximal potentially large itemsets
	NumItems       int     // N: total items including interior hierarchy nodes
	Roots          int     // R: number of hierarchy roots
	Fanout         int     // F: tree fanout

	// CorrelationMean is the mean of the exponential fraction of items each
	// pattern reuses from its predecessor (SA95 uses 0.5).
	CorrelationMean float64
	// CorruptionMean/SD parameterize the per-pattern corruption level
	// (normal, SA95 uses 0.5 / 0.1): while a uniform draw stays below the
	// level, items are dropped from the inserted pattern instance.
	CorruptionMean, CorruptionSD float64

	Seed int64
}

// R30F5 returns the paper's primary dataset configuration: 30 roots,
// fanout 5, 5–6 hierarchy levels.
func R30F5() Params { return paperParams("R30F5", 5) }

// R30F3 returns the deep-hierarchy configuration: fanout 3, 6–7 levels.
func R30F3() Params { return paperParams("R30F3", 3) }

// R30F10 returns the shallow-hierarchy configuration: fanout 10, 3–4 levels.
func R30F10() Params { return paperParams("R30F10", 10) }

func paperParams(name string, fanout int) Params {
	return Params{
		Name:            name,
		NumTxns:         3200000,
		AvgTxnSize:      10,
		AvgPatternSize:  5,
		NumPatterns:     10000,
		NumItems:        30000,
		Roots:           30,
		Fanout:          fanout,
		CorrelationMean: 0.5,
		CorruptionMean:  0.5,
		CorruptionSD:    0.1,
		Seed:            1998,
	}
}

// ByName returns the named paper configuration (case-sensitive).
func ByName(name string) (Params, error) {
	switch name {
	case "R30F5":
		return R30F5(), nil
	case "R30F3":
		return R30F3(), nil
	case "R30F10":
		return R30F10(), nil
	}
	return Params{}, fmt.Errorf("gen: unknown dataset %q (want R30F5, R30F3 or R30F10)", name)
}

// Scaled returns a copy with the transaction count multiplied by f (minimum
// 1,000) and a "xSCALE" suffix on the name. Item universe, taxonomy and
// pattern pool are unchanged, so item frequencies relative to |D| — and
// hence which itemsets are large at a given minimum support — keep the same
// shape.
func (p Params) Scaled(f float64) Params {
	q := p
	q.NumTxns = int(float64(p.NumTxns) * f)
	if q.NumTxns < 1000 {
		q.NumTxns = 1000
	}
	q.Name = fmt.Sprintf("%s@%g", p.Name, f)
	return q
}

// Describe renders the parameter table (the repo's rendition of Table 5).
func (p Params) Describe() string {
	return fmt.Sprintf(
		"Dataset %s\n"+
			"  Number of transactions                                  %d\n"+
			"  Average size of the transactions                        %g\n"+
			"  Average size of the maximal potentially large itemsets  %g\n"+
			"  Number of maximal potentially large itemsets            %d\n"+
			"  Number of items                                         %d\n"+
			"  Number of roots                                         %d\n"+
			"  Fanout                                                  %d\n",
		p.Name, p.NumTxns, p.AvgTxnSize, p.AvgPatternSize, p.NumPatterns,
		p.NumItems, p.Roots, p.Fanout)
}

// Dataset is a generated taxonomy plus transaction database.
type Dataset struct {
	Params   Params
	Taxonomy *taxonomy.Taxonomy
	DB       *txn.DB
}

// pattern is one potentially large itemset with its selection weight and
// corruption level.
type pattern struct {
	items      []item.Item
	weight     float64
	corruption float64
}

// Generate builds the taxonomy and the transaction database in memory.
func Generate(p Params) (*Dataset, error) {
	db := &txn.DB{}
	tax, err := Stream(p, func(t txn.Transaction) error {
		db.Append(t)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Dataset{Params: p, Taxonomy: tax, DB: db}, nil
}

// Stream generates the dataset one transaction at a time without ever
// materializing the database, so paper-scale datasets (3.2M transactions)
// can be spilled straight to disk or appended to a stream log in constant
// memory. Transactions arrive in TID order (0, 1, ...); each Items slice is
// freshly allocated and may be retained by fn.
//
// Stream and Generate draw from the identical pseudo-random sequence: for
// the same Params they produce bit-identical transactions (asserted by
// TestStreamMatchesGenerate).
func Stream(p Params, fn func(txn.Transaction) error) (*taxonomy.Taxonomy, error) {
	if p.NumTxns <= 0 || p.NumItems <= 0 || p.Roots <= 0 || p.Fanout <= 0 {
		return nil, fmt.Errorf("gen: non-positive parameter in %+v", p)
	}
	tax, err := taxonomy.Balanced(p.NumItems, p.Roots, p.Fanout)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	pats := makePatterns(p, tax, rng)
	if err := makeTransactions(p, tax, pats, rng, fn); err != nil {
		return nil, err
	}
	return tax, nil
}

// makePatterns builds the weighted pool of potentially large itemsets.
// Pattern items are drawn from the whole taxonomy (any level, per SA95); a
// correlated fraction is inherited from the previous pattern. Weights are
// exponential, normalized to sum to 1.
func makePatterns(p Params, tax *taxonomy.Taxonomy, rng *rand.Rand) []pattern {
	pats := make([]pattern, 0, p.NumPatterns)
	var prev []item.Item
	var totalWeight float64
	for i := 0; i < p.NumPatterns; i++ {
		size := poisson(rng, p.AvgPatternSize-1) + 1 // at least 1 item
		items := make([]item.Item, 0, size)
		if len(prev) > 0 {
			frac := rng.ExpFloat64() * p.CorrelationMean
			if frac > 1 {
				frac = 1
			}
			reuse := int(frac * float64(size))
			for _, j := range rng.Perm(len(prev)) {
				if len(items) >= reuse {
					break
				}
				items = append(items, prev[j])
			}
		}
		for len(items) < size {
			items = append(items, item.Item(rng.Intn(p.NumItems)))
		}
		items = item.Dedup(items)
		corr := rng.NormFloat64()*p.CorruptionSD + p.CorruptionMean
		if corr < 0 {
			corr = 0
		}
		if corr > 1 {
			corr = 1
		}
		w := rng.ExpFloat64()
		totalWeight += w
		pats = append(pats, pattern{items: items, weight: w, corruption: corr})
		prev = items
	}
	// Normalize and build the cumulative distribution in place: weight
	// becomes the upper bound of the pattern's probability interval.
	var cum float64
	for i := range pats {
		cum += pats[i].weight / totalWeight
		pats[i].weight = cum
	}
	pats[len(pats)-1].weight = 1
	return pats
}

// pickPattern samples a pattern index from the cumulative weights.
func pickPattern(pats []pattern, rng *rand.Rand) *pattern {
	x := rng.Float64()
	lo, hi := 0, len(pats)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if pats[mid].weight < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return &pats[lo]
}

// makeTransactions assembles baskets: each transaction has a Poisson size;
// patterns are drawn by weight, corrupted (items dropped while a uniform
// draw is below the corruption level), and interior items are specialized to
// a uniformly chosen descendant leaf, so the database contains leaf items
// only — the hierarchy enters through the mining-side ancestor extension.
// Each basket is streamed to fn as soon as it is assembled.
func makeTransactions(p Params, tax *taxonomy.Taxonomy, pats []pattern, rng *rand.Rand, fn func(txn.Transaction) error) error {
	scratch := make([]item.Item, 0, 32)
	for tid := int64(0); tid < int64(p.NumTxns); tid++ {
		size := poisson(rng, p.AvgTxnSize-1) + 1
		scratch = scratch[:0]
		for len(scratch) < size {
			pat := pickPattern(pats, rng)
			inst := instantiate(pat, tax, rng)
			if len(scratch)+len(inst) > size && len(scratch) > 0 {
				// Doesn't fit: add anyway half the time, else close the
				// basket (SA95 behaviour).
				if rng.Intn(2) == 0 {
					break
				}
			}
			scratch = append(scratch, inst...)
		}
		items := item.Dedup(item.Clone(scratch))
		if len(items) == 0 {
			items = []item.Item{leafOf(tax, item.Item(rng.Intn(p.NumItems)), rng)}
		}
		if err := fn(txn.Transaction{TID: tid, Items: items}); err != nil {
			return err
		}
	}
	return nil
}

// instantiate corrupts a pattern and specializes interior items to leaves.
func instantiate(pat *pattern, tax *taxonomy.Taxonomy, rng *rand.Rand) []item.Item {
	out := make([]item.Item, 0, len(pat.items))
	for _, x := range pat.items {
		if rng.Float64() < pat.corruption {
			continue // corrupted away
		}
		out = append(out, leafOf(tax, x, rng))
	}
	if len(out) == 0 && len(pat.items) > 0 {
		out = append(out, leafOf(tax, pat.items[rng.Intn(len(pat.items))], rng))
	}
	return out
}

// leafOf walks down from x choosing uniform random children until a leaf.
func leafOf(tax *taxonomy.Taxonomy, x item.Item, rng *rand.Rand) item.Item {
	for {
		ch := tax.Children(x)
		if len(ch) == 0 {
			return x
		}
		x = ch[rng.Intn(len(ch))]
	}
}

// poisson samples a Poisson variate with the given mean (Knuth's method;
// means here are ≤ ~10 so the loop is short).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
