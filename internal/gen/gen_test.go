package gen

import (
	"errors"
	"math"
	"testing"

	"pgarm/internal/item"
	"pgarm/internal/txn"
)

func smallParams() Params {
	p := R30F5()
	p.NumTxns = 5000
	p.NumItems = 2000
	p.NumPatterns = 200
	p.Roots = 10
	return p
}

func TestGenerateBasicShape(t *testing.T) {
	p := smallParams()
	ds, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if ds.DB.Len() != p.NumTxns {
		t.Fatalf("generated %d txns, want %d", ds.DB.Len(), p.NumTxns)
	}
	if ds.Taxonomy.NumItems() != p.NumItems {
		t.Fatalf("taxonomy items = %d", ds.Taxonomy.NumItems())
	}
	if got := len(ds.Taxonomy.Roots()); got != p.Roots {
		t.Fatalf("roots = %d", got)
	}
	avg := ds.DB.AvgSize()
	if avg < p.AvgTxnSize*0.5 || avg > p.AvgTxnSize*1.6 {
		t.Errorf("avg basket size %.2f far from target %g", avg, p.AvgTxnSize)
	}
}

func TestTransactionsAreCanonicalLeaves(t *testing.T) {
	ds, err := Generate(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	err = ds.DB.Scan(func(tr txn.Transaction) error {
		if len(tr.Items) == 0 {
			t.Fatalf("txn %d empty", tr.TID)
		}
		if !item.IsSorted(tr.Items) {
			t.Fatalf("txn %d not canonical: %v", tr.TID, tr.Items)
		}
		for _, x := range tr.Items {
			if !ds.Taxonomy.IsLeaf(x) {
				t.Fatalf("txn %d contains interior item %v", tr.TID, x)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Generate(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.DB.Len(); i++ {
		if !item.Equal(a.DB.At(i).Items, b.DB.At(i).Items) {
			t.Fatalf("txn %d differs between identical seeds", i)
		}
	}
	p := smallParams()
	p.Seed = 999
	c, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := 0; i < a.DB.Len(); i++ {
		if item.Equal(a.DB.At(i).Items, c.DB.At(i).Items) {
			same++
		}
	}
	if same == a.DB.Len() {
		t.Error("different seeds produced identical data")
	}
}

func TestSkewExists(t *testing.T) {
	// The pattern pool's exponential weights must concentrate item
	// frequency — the data skew the paper's load balancing targets.
	ds, err := Generate(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, ds.Taxonomy.NumItems())
	total := 0
	ds.DB.Scan(func(tr txn.Transaction) error {
		for _, x := range tr.Items {
			counts[x]++
			total++
		}
		return nil
	})
	max := 0
	nonzero := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c > 0 {
			nonzero++
		}
	}
	mean := float64(total) / float64(nonzero)
	if float64(max) < 5*mean {
		t.Errorf("no skew: max item count %d vs mean %.1f", max, mean)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"R30F5", "R30F3", "R30F10"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name != name || p.NumTxns != 3200000 || p.NumItems != 30000 || p.Roots != 30 {
			t.Errorf("%s params wrong: %+v", name, p)
		}
	}
	if _, err := ByName("R99"); err == nil {
		t.Error("unknown name must fail")
	}
	if R30F3().Fanout != 3 || R30F5().Fanout != 5 || R30F10().Fanout != 10 {
		t.Error("fanout wrong")
	}
}

func TestScaled(t *testing.T) {
	p := R30F5().Scaled(0.01)
	if p.NumTxns != 32000 {
		t.Errorf("scaled txns = %d", p.NumTxns)
	}
	if p.NumItems != 30000 {
		t.Error("scaling must not change the item universe")
	}
	tiny := R30F5().Scaled(1e-9)
	if tiny.NumTxns != 1000 {
		t.Errorf("floor = %d, want 1000", tiny.NumTxns)
	}
}

func TestDescribe(t *testing.T) {
	s := R30F5().Describe()
	if len(s) == 0 {
		t.Fatal("empty description")
	}
	for _, want := range []string{"R30F5", "3200000", "30000", "Fanout"} {
		if !contains(s, want) {
			t.Errorf("Describe missing %q", want)
		}
	}
}

func TestGenerateRejectsBadParams(t *testing.T) {
	p := smallParams()
	p.NumTxns = 0
	if _, err := Generate(p); err == nil {
		t.Error("zero txns must fail")
	}
	p = smallParams()
	p.Roots = 0
	if _, err := Generate(p); err == nil {
		t.Error("zero roots must fail")
	}
}

func TestPoissonMean(t *testing.T) {
	ds, err := Generate(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	// Indirect Poisson sanity: basket sizes should have nontrivial variance.
	var sum, sum2 float64
	ds.DB.Scan(func(tr txn.Transaction) error {
		s := float64(len(tr.Items))
		sum += s
		sum2 += s * s
		return nil
	})
	n := float64(ds.DB.Len())
	mean := sum / n
	sd := math.Sqrt(sum2/n - mean*mean)
	if sd < 1 {
		t.Errorf("basket sizes nearly constant (sd %.2f): Poisson sampling broken?", sd)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestStreamMatchesGenerate asserts the streaming generator and the
// collecting Generate draw the identical pseudo-random sequence: same
// taxonomy fingerprint, same transactions, bit for bit, and an early stop
// from fn aborts the stream.
func TestStreamMatchesGenerate(t *testing.T) {
	p := smallParams()
	ds, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	tax, err := Stream(p, func(tr txn.Transaction) error {
		want := ds.DB.At(i)
		if tr.TID != want.TID || !item.Equal(tr.Items, want.Items) {
			t.Fatalf("txn %d: streamed %v, generated %v", i, tr, want)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != ds.DB.Len() {
		t.Fatalf("streamed %d txns, generated %d", i, ds.DB.Len())
	}
	if tax.Fingerprint() != ds.Taxonomy.Fingerprint() {
		t.Fatal("taxonomy fingerprints differ")
	}

	stop := errors.New("stop")
	n := 0
	if _, err := Stream(p, func(txn.Transaction) error {
		n++
		if n == 10 {
			return stop
		}
		return nil
	}); !errors.Is(err, stop) {
		t.Fatalf("early stop: err = %v, want %v", err, stop)
	}
	if n != 10 {
		t.Fatalf("fn called %d times after stop at 10", n)
	}
}
