// Package item defines the elementary item type shared by every layer of the
// miner: the taxonomy, itemset machinery, transaction store, generator and
// the parallel algorithms themselves.
//
// An Item is a dense non-negative integer identifier. Density matters: the
// taxonomy and the pass-1 counters index plain slices by Item, which is what
// makes support counting over millions of transactions cheap.
package item

import (
	"fmt"
	"slices"
	"sort"
)

// Item identifies a single literal in the item universe I = {i_1 ... i_m}.
// Identifiers are dense, starting at 0. None is the invalid sentinel.
type Item int32

// None is the sentinel for "no item", used for absent parents (roots) and
// failed lookups.
const None Item = -1

// String renders the item as "i<n>", or "⊥" for None.
func (it Item) String() string {
	if it == None {
		return "⊥"
	}
	return fmt.Sprintf("i%d", int32(it))
}

// Valid reports whether the item is a usable identifier (non-negative).
func (it Item) Valid() bool { return it >= 0 }

// Sort sorts a slice of items in ascending order in place.
func Sort(items []Item) {
	slices.Sort(items) // allocation-free, unlike sort.Slice
}

// IsSorted reports whether the slice is in strictly ascending order, i.e.
// sorted and free of duplicates. Itemsets are canonically in this form.
func IsSorted(items []Item) bool {
	for i := 1; i < len(items); i++ {
		if items[i-1] >= items[i] {
			return false
		}
	}
	return true
}

// Dedup sorts the slice and removes duplicates in place, returning the
// (possibly shorter) canonical slice.
func Dedup(items []Item) []Item {
	if len(items) < 2 {
		return items
	}
	Sort(items)
	w := 1
	for r := 1; r < len(items); r++ {
		if items[r] != items[w-1] {
			items[w] = items[r]
			w++
		}
	}
	return items[:w]
}

// Contains reports whether the sorted slice haystack contains needle.
func Contains(haystack []Item, needle Item) bool {
	i := sort.Search(len(haystack), func(i int) bool { return haystack[i] >= needle })
	return i < len(haystack) && haystack[i] == needle
}

// ContainsAll reports whether sorted slice sub is a subset of sorted slice
// super. Both slices must be in canonical (strictly ascending) form.
func ContainsAll(super, sub []Item) bool {
	i := 0
	for _, s := range sub {
		for i < len(super) && super[i] < s {
			i++
		}
		if i >= len(super) || super[i] != s {
			return false
		}
		i++
	}
	return true
}

// Equal reports whether two item slices hold the same sequence.
func Equal(a, b []Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Compare orders two canonical itemsets lexicographically, returning
// -1, 0 or +1. Shorter prefixes sort first.
func Compare(a, b []Item) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// Clone returns a copy of the slice.
func Clone(items []Item) []Item {
	if items == nil {
		return nil
	}
	out := make([]Item, len(items))
	copy(out, items)
	return out
}

// Intersects reports whether two canonical (sorted, deduped) itemsets share
// at least one item.
func Intersects(a, b []Item) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// Union merges two canonical itemsets into a new canonical itemset.
func Union(a, b []Item) []Item {
	out := make([]Item, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Minus returns a \ b for canonical itemsets a and b, as a new slice.
func Minus(a, b []Item) []Item {
	out := make([]Item, 0, len(a))
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j < len(b) && b[j] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}

// Format renders an itemset as "{i1,i5,i9}".
func Format(items []Item) string {
	s := "{"
	for i, it := range items {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d", int32(it))
	}
	return s + "}"
}
