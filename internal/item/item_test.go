package item

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestStringForms(t *testing.T) {
	if got := Item(7).String(); got != "i7" {
		t.Errorf("Item(7).String() = %q", got)
	}
	if got := None.String(); got != "⊥" {
		t.Errorf("None.String() = %q", got)
	}
	if got := Format([]Item{1, 5, 9}); got != "{1,5,9}" {
		t.Errorf("Format = %q", got)
	}
	if got := Format(nil); got != "{}" {
		t.Errorf("Format(nil) = %q", got)
	}
}

func TestValid(t *testing.T) {
	if None.Valid() {
		t.Error("None should be invalid")
	}
	if !Item(0).Valid() {
		t.Error("Item(0) should be valid")
	}
}

func TestSortAndIsSorted(t *testing.T) {
	s := []Item{5, 1, 3}
	Sort(s)
	if !Equal(s, []Item{1, 3, 5}) {
		t.Errorf("Sort = %v", s)
	}
	if !IsSorted([]Item{1, 2, 3}) {
		t.Error("ascending should be sorted")
	}
	if IsSorted([]Item{1, 1, 2}) {
		t.Error("duplicates are not canonical")
	}
	if IsSorted([]Item{2, 1}) {
		t.Error("descending is not sorted")
	}
	if !IsSorted(nil) || !IsSorted([]Item{9}) {
		t.Error("empty and singleton are sorted")
	}
}

func TestDedup(t *testing.T) {
	cases := []struct{ in, want []Item }{
		{nil, nil},
		{[]Item{3}, []Item{3}},
		{[]Item{3, 1, 3, 1}, []Item{1, 3}},
		{[]Item{2, 2, 2}, []Item{2}},
		{[]Item{4, 1, 2}, []Item{1, 2, 4}},
	}
	for _, c := range cases {
		if got := Dedup(append([]Item(nil), c.in...)); !Equal(got, c.want) {
			t.Errorf("Dedup(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestContains(t *testing.T) {
	s := []Item{1, 4, 9}
	for _, x := range s {
		if !Contains(s, x) {
			t.Errorf("Contains(%v, %v) = false", s, x)
		}
	}
	for _, x := range []Item{0, 2, 10} {
		if Contains(s, x) {
			t.Errorf("Contains(%v, %v) = true", s, x)
		}
	}
}

func TestContainsAll(t *testing.T) {
	super := []Item{1, 2, 4, 7, 9}
	if !ContainsAll(super, []Item{2, 7}) {
		t.Error("subset not recognized")
	}
	if !ContainsAll(super, nil) {
		t.Error("empty set is a subset")
	}
	if ContainsAll(super, []Item{2, 8}) {
		t.Error("8 is not in super")
	}
	if ContainsAll([]Item{2}, []Item{1, 2}) {
		t.Error("longer sub cannot be contained")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b []Item
		want int
	}{
		{nil, nil, 0},
		{[]Item{1}, nil, 1},
		{nil, []Item{1}, -1},
		{[]Item{1, 2}, []Item{1, 3}, -1},
		{[]Item{1, 3}, []Item{1, 2}, 1},
		{[]Item{1, 2}, []Item{1, 2}, 0},
		{[]Item{1}, []Item{1, 2}, -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestUnionMinusIntersects(t *testing.T) {
	a := []Item{1, 3, 5}
	b := []Item{3, 4}
	if got := Union(a, b); !Equal(got, []Item{1, 3, 4, 5}) {
		t.Errorf("Union = %v", got)
	}
	if got := Minus(a, b); !Equal(got, []Item{1, 5}) {
		t.Errorf("Minus = %v", got)
	}
	if !Intersects(a, b) {
		t.Error("a and b share 3")
	}
	if Intersects([]Item{1, 2}, []Item{3, 4}) {
		t.Error("disjoint sets intersect")
	}
	if Intersects(nil, a) {
		t.Error("empty never intersects")
	}
}

func TestClone(t *testing.T) {
	if Clone(nil) != nil {
		t.Error("Clone(nil) should be nil")
	}
	a := []Item{1, 2}
	b := Clone(a)
	b[0] = 9
	if a[0] != 1 {
		t.Error("Clone must not share backing storage")
	}
}

// Property: Dedup yields a canonical slice containing exactly the input's
// distinct values.
func TestDedupProperty(t *testing.T) {
	f := func(raw []int16) bool {
		in := make([]Item, len(raw))
		seen := map[Item]bool{}
		for i, v := range raw {
			it := Item(v&0x3ff) + 1
			in[i] = it
			seen[it] = true
		}
		out := Dedup(in)
		if !IsSorted(out) {
			return false
		}
		if len(out) != len(seen) {
			return false
		}
		for _, x := range out {
			if !seen[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Union/Minus respect set algebra on random canonical inputs.
func TestSetAlgebraProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randSet := func() []Item {
		n := rng.Intn(12)
		s := make([]Item, n)
		for i := range s {
			s[i] = Item(rng.Intn(40))
		}
		return Dedup(s)
	}
	for trial := 0; trial < 500; trial++ {
		a, b := randSet(), randSet()
		u := Union(a, b)
		if !IsSorted(u) {
			t.Fatalf("Union not canonical: %v", u)
		}
		for _, x := range a {
			if !Contains(u, x) {
				t.Fatalf("Union dropped %v from a", x)
			}
		}
		for _, x := range b {
			if !Contains(u, x) {
				t.Fatalf("Union dropped %v from b", x)
			}
		}
		if len(u) > len(a)+len(b) {
			t.Fatalf("Union grew beyond inputs")
		}
		m := Minus(a, b)
		for _, x := range m {
			if Contains(b, x) {
				t.Fatalf("Minus kept %v from b", x)
			}
		}
		if len(m)+countShared(a, b) != len(a) {
			t.Fatalf("Minus size wrong: |a\\b|=%d shared=%d |a|=%d", len(m), countShared(a, b), len(a))
		}
	}
}

func countShared(a, b []Item) int {
	n := 0
	for _, x := range a {
		if Contains(b, x) {
			n++
		}
	}
	return n
}

// Property: Compare defines a total order consistent with sort.
func TestCompareIsTotalOrder(t *testing.T) {
	sets := [][]Item{nil, {1}, {1, 2}, {1, 3}, {2}, {2, 9}, {5}}
	shuffled := append([][]Item(nil), sets...)
	rand.New(rand.NewSource(1)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	sort.Slice(shuffled, func(i, j int) bool { return Compare(shuffled[i], shuffled[j]) < 0 })
	for i := range sets {
		if !Equal(sets[i], shuffled[i]) {
			t.Fatalf("order mismatch at %d: %v vs %v", i, sets[i], shuffled[i])
		}
	}
}
