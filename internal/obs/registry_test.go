package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("a_total", "help")
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter must stay zero")
	}
	g := r.Gauge("b", "help")
	g.Set(7)
	if g.Value() != 0 {
		t.Fatal("nil gauge must stay zero")
	}
	h := r.Histogram("c", "help", nil)
	h.Observe(1.5)
	if h.Count() != 0 {
		t.Fatal("nil histogram must stay empty")
	}
	r.GaugeFunc("d", "help", func() float64 { return 1 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("nil registry rendered %q", b.String())
	}
}

// TestPrometheusGolden pins the exact exposition output: family ordering,
// HELP/TYPE lines, sorted labels, and cumulative histogram buckets.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pgarm_msgs_total", "Messages sent.", L("node", "1"), L("kind", "data"))
	c.Add(5)
	r.Counter("pgarm_msgs_total", "Messages sent.", L("node", "0"), L("kind", "data")).Add(2)
	g := r.Gauge("pgarm_pass", "Current pass.")
	g.Set(3)
	h := r.Histogram("pgarm_scan_seconds", "Shard scan time.", []float64{0.1, 1}, L("node", "0"))
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	r.GaugeFunc("pgarm_up", "Liveness.", func() float64 { return 1 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP pgarm_msgs_total Messages sent.
# TYPE pgarm_msgs_total counter
pgarm_msgs_total{kind="data",node="0"} 2
pgarm_msgs_total{kind="data",node="1"} 5
# HELP pgarm_pass Current pass.
# TYPE pgarm_pass gauge
pgarm_pass 3
# HELP pgarm_scan_seconds Shard scan time.
# TYPE pgarm_scan_seconds histogram
pgarm_scan_seconds_bucket{node="0",le="0.1"} 1
pgarm_scan_seconds_bucket{node="0",le="1"} 2
pgarm_scan_seconds_bucket{node="0",le="+Inf"} 3
pgarm_scan_seconds_sum{node="0"} 2.55
pgarm_scan_seconds_count{node="0"} 3
# HELP pgarm_up Liveness.
# TYPE pgarm_up gauge
pgarm_up 1
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestRegisterIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "h", L("node", "0"))
	b := r.Counter("x_total", "h", L("node", "0"))
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	other := r.Counter("x_total", "h", L("node", "1"))
	if a == other {
		t.Fatal("distinct labels must return distinct counters")
	}
	a.Add(2)
	if b.Value() != 2 {
		t.Fatal("shared series must share state")
	}
}

func TestHistogramBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2})
	h.Observe(1) // on a bound: belongs to le="1" (le is inclusive)
	h.Observe(1.5)
	h.Observe(3)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		`h_bucket{le="1"} 1`,
		`h_bucket{le="2"} 2`,
		`h_bucket{le="+Inf"} 3`,
		`h_count 3`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("missing %q in:\n%s", line, out)
		}
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("conc_total", "", L("g", string(rune('a'+g))))
			h := r.Histogram("conc_seconds", "", nil)
			for i := 0; i < 200; i++ {
				c.Inc()
				h.Observe(float64(i) / 100)
				var b strings.Builder
				_ = r.WritePrometheus(&b)
			}
		}(g)
	}
	wg.Wait()
	h := r.Histogram("conc_seconds", "", nil)
	if h.Count() != 8*200 {
		t.Fatalf("histogram count = %d, want %d", h.Count(), 8*200)
	}
}
