package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer must report disabled")
	}
	sp := tr.Begin(0, 0, "x")
	sp.Arg("k", 1)
	sp.End()
	tr.SetThreadName(0, 0, "driver")
	if tr.Spans() != 0 || tr.Dropped() != 0 || tr.Rollups() != nil {
		t.Fatal("nil tracer must record nothing")
	}
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("nil-tracer trace is not JSON: %v", err)
	}
}

func TestSpanNestingAndOrdering(t *testing.T) {
	tr := NewTracer()
	parent := tr.Begin(2, 0, "pass 2")
	child1 := tr.Begin(2, 0, "scan")
	time.Sleep(time.Millisecond)
	child1.End()
	child2 := tr.Begin(2, 0, "barrier")
	child2.End()
	parent.Arg("candidates", 42)
	parent.End()

	if got := tr.Spans(); got != 3 {
		t.Fatalf("spans = %d, want 3", got)
	}
	evs := decodeSpanEvents(t, tr)
	// Export is ordered by start time: parent opened first.
	if evs[0].Name != "pass 2" || evs[1].Name != "scan" || evs[2].Name != "barrier" {
		t.Fatalf("event order: %q %q %q", evs[0].Name, evs[1].Name, evs[2].Name)
	}
	// Children nest inside the parent interval (Perfetto nests X events on
	// one track by time containment).
	p, c1, c2 := evs[0], evs[1], evs[2]
	for _, c := range []spanEvent{c1, c2} {
		if c.Ts < p.Ts || c.Ts+c.Dur > p.Ts+p.Dur+1e-3 {
			t.Errorf("child %q [%f,%f] not inside parent [%f,%f]",
				c.Name, c.Ts, c.Ts+c.Dur, p.Ts, p.Ts+p.Dur)
		}
	}
	// The two children are ordered and disjoint.
	if c2.Ts < c1.Ts+c1.Dur {
		t.Errorf("sequential children overlap: %f < %f", c2.Ts, c1.Ts+c1.Dur)
	}
	if p.Args["candidates"] != 42 {
		t.Errorf("args = %v", p.Args)
	}
	if p.Pid != 2 || p.Tid != 0 {
		t.Errorf("track = pid %d tid %d", p.Pid, p.Tid)
	}
}

func TestDoubleEndRecordsOnce(t *testing.T) {
	tr := NewTracer()
	sp := tr.Begin(0, 0, "x")
	sp.End()
	sp.End()
	if got := tr.Spans(); got != 1 {
		t.Fatalf("spans = %d, want 1", got)
	}
}

// spanEvent mirrors the fields every "X" event must carry.
type spanEvent struct {
	Name string           `json:"name"`
	Ph   string           `json:"ph"`
	Ts   float64          `json:"ts"`
	Dur  float64          `json:"dur"`
	Pid  int32            `json:"pid"`
	Tid  int32            `json:"tid"`
	Args map[string]int64 `json:"args"`
}

type metaArgs struct {
	Name string `json:"name"`
}
type anyEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Pid  int32           `json:"pid"`
	Tid  int32           `json:"tid"`
	Args json.RawMessage `json:"args"`
}

// decodeSpanEvents validates the whole file against the trace_event schema
// and returns the "X" events.
func decodeSpanEvents(t *testing.T, tr *Tracer) []spanEvent {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents     []json.RawMessage `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}
	var out []spanEvent
	for _, raw := range file.TraceEvents {
		var ev anyEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			t.Fatalf("bad event %s: %v", raw, err)
		}
		switch ev.Ph {
		case "M":
			var args metaArgs
			if err := json.Unmarshal(ev.Args, &args); err != nil || args.Name == "" {
				t.Fatalf("metadata event without name: %s", raw)
			}
		case "X":
			var sp spanEvent
			if err := json.Unmarshal(raw, &sp); err != nil {
				t.Fatalf("bad span event %s: %v", raw, err)
			}
			if sp.Name == "" || sp.Ts < 0 || sp.Dur < 0 {
				t.Fatalf("malformed span event: %s", raw)
			}
			out = append(out, sp)
		default:
			t.Fatalf("unexpected phase %q in %s", ev.Ph, raw)
		}
	}
	return out
}

func TestThreadNameMetadata(t *testing.T) {
	tr := NewTracer()
	tr.SetThreadName(1, 0, "driver")
	tr.SetThreadName(1, 2, "scan w1")
	sp := tr.Begin(1, 2, "scan")
	sp.End()
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"node 1"`, `"driver"`, `"scan w1"`, `"process_name"`, `"thread_name"`} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("trace missing %s:\n%s", want, buf.String())
		}
	}
}

func TestRollups(t *testing.T) {
	tr := NewTracer()
	for i := 0; i < 3; i++ {
		sp := tr.Begin(0, 0, "scan")
		sp.End()
	}
	sp := tr.Begin(0, 0, "barrier")
	sp.End()
	rs := tr.Rollups()
	if len(rs) != 2 {
		t.Fatalf("rollups = %+v", rs)
	}
	// Sorted by name: barrier before scan.
	if rs[0].Name != "barrier" || rs[0].Count != 1 {
		t.Errorf("rollup[0] = %+v", rs[0])
	}
	if rs[1].Name != "scan" || rs[1].Count != 3 {
		t.Errorf("rollup[1] = %+v", rs[1])
	}
	if rs[1].MinMS > rs[1].MaxMS || rs[1].TotalMS < rs[1].MaxMS {
		t.Errorf("inconsistent rollup stats: %+v", rs[1])
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.Begin(g, i%4, "work")
				sp.Arg("i", int64(i))
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	if got := tr.Spans(); got != 8*200 {
		t.Fatalf("spans = %d, want %d", got, 8*200)
	}
	decodeSpanEvents(t, tr)
}
