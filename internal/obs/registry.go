package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one Prometheus label pair.
type Label struct {
	Key, Val string
}

// L builds a label.
func L(key, val string) Label { return Label{key, val} }

// Registry holds named instrument families and renders them in Prometheus
// text exposition format. All instruments are safe for concurrent use; a nil
// Registry hands out nil instruments whose methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name, help, typ string
	series          map[string]instrument // key: rendered label set
}

type instrument interface {
	// write appends the exposition lines of one series; name already
	// carries the family name, labels the rendered label set ("" or
	// `{k="v",...}`).
	write(b *strings.Builder, name, labels string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) register(name, help, typ string, labels []Label, mk func() instrument) instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]instrument)}
		r.families[name] = f
	}
	key := renderLabels(labels)
	if ins, ok := f.series[key]; ok {
		return ins
	}
	ins := mk()
	f.series[key] = ins
	return ins
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Val)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter; negative deltas are ignored.
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) write(b *strings.Builder, name, labels string) {
	fmt.Fprintf(b, "%s%s %d\n", name, labels, c.v.Load())
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, "counter", labels, func() instrument { return &Counter{} }).(*Counter)
}

// Gauge is a settable integer metric.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) write(b *strings.Builder, name, labels string) {
	fmt.Fprintf(b, "%s%s %d\n", name, labels, g.v.Load())
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, "gauge", labels, func() instrument { return &Gauge{} }).(*Gauge)
}

// FloatGauge is a settable float64 metric — skew ratios and coefficients of
// variation, which the integer Gauge cannot carry.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores the value.
func (g *FloatGauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 on nil).
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *FloatGauge) write(b *strings.Builder, name, labels string) {
	fmt.Fprintf(b, "%s%s %s\n", name, labels, formatFloat(g.Value()))
}

// FloatGauge registers (or returns the existing) float gauge series.
func (r *Registry) FloatGauge(name, help string, labels ...Label) *FloatGauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, "gauge", labels, func() instrument { return &FloatGauge{} }).(*FloatGauge)
}

// gaugeFunc samples a callback at exposition time — the hook live endpoints
// (fabric byte counters, current pass) are exported through.
type gaugeFunc struct {
	fn func() float64
}

func (g *gaugeFunc) write(b *strings.Builder, name, labels string) {
	fmt.Fprintf(b, "%s%s %s\n", name, labels, formatFloat(g.fn()))
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, "gauge", labels, func() instrument { return &gaugeFunc{fn: fn} })
}

// DefSecondsBuckets are the default histogram buckets for wall-time
// observations, spanning 100µs to ~100s.
func DefSecondsBuckets() []float64 {
	return []float64{1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 5, 10, 50, 100}
}

// Histogram is a fixed-bucket cumulative histogram over float64 samples.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // one per bound, plus +Inf at the end
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	total  atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of samples (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

func (h *Histogram) write(b *strings.Builder, name, labels string) {
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLE(labels, formatFloat(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLE(labels, "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, formatFloat(math.Float64frombits(h.sum.Load())))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, h.total.Load())
}

// mergeLE splices the le label into a rendered label set.
func mergeLE(labels, le string) string {
	if labels == "" {
		return fmt.Sprintf("{le=%q}", le)
	}
	return fmt.Sprintf("%s,le=%q}", strings.TrimSuffix(labels, "}"), le)
}

// Histogram registers (or returns the existing) histogram series. bounds
// must be sorted ascending; nil selects DefSecondsBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefSecondsBuckets()
	}
	return r.register(name, help, "histogram", labels, func() instrument {
		return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	}).(*Histogram)
}

// formatFloat renders a float the way Prometheus expects (no exponent for
// typical values, no trailing zeros).
func formatFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}

// WritePrometheus renders every family in text exposition format, families
// and series in lexicographic order — deterministic, so tests can golden it.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "")
		return err
	}
	// Held across the render: registrations are rare (instrument handles are
	// cached by callers) and instrument reads are atomic.
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			f.series[k].write(&b, f.name, k)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
