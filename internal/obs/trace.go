// Package obs is the observability substrate the rest of the repo threads
// through: a lightweight phase-span tracer exporting Chrome trace_event JSON
// (one timeline row per node, viewable in Perfetto or chrome://tracing) and a
// counter/gauge/histogram registry exposing Prometheus text format.
//
// Both halves are nil-safe: every method on a nil *Tracer, nil *Registry or
// zero Span is a no-op, so instrumented code paths carry no conditionals and
// — crucially for the mining hot path — no allocations when observability is
// switched off.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// defaultSpanCap preallocates room for this many completed spans so
// steady-state tracing does not grow the buffer pass by pass.
const defaultSpanCap = 4096

// maxSpans bounds the trace buffer; spans beyond it are counted but dropped,
// keeping a pathological run from holding the whole timeline in memory.
const maxSpans = 1 << 20

// Tracer records completed spans on a shared, mutex-guarded buffer. Tracks
// are addressed as (node, lane): node maps to the trace's pid (one process
// group per mining node), lane to the tid within it (0 = the node's driver
// goroutine, 1..W its scan workers, W+1 the count-phase receiver).
type Tracer struct {
	start time.Time

	mu      sync.Mutex
	spans   []span
	dropped int64
	threads map[track]string // (node, lane) -> display name
}

type track struct {
	node, lane int32
}

type span struct {
	name       string
	node, lane int32
	start, dur int64 // nanoseconds since Tracer start
	args       []Arg
}

// Arg is one integer key/value annotation attached to a span; it lands in
// the trace event's "args" object and in run-report rollups.
type Arg struct {
	Key string
	Val int64
}

// I builds a span argument.
func I(key string, val int64) Arg { return Arg{Key: key, Val: val} }

// NewTracer starts a tracer; its clock zero is the call time.
func NewTracer() *Tracer {
	return &Tracer{
		start:   time.Now(),
		spans:   make([]span, 0, defaultSpanCap),
		threads: make(map[track]string),
	}
}

// Enabled reports whether spans are being recorded; callers use it to skip
// span-name formatting when tracing is off.
func (t *Tracer) Enabled() bool { return t != nil }

func (t *Tracer) since() int64 {
	return int64(time.Since(t.start))
}

// SetThreadName names a (node, lane) track for the trace viewer.
func (t *Tracer) SetThreadName(node, lane int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.threads[track{int32(node), int32(lane)}] = name
	t.mu.Unlock()
}

// Begin opens a span on the given track. The returned Span is recorded when
// End is called; a nil tracer returns an inert Span.
func (t *Tracer) Begin(node, lane int, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, node: int32(node), lane: int32(lane), start: t.since()}
}

// Span is an open interval on one track. The zero value (and any Span from a
// nil tracer) ignores every call.
type Span struct {
	t          *Tracer
	name       string
	node, lane int32
	start      int64
	args       []Arg
}

// Arg attaches an integer annotation to the span.
func (s *Span) Arg(key string, val int64) {
	if s.t == nil {
		return
	}
	s.args = append(s.args, Arg{Key: key, Val: val})
}

// End closes the span and records it.
func (s *Span) End() {
	if s.t == nil {
		return
	}
	t := s.t
	dur := t.since() - s.start
	t.mu.Lock()
	if len(t.spans) >= maxSpans {
		t.dropped++
	} else {
		t.spans = append(t.spans, span{
			name: s.name, node: s.node, lane: s.lane,
			start: s.start, dur: dur, args: s.args,
		})
	}
	t.mu.Unlock()
	s.t = nil // double End is a no-op
}

// Dropped returns how many spans were discarded after the buffer cap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// traceEvent is one entry of the Chrome trace_event format ("X" complete
// events for spans, "M" metadata events for track names).
type traceEvent struct {
	Name string           `json:"name"`
	Ph   string           `json:"ph"`
	Ts   float64          `json:"ts"` // microseconds
	Dur  float64          `json:"dur,omitempty"`
	Pid  int32            `json:"pid"`
	Tid  int32            `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

// WriteTrace emits the recorded spans as Chrome trace_event JSON. Events are
// ordered by start time; pid is the node, tid the lane within it.
func (t *Tracer) WriteTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`)
		return err
	}
	t.mu.Lock()
	spans := append([]span(nil), t.spans...)
	threads := make(map[track]string, len(t.threads))
	for k, v := range t.threads {
		threads[k] = v
	}
	t.mu.Unlock()

	sort.SliceStable(spans, func(i, j int) bool { return spans[i].start < spans[j].start })

	// Metadata: name every node (pid) and every track seen, so Perfetto
	// shows "node 3 / scan w1" instead of bare numbers.
	nodes := make(map[int32]bool)
	tracks := make(map[track]bool)
	for _, sp := range spans {
		nodes[sp.node] = true
		tracks[track{sp.node, sp.lane}] = true
	}
	for tr := range threads {
		nodes[tr.node] = true
		tracks[tr] = true
	}
	// Metadata args carry strings, which the integer Args field cannot;
	// they are marshaled via a dedicated struct.
	var events []traceEvent
	meta := make([]json.RawMessage, 0, len(nodes)+len(tracks))
	for _, n := range sortedInt32(nodes) {
		meta = append(meta, metaEvent("process_name", n, 0, fmt.Sprintf("node %d", n)))
	}
	for _, tr := range sortedTracks(tracks) {
		name := threads[tr]
		if name == "" {
			name = fmt.Sprintf("lane %d", tr.lane)
		}
		meta = append(meta, metaEvent("thread_name", tr.node, tr.lane, name))
	}
	for _, sp := range spans {
		ev := traceEvent{
			Name: sp.name, Ph: "X",
			Ts:  float64(sp.start) / 1e3,
			Dur: float64(sp.dur) / 1e3,
			Pid: sp.node, Tid: sp.lane,
		}
		if len(sp.args) > 0 {
			ev.Args = make(map[string]int64, len(sp.args))
			for _, a := range sp.args {
				ev.Args[a.Key] = a.Val
			}
		}
		events = append(events, ev)
	}

	// Assemble by hand so metadata events (string args) and span events
	// (integer args) can share the traceEvents array.
	raw := make([]json.RawMessage, 0, len(meta)+len(events))
	raw = append(raw, meta...)
	for _, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		raw = append(raw, b)
	}
	out := struct {
		TraceEvents     []json.RawMessage `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
	}{raw, "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

func metaEvent(name string, pid, tid int32, display string) json.RawMessage {
	b, _ := json.Marshal(struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
		Pid  int32  `json:"pid"`
		Tid  int32  `json:"tid"`
		Args struct {
			Name string `json:"name"`
		} `json:"args"`
	}{Name: name, Ph: "M", Pid: pid, Tid: tid, Args: struct {
		Name string `json:"name"`
	}{display}})
	return b
}

func sortedInt32(set map[int32]bool) []int32 {
	out := make([]int32, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedTracks(set map[track]bool) []track {
	out := make([]track, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].node != out[j].node {
			return out[i].node < out[j].node
		}
		return out[i].lane < out[j].lane
	})
	return out
}

// Rollup aggregates every recorded span of one name: how often it ran and
// how its wall time distributed — the per-phase summary a run report embeds.
type Rollup struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MinMS   float64 `json:"min_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// Rollups aggregates the recorded spans by name, sorted by name.
func (t *Tracer) Rollups() []Rollup {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	byName := make(map[string]*Rollup)
	for _, sp := range t.spans {
		r := byName[sp.name]
		if r == nil {
			r = &Rollup{Name: sp.name, MinMS: float64(sp.dur) / 1e6}
			byName[sp.name] = r
		}
		ms := float64(sp.dur) / 1e6
		r.Count++
		r.TotalMS += ms
		if ms < r.MinMS {
			r.MinMS = ms
		}
		if ms > r.MaxMS {
			r.MaxMS = ms
		}
	}
	out := make([]Rollup, 0, len(byName))
	for _, r := range byName {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Spans returns the number of recorded spans.
func (t *Tracer) Spans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}
