package obs

// Cross-node trace aggregation: a mesh worker exports its completed spans as
// SpanRecords, ships them over the fabric, and the coordinator re-records
// them (clock-rebased) on its own tracer — producing one merged Chrome trace
// with a per-node track group. The export watermark makes shipping
// incremental: each batch carries only spans recorded since the last one.

// SpanRecord is the portable form of one completed span: everything needed
// to re-record it on another tracer's timeline. Start and Dur are
// nanoseconds relative to the originating tracer's epoch; rebasing to the
// receiving timeline is the caller's job (see internal/driver).
type SpanRecord struct {
	Name       string
	Node, Lane int32
	Start, Dur int64
	Args       []Arg
}

// TrackName names one (node, lane) track, the portable form of a
// SetThreadName call.
type TrackName struct {
	Node, Lane int32
	Name       string
}

// EpochWallNanos returns the tracer's clock zero as wall-clock Unix
// nanoseconds. Remote spans are shipped relative to their tracer's epoch;
// the receiver maps them onto its own timeline via the two epochs and the
// estimated inter-node clock offset.
func (t *Tracer) EpochWallNanos() int64 {
	if t == nil {
		return 0
	}
	return t.start.UnixNano()
}

// ExportSince returns copies of the spans recorded at index from onward,
// plus the new watermark to pass next time. Args slices are copied, so the
// records stay valid while the tracer keeps recording.
func (t *Tracer) ExportSince(from int) ([]SpanRecord, int) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from >= len(t.spans) {
		return nil, len(t.spans)
	}
	out := make([]SpanRecord, 0, len(t.spans)-from)
	for _, sp := range t.spans[from:] {
		rec := SpanRecord{
			Name: sp.name, Node: sp.node, Lane: sp.lane,
			Start: sp.start, Dur: sp.dur,
		}
		if len(sp.args) > 0 {
			rec.Args = append([]Arg(nil), sp.args...)
		}
		out = append(out, rec)
	}
	return out, len(t.spans)
}

// Record appends an already-completed span — the ingest half of cross-node
// trace aggregation. The buffer cap applies exactly as for locally recorded
// spans; overflow is counted in Dropped.
func (t *Tracer) Record(rec SpanRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.spans) >= maxSpans {
		t.dropped++
	} else {
		t.spans = append(t.spans, span{
			name: rec.Name, node: rec.Node, lane: rec.Lane,
			start: rec.Start, dur: rec.Dur, args: rec.Args,
		})
	}
	t.mu.Unlock()
}

// Tracks returns every named track, the portable form of the thread-name
// metadata, ordered by (node, lane).
func (t *Tracer) Tracks() []TrackName {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	set := make(map[track]bool, len(t.threads))
	names := make(map[track]string, len(t.threads))
	for k, v := range t.threads {
		set[k] = true
		names[k] = v
	}
	t.mu.Unlock()
	out := make([]TrackName, 0, len(set))
	for _, tr := range sortedTracks(set) {
		out = append(out, TrackName{Node: tr.node, Lane: tr.lane, Name: names[tr]})
	}
	return out
}

// AddDropped folds a remote tracer's dropped-span count into this tracer's
// tally, so the merged trace's Dropped covers the whole cluster. Callers
// ship cumulative counts and add only the delta.
func (t *Tracer) AddDropped(n int64) {
	if t == nil || n <= 0 {
		return
	}
	t.mu.Lock()
	t.dropped += n
	t.mu.Unlock()
}
