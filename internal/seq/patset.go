package seq

import "pgarm/internal/item"

// This file is the allocation-free half of the GSP join+prune: an
// open-addressed membership set over F_{k-1} probed with hashes of the
// canonical Key byte stream computed in place, so the prune test for a
// dropped-item subsequence touches no map, builds no key string and
// materializes no subsequence pattern.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

// fnvItem folds one item exactly as itemset.AppendKey encodes it: 4 bytes,
// big-endian.
func fnvItem(h uint64, x item.Item) uint64 {
	v := uint32(x)
	h = fnvByte(h, byte(v>>24))
	h = fnvByte(h, byte(v>>16))
	h = fnvByte(h, byte(v>>8))
	h = fnvByte(h, byte(v))
	return h
}

// hashElements is FNV-1a over the byte stream Key(elements) produces —
// shape byte, element lengths, then every item big-endian — without
// building the string. hashElements(e) == patternHash-of-Key(e) always.
func hashElements(elements [][]item.Item) uint64 {
	h := uint64(fnvOffset64)
	h = fnvByte(h, byte(len(elements)))
	for _, e := range elements {
		h = fnvByte(h, byte(len(e)))
	}
	for _, e := range elements {
		for _, x := range e {
			h = fnvItem(h, x)
		}
	}
	return h
}

// hashDropped hashes the pattern obtained by dropItem(elements, ei, ii)
// without materializing it: the emptied element (when elements[ei] has one
// item) vanishes from the shape prefix and the dropped item from the item
// stream, reproducing Key's bytes for the subsequence exactly.
func hashDropped(elements [][]item.Item, ei, ii int) uint64 {
	dropElem := len(elements[ei]) == 1
	ne := len(elements)
	if dropElem {
		ne--
	}
	h := uint64(fnvOffset64)
	h = fnvByte(h, byte(ne))
	for i, e := range elements {
		if i == ei {
			if dropElem {
				continue
			}
			h = fnvByte(h, byte(len(e)-1))
			continue
		}
		h = fnvByte(h, byte(len(e)))
	}
	for i, e := range elements {
		if i == ei && dropElem {
			continue
		}
		for j, x := range e {
			if i == ei && j == ii {
				continue
			}
			h = fnvItem(h, x)
		}
	}
	return h
}

// equalDropped reports whether stored equals dropItem(elements, ei, ii),
// again without materializing the subsequence.
func equalDropped(stored, elements [][]item.Item, ei, ii int) bool {
	dropElem := len(elements[ei]) == 1
	ns := len(elements)
	if dropElem {
		ns--
	}
	if len(stored) != ns {
		return false
	}
	si := 0
	for i, e := range elements {
		if i == ei {
			if dropElem {
				continue
			}
			se := stored[si]
			si++
			if len(se) != len(e)-1 {
				return false
			}
			w := 0
			for j, x := range e {
				if j == ii {
					continue
				}
				if se[w] != x {
					return false
				}
				w++
			}
			continue
		}
		if !item.Equal(stored[si], e) {
			return false
		}
		si++
	}
	return true
}

// patSet is the open-addressed set over F_{k-1}. Slots hold pattern index+1
// (0 = empty); the table is sized to at least twice the pattern count so
// probe chains stay short. It is built once per pass and only read from the
// generation shards, so no synchronization is needed.
type patSet struct {
	slots []int32
	mask  uint64
	pats  []Pattern
}

func newPatSet(prev []Pattern) *patSet {
	size := 16
	for size < 2*len(prev) {
		size *= 2
	}
	ps := &patSet{slots: make([]int32, size), mask: uint64(size - 1), pats: prev}
	for i := range prev {
		s := hashElements(prev[i].Elements) & ps.mask
		for {
			v := ps.slots[s]
			if v == 0 {
				ps.slots[s] = int32(i) + 1
				break
			}
			if Equal(ps.pats[v-1].Elements, prev[i].Elements) {
				break // duplicate pattern: first occurrence keeps the slot
			}
			s = (s + 1) & ps.mask
		}
	}
	return ps
}

// hasDropped reports whether dropItem(elements, ei, ii) is in the set.
func (ps *patSet) hasDropped(elements [][]item.Item, ei, ii int) bool {
	s := hashDropped(elements, ei, ii) & ps.mask
	for {
		v := ps.slots[s]
		if v == 0 {
			return false
		}
		if equalDropped(ps.pats[v-1].Elements, elements, ei, ii) {
			return true
		}
		s = (s + 1) & ps.mask
	}
}

// pruneOK checks that every (k-1)-subsequence obtained by dropping one item
// is frequent — the apriori prune, with zero allocations per test.
func (ps *patSet) pruneOK(elements [][]item.Item) bool {
	for ei := range elements {
		for ii := range elements[ei] {
			if !ps.hasDropped(elements, ei, ii) {
				return false
			}
		}
	}
	return true
}

// dedupPatterns compacts out to its first occurrence of every distinct
// pattern, in place, preserving order — the serial global dedup after the
// sharded join (duplicate joins can land in different shards, so this step
// cannot shard). The open-addressed probe replaces the old map[string]bool
// keyed by materialized Key strings.
func dedupPatterns(out [][][]item.Item) [][][]item.Item {
	if len(out) == 0 {
		return out
	}
	size := 16
	for size < 2*len(out) {
		size *= 2
	}
	slots := make([]int32, size)
	mask := uint64(size - 1)
	w := 0
	for _, c := range out {
		s := hashElements(c) & mask
		dup := false
		for {
			v := slots[s]
			if v == 0 {
				slots[s] = int32(w) + 1
				break
			}
			if Equal(out[v-1], c) {
				dup = true
				break
			}
			s = (s + 1) & mask
		}
		if !dup {
			out[w] = c
			w++
		}
	}
	return out[:w]
}
