package seq

import (
	"math"
	"math/rand"

	"pgarm/internal/item"
	"pgarm/internal/taxonomy"
)

// GenParams configure the synthetic customer-sequence generator, the
// sequence analogue of the basket generator: weighted sequential patterns
// over the taxonomy's leaves, corrupted and interleaved into customer
// histories.
type GenParams struct {
	NumCustomers   int
	AvgElements    float64 // mean transactions per customer
	AvgElementSize float64 // mean items per transaction
	NumPatterns    int     // sequential pattern pool size
	AvgPatternLen  float64 // mean elements per pattern
	Seed           int64
}

// DefaultGenParams returns a configuration sized for examples and tests.
func DefaultGenParams() GenParams {
	return GenParams{
		NumCustomers:   2000,
		AvgElements:    5,
		AvgElementSize: 3,
		NumPatterns:    50,
		AvgPatternLen:  3,
		Seed:           1998,
	}
}

// GenerateSequences builds a customer-sequence database over the taxonomy's
// leaves: each customer interleaves one or two weighted sequential patterns
// (their elements in order, possibly with noise elements between) with
// random filler items.
func GenerateSequences(tax *taxonomy.Taxonomy, p GenParams) *DB {
	rng := rand.New(rand.NewSource(p.Seed))
	leaves := tax.Leaves()
	randLeaf := func() item.Item { return leaves[rng.Intn(len(leaves))] }

	// Pattern pool: sequences of small leaf itemsets with exponential
	// weights (cumulative for sampling).
	type seqPattern struct {
		elements [][]item.Item
		cum      float64
	}
	pats := make([]seqPattern, p.NumPatterns)
	var total float64
	for i := range pats {
		n := 1 + poisson(rng, p.AvgPatternLen-1)
		els := make([][]item.Item, n)
		for j := range els {
			sz := 1 + rng.Intn(2)
			e := make([]item.Item, 0, sz)
			for len(e) < sz {
				e = item.Dedup(append(e, randLeaf()))
			}
			els[j] = e
		}
		w := rng.ExpFloat64()
		total += w
		pats[i] = seqPattern{elements: els, cum: w}
	}
	var cum float64
	for i := range pats {
		cum += pats[i].cum / total
		pats[i].cum = cum
	}
	pick := func() *seqPattern {
		x := rng.Float64()
		lo, hi := 0, len(pats)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if pats[mid].cum < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return &pats[lo]
	}

	db := &DB{}
	for cid := int64(0); cid < int64(p.NumCustomers); cid++ {
		nEl := 1 + poisson(rng, p.AvgElements-1)
		elements := make([][]item.Item, 0, nEl)
		// Weave one pattern through the history (drop elements with 25%
		// probability as corruption).
		pat := pick()
		pi := 0
		for len(elements) < nEl {
			if pi < len(pat.elements) && rng.Float64() < 0.6 {
				if rng.Float64() < 0.75 {
					el := item.Clone(pat.elements[pi])
					// Mix in a filler item sometimes.
					if rng.Float64() < 0.3 {
						el = item.Dedup(append(el, randLeaf()))
					}
					elements = append(elements, el)
				}
				pi++
				continue
			}
			sz := 1 + poisson(rng, p.AvgElementSize-1)
			e := make([]item.Item, 0, sz)
			for len(e) < sz {
				e = item.Dedup(append(e, randLeaf()))
			}
			elements = append(elements, e)
		}
		db.Append(Sequence{CID: cid, Elements: elements})
	}
	return db
}

// poisson samples a Poisson variate (Knuth's method).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
