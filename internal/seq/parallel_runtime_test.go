package seq

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"testing/quick"

	"pgarm/internal/cluster"
	"pgarm/internal/driver"
	"pgarm/internal/item"
	"pgarm/internal/taxonomy"
)

// TestSeqFabricsMatchSequential runs every sequence miner over both
// in-process fabrics with sharded scans and checks bit-identical results plus
// exact endpoint reconciliation and per-kind traffic accounting.
func TestSeqFabricsMatchSequential(t *testing.T) {
	tax, db := parallelDataset(t)
	want, err := Mine(tax, db, Config{MinSupport: 0.05, MaxK: 3})
	if err != nil {
		t.Fatal(err)
	}
	fabrics := []struct {
		name string
		kind FabricKind
	}{{"chan", FabricChan}, {"tcp", FabricTCP}}
	for _, alg := range Algorithms() {
		for _, f := range fabrics {
			t.Run(fmt.Sprintf("%s/%s", alg, f.name), func(t *testing.T) {
				if f.kind == FabricTCP && testing.Short() {
					t.Skip("tcp fabric in short mode")
				}
				got, err := MineParallel(tax, Partition(db, 3), ParallelConfig{
					Algorithm:  alg,
					MinSupport: 0.05,
					MaxK:       3,
					Workers:    2,
					Fabric:     f.kind,
				})
				if err != nil {
					t.Fatal(err)
				}
				assertSamePatterns(t, want, got.Result)
				if err := got.Stats.ReconcileEndpoints(); err != nil {
					t.Fatalf("reconcile: %v", err)
				}
				ps := got.Stats.Pass(2)
				if ps == nil {
					t.Fatal("no pass 2")
				}
				for _, ns := range ps.Nodes {
					if len(ns.ByKind) == 0 {
						t.Fatalf("node %d pass 2 missing per-kind stats", ns.Node)
					}
				}
				if alg != NPSPM {
					// Partitioned miners must account their sequence traffic
					// under the data kind.
					var dataBytes int64
					for _, ns := range ps.Nodes {
						if int(driver.KData) < len(ns.ByKind) {
							dataBytes += ns.ByKind[driver.KData].BytesSent
						}
					}
					if dataBytes == 0 {
						t.Errorf("%s pass 2 recorded no data-kind bytes", alg)
					}
				}
			})
		}
	}
}

// TestSeqWorkerMesh runs every sequence miner as three MineWorker instances
// over a real TCP mesh (the multi-process deployment path, exercised
// in-process) and checks that every worker converges to the sequential GSP
// result with balanced accounting.
func TestSeqWorkerMesh(t *testing.T) {
	if testing.Short() {
		t.Skip("mesh run in short mode")
	}
	tax, db := parallelDataset(t)
	want, err := Mine(tax, db, Config{MinSupport: 0.05, MaxK: 3})
	if err != nil {
		t.Fatal(err)
	}
	const nodes = 3
	parts := Partition(db, nodes)
	for _, alg := range Algorithms() {
		t.Run(string(alg), func(t *testing.T) {
			// Pre-bind listeners so the test controls the addresses.
			listeners := make([]net.Listener, nodes)
			addrs := make([]string, nodes)
			for i := range listeners {
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				listeners[i] = ln
				addrs[i] = ln.Addr().String()
			}
			results := make([]*ParallelResult, nodes)
			errs := make([]error, nodes)
			var wg sync.WaitGroup
			for i := 0; i < nodes; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					ep, closer, err := cluster.DialMesh(i, addrs, cluster.MeshOptions{Listener: listeners[i]})
					if err != nil {
						errs[i] = err
						return
					}
					defer closer.Close()
					results[i], errs[i] = MineWorker(tax, parts[i], ParallelConfig{
						Algorithm:  alg,
						MinSupport: 0.05,
						MaxK:       3,
					}, ep)
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("worker %d: %v", i, err)
				}
			}
			for i, res := range results {
				if res == nil || res.Result == nil {
					t.Fatalf("worker %d returned no result", i)
				}
				assertSamePatterns(t, want, res.Result)
				if res.Stats == nil || len(res.Stats.Passes) == 0 {
					t.Fatalf("worker %d missing stats", i)
				}
				if err := res.Stats.ReconcileEndpoints(); err != nil {
					t.Errorf("worker %d reconcile: %v", i, err)
				}
			}
		})
	}
}

// TestCandidateOwnershipProperty checks the partitioning invariant both
// hash-partitioned miners rely on: every candidate is owned by exactly one
// node (a deterministic function of the candidate alone), and under HPSPM
// candidates with equal root vectors — H-HPGM tree combinations — share an
// owner.
func TestCandidateOwnershipProperty(t *testing.T) {
	tax := taxonomy.MustBalanced(60, 3, 3)
	randPattern := func(rng *rand.Rand) [][]item.Item {
		elements := make([][]item.Item, 1+rng.Intn(3))
		for i := range elements {
			e := make([]item.Item, 1+rng.Intn(2))
			for j := range e {
				e[j] = item.Item(rng.Intn(tax.NumItems()))
			}
			elements[i] = item.Dedup(e)
		}
		return elements
	}
	f := func(seed int64, nNodes uint8) bool {
		n := 1 + int(nNodes%8)
		rng := rand.New(rand.NewSource(seed))
		c := randPattern(rng)
		for _, alg := range []Algorithm{SPSPM, HPSPM} {
			owner := candidateOwner(tax, alg, c, n)
			if owner < 0 || owner >= n {
				return false
			}
			// Deterministic: recomputing on another "node" agrees.
			if candidateOwner(tax, alg, c, n) != owner {
				return false
			}
		}
		// HPSPM: reordering elements and replacing items by ancestors both
		// preserve the root vector, so the owner must not move.
		owner := candidateOwner(tax, HPSPM, c, n)
		rev := make([][]item.Item, len(c))
		for i := range c {
			rev[i] = c[len(c)-1-i]
		}
		if candidateOwner(tax, HPSPM, rev, n) != owner {
			return false
		}
		up := make([][]item.Item, len(c))
		for i, e := range c {
			ue := make([]item.Item, len(e))
			for j, x := range e {
				ue[j] = x
				if p := tax.Parent(x); p != item.None {
					ue[j] = p
				}
			}
			up[i] = ue
		}
		return candidateOwner(tax, HPSPM, up, n) == owner
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestHPSPMMovesFewerItemsThanSPSPM pins the point of HPSPM: identical
// counts to SPSPM while shipping only the sequence items relevant to each
// owner's candidates.
func TestHPSPMMovesFewerItemsThanSPSPM(t *testing.T) {
	tax, db := parallelDataset(t)
	run := func(alg Algorithm) (*ParallelResult, int64, int64) {
		res, err := MineParallel(tax, Partition(db, 4), ParallelConfig{
			Algorithm:  alg,
			MinSupport: 0.05,
			MaxK:       3,
		})
		if err != nil {
			t.Fatal(err)
		}
		var items, bytes int64
		for _, ps := range res.Stats.Passes {
			if ps.Pass < 2 {
				continue
			}
			items += ps.TotalItemsSent()
			for _, ns := range ps.Nodes {
				bytes += ns.DataBytesSent
			}
		}
		return res, items, bytes
	}
	sres, sItems, sBytes := run(SPSPM)
	hres, hItems, hBytes := run(HPSPM)
	assertSamePatterns(t, sres.Result, hres.Result)
	if hItems == 0 {
		t.Fatal("HPSPM shipped nothing; partitioned counting needs data movement")
	}
	if hItems >= sItems {
		t.Errorf("HPSPM shipped %d items, SPSPM %d; HPSPM must move strictly less", hItems, sItems)
	}
	if hBytes >= sBytes {
		t.Errorf("HPSPM shipped %d data bytes, SPSPM %d; HPSPM must move strictly less", hBytes, sBytes)
	}
	t.Logf("count-support items sent: SPSPM %d, HPSPM %d (%.1f%%); data bytes: SPSPM %d, HPSPM %d (%.1f%%)",
		sItems, hItems, 100*float64(hItems)/float64(sItems),
		sBytes, hBytes, 100*float64(hBytes)/float64(sBytes))
}

// TestParallelConfigValidationExtended pins rejection of malformed knobs
// before any fabric is constructed, and that HPSPM parses as a first-class
// algorithm.
func TestParallelConfigValidationExtended(t *testing.T) {
	tax, db := parallelDataset(t)
	parts := Partition(db, 2)
	bad := []ParallelConfig{
		{Algorithm: NPSPM, MinSupport: 0.1, Buffer: -1},
		{Algorithm: NPSPM, MinSupport: 0.1, Workers: -2},
		{Algorithm: NPSPM, MinSupport: 0.1, BatchBytes: -64},
		{Algorithm: NPSPM, MinSupport: 0.1, MaxK: -1},
		{Algorithm: NPSPM, MinSupport: 1.5},
	}
	for i, cfg := range bad {
		if _, err := MineParallel(tax, parts, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if a, err := ParseAlgorithm("HPSPM"); err != nil || a != HPSPM {
		t.Errorf("ParseAlgorithm(HPSPM) = %v, %v", a, err)
	}
	if _, err := ParseAlgorithm("hpspm"); err == nil {
		t.Error("algorithm names are case-sensitive")
	}
	// MineWorker validates before touching the endpoint.
	f := cluster.NewChanFabric(1, 4)
	defer f.Close()
	if _, err := MineWorker(tax, db, ParallelConfig{Algorithm: "nope", MinSupport: 0.1}, f.Endpoint(0)); err == nil {
		t.Error("bad algorithm must fail")
	}
	if _, err := MineWorker(tax, db, ParallelConfig{Algorithm: HPSPM, MinSupport: 0}, f.Endpoint(0)); err == nil {
		t.Error("zero support must fail")
	}
}
