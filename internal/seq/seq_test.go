package seq

import (
	"testing"

	"pgarm/internal/item"
	"pgarm/internal/taxonomy"
)

// hierarchy: 0 -> 2,3 ; 1 -> 4 ; 2 -> 5,6 ; 3 -> 7 ; 4 -> 8,9
func testTaxonomy() *taxonomy.Taxonomy {
	return taxonomy.MustNew([]item.Item{
		item.None, item.None, 0, 0, 1, 2, 2, 3, 4, 4,
	})
}

func seqOf(cid int64, elements ...[]item.Item) Sequence {
	els := make([][]item.Item, len(elements))
	for i, e := range elements {
		els[i] = item.Dedup(item.Clone(e))
	}
	return Sequence{CID: cid, Elements: els}
}

func TestSequenceBasics(t *testing.T) {
	s := seqOf(1, []item.Item{1, 2}, []item.Item{3})
	if s.NumItems() != 3 {
		t.Errorf("NumItems = %d", s.NumItems())
	}
	if got := s.String(); got != "<{1,2}{3}>" {
		t.Errorf("String = %q", got)
	}
}

func TestKeyAndEqual(t *testing.T) {
	a := [][]item.Item{{1, 2}, {3}}
	b := [][]item.Item{{1}, {2, 3}}
	if Key(a) == Key(b) {
		t.Error("different shapes share a key")
	}
	if !Equal(a, [][]item.Item{{1, 2}, {3}}) {
		t.Error("Equal failed on identical patterns")
	}
	if Equal(a, b) {
		t.Error("Equal true for different patterns")
	}
	if Compare(a, a) != 0 || Compare(a, b) == 0 {
		t.Error("Compare inconsistent")
	}
}

func TestContainsClosureSemantics(t *testing.T) {
	tax := testTaxonomy()
	// Customer buys leaf 5 (under 2 under 0), then leaf 8 (under 4 under 1).
	s := seqOf(1, []item.Item{5}, []item.Item{8})
	closures := Closures(tax, s, nil)

	cases := []struct {
		pattern [][]item.Item
		want    bool
	}{
		{[][]item.Item{{5}}, true},
		{[][]item.Item{{2}}, true},            // ancestor of 5
		{[][]item.Item{{0}, {1}}, true},       // roots in order
		{[][]item.Item{{5}, {8}}, true},       // literal order
		{[][]item.Item{{8}, {5}}, false},      // wrong order
		{[][]item.Item{{5, 8}}, false},        // never together
		{[][]item.Item{{2}, {4}}, true},       // ancestors in order
		{[][]item.Item{{6}}, false},           // sibling, never bought
		{[][]item.Item{{5}, {8}, {5}}, false}, // needs three elements
		{[][]item.Item{{0}, {0}}, false},      // 0 only in first element
	}
	for _, c := range cases {
		if got := Contains(c.pattern, closures); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", Sequence{Elements: c.pattern}, got, c.want)
		}
	}
}

func TestClosuresKeepFilter(t *testing.T) {
	tax := testTaxonomy()
	s := seqOf(1, []item.Item{5})
	keep := make([]bool, tax.NumItems())
	keep[2] = true
	cl := Closures(tax, s, keep)
	if len(cl) != 1 || !item.Equal(cl[0], []item.Item{2}) {
		t.Errorf("filtered closure = %v", cl)
	}
}

func TestGenerateCandidatesPass2(t *testing.T) {
	tax := testTaxonomy()
	prev := []Pattern{
		{Elements: [][]item.Item{{2}}},
		{Elements: [][]item.Item{{5}}},
		{Elements: [][]item.Item{{8}}},
	}
	cands := GenerateCandidates(tax, prev, 2)
	seen := map[string]bool{}
	for _, c := range cands {
		seen[Sequence{Elements: c}.String()] = true
		// No element may pair an item with its ancestor.
		if hasElementAncestorPair(tax, c) {
			t.Errorf("ancestor pair leaked: %v", Sequence{Elements: c})
		}
	}
	// <{2,5}> must be pruned (2 is an ancestor of 5); <{2},{5}> kept;
	// <{5},{5}> kept (repeat purchases); <{5,8}> kept.
	for _, want := range []string{"<{2}{5}>", "<{5}{2}>", "<{5}{5}>", "<{5,8}>", "<{8}{8}>"} {
		if !seen[want] {
			t.Errorf("missing candidate %s", want)
		}
	}
	if seen["<{2,5}>"] {
		t.Error("<{2,5}> should be pruned")
	}
}

func TestGSPJoin(t *testing.T) {
	tax := testTaxonomy()
	// F2 = {<{5}{8}>, <{8}{5}>, <{8}{8}>, <{5,8}>}  (items 5, 8 across trees)
	prev := []Pattern{
		{Elements: [][]item.Item{{5}, {8}}},
		{Elements: [][]item.Item{{8}, {5}}},
		{Elements: [][]item.Item{{8}, {8}}},
		{Elements: [][]item.Item{{5, 8}}},
	}
	cands := GenerateCandidates(tax, prev, 3)
	got := map[string]bool{}
	for _, c := range cands {
		got[Sequence{Elements: c}.String()] = true
	}
	// <{5}{8}> ⋈ <{8}{8}> -> <{5}{8}{8}>: subsequences <{5}{8}>, <{8}{8}>
	// all in F2 -> kept.
	if !got["<{5}{8}{8}>"] {
		t.Errorf("missing <{5}{8}{8}>; got %v", got)
	}
	// <{5}{8}> ⋈ <{8}{5}> -> <{5}{8}{5}> requires <{5}{5}> in F2: pruned.
	if got["<{5}{8}{5}>"] {
		t.Error("<{5}{8}{5}> should be pruned (subsequence <{5}{5}> infrequent)")
	}
	// <{5,8}> ⋈ <{8}{5}> -> <{5,8}{5}> requires <{5}{5}>: pruned. The
	// together-shape <{5,8}{...}> joins need dropFirst(<{5,8}>)=<{8}>.
	if got["<{5,8}{5}>"] {
		t.Error("<{5,8}{5}> should be pruned")
	}
}

func TestMineFindsPlantedPattern(t *testing.T) {
	tax := testTaxonomy()
	db := &DB{}
	// 60% of customers: 5 then 8 (with noise); the rest random singles.
	for cid := int64(0); cid < 100; cid++ {
		if cid%5 < 3 {
			db.Append(seqOf(cid, []item.Item{5}, []item.Item{7}, []item.Item{8}))
		} else {
			// Noise that supports neither <{5}{8}> nor its generalizations:
			// 7 (tree 0 via 3) then 6 (tree 0 via 2) — the <{2}{4}> order
			// never appears.
			db.Append(seqOf(cid, []item.Item{7}, []item.Item{6}))
		}
	}
	res, err := Mine(tax, db, Config{MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]int64{}
	for _, p := range res.All() {
		found[Sequence{Elements: p.Elements}.String()] = p.Count
	}
	if found["<{5}{8}>"] != 60 {
		t.Errorf("planted pattern <{5}{8}> count = %d, want 60", found["<{5}{8}>"])
	}
	// Generalized forms hold too: <{2}{4}> (ancestors of 5 and 8).
	if found["<{2}{4}>"] != 60 {
		t.Errorf("generalized <{2}{4}> count = %d, want 60", found["<{2}{4}>"])
	}
	// Cross-level: <{5}{1}>.
	if found["<{5}{1}>"] != 60 {
		t.Errorf("cross-level <{5}{1}> count = %d, want 60", found["<{5}{1}>"])
	}
}

func TestMineDegenerate(t *testing.T) {
	tax := testTaxonomy()
	res, err := Mine(tax, &DB{}, Config{MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frequent) != 0 {
		t.Error("empty db produced patterns")
	}
	if _, err := Mine(nil, &DB{}, Config{}); err == nil {
		t.Error("nil taxonomy must fail")
	}
	if res.FrequentK(0) != nil || res.FrequentK(5) != nil {
		t.Error("FrequentK out of range must be nil")
	}
}

func TestMineMaxK(t *testing.T) {
	tax := testTaxonomy()
	db := &DB{}
	for cid := int64(0); cid < 20; cid++ {
		db.Append(seqOf(cid, []item.Item{5}, []item.Item{8}, []item.Item{7}))
	}
	full, err := Mine(tax, db, Config{MinSupport: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := Mine(tax, db, Config{MinSupport: 0.9, MaxK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Frequent) != 2 {
		t.Errorf("MaxK=2 levels = %d", len(capped.Frequent))
	}
	if len(full.Frequent) <= 2 {
		t.Errorf("full run levels = %d, want > 2", len(full.Frequent))
	}
}

func TestGenerateSequences(t *testing.T) {
	tax := taxonomy.MustBalanced(200, 4, 4)
	p := DefaultGenParams()
	p.NumCustomers = 300
	db := GenerateSequences(tax, p)
	if db.Len() != 300 {
		t.Fatalf("customers = %d", db.Len())
	}
	db.Scan(func(s Sequence) error {
		if len(s.Elements) == 0 {
			t.Fatalf("customer %d has no elements", s.CID)
		}
		for _, e := range s.Elements {
			if !item.IsSorted(e) || len(e) == 0 {
				t.Fatalf("customer %d element not canonical: %v", s.CID, e)
			}
			for _, x := range e {
				if !tax.IsLeaf(x) {
					t.Fatalf("non-leaf item %v in generated sequence", x)
				}
			}
		}
		return nil
	})
	// Determinism.
	db2 := GenerateSequences(tax, p)
	for i := 0; i < db.Len(); i++ {
		if !Equal(db.At(i).Elements, db2.At(i).Elements) {
			t.Fatalf("generation not deterministic at customer %d", i)
		}
	}
}

func TestPartitionSequences(t *testing.T) {
	db := &DB{}
	for cid := int64(0); cid < 10; cid++ {
		db.Append(seqOf(cid, []item.Item{1}))
	}
	parts := Partition(db, 3)
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	if total != 10 {
		t.Errorf("partitioning lost customers: %d", total)
	}
}
