// Package seq implements the extension the paper's conclusion names as
// future work: mining *generalized sequential patterns* with a
// classification hierarchy (Srikant & Agrawal's GSP, EDBT'96) and its
// parallelization in the style of Shintani & Kitsuregawa's hash-based
// approach (PAKDD'98, [SK98]).
//
// A data sequence is a customer's time-ordered list of transactions
// (elements); a pattern <e_1 ... e_m> is contained in a data sequence when
// its elements match distinct data elements in order, each pattern element
// being a subset of the *ancestor closure* of the matched transaction.
// Support counts customers, not transactions. Time constraints (sliding
// windows, gap bounds) are out of scope here, as they are orthogonal to the
// parallelization the paper studies.
package seq

import (
	"fmt"
	"sort"
	"strings"

	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/taxonomy"
)

// Sequence is one customer's ordered transaction history. Elements must
// each be canonical itemsets; their order is temporal.
type Sequence struct {
	CID      int64
	Elements [][]item.Item
}

// NumItems returns the total number of items across elements (the "k" of a
// k-sequence).
func (s Sequence) NumItems() int {
	n := 0
	for _, e := range s.Elements {
		n += len(e)
	}
	return n
}

// String renders "<{1,2}{3}>".
func (s Sequence) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for _, e := range s.Elements {
		b.WriteString(item.Format(e))
	}
	b.WriteByte('>')
	return b.String()
}

// Pattern is a candidate or frequent sequential pattern with its support
// count.
type Pattern struct {
	Elements [][]item.Item
	Count    int64
}

// String renders the pattern with its count.
func (p Pattern) String() string {
	return fmt.Sprintf("%s sup_cou=%d", Sequence{Elements: p.Elements}.String(), p.Count)
}

// Key packs a pattern's shape into a map key: element lengths then items.
func Key(elements [][]item.Item) string {
	var b []byte
	b = append(b, byte(len(elements)))
	for _, e := range elements {
		b = append(b, byte(len(e)))
	}
	for _, e := range elements {
		b = itemset.AppendKey(b, e)
	}
	return string(b)
}

// Equal reports whether two patterns have identical shape and items.
func Equal(a, b [][]item.Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !item.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// Compare orders patterns by element-wise lexicographic comparison.
func Compare(a, b [][]item.Item) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := item.Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// clonePattern deep-copies a pattern's elements.
func clonePattern(elements [][]item.Item) [][]item.Item {
	out := make([][]item.Item, len(elements))
	for i, e := range elements {
		out[i] = item.Clone(e)
	}
	return out
}

// SortPatterns orders patterns canonically.
func SortPatterns(ps []Pattern) {
	sort.Slice(ps, func(i, j int) bool { return Compare(ps[i].Elements, ps[j].Elements) < 0 })
}

// DB is an in-memory sequence database.
type DB struct {
	seqs []Sequence
}

// NewDB wraps a sequence slice (retained).
func NewDB(seqs []Sequence) *DB { return &DB{seqs: seqs} }

// Append adds a customer sequence.
func (db *DB) Append(s Sequence) { db.seqs = append(db.seqs, s) }

// Len returns the number of customers.
func (db *DB) Len() int { return len(db.seqs) }

// At returns customer i's sequence (shared storage).
func (db *DB) At(i int) Sequence { return db.seqs[i] }

// Scan streams every customer sequence to fn in order.
func (db *DB) Scan(fn func(Sequence) error) error {
	for _, s := range db.seqs {
		if err := fn(s); err != nil {
			return err
		}
	}
	return nil
}

// Partition splits the customers round-robin over n node-local stores.
func Partition(db *DB, n int) []*DB {
	parts := make([]*DB, n)
	for i := range parts {
		parts[i] = &DB{}
	}
	for i, s := range db.seqs {
		parts[i%n].Append(s)
	}
	return parts
}

// Contains reports whether the pattern is contained in the data sequence
// under closure semantics: pattern elements match distinct data elements in
// order, each pattern element a subset of the matched element's ancestor
// closure. closures must hold the precomputed closure of each data element.
// The greedy earliest-match strategy is exact absent time constraints.
func Contains(pattern [][]item.Item, closures [][]item.Item) bool {
	di := 0
	for _, pe := range pattern {
		for {
			if di >= len(closures) {
				return false
			}
			if item.ContainsAll(closures[di], pe) {
				di++
				break
			}
			di++
		}
	}
	return true
}

// Closures computes the per-element ancestor closures of a data sequence,
// optionally restricted to items flagged in keep (nil keeps everything).
func Closures(tax *taxonomy.Taxonomy, s Sequence, keep []bool) [][]item.Item {
	out := make([][]item.Item, len(s.Elements))
	scratch := make([]item.Item, 0, 32)
	for i, e := range s.Elements {
		scratch = tax.ExtendTransaction(scratch[:0], e)
		if keep != nil {
			w := 0
			for _, x := range scratch {
				if keep[x] {
					scratch[w] = x
					w++
				}
			}
			scratch = scratch[:w]
		}
		out[i] = item.Clone(scratch)
	}
	return out
}
