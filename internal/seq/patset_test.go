package seq

import (
	"math/rand"
	"reflect"
	"testing"

	"pgarm/internal/item"
	"pgarm/internal/taxonomy"
)

// randomPattern builds a canonical random pattern: 1..maxEl elements of
// 1..3 strictly ascending items each.
func randomPattern(rng *rand.Rand, numItems, maxEl int) [][]item.Item {
	ne := 1 + rng.Intn(maxEl)
	out := make([][]item.Item, ne)
	for i := range out {
		sz := 1 + rng.Intn(3)
		e := make([]item.Item, 0, sz)
		for len(e) < sz {
			e = item.Dedup(append(e, item.Item(rng.Intn(numItems))))
		}
		out[i] = e
	}
	return out
}

// keyFNV is the reference hash: FNV-1a folded over the materialized
// canonical Key string, byte by byte — what patternHash computed before it
// went allocation-free.
func keyFNV(elements [][]item.Item) uint64 {
	key := Key(elements)
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * fnvPrime64
	}
	return h
}

func TestHashElementsMatchesKeyFNV(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 500; trial++ {
		p := randomPattern(rng, 50, 4)
		if got, want := hashElements(p), keyFNV(p); got != want {
			t.Fatalf("hashElements(%v) = %#x, keyFNV = %#x", p, got, want)
		}
	}
}

func TestHashDroppedMatchesDropItem(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		p := randomPattern(rng, 40, 4)
		for ei := range p {
			for ii := range p[ei] {
				sub := dropItem(p, ei, ii)
				if got, want := hashDropped(p, ei, ii), hashElements(sub); got != want {
					t.Fatalf("hashDropped(%v, %d, %d) = %#x, hashElements(dropItem) = %#x",
						p, ei, ii, got, want)
				}
				if !equalDropped(sub, p, ei, ii) {
					t.Fatalf("equalDropped(dropItem(%v,%d,%d), ...) = false", p, ei, ii)
				}
				// A perturbed pattern must not compare equal.
				other := randomPattern(rng, 40, 4)
				if equalDropped(other, p, ei, ii) != Equal(other, sub) {
					t.Fatalf("equalDropped(%v, %v, %d, %d) disagrees with Equal on dropItem",
						other, p, ei, ii)
				}
			}
		}
	}
}

func TestPatSetPruneMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 100; trial++ {
		prev := make([]Pattern, 0, 30)
		for i := 0; i < 30; i++ {
			prev = append(prev, Pattern{Elements: randomPattern(rng, 25, 3)})
		}
		inPrev := make(map[string]bool, len(prev))
		for _, p := range prev {
			inPrev[Key(p.Elements)] = true
		}
		ps := newPatSet(prev)
		for i := 0; i < 50; i++ {
			c := randomPattern(rng, 25, 3)
			want := true
			for ei := range c {
				for ii := range c[ei] {
					if !inPrev[Key(dropItem(c, ei, ii))] {
						want = false
					}
				}
			}
			if got := ps.pruneOK(c); got != want {
				t.Fatalf("pruneOK(%v) = %v, map reference = %v", c, got, want)
			}
		}
	}
}

func TestDedupPatternsMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 100; trial++ {
		var out [][][]item.Item
		for i := 0; i < 40; i++ {
			p := randomPattern(rng, 6, 2) // tiny universe: duplicates guaranteed
			out = append(out, p)
			if rng.Intn(3) == 0 {
				out = append(out, clonePattern(p)) // structural duplicate
			}
		}
		ref := append([][][]item.Item(nil), out...)
		seen := make(map[string]bool, len(ref))
		w := 0
		for _, c := range ref {
			if key := Key(c); !seen[key] {
				seen[key] = true
				ref[w] = c
				w++
			}
		}
		ref = ref[:w]
		if got := dedupPatterns(out); !reflect.DeepEqual(got, ref) {
			t.Fatalf("dedupPatterns diverged from map dedup:\ngot  %v\nwant %v", got, ref)
		}
	}
}

// TestGenerateCandidatesNMatchesSequential drives the sharded generator over
// the frequent levels of a real sequential mine and over synthetic pattern
// sets, asserting bit-identical output (order included) at every worker
// count.
func TestGenerateCandidatesNMatchesSequential(t *testing.T) {
	tax := taxonomy.MustBalanced(60, 3, 3)
	db := GenerateSequences(tax, GenParams{
		NumCustomers: 300, AvgElements: 5, AvgElementSize: 2,
		NumPatterns: 20, AvgPatternLen: 3, Seed: 7,
	})
	// MaxK 2 bounds the counting work; the generator is still exercised on
	// C_3 below via check(F_2, 3), which generates without counting.
	res, err := Mine(tax, db, Config{MinSupport: 0.05, MaxK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frequent) < 2 {
		t.Fatalf("mine produced only %d levels; test needs k >= 2 input", len(res.Frequent))
	}
	check := func(prev []Pattern, k int) {
		t.Helper()
		want := GenerateCandidatesN(tax, prev, k, 1, nil)
		for _, w := range []int{2, 4, 8} {
			got := GenerateCandidatesN(tax, prev, k, w, nil)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("k=%d workers=%d: %d candidates != sequential %d (or order diverged)",
					k, w, len(got), len(want))
			}
		}
	}
	for ki, prev := range res.Frequent {
		check(prev, ki+2)
	}
	// Synthetic sets exercise shapes the mined levels may not hit (joins of
	// multi-item elements, duplicate joins straddling shard boundaries).
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 20; trial++ {
		prev := make([]Pattern, 0, 40)
		for i := 0; i < 40; i++ {
			prev = append(prev, Pattern{Elements: randomPattern(rng, 12, 3)})
		}
		k := 3 // any k > 2 takes the join path; shape is driven by prev
		check(prev, k)
	}
}
