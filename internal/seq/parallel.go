package seq

import (
	"fmt"
	"time"

	"pgarm/internal/cluster"
	"pgarm/internal/driver"
	"pgarm/internal/metrics"
	"pgarm/internal/obs"
	"pgarm/internal/taxonomy"
)

// Algorithm selects a parallel sequential-pattern miner, following the
// naming of [SK98] (Shintani & Kitsuregawa, PAKDD'98):
//
//	NPSPM  Non-Partitioned: candidate sequences replicated on every node;
//	       purely local counting plus a coordinator reduce (the sequence
//	       analogue of NPGM).
//	SPSPM  Simply Partitioned: candidate sequences hash-partitioned over the
//	       nodes; every node broadcasts its local customer sequences so each
//	       owner can count its share (the analogue of naive HPGM — heavy
//	       communication, aggregate-memory friendly).
//	HPSPM  Hash-Partitioned: candidates partitioned by the hash of their
//	       *root vector* (the roots of every member item), the H-HPGM rule,
//	       so each node is shipped only the sequence items relevant to its
//	       own candidates — same counts as SPSPM at a fraction of the bytes.
type Algorithm string

// The implemented parallel sequential miners.
const (
	NPSPM Algorithm = "NPSPM"
	SPSPM Algorithm = "SPSPM"
	HPSPM Algorithm = "HPSPM"
)

// Algorithms lists every implemented algorithm in presentation order.
func Algorithms() []Algorithm {
	return []Algorithm{NPSPM, SPSPM, HPSPM}
}

// ParseAlgorithm resolves a name (as printed by the Algorithm constants,
// case-sensitive) to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	for _, a := range Algorithms() {
		if string(a) == s {
			return a, nil
		}
	}
	return "", fmt.Errorf("seq: unknown algorithm %q", s)
}

// FabricKind selects the interconnect emulation (see internal/driver).
type FabricKind = driver.FabricKind

const (
	// FabricChan runs the nodes over in-process channels (default).
	FabricChan = driver.FabricChan
	// FabricTCP runs the nodes over loopback TCP connections.
	FabricTCP = driver.FabricTCP
)

// PassProgress is the per-pass progress callback payload (Config.OnPass),
// delivered on the coordinator when a pass completes.
type PassProgress = driver.PassProgress

// ParallelConfig controls a parallel GSP run.
type ParallelConfig struct {
	Algorithm  Algorithm
	MinSupport float64 // fraction of all customers
	MaxK       int     // 0 = run to completion

	// Workers is the number of scan goroutines each node uses over its local
	// partition (see driver.ScanShards); 0 or 1 scans on the node goroutine.
	Workers int

	Fabric     FabricKind
	Buffer     int // per-inbox message buffer; 0 = default
	BatchBytes int // count-support send batching threshold; 0 = default (4KB)

	// Tracer, when non-nil, records phase spans for every node (pass,
	// generate, scan shards, exchange, barrier) for Chrome-trace export.
	Tracer *obs.Tracer
	// Registry, when non-nil, receives live counters/gauges/histograms per
	// node (current pass, probes, scan and barrier timings) for /metrics.
	Registry *obs.Registry
	// OnPassStart, when non-nil, fires on the coordinator as each pass k>=2
	// begins, before any scanning.
	OnPassStart func(pass, candidates int)
	// OnPass, when non-nil, fires on the coordinator as each pass completes.
	OnPass func(PassProgress)
	// ClockOffsets, when non-nil on the coordinator of a mesh run, holds the
	// per-node clock offsets estimated during DialMesh (Mesh.ClockOffsets);
	// the telemetry plane uses them to rebase remote span timestamps into the
	// coordinator's clock when merging cluster traces.
	ClockOffsets []time.Duration
	// View, when non-nil, receives live cluster-run state (current pass,
	// per-node progress, skew snapshots) for the /debug/cluster endpoint.
	View *driver.ClusterView
}

// validate rejects malformed configurations before any fabric (listeners,
// goroutines) is constructed.
func (c *ParallelConfig) validate() error {
	if c.MinSupport <= 0 || c.MinSupport > 1 {
		return fmt.Errorf("seq: minimum support %g out of (0,1]", c.MinSupport)
	}
	if _, err := ParseAlgorithm(string(c.Algorithm)); err != nil {
		return err
	}
	if c.MaxK < 0 {
		return fmt.Errorf("seq: negative MaxK %d", c.MaxK)
	}
	if c.Workers < 0 {
		return fmt.Errorf("seq: negative Workers %d", c.Workers)
	}
	if c.Buffer < 0 {
		return fmt.Errorf("seq: negative Buffer %d", c.Buffer)
	}
	if c.BatchBytes < 0 {
		return fmt.Errorf("seq: negative BatchBytes %d", c.BatchBytes)
	}
	return nil
}

// driverConfig maps the runtime-relevant half of the config onto the shared
// pass driver's knobs; the mining-relevant half (Algorithm) stays with the
// sequence miner.
func (c *ParallelConfig) driverConfig() driver.Config {
	return driver.Config{
		MinSupport:   c.MinSupport,
		MaxK:         c.MaxK,
		Workers:      c.Workers,
		BatchBytes:   c.BatchBytes,
		Tracer:       c.Tracer,
		Registry:     c.Registry,
		OnPassStart:  c.OnPassStart,
		OnPass:       c.OnPass,
		ClockOffsets: c.ClockOffsets,
		View:         c.View,
	}
}

// ParallelResult carries the frequent patterns and per-pass statistics.
type ParallelResult struct {
	*Result
	Stats *metrics.RunStats
}

// MineParallel runs the configured algorithm over len(parts) shared-nothing
// nodes (goroutines over the configured fabric) and returns the frequent
// generalized sequential patterns — identical to sequential Mine.
func MineParallel(tax *taxonomy.Taxonomy, parts []*DB, cfg ParallelConfig) (*ParallelResult, error) {
	n := len(parts)
	if n == 0 {
		return nil, fmt.Errorf("seq: no partitions")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}

	fabric, err := driver.NewFabric(cfg.Fabric, n, cfg.Buffer)
	if err != nil {
		return nil, err
	}
	defer fabric.Close()

	miners := make([]driver.Miner, n)
	coord := (*seqMiner)(nil)
	for i := 0; i < n; i++ {
		m := newSeqMiner(tax, parts[i], cfg)
		if i == 0 {
			coord = m
		}
		miners[i] = m
	}

	nodes, elapsed, err := driver.Run(fabric, cfg.driverConfig(), miners)
	if err != nil {
		return nil, err
	}

	res := coord.result
	if res == nil {
		res = &Result{NumCustomers: nodes[0].TotalSize()}
	}
	return &ParallelResult{
		Result: res,
		Stats:  driver.AssembleStats(string(cfg.Algorithm), cfg.MinSupport, nodes, elapsed),
	}, nil
}

// MineWorker runs a single node of the sequence-mining protocol over a
// caller-provided endpoint — the entry point for true multi-process
// shared-nothing clusters (see cluster.DialMesh). Every worker must run the
// same config; node 0 acts as coordinator.
//
// The returned result carries the global frequent patterns (identical on
// every node after the final broadcast). On the coordinator the Stats also
// merge every worker's per-pass counters and endpoint totals — shipped at
// each pass barrier over the telemetry plane — into a full cluster view; on
// follower nodes they cover only the local node.
func MineWorker(tax *taxonomy.Taxonomy, local *DB, cfg ParallelConfig, ep cluster.Endpoint) (*ParallelResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := newSeqMiner(tax, local, cfg)
	nd, elapsed, err := driver.RunWorker(ep, cfg.driverConfig(), m)
	if err != nil {
		return nil, err
	}
	res := m.result
	if res == nil {
		res = &Result{NumCustomers: nd.TotalSize()}
	}
	return &ParallelResult{
		Result: res,
		Stats:  driver.AssembleClusterStats(string(cfg.Algorithm), cfg.MinSupport, nd, elapsed),
	}, nil
}
