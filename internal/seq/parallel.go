package seq

import (
	"fmt"
	"time"

	"pgarm/internal/cluster"
	"pgarm/internal/cumulate"
	"pgarm/internal/item"
	"pgarm/internal/metrics"
	"pgarm/internal/taxonomy"
	"pgarm/internal/wire"
)

// Algorithm selects a parallel sequential-pattern miner, following the
// naming of [SK98] (Shintani & Kitsuregawa, PAKDD'98):
//
//	NPSPM  Non-Partitioned: candidate sequences replicated on every node;
//	       purely local counting plus a coordinator reduce (the sequence
//	       analogue of NPGM).
//	SPSPM  Simply Partitioned: candidate sequences hash-partitioned over the
//	       nodes; every node broadcasts its local customer sequences so each
//	       owner can count its share (the analogue of naive HPGM — heavy
//	       communication, aggregate-memory friendly).
//
// [SK98]'s HPSPM refinement (routing subsequences by hash instead of
// broadcasting whole sequences) is the natural next step and is left as
// future work here, mirroring the paper's own outlook section.
type Algorithm string

// The implemented parallel sequential miners.
const (
	NPSPM Algorithm = "NPSPM"
	SPSPM Algorithm = "SPSPM"
)

// ParallelConfig controls a parallel GSP run.
type ParallelConfig struct {
	Algorithm  Algorithm
	MinSupport float64 // fraction of all customers
	MaxK       int     // 0 = run to completion
	Buffer     int     // fabric inbox buffer (0 = default)
}

// ParallelResult carries the frequent patterns and per-pass statistics.
type ParallelResult struct {
	*Result
	Stats *metrics.RunStats
}

// Message kinds of the (much simpler) sequential-pattern protocol.
const (
	sSize   uint8 = iota + 1 // size exchange, both directions
	sCounts                  // dense count vector to coordinator
	sSeq                     // SPSPM: one customer sequence broadcast
	sDone                    // SPSPM: end of sequence stream
	sFreq                    // coordinator broadcast of F_k
)

// MineParallel runs the configured algorithm over len(parts) shared-nothing
// nodes (goroutines over a channel fabric) and returns the frequent
// generalized sequential patterns — identical to sequential Mine.
func MineParallel(tax *taxonomy.Taxonomy, parts []*DB, cfg ParallelConfig) (*ParallelResult, error) {
	n := len(parts)
	if n == 0 {
		return nil, fmt.Errorf("seq: no partitions")
	}
	if cfg.MinSupport <= 0 || cfg.MinSupport > 1 {
		return nil, fmt.Errorf("seq: minimum support %g out of (0,1]", cfg.MinSupport)
	}
	if cfg.Algorithm != NPSPM && cfg.Algorithm != SPSPM {
		return nil, fmt.Errorf("seq: unknown algorithm %q", cfg.Algorithm)
	}
	fabric := cluster.NewChanFabric(n, cfg.Buffer)
	defer fabric.Close()

	nodes := make([]*seqNode, n)
	for i := range nodes {
		nodes[i] = &seqNode{
			id:  i,
			tax: tax,
			db:  parts[i],
			ep:  fabric.Endpoint(i),
			cfg: cfg,
		}
	}
	start := time.Now()
	errs := make(chan error, n)
	for _, nd := range nodes {
		go func(nd *seqNode) { errs <- nd.run() }(nd)
	}
	var firstErr error
	for range nodes {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	coord := nodes[0]
	rs := &metrics.RunStats{
		Algorithm: string(cfg.Algorithm),
		Nodes:     n,
		MinSup:    cfg.MinSupport,
		Elapsed:   time.Since(start),
	}
	for pi := range coord.passMeta {
		ps := coord.passMeta[pi]
		for _, nd := range nodes {
			if pi < len(nd.perPass) {
				ps.Nodes = append(ps.Nodes, nd.perPass[pi])
			}
		}
		rs.Passes = append(rs.Passes, ps)
	}
	return &ParallelResult{Result: coord.result, Stats: rs}, nil
}

// seqNode is one shared-nothing processor of the sequential miner.
type seqNode struct {
	id  int
	tax *taxonomy.Taxonomy
	db  *DB
	ep  cluster.Endpoint
	cfg ParallelConfig

	totalCustomers int
	minCount       int64
	large          []bool

	result   *Result // coordinator only
	passMeta []metrics.PassStats
	perPass  []metrics.NodeStats
	cur      metrics.NodeStats

	// pending stashes messages that arrived ahead of their phase (a fast
	// peer may broadcast pass-k+1 sequences before our pass-k F_k landed).
	pending []cluster.Message
}

func (nd *seqNode) isCoord() bool { return nd.id == 0 }

func (nd *seqNode) peers() int { return nd.ep.N() - 1 }

// recv blocks for the next message of the wanted kind, stashing everything
// else for later phases.
func (nd *seqNode) recv(kind uint8) (cluster.Message, error) {
	for i, m := range nd.pending {
		if m.Kind == kind {
			nd.pending = append(nd.pending[:i], nd.pending[i+1:]...)
			return m, nil
		}
	}
	for m := range nd.ep.Inbox() {
		if m.Kind == kind {
			return m, nil
		}
		nd.pending = append(nd.pending, m)
	}
	return cluster.Message{}, fmt.Errorf("seq: node %d inbox closed", nd.id)
}

func (nd *seqNode) run() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("seq: node %d panicked: %v", nd.id, r)
		}
	}()
	if err := nd.sizeExchange(); err != nil {
		return err
	}
	prev, err := nd.pass1()
	if err != nil {
		return err
	}
	if len(prev) == 0 {
		return nil
	}
	for k := 2; nd.cfg.MaxK == 0 || k <= nd.cfg.MaxK; k++ {
		cands := GenerateCandidates(nd.tax, prev, k)
		if len(cands) == 0 {
			return nil
		}
		fk, err := nd.passK(k, cands)
		if err != nil {
			return err
		}
		if len(fk) == 0 {
			return nil
		}
		prev = fk
	}
	return nil
}

func (nd *seqNode) sizeExchange() error {
	if nd.isCoord() {
		total := int64(nd.db.Len())
		for p := 0; p < nd.peers(); p++ {
			m, err := nd.recv(sSize)
			if err != nil {
				return err
			}
			v, _, err := wire.Uvarint(m.Payload)
			if err != nil {
				return err
			}
			total += int64(v)
		}
		for p := 1; p < nd.ep.N(); p++ {
			if err := nd.ep.Send(p, sSize, wire.AppendUvarint(nil, uint64(total))); err != nil {
				return err
			}
		}
		nd.totalCustomers = int(total)
	} else {
		if err := nd.ep.Send(0, sSize, wire.AppendUvarint(nil, uint64(nd.db.Len()))); err != nil {
			return err
		}
		m, err := nd.recv(sSize)
		if err != nil {
			return err
		}
		v, _, err := wire.Uvarint(m.Payload)
		if err != nil {
			return err
		}
		nd.totalCustomers = int(v)
	}
	nd.minCount = cumulate.MinCount(nd.cfg.MinSupport, nd.totalCustomers)
	return nil
}

// pass1 counts item support per customer and reduces at the coordinator.
func (nd *seqNode) pass1() ([]Pattern, error) {
	started := time.Now()
	nd.cur = metrics.NodeStats{Node: nd.id}
	counts := make([]int64, nd.tax.NumItems())
	scratch := make([]item.Item, 0, 64)
	err := nd.db.Scan(func(s Sequence) error {
		nd.cur.TxnsScanned++
		scratch = scratch[:0]
		for _, e := range s.Elements {
			scratch = nd.tax.ExtendTransaction(scratch, e)
		}
		for _, x := range scratch {
			counts[x]++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	global, err := nd.reduceCounts(counts)
	if err != nil {
		return nil, err
	}
	nd.large = make([]bool, nd.tax.NumItems())
	var f1 []Pattern
	for i, c := range global {
		if c >= nd.minCount {
			nd.large[i] = true
			f1 = append(f1, Pattern{Elements: [][]item.Item{{item.Item(i)}}, Count: c})
		}
	}
	nd.finishPass(1, nd.tax.NumItems(), len(f1), started, f1)
	return f1, nil
}

// passK counts candidate k-sequences under the configured algorithm.
func (nd *seqNode) passK(k int, cands [][][]item.Item) ([]Pattern, error) {
	started := time.Now()
	nd.cur = metrics.NodeStats{Node: nd.id}
	// The fabric counters are monotonic; this pass's traffic is the delta
	// against the snapshot taken here.
	base := nd.ep.Stats()

	var counts []int64
	var err error
	switch nd.cfg.Algorithm {
	case NPSPM:
		counts, err = nd.countReplicated(cands)
	case SPSPM:
		counts, err = nd.countPartitioned(cands)
	}
	if err != nil {
		return nil, fmt.Errorf("seq: node %d pass %d: %w", nd.id, k, err)
	}
	// Sent-side count-support data plane: everything sent since the pass
	// snapshot, read before the reduce adds control traffic; the received
	// side is accumulated at delivery in the receiver loop.
	nd.cur.DataBytesSent = nd.ep.Stats().BytesSent - base.BytesSent
	global, err := nd.reduceCounts(counts)
	if err != nil {
		return nil, err
	}
	var fk []Pattern
	for i, c := range global {
		if c >= nd.minCount {
			fk = append(fk, Pattern{Elements: cands[i], Count: c})
		}
	}
	SortPatterns(fk)
	d := nd.ep.Stats().Sub(base)
	nd.cur.BytesSent, nd.cur.BytesReceived = d.BytesSent, d.BytesRecv
	nd.cur.MsgsSent, nd.cur.MsgsReceived = d.MsgsSent, d.MsgsRecv
	nd.finishPass(k, len(cands), len(fk), started, fk)
	return fk, nil
}

// countReplicated is NPSPM: every candidate counted locally.
func (nd *seqNode) countReplicated(cands [][][]item.Item) ([]int64, error) {
	counts := make([]int64, len(cands))
	err := nd.db.Scan(func(s Sequence) error {
		nd.cur.TxnsScanned++
		closures := Closures(nd.tax, s, nd.large)
		for i, c := range cands {
			nd.cur.Probes++
			if Contains(c, closures) {
				counts[i]++
				nd.cur.Increments++
			}
		}
		return nil
	})
	return counts, err
}

// countPartitioned is SPSPM: node owns cands[i] when hash(i) maps here;
// every local sequence is broadcast so owners can count their share.
func (nd *seqNode) countPartitioned(cands [][][]item.Item) ([]int64, error) {
	nNodes := nd.ep.N()
	owned := make([]int, 0, len(cands)/nNodes+1)
	for i, c := range cands {
		if int(patternHash(c)%uint64(nNodes)) == nd.id {
			owned = append(owned, i)
		}
	}
	counts := make([]int64, len(cands))

	count := func(closures [][]item.Item) {
		for _, i := range owned {
			nd.cur.Probes++
			if Contains(cands[i], closures) {
				counts[i]++
				nd.cur.Increments++
			}
		}
	}

	// Hand pre-stashed broadcast messages to the receiver, then run it.
	var pre []cluster.Message
	rest := nd.pending[:0]
	for _, m := range nd.pending {
		if m.Kind == sSeq || m.Kind == sDone {
			pre = append(pre, m)
		} else {
			rest = append(rest, m)
		}
	}
	nd.pending = rest

	// Receiver goroutine: it exclusively owns the owned-candidate counting
	// (counts and the probe counters), so the scanning goroutine routes its
	// local sequences through the loopback channel instead of counting them
	// itself — the same producer/consumer split that keeps the itemset
	// engines deadlock- and race-free.
	local := make(chan [][]item.Item, 64)
	recvDone := make(chan error, 1)
	var stash []cluster.Message
	go func() {
		peersLeft := nd.peers()
		for _, m := range pre {
			if m.Kind == sDone {
				peersLeft--
				continue
			}
			closures, err := decodeClosures(m.Payload)
			if err != nil {
				recvDone <- err
				return
			}
			nd.cur.ItemsReceived += closureItems(closures)
			nd.cur.DataBytesReceived += int64(len(m.Payload))
			count(closures)
		}
		inbox := nd.ep.Inbox()
		lq := local
		for peersLeft > 0 || lq != nil {
			select {
			case m, ok := <-inbox:
				if !ok {
					recvDone <- fmt.Errorf("inbox closed mid broadcast")
					return
				}
				switch m.Kind {
				case sSeq:
					closures, err := decodeClosures(m.Payload)
					if err != nil {
						recvDone <- err
						return
					}
					nd.cur.ItemsReceived += closureItems(closures)
					nd.cur.DataBytesReceived += int64(len(m.Payload))
					count(closures)
				case sDone:
					peersLeft--
				default:
					stash = append(stash, m)
				}
			case closures, ok := <-lq:
				if !ok {
					lq = nil
					continue
				}
				count(closures)
			}
		}
		recvDone <- nil
	}()

	err := nd.db.Scan(func(s Sequence) error {
		nd.cur.TxnsScanned++
		closures := Closures(nd.tax, s, nd.large)
		local <- closures // local share, counted by the receiver
		payload := encodeClosures(closures)
		items := closureItems(closures)
		for p := 0; p < nNodes; p++ {
			if p == nd.id {
				continue
			}
			nd.cur.ItemsSent += items
			if err := nd.ep.Send(p, sSeq, payload); err != nil {
				return err
			}
		}
		return nil
	})
	if err == nil {
		for p := 0; p < nNodes; p++ {
			if p == nd.id {
				continue
			}
			if err = nd.ep.Send(p, sDone, nil); err != nil {
				break
			}
		}
	}
	close(local)
	if rerr := <-recvDone; err == nil {
		err = rerr
	}
	nd.pending = append(nd.pending, stash...)
	return counts, err
}

// reduceCounts sums dense count vectors at the coordinator and broadcasts
// the result.
func (nd *seqNode) reduceCounts(local []int64) ([]int64, error) {
	if nd.isCoord() {
		total := make([]int64, len(local))
		copy(total, local)
		for p := 0; p < nd.peers(); p++ {
			m, err := nd.recv(sCounts)
			if err != nil {
				return nil, err
			}
			remote, _, err := wire.Counts(m.Payload)
			if err != nil {
				return nil, err
			}
			if len(remote) != len(total) {
				return nil, fmt.Errorf("count vector length mismatch: %d vs %d", len(remote), len(total))
			}
			for i, c := range remote {
				total[i] += c
			}
		}
		payload := wire.AppendCounts(nil, total)
		for p := 1; p < nd.ep.N(); p++ {
			if err := nd.ep.Send(p, sFreq, payload); err != nil {
				return nil, err
			}
		}
		return total, nil
	}
	if err := nd.ep.Send(0, sCounts, wire.AppendCounts(nil, local)); err != nil {
		return nil, err
	}
	m, err := nd.recv(sFreq)
	if err != nil {
		return nil, err
	}
	total, _, err := wire.Counts(m.Payload)
	return total, err
}

func (nd *seqNode) finishPass(k, cands, freq int, started time.Time, fk []Pattern) {
	nd.perPass = append(nd.perPass, nd.cur)
	nd.passMeta = append(nd.passMeta, metrics.PassStats{
		Pass:       k,
		Candidates: cands,
		Large:      freq,
		Elapsed:    time.Since(started),
	})
	if nd.isCoord() {
		if nd.result == nil {
			nd.result = &Result{NumCustomers: nd.totalCustomers}
		}
		if len(fk) > 0 {
			nd.result.Frequent = append(nd.result.Frequent, fk)
		}
	}
}

// patternHash hashes a pattern's canonical key.
func patternHash(elements [][]item.Item) uint64 {
	key := Key(elements)
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// encodeClosures serializes a closed sequence for broadcast.
func encodeClosures(closures [][]item.Item) []byte {
	return wire.AppendItemsList(nil, closures)
}

// decodeClosures is the inverse of encodeClosures.
func decodeClosures(b []byte) ([][]item.Item, error) {
	sets, _, err := wire.ItemsList(b)
	return sets, err
}

func closureItems(closures [][]item.Item) int64 {
	var n int64
	for _, c := range closures {
		n += int64(len(c))
	}
	return n
}
