package seq

import (
	"fmt"

	"pgarm/internal/cumulate"
	"pgarm/internal/item"
	"pgarm/internal/taxonomy"
)

// Config controls a GSP mining run.
type Config struct {
	// MinSupport is the minimum support as a fraction of the number of
	// customers.
	MinSupport float64
	// MaxK bounds the pattern size in items; 0 = run until F_k is empty.
	MaxK int
}

// Result holds the frequent k-sequences of every pass.
type Result struct {
	// Frequent[k-1] holds the frequent k-sequences (k items in total),
	// canonically ordered.
	Frequent     [][]Pattern
	NumCustomers int
}

// FrequentK returns the frequent k-sequences, or nil past the last pass.
func (r *Result) FrequentK(k int) []Pattern {
	if k < 1 || k > len(r.Frequent) {
		return nil
	}
	return r.Frequent[k-1]
}

// All returns every frequent pattern across all sizes.
func (r *Result) All() []Pattern {
	var out []Pattern
	for _, f := range r.Frequent {
		out = append(out, f...)
	}
	return out
}

// Mine runs sequential GSP with the classification hierarchy: pass 1 counts
// items (and ancestors) per customer; pass k generates candidate
// k-sequences from F_{k-1} by the GSP join, prunes them, and counts each
// against the ancestor-closed customer sequences.
func Mine(tax *taxonomy.Taxonomy, db *DB, cfg Config) (*Result, error) {
	if tax == nil {
		return nil, fmt.Errorf("seq: nil taxonomy")
	}
	res := &Result{NumCustomers: db.Len()}
	if db.Len() == 0 {
		return res, nil
	}
	minCount := cumulate.MinCount(cfg.MinSupport, db.Len())

	// Pass 1: a customer supports item x when some element's closure
	// contains x.
	counts := make([]int64, tax.NumItems())
	scratch := make([]item.Item, 0, 64)
	err := db.Scan(func(s Sequence) error {
		scratch = scratch[:0]
		for _, e := range s.Elements {
			scratch = tax.ExtendTransaction(scratch, e) // dedups as it goes
		}
		for _, x := range scratch {
			counts[x]++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var f1 []Pattern
	large := make([]bool, tax.NumItems())
	for i, c := range counts {
		if c >= minCount {
			large[i] = true
			f1 = append(f1, Pattern{Elements: [][]item.Item{{item.Item(i)}}, Count: c})
		}
	}
	if len(f1) == 0 {
		return res, nil
	}
	res.Frequent = append(res.Frequent, f1)

	prev := f1
	for k := 2; cfg.MaxK == 0 || k <= cfg.MaxK; k++ {
		cands := GenerateCandidates(tax, prev, k)
		if len(cands) == 0 {
			break
		}
		counted, err := CountSupport(tax, db, cands, large)
		if err != nil {
			return nil, err
		}
		var fk []Pattern
		for _, p := range counted {
			if p.Count >= minCount {
				fk = append(fk, p)
			}
		}
		if len(fk) == 0 {
			break
		}
		SortPatterns(fk)
		res.Frequent = append(res.Frequent, fk)
		prev = fk
	}
	return res, nil
}

// CountSupport counts each candidate against every customer sequence,
// returning the candidates with their support counts (same order as cands).
// large restricts the per-element closures to items that can appear in
// candidates.
func CountSupport(tax *taxonomy.Taxonomy, db *DB, cands [][][]item.Item, large []bool) ([]Pattern, error) {
	out := make([]Pattern, len(cands))
	for i, c := range cands {
		out[i] = Pattern{Elements: c}
	}
	err := db.Scan(func(s Sequence) error {
		closures := Closures(tax, s, large)
		for i := range out {
			if Contains(out[i].Elements, closures) {
				out[i].Count++
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// GenerateCandidates produces the candidate k-sequences from the frequent
// (k-1)-sequences. For k = 2 it enumerates both shapes directly from the
// frequent items: <{x,y}> (together, x < y, no item-ancestor pairs) and
// <{x}{y}> (in order, any x, y including x = y). For k > 2 it applies the
// GSP join (drop the first item of p, the last of q; equal remainders join)
// followed by the apriori prune over (k-1)-subsequences.
func GenerateCandidates(tax *taxonomy.Taxonomy, prev []Pattern, k int) [][][]item.Item {
	var out [][][]item.Item
	if k == 2 {
		items := make([]item.Item, 0, len(prev))
		for _, p := range prev {
			items = append(items, p.Elements[0][0])
		}
		item.Sort(items)
		for i, x := range items {
			for j, y := range items {
				if i < j && !tax.IsAncestor(x, y) && !tax.IsAncestor(y, x) {
					out = append(out, [][]item.Item{{x, y}})
				}
				out = append(out, [][]item.Item{{x}, {y}})
			}
		}
		return out
	}

	inPrev := make(map[string]bool, len(prev))
	for _, p := range prev {
		inPrev[Key(p.Elements)] = true
	}
	for _, p := range prev {
		p1, firstAlone := dropFirst(p.Elements)
		_ = firstAlone
		for _, q := range prev {
			q1, lastAlone := dropLast(q.Elements)
			if !Equal(p1, q1) {
				continue
			}
			joined := join(p.Elements, q.Elements, lastAlone)
			if joined == nil {
				continue
			}
			if hasElementAncestorPair(tax, joined) {
				continue
			}
			if !pruneOK(joined, inPrev) {
				continue
			}
			out = append(out, joined)
		}
	}
	// The join can produce duplicates; dedupe canonically.
	seen := make(map[string]bool, len(out))
	w := 0
	for _, c := range out {
		key := Key(c)
		if !seen[key] {
			seen[key] = true
			out[w] = c
			w++
		}
	}
	return out[:w]
}

// dropFirst removes the first item of the first element, dropping the
// element if it empties; reports whether the first element had a single
// item.
func dropFirst(elements [][]item.Item) ([][]item.Item, bool) {
	alone := len(elements[0]) == 1
	out := make([][]item.Item, 0, len(elements))
	if !alone {
		out = append(out, elements[0][1:])
	}
	out = append(out, elements[1:]...)
	return out, alone
}

// dropLast removes the last item of the last element, symmetrically.
func dropLast(elements [][]item.Item) ([][]item.Item, bool) {
	last := elements[len(elements)-1]
	alone := len(last) == 1
	out := make([][]item.Item, 0, len(elements))
	out = append(out, elements[:len(elements)-1]...)
	if !alone {
		out = append(out, last[:len(last)-1])
	}
	return out, alone
}

// join merges p with the last item of q per the GSP rule: the item starts a
// new element when it was alone in q's last element, otherwise it extends
// p's last element (keeping it canonical).
func join(p, q [][]item.Item, lastAlone bool) [][]item.Item {
	lastItem := q[len(q)-1][len(q[len(q)-1])-1]
	out := clonePattern(p)
	if lastAlone {
		out = append(out, []item.Item{lastItem})
		return out
	}
	le := out[len(out)-1]
	if item.Contains(le, lastItem) {
		return nil // would not grow: malformed join
	}
	le = append(le, lastItem)
	item.Sort(le)
	out[len(out)-1] = le
	return out
}

// hasElementAncestorPair reports whether any single element contains an
// item together with one of its ancestors (such candidates are redundant,
// as in Cumulate's C_2 rule).
func hasElementAncestorPair(tax *taxonomy.Taxonomy, elements [][]item.Item) bool {
	for _, e := range elements {
		for i := 0; i < len(e); i++ {
			for j := i + 1; j < len(e); j++ {
				if tax.IsAncestor(e[i], e[j]) || tax.IsAncestor(e[j], e[i]) {
					return true
				}
			}
		}
	}
	return false
}

// pruneOK checks that every (k-1)-subsequence obtained by dropping one item
// is frequent.
func pruneOK(elements [][]item.Item, inPrev map[string]bool) bool {
	for ei := range elements {
		for ii := range elements[ei] {
			sub := dropItem(elements, ei, ii)
			if !inPrev[Key(sub)] {
				return false
			}
		}
	}
	return true
}

// dropItem removes item ii of element ei, dropping the element if emptied.
func dropItem(elements [][]item.Item, ei, ii int) [][]item.Item {
	out := make([][]item.Item, 0, len(elements))
	for i, e := range elements {
		if i != ei {
			out = append(out, e)
			continue
		}
		if len(e) == 1 {
			continue
		}
		ne := make([]item.Item, 0, len(e)-1)
		ne = append(ne, e[:ii]...)
		ne = append(ne, e[ii+1:]...)
		out = append(out, ne)
	}
	return out
}
