package seq

import (
	"fmt"

	"pgarm/internal/cumulate"
	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/taxonomy"
)

// Config controls a GSP mining run.
type Config struct {
	// MinSupport is the minimum support as a fraction of the number of
	// customers.
	MinSupport float64
	// MaxK bounds the pattern size in items; 0 = run until F_k is empty.
	MaxK int
}

// Result holds the frequent k-sequences of every pass.
type Result struct {
	// Frequent[k-1] holds the frequent k-sequences (k items in total),
	// canonically ordered.
	Frequent     [][]Pattern
	NumCustomers int
}

// FrequentK returns the frequent k-sequences, or nil past the last pass.
func (r *Result) FrequentK(k int) []Pattern {
	if k < 1 || k > len(r.Frequent) {
		return nil
	}
	return r.Frequent[k-1]
}

// All returns every frequent pattern across all sizes.
func (r *Result) All() []Pattern {
	var out []Pattern
	for _, f := range r.Frequent {
		out = append(out, f...)
	}
	return out
}

// Mine runs sequential GSP with the classification hierarchy: pass 1 counts
// items (and ancestors) per customer; pass k generates candidate
// k-sequences from F_{k-1} by the GSP join, prunes them, and counts each
// against the ancestor-closed customer sequences.
func Mine(tax *taxonomy.Taxonomy, db *DB, cfg Config) (*Result, error) {
	if tax == nil {
		return nil, fmt.Errorf("seq: nil taxonomy")
	}
	res := &Result{NumCustomers: db.Len()}
	if db.Len() == 0 {
		return res, nil
	}
	minCount := cumulate.MinCount(cfg.MinSupport, db.Len())

	// Pass 1: a customer supports item x when some element's closure
	// contains x.
	counts := make([]int64, tax.NumItems())
	scratch := make([]item.Item, 0, 64)
	err := db.Scan(func(s Sequence) error {
		scratch = scratch[:0]
		for _, e := range s.Elements {
			scratch = tax.ExtendTransaction(scratch, e) // dedups as it goes
		}
		for _, x := range scratch {
			counts[x]++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var f1 []Pattern
	large := make([]bool, tax.NumItems())
	for i, c := range counts {
		if c >= minCount {
			large[i] = true
			f1 = append(f1, Pattern{Elements: [][]item.Item{{item.Item(i)}}, Count: c})
		}
	}
	if len(f1) == 0 {
		return res, nil
	}
	res.Frequent = append(res.Frequent, f1)

	prev := f1
	for k := 2; cfg.MaxK == 0 || k <= cfg.MaxK; k++ {
		cands := GenerateCandidates(tax, prev, k)
		if len(cands) == 0 {
			break
		}
		counted, err := CountSupport(tax, db, cands, large)
		if err != nil {
			return nil, err
		}
		var fk []Pattern
		for _, p := range counted {
			if p.Count >= minCount {
				fk = append(fk, p)
			}
		}
		if len(fk) == 0 {
			break
		}
		SortPatterns(fk)
		res.Frequent = append(res.Frequent, fk)
		prev = fk
	}
	return res, nil
}

// CountSupport counts each candidate against every customer sequence,
// returning the candidates with their support counts (same order as cands).
// large restricts the per-element closures to items that can appear in
// candidates.
func CountSupport(tax *taxonomy.Taxonomy, db *DB, cands [][][]item.Item, large []bool) ([]Pattern, error) {
	out := make([]Pattern, len(cands))
	for i, c := range cands {
		out[i] = Pattern{Elements: c}
	}
	err := db.Scan(func(s Sequence) error {
		closures := Closures(tax, s, large)
		for i := range out {
			if Contains(out[i].Elements, closures) {
				out[i].Count++
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// GenerateCandidates produces the candidate k-sequences from the frequent
// (k-1)-sequences. For k = 2 it enumerates both shapes directly from the
// frequent items: <{x,y}> (together, x < y, no item-ancestor pairs) and
// <{x}{y}> (in order, any x, y including x = y). For k > 2 it applies the
// GSP join (drop the first item of p, the last of q; equal remainders join)
// followed by the apriori prune over (k-1)-subsequences.
func GenerateCandidates(tax *taxonomy.Taxonomy, prev []Pattern, k int) [][][]item.Item {
	return GenerateCandidatesN(tax, prev, k, 1, nil)
}

// GenerateCandidatesN is GenerateCandidates with the join sharded across
// workers: k = 2 shards the outer item loop, k > 2 shards the outer pattern
// of the GSP join, each shard pruning against a shared open-addressed
// pattern set. Shard outputs concatenate in shard order and the final dedup
// keeps first occurrences, so the result is bit-identical (order included)
// to the sequential path at every worker count. hook, if non-nil, brackets
// each worker for tracing.
func GenerateCandidatesN(tax *taxonomy.Taxonomy, prev []Pattern, k, workers int, hook itemset.Hook) [][][]item.Item {
	if k == 2 {
		items := make([]item.Item, 0, len(prev))
		for _, p := range prev {
			items = append(items, p.Elements[0][0])
		}
		item.Sort(items)
		outs := make([][][][]item.Item, shardCount(len(items), workers))
		itemset.ForShards(len(items), workers, hook, func(w, lo, hi int) {
			var out [][][]item.Item
			for i := lo; i < hi; i++ {
				x := items[i]
				for j, y := range items {
					if i < j && !tax.IsAncestor(x, y) && !tax.IsAncestor(y, x) {
						out = append(out, [][]item.Item{{x, y}})
					}
					out = append(out, [][]item.Item{{x}, {y}})
				}
			}
			outs[w] = out
		})
		return concatPatterns(outs)
	}

	ps := newPatSet(prev)
	// The q-side drop is the same for every p; hoist it out of the O(|F|^2)
	// join loop (the old path recomputed it per pair).
	q1s := make([][][]item.Item, len(prev))
	lastAlones := make([]bool, len(prev))
	for i, q := range prev {
		q1s[i], lastAlones[i] = dropLast(q.Elements)
	}
	outs := make([][][][]item.Item, shardCount(len(prev), workers))
	itemset.ForShards(len(prev), workers, hook, func(w, lo, hi int) {
		var out [][][]item.Item
		for pi := lo; pi < hi; pi++ {
			p := prev[pi]
			p1, firstAlone := dropFirst(p.Elements)
			_ = firstAlone
			for qi := range prev {
				if !Equal(p1, q1s[qi]) {
					continue
				}
				joined := join(p.Elements, prev[qi].Elements, lastAlones[qi])
				if joined == nil {
					continue
				}
				if hasElementAncestorPair(tax, joined) {
					continue
				}
				if !ps.pruneOK(joined) {
					continue
				}
				out = append(out, joined)
			}
		}
		outs[w] = out
	})
	// The join can produce duplicates, and a duplicate pair can straddle
	// shards — dedup runs serially over the concatenation, keeping first
	// occurrences like the sequential path.
	return dedupPatterns(concatPatterns(outs))
}

// shardCount mirrors ForShards' clamping so callers can size per-shard
// output slices.
func shardCount(n, workers int) int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// concatPatterns joins per-shard outputs in shard order.
func concatPatterns(outs [][][][]item.Item) [][][]item.Item {
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	if total == 0 {
		return nil
	}
	out := make([][][]item.Item, 0, total)
	for _, o := range outs {
		out = append(out, o...)
	}
	return out
}

// dropFirst removes the first item of the first element, dropping the
// element if it empties; reports whether the first element had a single
// item.
func dropFirst(elements [][]item.Item) ([][]item.Item, bool) {
	alone := len(elements[0]) == 1
	out := make([][]item.Item, 0, len(elements))
	if !alone {
		out = append(out, elements[0][1:])
	}
	out = append(out, elements[1:]...)
	return out, alone
}

// dropLast removes the last item of the last element, symmetrically.
func dropLast(elements [][]item.Item) ([][]item.Item, bool) {
	last := elements[len(elements)-1]
	alone := len(last) == 1
	out := make([][]item.Item, 0, len(elements))
	out = append(out, elements[:len(elements)-1]...)
	if !alone {
		out = append(out, last[:len(last)-1])
	}
	return out, alone
}

// join merges p with the last item of q per the GSP rule: the item starts a
// new element when it was alone in q's last element, otherwise it extends
// p's last element (keeping it canonical).
func join(p, q [][]item.Item, lastAlone bool) [][]item.Item {
	lastItem := q[len(q)-1][len(q[len(q)-1])-1]
	out := clonePattern(p)
	if lastAlone {
		out = append(out, []item.Item{lastItem})
		return out
	}
	le := out[len(out)-1]
	if item.Contains(le, lastItem) {
		return nil // would not grow: malformed join
	}
	le = append(le, lastItem)
	item.Sort(le)
	out[len(out)-1] = le
	return out
}

// hasElementAncestorPair reports whether any single element contains an
// item together with one of its ancestors (such candidates are redundant,
// as in Cumulate's C_2 rule).
func hasElementAncestorPair(tax *taxonomy.Taxonomy, elements [][]item.Item) bool {
	for _, e := range elements {
		for i := 0; i < len(e); i++ {
			for j := i + 1; j < len(e); j++ {
				if tax.IsAncestor(e[i], e[j]) || tax.IsAncestor(e[j], e[i]) {
					return true
				}
			}
		}
	}
	return false
}

// dropItem removes item ii of element ei, dropping the element if emptied.
// The prune path no longer materializes subsequences (see patSet.pruneOK);
// dropItem remains as the reference form the hash/equality tests check
// against.
func dropItem(elements [][]item.Item, ei, ii int) [][]item.Item {
	out := make([][]item.Item, 0, len(elements))
	for i, e := range elements {
		if i != ei {
			out = append(out, e)
			continue
		}
		if len(e) == 1 {
			continue
		}
		ne := make([]item.Item, 0, len(e)-1)
		ne = append(ne, e[:ii]...)
		ne = append(ne, e[ii+1:]...)
		out = append(out, ne)
	}
	return out
}
