package seq

import (
	"math/rand"
	"testing"

	"pgarm/internal/item"
	"pgarm/internal/taxonomy"
)

// bruteContains checks pattern containment by exhaustive search over all
// increasing element mappings — the specification Contains' greedy matcher
// must agree with.
func bruteContains(pattern, closures [][]item.Item) bool {
	var rec func(pi, di int) bool
	rec = func(pi, di int) bool {
		if pi == len(pattern) {
			return true
		}
		for j := di; j < len(closures); j++ {
			if item.ContainsAll(closures[j], pattern[pi]) && rec(pi+1, j+1) {
				return true
			}
		}
		return false
	}
	return rec(0, 0)
}

// TestContainsMatchesBruteForce cross-checks the greedy matcher against the
// exhaustive specification on random patterns and sequences.
func TestContainsMatchesBruteForce(t *testing.T) {
	tax := taxonomy.MustBalanced(60, 3, 3)
	rng := rand.New(rand.NewSource(77))
	randElement := func(maxSz int) []item.Item {
		e := make([]item.Item, 0, maxSz)
		for len(e) < 1+rng.Intn(maxSz) {
			e = item.Dedup(append(e, item.Item(rng.Intn(tax.NumItems()))))
		}
		return e
	}
	for trial := 0; trial < 3000; trial++ {
		// Data sequence of 1-5 elements, each 1-3 items.
		n := 1 + rng.Intn(5)
		s := Sequence{CID: int64(trial)}
		for i := 0; i < n; i++ {
			s.Elements = append(s.Elements, randElement(3))
		}
		closures := Closures(tax, s, nil)
		// Pattern of 1-3 elements, each 1-2 items.
		var pattern [][]item.Item
		for i := 0; i < 1+rng.Intn(3); i++ {
			pattern = append(pattern, randElement(2))
		}
		got := Contains(pattern, closures)
		want := bruteContains(pattern, closures)
		if got != want {
			t.Fatalf("trial %d: Contains(%v, %v) = %v, brute force %v",
				trial, Sequence{Elements: pattern}, closures, got, want)
		}
	}
}

// TestContainsEmptyPattern: the empty pattern is vacuously contained.
func TestContainsEmptyPattern(t *testing.T) {
	if !Contains(nil, [][]item.Item{{1}}) {
		t.Error("empty pattern must be contained")
	}
	if Contains([][]item.Item{{1}}, nil) {
		t.Error("nothing is contained in the empty sequence")
	}
}
