package seq

import (
	"fmt"
	"math/bits"
	"sort"
	"time"

	"pgarm/internal/driver"
	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/metrics"
	"pgarm/internal/taxonomy"
	"pgarm/internal/wire"
)

// seqMiner is the sequence-mining half of a node: the driver.Miner that
// plugs the [SK98] family (NPSPM/SPSPM/HPSPM) into the shared-nothing
// runtime. One instance per node; the runtime calls its hooks from the node
// goroutine in protocol order.
type seqMiner struct {
	tax *taxonomy.Taxonomy
	db  *DB
	cfg ParallelConfig

	// Global mining state, identical on every node after each barrier.
	large []bool          // frequent-item flags after pass 1
	prev  []Pattern       // F_{k-1}, the generation input
	cands [][][]item.Item // C_k of the pass in flight

	// owners[i] is the node that counts cands[i], computed by PlanPass for
	// the partitioned algorithms (nil for the replicated NPSPM).
	owners []int

	// Barrier contribution of the pass in flight: the frequent patterns this
	// node owns (partitioned algorithms). The coordinator merges its own
	// share from here instead of round-tripping it through the wire encoding.
	owned []Pattern

	// Result accumulation, filled where the runtime keeps results.
	result *Result
}

func newSeqMiner(tax *taxonomy.Taxonomy, db *DB, cfg ParallelConfig) *seqMiner {
	return &seqMiner{tax: tax, db: db, cfg: cfg}
}

func (m *seqMiner) LocalSize() int { return m.db.Len() }

func (m *seqMiner) NumItems() int { return m.tax.NumItems() }

// CountPass1 counts item support per customer: a customer supports item x
// when some element's closure contains x. ExtendTransaction dedups against
// the accumulated scratch, so each item counts once per customer — exactly
// the sequential baseline's pass 1.
func (m *seqMiner) CountPass1(n *driver.Node, st *metrics.NodeStats) ([]int64, error) {
	W := n.Workers()
	wcounts := driver.WorkerVectors(W, m.tax.NumItems())
	wstats := make([]metrics.NodeStats, W)
	wscratch := driver.WorkerScratch(W, 64)
	err := driver.ScanShards(m.db.Scan, W, n.ShardObs("scan"), func(w int, s Sequence) error {
		wstats[w].TxnsScanned++
		scratch := wscratch[w][:0]
		for _, e := range s.Elements {
			scratch = m.tax.ExtendTransaction(scratch, e)
		}
		wscratch[w] = scratch
		counts := wcounts[w]
		for _, x := range scratch {
			counts[x]++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	driver.MergeWorkerStats(st, wstats)
	return driver.MergeWorkerVectors(wcounts), nil
}

// FinishPass1 consumes the globally reduced pass-1 counts and derives the
// replicated F_1 state every later pass builds on.
func (m *seqMiner) FinishPass1(n *driver.Node, global []int64) (int, error) {
	m.large = make([]bool, m.tax.NumItems())
	var f1 []Pattern
	for i, c := range global {
		if c >= n.MinCount() {
			m.large[i] = true
			f1 = append(f1, Pattern{Elements: [][]item.Item{{item.Item(i)}}, Count: c})
		}
	}
	m.record(n, f1)
	return len(f1), nil
}

// Generate materializes C_k from F_{k-1} via the GSP join + prune, sharded
// across the node's workers; deterministic on every node (same F_{k-1},
// same generator, shard-order concatenation).
func (m *seqMiner) Generate(n *driver.Node, k int) (int, error) {
	m.cands = GenerateCandidatesN(m.tax, m.prev, k, n.Workers(), n.BoundaryObs("generate shard").Hook())
	return len(m.cands), nil
}

// PlanPass computes pass k's candidate-to-node assignment. The sequence
// miners are static planners — the skew hint is ignored — which keeps the
// planner seam honest: the driver's state machine imposes no adaptivity,
// only an explicit, inspectable assignment per pass.
//
// SPSPM hashes the canonical pattern key; HPSPM hashes the pattern's root
// vector (the sorted multiset of its items' hierarchy roots), the H-HPGM
// rule: all candidates of one tree combination live on one node, so a
// destination's item filter covers whole subtrees. NPSPM replicates C_k and
// assigns nothing.
func (m *seqMiner) PlanPass(n *driver.Node, k int, _ *metrics.SkewReport) (driver.PlanDecision, error) {
	switch m.cfg.Algorithm {
	case NPSPM:
		m.owners = nil
		return driver.PlanDecision{Partitioner: "replicated", Granule: "all", Duplicated: len(m.cands)}, nil
	case SPSPM, HPSPM:
	default:
		return driver.PlanDecision{}, fmt.Errorf("seq: unknown algorithm %q", m.cfg.Algorithm)
	}
	nNodes := n.NumNodes()
	psp := n.Span("partition")
	W := n.Workers()
	owners := make([]int, len(m.cands))
	itemset.ForShards(len(m.cands), W, n.BoundaryObs("partition shard").Hook(), func(w, lo, hi int) {
		var roots []item.Item // per-shard root-vector scratch (HPSPM)
		for i := lo; i < hi; i++ {
			if m.cfg.Algorithm == HPSPM {
				var h uint64
				h, roots = patternRootHashScratch(m.tax, m.cands[i], roots)
				owners[i] = int(h % uint64(nNodes))
			} else {
				owners[i] = int(patternHash(m.cands[i]) % uint64(nNodes))
			}
		}
	})
	m.owners = owners
	owned := 0
	for i := range owners {
		if owners[i] == n.ID() {
			owned++
		}
	}
	psp.Arg("owned", int64(owned))
	psp.Arg("workers", int64(W))
	psp.End()
	part := "pattern-hash"
	if m.cfg.Algorithm == HPSPM {
		part = "pattern-root-hash"
	}
	return driver.PlanDecision{Partitioner: part, Granule: "none"}, nil
}

// CountPass runs pass k's count-support phase under the configured
// algorithm, over the assignment PlanPass computed, and prepares this node's
// barrier contribution.
func (m *seqMiner) CountPass(n *driver.Node, k int, st *metrics.NodeStats) (driver.PassOutcome, error) {
	m.owned = m.owned[:0]
	po := driver.PassOutcome{}
	switch m.cfg.Algorithm {
	case NPSPM:
		counts, err := m.countReplicated(n, st)
		if err != nil {
			return driver.PassOutcome{}, err
		}
		po.DupCounts = counts
		po.Duplicated = len(m.cands)
	case SPSPM, HPSPM:
		if err := m.countPartitioned(n, k, st); err != nil {
			return driver.PassOutcome{}, err
		}
	default:
		return driver.PassOutcome{}, fmt.Errorf("seq: unknown algorithm %q", m.cfg.Algorithm)
	}
	if !n.IsCoord() {
		po.Owned = encodePatternList(m.owned)
	}
	return po, nil
}

// countReplicated is NPSPM: every candidate is counted locally against the
// local customers; the coordinator reduces the dense vectors at the barrier.
// No count-support data moves between nodes.
func (m *seqMiner) countReplicated(n *driver.Node, st *metrics.NodeStats) ([]int64, error) {
	W := n.Workers()
	wcounts := driver.WorkerVectors(W, len(m.cands))
	wstats := make([]metrics.NodeStats, W)
	masks := candRootMasks(m.tax, m.cands)
	started := time.Now()
	err := driver.ScanShards(m.db.Scan, W, n.ShardObs("scan"), func(w int, s Sequence) error {
		ws := &wstats[w]
		ws.TxnsScanned++
		if maskSkips(masks, seqRootMask(m.tax, s.Elements)) {
			// No candidate's root multiset is realizable from this customer's
			// items, so no candidate can be contained: skip the closure build
			// and the whole probe loop (the sequence-mining analogue of a
			// columnar block skip, counted on the same counter).
			ws.BlocksSkipped++
			return nil
		}
		closures := Closures(m.tax, s, m.large)
		counts := wcounts[w]
		for i, c := range m.cands {
			ws.Probes++
			if Contains(c, closures) {
				counts[i]++
				ws.Increments++
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	driver.MergeWorkerStats(st, wstats)
	st.ScanTime = time.Since(started)
	return driver.MergeWorkerVectors(wcounts), nil
}

// countPartitioned covers the two hash-partitioned miners. Both assign every
// candidate to one owner; every customer sequence travels to the owners so
// each candidate is counted exactly once, globally:
//
//	SPSPM  broadcasts each closed local sequence to every node — simple, but
//	       the whole database crosses the fabric N-1 times.
//	HPSPM  ships each destination only what it can use: elements filtered to
//	       the items of the destination's owned candidates, with emptied
//	       elements dropped and the sequence skipped entirely when fewer
//	       than k items survive (a k-item candidate needs k matched items
//	       across distinct elements). Filtering never changes a contained
//	       candidate's match — its items all survive the filter by
//	       construction — so counts are identical while bytes shrink.
func (m *seqMiner) countPartitioned(n *driver.Node, k int, st *metrics.NodeStats) error {
	nNodes := n.NumNodes()
	self := n.ID()

	// Candidate ownership was computed by PlanPass; derive this node's share
	// and the per-destination filters from it.
	owners := m.owners
	W := n.Workers()
	var ownedIdx []int
	for i := range owners {
		if owners[i] == self {
			ownedIdx = append(ownedIdx, i)
		}
	}
	// HPSPM: per-destination item filter — the union of the destination's
	// owned candidates' items.
	var keep [][]bool
	if m.cfg.Algorithm == HPSPM {
		keep = make([][]bool, nNodes)
		for d := range keep {
			keep[d] = make([]bool, m.tax.NumItems())
		}
		for i, c := range m.cands {
			kd := keep[owners[i]]
			for _, e := range c {
				for _, x := range e {
					kd[x] = true
				}
			}
		}
	}

	// Receiver: one unit is one (possibly filtered) closed customer
	// sequence; the receiver alone touches the owned counts and the node's
	// probe counters.
	counts := make([]int64, len(m.cands))
	xsp := n.Span("exchange")
	cp := n.StartExchange(func(batch []byte) (int64, error) {
		var items int64
		for off := 0; off < len(batch); {
			closures, used, err := wire.ItemsList(batch[off:])
			if err != nil {
				return items, err
			}
			off += used
			items += closureItems(closures)
			for _, i := range ownedIdx {
				st.Probes++
				if Contains(m.cands[i], closures) {
					counts[i]++
					st.Increments++
				}
			}
		}
		return items, nil
	})

	wstats := make([]metrics.NodeStats, W)
	bats := make([]*driver.Batcher, W)
	wunit := make([][]byte, W)
	welem := driver.WorkerScratch(W, 32)
	for w := range bats {
		bats[w] = cp.NewBatcher()
	}
	masks := candRootMasks(m.tax, m.cands)
	started := time.Now()
	err := driver.ScanShards(m.db.Scan, W, n.ShardObs("count"), func(w int, s Sequence) error {
		ws := &wstats[w]
		ws.TxnsScanned++
		if maskSkips(masks, seqRootMask(m.tax, s.Elements)) {
			// No node's candidates can be contained in this customer, so
			// nothing needs to travel anywhere — the sequence is dropped
			// before the closure build and the broadcast/filter fan-out.
			ws.BlocksSkipped++
			return nil
		}
		closures := Closures(m.tax, s, m.large)
		if m.cfg.Algorithm == SPSPM {
			unit := wire.AppendItemsList(wunit[w][:0], closures)
			wunit[w] = unit
			items := closureItems(closures)
			for dest := 0; dest < nNodes; dest++ {
				if dest != self {
					ws.ItemsSent += items
				}
				if err := bats[w].AddRaw(dest, unit); err != nil {
					return err
				}
			}
			return nil
		}
		// HPSPM: filter per destination.
		for dest := 0; dest < nNodes; dest++ {
			kd := keep[dest]
			nel, nit := 0, 0
			for _, cl := range closures {
				ne := 0
				for _, x := range cl {
					if kd[x] {
						ne++
					}
				}
				if ne > 0 {
					nel++
					nit += ne
				}
			}
			if nit < k {
				continue // cannot contain any k-item candidate owned by dest
			}
			unit := wire.AppendUvarint(wunit[w][:0], uint64(nel))
			for _, cl := range closures {
				elem := welem[w][:0]
				for _, x := range cl {
					if kd[x] {
						elem = append(elem, x)
					}
				}
				welem[w] = elem
				if len(elem) > 0 {
					unit = wire.AppendItems(unit, elem)
				}
			}
			wunit[w] = unit
			if dest != self {
				ws.ItemsSent += int64(nit)
			}
			if err := bats[w].AddRaw(dest, unit); err != nil {
				return err
			}
		}
		return nil
	})
	for w := range bats {
		if err != nil {
			break
		}
		err = bats[w].FlushAll()
	}
	if ferr := cp.Finish(); err == nil {
		err = ferr
	}
	xsp.End()
	if err != nil {
		return fmt.Errorf("count support: %w", err)
	}
	driver.MergeWorkerStats(st, wstats)
	st.ScanTime = time.Since(started)

	// Threshold the owned candidates locally; only frequent ones travel to
	// the coordinator.
	for _, i := range ownedIdx {
		if counts[i] >= n.MinCount() {
			m.owned = append(m.owned, Pattern{Elements: m.cands[i], Count: counts[i]})
		}
	}
	return nil
}

// MergeFrequents merges the coordinator's own owned share, the peers' owned
// frequents and the reduced replicated counts (NPSPM) into the global F_k.
func (m *seqMiner) MergeFrequents(n *driver.Node, _ int, peerOwned [][]byte, dupTotal []int64) ([]byte, int, error) {
	all := append([]Pattern(nil), m.owned...)
	for _, p := range peerOwned {
		pats, counts, _, err := wire.PatternList(p)
		if err != nil {
			return nil, 0, fmt.Errorf("seq: decode owned frequents: %w", err)
		}
		for i := range pats {
			all = append(all, Pattern{Elements: pats[i], Count: counts[i]})
		}
	}
	for i, c := range dupTotal {
		if c >= n.MinCount() {
			all = append(all, Pattern{Elements: m.cands[i], Count: c})
		}
	}
	SortPatterns(all)
	m.record(n, all)
	return encodePatternList(all), len(all), nil
}

// FinishPass decodes the coordinator's F_k broadcast on a follower.
func (m *seqMiner) FinishPass(n *driver.Node, _ int, payload []byte) (int, error) {
	pats, counts, _, err := wire.PatternList(payload)
	if err != nil {
		return 0, fmt.Errorf("seq: decode F_k broadcast: %w", err)
	}
	fk := make([]Pattern, len(pats))
	for i := range pats {
		fk[i] = Pattern{Elements: pats[i], Count: counts[i]}
	}
	m.record(n, fk)
	return len(fk), nil
}

// record stores F_k (mirroring the sequential baseline, an empty F_k
// terminates the run and is not recorded as a level) and stages it as the
// next pass's generation input.
func (m *seqMiner) record(n *driver.Node, fk []Pattern) {
	if n.Keep() {
		if m.result == nil {
			m.result = &Result{NumCustomers: n.TotalSize()}
		}
		if len(fk) > 0 {
			m.result.Frequent = append(m.result.Frequent, fk)
		}
	}
	m.prev = fk
}

// candidateOwner maps a candidate sequence to the node that counts it.
func candidateOwner(tax *taxonomy.Taxonomy, alg Algorithm, elements [][]item.Item, nNodes int) int {
	if alg == HPSPM {
		return int(patternRootHash(tax, elements) % uint64(nNodes))
	}
	return int(patternHash(elements) % uint64(nNodes))
}

// patternHash hashes a pattern's canonical key (FNV-1a over Key's byte
// stream, computed without building the string).
func patternHash(elements [][]item.Item) uint64 {
	return hashElements(elements)
}

// patternRootHash hashes the pattern's root vector — the sorted multiset of
// the hierarchy roots of every item across its elements. Candidates of one
// tree combination share a hash, so they share an owner (the H-HPGM rule).
func patternRootHash(tax *taxonomy.Taxonomy, elements [][]item.Item) uint64 {
	h, _ := patternRootHashScratch(tax, elements, nil)
	return h
}

// patternRootHashScratch is patternRootHash with a caller-owned scratch
// buffer, so sharded partition planning hashes without per-candidate
// allocations; it returns the (possibly grown) scratch for reuse.
func patternRootHashScratch(tax *taxonomy.Taxonomy, elements [][]item.Item, scratch []item.Item) (uint64, []item.Item) {
	scratch = scratch[:0]
	for _, e := range elements {
		for _, x := range e {
			scratch = append(scratch, tax.Root(x))
		}
	}
	item.Sort(scratch)
	return itemset.Hash(scratch), scratch
}

// encodePatternList serializes patterns with their counts for the barrier.
func encodePatternList(ps []Pattern) []byte {
	elems := make([][][]item.Item, len(ps))
	counts := make([]int64, len(ps))
	for i, p := range ps {
		elems[i] = p.Elements
		counts[i] = p.Count
	}
	return wire.AppendPatternList(nil, elems, counts)
}

// seqRootMask folds the hierarchy roots of a sequence's literal items into a
// 64-bit mask (bit = root mod 64). Every item of a closed element is an
// ancestor-or-self of some literal item and shares its root, so the closure's
// roots are always a subset of this mask — large-item filtering only shrinks
// them further. Folding roots mod 64 can only set extra bits shared between
// distinct roots, so the mask over-approximates and skips stay conservative.
func seqRootMask(tax *taxonomy.Taxonomy, elements [][]item.Item) uint64 {
	var m uint64
	for _, e := range elements {
		for _, x := range e {
			m |= 1 << (uint(tax.Root(x)) & 63)
		}
	}
	return m
}

// candRootMasks returns the deduplicated root masks of the pass's candidate
// sequences, ascending by popcount (then value, for determinism): the masks
// with the fewest required roots are the likeliest to be realizable, so the
// skip check's "cannot skip" exit triggers on the first compare for most
// customers.
func candRootMasks(tax *taxonomy.Taxonomy, cands [][][]item.Item) []uint64 {
	seen := make(map[uint64]struct{}, len(cands))
	masks := make([]uint64, 0, len(cands))
	for _, c := range cands {
		m := seqRootMask(tax, c)
		if _, ok := seen[m]; !ok {
			seen[m] = struct{}{}
			masks = append(masks, m)
		}
	}
	sort.Slice(masks, func(i, j int) bool {
		pi, pj := bits.OnesCount64(masks[i]), bits.OnesCount64(masks[j])
		if pi != pj {
			return pi < pj
		}
		return masks[i] < masks[j]
	})
	return masks
}

// maskSkips reports whether a customer with root mask seqMask can be skipped
// outright: true when every candidate mask requires at least one root bit the
// customer does not have. Containment of candidate c in a customer implies
// every root of c appears among the customer's roots, so mask(c) ⊆ seqMask is
// necessary for a match — a definite miss on all candidates is exact.
func maskSkips(masks []uint64, seqMask uint64) bool {
	for _, m := range masks {
		if m&^seqMask == 0 {
			return false
		}
	}
	return true
}

// closureItems counts the items of a closed sequence.
func closureItems(closures [][]item.Item) int64 {
	var n int64
	for _, c := range closures {
		n += int64(len(c))
	}
	return n
}
