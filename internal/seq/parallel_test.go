package seq

import (
	"fmt"
	"testing"

	"pgarm/internal/taxonomy"
)

func parallelDataset(t *testing.T) (*taxonomy.Taxonomy, *DB) {
	t.Helper()
	tax := taxonomy.MustBalanced(300, 5, 4)
	p := DefaultGenParams()
	p.NumCustomers = 600
	p.AvgElements = 4
	p.AvgElementSize = 2
	return tax, GenerateSequences(tax, p)
}

func TestParallelMatchesSequential(t *testing.T) {
	tax, db := parallelDataset(t)
	want, err := Mine(tax, db, Config{MinSupport: 0.05, MaxK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Frequent) < 2 {
		t.Fatalf("weak test data: %d levels", len(want.Frequent))
	}
	for _, alg := range []Algorithm{NPSPM, SPSPM} {
		for _, nodes := range []int{1, 3, 4} {
			t.Run(fmt.Sprintf("%s/%dnodes", alg, nodes), func(t *testing.T) {
				got, err := MineParallel(tax, Partition(db, nodes), ParallelConfig{
					Algorithm:  alg,
					MinSupport: 0.05,
					MaxK:       3,
				})
				if err != nil {
					t.Fatal(err)
				}
				assertSamePatterns(t, want, got.Result)
			})
		}
	}
}

func assertSamePatterns(t *testing.T, want, got *Result) {
	t.Helper()
	if got == nil {
		t.Fatal("nil result")
	}
	if len(want.Frequent) != len(got.Frequent) {
		t.Fatalf("levels: sequential %d, parallel %d", len(want.Frequent), len(got.Frequent))
	}
	for k := 1; k <= len(want.Frequent); k++ {
		w, g := want.FrequentK(k), got.FrequentK(k)
		if len(w) != len(g) {
			t.Fatalf("F_%d size: sequential %d, parallel %d", k, len(w), len(g))
		}
		for i := range w {
			if !Equal(w[i].Elements, g[i].Elements) || w[i].Count != g[i].Count {
				t.Fatalf("F_%d[%d]: sequential %v, parallel %v", k, i, w[i], g[i])
			}
		}
	}
}

func TestParallelValidation(t *testing.T) {
	tax, db := parallelDataset(t)
	if _, err := MineParallel(tax, nil, ParallelConfig{Algorithm: NPSPM, MinSupport: 0.1}); err == nil {
		t.Error("no partitions must fail")
	}
	if _, err := MineParallel(tax, Partition(db, 2), ParallelConfig{Algorithm: "bogus", MinSupport: 0.1}); err == nil {
		t.Error("unknown algorithm must fail")
	}
	if _, err := MineParallel(tax, Partition(db, 2), ParallelConfig{Algorithm: NPSPM, MinSupport: 0}); err == nil {
		t.Error("zero support must fail")
	}
}

func TestNPSPMHasNoDataExchange(t *testing.T) {
	tax, db := parallelDataset(t)
	res, err := MineParallel(tax, Partition(db, 3), ParallelConfig{
		Algorithm:  NPSPM,
		MinSupport: 0.05,
		MaxK:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ps := res.Stats.Pass(2)
	if ps == nil {
		t.Fatal("no pass 2")
	}
	if got := ps.TotalItemsSent(); got != 0 {
		t.Errorf("NPSPM shipped %d items; counting is local", got)
	}
}

func TestSPSPMBroadcastsSequences(t *testing.T) {
	tax, db := parallelDataset(t)
	res, err := MineParallel(tax, Partition(db, 3), ParallelConfig{
		Algorithm:  SPSPM,
		MinSupport: 0.05,
		MaxK:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ps := res.Stats.Pass(2)
	if ps == nil {
		t.Fatal("no pass 2")
	}
	if ps.TotalItemsSent() == 0 {
		t.Error("SPSPM must broadcast sequence data")
	}
	// Candidate memory per node shrinks ~Nx vs NPSPM; probes spread too:
	// every node probes only its owned candidates.
	var totalProbes int64
	for _, ns := range ps.Nodes {
		totalProbes += ns.Probes
	}
	npspm, err := MineParallel(tax, Partition(db, 3), ParallelConfig{
		Algorithm:  NPSPM,
		MinSupport: 0.05,
		MaxK:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	nps := npspm.Stats.Pass(2)
	var npProbes int64
	for _, ns := range nps.Nodes {
		npProbes += ns.Probes
	}
	// SPSPM: each candidate checked once per customer (at its owner);
	// NPSPM: each candidate checked once per LOCAL customer per node —
	// same global total. Allow slack for rounding.
	if totalProbes != npProbes {
		t.Errorf("global probe totals differ: SPSPM %d vs NPSPM %d", totalProbes, npProbes)
	}
}
