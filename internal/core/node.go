package core

import (
	"fmt"
	"time"

	"pgarm/internal/cluster"
	"pgarm/internal/cumulate"
	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/metrics"
	"pgarm/internal/obs"
	"pgarm/internal/taxonomy"
	"pgarm/internal/txn"
	"pgarm/internal/wire"
)

// Message kinds of the mining protocol. Per-sender FIFO delivery (both
// fabrics guarantee it) plus the pass barriers below make each kind
// unambiguous: within a pass a sender emits kData* messages, then one kDone,
// then its results (kLocalLarge/kDupCounts), and the coordinator answers
// with one kLarge.
const (
	kSize       uint8 = iota + 1 // node -> coord: local partition size; coord -> node: |D|
	kCounts1                     // node -> coord: pass-1 dense item counts
	kData                        // node -> node: count-support payload batch
	kDone                        // node -> node: end of count-support stream
	kLocalLarge                  // node -> coord: locally-owned large itemsets
	kDupCounts                   // node -> coord: duplicated/replicated table counts
	kLarge                       // coord -> node: global L_k broadcast
)

// passMeta is the coordinator-side metadata of one pass.
type passMeta struct {
	pass       int
	candidates int
	duplicated int
	fragments  int
	large      int
	elapsed    time.Duration
}

// node is one shared-nothing processor: private candidate tables, a local
// database partition, and a fabric endpoint. Node 0 doubles as the
// coordinator, as in the paper.
type node struct {
	id       int
	tax      *taxonomy.Taxonomy
	db       txn.Scanner
	ep       cluster.Endpoint
	cfg      Config
	cands    *candCache
	totalTxn int
	minCount int64

	// pending holds inbox messages that arrived ahead of the phase that
	// consumes them (e.g. a fast peer's pass-k data while we still await the
	// pass-(k-1) kLarge broadcast).
	pending []cluster.Message

	// Global mining state, identical on every node after each barrier.
	itemCounts []int64     // global pass-1 counts per item (after reduce)
	largeFlags []bool      // large[i] per item
	largeItems []item.Item // L1 as items, ascending

	// Result accumulation: always on the coordinator; keepLarge turns it on
	// for followers too (multi-process workers return their own copy).
	keepLarge bool
	large     [][]itemset.Counted
	passMeta  []passMeta

	// Per-pass metrics, one entry per completed pass.
	perPass []metrics.NodeStats
	cur     metrics.NodeStats // counters of the pass in flight

	// Observability: phase-span tracer and live instruments (both inert when
	// unconfigured), plus the monotonic fabric snapshots that delimit the
	// current pass's communication window.
	tr       *obs.Tracer
	ins      nodeInstruments
	base     cluster.Stats
	baseKind []cluster.KindStat
}

func newNode(id int, tax *taxonomy.Taxonomy, db txn.Scanner, ep cluster.Endpoint, cfg Config, cands *candCache) *node {
	return &node{
		id:    id,
		tax:   tax,
		db:    db,
		ep:    ep,
		cfg:   cfg,
		cands: cands,
		tr:    cfg.Tracer,
		ins:   newNodeInstruments(cfg.Registry, id),
	}
}

func (n *node) isCoord() bool { return n.id == 0 }

// numPeers returns the number of other nodes.
func (n *node) numPeers() int { return n.ep.N() - 1 }

// recvKind blocks until a message of one of the wanted kinds arrives,
// stashing everything else in the pending queue for later phases.
func (n *node) recvKind(want ...uint8) (cluster.Message, error) {
	match := func(k uint8) bool {
		for _, w := range want {
			if k == w {
				return true
			}
		}
		return false
	}
	for i, m := range n.pending {
		if match(m.Kind) {
			n.pending = append(n.pending[:i], n.pending[i+1:]...)
			return m, nil
		}
	}
	for m := range n.ep.Inbox() {
		if match(m.Kind) {
			return m, nil
		}
		n.pending = append(n.pending, m)
	}
	return cluster.Message{}, fmt.Errorf("core: node %d inbox closed while waiting for kind %v", n.id, want)
}

// run executes the whole mining protocol on this node.
func (n *node) run() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: node %d panicked: %v", n.id, r)
		}
	}()
	if n.tr.Enabled() {
		n.tr.SetThreadName(n.id, 0, "driver")
	}
	ssp := n.tr.Begin(n.id, 0, "size-exchange")
	if err := n.sizeExchange(); err != nil {
		return err
	}
	ssp.End()
	if err := n.pass1(); err != nil {
		return err
	}
	if len(n.largeItems) < 2 {
		return nil
	}
	eng, err := newEngine(n)
	if err != nil {
		return err
	}
	prev := make([][]item.Item, len(n.largeItems))
	for i, it := range n.largeItems {
		prev[i] = []item.Item{it}
	}
	for k := 2; n.cfg.MaxK == 0 || k <= n.cfg.MaxK; k++ {
		// Deterministic on every node (same L_{k-1}, same generator);
		// materialized once and shared read-only, see candCache.
		gsp := n.tr.Begin(n.id, 0, "generate")
		cands := n.cands.generate(k, prev)
		gsp.Arg("candidates", int64(len(cands)))
		gsp.End()
		if len(cands) == 0 {
			return nil
		}
		lk, err := n.runPass(eng, k, cands)
		if err != nil {
			return err
		}
		if len(lk) == 0 {
			return nil
		}
		prev = prev[:0]
		for _, c := range lk {
			prev = append(prev, c.Items)
		}
	}
	return nil
}

// sizeExchange establishes the global database size |D| (and from it the
// absolute minimum support count): every node reports its local partition
// size to the coordinator, which broadcasts the sum. In-process clusters
// could compute this directly, but routing it through the protocol keeps a
// single code path for multi-process workers that only know their own disk.
func (n *node) sizeExchange() error {
	if n.isCoord() {
		total := int64(n.db.Len())
		for p := 0; p < n.numPeers(); p++ {
			m, err := n.recvKind(kSize)
			if err != nil {
				return err
			}
			v, _, err := wire.Uvarint(m.Payload)
			if err != nil {
				return fmt.Errorf("core: decode size from node %d: %w", m.From, err)
			}
			total += int64(v)
		}
		payload := wire.AppendUvarint(nil, uint64(total))
		for p := 1; p < n.ep.N(); p++ {
			if err := n.ep.Send(p, kSize, payload); err != nil {
				return err
			}
		}
		n.totalTxn = int(total)
	} else {
		if err := n.ep.Send(0, kSize, wire.AppendUvarint(nil, uint64(n.db.Len()))); err != nil {
			return err
		}
		m, err := n.recvKind(kSize)
		if err != nil {
			return err
		}
		v, _, err := wire.Uvarint(m.Payload)
		if err != nil {
			return fmt.Errorf("core: decode |D| broadcast: %w", err)
		}
		n.totalTxn = int(v)
	}
	n.minCount = cumulate.MinCount(n.cfg.MinSupport, n.totalTxn)
	return nil
}

// pass1 counts every item and all its ancestors over the local partition,
// reduces the counts on the coordinator and broadcasts the global vector.
// All algorithms share it: C_1 is just an array indexed by item, so there is
// nothing to partition.
func (n *node) pass1() error {
	started := time.Now()
	n.cur = metrics.NodeStats{Node: n.id}
	n.ins.startPass(1, n.tax.NumItems())
	psp := n.tr.Begin(n.id, 0, "pass 1")
	W := n.cfg.workers()
	wcounts := workerVectors(W, n.tax.NumItems())
	wstats := make([]metrics.NodeStats, W)
	wext := newWorkerScratch(W, 64)
	err := scanShards(n.db, W, n.shardObs("scan"), func(w int, t txn.Transaction) error {
		wstats[w].TxnsScanned++
		ext := n.tax.ExtendTransaction(wext[w][:0], t.Items)
		wext[w] = ext
		counts := wcounts[w]
		for _, x := range ext {
			counts[x]++
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("core: node %d pass 1 scan: %w", n.id, err)
	}
	counts := mergeWorkerVectors(wcounts)
	mergeWorkerStats(&n.cur, wstats)
	n.cur.ScanTime = time.Since(started)

	bsp := n.tr.Begin(n.id, 0, "barrier")
	if n.isCoord() {
		wait := time.Now()
		for p := 0; p < n.numPeers(); p++ {
			m, err := n.recvKind(kCounts1)
			if err != nil {
				return err
			}
			remote, _, err := wire.CountsAuto(m.Payload)
			if err != nil {
				return fmt.Errorf("core: decode pass-1 counts from node %d: %w", m.From, err)
			}
			if len(remote) != len(counts) {
				return fmt.Errorf("core: node %d sent %d item counts, want %d", m.From, len(remote), len(counts))
			}
			for i, c := range remote {
				counts[i] += c
			}
		}
		n.cur.BarrierWait += time.Since(wait)
		n.itemCounts = counts
		payload := wire.AppendCountsAuto(nil, counts)
		for p := 1; p < n.ep.N(); p++ {
			if err := n.ep.Send(p, kLarge, payload); err != nil {
				return err
			}
		}
	} else {
		if err := n.ep.Send(0, kCounts1, wire.AppendCountsAuto(nil, counts)); err != nil {
			return err
		}
		wait := time.Now()
		m, err := n.recvKind(kLarge)
		if err != nil {
			return err
		}
		n.cur.BarrierWait += time.Since(wait)
		global, _, err := wire.CountsAuto(m.Payload)
		if err != nil {
			return fmt.Errorf("core: decode global pass-1 counts: %w", err)
		}
		n.itemCounts = global
	}
	bsp.End()

	n.largeFlags = make([]bool, n.tax.NumItems())
	var l1 []itemset.Counted
	for i, c := range n.itemCounts {
		if c >= n.minCount {
			n.largeFlags[i] = true
			n.largeItems = append(n.largeItems, item.Item(i))
			l1 = append(l1, itemset.Counted{Items: []item.Item{item.Item(i)}, Count: c})
		}
	}
	n.capturePassComm()
	n.ins.endPass(&n.cur)
	n.finishPassStats()
	psp.Arg("candidates", int64(n.tax.NumItems()))
	psp.Arg("large", int64(len(l1)))
	psp.End()
	if n.isCoord() || n.keepLarge {
		n.large = append(n.large, l1)
		n.passMeta = append(n.passMeta, passMeta{
			pass:       1,
			candidates: n.tax.NumItems(),
			large:      len(l1),
			elapsed:    time.Since(started),
		})
	}
	n.emitProgress(1, n.tax.NumItems(), len(l1), time.Since(started))
	return nil
}

// runPass executes one count-support pass for k >= 2 and returns the global
// large k-itemsets (identical on every node after the broadcast).
func (n *node) runPass(eng engine, k int, cands [][]item.Item) ([]itemset.Counted, error) {
	started := time.Now()
	n.cur = metrics.NodeStats{Node: n.id}
	n.ins.startPass(k, len(cands))
	var psp obs.Span
	if n.tr.Enabled() {
		psp = n.tr.Begin(n.id, 0, fmt.Sprintf("pass %d", k))
	}
	if n.isCoord() && n.cfg.OnPassStart != nil {
		n.cfg.OnPassStart(k, len(cands))
	}

	lk, meta, err := eng.pass(k, cands)
	if err != nil {
		return nil, fmt.Errorf("core: node %d pass %d: %w", n.id, k, err)
	}

	n.capturePassComm()
	n.ins.endPass(&n.cur)
	n.finishPassStats()
	psp.Arg("candidates", int64(len(cands)))
	psp.Arg("large", int64(len(lk)))
	psp.End()
	if n.isCoord() || n.keepLarge {
		// Mirror the sequential baseline: an empty L_k terminates the run
		// and is not recorded as a level.
		if len(lk) > 0 {
			n.large = append(n.large, lk)
		}
		meta.pass = k
		meta.candidates = len(cands)
		meta.large = len(lk)
		meta.elapsed = time.Since(started)
		n.passMeta = append(n.passMeta, meta)
	}
	n.emitProgress(k, len(cands), len(lk), time.Since(started))
	return lk, nil
}

func (n *node) finishPassStats() {
	n.perPass = append(n.perPass, n.cur)
}

// gatherLarge implements the pass-end protocol shared by all engines:
//
//   - every non-coordinator sends its locally determined large itemsets
//     (ownedSets/ownedCounts, already filtered by minCount) and the dense
//     count vector of its replicated table (dupCounts, may be empty);
//   - the coordinator reduces the replicated counts, filters them, merges in
//     the owned larges, and broadcasts the global L_k.
//
// dupSets is the (deterministically identical) itemset list behind
// dupCounts; only the coordinator's copy is read.
func (n *node) gatherLarge(ownedSets [][]item.Item, ownedCounts []int64, dupSets [][]item.Item, dupCounts []int64) ([]itemset.Counted, error) {
	bsp := n.tr.Begin(n.id, 0, "barrier")
	defer bsp.End()
	if !n.isCoord() {
		if err := n.ep.Send(0, kLocalLarge, wire.AppendCounted(nil, ownedSets, ownedCounts)); err != nil {
			return nil, err
		}
		if err := n.ep.Send(0, kDupCounts, wire.AppendCountsAuto(nil, dupCounts)); err != nil {
			return nil, err
		}
		wait := time.Now()
		m, err := n.recvKind(kLarge)
		if err != nil {
			return nil, err
		}
		n.cur.BarrierWait += time.Since(wait)
		sets, counts, _, err := wire.Counted(m.Payload)
		if err != nil {
			return nil, fmt.Errorf("core: decode L_k broadcast: %w", err)
		}
		out := make([]itemset.Counted, len(sets))
		for i := range sets {
			out[i] = itemset.Counted{Items: sets[i], Count: counts[i]}
		}
		return out, nil
	}

	// Coordinator: collect N-1 owned-large messages and N-1 replicated
	// count vectors.
	var all []itemset.Counted
	for i := range ownedSets {
		all = append(all, itemset.Counted{Items: ownedSets[i], Count: ownedCounts[i]})
	}
	dupTotal := make([]int64, len(dupCounts))
	copy(dupTotal, dupCounts)
	wait := time.Now()
	for got := 0; got < 2*n.numPeers(); got++ {
		m, err := n.recvKind(kLocalLarge, kDupCounts)
		if err != nil {
			return nil, err
		}
		switch m.Kind {
		case kLocalLarge:
			sets, counts, _, err := wire.Counted(m.Payload)
			if err != nil {
				return nil, fmt.Errorf("core: decode owned larges from node %d: %w", m.From, err)
			}
			for i := range sets {
				all = append(all, itemset.Counted{Items: sets[i], Count: counts[i]})
			}
		case kDupCounts:
			counts, _, err := wire.CountsAuto(m.Payload)
			if err != nil {
				return nil, fmt.Errorf("core: decode replicated counts from node %d: %w", m.From, err)
			}
			if len(counts) != len(dupTotal) {
				return nil, fmt.Errorf("core: node %d sent %d replicated counts, want %d", m.From, len(counts), len(dupTotal))
			}
			for i, c := range counts {
				dupTotal[i] += c
			}
		}
	}
	n.cur.BarrierWait += time.Since(wait)
	for i, c := range dupTotal {
		if c >= n.minCount {
			all = append(all, itemset.Counted{Items: dupSets[i], Count: c})
		}
	}
	itemset.SortCounted(all)

	sets := make([][]item.Item, len(all))
	counts := make([]int64, len(all))
	for i, c := range all {
		sets[i] = c.Items
		counts[i] = c.Count
	}
	payload := wire.AppendCounted(nil, sets, counts)
	for p := 1; p < n.ep.N(); p++ {
		if err := n.ep.Send(p, kLarge, payload); err != nil {
			return nil, err
		}
	}
	return all, nil
}
