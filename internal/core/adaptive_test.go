package core

import (
	"fmt"
	"testing"

	"pgarm/internal/cumulate"
	"pgarm/internal/metrics"
	"pgarm/internal/txn"
)

// skewedParts splits the database so node 0 hoards half the transactions and
// the rest spread evenly — the load-skew regime adaptive granule escalation
// targets. Contiguous slices, so the split is deterministic.
func skewedParts(db *txn.DB, n int) []txn.Scanner {
	if n == 1 {
		return partsOf(db, 1)
	}
	total := db.Len()
	first := total / 2
	parts := make([]txn.Scanner, 0, n)
	p := &txn.DB{}
	for i := 0; i < first; i++ {
		p.Append(db.At(i))
	}
	parts = append(parts, p)
	rest := total - first
	off := first
	for i := 1; i < n; i++ {
		sz := rest / (n - 1)
		if i <= rest%(n-1) {
			sz++
		}
		q := &txn.DB{}
		for j := 0; j < sz; j++ {
			q.Append(db.At(off + j))
		}
		off += sz
		parts = append(parts, q)
	}
	return parts
}

// TestAdaptiveBitIdentical verifies the refactor's core promise: with
// adaptation on, F_k stays bit-identical to the sequential reference at every
// worker and node count, with and without a memory budget. The escalation
// thresholds are set low enough that skewed multi-node runs actually
// escalate, so the adaptive duplication paths are exercised, not just the
// static fallback.
func TestAdaptiveBitIdentical(t *testing.T) {
	ds := testDataset(t, 2000)
	const minSup = 0.02
	want, err := cumulate.Mine(ds.Taxonomy, ds.DB, cumulate.Config{MinSupport: minSup})
	if err != nil {
		t.Fatalf("cumulate: %v", err)
	}
	if len(want.Large) < 3 {
		t.Fatalf("weak test data: only %d large levels (need 3+ for a skew hint to exist)", len(want.Large))
	}
	for _, budget := range []int64{0, 16 << 10} {
		for _, nodes := range []int{1, 4} {
			for _, workers := range []int{1, 2, 4, 8} {
				t.Run(fmt.Sprintf("budget%d/%dnodes/%dworkers", budget, nodes, workers), func(t *testing.T) {
					got, err := Mine(ds.Taxonomy, skewedParts(ds.DB, nodes), Config{
						Algorithm:    HHPGM,
						MinSupport:   minSup,
						MemoryBudget: budget,
						Workers:      workers,
						Adaptive:     true,
						EscalateAt:   0.01,
						JumpAt:       0.02,
					})
					if err != nil {
						t.Fatalf("mine: %v", err)
					}
					assertSameLarge(t, want, got)
				})
			}
		}
	}
}

// totalItemsSent sums the count-support item shipping volume over the run —
// an exact counter, independent of wall-clock.
func totalItemsSent(rs *metrics.RunStats) int64 {
	var n int64
	for _, ps := range rs.Passes {
		for _, ns := range ps.Nodes {
			n += ns.ItemsSent
		}
	}
	return n
}

// TestForcedEscalation pins the escalation regression: with thresholds any
// real barrier wait crosses, a skewed 4-node H-HPGM run must escalate hot
// roots straight to the fine granule (JumpAt is crossed too), duplicate
// candidates it would otherwise partition, ship strictly fewer items than the
// static run, and still match the sequential reference bit-for-bit.
func TestForcedEscalation(t *testing.T) {
	ds := testDataset(t, 2000)
	const minSup = 0.02
	want, err := cumulate.Mine(ds.Taxonomy, ds.DB, cumulate.Config{MinSupport: minSup})
	if err != nil {
		t.Fatalf("cumulate: %v", err)
	}
	base := Config{Algorithm: HHPGM, MinSupport: minSup}

	static, err := Mine(ds.Taxonomy, skewedParts(ds.DB, 4), base)
	if err != nil {
		t.Fatalf("static mine: %v", err)
	}
	assertSameLarge(t, want, static)
	for _, ps := range static.Stats.Passes {
		if ps.Plan != nil && len(ps.Plan.Escalations) > 0 {
			t.Fatalf("static run escalated at pass %d: %+v", ps.Pass, ps.Plan.Escalations)
		}
	}

	acfg := base
	acfg.Adaptive = true
	acfg.EscalateAt = 0.01
	acfg.JumpAt = 0.02
	adaptive, err := Mine(ds.Taxonomy, skewedParts(ds.DB, 4), acfg)
	if err != nil {
		t.Fatalf("adaptive mine: %v", err)
	}
	assertSameLarge(t, want, adaptive)

	escalated := false
	for _, ps := range adaptive.Stats.Passes {
		if ps.Plan == nil || len(ps.Plan.Escalations) == 0 {
			continue
		}
		escalated = true
		if !ps.Plan.Adaptive {
			t.Errorf("pass %d has escalations but the plan is not marked adaptive", ps.Pass)
		}
		for _, e := range ps.Plan.Escalations {
			if e.Granule != "fine" {
				t.Errorf("pass %d root %d escalated to %q, want \"fine\" (JumpAt crossed)", ps.Pass, e.Root, e.Granule)
			}
		}
		if ps.Duplicated == 0 {
			t.Errorf("pass %d escalated but duplicated no candidates", ps.Pass)
		}
	}
	if !escalated {
		t.Fatalf("no pass escalated despite EscalateAt=%g on a skewed 4-node run", acfg.EscalateAt)
	}
	if fp := adaptive.Stats.FinalPlan(); fp == nil || fp.GranuleMap() == fp.Granule {
		t.Errorf("final plan granule map records no escalated roots: %+v", fp)
	}

	sSent, aSent := totalItemsSent(static.Stats), totalItemsSent(adaptive.Stats)
	if aSent >= sSent {
		t.Errorf("adaptive run shipped %d items, static %d: duplication should shrink shipping", aSent, sSent)
	}
}
