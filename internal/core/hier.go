package core

import (
	"fmt"
	"time"

	"pgarm/internal/cumulate"
	"pgarm/internal/driver"
	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/metrics"
	"pgarm/internal/taxonomy"
	"pgarm/internal/txn"
)

// hierWorker is one scan worker's private routing state: counters, a batcher,
// a duplicated-candidate count vector and every per-transaction scratch
// buffer. Nothing in here is shared, so the scan body never synchronizes.
type hierWorker struct {
	stats       metrics.NodeStats
	bat         *driver.Batcher
	dupCounts   []int64
	dupExt      []item.Item
	tPrime      []item.Item
	group       []item.Item
	multiset    []item.Item
	sub         []item.Item
	rootRuns    []rootRun
	rootsByDest [][]item.Item
	touched     []int
}

// hierEngine implements H-HPGM (§3.3) and its three skew-handling variants
// (§3.4). Candidates are partitioned by the hash of their *root vector* (the
// sorted multiset of the root of each member item), so every candidate of a
// given tree combination lives on one node and ancestors never travel:
// transactions are reduced to their closest-to-bottom large items and only
// the item groups relevant to each owner are shipped (Example 2: 3 items
// instead of HPGM's 18).
//
// The TGD/PGD/FGD variants first fill the nodes' free memory with copies of
// frequently occurring candidates — whole trees, leaf paths, or individual
// hot itemsets plus their ancestor candidates — which are then counted
// locally on every node, flattening the probe-load distribution (Fig 15).
type hierEngine struct {
	m   *itemsetMiner
	dup dupKind

	// cur is the plan of the pass in flight, computed by plan, consumed by
	// pass. Shared across in-process nodes via candCache.
	cur *passPlan
}

// plan derives the pass's partition plan: root vectors, owners and the
// duplication choice are deterministic on every node; computed once and
// shared (see candCache). The first node goroutine to arrive builds the plan
// across its scan workers — every other node goroutine is blocked on the
// same value. With Config.Adaptive, prev (the broadcast skew hint, identical
// everywhere) escalates the duplication granule of hot taxonomy subtrees.
func (e *hierEngine) plan(n *driver.Node, k int, cands [][]item.Item, prev *metrics.SkewReport) (driver.PlanDecision, error) {
	m := e.m
	psp := n.Span("partition")
	W := n.Workers()
	e.cur = m.cands.hierPlan(k, func() *passPlan {
		return computeHierPlan(m, n.NumNodes(), e.dup, k, cands, W, prev,
			n.BoundaryObs("partition shard").Hook())
	})
	psp.Arg("duplicated", int64(len(e.cur.dupSets)))
	psp.Arg("workers", int64(W))
	psp.End()
	return e.cur.decision, nil
}

func (e *hierEngine) pass(n *driver.Node, k int, cands [][]item.Item, st *metrics.NodeStats) (engineOut, error) {
	m := e.m
	nNodes := n.NumNodes()
	self := n.ID()

	W := n.Workers()
	plan := e.cur
	owners, dupFlag := plan.owners, plan.dup

	// vecInfo drives routing: owner of each root vector and how many
	// candidates of that vector remain partitioned (not duplicated). A
	// vector whose candidates were all duplicated needs no communication —
	// that is where TGD/PGD/FGD save bytes on top of balancing load.
	//
	// The map is keyed by the 64-bit vector hash, not the packed vector. A
	// collision merges two vectors into one entry; that is harmless: the
	// owner is hash-derived so it is identical for both, and a merged
	// remaining count can only route an item group to a node that needs it
	// for the other vector — receivers count through exact table lookups, so
	// support counts cannot change.
	type vecEntry struct {
		owner     int
		remaining int
	}
	vecInfo := make(map[uint64]*vecEntry)
	for i := range cands {
		ve := vecInfo[plan.vecHashes[i]]
		if ve == nil {
			ve = &vecEntry{owner: owners[i]}
			vecInfo[plan.vecHashes[i]] = ve
		}
		if !dupFlag.get(int32(i)) {
			ve.remaining++
		}
	}

	// Per-node state. The owned table is touched only by the receiver
	// goroutine during the count phase; duplicated candidates are counted
	// into per-worker vectors (over the shared read-only dupIndex) merged at
	// the scan barrier.
	var ownedCands [][]item.Item
	for i, c := range cands {
		if owners[i] == self && !dupFlag.get(int32(i)) {
			ownedCands = append(ownedCands, c)
		}
	}
	ownedTable := itemset.NewTableFrom(ownedCands, W)
	ownedMember := cumulate.KeepSet(m.tax, ownedCands)
	ownedView := taxonomy.NewView(m.tax, m.largeFlags, ownedMember)
	dupMember := cumulate.KeepSet(m.tax, plan.dupSets)
	dupView := taxonomy.NewView(m.tax, m.largeFlags, dupMember)
	replaceView := taxonomy.NewView(m.tax, m.largeFlags, nil)

	// Receiver: one unit is the item group t'' a peer selected for us;
	// candidates contained in its ancestor closure are counted, covering
	// both the k-itemsets generated from t'' and "all its ancestor
	// candidates" (Figure 5 lines (12)/(16)). The receiver alone touches
	// the owned table; scan workers only route.
	applyScratch := make([]item.Item, 0, 64)
	applySub := make([]item.Item, 0, 2*k)
	xsp := n.Span("exchange")
	cp := n.StartExchange(driver.ItemsApplier(func(items []item.Item) {
		ext := cumulate.ExtendFiltered(ownedView, ownedMember, applyScratch[:0], items)
		applyScratch = ext
		itemset.ForEachSubsetScratch(ext, k, applySub, func(sub []item.Item) bool {
			if id := ownedTable.Lookup(sub); id >= 0 {
				ownedTable.Increment(id)
				st.Increments++
			}
			return true
		})
	}))

	// Per-worker scan state: each worker owns a batcher, a duplicated-table
	// count vector and every per-transaction scratch buffer.
	wdup := driver.WorkerVectors(W, len(plan.dupSets))
	workers := make([]hierWorker, W)
	for w := range workers {
		workers[w] = hierWorker{
			bat:         cp.NewBatcher(),
			dupCounts:   wdup[w],
			rootsByDest: make([][]item.Item, nNodes),
			touched:     make([]int, 0, nNodes),
			rootRuns:    make([]rootRun, 0, 16),
			sub:         make([]item.Item, 0, 2*k),
		}
	}

	// Block skip predicate over all of C_k: a block none of whose closures
	// can contain any candidate produces no dup-count increment, no owned
	// increment anywhere, and only item groups that miss every owner's table
	// — skipping it is exact. Block counters land in a parallel stats slice
	// (hierWorker keeps its own NodeStats for the scan body).
	pred := txn.NewPredicate(m.tax, cands)
	wblocks := make([]metrics.NodeStats, W)
	started := time.Now()
	err := driver.ScanTxnShards(m.db, pred, W, n.ShardObs("count"), wblocks, func(w int, t txn.Transaction) error {
		wk := &workers[w]
		wk.stats.TxnsScanned++

		// Duplicated candidates are counted locally, straight from the
		// original transaction's closure (Figures 7/9/11 line (8.1)). The
		// shared dupIndex is read-only; every worker counts into its own
		// vector.
		if len(wk.dupCounts) > 0 {
			wk.dupExt = cumulate.ExtendFiltered(dupView, dupMember, wk.dupExt[:0], t.Items)
			itemset.ForEachSubsetScratch(wk.dupExt, k, wk.sub, func(sub []item.Item) bool {
				wk.stats.Probes++
				if id := plan.dupIndex.Lookup(sub); id >= 0 {
					wk.dupCounts[id]++
					wk.stats.Increments++
				}
				return true
			})
		}

		// t': items replaced by their closest-to-bottom large ancestor.
		wk.tPrime = replaceView.ReplaceWithLarge(wk.tPrime[:0], t.Items)
		if len(wk.tPrime) == 0 {
			return nil
		}
		// Distinct roots present with their item multiplicities.
		wk.rootRuns = rootRunsOf(m.tax, wk.rootRuns[:0], wk.tPrime)

		// Enumerate realizable root k-multisets; union the roots each
		// destination needs. vecInfo is shared read-only.
		wk.touched = wk.touched[:0]
		wk.multiset = wk.multiset[:0]
		enumerateMultisets(wk.rootRuns, k, wk.multiset, func(mv []item.Item) {
			ve := vecInfo[itemset.Hash(mv)]
			if ve == nil || ve.remaining == 0 {
				return
			}
			if len(wk.rootsByDest[ve.owner]) == 0 {
				wk.touched = append(wk.touched, ve.owner)
			}
			for _, r := range mv {
				wk.rootsByDest[ve.owner] = append(wk.rootsByDest[ve.owner], r)
			}
		})

		var sendErr error
		for _, dest := range wk.touched {
			roots := item.Dedup(wk.rootsByDest[dest])
			wk.group = wk.group[:0]
			for _, x := range wk.tPrime {
				if item.Contains(roots, m.tax.Root(x)) {
					wk.group = append(wk.group, x)
				}
			}
			if dest != self {
				wk.stats.ItemsSent += int64(len(wk.group))
			}
			if err := wk.bat.AddItems(dest, wk.group); err != nil {
				sendErr = err
			}
			wk.rootsByDest[dest] = wk.rootsByDest[dest][:0]
		}
		return sendErr
	})
	for w := range workers {
		if err != nil {
			break
		}
		err = workers[w].bat.FlushAll()
	}
	if ferr := cp.Finish(); err == nil {
		err = ferr
	}
	xsp.End()
	if err != nil {
		return engineOut{}, fmt.Errorf("count support: %w", err)
	}
	dupCounts := driver.MergeWorkerVectors(wdup)
	for w := range workers {
		st.AddScanCounters(&workers[w].stats)
	}
	driver.MergeWorkerStats(st, wblocks)
	st.ScanTime = time.Since(started)
	st.Probes += ownedTable.Probes()

	ownedSets, ownedCounts := largeOf(ownedTable, n.MinCount())
	return engineOut{
		ownedSets:   ownedSets,
		ownedCounts: ownedCounts,
		dupSets:     plan.dupSets,
		dupCounts:   dupCounts,
		duplicated:  len(plan.dupSets),
		fragments:   1,
	}, nil
}

// granuleNames maps a dupKind to its report-facing name.
var granuleNames = [...]string{"none", "tree", "path", "fine"}

func granuleName(kind dupKind) string {
	if int(kind) < len(granuleNames) {
		return granuleNames[kind]
	}
	return "unknown"
}

// computeHierPlan derives the H-HPGM family's partition plan for one pass:
// root-vector hashes and owners sharded across workers, the duplication
// choice, and the duplicated-candidate list with its index. Every input is
// globally replicated state (plus the broadcast skew hint), so the result is
// identical on whichever node computes it first — and identical across
// processes in worker mode, where each process computes it once.
func computeHierPlan(m *itemsetMiner, nNodes int, kind dupKind, k int, cands [][]item.Item, workers int, prev *metrics.SkewReport, hook itemset.Hook) *passPlan {
	vecHashes := make([]uint64, len(cands))
	owners := make([]int, len(cands))
	itemset.ForShards(len(cands), workers, hook, func(w, lo, hi int) {
		vecScratch := make([]item.Item, 0, k)
		for i := lo; i < hi; i++ {
			vecScratch = rootVector(m.tax, vecScratch[:0], cands[i])
			h := itemset.Hash(vecScratch)
			vecHashes[i] = h
			owners[i] = int(h % uint64(nNodes))
		}
	})
	dec := metrics.PlanDecision{
		Partitioner: "root-vector-hash",
		Granule:     granuleName(kind),
		Adaptive:    m.cfg.Adaptive,
	}
	var candKind []dupKind
	if m.cfg.Adaptive {
		candKind = escalateGranules(m, k, kind, cands, owners, prev, &dec)
	}
	dup := selectDuplicates(m, nNodes, kind, k, cands, vecHashes, owners, workers, candKind)
	// Duplicated candidates in ascending id order: the layout of every
	// node's count vector and of the coordinator reduce.
	dupSets := make([][]item.Item, 0, dup.count())
	for i, c := range cands {
		if dup.get(int32(i)) {
			dupSets = append(dupSets, c)
		}
	}
	dec.Duplicated = len(dupSets)
	return &passPlan{
		vecHashes: vecHashes,
		owners:    owners,
		dup:       dup,
		dupSets:   dupSets,
		dupIndex:  itemset.BuildIndexParallel(dupSets, workers),
		decision:  dec,
	}
}

// escalateGranules advances the adaptive escalation state for pass k and
// returns the per-candidate effective granule (nil when nothing is escalated
// yet, which makes selectDuplicates take the static path bit-for-bit).
//
// Decision rule, applied at most once per pass: when the previous complete
// skew snapshot reports a barrier-wait max/mean ratio at or above EscalateAt,
// the taxonomy roots of the candidates the straggler owns this pass are "hot"
// and their granule steps up one level (H-HPGM -> TGD -> PGD -> FGD), or
// straight to FGD at or above JumpAt. Escalations are sticky: a calmed
// subtree keeps its level, so the plan never oscillates.
//
// Every input is identical on all nodes — prev is the coordinator's KPlan
// broadcast, cands/owners/itemCounts are replicated state — so the escalation
// state and the resulting plan evolve identically everywhere.
func escalateGranules(m *itemsetMiner, k int, base dupKind, cands [][]item.Item, owners []int, prev *metrics.SkewReport, dec *metrics.PlanDecision) []dupKind {
	esc := &m.cands.esc
	if prev != nil && esc.upAt < k && prev.Straggler >= 0 && prev.BarrierWaitMaxOverMean >= m.cfg.escalateAt() {
		esc.upAt = k
		if len(esc.levels) == 0 {
			esc.levels = make([]dupKind, m.tax.NumItems())
		}
		jump := prev.BarrierWaitMaxOverMean >= m.cfg.jumpAt()
		for i, c := range cands {
			if owners[i] != prev.Straggler {
				continue
			}
			for _, x := range c {
				r := m.tax.Root(x)
				cur := esc.levels[r]
				if cur < base {
					cur = base
				}
				next := cur + 1
				if jump || next > dupFine {
					next = dupFine
				}
				if next > esc.levels[r] {
					esc.levels[r] = next
				}
			}
		}
	}
	var candKind []dupKind
	for r, lv := range esc.levels {
		if lv <= base {
			continue
		}
		dec.Escalations = append(dec.Escalations, metrics.Escalation{Root: r, Granule: granuleName(lv)})
		if candKind == nil {
			candKind = make([]dupKind, len(cands))
			for i := range candKind {
				candKind[i] = base
			}
		}
		for i, c := range cands {
			for _, x := range c {
				if int(m.tax.Root(x)) == r && lv > candKind[i] {
					candKind[i] = lv
					break
				}
			}
		}
	}
	return candKind
}

// rootVector computes the sorted multiset of roots of an itemset's members,
// appended to dst.
func rootVector(tax *taxonomy.Taxonomy, dst []item.Item, set []item.Item) []item.Item {
	for _, x := range set {
		dst = append(dst, tax.Root(x))
	}
	item.Sort(dst)
	return dst
}

// rootRun is one distinct root present in a transaction with the number of
// transaction items under it — the multiplicity cap for root multisets.
type rootRun struct {
	root  item.Item
	count int
}

// rootRunsOf groups a canonical transaction's items by root, ascending.
func rootRunsOf(tax *taxonomy.Taxonomy, dst []rootRun, items []item.Item) []rootRun {
	for _, x := range items {
		r := tax.Root(x)
		found := false
		for i := range dst {
			if dst[i].root == r {
				dst[i].count++
				found = true
				break
			}
		}
		if !found {
			dst = append(dst, rootRun{root: r, count: 1})
		}
	}
	// Roots must be ascending for canonical multiset keys.
	for i := 1; i < len(dst); i++ {
		for j := i; j > 0 && dst[j-1].root > dst[j].root; j-- {
			dst[j-1], dst[j] = dst[j], dst[j-1]
		}
	}
	return dst
}

// enumerateMultisets yields every k-multiset over the runs' roots whose
// per-root multiplicity does not exceed the run count — exactly the root
// vectors some k-subset of the transaction can realize. fn receives a
// scratch slice valid only for the call.
func enumerateMultisets(runs []rootRun, k int, scratch []item.Item, fn func(m []item.Item)) {
	var rec func(idx, left int)
	rec = func(idx, left int) {
		if left == 0 {
			fn(scratch)
			return
		}
		if idx >= len(runs) {
			return
		}
		// Remaining capacity check for an early exit.
		capLeft := 0
		for i := idx; i < len(runs); i++ {
			capLeft += runs[i].count
		}
		if capLeft < left {
			return
		}
		max := runs[idx].count
		if max > left {
			max = left
		}
		for take := 0; take <= max; take++ {
			for i := 0; i < take; i++ {
				scratch = append(scratch, runs[idx].root)
			}
			rec(idx+1, left-take)
			scratch = scratch[:len(scratch)-take]
		}
	}
	rec(0, k)
}
