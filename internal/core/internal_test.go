package core

import (
	"fmt"
	"testing"

	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/taxonomy"
)

// hierarchy: 0 -> 2,3 ; 1 -> 4 ; 2 -> 5,6 ; 3 -> 7 ; 4 -> 8,9
func helperTaxonomy() *taxonomy.Taxonomy {
	return taxonomy.MustNew([]item.Item{
		item.None, item.None, 0, 0, 1, 2, 2, 3, 4, 4,
	})
}

func TestRootVector(t *testing.T) {
	tax := helperTaxonomy()
	got := rootVector(tax, nil, []item.Item{8, 5})
	if !item.Equal(got, []item.Item{0, 1}) {
		t.Errorf("rootVector({8,5}) = %v, want {0,1}", got)
	}
	got = rootVector(tax, nil, []item.Item{5, 6})
	if !item.Equal(got, []item.Item{0, 0}) {
		t.Errorf("rootVector({5,6}) = %v, want {0,0}", got)
	}
}

func TestRootRunsOf(t *testing.T) {
	tax := helperTaxonomy()
	runs := rootRunsOf(tax, nil, []item.Item{5, 6, 8, 9, 7})
	if len(runs) != 2 {
		t.Fatalf("runs = %v", runs)
	}
	if runs[0].root != 0 || runs[0].count != 3 {
		t.Errorf("run 0 = %+v, want root 0 count 3", runs[0])
	}
	if runs[1].root != 1 || runs[1].count != 2 {
		t.Errorf("run 1 = %+v, want root 1 count 2", runs[1])
	}
}

func TestEnumerateMultisets(t *testing.T) {
	runs := []rootRun{{root: 0, count: 2}, {root: 1, count: 1}}
	var got []string
	enumerateMultisets(runs, 2, nil, func(m []item.Item) {
		got = append(got, item.Format(m))
	})
	// Realizable 2-multisets: {0,0} (two items under 0), {0,1}; {1,1}
	// impossible (only one item under root 1).
	want := map[string]bool{"{0,0}": true, "{0,1}": true}
	if len(got) != len(want) {
		t.Fatalf("multisets = %v", got)
	}
	for _, g := range got {
		if !want[g] {
			t.Errorf("unexpected multiset %s", g)
		}
	}
	// k larger than total multiplicity yields nothing.
	enumerateMultisets(runs, 4, nil, func(m []item.Item) {
		t.Errorf("impossible multiset %v", m)
	})
}

func TestForEachAncestorCombo(t *testing.T) {
	tax := helperTaxonomy()
	var got []string
	forEachAncestorCombo(tax, []item.Item{5, 8}, func(c []item.Item) {
		got = append(got, item.Format(c))
	})
	// chains: 5 -> 2 -> 0 ; 8 -> 4 -> 1. Combos exclude {5,8} itself and
	// any collapse; all are 2-item sets across the two chains.
	want := map[string]bool{
		"{4,5}": true, "{1,5}": true,
		"{2,8}": true, "{2,4}": true, "{1,2}": true,
		"{0,8}": true, "{0,4}": true, "{0,1}": true,
	}
	if len(got) != len(want) {
		t.Fatalf("combos = %v, want %d of them", got, len(want))
	}
	for _, g := range got {
		if !want[g] {
			t.Errorf("unexpected combo %s", g)
		}
	}
	// Same-chain itemsets collapse when both positions reach the same
	// ancestor; those must be skipped.
	var sameChain []string
	forEachAncestorCombo(tax, []item.Item{5, 6}, func(c []item.Item) {
		sameChain = append(sameChain, item.Format(c))
		if len(c) != 2 {
			t.Errorf("collapsed combo leaked: %v", c)
		}
	})
	for _, s := range sameChain {
		if s == "{2,2}" || s == "{0,0}" {
			t.Errorf("duplicate-item combo %s", s)
		}
	}
}

func TestLowestLargeItems(t *testing.T) {
	tax := helperTaxonomy()
	large := make([]bool, tax.NumItems())
	large[0] = true // has large descendant 5
	large[5] = true // leaf-level large
	large[4] = true // interior, no large descendant
	got := lowestLargeItems(tax, large)
	if !item.Equal(got, []item.Item{4, 5}) {
		t.Errorf("lowestLargeItems = %v, want {4,5}", got)
	}
}

func TestFragmentCount(t *testing.T) {
	if got := fragmentCount(100, 2, 0); got != 1 {
		t.Errorf("unlimited budget fragments = %d", got)
	}
	per := candBytes(2)
	if got := fragmentCount(100, 2, 100*per); got != 1 {
		t.Errorf("exact fit fragments = %d", got)
	}
	if got := fragmentCount(100, 2, 50*per); got != 2 {
		t.Errorf("half fit fragments = %d", got)
	}
	if got := fragmentCount(100, 2, 1); got != 100 {
		t.Errorf("tiny budget fragments = %d", got)
	}
}

func TestSelectDuplicatesDeterministicAcrossNodes(t *testing.T) {
	ds := testDataset(t, 1500)
	parts := partsOf(ds.DB, 3)
	// Run FGD twice; counts must be identical (the selection is pure).
	run := func() *Result {
		r, err := Mine(ds.Taxonomy, parts, Config{
			Algorithm: HHPGMFGD, MinSupport: 0.03, MaxK: 2, MemoryBudget: 64 << 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, bRes := run(), run()
	pa, pb := a.Stats.Pass(2), bRes.Stats.Pass(2)
	if pa == nil || pb == nil {
		t.Fatal("missing pass 2")
	}
	if pa.Duplicated != pb.Duplicated {
		t.Errorf("nondeterministic duplication: %d vs %d", pa.Duplicated, pb.Duplicated)
	}
}

func TestDuplicationRespectsBudget(t *testing.T) {
	ds := testDataset(t, 1500)
	for _, alg := range []Algorithm{HHPGMTGD, HHPGMPGD, HHPGMFGD} {
		for _, budget := range []int64{8 << 10, 64 << 10, 1 << 20} {
			t.Run(fmt.Sprintf("%s/%d", alg, budget), func(t *testing.T) {
				res, err := Mine(ds.Taxonomy, partsOf(ds.DB, 4), Config{
					Algorithm: alg, MinSupport: 0.03, MaxK: 2, MemoryBudget: budget,
				})
				if err != nil {
					t.Fatal(err)
				}
				ps := res.Stats.Pass(2)
				if ps == nil {
					t.Skip("no pass 2 at this support")
				}
				slots := int(budget / candBytes(2))
				if ps.Duplicated > slots {
					t.Errorf("duplicated %d candidates into %d slots", ps.Duplicated, slots)
				}
			})
		}
	}
}

func TestFinerGrainsDuplicateAtLeastAsMuchLoadRelief(t *testing.T) {
	// With a moderate budget the finer granules must achieve a max/mean
	// probe ratio no worse than plain H-HPGM on skewed data.
	ds := testDataset(t, 4000)
	budget := int64(512 << 10)
	ratios := map[Algorithm]float64{}
	for _, alg := range []Algorithm{HHPGM, HHPGMTGD, HHPGMPGD, HHPGMFGD} {
		res, err := Mine(ds.Taxonomy, partsOf(ds.DB, 8), Config{
			Algorithm: alg, MinSupport: 0.02, MaxK: 2, MemoryBudget: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		ps := res.Stats.Pass(2)
		if ps == nil {
			t.Fatal("no pass 2")
		}
		ratios[alg] = ps.ProbeSkew().MaxOverMean
	}
	if ratios[HHPGMFGD] > ratios[HHPGM]+0.15 {
		t.Errorf("FGD skew %.2f noticeably worse than H-HPGM %.2f", ratios[HHPGMFGD], ratios[HHPGM])
	}
	t.Logf("max/mean probes: H-HPGM %.2f, TGD %.2f, PGD %.2f, FGD %.2f",
		ratios[HHPGM], ratios[HHPGMTGD], ratios[HHPGMPGD], ratios[HHPGMFGD])
}

func TestCandBytesMonotone(t *testing.T) {
	if candBytes(3) <= candBytes(2) {
		t.Error("larger itemsets must cost more memory")
	}
}

var _ = itemset.Key
