package core

import (
	"math/rand"
	"testing"

	"pgarm/internal/cumulate"
	"pgarm/internal/item"
	"pgarm/internal/taxonomy"
	"pgarm/internal/txn"
)

// TestInteriorItemsInBaskets exercises a corner the synthetic generator
// never produces: transactions that literally contain interior hierarchy
// items (e.g. a catalog row recorded at category level). Closure semantics
// must hold — an interior item in a basket supports itself and its
// ancestors — and every algorithm must agree with Cumulate.
func TestInteriorItemsInBaskets(t *testing.T) {
	tax := taxonomy.MustBalanced(300, 5, 4)
	rng := rand.New(rand.NewSource(21))
	db := &txn.DB{}
	for tid := int64(0); tid < 1200; tid++ {
		items := make([]item.Item, 0, 5)
		for len(items) < 5 {
			// Any item, leaf or interior, including roots.
			items = append(items, item.Item(rng.Intn(tax.NumItems())))
		}
		db.Append(txn.Transaction{TID: tid, Items: item.Dedup(items)})
	}
	want, err := cumulate.Mine(tax, db, cumulate.Config{MinSupport: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Large) < 2 {
		t.Fatal("weak test data")
	}
	for _, alg := range Algorithms() {
		t.Run(string(alg), func(t *testing.T) {
			got, err := Mine(tax, partsOf(db, 4), Config{
				Algorithm:  alg,
				MinSupport: 0.02,
			})
			if err != nil {
				t.Fatal(err)
			}
			assertSameLarge(t, want, got)
		})
	}
}

// TestUniformDataNoHierarchy degenerates the hierarchy to a flat universe
// (every item a root): the generalized algorithms must still agree with
// Cumulate, which in turn equals plain Apriori.
func TestUniformDataNoHierarchy(t *testing.T) {
	const numItems = 120
	parent := make([]item.Item, numItems)
	for i := range parent {
		parent[i] = item.None
	}
	tax := taxonomy.MustNew(parent)
	rng := rand.New(rand.NewSource(5))
	db := &txn.DB{}
	for tid := int64(0); tid < 800; tid++ {
		items := make([]item.Item, 0, 6)
		for len(items) < 6 {
			items = append(items, item.Item(rng.Intn(numItems)))
		}
		db.Append(txn.Transaction{TID: tid, Items: item.Dedup(items)})
	}
	want, err := cumulate.Mine(tax, db, cumulate.Config{MinSupport: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	apriori, err := cumulate.Apriori(db, cumulate.Config{MinSupport: 0.03}, numItems)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Large) != len(apriori.Large) {
		t.Fatalf("flat Cumulate %d levels vs Apriori %d", len(want.Large), len(apriori.Large))
	}
	for _, alg := range []Algorithm{HPGM, HHPGM, HHPGMFGD} {
		got, err := Mine(tax, partsOf(db, 3), Config{Algorithm: alg, MinSupport: 0.03})
		if err != nil {
			t.Fatal(err)
		}
		assertSameLarge(t, want, got)
	}
}

// TestDeepChainHierarchy stresses long ancestor chains (every tree a single
// path): ancestor combos and nearest-large replacement over chains of depth
// ~20.
func TestDeepChainHierarchy(t *testing.T) {
	var b taxonomy.Builder
	var leaves []item.Item
	for tree := 0; tree < 4; tree++ {
		cur := b.AddRoot()
		for d := 0; d < 20; d++ {
			cur = b.AddChild(cur)
		}
		leaves = append(leaves, cur)
	}
	tax := b.MustBuild()
	rng := rand.New(rand.NewSource(9))
	db := &txn.DB{}
	for tid := int64(0); tid < 600; tid++ {
		items := make([]item.Item, 0, 3)
		for len(items) < 3 {
			// Random depth within a random chain.
			tree := rng.Intn(4)
			depth := rng.Intn(21)
			items = append(items, item.Item(tree*21+depth))
		}
		db.Append(txn.Transaction{TID: tid, Items: item.Dedup(items)})
	}
	_ = leaves
	want, err := cumulate.Mine(tax, db, cumulate.Config{MinSupport: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{NPGM, HHPGM, HHPGMPGD} {
		got, err := Mine(tax, partsOf(db, 3), Config{Algorithm: alg, MinSupport: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		assertSameLarge(t, want, got)
	}
}

// TestEmptyPartitions covers nodes whose local disk holds no transactions
// (more nodes than transactions in the extreme).
func TestEmptyPartitions(t *testing.T) {
	tax := taxonomy.MustBalanced(50, 3, 3)
	db := &txn.DB{}
	db.Append(txn.Transaction{TID: 1, Items: []item.Item{10, 20}})
	db.Append(txn.Transaction{TID: 2, Items: []item.Item{10, 21}})
	want, err := cumulate.Mine(tax, db, cumulate.Config{MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Mine(tax, partsOf(db, 5), Config{Algorithm: HHPGMFGD, MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	assertSameLarge(t, want, got)
}
