package core

import (
	"sync"

	"pgarm/internal/cumulate"
	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/metrics"
	"pgarm/internal/taxonomy"
)

// passOnce computes a value once per pass and shares it among the node
// goroutines. The pass-barrier protocol guarantees no caller requests pass
// k+1 before every node's pass-k call returned, so a single slot suffices.
type passOnce[T any] struct {
	mu   sync.Mutex
	pass int
	val  T
	wg   sync.WaitGroup
	busy bool
}

// get returns the pass-k value, invoking compute on the first call per pass.
// compute must be a pure function of state replicated on every node.
func (p *passOnce[T]) get(k int, compute func() T) T {
	p.mu.Lock()
	if p.pass == k {
		busy := p.busy
		p.mu.Unlock()
		if busy {
			p.wg.Wait()
		}
		return p.val
	}
	p.pass = k
	p.busy = true
	var zero T
	p.val = zero
	p.wg.Add(1)
	p.mu.Unlock()

	v := compute()

	p.mu.Lock()
	p.val = v
	p.busy = false
	p.mu.Unlock()
	p.wg.Done()
	return v
}

// candCache shares each pass's replicated data structures between the node
// goroutines.
//
// In the paper every node independently derives C_k, the partition map and
// the duplication choice from the broadcast L_{k-1} — there is no shared
// memory on the SP-2, but the derivations are pure functions of replicated
// state, so all nodes produce identical values. Materializing them once
// instead of N times is a simulation shortcut that changes no measured
// quantity (candidate counts, probes, bytes) but keeps a 16-node in-process
// cluster from holding 16 copies of multi-million-entry structures. Nodes
// treat everything returned here as read-only.
type candCache struct {
	tax   *taxonomy.Taxonomy
	gen   passOnce[[][]item.Item]
	plan  passOnce[*passPlan]
	index passOnce[*itemset.Index]

	// esc is the adaptive-granule escalation state of the H-HPGM family,
	// advanced exactly once per pass inside the hierPlan compute (the one
	// place that runs once per process per pass in both in-process and
	// worker modes). Its inputs — the broadcast skew hint and replicated
	// candidate state — are identical on every node, so the state evolves
	// identically everywhere.
	esc escState
}

// escState tracks, per taxonomy root, how far duplication has been escalated
// beyond the configured base granule (H-HPGM -> TGD -> PGD -> FGD).
type escState struct {
	levels []dupKind // per item id; only root entries are ever raised
	upAt   int       // pass the state last advanced at (once per pass)
}

// passPlan is the H-HPGM family's shared partition plan for one pass.
type passPlan struct {
	// vecHashes[i] is the FNV hash of candidate i's root vector; owners[i]
	// the node that hash assigns. The packed vector strings the plan used to
	// carry (one allocation per candidate) are gone: every consumer needs
	// only the hash or the recomputable vector.
	vecHashes []uint64
	owners    []int
	// dup flags duplicated candidate ids; dupSets lists them in ascending
	// id order (the order of the per-node count vectors), and dupIndex
	// indexes dupSets.
	dup      bitset
	dupSets  [][]item.Item
	dupIndex *itemset.Index
	// decision is the plan's report-facing summary (partitioner, granule,
	// escalations); shared like the rest of the plan so every in-process
	// node publishes the identical decision.
	decision metrics.PlanDecision
}

func newCandCache(tax *taxonomy.Taxonomy) *candCache {
	return &candCache{tax: tax}
}

// generate returns C_k for pass k. prev must be the identical large
// (k-1)-itemsets every caller holds after the pass barrier. The first caller
// per pass runs the sharded generator across workers (its node goroutine is
// the only one not blocked on this value, so the blocked peers' cores are
// free); its hook observes the worker shards.
func (c *candCache) generate(k int, prev [][]item.Item, workers int, hook itemset.Hook) [][]item.Item {
	return c.gen.get(k, func() [][]item.Item {
		return cumulate.GenerateCandidatesN(c.tax, prev, k, workers, hook)
	})
}

// hierPlan returns the shared partition plan for pass k.
func (c *candCache) hierPlan(k int, compute func() *passPlan) *passPlan {
	return c.plan.get(k, compute)
}

// fullIndex returns a shared index over all of C_k (used by NPGM, whose
// candidate set is replicated on every node), built across workers.
func (c *candCache) fullIndex(k int, cands [][]item.Item, workers int) *itemset.Index {
	return c.index.get(k, func() *itemset.Index {
		return itemset.BuildIndexParallel(cands, workers)
	})
}
