package core

import (
	"fmt"
	"testing"

	"pgarm/internal/cumulate"
)

// TestWorkersBitIdentical sweeps the per-node scan worker count across every
// algorithm and asserts the mined result is bit-identical to sequential
// Cumulate: shard assignment is a pure function of storage order and count
// merging is fixed-order integer addition, so no Workers setting may change a
// single itemset or count.
func TestWorkersBitIdentical(t *testing.T) {
	ds := testDataset(t, 2000)
	const minSup = 0.02
	want, err := cumulate.Mine(ds.Taxonomy, ds.DB, cumulate.Config{MinSupport: minSup})
	if err != nil {
		t.Fatalf("cumulate: %v", err)
	}
	if len(want.Large) < 2 {
		t.Fatalf("weak test data: only %d large levels", len(want.Large))
	}
	for _, alg := range Algorithms() {
		for _, workers := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%s/workers%d", alg, workers), func(t *testing.T) {
				parts := partsOf(ds.DB, 3)
				got, err := Mine(ds.Taxonomy, parts, Config{
					Algorithm:  alg,
					MinSupport: minSup,
					Workers:    workers,
				})
				if err != nil {
					t.Fatalf("mine: %v", err)
				}
				assertSameLarge(t, want, got)
			})
		}
	}
}

// TestWorkersWithMemoryBudget drives the worker pool through the paths a
// tight memory budget opens up: NPGM fragment re-scans and the TGD/PGD/FGD
// duplicated-candidate vectors, both of which merge per-worker state.
func TestWorkersWithMemoryBudget(t *testing.T) {
	ds := testDataset(t, 1500)
	const minSup = 0.02
	want, err := cumulate.Mine(ds.Taxonomy, ds.DB, cumulate.Config{MinSupport: minSup})
	if err != nil {
		t.Fatalf("cumulate: %v", err)
	}
	for _, alg := range Algorithms() {
		t.Run(string(alg), func(t *testing.T) {
			parts := partsOf(ds.DB, 4)
			got, err := Mine(ds.Taxonomy, parts, Config{
				Algorithm:    alg,
				MinSupport:   minSup,
				MemoryBudget: 16 << 10,
				Workers:      4,
			})
			if err != nil {
				t.Fatalf("mine: %v", err)
			}
			assertSameLarge(t, want, got)
		})
	}
}

// TestWorkersAccountingSymmetry re-checks the communication ledger with the
// worker pool on: per-worker ItemsSent/DataBytesSent merge into the node
// counters, and whatever any node sent some node must have received.
func TestWorkersAccountingSymmetry(t *testing.T) {
	ds := testDataset(t, 1500)
	for _, alg := range Algorithms() {
		t.Run(string(alg), func(t *testing.T) {
			res, err := Mine(ds.Taxonomy, partsOf(ds.DB, 4), Config{
				Algorithm: alg, MinSupport: 0.02, MaxK: 2, Workers: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, ps := range res.Stats.Passes {
				var dataSent, dataRecv int64
				for _, ns := range ps.Nodes {
					dataSent += ns.DataBytesSent
					dataRecv += ns.DataBytesReceived
				}
				if dataSent != dataRecv {
					t.Errorf("pass %d count-support: %d bytes sent vs %d received",
						ps.Pass, dataSent, dataRecv)
				}
			}
		})
	}
}

// TestConcurrentWorkersFeedOneReceiver maximizes scan workers per node so the
// race detector sees many producer goroutines batching units into the single
// countPhase receiver that owns the candidate table. Run with -race this is
// the proof that the scan/count split has no data races.
func TestConcurrentWorkersFeedOneReceiver(t *testing.T) {
	ds := testDataset(t, 1200)
	const minSup = 0.03
	want, err := cumulate.Mine(ds.Taxonomy, ds.DB, cumulate.Config{MinSupport: minSup})
	if err != nil {
		t.Fatalf("cumulate: %v", err)
	}
	for _, alg := range []Algorithm{HPGM, HHPGM, HHPGMFGD} {
		t.Run(string(alg), func(t *testing.T) {
			parts := partsOf(ds.DB, 2)
			got, err := Mine(ds.Taxonomy, parts, Config{
				Algorithm:  alg,
				MinSupport: minSup,
				Workers:    8,
			})
			if err != nil {
				t.Fatalf("mine: %v", err)
			}
			assertSameLarge(t, want, got)
		})
	}
}
