package core

import (
	"fmt"
	"testing"

	"pgarm/internal/cumulate"
	"pgarm/internal/gen"
	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/taxonomy"
	"pgarm/internal/txn"
)

// testDataset generates a small but structurally faithful dataset once per
// test binary.
func testDataset(tb testing.TB, numTxns int) *gen.Dataset {
	tb.Helper()
	p := gen.Params{
		Name:            "unit",
		NumTxns:         numTxns,
		AvgTxnSize:      6,
		AvgPatternSize:  3,
		NumPatterns:     300,
		NumItems:        900,
		Roots:           8,
		Fanout:          4,
		CorrelationMean: 0.25,
		CorruptionMean:  0.6,
		CorruptionSD:    0.1,
		Seed:            7,
	}
	ds, err := gen.Generate(p)
	if err != nil {
		tb.Fatalf("generate: %v", err)
	}
	return ds
}

// assertSameLarge compares parallel output against the sequential baseline,
// level by level, itemset by itemset, count by count.
func assertSameLarge(t *testing.T, want *cumulate.Result, got *Result) {
	t.Helper()
	if len(want.Large) != len(got.Large) {
		t.Fatalf("pass count: sequential found %d levels, parallel %d", len(want.Large), len(got.Large))
	}
	for k := 1; k <= len(want.Large); k++ {
		w, g := want.LargeK(k), got.LargeK(k)
		if len(w) != len(g) {
			t.Fatalf("L_%d size: sequential %d, parallel %d", k, len(w), len(g))
		}
		for i := range w {
			if !item.Equal(w[i].Items, g[i].Items) {
				t.Fatalf("L_%d[%d]: sequential %v, parallel %v", k, i, w[i].Items, g[i].Items)
			}
			if w[i].Count != g[i].Count {
				t.Fatalf("L_%d[%d] %v count: sequential %d, parallel %d",
					k, i, w[i].Items, w[i].Count, g[i].Count)
			}
		}
	}
}

func TestAllAlgorithmsMatchCumulate(t *testing.T) {
	ds := testDataset(t, 3000)
	const minSup = 0.02
	want, err := cumulate.Mine(ds.Taxonomy, ds.DB, cumulate.Config{MinSupport: minSup})
	if err != nil {
		t.Fatalf("cumulate: %v", err)
	}
	if len(want.Large) < 2 {
		t.Fatalf("weak test data: only %d large levels", len(want.Large))
	}
	for _, alg := range Algorithms() {
		for _, nodes := range []int{1, 3, 5} {
			t.Run(fmt.Sprintf("%s/%dnodes", alg, nodes), func(t *testing.T) {
				parts := partsOf(ds.DB, nodes)
				got, err := Mine(ds.Taxonomy, parts, Config{
					Algorithm:  alg,
					MinSupport: minSup,
				})
				if err != nil {
					t.Fatalf("mine: %v", err)
				}
				assertSameLarge(t, want, got)
			})
		}
	}
}

func TestAlgorithmsMatchCumulateWithMemoryBudget(t *testing.T) {
	ds := testDataset(t, 2000)
	const minSup = 0.02
	want, err := cumulate.Mine(ds.Taxonomy, ds.DB, cumulate.Config{MinSupport: minSup})
	if err != nil {
		t.Fatalf("cumulate: %v", err)
	}
	// A budget tight enough to force NPGM fragmentation and to restrict
	// TGD/PGD/FGD duplication to a subset.
	for _, budget := range []int64{2 << 10, 16 << 10, 1 << 20} {
		for _, alg := range Algorithms() {
			t.Run(fmt.Sprintf("%s/budget%d", alg, budget), func(t *testing.T) {
				parts := partsOf(ds.DB, 4)
				got, err := Mine(ds.Taxonomy, parts, Config{
					Algorithm:    alg,
					MinSupport:   minSup,
					MemoryBudget: budget,
				})
				if err != nil {
					t.Fatalf("mine: %v", err)
				}
				assertSameLarge(t, want, got)
			})
		}
	}
}

func TestTCPFabricMatchesChanFabric(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP fabric round in short mode")
	}
	ds := testDataset(t, 1500)
	const minSup = 0.02
	want, err := cumulate.Mine(ds.Taxonomy, ds.DB, cumulate.Config{MinSupport: minSup})
	if err != nil {
		t.Fatalf("cumulate: %v", err)
	}
	for _, alg := range []Algorithm{HPGM, HHPGM, HHPGMFGD} {
		t.Run(string(alg), func(t *testing.T) {
			parts := partsOf(ds.DB, 4)
			got, err := Mine(ds.Taxonomy, parts, Config{
				Algorithm:  alg,
				MinSupport: minSup,
				Fabric:     FabricTCP,
			})
			if err != nil {
				t.Fatalf("mine over TCP: %v", err)
			}
			assertSameLarge(t, want, got)
		})
	}
}

func TestHHPGMSendsFewerItemsThanHPGM(t *testing.T) {
	ds := testDataset(t, 3000)
	parts := partsOf(ds.DB, 4)
	run := func(alg Algorithm) *Result {
		r, err := Mine(ds.Taxonomy, partsOf(ds.DB, len(parts)), Config{Algorithm: alg, MinSupport: 0.02, MaxK: 2})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		return r
	}
	hpgm := run(HPGM)
	hhpgm := run(HHPGM)
	h := hpgm.Stats.Pass(2)
	hh := hhpgm.Stats.Pass(2)
	if h == nil || hh == nil {
		t.Fatal("missing pass-2 stats")
	}
	if hh.TotalItemsSent() >= h.TotalItemsSent() {
		t.Errorf("H-HPGM shipped %d items, HPGM %d; hierarchy partitioning should reduce communication",
			hh.TotalItemsSent(), h.TotalItemsSent())
	}
	if hh.AvgBytesReceived() >= h.AvgBytesReceived() {
		t.Errorf("H-HPGM received %.0f B/node, HPGM %.0f B/node; expected reduction",
			hh.AvgBytesReceived(), h.AvgBytesReceived())
	}
}

func TestSingleNodeDegenerate(t *testing.T) {
	ds := testDataset(t, 800)
	want, err := cumulate.Mine(ds.Taxonomy, ds.DB, cumulate.Config{MinSupport: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Mine(ds.Taxonomy, []txn.Scanner{ds.DB}, Config{Algorithm: HHPGMFGD, MinSupport: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	assertSameLarge(t, want, got)
}

func TestMineRejectsBadConfig(t *testing.T) {
	tax := taxonomy.MustBalanced(10, 2, 3)
	db := txn.NewDB([]txn.Transaction{{TID: 1, Items: []item.Item{5}}})
	if _, err := Mine(tax, nil, Config{Algorithm: HHPGM, MinSupport: 0.1}); err == nil {
		t.Error("expected error for zero partitions")
	}
	if _, err := Mine(tax, []txn.Scanner{db}, Config{Algorithm: HHPGM, MinSupport: 0}); err == nil {
		t.Error("expected error for zero minimum support")
	}
	if _, err := Mine(tax, []txn.Scanner{db}, Config{Algorithm: "bogus", MinSupport: 0.1}); err == nil {
		t.Error("expected error for unknown algorithm")
	}
}

// partsOf clones the round-robin partitioning used by the experiments.
func partsOf(db *txn.DB, n int) []txn.Scanner {
	parts := txn.Partition(db, n)
	out := make([]txn.Scanner, n)
	for i, p := range parts {
		out[i] = p
	}
	return out
}

// sanity for the helper itself
func TestPartsOfCoversAllTransactions(t *testing.T) {
	ds := testDataset(t, 100)
	parts := partsOf(ds.DB, 3)
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	if total != ds.DB.Len() {
		t.Fatalf("partitioning lost transactions: %d != %d", total, ds.DB.Len())
	}
}

var _ = itemset.Key // keep import for helpers used across test files
