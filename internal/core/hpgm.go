package core

import (
	"fmt"
	"time"

	"pgarm/internal/cumulate"
	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/metrics"
	"pgarm/internal/taxonomy"
	"pgarm/internal/txn"
)

// hpgmEngine implements HPGM (§3.2): candidates are hash-partitioned over
// the nodes by hashing the whole itemset, ignoring the hierarchy. During
// count support every node extends each local transaction with all
// ancestors, enumerates its k-subsets and ships every subset to the node
// whose hash owns it. The ancestors travel too — Example 1's transaction of
// 3 items turns into 18 shipped items — which is exactly the communication
// blow-up H-HPGM eliminates (Table 6).
type hpgmEngine struct {
	n *node
}

func (e *hpgmEngine) pass(k int, cands [][]item.Item) ([]itemset.Counted, passMeta, error) {
	n := e.n
	nNodes := n.ep.N()
	self := n.id

	// Partition: node i keeps the candidates hashing to i.
	psp := n.tr.Begin(n.id, 0, "partition")
	table := itemset.NewTable(len(cands)/nNodes + 1)
	for _, c := range cands {
		if int(itemset.Hash(c)%uint64(nNodes)) == self {
			table.Add(c)
		}
	}

	view := taxonomy.NewView(n.tax, n.largeFlags, cumulate.KeepSet(n.tax, cands))
	member := cumulate.MemberSet(n.tax, cands)
	psp.End()

	// The receiver goroutine keeps exclusive ownership of the partitioned
	// table; scan workers only route units into per-worker batchers.
	xsp := n.tr.Begin(n.id, 0, "exchange")
	cp := n.startCountPhase(func(items []item.Item) {
		// One unit = one k-itemset owned by this node.
		if id := table.Lookup(items); id >= 0 {
			table.Increment(id)
			n.cur.Increments++
		}
	})
	W := n.cfg.workers()
	bats := make([]*batcher, W)
	for w := range bats {
		bats[w] = cp.newBatcher()
	}
	wstats := make([]metrics.NodeStats, W)
	wext := newWorkerScratch(W, 64)
	wsub := newWorkerScratch(W, 2*k)

	started := time.Now()
	err := scanShards(n.db, W, n.shardObs("count"), func(w int, t txn.Transaction) error {
		st := &wstats[w]
		st.TxnsScanned++
		ext := cumulate.ExtendFiltered(view, member, wext[w][:0], t.Items)
		wext[w] = ext
		bat := bats[w]
		var sendErr error
		itemset.ForEachSubsetScratch(ext, k, wsub[w], func(sub []item.Item) bool {
			dest := int(itemset.Hash(sub) % uint64(nNodes))
			if dest != self {
				st.ItemsSent += int64(len(sub))
			}
			if err := bat.add(dest, sub); err != nil {
				sendErr = err
				return false
			}
			return true
		})
		return sendErr
	})
	for _, bat := range bats {
		if err != nil {
			break
		}
		err = bat.flushAll()
	}
	if ferr := cp.finish(); err == nil {
		err = ferr
	}
	xsp.End()
	if err != nil {
		return nil, passMeta{}, fmt.Errorf("count support: %w", err)
	}
	mergeWorkerStats(&n.cur, wstats)
	n.cur.ScanTime = time.Since(started)
	n.cur.Probes += table.Probes()

	ownedSets, ownedCounts := largeOf(table, n.minCount)
	lk, err := n.gatherLarge(ownedSets, ownedCounts, nil, nil)
	if err != nil {
		return nil, passMeta{}, err
	}
	return lk, passMeta{fragments: 1}, nil
}

// largeOf extracts the itemsets meeting minCount from a fully counted local
// table, the L_k^n each partitioned node determines individually.
func largeOf(table *itemset.Table, minCount int64) ([][]item.Item, []int64) {
	var sets [][]item.Item
	var counts []int64
	for _, c := range table.Large(minCount) {
		sets = append(sets, c.Items)
		counts = append(counts, c.Count)
	}
	return sets, counts
}
