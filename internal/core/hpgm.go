package core

import (
	"fmt"
	"time"

	"pgarm/internal/cumulate"
	"pgarm/internal/driver"
	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/metrics"
	"pgarm/internal/taxonomy"
	"pgarm/internal/txn"
)

// hpgmEngine implements HPGM (§3.2): candidates are hash-partitioned over
// the nodes by hashing the whole itemset, ignoring the hierarchy. During
// count support every node extends each local transaction with all
// ancestors, enumerates its k-subsets and ships every subset to the node
// whose hash owns it. The ancestors travel too — Example 1's transaction of
// 3 items turns into 18 shipped items — which is exactly the communication
// blow-up H-HPGM eliminates (Table 6).
type hpgmEngine struct {
	m *itemsetMiner

	// owned is this node's candidate share, computed by plan for the pass in
	// flight.
	owned [][]item.Item
}

// plan partitions C_k: node i keeps the candidates hashing to i. The hashing
// is sharded across the scan workers into disjoint ranges of ownedFlag; the
// owned list is then collected in id order.
func (e *hpgmEngine) plan(n *driver.Node, k int, cands [][]item.Item, _ *metrics.SkewReport) (driver.PlanDecision, error) {
	nNodes := n.NumNodes()
	self := n.ID()
	psp := n.Span("partition")
	W := n.Workers()
	ownedFlag := make([]bool, len(cands))
	itemset.ForShards(len(cands), W, n.BoundaryObs("partition shard").Hook(), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			ownedFlag[i] = int(itemset.Hash(cands[i])%uint64(nNodes)) == self
		}
	})
	e.owned = e.owned[:0]
	for i, c := range cands {
		if ownedFlag[i] {
			e.owned = append(e.owned, c)
		}
	}
	psp.Arg("owned", int64(len(e.owned)))
	psp.Arg("workers", int64(W))
	psp.End()
	return driver.PlanDecision{Partitioner: "itemset-hash", Granule: "none"}, nil
}

func (e *hpgmEngine) pass(n *driver.Node, k int, cands [][]item.Item, st *metrics.NodeStats) (engineOut, error) {
	m := e.m
	nNodes := n.NumNodes()
	self := n.ID()

	W := n.Workers()
	table := itemset.NewTableFrom(e.owned, W)

	member := cumulate.KeepSet(m.tax, cands)
	view := taxonomy.NewView(m.tax, m.largeFlags, member)

	// The receiver goroutine keeps exclusive ownership of the partitioned
	// table; scan workers only route units into per-worker batchers.
	xsp := n.Span("exchange")
	cp := n.StartExchange(driver.ItemsApplier(func(items []item.Item) {
		// One unit = one k-itemset owned by this node.
		if id := table.Lookup(items); id >= 0 {
			table.Increment(id)
			st.Increments++
		}
	}))
	bats := make([]*driver.Batcher, W)
	for w := range bats {
		bats[w] = cp.NewBatcher()
	}
	wstats := make([]metrics.NodeStats, W)
	wext := driver.WorkerScratch(W, 64)
	wsub := driver.WorkerScratch(W, 2*k)

	// A block that cannot contain any candidate of C_k yields only subsets
	// that miss every node's table, so skipping it changes no count anywhere
	// (it does avoid shipping those dead subsets — pure savings).
	pred := txn.NewPredicate(m.tax, cands)
	started := time.Now()
	err := driver.ScanTxnShards(m.db, pred, W, n.ShardObs("count"), wstats, func(w int, t txn.Transaction) error {
		ws := &wstats[w]
		ws.TxnsScanned++
		ext := cumulate.ExtendFiltered(view, member, wext[w][:0], t.Items)
		wext[w] = ext
		bat := bats[w]
		var sendErr error
		itemset.ForEachSubsetScratch(ext, k, wsub[w], func(sub []item.Item) bool {
			dest := int(itemset.Hash(sub) % uint64(nNodes))
			if dest != self {
				ws.ItemsSent += int64(len(sub))
			}
			if err := bat.AddItems(dest, sub); err != nil {
				sendErr = err
				return false
			}
			return true
		})
		return sendErr
	})
	for _, bat := range bats {
		if err != nil {
			break
		}
		err = bat.FlushAll()
	}
	if ferr := cp.Finish(); err == nil {
		err = ferr
	}
	xsp.End()
	if err != nil {
		return engineOut{}, fmt.Errorf("count support: %w", err)
	}
	driver.MergeWorkerStats(st, wstats)
	st.ScanTime = time.Since(started)
	st.Probes += table.Probes()

	ownedSets, ownedCounts := largeOf(table, n.MinCount())
	return engineOut{
		ownedSets:   ownedSets,
		ownedCounts: ownedCounts,
		fragments:   1,
	}, nil
}

// largeOf extracts the itemsets meeting minCount from a fully counted local
// table, the L_k^n each partitioned node determines individually.
func largeOf(table *itemset.Table, minCount int64) ([][]item.Item, []int64) {
	var sets [][]item.Item
	var counts []int64
	for _, c := range table.Large(minCount) {
		sets = append(sets, c.Items)
		counts = append(counts, c.Count)
	}
	return sets, counts
}
