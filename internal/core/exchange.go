package core

import (
	"fmt"

	"pgarm/internal/cluster"
	"pgarm/internal/item"
	"pgarm/internal/wire"
)

// countPhase runs the count-support exchange of one pass. The node's scan
// side — the node goroutine itself, or Config.Workers sharded scan workers —
// reads the local partition and routes payload units (single k-itemsets for
// HPGM, per-transaction item groups for the H-HPGM family) while a single
// receiver goroutine owns the node's partitioned candidate table and applies
// every unit — remote units from the fabric inbox and local units through an
// in-memory loopback queue. Splitting producer and consumer this way is what
// prevents the classic all-to-all deadlock of two nodes blocked sending into
// each other's full inboxes, and it means scan parallelism never contends on
// the table: workers batch into per-worker send buffers (one batcher per
// worker) and all routed units funnel through this one consumer.
//
// Termination: after the scan workers have joined and every per-worker batch
// is flushed, the main goroutine sends kDone to every peer and closes the
// loopback; the receiver finishes once it has seen kDone from every peer and
// loopback close. Worker sends happen-before the kDone send (the pool joins
// first), so per-sender FIFO delivery still guarantees no data trails a
// peer's kDone.
type countPhase struct {
	n     *node
	apply func(items []item.Item)
	selfq chan []byte
	done  chan error
	stash []cluster.Message // non-count-phase messages that arrived early
	// free recycles drained loopback batch buffers back to the batchers, so
	// steady-state local routing allocates no fresh batch buffers. Remote
	// buffers are never recycled: the fabric hands them to the peer by
	// reference. dec is the receiver-goroutine decode scratch.
	free chan []byte
	dec  []item.Item
	// itemsRecv/bytesRecv count items and payload bytes decoded from
	// *remote* batches (loopback units excluded) — the receiver-side half
	// of the paper's communication metrics. Counting at delivery rather
	// than from fabric counters keeps pass attribution exact even when a
	// peer's pass-end control messages arrive early.
	itemsRecv int64
	bytesRecv int64
}

// startCountPhase launches the receiver. apply is invoked once per payload
// unit, from the receiver goroutine only — it has exclusive access to the
// tables it touches until finish returns.
func (n *node) startCountPhase(apply func(items []item.Item)) *countPhase {
	cp := &countPhase{
		n:     n,
		apply: apply,
		selfq: make(chan []byte, 64),
		done:  make(chan error, 1),
		free:  make(chan []byte, 64),
		dec:   make([]item.Item, 0, 32),
	}
	// Hand any already-stashed count-phase messages (a fast peer may have
	// started this pass before our previous barrier receive completed) to
	// the receiver.
	var pre []cluster.Message
	rest := cp.n.pending[:0]
	for _, m := range n.pending {
		if m.Kind == kData || m.Kind == kDone {
			pre = append(pre, m)
		} else {
			rest = append(rest, m)
		}
	}
	n.pending = rest
	go func() {
		sp := n.beginRecv()
		err := cp.loop(pre)
		sp.Arg("items", cp.itemsRecv)
		sp.Arg("bytes", cp.bytesRecv)
		sp.End()
		cp.done <- err
	}()
	return cp
}

// loop is the receiver body.
func (cp *countPhase) loop(pre []cluster.Message) error {
	peersLeft := cp.n.numPeers()
	for _, m := range pre {
		switch m.Kind {
		case kData:
			if err := cp.applyBatch(m.Payload, true); err != nil {
				return err
			}
		case kDone:
			peersLeft--
		}
	}
	selfq := cp.selfq
	inbox := cp.n.ep.Inbox()
	for peersLeft > 0 || selfq != nil {
		select {
		case m, ok := <-inbox:
			if !ok {
				return fmt.Errorf("core: node %d inbox closed mid count phase", cp.n.id)
			}
			switch m.Kind {
			case kData:
				if err := cp.applyBatch(m.Payload, true); err != nil {
					return err
				}
			case kDone:
				peersLeft--
			default:
				cp.stash = append(cp.stash, m)
			}
		case b, ok := <-selfq:
			if !ok {
				selfq = nil
				continue
			}
			if err := cp.applyBatch(b, false); err != nil {
				return err
			}
		}
	}
	return nil
}

// applyBatch decodes a batch — a concatenation of wire itemsets — and
// applies each unit.
func (cp *countPhase) applyBatch(b []byte, remote bool) error {
	if remote {
		cp.bytesRecv += int64(len(b))
	}
	for off := 0; off < len(b); {
		items, used, err := wire.Items(b[off:], cp.dec[:0])
		if err != nil {
			return fmt.Errorf("core: node %d decode count batch: %w", cp.n.id, err)
		}
		cp.dec = items
		off += used
		if remote {
			cp.itemsRecv += int64(len(items))
		}
		cp.apply(items)
	}
	if !remote {
		// Loopback buffers are owned by this node end to end; hand the
		// drained buffer back to the batchers.
		select {
		case cp.free <- b[:0]:
		default:
		}
	}
	return nil
}

// finish is called by the main goroutine after its scan: it signals end of
// stream, waits for the receiver, and re-queues any stashed messages for
// the pass-end protocol.
func (cp *countPhase) finish() error {
	for p := 0; p < cp.n.ep.N(); p++ {
		if p == cp.n.id {
			continue
		}
		if err := cp.n.ep.Send(p, kDone, nil); err != nil {
			return err
		}
	}
	close(cp.selfq)
	err := <-cp.done
	cp.n.pending = append(cp.n.pending, cp.stash...)
	cp.stash = nil
	cp.n.cur.ItemsReceived += cp.itemsRecv
	cp.n.cur.DataBytesReceived += cp.bytesRecv
	return err
}

// batcher accumulates payload units per destination and flushes them as
// kData messages once a batch exceeds the configured threshold; units for
// the local node go through the loopback queue without touching the fabric.
type batcher struct {
	cp    *countPhase
	bufs  [][]byte
	limit int
}

func (cp *countPhase) newBatcher() *batcher {
	return &batcher{
		cp:    cp,
		bufs:  make([][]byte, cp.n.ep.N()),
		limit: cp.n.cfg.batchBytes(),
	}
}

// add appends one itemset unit for dest, flushing if the batch is full.
func (b *batcher) add(dest int, items []item.Item) error {
	if b.bufs[dest] == nil {
		// Prefer a recycled loopback buffer over a fresh allocation.
		select {
		case buf := <-b.cp.free:
			b.bufs[dest] = buf
		default:
		}
	}
	b.bufs[dest] = wire.AppendItems(b.bufs[dest], items)
	if len(b.bufs[dest]) >= b.limit {
		return b.flush(dest)
	}
	return nil
}

func (b *batcher) flush(dest int) error {
	buf := b.bufs[dest]
	if len(buf) == 0 {
		return nil
	}
	b.bufs[dest] = nil // receiver takes ownership of the buffer
	if dest == b.cp.n.id {
		b.cp.selfq <- buf
		return nil
	}
	return b.cp.n.ep.Send(dest, kData, buf)
}

// flushAll drains every destination buffer.
func (b *batcher) flushAll() error {
	for dest := range b.bufs {
		if err := b.flush(dest); err != nil {
			return err
		}
	}
	return nil
}
