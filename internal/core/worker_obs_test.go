package core

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pgarm/internal/cluster"
	"pgarm/internal/cumulate"
	"pgarm/internal/driver"
	"pgarm/internal/metrics"
	"pgarm/internal/obs"
	"pgarm/internal/txn"
)

// TestMeshMergedClusterTelemetry is the end-to-end check of the cluster
// telemetry plane over a real 4-node TCP mesh (the multi-process deployment
// path, exercised in-process with one tracer per worker so span shipping is
// live):
//
//   - the coordinator's trace is the merged cluster trace: valid trace_event
//     JSON with spans on every node's track group, remote timestamps rebased
//     into the coordinator's clock (all inside the run envelope);
//   - the coordinator's stats merge every worker's pass windows and endpoint
//     totals, and reconcile exactly with telemetry traffic included;
//   - the run report's per-pass skew section agrees with the per-node stats
//     it was computed from;
//   - /debug/cluster serves consistent JSON under concurrent reads while the
//     run is in flight (the race check: run with -race).
func TestMeshMergedClusterTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("mesh run in short mode")
	}
	ds := testDataset(t, 1600)
	const (
		nodes  = 4
		minSup = 0.03
	)
	want, err := cumulate.Mine(ds.Taxonomy, ds.DB, cumulate.Config{MinSupport: minSup})
	if err != nil {
		t.Fatal(err)
	}
	parts := txn.Partition(ds.DB, nodes)

	listeners := make([]net.Listener, nodes)
	addrs := make([]string, nodes)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}

	// Concurrent /debug/cluster readers for the whole run duration.
	view := &driver.ClusterView{}
	var running atomic.Bool
	running.Store(true)
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for running.Load() {
				rec := httptest.NewRecorder()
				view.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/cluster", nil))
				var snap driver.ClusterSnapshot
				if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
					t.Errorf("/debug/cluster body not JSON: %v", err)
					return
				}
				if snap.Pass < 0 || snap.Pass > 64 {
					t.Errorf("/debug/cluster pass = %d", snap.Pass)
					return
				}
			}
		}()
	}

	tracers := make([]*obs.Tracer, nodes)
	results := make([]*Result, nodes)
	errs := make([]error, nodes)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < nodes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ep, mesh, err := cluster.DialMesh(i, addrs, cluster.MeshOptions{Listener: listeners[i], DialTimeout: 10 * time.Second})
			if err != nil {
				errs[i] = err
				return
			}
			defer mesh.Close()
			tracers[i] = obs.NewTracer()
			cfg := Config{
				Algorithm:    HHPGMFGD,
				MinSupport:   minSup,
				Tracer:       tracers[i],
				ClockOffsets: mesh.ClockOffsets(),
			}
			if i == 0 {
				cfg.View = view
			}
			results[i], errs[i] = MineWorker(ds.Taxonomy, parts[i], cfg, ep)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	running.Store(false)
	readers.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		assertSameLarge(t, want, results[i])
	}

	// Coordinator stats are the merged cluster view: every node in every
	// pass, every endpoint, and the accounting balances with the telemetry
	// traffic included.
	stats := results[0].Stats
	if stats.Nodes != nodes || len(stats.Endpoints) != nodes {
		t.Fatalf("merged stats cover %d nodes / %d endpoints, want %d", stats.Nodes, len(stats.Endpoints), nodes)
	}
	for _, p := range stats.Passes {
		if len(p.Nodes) != nodes {
			t.Fatalf("pass %d has %d node windows, want %d", p.Pass, len(p.Nodes), nodes)
		}
	}
	if err := stats.ReconcileEndpoints(); err != nil {
		t.Fatalf("merged reconcile: %v", err)
	}
	// Followers still reconcile locally (their flush fold keeps their own
	// windows tiling), but only see themselves.
	for i := 1; i < nodes; i++ {
		if err := results[i].Stats.ReconcileEndpoints(); err != nil {
			t.Fatalf("worker %d reconcile: %v", i, err)
		}
		if got := len(results[i].Stats.Endpoints); got != 1 {
			t.Fatalf("worker %d has %d endpoints, want 1", i, got)
		}
	}

	// The coordinator's trace is the merged cluster trace.
	assertMergedTrace(t, tracers[0], nodes, elapsed)
	if d := tracers[0].Dropped(); d != 0 {
		t.Fatalf("merged tracer dropped %d spans", d)
	}

	// Report: one skew entry per pass, computed from exactly the per-node
	// stats the pass section carries.
	rep := metrics.BuildReport(stats, tracers[0])
	if len(rep.Skew) != len(rep.Passes) {
		t.Fatalf("report has %d skew entries over %d passes", len(rep.Skew), len(rep.Passes))
	}
	for i, s := range rep.Skew {
		if s.Pass != rep.Passes[i].Pass {
			t.Fatalf("skew[%d].Pass = %d, want %d", i, s.Pass, rep.Passes[i].Pass)
		}
		if recomputed := metrics.ComputeSkew(stats.Passes[i].Pass, stats.Passes[i].Nodes); recomputed != s {
			t.Fatalf("skew[%d] = %+v, recomputed %+v", i, s, recomputed)
		}
		if s.Straggler < 0 || s.Straggler >= nodes {
			t.Fatalf("skew[%d].Straggler = %d", i, s.Straggler)
		}
	}

	// The live view settled into the finished state.
	snap := view.Snapshot()
	if !snap.Done || snap.Nodes != nodes || snap.Skew == nil {
		t.Fatalf("final view = %+v", snap)
	}
	for _, p := range snap.Progress {
		if p.Lag != 0 {
			t.Fatalf("final lag nonzero: %+v", snap.Progress)
		}
	}
}

// assertMergedTrace validates the coordinator's merged trace: structurally
// valid trace_event JSON, at least one complete span on every node's track
// group (pid = node), and every rebased timestamp inside the run envelope —
// a remote span rebased with a wildly wrong offset would land far outside it.
func assertMergedTrace(t *testing.T, tr *obs.Tracer, nodes int, elapsed time.Duration) {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var file struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	// Envelope in trace microseconds, with slack for the gap between the
	// workers' tracer epochs and for clock-offset estimation error (loopback
	// offsets are microseconds; the slack is dominated by goroutine startup).
	slackUS := float64(2 * time.Second / time.Microsecond)
	elapsedUS := float64(elapsed / time.Microsecond)
	spansPerNode := make([]int, nodes)
	for i, ev := range file.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Pid < 0 || ev.Pid >= nodes {
			t.Fatalf("event %d on unexpected pid %d", i, ev.Pid)
		}
		spansPerNode[ev.Pid]++
		if ev.TS < -slackUS || ev.TS+ev.Dur > elapsedUS+slackUS {
			t.Fatalf("span %q on node %d at [%f, %f]us outside run envelope [0, %f]us",
				ev.Name, ev.Pid, ev.TS, ev.TS+ev.Dur, elapsedUS)
		}
	}
	for node, n := range spansPerNode {
		if n == 0 {
			t.Fatalf("merged trace has no spans for node %d (per-node counts: %v)", node, spansPerNode)
		}
	}
}
