package core

import (
	"fmt"

	"pgarm/internal/cluster"
	"pgarm/internal/driver"
	"pgarm/internal/taxonomy"
	"pgarm/internal/txn"
)

// MineWorker runs a single node of the mining protocol over a caller-
// provided endpoint — the entry point for true multi-process shared-nothing
// clusters (see cmd/pgarm-worker and cluster.DialMesh). Every worker must
// run the same Config; node 0 acts as coordinator.
//
// The returned Result carries the global large itemsets (identical on every
// node after the final broadcast). On the coordinator the Stats also merge
// every worker's per-pass counters and endpoint totals — shipped at each pass
// barrier over the telemetry plane — into a full cluster view; on follower
// nodes they cover only the local node.
func MineWorker(tax *taxonomy.Taxonomy, local txn.Scanner, cfg Config, ep cluster.Endpoint) (*Result, error) {
	if cfg.MinSupport <= 0 || cfg.MinSupport > 1 {
		return nil, fmt.Errorf("core: minimum support %g out of (0,1]", cfg.MinSupport)
	}
	if _, err := ParseAlgorithm(string(cfg.Algorithm)); err != nil {
		return nil, err
	}
	m, err := newItemsetMiner(tax, local, cfg, newCandCache(tax))
	if err != nil {
		return nil, err
	}
	nd, elapsed, err := driver.RunWorker(ep, cfg.driverConfig(), m)
	if err != nil {
		return nil, err
	}

	res := &Result{Large: m.large}
	res.Stats = driver.AssembleClusterStats(string(cfg.Algorithm), cfg.MinSupport, nd, elapsed)
	return res, nil
}
