package core

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"pgarm/internal/cumulate"
	"pgarm/internal/metrics"
	"pgarm/internal/obs"
)

// traceFullSweep reports whether the env-gated full observability sweep is on
// (CI sets PGARM_TEST_TRACE=1 to run every algorithm over both fabrics with
// tracing enabled, under -race).
func traceFullSweep() bool { return os.Getenv("PGARM_TEST_TRACE") == "1" }

// validateTraceJSON writes the tracer's Chrome trace and checks it is
// structurally valid trace_event JSON: a traceEvents array of well-formed
// "X" (complete) and "M" (metadata) events.
func validateTraceJSON(t *testing.T, tr *obs.Tracer) map[string]int {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var file struct {
		TraceEvents     []json.RawMessage `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", file.DisplayTimeUnit)
	}
	names := make(map[string]int)
	for i, raw := range file.TraceEvents {
		var ev struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		}
		if err := json.Unmarshal(raw, &ev); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		switch ev.Ph {
		case "X":
			if ev.Name == "" || ev.TS < 0 || ev.Dur < 0 || ev.Pid < 0 || ev.Tid < 0 {
				t.Fatalf("event %d malformed: %s", i, raw)
			}
			names[ev.Name]++
		case "M":
			// metadata events carry process/thread names
		default:
			t.Fatalf("event %d has unexpected phase %q", i, ev.Ph)
		}
	}
	return names
}

// TestObservabilityEndToEnd runs real Mine calls with the tracer, registry
// and progress callbacks attached and checks the whole observability surface:
// results unchanged, per-pass per-kind byte accounting reconciling exactly
// with the fabric endpoint totals, a valid Chrome trace with the expected
// span taxonomy, live registry series, and coordinator pass callbacks.
func TestObservabilityEndToEnd(t *testing.T) {
	ds := testDataset(t, 2000)
	const minSup = 0.02
	want, err := cumulate.Mine(ds.Taxonomy, ds.DB, cumulate.Config{MinSupport: minSup})
	if err != nil {
		t.Fatalf("cumulate: %v", err)
	}

	algos := []Algorithm{HPGM, HHPGM, NPGM}
	fabrics := []FabricKind{FabricChan}
	if traceFullSweep() {
		algos = Algorithms()
		fabrics = append(fabrics, FabricTCP)
	}
	for _, fk := range fabrics {
		for _, algo := range algos {
			algo, fk := algo, fk
			name := string(algo)
			if fk == FabricTCP {
				name += "/tcp"
			}
			t.Run(name, func(t *testing.T) {
				tr := obs.NewTracer()
				reg := obs.NewRegistry()
				type passEvt struct {
					pass, cands int
				}
				var starts []passEvt
				var done []PassProgress
				cfg := Config{
					Algorithm:   algo,
					MinSupport:  minSup,
					Workers:     3,
					Fabric:      fk,
					Tracer:      tr,
					Registry:    reg,
					OnPassStart: func(pass, cands int) { starts = append(starts, passEvt{pass, cands}) },
					OnPass:      func(p PassProgress) { done = append(done, p) },
				}
				res, err := Mine(ds.Taxonomy, partsOf(ds.DB, 3), cfg)
				if err != nil {
					t.Fatalf("mine: %v", err)
				}
				assertSameLarge(t, want, res)

				// Per-pass windows must tile the endpoints' lifetime totals,
				// in aggregate and per message kind.
				if err := res.Stats.ReconcileEndpoints(); err != nil {
					t.Fatalf("reconcile: %v", err)
				}

				// Trace: valid JSON, every expected span kind present.
				if tr.Spans() == 0 {
					t.Fatal("tracer recorded no spans")
				}
				if tr.Dropped() != 0 {
					t.Fatalf("tracer dropped %d spans", tr.Dropped())
				}
				names := validateTraceJSON(t, tr)
				wantSpans := []string{"size-exchange", "pass 1", "generate", "barrier", "scan"}
				if algo != NPGM {
					wantSpans = append(wantSpans, "partition", "exchange", "count", "recv")
				}
				for _, n := range wantSpans {
					if names[n] == 0 {
						t.Errorf("trace has no %q span (got %v)", n, names)
					}
				}

				// Registry: per-node series exist and counted real work.
				var prom bytes.Buffer
				if err := reg.WritePrometheus(&prom); err != nil {
					t.Fatalf("WritePrometheus: %v", err)
				}
				text := prom.String()
				for _, series := range []string{
					`pgarm_txns_scanned_total{node="0"}`,
					`pgarm_probes_total{node="2"}`,
					`pgarm_barrier_wait_seconds_count{node="1"}`,
					`pgarm_scan_shard_seconds_count{node="0"}`,
				} {
					if !strings.Contains(text, series) {
						t.Errorf("registry output missing %s", series)
					}
				}

				// Coordinator callbacks: one start + one completion per pass
				// (pass 1 reports completion only), ascending, with the pass
				// window's byte counts attached.
				passes := len(res.Stats.Passes)
				if len(done) != passes {
					t.Fatalf("OnPass fired %d times over %d passes", len(done), passes)
				}
				if len(starts) != passes-1 {
					t.Fatalf("OnPassStart fired %d times over %d passes", len(starts), passes)
				}
				for i, p := range done {
					if p.Pass != i+1 {
						t.Fatalf("OnPass[%d].Pass = %d", i, p.Pass)
					}
					if p.Candidates != res.Stats.Passes[i].Candidates {
						t.Fatalf("pass %d: callback candidates %d, stats %d", p.Pass, p.Candidates, res.Stats.Passes[i].Candidates)
					}
					coord := res.Stats.Passes[i].Nodes[0]
					if i < len(done)-1 {
						if p.BytesIn != coord.BytesReceived || p.BytesOut != coord.BytesSent {
							t.Fatalf("pass %d: callback bytes (%d in, %d out) != coordinator window (%d in, %d out)",
								p.Pass, p.BytesIn, p.BytesOut, coord.BytesReceived, coord.BytesSent)
						}
					} else {
						// The last pass window additionally absorbs the
						// run-end telemetry flush, folded in after the
						// callback fired so the windows keep tiling the
						// endpoint totals — it can only exceed the callback.
						if p.BytesIn > coord.BytesReceived || p.BytesOut > coord.BytesSent {
							t.Fatalf("pass %d: callback bytes (%d in, %d out) exceed coordinator window (%d in, %d out)",
								p.Pass, p.BytesIn, p.BytesOut, coord.BytesReceived, coord.BytesSent)
						}
					}
				}

				// The run report built from this run round-trips as JSON and
				// carries the span rollups.
				rep := metrics.BuildReport(res.Stats, tr)
				if rep.Version != metrics.ReportVersion || len(rep.Spans) == 0 || len(rep.Endpoints) != 3 {
					t.Fatalf("report shape: version %d, %d spans, %d endpoints", rep.Version, len(rep.Spans), len(rep.Endpoints))
				}
				if _, err := json.Marshal(rep); err != nil {
					t.Fatalf("report marshal: %v", err)
				}
			})
		}
	}
}

// TestReconcileWithoutObservability checks that the per-pass accounting
// reconciles when no tracer or registry is configured — the monotonic
// snapshots are part of the pass protocol itself, not of the tracing layer.
func TestReconcileWithoutObservability(t *testing.T) {
	ds := testDataset(t, 1500)
	for _, algo := range []Algorithm{HPGM, HHPGMFGD} {
		res, err := Mine(ds.Taxonomy, partsOf(ds.DB, 4), Config{
			Algorithm:  algo,
			MinSupport: 0.02,
		})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if err := res.Stats.ReconcileEndpoints(); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
}

// TestDataBytesSentMatchesDataKind pins the Table 6 sent-side attribution:
// NodeStats.DataBytesSent must equal the pass window's kData byte slice.
func TestDataBytesSentMatchesDataKind(t *testing.T) {
	ds := testDataset(t, 1500)
	res, err := Mine(ds.Taxonomy, partsOf(ds.DB, 3), Config{
		Algorithm:  HPGM,
		MinSupport: 0.02,
	})
	if err != nil {
		t.Fatalf("mine: %v", err)
	}
	sawData := false
	for _, ps := range res.Stats.Passes {
		for _, ns := range ps.Nodes {
			var kd int64
			for _, kio := range ns.ByKind {
				if kio.Name == "data" {
					kd = kio.BytesSent
				}
			}
			if ns.DataBytesSent != kd {
				t.Fatalf("pass %d node %d: DataBytesSent %d != kData window %d", ps.Pass, ns.Node, ns.DataBytesSent, kd)
			}
			if kd > 0 {
				sawData = true
			}
		}
	}
	if !sawData {
		t.Fatal("no pass shipped any count-support data; test dataset too small")
	}
}
