package core

import (
	"fmt"

	"pgarm/internal/driver"
	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/metrics"
	"pgarm/internal/taxonomy"
	"pgarm/internal/txn"
	"pgarm/internal/wire"
)

// itemsetMiner is the itemset-mining half of a node: the driver.Miner that
// plugs the paper's six algorithms into the shared-nothing runtime. One
// instance per node; the runtime calls its hooks from the node goroutine in
// protocol order.
type itemsetMiner struct {
	tax   *taxonomy.Taxonomy
	db    txn.Scanner
	cfg   Config
	cands *candCache
	eng   engine

	// Global mining state, identical on every node after each barrier.
	itemCounts []int64 // global pass-1 counts per item (after reduce)
	largeFlags []bool  // large[i] per item
	prev       [][]item.Item
	curCands   [][]item.Item // C_k of the pass in flight

	// Barrier contribution of the pass in flight (see engineOut); the
	// coordinator merges its own share from here instead of round-tripping it
	// through the wire encoding.
	out engineOut

	// Result accumulation, filled where the runtime keeps results.
	large [][]itemset.Counted
}

func newItemsetMiner(tax *taxonomy.Taxonomy, db txn.Scanner, cfg Config, cands *candCache) (*itemsetMiner, error) {
	m := &itemsetMiner{tax: tax, db: db, cfg: cfg, cands: cands}
	eng, err := newEngine(m)
	if err != nil {
		return nil, err
	}
	m.eng = eng
	return m, nil
}

func (m *itemsetMiner) LocalSize() int { return m.db.Len() }

func (m *itemsetMiner) NumItems() int { return m.tax.NumItems() }

// CountPass1 counts every item and all its ancestors over the local
// partition. All algorithms share it: C_1 is just an array indexed by item,
// so there is nothing to partition.
func (m *itemsetMiner) CountPass1(n *driver.Node, st *metrics.NodeStats) ([]int64, error) {
	W := n.Workers()
	wcounts := driver.WorkerVectors(W, m.tax.NumItems())
	wstats := make([]metrics.NodeStats, W)
	wext := driver.WorkerScratch(W, 64)
	// Pass 1 counts every item, so no block can be skipped (nil predicate) —
	// but a block source still parallelizes the decode itself across workers.
	err := driver.ScanTxnShards(m.db, nil, W, n.ShardObs("scan"), wstats, func(w int, t txn.Transaction) error {
		wstats[w].TxnsScanned++
		ext := m.tax.ExtendTransaction(wext[w][:0], t.Items)
		wext[w] = ext
		counts := wcounts[w]
		for _, x := range ext {
			counts[x]++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	counts := driver.MergeWorkerVectors(wcounts)
	driver.MergeWorkerStats(st, wstats)
	return counts, nil
}

// FinishPass1 consumes the globally reduced pass-1 counts and derives the
// replicated L_1 state every later pass builds on.
func (m *itemsetMiner) FinishPass1(n *driver.Node, global []int64) (int, error) {
	m.itemCounts = global
	m.largeFlags = make([]bool, m.tax.NumItems())
	var l1 []itemset.Counted
	for i, c := range global {
		if c >= n.MinCount() {
			m.largeFlags[i] = true
			m.prev = append(m.prev, []item.Item{item.Item(i)})
			l1 = append(l1, itemset.Counted{Items: []item.Item{item.Item(i)}, Count: c})
		}
	}
	if n.Keep() {
		m.large = append(m.large, l1)
	}
	return len(l1), nil
}

// Generate materializes C_k from L_{k-1}; deterministic on every node (same
// L_{k-1}, same generator), materialized once and shared read-only via
// candCache. The first node goroutine per pass runs the sharded generator
// across its scan workers, with each shard visible as a worker-lane sub-span.
func (m *itemsetMiner) Generate(n *driver.Node, k int) (int, error) {
	m.curCands = m.cands.generate(k, m.prev, n.Workers(),
		n.BoundaryObs("generate shard").Hook())
	return len(m.curCands), nil
}

// PlanPass delegates pass k's candidate-to-node assignment to the algorithm
// engine. prev is the cluster skew snapshot the coordinator broadcast for
// this pass (nil in the first passes); adaptive H-HPGM configurations use it
// to escalate duplication per hot taxonomy subtree.
func (m *itemsetMiner) PlanPass(n *driver.Node, k int, prev *metrics.SkewReport) (driver.PlanDecision, error) {
	dec, err := m.eng.plan(n, k, m.curCands, prev)
	if err != nil {
		return driver.PlanDecision{}, err
	}
	dec.Candidates = len(m.curCands)
	return dec, nil
}

// CountPass delegates pass k's count-support phase to the algorithm engine
// (over the assignment PlanPass computed) and keeps the full outcome for the
// barrier hooks.
func (m *itemsetMiner) CountPass(n *driver.Node, k int, st *metrics.NodeStats) (driver.PassOutcome, error) {
	out, err := m.eng.pass(n, k, m.curCands, st)
	if err != nil {
		return driver.PassOutcome{}, err
	}
	m.out = out
	po := driver.PassOutcome{
		DupCounts:  out.dupCounts,
		Duplicated: out.duplicated,
		Fragments:  out.fragments,
	}
	if !n.IsCoord() {
		po.Owned = wire.AppendCounted(nil, out.ownedSets, out.ownedCounts)
	}
	return po, nil
}

// MergeFrequents merges the coordinator's own owned share, the peers' owned
// frequents and the reduced replicated counts into the global L_k.
func (m *itemsetMiner) MergeFrequents(n *driver.Node, k int, peerOwned [][]byte, dupTotal []int64) ([]byte, int, error) {
	var all []itemset.Counted
	for i := range m.out.ownedSets {
		all = append(all, itemset.Counted{Items: m.out.ownedSets[i], Count: m.out.ownedCounts[i]})
	}
	for _, p := range peerOwned {
		sets, counts, _, err := wire.Counted(p)
		if err != nil {
			return nil, 0, fmt.Errorf("core: decode owned larges: %w", err)
		}
		for i := range sets {
			all = append(all, itemset.Counted{Items: sets[i], Count: counts[i]})
		}
	}
	for i, c := range dupTotal {
		if c >= n.MinCount() {
			all = append(all, itemset.Counted{Items: m.out.dupSets[i], Count: c})
		}
	}
	itemset.SortCounted(all)

	sets := make([][]item.Item, len(all))
	counts := make([]int64, len(all))
	for i, c := range all {
		sets[i] = c.Items
		counts[i] = c.Count
	}
	m.record(n, all)
	return wire.AppendCounted(nil, sets, counts), len(all), nil
}

// FinishPass decodes the coordinator's L_k broadcast on a follower.
func (m *itemsetMiner) FinishPass(n *driver.Node, _ int, payload []byte) (int, error) {
	sets, counts, _, err := wire.Counted(payload)
	if err != nil {
		return 0, fmt.Errorf("core: decode L_k broadcast: %w", err)
	}
	lk := make([]itemset.Counted, len(sets))
	for i := range sets {
		lk[i] = itemset.Counted{Items: sets[i], Count: counts[i]}
	}
	m.record(n, lk)
	return len(lk), nil
}

// record stores L_k (mirroring the sequential baseline, an empty L_k
// terminates the run and is not recorded as a level) and stages it as the
// next pass's generation input.
func (m *itemsetMiner) record(n *driver.Node, lk []itemset.Counted) {
	if n.Keep() && len(lk) > 0 {
		m.large = append(m.large, lk)
	}
	m.prev = m.prev[:0]
	for _, c := range lk {
		m.prev = append(m.prev, c.Items)
	}
}
