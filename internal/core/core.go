// Package core implements the paper's contribution: six parallel algorithms
// for mining generalized association rules with a classification hierarchy
// on a shared-nothing cluster.
//
//	NPGM        replicates the candidate itemsets on every node, fragmenting
//	            them when they exceed one node's memory (re-scanning the
//	            local database once per fragment).
//	HPGM        hash-partitions the candidates over the nodes; every
//	            k-subset of every (ancestor-extended) transaction is shipped
//	            to its owner.
//	H-HPGM      partitions by the hash of the candidate's *root* items, so a
//	            whole hierarchy lives on one node and only the
//	            closest-to-bottom large items travel.
//	H-HPGM-TGD  H-HPGM plus duplication of the hottest whole trees into the
//	            nodes' free memory (counted locally everywhere).
//	H-HPGM-PGD  duplicates the hottest leaf-level candidates plus all their
//	            ancestor candidates (path grain).
//	H-HPGM-FGD  duplicates the hottest candidates at any level plus their
//	            ancestor candidates (fine grain).
//
// Every algorithm produces exactly the large itemsets and support counts of
// sequential Cumulate; only communication volume, memory use and load
// balance differ — which is what the paper (and this repo's experiment
// harness) measures.
package core

import (
	"fmt"
	"time"

	"pgarm/internal/driver"
	"pgarm/internal/itemset"
	"pgarm/internal/metrics"
	"pgarm/internal/obs"
	"pgarm/internal/taxonomy"
	"pgarm/internal/txn"
)

// Algorithm selects one of the paper's six parallel miners.
type Algorithm string

// The six algorithms of the paper, §3.
const (
	NPGM     Algorithm = "NPGM"
	HPGM     Algorithm = "HPGM"
	HHPGM    Algorithm = "H-HPGM"
	HHPGMTGD Algorithm = "H-HPGM-TGD"
	HHPGMPGD Algorithm = "H-HPGM-PGD"
	HHPGMFGD Algorithm = "H-HPGM-FGD"
)

// Algorithms lists every implemented algorithm in presentation order.
func Algorithms() []Algorithm {
	return []Algorithm{NPGM, HPGM, HHPGM, HHPGMTGD, HHPGMPGD, HHPGMFGD}
}

// ParseAlgorithm resolves a name (as printed by the Algorithm constants,
// case-sensitive) to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	for _, a := range Algorithms() {
		if string(a) == s {
			return a, nil
		}
	}
	return "", fmt.Errorf("core: unknown algorithm %q", s)
}

// FabricKind selects the interconnect emulation (see internal/driver).
type FabricKind = driver.FabricKind

const (
	// FabricChan runs the nodes over in-process channels (default).
	FabricChan = driver.FabricChan
	// FabricTCP runs the nodes over loopback TCP connections.
	FabricTCP = driver.FabricTCP
)

// PassProgress is the per-pass progress callback payload (Config.OnPass),
// delivered on the coordinator when a pass completes.
type PassProgress = driver.PassProgress

// Config parameterizes a parallel mining run.
type Config struct {
	Algorithm  Algorithm
	MinSupport float64 // fraction of |D|, e.g. 0.003 for 0.3%
	MaxK       int     // 0 = run until L_k is empty

	// MemoryBudget is the per-node candidate memory in bytes (the paper's
	// M, 256MB on the SP-2). It drives NPGM fragmentation and the free
	// space available for TGD/PGD/FGD duplication. 0 means unlimited: NPGM
	// never fragments and the duplicating variants copy everything.
	MemoryBudget int64

	// Adaptive enables skew-adaptive duplication granules for the H-HPGM
	// family: each pass's plan phase inspects the previous complete skew
	// snapshot and, when the barrier-wait imbalance crosses EscalateAt,
	// escalates the duplication granule for the straggler's hot taxonomy
	// subtrees one level (H-HPGM -> TGD -> PGD -> FGD), or straight to FGD
	// past JumpAt. The decision is computed from globally broadcast state,
	// so every node derives the identical plan and results stay
	// bit-identical to the static run's reference (sequential Cumulate).
	// Ignored by NPGM and HPGM, which have no granule to adapt.
	Adaptive bool
	// EscalateAt is the barrier-wait max/mean ratio that triggers a one-level
	// escalation; 0 means the default 1.25.
	EscalateAt float64
	// JumpAt is the ratio past which escalation jumps straight to the fine
	// grain; 0 means the default 4.0.
	JumpAt float64

	// Workers is the number of scan goroutines each node uses over its
	// local partition during pass 1 and the count-support phase. 0 or 1
	// runs the scan on the node goroutine itself (the pre-parallel
	// behaviour); larger values shard the partition across a per-node
	// worker pool with per-worker count vectors and scratch buffers, merged
	// deterministically at the pass barrier — results are bit-identical to
	// the sequential scan for every setting. The paper's cluster dimension
	// (nodes) and this intra-node dimension compose: total parallelism is
	// nodes × workers.
	Workers int

	Fabric       FabricKind
	FabricBuffer int // per-inbox message buffer; 0 = default
	BatchBytes   int // count-support send batching threshold; 0 = default (4KB)

	// Tracer, when non-nil, records phase spans for every node (pass,
	// generate, scan shards, exchange, barrier) for Chrome-trace export.
	// Nil tracing costs nothing on the hot path.
	Tracer *obs.Tracer
	// Registry, when non-nil, receives live counters/gauges/histograms per
	// node (current pass, probes, scan and barrier timings) for /metrics.
	Registry *obs.Registry
	// OnPassStart, when non-nil, fires on the coordinator as each pass
	// begins, before any scanning.
	OnPassStart func(pass, candidates int)
	// OnPass, when non-nil, fires on the coordinator as each pass completes.
	OnPass func(PassProgress)
	// ClockOffsets, when non-nil on the coordinator of a mesh run, holds the
	// per-node clock offsets estimated during DialMesh (Mesh.ClockOffsets);
	// the telemetry plane uses them to rebase remote span timestamps into the
	// coordinator's clock when merging cluster traces.
	ClockOffsets []time.Duration
	// View, when non-nil, receives live cluster-run state (current pass,
	// per-node progress, skew snapshots) for the /debug/cluster endpoint.
	View *driver.ClusterView
}

func (c *Config) escalateAt() float64 {
	if c.EscalateAt <= 0 {
		return 1.25
	}
	return c.EscalateAt
}

func (c *Config) jumpAt() float64 {
	if c.JumpAt <= 0 {
		return 4.0
	}
	return c.JumpAt
}

// driverConfig maps the runtime-relevant half of the Config onto the shared
// pass driver's knobs; the mining-relevant half (Algorithm, MemoryBudget)
// stays with the itemset miner.
func (c *Config) driverConfig() driver.Config {
	return driver.Config{
		MinSupport:   c.MinSupport,
		MaxK:         c.MaxK,
		Workers:      c.Workers,
		BatchBytes:   c.BatchBytes,
		Tracer:       c.Tracer,
		Registry:     c.Registry,
		OnPassStart:  c.OnPassStart,
		OnPass:       c.OnPass,
		ClockOffsets: c.ClockOffsets,
		View:         c.View,
	}
}

// Result is the outcome of a parallel run.
type Result struct {
	// Large[k-1] holds the global large k-itemsets with exact support
	// counts, lexicographically ordered — identical to sequential Cumulate.
	Large [][]itemset.Counted
	Stats *metrics.RunStats
}

// LargeK returns the large k-itemsets, or nil when the run ended before k.
func (r *Result) LargeK(k int) []itemset.Counted {
	if k < 1 || k > len(r.Large) {
		return nil
	}
	return r.Large[k-1]
}

// All returns every large itemset across all passes.
func (r *Result) All() []itemset.Counted {
	var out []itemset.Counted
	for _, l := range r.Large {
		out = append(out, l...)
	}
	return out
}

// SupportIndex builds itemset-key -> support over all large itemsets.
func (r *Result) SupportIndex() map[string]int64 {
	idx := make(map[string]int64)
	for _, level := range r.Large {
		for _, c := range level {
			idx[itemset.Key(c.Items)] = c.Count
		}
	}
	return idx
}

// Mine runs the configured algorithm over a cluster of len(parts) nodes;
// parts[i] is node i's local database partition (its simulated local disk).
// The taxonomy is shared read-only, as the paper assumes (the hierarchy is
// catalog metadata, replicated on every node).
func Mine(tax *taxonomy.Taxonomy, parts []txn.Scanner, cfg Config) (*Result, error) {
	n := len(parts)
	if n == 0 {
		return nil, fmt.Errorf("core: no database partitions")
	}
	if cfg.MinSupport <= 0 || cfg.MinSupport > 1 {
		return nil, fmt.Errorf("core: minimum support %g out of (0,1]", cfg.MinSupport)
	}
	if _, err := ParseAlgorithm(string(cfg.Algorithm)); err != nil {
		return nil, err
	}

	fabric, err := driver.NewFabric(cfg.Fabric, n, cfg.FabricBuffer)
	if err != nil {
		return nil, err
	}
	defer fabric.Close()

	// The candidate cache shares each pass's replicated derivations between
	// the in-process node goroutines; every node still holds its own miner.
	cache := newCandCache(tax)
	miners := make([]driver.Miner, n)
	coord := (*itemsetMiner)(nil)
	for i := 0; i < n; i++ {
		m, err := newItemsetMiner(tax, parts[i], cfg, cache)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			coord = m
		}
		miners[i] = m
	}

	nodes, elapsed, err := driver.Run(fabric, cfg.driverConfig(), miners)
	if err != nil {
		return nil, err
	}

	res := &Result{Large: coord.large}
	res.Stats = driver.AssembleStats(string(cfg.Algorithm), cfg.MinSupport, nodes, elapsed)
	return res, nil
}
