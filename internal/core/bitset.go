package core

import "math/bits"

// bitset is a fixed-size bit vector over candidate ids. It replaces the
// map[int32]bool duplication flag in the pass plan: one word per 64
// candidates instead of one map entry per duplicated candidate, and get is a
// shift-and-mask on the count-support hot path.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) get(i int32) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

func (b bitset) set(i int32) { b[i>>6] |= 1 << (uint(i) & 63) }

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}
