package core

import (
	"testing"

	"pgarm/internal/cumulate"
	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/taxonomy"
)

// TestAccountingSymmetry checks the exact communication invariant: per
// pass, Σ count-support data bytes sent == Σ received across the cluster
// (self-loopback bypasses the fabric; every remote payload is conserved).
// DataBytes* counters are exact by construction — the sent side is
// snapshotted before any pass-end control traffic, and the received side
// is counted at delivery. (The raw whole-pass Bytes*/Msgs* counters are
// intentionally not asserted: nodes cross pass barriers at slightly
// different times, so their attribution can shift between adjacent passes;
// see the metrics.NodeStats docs.)
func TestAccountingSymmetry(t *testing.T) {
	ds := testDataset(t, 2000)
	for _, alg := range Algorithms() {
		t.Run(string(alg), func(t *testing.T) {
			res, err := Mine(ds.Taxonomy, partsOf(ds.DB, 4), Config{
				Algorithm: alg, MinSupport: 0.02, MaxK: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, ps := range res.Stats.Passes {
				var dataSent, dataRecv int64
				for _, ns := range ps.Nodes {
					dataSent += ns.DataBytesSent
					dataRecv += ns.DataBytesReceived
				}
				if dataSent != dataRecv {
					t.Errorf("pass %d count-support: %d bytes sent vs %d received",
						ps.Pass, dataSent, dataRecv)
				}
			}
		})
	}
}

// TestPartitionCompleteness verifies the H-HPGM invariant directly: every
// candidate has exactly one owner under the root hash, and owners agree
// with the candidate's root vector.
func TestPartitionCompleteness(t *testing.T) {
	tax := taxonomy.MustBalanced(200, 5, 4)
	large := make([]item.Item, 0, 60)
	for i := 0; i < 60; i++ {
		large = append(large, item.Item(i*3%200))
	}
	large = item.Dedup(large)
	prev := make([][]item.Item, len(large))
	for i, it := range large {
		prev[i] = []item.Item{it}
	}
	cands := cumulate.GenerateCandidates(tax, prev, 2)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	const nodes = 7
	owned := make(map[string]int)
	for _, c := range cands {
		vec := rootVector(tax, nil, c)
		owner := int(itemset.Hash(vec) % nodes)
		key := itemset.Key(c)
		if prevOwner, ok := owned[key]; ok && prevOwner != owner {
			t.Fatalf("candidate %v owned by two nodes", c)
		}
		owned[key] = owner
		// Same root vector => same owner.
		other := rootVector(tax, nil, c)
		if int(itemset.Hash(other)%nodes) != owner {
			t.Fatalf("owner not a function of the root vector for %v", c)
		}
	}
	if len(owned) != len(cands) {
		t.Fatalf("owned %d of %d candidates", len(owned), len(cands))
	}
}

// TestHierarchyEliminatesAncestorTraffic checks the qualitative claim of
// §3.3 on a dataset with deep hierarchies: H-HPGM's shipped item count must
// be bounded by roughly the number of transaction items (closest-to-bottom
// forms), while HPGM ships every subset of the ancestor extension.
func TestHierarchyEliminatesAncestorTraffic(t *testing.T) {
	ds := testDataset(t, 2500)
	const nodes = 5
	run := func(alg Algorithm) int64 {
		res, err := Mine(ds.Taxonomy, partsOf(ds.DB, nodes), Config{
			Algorithm: alg, MinSupport: 0.02, MaxK: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		ps := res.Stats.Pass(2)
		if ps == nil {
			t.Fatal("no pass 2")
		}
		return ps.TotalItemsSent()
	}
	hpgm := run(HPGM)
	hhpgm := run(HHPGM)
	if hhpgm*2 >= hpgm {
		t.Errorf("expected >2x item-traffic reduction: HPGM %d, H-HPGM %d", hpgm, hhpgm)
	}
	t.Logf("items shipped at pass 2: HPGM %d, H-HPGM %d (%.1fx)", hpgm, hhpgm, float64(hpgm)/float64(hhpgm))
}

// TestDuplicatedCandidatesNeverTravel verifies the TGD communication claim:
// with everything duplicated (unlimited budget), the duplicating variants
// exchange no count-support data at all.
func TestDuplicatedCandidatesNeverTravel(t *testing.T) {
	ds := testDataset(t, 1200)
	for _, alg := range []Algorithm{HHPGMTGD, HHPGMPGD, HHPGMFGD} {
		res, err := Mine(ds.Taxonomy, partsOf(ds.DB, 4), Config{
			Algorithm: alg, MinSupport: 0.03, MaxK: 2, // MemoryBudget 0 = duplicate all
		})
		if err != nil {
			t.Fatal(err)
		}
		ps := res.Stats.Pass(2)
		if ps == nil {
			t.Fatal("no pass 2")
		}
		if got := ps.TotalItemsSent(); got != 0 {
			t.Errorf("%s with full duplication still shipped %d items", alg, got)
		}
		if ps.Duplicated != ps.Candidates {
			t.Errorf("%s duplicated %d of %d", alg, ps.Duplicated, ps.Candidates)
		}
	}
}

// TestStatsShape sanity-checks the assembled RunStats.
func TestStatsShape(t *testing.T) {
	ds := testDataset(t, 1000)
	res, err := Mine(ds.Taxonomy, partsOf(ds.DB, 3), Config{
		Algorithm: HHPGM, MinSupport: 0.03,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Algorithm != "H-HPGM" || st.Nodes != 3 {
		t.Errorf("header wrong: %+v", st)
	}
	if len(st.Passes) < 2 {
		t.Fatalf("expected >=2 passes, got %d", len(st.Passes))
	}
	for _, ps := range st.Passes {
		if len(ps.Nodes) != 3 {
			t.Errorf("pass %d has %d node stats", ps.Pass, len(ps.Nodes))
		}
		var txns int64
		for _, ns := range ps.Nodes {
			txns += ns.TxnsScanned
		}
		if txns != int64(ds.DB.Len()) {
			t.Errorf("pass %d scanned %d transactions, want %d", ps.Pass, txns, ds.DB.Len())
		}
		if ps.Pass >= 2 && ps.Candidates == 0 {
			t.Errorf("pass %d candidates not recorded", ps.Pass)
		}
	}
	if st.String() == "" {
		t.Error("empty String")
	}
}
