package core

import (
	"fmt"
	"time"

	"pgarm/internal/cumulate"
	"pgarm/internal/driver"
	"pgarm/internal/item"
	"pgarm/internal/metrics"
	"pgarm/internal/taxonomy"
	"pgarm/internal/txn"
)

// engineOut is one node's barrier contribution for a pass: the frequents it
// owns outright, the dense count vector of its replicated candidates (with
// the deterministically identical itemset list behind it — only the
// coordinator's copy is read), and the pass metadata.
type engineOut struct {
	ownedSets   [][]item.Item
	ownedCounts []int64
	dupSets     [][]item.Item
	dupCounts   []int64
	duplicated  int
	fragments   int
}

// engine is one algorithm's per-pass behaviour. The runtime (internal/driver)
// owns candidate generation and the L_k barrier; the engine owns candidate
// partitioning (the plan phase) and the count-support phase (the execute
// phase).
type engine interface {
	// plan computes pass k's candidate-to-node assignment — a pure function
	// of globally replicated state plus the broadcast skew hint, so every
	// node derives the identical plan. Any state the count phase needs
	// (owners, duplication choice) is held by the engine.
	plan(n *driver.Node, k int, cands [][]item.Item, prev *metrics.SkewReport) (driver.PlanDecision, error)
	// pass counts support for pass k over the plan computed by plan.
	pass(n *driver.Node, k int, cands [][]item.Item, st *metrics.NodeStats) (engineOut, error)
}

// newEngine instantiates the engine for the miner's configured algorithm.
func newEngine(m *itemsetMiner) (engine, error) {
	switch m.cfg.Algorithm {
	case NPGM:
		return &npgmEngine{m: m}, nil
	case HPGM:
		return &hpgmEngine{m: m}, nil
	case HHPGM:
		return &hierEngine{m: m, dup: dupNone}, nil
	case HHPGMTGD:
		return &hierEngine{m: m, dup: dupTree}, nil
	case HHPGMPGD:
		return &hierEngine{m: m, dup: dupPath}, nil
	case HHPGMFGD:
		return &hierEngine{m: m, dup: dupFine}, nil
	}
	return nil, fmt.Errorf("core: unknown algorithm %q", m.cfg.Algorithm)
}

// candBytes estimates the per-candidate memory footprint the paper's M
// models: k 4-byte items plus table entry overhead (hash bucket, count,
// header). The absolute constant only shifts where fragmentation and
// duplication kick in; the experiments sweep MemoryBudget relative to it.
func candBytes(k int) int64 { return 48 + 4*int64(k) }

// fragmentCount returns how many memory-sized fragments NPGM must split
// |C_k| candidates into.
func fragmentCount(numCands, k int, budget int64) int {
	if budget <= 0 {
		return 1
	}
	perNode := budget / candBytes(k)
	if perNode < 1 {
		perNode = 1
	}
	f := (int64(numCands) + perNode - 1) / perNode
	if f < 1 {
		f = 1
	}
	return int(f)
}

// npgmEngine implements NPGM (§3.1): the candidate itemsets are replicated
// on every node, so each node counts its local partition independently and
// the coordinator reduces the counts. When C_k exceeds the per-node memory
// budget, the candidates are split into fragments and the local database is
// re-scanned once per fragment — the cost that makes NPGM collapse at small
// minimum support (Figure 14).
type npgmEngine struct {
	m *itemsetMiner
}

// plan is trivial for NPGM: the candidate set is fully replicated, so there
// is no assignment to compute and nothing to adapt.
func (e *npgmEngine) plan(_ *driver.Node, k int, cands [][]item.Item, _ *metrics.SkewReport) (driver.PlanDecision, error) {
	return driver.PlanDecision{
		Partitioner: "replicated",
		Granule:     "all",
		Duplicated:  len(cands),
	}, nil
}

func (e *npgmEngine) pass(n *driver.Node, k int, cands [][]item.Item, st *metrics.NodeStats) (engineOut, error) {
	m := e.m
	frags := fragmentCount(len(cands), k, m.cfg.MemoryBudget)
	// One KeepSet serves both roles: the View's ancestor keep set and the
	// pre-enumeration membership filter.
	member := cumulate.KeepSet(m.tax, cands)
	view := taxonomy.NewView(m.tax, m.largeFlags, member)

	// The candidate set is replicated: one shared index plus a per-node
	// count vector stands in for N identical hash tables (see candCache).
	// Each fragment covers the id range [f*per, f*per+per); a probe that
	// hits outside the current fragment is the simulated table miss.
	//
	// NPGM has no count-support communication, so intra-node parallelism is
	// pure sharding: every worker probes the shared read-only index
	// (Index.Lookup is pure and allocation-free) into its own count vector,
	// merged once after the last fragment.
	W := n.Workers()
	index := m.cands.fullIndex(k, cands, W)
	wcounts := driver.WorkerVectors(W, len(cands))
	wstats := make([]metrics.NodeStats, W)
	started := time.Now()
	per := (len(cands) + frags - 1) / frags
	for f := 0; f < frags; f++ {
		lo := int32(f * per)
		hi := lo + int32(per)
		if hi > int32(len(cands)) {
			hi = int32(len(cands))
		}
		// Each fragment only counts candidates in [lo, hi), so the block
		// predicate is built from exactly that slice: a block with no chance
		// of supporting any in-fragment candidate is skipped before decode.
		err := driver.CountTable(view, member, index, k, m.db, wcounts, driver.CountOptions{
			Workers: W,
			Lo:      lo,
			Hi:      hi,
			Pred:    txn.NewPredicate(m.tax, cands[int(lo):int(hi)]),
			Obs:     n.ShardObs("scan"),
			WStats:  wstats,
		})
		if err != nil {
			return engineOut{}, fmt.Errorf("fragment %d scan: %w", f, err)
		}
	}
	counts := driver.MergeWorkerVectors(wcounts)
	driver.MergeWorkerStats(st, wstats)
	st.ScanTime = time.Since(started)

	// NPGM has no count-support communication: the only exchange is the
	// reduce of the replicated counts, which the runtime's barrier performs.
	// (The paper broadcasts each fragment's L_k^d as it completes; reducing
	// once after the last fragment yields the same L_k with one barrier.)
	return engineOut{
		dupSets:    cands,
		dupCounts:  counts,
		duplicated: len(cands),
		fragments:  frags,
	}, nil
}
