package core

import (
	"fmt"
	"time"

	"pgarm/internal/cumulate"
	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/metrics"
	"pgarm/internal/taxonomy"
	"pgarm/internal/txn"
)

// engine is one algorithm's per-pass behaviour. The pass driver (node.go)
// owns candidate generation and the L_k barrier; the engine owns candidate
// partitioning, the count-support phase and the hand-off to gatherLarge.
type engine interface {
	pass(k int, cands [][]item.Item) ([]itemset.Counted, passMeta, error)
}

// newEngine instantiates the engine for the node's configured algorithm.
func newEngine(n *node) (engine, error) {
	switch n.cfg.Algorithm {
	case NPGM:
		return &npgmEngine{n: n}, nil
	case HPGM:
		return &hpgmEngine{n: n}, nil
	case HHPGM:
		return &hierEngine{n: n, dup: dupNone}, nil
	case HHPGMTGD:
		return &hierEngine{n: n, dup: dupTree}, nil
	case HHPGMPGD:
		return &hierEngine{n: n, dup: dupPath}, nil
	case HHPGMFGD:
		return &hierEngine{n: n, dup: dupFine}, nil
	}
	return nil, fmt.Errorf("core: unknown algorithm %q", n.cfg.Algorithm)
}

// candBytes estimates the per-candidate memory footprint the paper's M
// models: k 4-byte items plus table entry overhead (hash bucket, count,
// header). The absolute constant only shifts where fragmentation and
// duplication kick in; the experiments sweep MemoryBudget relative to it.
func candBytes(k int) int64 { return 48 + 4*int64(k) }

// fragmentCount returns how many memory-sized fragments NPGM must split
// |C_k| candidates into.
func fragmentCount(numCands, k int, budget int64) int {
	if budget <= 0 {
		return 1
	}
	perNode := budget / candBytes(k)
	if perNode < 1 {
		perNode = 1
	}
	f := (int64(numCands) + perNode - 1) / perNode
	if f < 1 {
		f = 1
	}
	return int(f)
}

// npgmEngine implements NPGM (§3.1): the candidate itemsets are replicated
// on every node, so each node counts its local partition independently and
// the coordinator reduces the counts. When C_k exceeds the per-node memory
// budget, the candidates are split into fragments and the local database is
// re-scanned once per fragment — the cost that makes NPGM collapse at small
// minimum support (Figure 14).
type npgmEngine struct {
	n *node
}

func (e *npgmEngine) pass(k int, cands [][]item.Item) ([]itemset.Counted, passMeta, error) {
	n := e.n
	frags := fragmentCount(len(cands), k, n.cfg.MemoryBudget)
	view := taxonomy.NewView(n.tax, n.largeFlags, cumulate.KeepSet(n.tax, cands))
	member := cumulate.MemberSet(n.tax, cands)

	// The candidate set is replicated: one shared index plus a per-node
	// count vector stands in for N identical hash tables (see candCache).
	// Each fragment covers the id range [f*per, f*per+per); a probe that
	// hits outside the current fragment is the simulated table miss.
	//
	// NPGM has no count-support communication, so intra-node parallelism is
	// pure sharding: every worker probes the shared read-only index
	// (Index.Lookup is pure and allocation-free) into its own count vector,
	// merged once after the last fragment.
	index := n.cands.fullIndex(k, cands)
	W := n.cfg.workers()
	wcounts := workerVectors(W, len(cands))
	wstats := make([]metrics.NodeStats, W)
	wext := newWorkerScratch(W, 64)
	wsub := newWorkerScratch(W, 2*k)
	started := time.Now()
	per := (len(cands) + frags - 1) / frags
	for f := 0; f < frags; f++ {
		lo := int32(f * per)
		hi := lo + int32(per)
		if hi > int32(len(cands)) {
			hi = int32(len(cands))
		}
		err := scanShards(n.db, W, n.shardObs("scan"), func(w int, t txn.Transaction) error {
			st := &wstats[w]
			st.TxnsScanned++
			ext := cumulate.ExtendFiltered(view, member, wext[w][:0], t.Items)
			wext[w] = ext
			counts := wcounts[w]
			itemset.ForEachSubsetScratch(ext, k, wsub[w], func(sub []item.Item) bool {
				st.Probes++
				if id := index.Lookup(sub); id >= lo && id < hi {
					counts[id]++
					st.Increments++
				}
				return true
			})
			return nil
		})
		if err != nil {
			return nil, passMeta{}, fmt.Errorf("fragment %d scan: %w", f, err)
		}
	}
	counts := mergeWorkerVectors(wcounts)
	mergeWorkerStats(&n.cur, wstats)
	n.cur.ScanTime = time.Since(started)

	// NPGM has no count-support communication: the only exchange is the
	// reduce of the replicated counts, which gatherLarge performs. (The
	// paper broadcasts each fragment's L_k^d as it completes; reducing once
	// after the last fragment yields the same L_k with one barrier.)
	lk, err := n.gatherLarge(nil, nil, cands, counts)
	if err != nil {
		return nil, passMeta{}, err
	}
	return lk, passMeta{fragments: frags, duplicated: len(cands)}, nil
}
