package core

import (
	"sort"

	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/taxonomy"
)

// dupKind selects the duplication granule of §3.4.
type dupKind int

const (
	dupNone dupKind = iota // plain H-HPGM: no duplication
	dupTree                // H-HPGM-TGD: whole trees (root k-itemsets)
	dupPath                // H-HPGM-PGD: frequent leaf itemsets + ancestors
	dupFine                // H-HPGM-FGD: frequent any-level itemsets + ancestors
)

// selectDuplicates picks the candidates to copy onto every node, flagged by
// index into cands. The decision is a pure function of globally replicated
// state (L1 counts, candidates, owners), so every node computes the same
// set without communication — the paper's step 1 of Figures 7/9/11.
//
// candKind, when non-nil, is the per-candidate effective granule of an
// adaptive plan (escalated per hot taxonomy subtree); selection then runs in
// stages from the finest grain down — FGD candidates first (they target the
// hottest subtrees), then PGD, then TGD — all drawing from one shared free
// space. A nil candKind is the static configuration: every candidate uses
// the uniform base kind and the selection is bit-identical to the
// pre-adaptive behaviour.
func selectDuplicates(m *itemsetMiner, nNodes int, kind dupKind, k int, cands [][]item.Item, vecHashes []uint64, owners []int, workers int, candKind []dupKind) bitset {
	dup := newBitset(len(cands))
	if len(cands) == 0 || (kind == dupNone && candKind == nil) {
		return dup
	}

	// With no budget configured memory is unlimited and every candidate whose
	// granule allows duplication is duplicated — the static variants
	// degenerate to fully local counting.
	if m.cfg.MemoryBudget <= 0 {
		for i := range cands {
			if candKind == nil || candKind[i] > dupNone {
				dup.set(int32(i))
			}
		}
		return dup
	}
	// Free space: per-node budget minus the largest partitioned share
	// ("count the number of candidates allocated for each node").
	capLeft := len(cands)
	{
		ownedPerNode := make([]int, nNodes)
		for _, o := range owners {
			ownedPerNode[o]++
		}
		maxOwned := 0
		for _, c := range ownedPerNode {
			if c > maxOwned {
				maxOwned = c
			}
		}
		slots := int(m.cfg.MemoryBudget / candBytes(k))
		capLeft = slots - maxOwned
		if capLeft <= 0 {
			return dup
		}
	}

	if candKind == nil {
		switch kind {
		case dupTree:
			selectTreeGrain(m, cands, vecHashes, capLeft, dup, nil)
		case dupPath:
			selectItemGrain(m, cands, capLeft, dup, workers, nil, lowestLargePred(m))
		case dupFine:
			selectItemGrain(m, cands, capLeft, dup, workers, nil, func(item.Item) bool { return true })
		}
		return dup
	}

	// Adaptive: finest first, stages sharing one free-space budget.
	ofKind := func(want dupKind) func(i int32) bool {
		return func(i int32) bool { return candKind[i] == want }
	}
	capLeft = selectItemGrain(m, cands, capLeft, dup, workers, ofKind(dupFine), func(item.Item) bool { return true })
	if capLeft > 0 {
		capLeft = selectItemGrain(m, cands, capLeft, dup, workers, ofKind(dupPath), lowestLargePred(m))
	}
	if capLeft > 0 {
		selectTreeGrain(m, cands, vecHashes, capLeft, dup, ofKind(dupTree))
	}
	return dup
}

// lowestLargePred builds PGD's item-eligibility predicate: large items none
// of whose descendants are large.
func lowestLargePred(m *itemsetMiner) func(item.Item) bool {
	lowest := make([]bool, m.tax.NumItems())
	for _, x := range lowestLargeItems(m.tax, m.largeFlags) {
		lowest[x] = true
	}
	return func(x item.Item) bool { return lowest[x] }
}

// selectTreeGrain duplicates whole root k-itemset groups ("trees") in
// decreasing order of root frequency until the next group no longer fits —
// the coarse grain that wastes free space at small minimum support
// (Figure 14's TGD-equals-H-HPGM regime). include, when non-nil, restricts
// the groups to the candidates it admits (the tree-grain share of an
// adaptive plan); members a finer stage already duplicated cost no space.
func selectTreeGrain(m *itemsetMiner, cands [][]item.Item, vecHashes []uint64, capLeft int, dup bitset, include func(i int32) bool) {
	groups := make(map[uint64][]int32)
	for i := range cands {
		if include != nil && !include(int32(i)) {
			continue
		}
		groups[vecHashes[i]] = append(groups[vecHashes[i]], int32(i))
	}
	type scored struct {
		hash  uint64
		vec   []item.Item
		score int64
	}
	order := make([]scored, 0, len(groups))
	for h, members := range groups {
		// One vector materialization per group (recomputed from any member)
		// instead of one packed string per candidate. A hash collision merges
		// two trees into one take-both group; the choice stays deterministic
		// on every node, which is all correctness needs.
		vec := rootVector(m.tax, nil, cands[members[0]])
		var s int64
		for _, r := range vec {
			s += m.itemCounts[r]
		}
		order = append(order, scored{hash: h, vec: vec, score: s})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].score != order[j].score {
			return order[i].score > order[j].score
		}
		return item.Compare(order[i].vec, order[j].vec) < 0
	})
	for _, g := range order {
		members := groups[g.hash]
		cost := 0
		for _, idx := range members {
			if !dup.get(idx) {
				cost++
			}
		}
		if cost > capLeft {
			break // tree grain: the whole hierarchy group or nothing
		}
		for _, idx := range members {
			dup.set(idx)
		}
		capLeft -= cost
	}
}

// selectItemGrain implements the shared shape of PGD and FGD: consider the
// candidates whose members all satisfy the eligibility predicate (lowest
// large items for PGD, any large item for FGD) in decreasing order of their
// items' summed frequency — the order the paper obtains by generating
// k-itemsets from the frequency-sorted item list — and duplicate each one
// together with all its ancestor candidates, while the free space lasts.
// include, when non-nil, restricts the considered seeds to the candidates it
// admits (one granule's share of an adaptive plan); ancestors join their
// seed's group regardless. Returns the free space left for coarser stages.
func selectItemGrain(m *itemsetMiner, cands [][]item.Item, capLeft int, dup bitset, workers int, include func(i int32) bool, eligible func(item.Item) bool) int {
	type scored struct {
		idx   int32
		score int64
	}
	// Ancestor-candidate lookups go through the open-addressed index (built
	// across workers) instead of a map of one packed string per candidate.
	candIdx := itemset.BuildIndexParallel(cands, workers)
	order := make([]scored, 0, len(cands))
	for i, c := range cands {
		if include != nil && !include(int32(i)) {
			continue
		}
		ok := true
		var s int64
		for _, x := range c {
			if !eligible(x) {
				ok = false
				break
			}
			s += m.itemCounts[x]
		}
		if ok {
			order = append(order, scored{idx: int32(i), score: s})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].score != order[j].score {
			return order[i].score > order[j].score
		}
		return order[i].idx < order[j].idx
	})

	group := make([]int32, 0, 16)
	for _, sc := range order {
		if dup.get(sc.idx) {
			continue
		}
		// The chosen itemset plus all its ancestor candidates form one
		// duplication group.
		group = group[:0]
		group = append(group, sc.idx)
		forEachAncestorCombo(m.tax, cands[sc.idx], func(anc []item.Item) {
			if aidx := candIdx.Lookup(anc); aidx >= 0 && !dup.get(aidx) {
				group = append(group, aidx)
			}
		})
		if len(group) > capLeft {
			break // ordered by frequency: later groups are colder
		}
		for _, g := range group {
			dup.set(g)
		}
		capLeft -= len(group)
		if capLeft <= 0 {
			break
		}
	}
	return capLeft
}

// lowestLargeItems returns the large items closest to the bottom of the
// hierarchy: large items none of whose descendants are large (the item pool
// PGD sorts). Large leaves qualify trivially.
func lowestLargeItems(tax *taxonomy.Taxonomy, large []bool) []item.Item {
	var out []item.Item
	var hasLarge func(x item.Item) bool // does x's strict subtree contain a large item?
	memo := make(map[item.Item]bool)
	hasLarge = func(x item.Item) bool {
		if v, ok := memo[x]; ok {
			return v
		}
		v := false
		for _, c := range tax.Children(x) {
			if large[c] || hasLarge(c) {
				v = true
				// No break: memoize the whole subtree anyway via recursion
				// triggered below when needed; cheap to stop here instead.
				break
			}
		}
		memo[x] = v
		return v
	}
	for i := 0; i < tax.NumItems(); i++ {
		x := item.Item(i)
		if large[x] && !hasLarge(x) {
			out = append(out, x)
		}
	}
	return out
}

// forEachAncestorCombo enumerates every k-itemset obtainable by replacing
// members of set with one of their strict-or-self ancestors, excluding set
// itself and any combination that collapses below k distinct items. Each
// result is canonical; the slice is only valid during the call.
func forEachAncestorCombo(tax *taxonomy.Taxonomy, set []item.Item, fn func(combo []item.Item)) {
	k := len(set)
	chains := make([][]item.Item, k)
	for i, x := range set {
		chains[i] = tax.SelfAndAncestors(nil, x)
	}
	combo := make([]item.Item, k)
	out := make([]item.Item, k)
	var rec func(pos int, allSelf bool)
	rec = func(pos int, allSelf bool) {
		if pos == k {
			if allSelf {
				return // the original itemset
			}
			copy(out, combo)
			out = item.Dedup(out)
			if len(out) == k {
				fn(out)
			}
			out = out[:k]
			return
		}
		for ci, a := range chains[pos] {
			combo[pos] = a
			rec(pos+1, allSelf && ci == 0)
		}
	}
	rec(0, true)
}
