package core

import (
	"sort"

	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/taxonomy"
)

// dupKind selects the duplication granule of §3.4.
type dupKind int

const (
	dupNone dupKind = iota // plain H-HPGM: no duplication
	dupTree                // H-HPGM-TGD: whole trees (root k-itemsets)
	dupPath                // H-HPGM-PGD: frequent leaf itemsets + ancestors
	dupFine                // H-HPGM-FGD: frequent any-level itemsets + ancestors
)

// selectDuplicates picks the candidates to copy onto every node, flagged by
// index into cands. The decision is a pure function of globally replicated
// state (L1 counts, candidates, owners), so every node computes the same
// set without communication — the paper's step 1 of Figures 7/9/11.
func selectDuplicates(m *itemsetMiner, nNodes int, kind dupKind, k int, cands [][]item.Item, vecHashes []uint64, owners []int, workers int) bitset {
	dup := newBitset(len(cands))
	if kind == dupNone || len(cands) == 0 {
		return dup
	}

	// With no budget configured memory is unlimited and everything is
	// duplicated — every variant degenerates to fully local counting.
	if m.cfg.MemoryBudget <= 0 {
		for i := range cands {
			dup.set(int32(i))
		}
		return dup
	}
	// Free space: per-node budget minus the largest partitioned share
	// ("count the number of candidates allocated for each node").
	capLeft := len(cands)
	{
		ownedPerNode := make([]int, nNodes)
		for _, o := range owners {
			ownedPerNode[o]++
		}
		maxOwned := 0
		for _, c := range ownedPerNode {
			if c > maxOwned {
				maxOwned = c
			}
		}
		slots := int(m.cfg.MemoryBudget / candBytes(k))
		capLeft = slots - maxOwned
		if capLeft <= 0 {
			return dup
		}
	}

	switch kind {
	case dupTree:
		selectTreeGrain(m, cands, vecHashes, capLeft, dup)
	case dupPath:
		lowest := make([]bool, m.tax.NumItems())
		for _, x := range lowestLargeItems(m.tax, m.largeFlags) {
			lowest[x] = true
		}
		selectItemGrain(m, cands, capLeft, dup, workers, func(x item.Item) bool { return lowest[x] })
	case dupFine:
		selectItemGrain(m, cands, capLeft, dup, workers, func(item.Item) bool { return true })
	}
	return dup
}

// selectTreeGrain duplicates whole root k-itemset groups ("trees") in
// decreasing order of root frequency until the next group no longer fits —
// the coarse grain that wastes free space at small minimum support
// (Figure 14's TGD-equals-H-HPGM regime).
func selectTreeGrain(m *itemsetMiner, cands [][]item.Item, vecHashes []uint64, capLeft int, dup bitset) {
	groups := make(map[uint64][]int32)
	for i := range cands {
		groups[vecHashes[i]] = append(groups[vecHashes[i]], int32(i))
	}
	type scored struct {
		hash  uint64
		vec   []item.Item
		score int64
	}
	order := make([]scored, 0, len(groups))
	for h, members := range groups {
		// One vector materialization per group (recomputed from any member)
		// instead of one packed string per candidate. A hash collision merges
		// two trees into one take-both group; the choice stays deterministic
		// on every node, which is all correctness needs.
		vec := rootVector(m.tax, nil, cands[members[0]])
		var s int64
		for _, r := range vec {
			s += m.itemCounts[r]
		}
		order = append(order, scored{hash: h, vec: vec, score: s})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].score != order[j].score {
			return order[i].score > order[j].score
		}
		return item.Compare(order[i].vec, order[j].vec) < 0
	})
	for _, g := range order {
		members := groups[g.hash]
		if len(members) > capLeft {
			break // tree grain: the whole hierarchy group or nothing
		}
		for _, idx := range members {
			dup.set(idx)
		}
		capLeft -= len(members)
	}
}

// selectItemGrain implements the shared shape of PGD and FGD: consider the
// candidates whose members all satisfy the eligibility predicate (lowest
// large items for PGD, any large item for FGD) in decreasing order of their
// items' summed frequency — the order the paper obtains by generating
// k-itemsets from the frequency-sorted item list — and duplicate each one
// together with all its ancestor candidates, while the free space lasts.
func selectItemGrain(m *itemsetMiner, cands [][]item.Item, capLeft int, dup bitset, workers int, eligible func(item.Item) bool) {
	type scored struct {
		idx   int32
		score int64
	}
	// Ancestor-candidate lookups go through the open-addressed index (built
	// across workers) instead of a map of one packed string per candidate.
	candIdx := itemset.BuildIndexParallel(cands, workers)
	order := make([]scored, 0, len(cands))
	for i, c := range cands {
		ok := true
		var s int64
		for _, x := range c {
			if !eligible(x) {
				ok = false
				break
			}
			s += m.itemCounts[x]
		}
		if ok {
			order = append(order, scored{idx: int32(i), score: s})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].score != order[j].score {
			return order[i].score > order[j].score
		}
		return order[i].idx < order[j].idx
	})

	group := make([]int32, 0, 16)
	for _, sc := range order {
		if dup.get(sc.idx) {
			continue
		}
		// The chosen itemset plus all its ancestor candidates form one
		// duplication group.
		group = group[:0]
		group = append(group, sc.idx)
		forEachAncestorCombo(m.tax, cands[sc.idx], func(anc []item.Item) {
			if aidx := candIdx.Lookup(anc); aidx >= 0 && !dup.get(aidx) {
				group = append(group, aidx)
			}
		})
		if len(group) > capLeft {
			break // ordered by frequency: later groups are colder
		}
		for _, g := range group {
			dup.set(g)
		}
		capLeft -= len(group)
		if capLeft <= 0 {
			break
		}
	}
}

// lowestLargeItems returns the large items closest to the bottom of the
// hierarchy: large items none of whose descendants are large (the item pool
// PGD sorts). Large leaves qualify trivially.
func lowestLargeItems(tax *taxonomy.Taxonomy, large []bool) []item.Item {
	var out []item.Item
	var hasLarge func(x item.Item) bool // does x's strict subtree contain a large item?
	memo := make(map[item.Item]bool)
	hasLarge = func(x item.Item) bool {
		if v, ok := memo[x]; ok {
			return v
		}
		v := false
		for _, c := range tax.Children(x) {
			if large[c] || hasLarge(c) {
				v = true
				// No break: memoize the whole subtree anyway via recursion
				// triggered below when needed; cheap to stop here instead.
				break
			}
		}
		memo[x] = v
		return v
	}
	for i := 0; i < tax.NumItems(); i++ {
		x := item.Item(i)
		if large[x] && !hasLarge(x) {
			out = append(out, x)
		}
	}
	return out
}

// forEachAncestorCombo enumerates every k-itemset obtainable by replacing
// members of set with one of their strict-or-self ancestors, excluding set
// itself and any combination that collapses below k distinct items. Each
// result is canonical; the slice is only valid during the call.
func forEachAncestorCombo(tax *taxonomy.Taxonomy, set []item.Item, fn func(combo []item.Item)) {
	k := len(set)
	chains := make([][]item.Item, k)
	for i, x := range set {
		chains[i] = tax.SelfAndAncestors(nil, x)
	}
	combo := make([]item.Item, k)
	out := make([]item.Item, k)
	var rec func(pos int, allSelf bool)
	rec = func(pos int, allSelf bool) {
		if pos == k {
			if allSelf {
				return // the original itemset
			}
			copy(out, combo)
			out = item.Dedup(out)
			if len(out) == k {
				fn(out)
			}
			out = out[:k]
			return
		}
		for ci, a := range chains[pos] {
			combo[pos] = a
			rec(pos+1, allSelf && ci == 0)
		}
	}
	rec(0, true)
}
