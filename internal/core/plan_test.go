package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"pgarm/internal/cumulate"
	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/taxonomy"
)

// planFixture builds an itemsetMiner with enough replicated state (taxonomy,
// pass-1 counts, large flags, config) to drive partition planning, plus a
// realistic C_2 produced by the actual generator.
func planFixture(t testing.TB, budget int64) (*itemsetMiner, [][]item.Item) {
	tax := taxonomy.MustBalanced(200, 5, 4)
	rng := rand.New(rand.NewSource(67))
	itemCounts := make([]int64, tax.NumItems())
	largeFlags := make([]bool, tax.NumItems())
	var prev [][]item.Item
	for i := range itemCounts {
		itemCounts[i] = int64(rng.Intn(5000))
		if itemCounts[i] >= 2000 {
			largeFlags[i] = true
			prev = append(prev, []item.Item{item.Item(i)})
		}
	}
	if len(prev) < 20 {
		t.Fatal("fixture produced too few large items")
	}
	m := &itemsetMiner{
		tax:        tax,
		cfg:        Config{MemoryBudget: budget},
		itemCounts: itemCounts,
		largeFlags: largeFlags,
	}
	cands := cumulate.GenerateCandidates(tax, prev, 2)
	if len(cands) == 0 {
		t.Fatal("fixture produced no candidates")
	}
	return m, cands
}

// TestComputeHierPlanParallelMatches asserts the sharded partition plan —
// root-vector hashes, owners, duplication flags and the duplicated layout —
// is identical to the workers=1 plan at every worker count, for every
// duplication granule.
func TestComputeHierPlanParallelMatches(t *testing.T) {
	m, cands := planFixture(t, 32<<10)
	for _, kind := range []dupKind{dupNone, dupTree, dupPath, dupFine} {
		want := computeHierPlan(m, 8, kind, 2, cands, 1, nil, nil)
		for _, w := range []int{2, 4, 8} {
			got := computeHierPlan(m, 8, kind, 2, cands, w, nil, nil)
			if !reflect.DeepEqual(got.vecHashes, want.vecHashes) {
				t.Fatalf("kind=%d workers=%d: vecHashes diverged", kind, w)
			}
			if !reflect.DeepEqual(got.owners, want.owners) {
				t.Fatalf("kind=%d workers=%d: owners diverged", kind, w)
			}
			if !reflect.DeepEqual(got.dup, want.dup) {
				t.Fatalf("kind=%d workers=%d: dup flags diverged (%d vs %d set)",
					kind, w, got.dup.count(), want.dup.count())
			}
			if !reflect.DeepEqual(got.dupSets, want.dupSets) {
				t.Fatalf("kind=%d workers=%d: dupSets diverged", kind, w)
			}
			// dupIndex is derived from dupSets; spot-check id agreement.
			for i, s := range got.dupSets {
				if id := got.dupIndex.Lookup(s); id != int32(i) {
					t.Fatalf("kind=%d workers=%d: dupIndex[%v] = %d, want %d", kind, w, s, id, i)
				}
			}
		}
	}
}

// TestComputeHierPlanUnlimitedBudget covers the degenerate everything-
// duplicated path across worker counts.
func TestComputeHierPlanUnlimitedBudget(t *testing.T) {
	m, cands := planFixture(t, 0)
	want := computeHierPlan(m, 4, dupFine, 2, cands, 1, nil, nil)
	got := computeHierPlan(m, 4, dupFine, 2, cands, 4, nil, nil)
	if !reflect.DeepEqual(got.dup, want.dup) || got.dup.count() != len(cands) {
		t.Fatalf("unlimited budget: %d duplicated, want all %d", got.dup.count(), len(cands))
	}
}

// BenchmarkPassPlan measures partition-plan construction — the H-HPGM pass
// boundary this change parallelizes and strips of per-candidate
// allocations. serial-reference reproduces the retired representation (one
// root-vector slice + one packed Key string per candidate, serial loop);
// the plain sweep is the new hashing/ownership plan (dupNone isolates the
// representation delta); the fgd sweep adds duplication selection and the
// duplicated index build on top.
func BenchmarkPassPlan(b *testing.B) {
	m, cands := planFixture(b, 512<<10)
	b.Run("serial-reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			vecKeys := make([]string, len(cands))
			owners := make([]int, len(cands))
			for j, c := range cands {
				vec := rootVector(m.tax, nil, c)
				vecKeys[j] = itemset.Key(vec)
				owners[j] = int(itemset.Hash(vec) % 8)
			}
			_, _ = vecKeys, owners
		}
	})
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				computeHierPlan(m, 8, dupNone, 2, cands, w, nil, nil)
			}
		})
	}
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("fgd/workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				computeHierPlan(m, 8, dupFine, 2, cands, w, nil, nil)
			}
		})
	}
}
