package core

import (
	"fmt"
	"path/filepath"
	"testing"

	"pgarm/internal/cumulate"
	"pgarm/internal/item"
	"pgarm/internal/txn"
)

// TestStorageFormatsBitIdentical is the cross-format identity property the
// columnar design promises: mining the same database from in-memory
// partitions, row files or block-compressed columnar files must produce the
// exact same large-itemset lattice — same itemsets, same counts, same order —
// at every worker count, even while the pass predicate skips blocks.
func TestStorageFormatsBitIdentical(t *testing.T) {
	ds := testDataset(t, 2500)
	const (
		minSup = 0.10 // high support keeps tail candidates scarce -> real skips
		nodes  = 3
		block  = 4 // small blocks give sparse closures the filters can rule out
	)

	want, err := cumulate.Mine(ds.Taxonomy, ds.DB, cumulate.Config{MinSupport: minSup})
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Large) < 2 {
		t.Fatalf("weak test data: only %d large levels", len(want.Large))
	}

	// The sequential miner over one whole-database columnar file agrees with
	// the in-memory run and demonstrably skipped blocks while doing so.
	dir := t.TempDir()
	wholePath := filepath.Join(dir, "whole.ptc")
	if err := txn.WriteColumnar(wholePath, ds.DB, ds.Taxonomy, block); err != nil {
		t.Fatal(err)
	}
	whole, err := txn.Open(wholePath)
	if err != nil {
		t.Fatal(err)
	}
	colRes, err := cumulate.Mine(ds.Taxonomy, whole, cumulate.Config{MinSupport: minSup})
	if err != nil {
		t.Fatal(err)
	}
	if colRes.BlocksSkipped == 0 {
		t.Error("columnar cumulate run skipped no blocks; skip filters are dead")
	}
	assertSameCumulate(t, want, colRes)

	// Materialize each node partition in both on-disk formats.
	formats := map[string][]txn.Scanner{}
	for i, p := range txn.Partition(ds.DB, nodes) {
		rowPath := filepath.Join(dir, fmt.Sprintf("n%02d.ptx", i))
		if err := txn.WriteFile(rowPath, p); err != nil {
			t.Fatal(err)
		}
		colPath := filepath.Join(dir, fmt.Sprintf("n%02d.ptc", i))
		if err := txn.WriteColumnar(colPath, p, ds.Taxonomy, block); err != nil {
			t.Fatal(err)
		}
		rf, err := txn.Open(rowPath)
		if err != nil {
			t.Fatal(err)
		}
		cf, err := txn.Open(colPath)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := cf.(txn.BlockScanner); !ok {
			t.Fatalf("columnar partition %d does not block-scan", i)
		}
		formats["memory"] = append(formats["memory"], p)
		formats["row"] = append(formats["row"], rf)
		formats["columnar"] = append(formats["columnar"], cf)
	}

	for _, alg := range []Algorithm{HHPGMFGD, HPGM, NPGM} {
		for _, format := range []string{"memory", "row", "columnar"} {
			for _, workers := range []int{1, 2, 4, 8} {
				// Keep the matrix affordable: sweep workers on the flagship
				// algorithm, spot-check the others at one parallel setting.
				if alg != HHPGMFGD && workers != 4 {
					continue
				}
				t.Run(fmt.Sprintf("%s/%s/workers=%d", alg, format, workers), func(t *testing.T) {
					got, err := Mine(ds.Taxonomy, formats[format], Config{
						Algorithm:  alg,
						MinSupport: minSup,
						Workers:    workers,
					})
					if err != nil {
						t.Fatal(err)
					}
					assertSameLarge(t, want, got)
				})
			}
		}
	}
}

// assertSameCumulate compares two sequential results level by level.
func assertSameCumulate(t *testing.T, want, got *cumulate.Result) {
	t.Helper()
	if len(want.Large) != len(got.Large) {
		t.Fatalf("level count %d != %d", len(got.Large), len(want.Large))
	}
	for k := 1; k <= len(want.Large); k++ {
		w, g := want.LargeK(k), got.LargeK(k)
		if len(w) != len(g) {
			t.Fatalf("L_%d size %d != %d", k, len(g), len(w))
		}
		for i := range w {
			if !item.Equal(w[i].Items, g[i].Items) || w[i].Count != g[i].Count {
				t.Fatalf("L_%d[%d]: %v/%d != %v/%d", k, i, g[i].Items, g[i].Count, w[i].Items, w[i].Count)
			}
		}
	}
}
