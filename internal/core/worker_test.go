package core

import (
	"net"
	"sync"
	"testing"

	"pgarm/internal/cluster"
	"pgarm/internal/cumulate"
	"pgarm/internal/txn"
)

// TestMineWorkerMesh runs three MineWorker instances over a real TCP mesh
// (the multi-process deployment path, exercised in-process) and checks that
// every worker converges to the sequential Cumulate result.
func TestMineWorkerMesh(t *testing.T) {
	if testing.Short() {
		t.Skip("mesh run in short mode")
	}
	ds := testDataset(t, 1200)
	const nodes = 3
	want, err := cumulate.Mine(ds.Taxonomy, ds.DB, cumulate.Config{MinSupport: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	parts := txn.Partition(ds.DB, nodes)

	// Pre-bind listeners so the test controls the addresses.
	listeners := make([]net.Listener, nodes)
	addrs := make([]string, nodes)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}

	results := make([]*Result, nodes)
	errs := make([]error, nodes)
	var wg sync.WaitGroup
	for i := 0; i < nodes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ep, closer, err := cluster.DialMesh(i, addrs, cluster.MeshOptions{Listener: listeners[i]})
			if err != nil {
				errs[i] = err
				return
			}
			defer closer.Close()
			results[i], errs[i] = MineWorker(ds.Taxonomy, parts[i], Config{
				Algorithm:  HHPGMFGD,
				MinSupport: 0.03,
			}, ep)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	for i, res := range results {
		if res == nil {
			t.Fatalf("worker %d returned no result", i)
		}
		assertSameLarge(t, want, res)
		if res.Stats == nil || len(res.Stats.Passes) == 0 {
			t.Errorf("worker %d missing stats", i)
		}
	}
}

func TestMineWorkerValidation(t *testing.T) {
	ds := testDataset(t, 100)
	f := cluster.NewChanFabric(1, 4)
	defer f.Close()
	if _, err := MineWorker(ds.Taxonomy, ds.DB, Config{Algorithm: HHPGM, MinSupport: 0}, f.Endpoint(0)); err == nil {
		t.Error("zero support must fail")
	}
	if _, err := MineWorker(ds.Taxonomy, ds.DB, Config{Algorithm: "nope", MinSupport: 0.1}, f.Endpoint(0)); err == nil {
		t.Error("bad algorithm must fail")
	}
}
