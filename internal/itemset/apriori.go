package itemset

import (
	"sort"

	"pgarm/internal/item"
)

// SortSets orders a slice of canonical itemsets lexicographically — the
// precondition for the join step of Gen.
func SortSets(sets [][]item.Item) {
	sort.Slice(sets, func(i, j int) bool { return item.Compare(sets[i], sets[j]) < 0 })
}

// Gen implements apriori-gen: given the large (k-1)-itemsets, produce the
// candidate k-itemsets by joining L_{k-1} with itself (pairs sharing their
// first k-2 items) and pruning every k-itemset that has a (k-1)-subset not
// in L_{k-1}. prev need not be pre-sorted; all members must have equal
// length >= 1. The result is lexicographically sorted.
func Gen(prev [][]item.Item) [][]item.Item {
	if len(prev) == 0 {
		return nil
	}
	k1 := len(prev[0])
	sets := make([][]item.Item, len(prev))
	copy(sets, prev)
	SortSets(sets)

	inPrev := make(map[string]struct{}, len(sets))
	for _, s := range sets {
		inPrev[Key(s)] = struct{}{}
	}

	var out [][]item.Item
	scratch := make([]item.Item, k1)
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			if !item.Equal(sets[i][:k1-1], sets[j][:k1-1]) {
				break // sorted order: no further joins for i
			}
			// Join: first k-2 items shared, last items ascending.
			cand := make([]item.Item, 0, k1+1)
			cand = append(cand, sets[i]...)
			cand = append(cand, sets[j][k1-1])
			if pruneOK(cand, inPrev, scratch) {
				out = append(out, cand)
			}
		}
	}
	return out
}

// pruneOK checks that every (k-1)-subset of cand is in prev. Subsets formed
// by dropping the last two positions equal the join parents and are skipped.
func pruneOK(cand []item.Item, inPrev map[string]struct{}, scratch []item.Item) bool {
	k := len(cand)
	for drop := 0; drop < k-2; drop++ {
		scratch = scratch[:0]
		for i, x := range cand {
			if i != drop {
				scratch = append(scratch, x)
			}
		}
		if _, ok := inPrev[Key(scratch)]; !ok {
			return false
		}
	}
	return true
}

// Pairs generates all candidate 2-itemsets from the large items — the pass-2
// special case (C_2 = L_1 × L_1). Ancestor-containing pairs are filtered by
// the caller, which has the taxonomy. large must be canonical; the result is
// lexicographically sorted.
func Pairs(large []item.Item) [][]item.Item {
	n := len(large)
	if n < 2 {
		return nil
	}
	total := n * (n - 1) / 2
	// One flat backing array instead of one allocation per pair: C_2 holds
	// millions of candidates at small minimum support.
	backing := make([]item.Item, 0, 2*total)
	out := make([][]item.Item, 0, total)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			backing = append(backing, large[i], large[j])
			out = append(out, backing[len(backing)-2:])
		}
	}
	return out
}

// ForEachSubset enumerates every k-subset of the canonical itemset txn in
// lexicographic order, invoking fn with a scratch slice that is reused
// between calls — fn must not retain it. Enumeration stops early if fn
// returns false.
func ForEachSubset(txn []item.Item, k int, fn func(subset []item.Item) bool) {
	ForEachSubsetScratch(txn, k, nil, fn)
}

// ForEachSubsetScratch is ForEachSubset with a caller-provided scratch
// buffer (cap >= k avoids the internal allocation). The count-support hot
// path calls this once per transaction with a per-worker buffer, so subset
// enumeration performs no heap allocation: the combination is advanced
// iteratively rather than by a recursive closure.
func ForEachSubsetScratch(txn []item.Item, k int, scratch []item.Item, fn func(subset []item.Item) bool) {
	n := len(txn)
	if k <= 0 || k > n {
		return
	}
	if cap(scratch) < k {
		scratch = make([]item.Item, k)
	}
	scratch = scratch[:k]

	// idx[d] is the txn position chosen for depth d; stack-backed for every
	// realistic subset size.
	var idxBuf [48]int
	idx := idxBuf[:]
	if k > len(idxBuf) {
		idx = make([]int, k)
	}
	for d := 0; d < k; d++ {
		idx[d] = d
		scratch[d] = txn[d]
	}
	for {
		if !fn(scratch) {
			return
		}
		// Advance to the next combination: bump the rightmost position that
		// still has headroom, then reset everything after it.
		d := k - 1
		for d >= 0 && idx[d] == n-k+d {
			d--
		}
		if d < 0 {
			return
		}
		idx[d]++
		scratch[d] = txn[idx[d]]
		for j := d + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
			scratch[j] = txn[idx[j]]
		}
	}
}
