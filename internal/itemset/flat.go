package itemset

import "pgarm/internal/item"

// flatProbe is the open-addressed id index shared by Table and Index: a
// power-of-two slot array holding candidate id + 1 (0 = empty), probed
// linearly. Keys live with their owner — Table and Index both keep the
// canonical itemsets by dense id — so a probe hashes the query in place and
// compares against stored items (or their packed-key form) without building
// a map key. That removes the per-probe string allocation the previous
// map[string]int32 design paid on every candidate lookup: the count-support
// hot path performs millions of probes per pass and now performs zero heap
// allocations.
type flatProbe struct {
	slots []int32 // candidate id + 1; 0 marks an empty slot
	mask  uint64
	used  int
}

// flatHash is FNV-1a over the itemset's packed-key bytes (4 bytes per item,
// big-endian), computed without materializing the key. flatHashKey over the
// packed form yields the identical value, so items-keyed and packed-keyed
// probes address the same slots.
func flatHash(items []item.Item) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, it := range items {
		v := uint32(it)
		h = (h ^ uint64(v>>24)) * prime64
		h = (h ^ uint64(v>>16&0xff)) * prime64
		h = (h ^ uint64(v>>8&0xff)) * prime64
		h = (h ^ uint64(v&0xff)) * prime64
	}
	return h
}

// flatHashKey hashes a packed key (string or byte slice) to the same value
// flatHash produces for the corresponding itemset.
func flatHashKey[T ~string | ~[]byte](key T) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * prime64
	}
	return h
}

// keyEqualsItems reports whether a packed key encodes exactly items, without
// decoding into a scratch slice.
func keyEqualsItems[T ~string | ~[]byte](key T, items []item.Item) bool {
	if len(key) != 4*len(items) {
		return false
	}
	for i, it := range items {
		v := uint32(it)
		o := 4 * i
		if key[o] != byte(v>>24) || key[o+1] != byte(v>>16) ||
			key[o+2] != byte(v>>8) || key[o+3] != byte(v) {
			return false
		}
	}
	return true
}

// init sizes the slot array for n entries (power of two, ≥ 2n).
func (f *flatProbe) init(n int) {
	size := 16
	for size < 2*n {
		size <<= 1
	}
	f.slots = make([]int32, size)
	f.mask = uint64(size - 1)
	f.used = 0
}

// findItems returns the id stored for items, or -1. sets maps dense id to
// stored itemset. Zero-allocation.
func (f *flatProbe) findItems(items []item.Item, get func(int32) []item.Item) int32 {
	if len(f.slots) == 0 {
		return -1
	}
	for s := flatHash(items) & f.mask; ; s = (s + 1) & f.mask {
		v := f.slots[s]
		if v == 0 {
			return -1
		}
		if id := v - 1; item.Equal(get(id), items) {
			return id
		}
	}
}

// findKey is findItems for a pre-packed key.
func (f *flatProbe) findKey(key string, get func(int32) []item.Item) int32 {
	if len(f.slots) == 0 {
		return -1
	}
	for s := flatHashKey(key) & f.mask; ; s = (s + 1) & f.mask {
		v := f.slots[s]
		if v == 0 {
			return -1
		}
		if id := v - 1; keyEqualsItems(key, get(id)) {
			return id
		}
	}
}

// findPacked is findKey for a byte-slice packed key.
func (f *flatProbe) findPacked(key []byte, get func(int32) []item.Item) int32 {
	if len(f.slots) == 0 {
		return -1
	}
	for s := flatHashKey(key) & f.mask; ; s = (s + 1) & f.mask {
		v := f.slots[s]
		if v == 0 {
			return -1
		}
		if id := v - 1; keyEqualsItems(key, get(id)) {
			return id
		}
	}
}

// insert stores id for an itemset known to be absent, growing at 50% load.
func (f *flatProbe) insert(id int32, get func(int32) []item.Item) {
	if 2*(f.used+1) > len(f.slots) {
		f.rehash(2*len(f.slots), get)
	}
	f.place(id, get(id))
	f.used++
}

// place writes id into the first free slot of its probe sequence.
func (f *flatProbe) place(id int32, items []item.Item) {
	s := flatHash(items) & f.mask
	for f.slots[s] != 0 {
		s = (s + 1) & f.mask
	}
	f.slots[s] = id + 1
}

// rehash rebuilds the slot array at the given size (cold path).
func (f *flatProbe) rehash(size int, get func(int32) []item.Item) {
	if size < 16 {
		size = 16
	}
	old := f.slots
	f.slots = make([]int32, size)
	f.mask = uint64(size - 1)
	for _, v := range old {
		if v != 0 {
			f.place(v-1, get(v-1))
		}
	}
}
