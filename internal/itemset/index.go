package itemset

import "pgarm/internal/item"

// Index is an immutable itemset -> dense-id lookup over a fixed candidate
// list. Unlike Table it carries no counts and no probe counter, so one Index
// can be shared read-only by every node of a simulated cluster while each
// node keeps its own count vector — the memory layout that lets a 16-node
// in-process cluster replicate multi-million-entry candidate sets (NPGM, and
// the TGD/PGD/FGD duplicated tables) without 16 physical copies.
//
// Lookups use the same open-addressed flat probe as Table: the query is
// hashed in place and compared against the stored itemsets, so Lookup and
// LookupPacked allocate nothing regardless of itemset size.
type Index struct {
	idx  flatProbe
	sets [][]item.Item
}

// BuildIndex indexes the canonical itemsets; ids are positions in sets.
// The slices are retained, not copied.
func BuildIndex(sets [][]item.Item) *Index {
	ix := &Index{sets: sets}
	ix.idx.init(len(sets))
	for i := range sets {
		// Candidate lists are duplicate-free by construction; if a caller
		// passes duplicates anyway, the first occurrence keeps the id.
		if ix.idx.findItems(sets[i], ix.itemsOf) < 0 {
			ix.idx.insert(int32(i), ix.itemsOf)
		}
	}
	return ix
}

// itemsOf maps a dense id to its indexed itemset.
func (ix *Index) itemsOf(id int32) []item.Item { return ix.sets[id] }

// Len returns the number of indexed itemsets.
func (ix *Index) Len() int { return len(ix.sets) }

// Items returns the itemset with dense id. Shared storage; do not modify.
func (ix *Index) Items(id int32) []item.Item { return ix.sets[id] }

// Sets returns all indexed itemsets ordered by id. Shared; do not modify.
func (ix *Index) Sets() [][]item.Item { return ix.sets }

// Lookup returns the id of a canonical itemset, or -1. It is pure, performs
// no heap allocation, and is safe for concurrent use; callers count their
// own probes.
func (ix *Index) Lookup(items []item.Item) int32 {
	return ix.idx.findItems(items, ix.itemsOf)
}

// LookupPacked returns the id for a packed key (see AppendKey), or -1. Pure,
// allocation-free and safe for concurrent use.
func (ix *Index) LookupPacked(key []byte) int32 {
	return ix.idx.findPacked(key, ix.itemsOf)
}
