package itemset

import "pgarm/internal/item"

// Index is an immutable itemset -> dense-id lookup over a fixed candidate
// list. Unlike Table it carries no counts and no probe counter, so one Index
// can be shared read-only by every node of a simulated cluster while each
// node keeps its own count vector — the memory layout that lets a 16-node
// in-process cluster replicate multi-million-entry candidate sets (NPGM, and
// the TGD/PGD/FGD duplicated tables) without 16 physical copies.
type Index struct {
	byKey map[string]int32
	sets  [][]item.Item
}

// BuildIndex indexes the canonical itemsets; ids are positions in sets.
// The slices are retained, not copied.
func BuildIndex(sets [][]item.Item) *Index {
	ix := &Index{
		byKey: make(map[string]int32, len(sets)),
		sets:  sets,
	}
	for i, s := range sets {
		ix.byKey[Key(s)] = int32(i)
	}
	return ix
}

// Len returns the number of indexed itemsets.
func (ix *Index) Len() int { return len(ix.sets) }

// Items returns the itemset with dense id. Shared storage; do not modify.
func (ix *Index) Items(id int32) []item.Item { return ix.sets[id] }

// Sets returns all indexed itemsets ordered by id. Shared; do not modify.
func (ix *Index) Sets() [][]item.Item { return ix.sets }

// Lookup returns the id of a canonical itemset, or -1. It is pure and safe
// for concurrent use; callers count their own probes.
func (ix *Index) Lookup(items []item.Item) int32 {
	var buf [8 * 4]byte
	if id, ok := ix.byKey[string(AppendKey(buf[:0], items))]; ok {
		return id
	}
	return -1
}
