// Package itemset provides the itemset machinery shared by the sequential
// Cumulate baseline and all six parallel algorithms: canonical itemset keys,
// probe-counted candidate tables, the Apriori candidate generation
// (join + prune), k-subset enumeration, and a classic hash-tree index as an
// alternative to the flat table.
//
// An itemset is a canonical []item.Item: strictly ascending, no duplicates.
package itemset

import (
	"encoding/binary"

	"pgarm/internal/item"
)

// Key packs a canonical itemset into a compact string usable as a map key.
// The encoding is 4 bytes per item, big-endian, so key ordering matches
// itemset lexicographic ordering.
func Key(items []item.Item) string {
	buf := make([]byte, 4*len(items))
	for i, it := range items {
		binary.BigEndian.PutUint32(buf[4*i:], uint32(it))
	}
	return string(buf)
}

// AppendKey is Key but appends the encoding to dst, avoiding a second
// allocation when the caller reuses a scratch buffer.
func AppendKey(dst []byte, items []item.Item) []byte {
	for _, it := range items {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], uint32(it))
		dst = append(dst, b[:]...)
	}
	return dst
}

// ParseKey decodes a key produced by Key back into an itemset.
func ParseKey(key string) []item.Item {
	n := len(key) / 4
	out := make([]item.Item, n)
	for i := 0; i < n; i++ {
		out[i] = item.Item(binary.BigEndian.Uint32([]byte(key[4*i : 4*i+4])))
	}
	return out
}

// KeyLen returns the number of items encoded in a key.
func KeyLen(key string) int { return len(key) / 4 }

// Hash computes a stable FNV-1a style hash of a canonical itemset. It is the
// hash function HPGM applies to whole itemsets and the H-HPGM family applies
// to root vectors; stability across processes matters for the TCP fabric.
func Hash(items []item.Item) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, it := range items {
		v := uint32(it)
		for s := 0; s < 32; s += 8 {
			h ^= uint64((v >> s) & 0xff)
			h *= prime64
		}
	}
	return h
}
