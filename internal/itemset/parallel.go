package itemset

import (
	"sync"
	"sync/atomic"

	"pgarm/internal/item"
)

// Hook is the per-worker observability callback the parallel pass-boundary
// builders thread through to the tracer: hook(w) is invoked as worker w
// starts and the func it returns as the worker finishes (a span open/close
// pair). A nil Hook is inert and costs nothing.
type Hook func(w int) func()

func (h Hook) Begin(w int) func() {
	if h == nil {
		return func() {}
	}
	return h(w)
}

// ForShards splits [0, n) into at most workers contiguous ranges and runs
// fn(w, lo, hi) for each on its own goroutine, returning when all are done.
// With workers <= 1 (or n too small to split) fn runs inline. The shard
// index w is dense from 0 and ranges ascend with it, so callers that collect
// per-shard output and concatenate it in shard order reproduce the
// sequential iteration order exactly.
func ForShards(n, workers int, hook Hook, fn func(w, lo, hi int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		done := hook.Begin(0)
		fn(0, 0, n)
		done()
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			done := hook.Begin(w)
			defer done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// SortSetsParallel is SortSets across workers: sorted chunks merged pairwise.
// The merge takes from the left run on ties, so for pairwise-distinct sets
// (itemset lists always are — L_{k-1} and C_k hold no duplicates) the result
// is the identical permutation SortSets produces.
func SortSetsParallel(sets [][]item.Item, workers int) {
	const minChunk = 1024 // below this the goroutine overhead dominates
	if workers > len(sets)/minChunk {
		workers = len(sets) / minChunk
	}
	if workers <= 1 {
		SortSets(sets)
		return
	}
	bounds := make([]int, workers+1)
	for w := 0; w <= workers; w++ {
		bounds[w] = len(sets) * w / workers
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			SortSets(sets[lo:hi])
		}(bounds[w], bounds[w+1])
	}
	wg.Wait()

	buf := make([][]item.Item, len(sets))
	for len(bounds) > 2 {
		next := bounds[:1:1]
		var mwg sync.WaitGroup
		for i := 0; i+2 < len(bounds); i += 2 {
			mwg.Add(1)
			go func(lo, mid, hi int) {
				defer mwg.Done()
				mergeRuns(sets, buf, lo, mid, hi)
			}(bounds[i], bounds[i+1], bounds[i+2])
			next = append(next, bounds[i+2])
		}
		if len(bounds)%2 == 0 { // odd run count: the last run carries over
			next = append(next, bounds[len(bounds)-1])
		}
		mwg.Wait()
		bounds = next
	}
}

// mergeRuns merges the sorted runs sets[lo:mid] and sets[mid:hi] through buf
// back into sets, taking from the left run on ties.
func mergeRuns(sets, buf [][]item.Item, lo, mid, hi int) {
	i, j, o := lo, mid, lo
	for i < mid && j < hi {
		if item.Compare(sets[i], sets[j]) <= 0 {
			buf[o] = sets[i]
			i++
		} else {
			buf[o] = sets[j]
			j++
		}
		o++
	}
	for i < mid {
		buf[o] = sets[i]
		i, o = i+1, o+1
	}
	for j < hi {
		buf[o] = sets[j]
		j, o = j+1, o+1
	}
	copy(sets[lo:hi], buf[lo:hi])
}

// fillParallel initializes the probe for sets and inserts every set, CAS-ing
// ids into slots across workers. Duplicate itemsets keep the lowest id —
// the same winner as the sequential first-occurrence rule. init sizes the
// slot array to at least 2n, so the fill never reaches the grow threshold
// and no rehash can race the inserts.
func (f *flatProbe) fillParallel(sets [][]item.Item, workers int) {
	f.init(len(sets))
	n := len(sets)
	const minChunk = 512
	if workers > n/minChunk {
		workers = n / minChunk
	}
	if workers <= 1 {
		get := func(id int32) []item.Item { return sets[id] }
		for i := range sets {
			if f.findItems(sets[i], get) < 0 {
				f.insert(int32(i), get)
			}
		}
		return
	}
	var wg sync.WaitGroup
	var used int64
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			placed := 0
			for i := lo; i < hi; i++ {
				if f.placeCAS(int32(i), sets) {
					placed++
				}
			}
			atomic.AddInt64(&used, int64(placed))
		}(lo, hi)
	}
	wg.Wait()
	f.used = int(used)
}

// placeCAS inserts one id lock-free. Two equal itemsets follow the same
// probe sequence, so they meet at the same slot; the loser of the CAS sees
// the winner and resolves the duplicate toward the lower id. Reports whether
// a new (non-duplicate) entry was placed.
func (f *flatProbe) placeCAS(id int32, sets [][]item.Item) bool {
	items := sets[id]
	s := flatHash(items) & f.mask
	for {
		v := atomic.LoadInt32(&f.slots[s])
		if v == 0 {
			if atomic.CompareAndSwapInt32(&f.slots[s], 0, id+1) {
				return true
			}
			v = atomic.LoadInt32(&f.slots[s])
		}
		if other := v - 1; item.Equal(sets[other], items) {
			for other > id {
				if atomic.CompareAndSwapInt32(&f.slots[s], v, id+1) {
					return false
				}
				v = atomic.LoadInt32(&f.slots[s])
				other = v - 1
			}
			return false
		}
		s = (s + 1) & f.mask
	}
}

// GenParallel is Gen with the pass boundary parallelized: the sorted L_{k-1}
// is split at (k-2)-prefix run boundaries — joins only pair sets inside one
// run, so shards never produce overlapping candidates — and each shard
// joins and prunes into its own flat arena (one backing array per shard
// instead of one allocation per candidate). Prune membership is an
// open-addressed probe over the sorted sets keyed by the FNV hash, replacing
// the map of packed Key strings. Concatenating the shard outputs in shard
// order reproduces Gen's lexicographic output bit-identically; workers <= 1
// runs the same code on one goroutine.
func GenParallel(prev [][]item.Item, workers int, hook Hook) [][]item.Item {
	if len(prev) == 0 {
		return nil
	}
	k1 := len(prev[0])
	sets := make([][]item.Item, len(prev))
	copy(sets, prev)
	SortSetsParallel(sets, workers)

	var prune flatProbe
	prune.fillParallel(sets, workers)

	bounds := prefixRunBounds(sets, k1-1, workers)
	nShards := len(bounds) - 1
	outs := make([][][]item.Item, nShards)
	var wg sync.WaitGroup
	for s := 0; s < nShards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			done := hook.Begin(s)
			defer done()
			outs[s] = genShard(sets, &prune, k1, bounds[s], bounds[s+1])
		}(s)
	}
	wg.Wait()

	total := 0
	for _, o := range outs {
		total += len(o)
	}
	if total == 0 {
		return nil
	}
	out := make([][]item.Item, 0, total)
	for _, o := range outs {
		out = append(out, o...)
	}
	return out
}

// genShard joins and prunes one prefix-aligned range of the sorted L_{k-1}.
// Surviving candidates are appended to a single flat arena and sliced out
// after the arena stops growing, so the shard performs O(1) allocations
// however many candidates it emits.
func genShard(sets [][]item.Item, prune *flatProbe, k1, lo, hi int) [][]item.Item {
	k := k1 + 1
	get := func(id int32) []item.Item { return sets[id] }
	scratch := make([]item.Item, 0, k)
	sub := make([]item.Item, 0, k1)
	var arena []item.Item
	for i := lo; i < hi; i++ {
		for j := i + 1; j < hi; j++ {
			if !item.Equal(sets[i][:k1-1], sets[j][:k1-1]) {
				break // sorted order: no further joins for i
			}
			scratch = append(scratch[:0], sets[i]...)
			scratch = append(scratch, sets[j][k1-1])
			ok := true
			for drop := 0; drop < k-2; drop++ {
				sub = sub[:0]
				for x := range scratch {
					if x != drop {
						sub = append(sub, scratch[x])
					}
				}
				if prune.findItems(sub, get) < 0 {
					ok = false
					break
				}
			}
			if ok {
				arena = append(arena, scratch...)
			}
		}
	}
	nc := len(arena) / k
	out := make([][]item.Item, nc)
	for c := 0; c < nc; c++ {
		out[c] = arena[c*k : (c+1)*k : (c+1)*k]
	}
	return out
}

// prefixRunBounds splits [0, len(sets)) into up to workers ranges whose
// boundaries never fall inside a run of equal p-item prefixes. With p == 0
// (generating 2-itemsets from singletons) every set shares the empty prefix,
// so a single range comes back and the join runs sequentially — that pass
// uses the dedicated Pairs path anyway.
func prefixRunBounds(sets [][]item.Item, p, workers int) []int {
	n := len(sets)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	bounds := make([]int, 1, workers+1)
	for w := 1; w < workers; w++ {
		b := n * w / workers
		last := bounds[len(bounds)-1]
		if b <= last {
			continue
		}
		for b < n && item.Equal(sets[b-1][:p], sets[b][:p]) {
			b++
		}
		if b > last && b < n {
			bounds = append(bounds, b)
		}
	}
	return append(bounds, n)
}

// BuildIndexParallel is BuildIndex with the slot fill sharded across
// workers. Ids, lookups and duplicate handling (first occurrence keeps the
// id) are identical to the sequential build.
func BuildIndexParallel(sets [][]item.Item, workers int) *Index {
	if workers <= 1 {
		return BuildIndex(sets)
	}
	ix := &Index{sets: sets}
	ix.idx.fillParallel(sets, workers)
	return ix
}

// NewTableFrom builds a table holding exactly the given canonical itemsets
// (ids are positions in sets) with the itemset storage packed into one flat
// arena — one allocation instead of one clone per candidate — and the probe
// index filled across workers. sets must be duplicate-free, which candidate
// lists are by construction; later Adds remain valid.
func NewTableFrom(sets [][]item.Item, workers int) *Table {
	t := &Table{cands: make([]Candidate, len(sets))}
	total := 0
	for _, s := range sets {
		total += len(s)
	}
	arena := make([]item.Item, 0, total)
	for i, s := range sets {
		off := len(arena)
		arena = append(arena, s...)
		t.cands[i].Items = arena[off:len(arena):len(arena)]
	}
	t.idx.fillParallel(sets, workers)
	return t
}
