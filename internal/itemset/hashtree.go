package itemset

import "pgarm/internal/item"

// HashTree is the classic Apriori candidate index: interior nodes hash items
// into buckets, leaves hold small candidate lists, and subset matching walks
// the transaction once per branch instead of enumerating every k-subset.
// It indexes candidate ids of a Table; counts still live in the Table so the
// two index structures are interchangeable (the ablation bench compares
// them).
type HashTree struct {
	k      int
	degree int
	root   *htNode
	leafSz int
}

type htNode struct {
	children []*htNode // interior: bucket -> child
	ids      []int32   // leaf: candidate ids
	sets     [][]item.Item
	leaf     bool
	depth    int
}

// NewHashTree builds a hash tree over k-itemsets with the given branching
// degree and leaf capacity. degree defaults to 8 when non-positive and is
// capped at 64 (Match tracks visited buckets in a bitmask); leafCap defaults
// to 16 when non-positive.
func NewHashTree(k, degree, leafCap int) *HashTree {
	if degree <= 0 {
		degree = 8
	}
	if degree > 64 {
		degree = 64
	}
	if leafCap <= 0 {
		leafCap = 16
	}
	return &HashTree{
		k:      k,
		degree: degree,
		leafSz: leafCap,
		root:   &htNode{leaf: true},
	}
}

func (h *HashTree) bucket(x item.Item) int { return int(uint32(x)) % h.degree }

// Insert adds candidate id with its canonical itemset to the tree. The
// itemset must have length k and is retained (not copied).
func (h *HashTree) Insert(id int32, set []item.Item) {
	h.insert(h.root, id, set)
}

func (h *HashTree) insert(n *htNode, id int32, set []item.Item) {
	for {
		if n.leaf {
			n.ids = append(n.ids, id)
			n.sets = append(n.sets, set)
			// Split when over capacity and there is an item left to hash on.
			if len(n.ids) > h.leafSz && n.depth < h.k {
				h.split(n)
			}
			return
		}
		n = n.children[h.bucket(set[n.depth])]
	}
}

func (h *HashTree) split(n *htNode) {
	n.leaf = false
	n.children = make([]*htNode, h.degree)
	for i := range n.children {
		n.children[i] = &htNode{leaf: true, depth: n.depth + 1}
	}
	ids, sets := n.ids, n.sets
	n.ids, n.sets = nil, nil
	for i, id := range ids {
		h.insert(n.children[h.bucket(sets[i][n.depth])], id, sets[i])
	}
}

// Match invokes fn once for every candidate whose itemset is contained in
// the canonical transaction txn. probes counts leaf candidate comparisons,
// the hash-tree analogue of Table probes.
func (h *HashTree) Match(txn []item.Item, fn func(id int32)) (probes int64) {
	if h.k > len(txn) {
		return 0
	}
	h.match(h.root, txn, 0, &probes, fn)
	return probes
}

// match explores node n with transaction items txn[from:] remaining.
func (h *HashTree) match(n *htNode, txn []item.Item, from int, probes *int64, fn func(id int32)) {
	if n.leaf {
		for i, set := range n.sets {
			*probes++
			// The first n.depth items already matched along the path only in
			// terms of hash buckets, so verify full containment.
			if item.ContainsAll(txn, set) {
				fn(n.ids[i])
			}
		}
		return
	}
	// Interior at depth d: the d-th itemset position can be any remaining
	// transaction item; recurse into its bucket. Each distinct bucket is
	// entered once, at the earliest position hashing to it — a candidate
	// whose depth-d item sits later in the same bucket is still found,
	// because all of its deeper items lie past that earliest position and
	// the leaf verifies full containment. Entering a bucket twice would
	// instead report its candidates twice.
	need := h.k - n.depth // items still needed
	var seen uint64
	for i := from; i <= len(txn)-need; i++ {
		b := h.bucket(txn[i])
		if seen&(1<<uint(b)) != 0 {
			continue
		}
		seen |= 1 << uint(b)
		h.match(n.children[b], txn, i+1, probes, fn)
	}
}
