package itemset

import (
	"fmt"
	"sort"

	"pgarm/internal/item"
)

// Candidate is one candidate itemset with its running support count
// (the paper's sup_cou field).
type Candidate struct {
	Items []item.Item
	Count int64
}

// Table is a candidate itemset table with support counters and probe
// accounting. A probe is one lookup performed while counting support — the
// quantity Figure 15 of the paper plots per node to show load distribution.
//
// Lookups go through an open-addressed flat index keyed by the candidates'
// packed-key form, so Lookup/LookupKey/LookupPacked allocate nothing — the
// count-support phase probes the table once per enumerated subset and must
// not touch the heap.
//
// Tables are owned by a single node goroutine and are not safe for
// concurrent mutation.
type Table struct {
	cands  []Candidate
	idx    flatProbe
	probes int64
}

// NewTable returns an empty table sized for roughly n candidates.
func NewTable(n int) *Table {
	t := &Table{cands: make([]Candidate, 0, n)}
	t.idx.init(n)
	return t
}

// itemsOf maps a dense id to its stored canonical itemset.
func (t *Table) itemsOf(id int32) []item.Item { return t.cands[id].Items }

// Add inserts a candidate with zero count, returning its dense id. Adding an
// itemset already present returns the existing id. The itemset must be
// canonical; Add stores its own copy.
func (t *Table) Add(items []item.Item) int32 {
	if id := t.idx.findItems(items, t.itemsOf); id >= 0 {
		return id
	}
	id := int32(len(t.cands))
	t.cands = append(t.cands, Candidate{Items: item.Clone(items)})
	t.idx.insert(id, t.itemsOf)
	return id
}

// Len returns the number of candidates in the table.
func (t *Table) Len() int { return len(t.cands) }

// Get returns the candidate with dense id. The returned pointer stays valid
// only until the next Add.
func (t *Table) Get(id int32) *Candidate { return &t.cands[id] }

// Lookup probes the table for a canonical itemset, returning its id or -1.
// Every call counts as one probe. It performs no heap allocation.
func (t *Table) Lookup(items []item.Item) int32 {
	t.probes++
	return t.idx.findItems(items, t.itemsOf)
}

// LookupKey probes by pre-packed key, returning the id or -1. Counts as one
// probe.
func (t *Table) LookupKey(key string) int32 {
	t.probes++
	return t.idx.findKey(key, t.itemsOf)
}

// LookupPacked probes by a packed key held in a reusable byte buffer (see
// AppendKey), returning the id or -1. Counts as one probe and performs no
// heap allocation.
func (t *Table) LookupPacked(key []byte) int32 {
	t.probes++
	return t.idx.findPacked(key, t.itemsOf)
}

// Has reports whether the itemset is present without counting a probe; used
// by candidate generation, not by support counting.
func (t *Table) Has(items []item.Item) bool {
	return t.idx.findItems(items, t.itemsOf) >= 0
}

// Increment adds one to the support count of candidate id.
func (t *Table) Increment(id int32) { t.cands[id].Count++ }

// AddCount adds delta to the support count of candidate id.
func (t *Table) AddCount(id int32, delta int64) { t.cands[id].Count += delta }

// Probes returns the number of lookups performed so far.
func (t *Table) Probes() int64 { return t.probes }

// ResetProbes zeroes the probe counter.
func (t *Table) ResetProbes() { t.probes = 0 }

// AddProbes adds delta to the probe counter — how parallel scan workers fold
// their per-worker probe counts into the owning table after the merge
// barrier.
func (t *Table) AddProbes(delta int64) { t.probes += delta }

// Counts returns a snapshot of all support counters, indexed by candidate id.
func (t *Table) Counts() []int64 {
	out := make([]int64, len(t.cands))
	for i := range t.cands {
		out[i] = t.cands[i].Count
	}
	return out
}

// Candidates returns the canonical itemsets in the table ordered by id.
// The inner slices are shared; do not modify.
func (t *Table) Candidates() [][]item.Item {
	out := make([][]item.Item, len(t.cands))
	for i := range t.cands {
		out[i] = t.cands[i].Items
	}
	return out
}

// Large returns the itemsets whose count meets minCount, each paired with
// its count, ordered lexicographically.
func (t *Table) Large(minCount int64) []Counted {
	var out []Counted
	for i := range t.cands {
		if t.cands[i].Count >= minCount {
			out = append(out, Counted{Items: t.cands[i].Items, Count: t.cands[i].Count})
		}
	}
	SortCounted(out)
	return out
}

// String summarizes the table.
func (t *Table) String() string {
	return fmt.Sprintf("table{candidates:%d probes:%d}", len(t.cands), t.probes)
}

// Counted pairs an itemset with a support count; the unit the coordinator
// gathers and the miner reports.
type Counted struct {
	Items []item.Item
	Count int64
}

// SortCounted orders counted itemsets lexicographically by itemset.
func SortCounted(cs []Counted) {
	sort.Slice(cs, func(i, j int) bool { return item.Compare(cs[i].Items, cs[j].Items) < 0 })
}
