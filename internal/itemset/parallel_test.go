package itemset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"pgarm/internal/item"
)

// randomLevel builds a random duplicate-free "L_{k-1}": sets of equal length
// k1 drawn from a small universe so join prefixes collide often.
func randomLevel(rng *rand.Rand, k1, n, universe int) [][]item.Item {
	seen := make(map[string]bool)
	var out [][]item.Item
	for len(out) < n {
		s := make([]item.Item, 0, k1)
		for len(s) < k1 {
			x := item.Item(rng.Intn(universe))
			if !item.Contains(s, x) {
				s = append(s, x)
			}
		}
		item.Sort(s)
		key := Key(s)
		if seen[key] {
			n-- // universe too small to keep trying forever
			continue
		}
		seen[key] = true
		out = append(out, s)
	}
	return out
}

// TestGenParallelMatchesGen is the bit-identity property the parallel pass
// boundary must keep: for random L_{k-1} and every worker count, GenParallel
// produces exactly Gen's output, order included.
func TestGenParallelMatchesGen(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k1 := 1 + rng.Intn(4) // 1..4: includes the unsplittable empty-prefix case
		prev := randomLevel(rng, k1, 10+rng.Intn(120), 4+rng.Intn(20))
		want := Gen(prev)
		for _, w := range []int{1, 2, 4, 8} {
			got := GenParallel(prev, w, nil)
			if !reflect.DeepEqual(got, want) {
				t.Logf("seed=%d k1=%d workers=%d: got %d candidates, want %d",
					seed, k1, w, len(got), len(want))
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSortSetsParallelMatches(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k1 := 1 + rng.Intn(3)
		sets := randomLevel(rng, k1, 3000+rng.Intn(2000), 200)
		want := make([][]item.Item, len(sets))
		copy(want, sets)
		SortSets(want)
		for _, w := range []int{2, 3, 4, 8} {
			got := make([][]item.Item, len(sets))
			copy(got, sets)
			SortSetsParallel(got, w)
			if !reflect.DeepEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildIndexParallelMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sets := randomLevel(rng, 3, 4000, 40)
	// Inject duplicates: parallel fill must keep the first occurrence's id.
	sets = append(sets, sets[17], sets[42])
	seq := BuildIndex(sets)
	for _, w := range []int{1, 2, 4, 8} {
		par := BuildIndexParallel(sets, w)
		for _, s := range sets {
			if got, want := par.Lookup(s), seq.Lookup(s); got != want {
				t.Fatalf("workers=%d Lookup(%v) = %d, want %d", w, s, got, want)
			}
		}
		if par.Lookup([]item.Item{1000, 1001, 1002}) != -1 {
			t.Fatalf("workers=%d: absent set found", w)
		}
	}
}

func TestNewTableFromMatchesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sets := randomLevel(rng, 3, 3000, 40)
	want := NewTable(len(sets))
	for _, s := range sets {
		want.Add(s)
	}
	for _, w := range []int{1, 2, 4, 8} {
		got := NewTableFrom(sets, w)
		if got.Len() != want.Len() {
			t.Fatalf("workers=%d Len=%d want %d", w, got.Len(), want.Len())
		}
		for _, s := range sets {
			if g, wt := got.Lookup(s), want.Lookup(s); g != wt {
				t.Fatalf("workers=%d Lookup(%v)=%d want %d", w, s, g, wt)
			}
		}
		// Adds after a flat-arena build must still work (and not corrupt
		// earlier entries).
		extra := []item.Item{900, 901, 902}
		id := got.Add(extra)
		if got.Lookup(extra) != id {
			t.Fatalf("workers=%d: post-build Add lost", w)
		}
	}
}

// TestProbeSetCollisions is the hash-collision regression test for the
// open-addressed prune set: sets landing in the same slot chain must stay
// distinguishable, and absent sets sharing the chain must miss.
func TestProbeSetCollisions(t *testing.T) {
	// Collect 2-itemsets {0, x} that collide in the initial 16-slot table.
	byBucket := make(map[uint64][][]item.Item)
	for x := item.Item(1); x < 400; x++ {
		s := []item.Item{0, x}
		b := flatHash(s) & 15
		byBucket[b] = append(byBucket[b], s)
	}
	var sets [][]item.Item
	var bucket uint64
	for b, group := range byBucket {
		if len(group) >= 6 {
			sets, bucket = group[:4], b
			break
		}
	}
	if sets == nil {
		t.Fatal("no colliding bucket found (hash function changed?)")
	}
	for _, w := range []int{1, 4} {
		var f flatProbe
		f.fillParallel(sets, w)
		get := func(id int32) []item.Item { return sets[id] }
		for i, s := range sets {
			if got := f.findItems(s, get); got != int32(i) {
				t.Fatalf("workers=%d: colliding set %v resolved to id %d, want %d", w, s, got, i)
			}
		}
		// Absent sets from the same slot chain must not false-positive.
		absent := byBucket[bucket][4:]
		for _, s := range absent {
			if f.findItems(s, get) != -1 {
				t.Fatalf("workers=%d: absent colliding set %v reported present", w, s)
			}
		}
	}
}

// TestGenParallelArenaShape pins the allocation contract: every candidate is
// a full slice (len == cap) of a shard arena, not a private allocation.
func TestGenParallelArenaShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	prev := randomLevel(rng, 2, 200, 12)
	for _, c := range GenParallel(prev, 4, nil) {
		if cap(c) != len(c) {
			t.Fatalf("candidate %v: cap %d != len %d (not arena-sliced)", c, cap(c), len(c))
		}
	}
}
