package itemset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pgarm/internal/item"
)

func TestKeyRoundTrip(t *testing.T) {
	cases := [][]item.Item{nil, {0}, {1, 5, 1 << 20}, {7, 8, 9, 10}}
	for _, c := range cases {
		got := ParseKey(Key(c))
		if len(c) == 0 && len(got) == 0 {
			continue
		}
		if !item.Equal(got, c) {
			t.Errorf("round trip %v -> %v", c, got)
		}
	}
}

func TestKeyOrderMatchesItemsetOrder(t *testing.T) {
	a := Key([]item.Item{1, 2})
	b := Key([]item.Item{1, 3})
	c := Key([]item.Item{2, 0})
	if !(a < b && b < c) {
		t.Errorf("key ordering broken: %q %q %q", a, b, c)
	}
}

func TestAppendKeyMatchesKey(t *testing.T) {
	s := []item.Item{3, 9, 1000}
	if string(AppendKey(nil, s)) != Key(s) {
		t.Error("AppendKey and Key disagree")
	}
	if KeyLen(Key(s)) != 3 {
		t.Errorf("KeyLen = %d", KeyLen(Key(s)))
	}
}

func TestHashStability(t *testing.T) {
	s := []item.Item{4, 7, 22}
	if Hash(s) != Hash(append([]item.Item(nil), s...)) {
		t.Error("Hash must depend only on contents")
	}
	if Hash([]item.Item{1, 2}) == Hash([]item.Item{2, 1}) {
		t.Error("order must matter (canonical input assumed, collision this cheap is a bug)")
	}
}

func TestTableBasics(t *testing.T) {
	tbl := NewTable(4)
	id1 := tbl.Add([]item.Item{1, 2})
	id2 := tbl.Add([]item.Item{1, 3})
	if tbl.Add([]item.Item{1, 2}) != id1 {
		t.Error("re-adding returns the original id")
	}
	if tbl.Len() != 2 {
		t.Errorf("Len = %d", tbl.Len())
	}
	if got := tbl.Lookup([]item.Item{1, 2}); got != id1 {
		t.Errorf("Lookup = %d", got)
	}
	if got := tbl.Lookup([]item.Item{9, 9}); got != -1 {
		t.Errorf("missing Lookup = %d", got)
	}
	if tbl.Probes() != 2 {
		t.Errorf("Probes = %d, want 2", tbl.Probes())
	}
	tbl.ResetProbes()
	if tbl.Probes() != 0 {
		t.Error("ResetProbes failed")
	}
	tbl.Increment(id1)
	tbl.Increment(id1)
	tbl.AddCount(id2, 5)
	if tbl.Get(id1).Count != 2 || tbl.Get(id2).Count != 5 {
		t.Error("counts wrong")
	}
	counts := tbl.Counts()
	if counts[id1] != 2 || counts[id2] != 5 {
		t.Error("Counts snapshot wrong")
	}
	large := tbl.Large(3)
	if len(large) != 1 || !item.Equal(large[0].Items, []item.Item{1, 3}) {
		t.Errorf("Large(3) = %v", large)
	}
	if !tbl.Has([]item.Item{1, 2}) || tbl.Has([]item.Item{2, 3}) {
		t.Error("Has wrong")
	}
	if tbl.Probes() != 0 {
		t.Error("Has must not count probes")
	}
}

func TestTableAddCopies(t *testing.T) {
	tbl := NewTable(1)
	s := []item.Item{1, 2}
	id := tbl.Add(s)
	s[0] = 9
	if !item.Equal(tbl.Get(id).Items, []item.Item{1, 2}) {
		t.Error("Add must copy the itemset")
	}
}

func TestGenJoinPrune(t *testing.T) {
	// L2 = {1,2},{1,3},{2,3},{2,4}: join gives {1,2,3} (kept: all subsets
	// large) and {2,3,4} (pruned: {3,4} not in L2).
	prev := [][]item.Item{{1, 2}, {1, 3}, {2, 3}, {2, 4}}
	got := Gen(prev)
	if len(got) != 1 || !item.Equal(got[0], []item.Item{1, 2, 3}) {
		t.Errorf("Gen = %v, want [{1,2,3}]", got)
	}
	if Gen(nil) != nil {
		t.Error("Gen(nil) should be nil")
	}
}

func TestGenFromSingletons(t *testing.T) {
	prev := [][]item.Item{{3}, {1}, {2}}
	got := Gen(prev)
	want := [][]item.Item{{1, 2}, {1, 3}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("Gen singles = %v", got)
	}
	for i := range want {
		if !item.Equal(got[i], want[i]) {
			t.Errorf("Gen[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPairs(t *testing.T) {
	got := Pairs([]item.Item{1, 4, 9})
	want := [][]item.Item{{1, 4}, {1, 9}, {4, 9}}
	if len(got) != len(want) {
		t.Fatalf("Pairs = %v", got)
	}
	for i := range want {
		if !item.Equal(got[i], want[i]) {
			t.Errorf("Pairs[%d] = %v", i, got[i])
		}
	}
}

func TestForEachSubset(t *testing.T) {
	var got [][]item.Item
	ForEachSubset([]item.Item{1, 2, 3, 4}, 2, func(s []item.Item) bool {
		got = append(got, item.Clone(s))
		return true
	})
	if len(got) != 6 {
		t.Fatalf("C(4,2) = %d subsets", len(got))
	}
	if !item.Equal(got[0], []item.Item{1, 2}) || !item.Equal(got[5], []item.Item{3, 4}) {
		t.Errorf("lexicographic order broken: %v", got)
	}
	// Early stop.
	n := 0
	ForEachSubset([]item.Item{1, 2, 3, 4}, 2, func([]item.Item) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop after %d", n)
	}
	// Degenerate sizes.
	ForEachSubset([]item.Item{1}, 2, func([]item.Item) bool { t.Error("k>n yields nothing"); return true })
	ForEachSubset([]item.Item{1}, 0, func([]item.Item) bool { t.Error("k=0 yields nothing"); return true })
}

// Property: apriori-gen output is sorted, canonical, and every (k-1)-subset
// of every candidate is in the input.
func TestGenProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random L2 over a small universe.
		var prev [][]item.Item
		seen := map[string]bool{}
		for i := 0; i < 30; i++ {
			a, b := item.Item(rng.Intn(10)), item.Item(rng.Intn(10))
			if a == b {
				continue
			}
			s := item.Dedup([]item.Item{a, b})
			k := Key(s)
			if !seen[k] {
				seen[k] = true
				prev = append(prev, s)
			}
		}
		out := Gen(prev)
		for i, c := range out {
			if !item.IsSorted(c) || len(c) != 3 {
				return false
			}
			if i > 0 && item.Compare(out[i-1], c) >= 0 {
				return false
			}
			ok := true
			ForEachSubset(c, 2, func(s []item.Item) bool {
				if !seen[Key(s)] {
					ok = false
					return false
				}
				return true
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHashTreeMatchesTable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		k := 2 + rng.Intn(2)
		tbl := NewTable(64)
		tree := NewHashTree(k, 4, 2) // tiny leaves force deep splits
		seen := map[string]bool{}
		for i := 0; i < 60; i++ {
			s := make([]item.Item, 0, k)
			for len(s) < k {
				s = item.Dedup(append(s, item.Item(rng.Intn(25))))
			}
			if seen[Key(s)] {
				continue
			}
			seen[Key(s)] = true
			id := tbl.Add(s)
			tree.Insert(id, tbl.Get(id).Items)
		}
		// Random transaction; compare matched candidate id sets.
		txn := make([]item.Item, 0, 12)
		for len(txn) < 10 {
			txn = item.Dedup(append(txn, item.Item(rng.Intn(25))))
		}
		want := map[int32]int{}
		ForEachSubset(txn, k, func(s []item.Item) bool {
			if id := tbl.Lookup(s); id >= 0 {
				want[id]++
			}
			return true
		})
		got := map[int32]int{}
		tree.Match(txn, func(id int32) { got[id]++ })
		if len(got) != len(want) {
			t.Fatalf("trial %d: hash tree matched %d ids, table %d", trial, len(got), len(want))
		}
		for id, n := range want {
			if n != 1 {
				t.Fatalf("subset enumeration yielded duplicate id %d", id)
			}
			if got[id] != 1 {
				t.Fatalf("trial %d: id %d matched %d times by tree", trial, id, got[id])
			}
		}
	}
}

func TestHashTreeEmptyAndSmall(t *testing.T) {
	tree := NewHashTree(2, 8, 16)
	probes := tree.Match([]item.Item{1, 2, 3}, func(int32) { t.Error("empty tree matched") })
	if probes != 0 {
		t.Errorf("probes on empty tree = %d", probes)
	}
	tree.Insert(0, []item.Item{5, 9})
	n := 0
	tree.Match([]item.Item{1, 5, 9}, func(id int32) { n++ })
	if n != 1 {
		t.Errorf("matched %d, want 1", n)
	}
	tree.Match([]item.Item{5}, func(int32) { t.Error("k > |txn| must not match") })
}

func TestSortCounted(t *testing.T) {
	cs := []Counted{
		{Items: []item.Item{2, 3}, Count: 1},
		{Items: []item.Item{1, 9}, Count: 2},
	}
	SortCounted(cs)
	if !item.Equal(cs[0].Items, []item.Item{1, 9}) {
		t.Errorf("SortCounted order wrong: %v", cs)
	}
}

// Property: the open-addressed flat probe agrees with a reference map under
// random adds and lookups, including misses and re-adds.
func TestTableFlatProbeMatchesMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := NewTable(0)
		ref := map[string]int32{}
		for i := 0; i < 300; i++ {
			k := 1 + rng.Intn(4)
			s := make([]item.Item, 0, k)
			for len(s) < k {
				s = item.Dedup(append(s, item.Item(rng.Intn(40))))
			}
			if rng.Intn(3) == 0 {
				id := tbl.Add(s)
				if want, ok := ref[Key(s)]; ok {
					if id != want {
						return false
					}
				} else {
					ref[Key(s)] = id
				}
			} else {
				want, ok := ref[Key(s)]
				if !ok {
					want = -1
				}
				if tbl.Lookup(s) != want {
					return false
				}
				if tbl.LookupKey(Key(s)) != want {
					return false
				}
				if tbl.LookupPacked(AppendKey(nil, s)) != want {
					return false
				}
				if tbl.Has(s) != ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestIndexLookupPacked(t *testing.T) {
	sets := [][]item.Item{{1, 2}, {1, 3}, {5, 9, 11}}
	ix := BuildIndex(sets)
	var buf []byte
	for i, s := range sets {
		buf = AppendKey(buf[:0], s)
		if got := ix.LookupPacked(buf); got != int32(i) {
			t.Errorf("LookupPacked(%v) = %d, want %d", s, got, i)
		}
	}
	if got := ix.LookupPacked(AppendKey(nil, []item.Item{7, 8})); got != -1 {
		t.Errorf("missing LookupPacked = %d", got)
	}
}

// The zero-allocation contract of the candidate probing hot path: Table and
// Index lookups, packed-key probes and scratch-buffer subset enumeration
// must not touch the heap.
func TestProbePathZeroAlloc(t *testing.T) {
	tbl := NewTable(64)
	var sets [][]item.Item
	for i := 0; i < 64; i++ {
		s := []item.Item{item.Item(i), item.Item(i + 100), item.Item(i + 1000)}
		tbl.Add(s)
		sets = append(sets, s)
	}
	ix := BuildIndex(sets)
	hit := []item.Item{5, 105, 1005}
	miss := []item.Item{5, 105, 9999}
	key := AppendKey(nil, hit)
	txn := []item.Item{1, 2, 3, 4, 5, 6, 7, 8}
	scratch := make([]item.Item, 3)

	cases := []struct {
		name string
		fn   func()
	}{
		{"Table.Lookup hit", func() { tbl.Lookup(hit) }},
		{"Table.Lookup miss", func() { tbl.Lookup(miss) }},
		{"Table.LookupPacked", func() { tbl.LookupPacked(key) }},
		{"Index.Lookup", func() { ix.Lookup(hit) }},
		{"Index.LookupPacked", func() { ix.LookupPacked(key) }},
		{"ForEachSubsetScratch", func() {
			ForEachSubsetScratch(txn, 3, scratch, func(s []item.Item) bool { return true })
		}},
	}
	for _, c := range cases {
		if allocs := testing.AllocsPerRun(100, c.fn); allocs != 0 {
			t.Errorf("%s: %.1f allocs/op, want 0", c.name, allocs)
		}
	}
}

// ForEachSubsetScratch must enumerate exactly what ForEachSubset does, in
// the same lexicographic order, for every (n, k).
func TestForEachSubsetScratchMatches(t *testing.T) {
	for n := 0; n <= 7; n++ {
		txn := make([]item.Item, n)
		for i := range txn {
			txn[i] = item.Item(10 * (i + 1))
		}
		for k := 0; k <= n+1; k++ {
			var a, b [][]item.Item
			ForEachSubset(txn, k, func(s []item.Item) bool {
				a = append(a, item.Clone(s))
				return true
			})
			scratch := make([]item.Item, 0, k)
			ForEachSubsetScratch(txn, k, scratch, func(s []item.Item) bool {
				b = append(b, item.Clone(s))
				return true
			})
			if len(a) != len(b) {
				t.Fatalf("n=%d k=%d: %d vs %d subsets", n, k, len(a), len(b))
			}
			for i := range a {
				if !item.Equal(a[i], b[i]) {
					t.Fatalf("n=%d k=%d subset %d: %v vs %v", n, k, i, a[i], b[i])
				}
			}
		}
	}
}
