// Package obshttp is the shared observability HTTP surface of the pgarm
// binaries: one private mux serving Prometheus /metrics, a JSON /healthz, the
// standard /debug/pprof endpoints and — when a cluster view is attached —
// live /debug/cluster run introspection. pgarm-worker and pgarm-mine both
// mount it so a mining process looks the same to scrapers regardless of
// deployment shape.
package obshttp

import (
	"encoding/json"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"

	"pgarm/internal/cluster"
	"pgarm/internal/obs"
)

// Config assembles one process's observability surface. Registry is
// required; everything else is optional and degrades gracefully.
type Config struct {
	Node      int    // this process's node id (labels the fabric gauges)
	Nodes     int    // cluster size, reported by /healthz
	Algorithm string // mining algorithm, reported by /healthz

	// Registry backs /metrics (required).
	Registry *obs.Registry
	// Endpoint, when non-nil, adds live pgarm_fabric_* gauges to the registry
	// and surfaces fabric errors through /healthz (503 + "fabric_error").
	Endpoint cluster.Endpoint
	// Cluster, when non-nil, is mounted at /debug/cluster — normally a
	// *driver.ClusterView serving the coordinator's live run snapshot.
	Cluster http.Handler
	// Done, when non-nil, flips /healthz's "done" field when the run ends.
	Done *atomic.Bool
	// Log receives handler errors; nil uses slog.Default().
	Log *slog.Logger
}

// health is the /healthz response body.
type health struct {
	Node        int    `json:"node"`
	Nodes       int    `json:"nodes"`
	Algorithm   string `json:"algorithm"`
	Pass        int64  `json:"pass"`
	Done        bool   `json:"done"`
	FabricError string `json:"fabric_error,omitempty"`
}

// NewMux builds the telemetry mux. It registers the fabric gauges on
// cfg.Registry as a side effect when an endpoint is attached, and reads the
// live pass number from the same pgarm_pass gauge the mining node updates
// (register() is idempotent per name+labels).
func NewMux(cfg Config) *http.ServeMux {
	logger := cfg.Log
	if logger == nil {
		logger = slog.Default()
	}
	reg := cfg.Registry
	l := obs.L("node", strconv.Itoa(cfg.Node))
	if ep := cfg.Endpoint; ep != nil {
		reg.GaugeFunc("pgarm_fabric_bytes_sent", "Fabric payload bytes sent since start.",
			func() float64 { return float64(ep.Stats().BytesSent) }, l)
		reg.GaugeFunc("pgarm_fabric_bytes_received", "Fabric payload bytes received since start.",
			func() float64 { return float64(ep.Stats().BytesRecv) }, l)
		reg.GaugeFunc("pgarm_fabric_msgs_sent", "Fabric messages sent since start.",
			func() float64 { return float64(ep.Stats().MsgsSent) }, l)
		reg.GaugeFunc("pgarm_fabric_msgs_received", "Fabric messages received since start.",
			func() float64 { return float64(ep.Stats().MsgsRecv) }, l)
	}
	passGauge := reg.Gauge("pgarm_pass", "Pass currently executing.", l)

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			logger.Error("metrics write failed", "err", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		h := health{
			Node:      cfg.Node,
			Nodes:     cfg.Nodes,
			Algorithm: cfg.Algorithm,
			Pass:      passGauge.Value(),
		}
		if cfg.Done != nil {
			h.Done = cfg.Done.Load()
		}
		code := http.StatusOK
		if cfg.Endpoint != nil {
			if err := cfg.Endpoint.Err(); err != nil {
				h.FabricError = err.Error()
				code = http.StatusServiceUnavailable
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		if err := json.NewEncoder(w).Encode(&h); err != nil {
			logger.Error("healthz write failed", "err", err)
		}
	})
	if cfg.Cluster != nil {
		mux.Handle("/debug/cluster", cfg.Cluster)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr and serves the mux in a background goroutine, logging (not
// crashing) on server errors — telemetry must never take the miner down. It
// returns the bound address (useful with ":0") or an error if the listen
// itself failed.
func Serve(addr string, mux http.Handler, logger *slog.Logger) (string, error) {
	if logger == nil {
		logger = slog.Default()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			logger.Error("telemetry http server stopped", "err", err)
		}
	}()
	return ln.Addr().String(), nil
}
