// Command pgarm-ingest appends transactions to a stream log (internal/stream),
// the durable ingestion point of the streaming pipeline: pgarm-ingest appends,
// pgarm-mine -follow tails the log and runs FUP-style incremental checkpoints,
// pgarm-serve hot-swaps the resulting snapshots.
//
// The source is either the synthetic generator (constant memory, any scale) or
// an existing transaction file from pgarm-gen (-from, row or columnar). TIDs
// are remapped to continue the log's strictly ascending sequence, so repeated
// invocations model an endless arrival stream.
//
// Examples:
//
//	pgarm-ingest -log /tmp/stream -dataset R30F5 -scale 0.002 -batch 1000
//	pgarm-ingest -log /tmp/stream -from /tmp/r30f5.ptx -batch 500 -interval 100ms
//	pgarm-ingest -log /tmp/stream -dataset R30F5 -scale 0.01 -batch 2000 -batches 3
package main

import (
	"errors"
	"flag"
	"time"

	"pgarm/internal/gen"
	"pgarm/internal/item"
	"pgarm/internal/logx"
	"pgarm/internal/stream"
	"pgarm/internal/txn"
)

func main() {
	var (
		logDir   = flag.String("log", "", "stream log directory (created if absent)")
		dataset  = flag.String("dataset", "R30F5", "dataset configuration: R30F5, R30F3 or R30F10")
		scale    = flag.Float64("scale", 0.002, "fraction of the paper's 3.2M transactions to generate")
		seed     = flag.Int64("seed", 1998, "generator seed")
		from     = flag.String("from", "", "append from this pgarm-gen transaction file instead of generating")
		batch    = flag.Int("batch", 1000, "transactions per appended (and fsync'd) batch")
		batches  = flag.Int("batches", 0, "stop after this many batches (0 = drain the source)")
		interval = flag.Duration("interval", 0, "pause between batches (models arrival pacing)")
		segBytes = flag.Int64("segment-bytes", stream.DefaultSegmentBytes, "rotate log segments at this size")
		logOpts  = logx.Flags()
	)
	flag.Parse()
	logger := logOpts.Init("pgarm-ingest")

	if *logDir == "" {
		logx.Fatal(logger, "missing -log directory")
	}
	if *batch <= 0 {
		logx.Fatal(logger, "-batch must be positive")
	}
	l, err := stream.OpenLog(*logDir, stream.Options{SegmentBytes: *segBytes})
	if err != nil {
		logx.Fatal(logger, "open log", "err", err)
	}
	start := time.Now()
	logger.Info("log open", "dir", *logDir, "txns", l.Len(), "next_tid", l.NextTID())

	next := l.NextTID()
	appended, batchesDone := 0, 0
	pending := make([]txn.Transaction, 0, *batch)
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		if err := l.Append(pending); err != nil {
			return err
		}
		if err := l.Sync(); err != nil {
			return err
		}
		appended += len(pending)
		batchesDone++
		logger.Info("appended batch", "batch", batchesDone, "txns", len(pending),
			"log_txns", l.Len(), "offset", l.End())
		pending = pending[:0]
		if *interval > 0 {
			time.Sleep(*interval)
		}
		return nil
	}
	errDone := errors.New("batch limit reached")
	// emit takes ownership of items (callers clone when their buffer is
	// scratch) and remaps the TID onto the log's sequence.
	emit := func(items []item.Item) error {
		pending = append(pending, txn.Transaction{TID: next, Items: items})
		next++
		if len(pending) >= *batch {
			if err := flush(); err != nil {
				return err
			}
			if *batches > 0 && batchesDone >= *batches {
				return errDone
			}
		}
		return nil
	}

	var srcErr error
	if *from != "" {
		f, err := txn.Open(*from)
		if err != nil {
			logx.Fatal(logger, "open source", "err", err)
		}
		logger.Info("ingesting from file", "path", *from, "txns", f.Len())
		srcErr = f.Scan(func(t txn.Transaction) error {
			return emit(item.Clone(t.Items))
		})
	} else {
		p, err := gen.ByName(*dataset)
		if err != nil {
			logx.Fatal(logger, "bad dataset", "err", err)
		}
		p = p.Scaled(*scale)
		p.Seed = *seed
		logger.Info("ingesting from generator", "dataset", p.Name, "txns", p.NumTxns)
		_, srcErr = gen.Stream(p, func(t txn.Transaction) error {
			return emit(t.Items) // gen.Stream allocates per txn: safe to keep
		})
	}
	if srcErr != nil && !errors.Is(srcErr, errDone) {
		l.Close()
		logx.Fatal(logger, "ingest failed", "err", srcErr)
	}
	if srcErr == nil {
		if err := flush(); err != nil {
			l.Close()
			logx.Fatal(logger, "ingest failed", "err", err)
		}
	}
	total := l.Len()
	if err := l.Close(); err != nil {
		logx.Fatal(logger, "close log", "err", err)
	}
	logger.Info("ingest complete", "appended", appended, "batches", batchesDone,
		"log_txns", total, "elapsed", time.Since(start).Round(time.Millisecond))
}
