// Command pgarm-serve answers recommendation queries over a mined model
// snapshot (produced by `pgarm-mine ... -o model.pgarm`). It is the serving
// half of the system: the mining side turns transactions into generalized
// rules, this process turns baskets into ranked, taxonomy-aware, top-K
// recommendations under concurrent load.
//
//	pgarm-mine -dataset R30F5 -scale 0.002 -minsup 0.01 -minconf 0.3 -o /tmp/model.pgarm -quiet
//	pgarm-serve -model /tmp/model.pgarm -addr :8080
//	curl -s localhost:8080/v1/recommend -d '{"basket":[1034,2207],"k":5}'
//
// Endpoints:
//
//	POST /v1/recommend  {"basket":[...],"k":5}  → ranked recommendations
//	GET  /v1/rules?limit=&offset=&root=         → rule listing
//	POST /reload[?model=path]                   → hot-swap a new snapshot
//	GET  /healthz                               → snapshot identity + health
//	GET  /metrics                               → Prometheus text exposition
//
// Reloads (POST /reload or SIGHUP) build the new index off to the side and
// swap it in atomically: in-flight requests finish on the snapshot they
// started with, new requests see the new one, and a failed reload keeps the
// old snapshot serving.
package main

import (
	"flag"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pgarm/internal/logx"
	"pgarm/internal/obs"
	"pgarm/internal/serve"
)

func main() {
	var (
		modelPath = flag.String("model", "", "model snapshot to serve (from pgarm-mine -o)")
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		topK      = flag.Int("topk", 10, "default recommendation count when a query omits k")
		maxK      = flag.Int("maxk", 100, "upper bound on per-query k")
		cacheSize = flag.Int("cache", 4096, "recommendation cache entries (0 = caching off)")
		logOpts   = logx.Flags()
	)
	flag.Parse()
	logger := logOpts.Init("pgarm-serve")
	if *modelPath == "" {
		logx.Fatal(logger, "missing -model snapshot (mine one with `pgarm-mine ... -o model.pgarm`)")
	}

	start := time.Now()
	ix, err := serve.LoadFile(*modelPath)
	if err != nil {
		logx.Fatal(logger, "model load failed", "path", *modelPath, "err", err)
	}
	meta := ix.Meta()
	logger.Info("loaded model",
		"path", *modelPath, "snapshot", ix.Version(), "rules", len(ix.Rules()),
		"items", ix.Taxonomy().NumItems(), "dataset", meta.Dataset,
		"algorithm", meta.Algorithm, "minsup", meta.MinSupport, "minconf", meta.MinConfidence,
		"elapsed", time.Since(start).Round(time.Millisecond))

	reg := obs.NewRegistry()
	srv := serve.NewServer(serve.NewHolder(ix), serve.NewCache(*cacheSize), serve.ServerOptions{
		DefaultK:  *topK,
		MaxK:      *maxK,
		ModelPath: *modelPath,
		Registry:  reg,
	})

	// SIGHUP re-reads -model in place — the operational hot-swap path when
	// a fresh mining run overwrote the snapshot file (WriteFile renames
	// atomically, so the reload never sees a half-written file).
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := srv.ReloadFile(""); err != nil {
				logger.Error("SIGHUP reload failed (previous snapshot still serving)", "err", err)
				continue
			}
			cur := srv.Holder().Get()
			logger.Info("SIGHUP reload", "snapshot", cur.Version(), "rules", len(cur.Rules()))
		}
	}()

	logger.Info("serving", "addr", *addr,
		"endpoints", "POST /v1/recommend, GET /v1/rules, POST /reload, /healthz, /metrics")
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		logx.Fatal(logger, "http server failed", "err", err)
	}
}
