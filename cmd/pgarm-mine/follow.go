package main

import (
	"io"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	"pgarm/internal/gen"
	"pgarm/internal/item"
	"pgarm/internal/logx"
	"pgarm/internal/model"
	"pgarm/internal/rules"
	"pgarm/internal/stream"
	"pgarm/internal/taxonomy"
	"pgarm/internal/txn"
)

// followOptions are the flags relevant to -follow.
type followOptions struct {
	logDir    string
	dataset   string
	out       string
	minsup    float64
	minconf   float64
	interest  float64
	maxK      int
	workers   int
	deltaTxns int
	poll      time.Duration
	idle      time.Duration
	maxDeltas int
	reloadURL string
}

// followStream tails a stream log and closes the streaming loop: accumulate a
// delta, run one FUP-style incremental checkpoint (internal/stream), write
// the snapshot with its carry-forward state, and nudge a serving process to
// hot-swap it. A restart resumes from the snapshot's recorded log offset, so
// the pipeline is crash-consistent end to end.
func followStream(logger *slog.Logger, o followOptions) {
	if o.logDir == "" {
		logx.Fatal(logger, "-follow requires -log")
	}
	if o.out == "" {
		logx.Fatal(logger, "-follow requires -o (the snapshot is the output)")
	}
	if o.deltaTxns <= 0 {
		logx.Fatal(logger, "-delta-txns must be positive")
	}
	params, err := gen.ByName(o.dataset)
	if err != nil {
		logx.Fatal(logger, "bad dataset", "err", err)
	}
	tax, err := taxonomy.Balanced(params.NumItems, params.Roots, params.Fanout)
	if err != nil {
		logx.Fatal(logger, "taxonomy", "err", err)
	}

	// Resume from the snapshot's carry-forward state when there is one.
	var prior *model.MiningState
	var minedOff stream.Offset
	if _, err := os.Stat(o.out); err == nil {
		r, err := model.OpenReader(o.out)
		if err != nil {
			logx.Fatal(logger, "resume: snapshot unreadable", "path", o.out, "err", err)
		}
		st, err := r.State()
		if err != nil {
			logx.Fatal(logger, "resume: snapshot state unreadable", "path", o.out, "err", err)
		}
		if st == nil {
			logger.Warn("snapshot has no mining state; re-mining from the log head", "path", o.out)
		} else {
			snapTax, err := r.Taxonomy()
			if err != nil {
				logx.Fatal(logger, "resume: snapshot taxonomy unreadable", "err", err)
			}
			if snapTax.Fingerprint() != tax.Fingerprint() {
				logx.Fatal(logger, "resume: snapshot taxonomy does not match -dataset",
					"snapshot", snapTax.Fingerprint(), "dataset", tax.Fingerprint())
			}
			prior = st
			minedOff = stream.Offset{Seg: st.LogSeg, Byte: st.LogByte, Txns: st.LogTxns}
			logger.Info("resuming from snapshot state", "path", o.out,
				"txns", st.LogTxns, "offset", minedOff)
		}
	}

	var reader *stream.Reader
	for {
		reader, err = stream.OpenReader(o.logDir)
		if err == nil {
			break
		}
		logger.Info("waiting for stream log", "dir", o.logDir)
		time.Sleep(o.poll)
	}
	logger.Info("following", "log", o.logDir, "from", minedOff,
		"delta_txns", o.deltaTxns, "minsup", o.minsup)

	curOff := minedOff
	var pending []txn.Transaction
	lastData := time.Now()
	checkpoints := 0
	for {
		newOff, err := reader.ReadFrom(curOff, func(t txn.Transaction) error {
			pending = append(pending, txn.Transaction{TID: t.TID, Items: item.Clone(t.Items)})
			return nil
		})
		if err != nil {
			logx.Fatal(logger, "log read failed", "offset", curOff, "err", err)
		}
		if newOff.Txns > curOff.Txns {
			lastData = time.Now()
		}
		curOff = newOff

		// Mine when a full delta has arrived, or the stream has gone idle
		// with a partial one (so tail data still becomes servable).
		if len(pending) < o.deltaTxns &&
			!(len(pending) > 0 && time.Since(lastData) >= o.idle) {
			time.Sleep(o.poll)
			continue
		}

		t0 := time.Now()
		prefix := reader.Prefix(minedOff)
		delta := txn.NewDB(pending)
		res, state, stats, err := stream.IncrementalMine(tax, prior, prefix, delta, stream.MineConfig{
			MinSupport: o.minsup,
			MaxK:       o.maxK,
			Workers:    o.workers,
		})
		if err != nil {
			logx.Fatal(logger, "incremental mine failed", "err", err)
		}
		if state.LogTxns != curOff.Txns {
			logx.Fatal(logger, "txn accounting mismatch", "state", state.LogTxns, "offset", curOff.Txns)
		}
		state.LogSeg, state.LogByte = curOff.Seg, curOff.Byte

		support := res.SupportIndex()
		rs, err := rules.Derive(tax, res.All(), support, rules.Config{
			MinConfidence: o.minconf,
			NumTxns:       res.NumTxns,
		})
		if err != nil {
			logx.Fatal(logger, "rule derivation failed", "err", err)
		}
		if o.interest > 0 {
			rs = rules.Prune(tax, rs, support, res.NumTxns, o.interest)
		}
		m := &model.Model{
			Meta: model.Meta{
				Dataset:       o.dataset,
				Algorithm:     "Cumulate-FUP",
				Tool:          model.ToolVersion,
				NumTxns:       int64(res.NumTxns),
				MinSupport:    o.minsup,
				MinConfidence: o.minconf,
				CreatedUnix:   time.Now().Unix(),
			},
			Taxonomy: tax,
			Large:    res.Large,
			Rules:    rs,
			State:    state,
		}
		if err := model.WriteFile(o.out, m); err != nil {
			logx.Fatal(logger, "snapshot write failed", "path", o.out, "err", err)
		}
		checkpoints++
		recount := 0.0
		if stats.Candidates > 0 {
			recount = float64(stats.Recounted) / float64(stats.Candidates)
		}
		logger.Info("checkpoint", "n", checkpoints,
			"delta_txns", stats.DeltaTxns, "total_txns", stats.TotalTxns,
			"passes", stats.Passes, "candidates", stats.Candidates,
			"recounted", stats.Recounted, "recount_fraction", recount,
			"prefix_scans", stats.PrefixScans, "itemsets", m.NumItemsets(),
			"rules", len(rs), "elapsed", time.Since(t0).Round(time.Millisecond))
		if o.reloadURL != "" {
			postReload(logger, o.reloadURL)
		}

		prior = state
		minedOff = curOff
		pending = nil
		lastData = time.Now()
		if o.maxDeltas > 0 && checkpoints >= o.maxDeltas {
			logger.Info("checkpoint limit reached", "checkpoints", checkpoints)
			return
		}
	}
}

// postReload asks a pgarm-serve instance to hot-swap the snapshot. Failures
// are logged, not fatal: the snapshot on disk is already durable and the next
// checkpoint (or the server's SIGHUP) retries.
func postReload(logger *slog.Logger, url string) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Post(url, "application/json", nil)
	if err != nil {
		logger.Warn("reload request failed", "url", url, "err", err)
		return
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		logger.Warn("reload rejected", "url", url, "status", resp.StatusCode,
			"body", strings.TrimSpace(string(body)))
		return
	}
	logger.Info("serve reloaded", "url", url, "response", strings.TrimSpace(string(body)))
}
