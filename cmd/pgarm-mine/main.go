// Command pgarm-mine runs one parallel mining job and prints the large
// itemsets, the derived generalized association rules and per-pass
// statistics.
//
// The transaction source is either generated on the fly (-scale) or loaded
// from files produced by pgarm-gen (-in, repeatable or comma-separated);
// the classification hierarchy is reconstructed deterministically from the
// dataset configuration.
//
// Examples:
//
//	pgarm-mine -algorithm H-HPGM-FGD -dataset R30F5 -scale 0.005 -nodes 8 -minsup 0.005
//	pgarm-mine -algorithm HPGM -dataset R30F5 -in /tmp/r30f5.n00.ptx,/tmp/r30f5.n01.ptx -minsup 0.01 -rules 0.6
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"pgarm/internal/core"
	"pgarm/internal/gen"
	"pgarm/internal/item"
	"pgarm/internal/obs"
	"pgarm/internal/profiling"
	"pgarm/internal/rules"
	"pgarm/internal/taxonomy"
	"pgarm/internal/txn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pgarm-mine: ")

	var (
		algName  = flag.String("algorithm", "H-HPGM-FGD", "NPGM, HPGM, H-HPGM, H-HPGM-TGD, H-HPGM-PGD or H-HPGM-FGD")
		dataset  = flag.String("dataset", "R30F5", "dataset configuration (defines the hierarchy): R30F5, R30F3 or R30F10")
		scale    = flag.Float64("scale", 0.005, "generate this fraction of the paper dataset (ignored with -in)")
		seed     = flag.Int64("seed", 1998, "generator seed (ignored with -in)")
		inFiles  = flag.String("in", "", "comma-separated per-node transaction files from pgarm-gen")
		nodes    = flag.Int("nodes", 8, "cluster size (ignored with -in: one node per file)")
		minsup   = flag.Float64("minsup", 0.005, "minimum support as a fraction (0.005 = 0.5%)")
		minconf  = flag.Float64("rules", 0, "derive rules at this minimum confidence (0 = skip)")
		budget   = flag.Int64("budget", 0, "per-node candidate memory budget in bytes (0 = unlimited)")
		maxK     = flag.Int("maxk", 0, "stop after this pass (0 = run to completion)")
		tcp      = flag.Bool("tcp", false, "run the nodes over loopback TCP instead of channels")
		quiet    = flag.Bool("quiet", false, "suppress the itemset listing, print stats only")
		topN     = flag.Int("top", 25, "how many itemsets/rules to list per section")
		workers  = flag.Int("workers", 0, "scan workers per node (0 or 1 = scan on the node goroutine)")
		traceOut = flag.String("trace", "", "write a Chrome trace_event JSON file of the run")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	alg, err := core.ParseAlgorithm(*algName)
	if err != nil {
		log.Fatal(err)
	}
	params, err := gen.ByName(*dataset)
	if err != nil {
		log.Fatal(err)
	}

	var tax *taxonomy.Taxonomy
	var parts []txn.Scanner
	if *inFiles != "" {
		tax, err = taxonomy.Balanced(params.NumItems, params.Roots, params.Fanout)
		if err != nil {
			log.Fatal(err)
		}
		for _, path := range strings.Split(*inFiles, ",") {
			f, err := txn.OpenFile(strings.TrimSpace(path))
			if err != nil {
				log.Fatal(err)
			}
			parts = append(parts, f)
		}
	} else {
		params = params.Scaled(*scale)
		params.Seed = *seed
		fmt.Fprintf(os.Stderr, "generating %s (%d transactions)...\n", params.Name, params.NumTxns)
		ds, err := gen.Generate(params)
		if err != nil {
			log.Fatal(err)
		}
		tax = ds.Taxonomy
		for _, p := range txn.Partition(ds.DB, *nodes) {
			parts = append(parts, p)
		}
	}

	cfg := core.Config{
		Algorithm:    alg,
		MinSupport:   *minsup,
		MaxK:         *maxK,
		MemoryBudget: *budget,
		Workers:      *workers,
	}
	if *tcp {
		cfg.Fabric = core.FabricTCP
	}
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
		cfg.Tracer = tracer
	}
	fmt.Fprintf(os.Stderr, "mining with %s on %d nodes, minsup %.3g%%...\n", alg, len(parts), *minsup*100)
	res, err := core.Mine(tax, parts, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := tracer.WriteTrace(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d spans to %s\n", tracer.Spans(), *traceOut)
	}

	fmt.Print(res.Stats.String())
	if !*quiet {
		for k := 1; k <= len(res.Large); k++ {
			lk := res.LargeK(k)
			fmt.Printf("\nL_%d: %d itemsets", k, len(lk))
			if k == 1 {
				fmt.Println()
				continue
			}
			fmt.Println(":")
			for i, c := range lk {
				if i >= *topN {
					fmt.Printf("  ... %d more\n", len(lk)-i)
					break
				}
				fmt.Printf("  %s  sup_cou=%d\n", item.Format(c.Items), c.Count)
			}
		}
	}

	if *minconf > 0 {
		total := 0
		for _, p := range parts {
			total += p.Len()
		}
		rs, err := rules.Derive(tax, res.All(), res.SupportIndex(), rules.Config{
			MinConfidence: *minconf,
			NumTxns:       total,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%d rules at confidence >= %.0f%%:\n", len(rs), *minconf*100)
		for i, r := range rs {
			if i >= *topN {
				fmt.Printf("  ... %d more\n", len(rs)-i)
				break
			}
			fmt.Printf("  %s\n", r)
		}
	}
}
