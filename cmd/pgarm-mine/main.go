// Command pgarm-mine runs one parallel mining job and prints the results
// and per-pass statistics.
//
// The default mode mines generalized association rules (-mode itemset): the
// transaction source is either generated on the fly (-scale) or loaded from
// files produced by pgarm-gen (-in, repeatable or comma-separated), with the
// classification hierarchy reconstructed deterministically from the dataset
// configuration. With -mode seq it instead mines generalized sequential
// patterns with the [SK98] miners (NPSPM, SPSPM, HPSPM) over a generated
// customer-sequence database (-customers, -items, -roots, -fanout).
//
// With -rules the run continues past itemset mining into rule derivation
// (internal/rules) at the -minconf threshold; with -o the complete mined
// model — taxonomy, large itemsets, rules, generation metadata — is written
// as a snapshot file that pgarm-serve can serve and hot-swap.
//
// Examples:
//
//	pgarm-mine -algorithm H-HPGM-FGD -dataset R30F5 -scale 0.005 -nodes 8 -minsup 0.005
//	pgarm-mine -algorithm HPGM -dataset R30F5 -in /tmp/r30f5.n00.ptx,/tmp/r30f5.n01.ptx -minsup 0.01 -rules -minconf 0.6
//	pgarm-mine -dataset R30F5 -scale 0.002 -minsup 0.01 -minconf 0.3 -o /tmp/model.pgarm -quiet
//	pgarm-mine -mode seq -algorithm HPSPM -customers 5000 -nodes 4 -minsup 0.05 -trace seq.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"pgarm/internal/core"
	"pgarm/internal/gen"
	"pgarm/internal/item"
	"pgarm/internal/model"
	"pgarm/internal/obs"
	"pgarm/internal/profiling"
	"pgarm/internal/rules"
	"pgarm/internal/seq"
	"pgarm/internal/taxonomy"
	"pgarm/internal/txn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pgarm-mine: ")

	var (
		mode     = flag.String("mode", "itemset", "itemset (association rules) or seq (sequential patterns)")
		algName  = flag.String("algorithm", "", "itemset: NPGM, HPGM, H-HPGM, H-HPGM-TGD, H-HPGM-PGD or H-HPGM-FGD (default H-HPGM-FGD); seq: NPSPM, SPSPM or HPSPM (default HPSPM)")
		dataset  = flag.String("dataset", "R30F5", "dataset configuration (defines the hierarchy): R30F5, R30F3 or R30F10")
		cust     = flag.Int("customers", 2000, "seq mode: customers to generate")
		seqItems = flag.Int("items", 300, "seq mode: item universe size")
		seqRoots = flag.Int("roots", 5, "seq mode: hierarchy roots")
		seqFan   = flag.Int("fanout", 4, "seq mode: hierarchy fanout")
		scale    = flag.Float64("scale", 0.005, "generate this fraction of the paper dataset (ignored with -in)")
		seed     = flag.Int64("seed", 1998, "generator seed (ignored with -in)")
		inFiles  = flag.String("in", "", "comma-separated per-node transaction files from pgarm-gen")
		nodes    = flag.Int("nodes", 8, "cluster size (ignored with -in: one node per file)")
		minsup   = flag.Float64("minsup", 0.005, "minimum support as a fraction (0.005 = 0.5%)")
		rulesOn  = flag.Bool("rules", false, "derive and print rules after mining")
		minconf  = flag.Float64("minconf", 0.5, "minimum confidence for rule derivation (-rules / -o)")
		interest = flag.Float64("interest", 0, "R-interestingness prune factor, e.g. 1.1 (0 = keep all rules)")
		outModel = flag.String("o", "", "write the mined model (taxonomy, itemsets, rules, metadata) to this snapshot file")
		budget   = flag.Int64("budget", 0, "per-node candidate memory budget in bytes (0 = unlimited)")
		maxK     = flag.Int("maxk", 0, "stop after this pass (0 = run to completion)")
		tcp      = flag.Bool("tcp", false, "run the nodes over loopback TCP instead of channels")
		quiet    = flag.Bool("quiet", false, "suppress the itemset listing, print stats only")
		topN     = flag.Int("top", 25, "how many itemsets/rules to list per section")
		workers  = flag.Int("workers", 0, "scan workers per node (0 or 1 = scan on the node goroutine)")
		traceOut = flag.String("trace", "", "write a Chrome trace_event JSON file of the run")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	if *mode == "seq" {
		if *outModel != "" {
			log.Fatal("-o snapshots require -mode itemset (sequential patterns have no serving format yet)")
		}
		mineSequences(seqOptions{
			algorithm: *algName,
			customers: *cust,
			items:     *seqItems,
			roots:     *seqRoots,
			fanout:    *seqFan,
			seed:      *seed,
			nodes:     *nodes,
			minsup:    *minsup,
			maxK:      *maxK,
			workers:   *workers,
			tcp:       *tcp,
			traceOut:  *traceOut,
			quiet:     *quiet,
			topN:      *topN,
		})
		return
	}
	if *mode != "itemset" {
		log.Fatalf("unknown mode %q (itemset or seq)", *mode)
	}
	if *algName == "" {
		*algName = "H-HPGM-FGD"
	}
	alg, err := core.ParseAlgorithm(*algName)
	if err != nil {
		log.Fatal(err)
	}
	params, err := gen.ByName(*dataset)
	if err != nil {
		log.Fatal(err)
	}

	var tax *taxonomy.Taxonomy
	var parts []txn.Scanner
	if *inFiles != "" {
		tax, err = taxonomy.Balanced(params.NumItems, params.Roots, params.Fanout)
		if err != nil {
			log.Fatal(err)
		}
		for _, path := range strings.Split(*inFiles, ",") {
			// txn.Open sniffs the magic, so row and columnar partitions (and
			// mixtures) all work; columnar ones additionally scan block-sharded
			// with per-pass skip filters.
			f, err := txn.Open(strings.TrimSpace(path))
			if err != nil {
				log.Fatal(err)
			}
			parts = append(parts, f)
		}
	} else {
		params = params.Scaled(*scale)
		params.Seed = *seed
		fmt.Fprintf(os.Stderr, "generating %s (%d transactions)...\n", params.Name, params.NumTxns)
		ds, err := gen.Generate(params)
		if err != nil {
			log.Fatal(err)
		}
		tax = ds.Taxonomy
		for _, p := range txn.Partition(ds.DB, *nodes) {
			parts = append(parts, p)
		}
	}

	cfg := core.Config{
		Algorithm:    alg,
		MinSupport:   *minsup,
		MaxK:         *maxK,
		MemoryBudget: *budget,
		Workers:      *workers,
	}
	if *tcp {
		cfg.Fabric = core.FabricTCP
	}
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
		cfg.Tracer = tracer
	}
	fmt.Fprintf(os.Stderr, "mining with %s on %d nodes, minsup %.3g%%...\n", alg, len(parts), *minsup*100)
	res, err := core.Mine(tax, parts, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := tracer.WriteTrace(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d spans to %s\n", tracer.Spans(), *traceOut)
	}

	fmt.Print(res.Stats.String())
	if !*quiet {
		for k := 1; k <= len(res.Large); k++ {
			lk := res.LargeK(k)
			fmt.Printf("\nL_%d: %d itemsets", k, len(lk))
			if k == 1 {
				fmt.Println()
				continue
			}
			fmt.Println(":")
			for i, c := range lk {
				if i >= *topN {
					fmt.Printf("  ... %d more\n", len(lk)-i)
					break
				}
				fmt.Printf("  %s  sup_cou=%d\n", item.Format(c.Items), c.Count)
			}
		}
	}

	if *rulesOn || *outModel != "" {
		total := 0
		for _, p := range parts {
			total += p.Len()
		}
		support := res.SupportIndex()
		rs, err := rules.Derive(tax, res.All(), support, rules.Config{
			MinConfidence: *minconf,
			NumTxns:       total,
		})
		if err != nil {
			log.Fatal(err)
		}
		if *interest > 0 {
			before := len(rs)
			rs = rules.Prune(tax, rs, support, total, *interest)
			fmt.Fprintf(os.Stderr, "R-interestingness (R=%g) pruned %d of %d rules\n", *interest, before-len(rs), before)
		}
		if *rulesOn {
			fmt.Printf("\n%d rules at confidence >= %.0f%%:\n", len(rs), *minconf*100)
			for i, r := range rs {
				if i >= *topN {
					fmt.Printf("  ... %d more\n", len(rs)-i)
					break
				}
				fmt.Printf("  %s\n", r)
			}
		}
		if *outModel != "" {
			m := &model.Model{
				Meta: model.Meta{
					Dataset:       params.Name,
					Algorithm:     string(alg),
					Tool:          model.ToolVersion,
					NumTxns:       int64(total),
					MinSupport:    *minsup,
					MinConfidence: *minconf,
					CreatedUnix:   time.Now().Unix(),
				},
				Taxonomy: tax,
				Large:    res.Large,
				Rules:    rs,
			}
			if err := model.WriteFile(*outModel, m); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote model snapshot to %s (%d itemsets, %d rules)\n",
				*outModel, m.NumItemsets(), len(m.Rules))
		}
	}
}

// seqOptions are the flags relevant to -mode seq.
type seqOptions struct {
	algorithm string
	customers int
	items     int
	roots     int
	fanout    int
	seed      int64
	nodes     int
	minsup    float64
	maxK      int
	workers   int
	tcp       bool
	traceOut  string
	quiet     bool
	topN      int
}

// mineSequences runs one parallel sequential-pattern job: generate a
// customer-sequence database, mine it with the selected [SK98] miner and
// print the frequent patterns with per-pass statistics.
func mineSequences(o seqOptions) {
	if o.algorithm == "" {
		o.algorithm = "HPSPM"
	}
	alg, err := seq.ParseAlgorithm(o.algorithm)
	if err != nil {
		log.Fatal(err)
	}
	tax, err := taxonomy.Balanced(o.items, o.roots, o.fanout)
	if err != nil {
		log.Fatal(err)
	}
	p := seq.DefaultGenParams()
	p.NumCustomers = o.customers
	p.Seed = o.seed
	fmt.Fprintf(os.Stderr, "generating %d customer sequences over %s...\n", p.NumCustomers, tax)
	db := seq.GenerateSequences(tax, p)

	cfg := seq.ParallelConfig{
		Algorithm:  alg,
		MinSupport: o.minsup,
		MaxK:       o.maxK,
		Workers:    o.workers,
	}
	if o.tcp {
		cfg.Fabric = seq.FabricTCP
	}
	var tracer *obs.Tracer
	if o.traceOut != "" {
		tracer = obs.NewTracer()
		cfg.Tracer = tracer
	}
	fmt.Fprintf(os.Stderr, "mining with %s on %d nodes, minsup %.3g%%...\n", alg, o.nodes, o.minsup*100)
	res, err := seq.MineParallel(tax, seq.Partition(db, o.nodes), cfg)
	if err != nil {
		log.Fatal(err)
	}
	res.Stats.Dataset = fmt.Sprintf("SEQ-C%d", db.Len())
	if tracer != nil {
		f, err := os.Create(o.traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := tracer.WriteTrace(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d spans to %s\n", tracer.Spans(), o.traceOut)
	}

	fmt.Print(res.Stats.String())
	if o.quiet {
		return
	}
	for k := 1; k <= len(res.Frequent); k++ {
		fk := res.FrequentK(k)
		fmt.Printf("\nF_%d: %d patterns", k, len(fk))
		if k == 1 {
			fmt.Println()
			continue
		}
		fmt.Println(":")
		for i, pat := range fk {
			if i >= o.topN {
				fmt.Printf("  ... %d more\n", len(fk)-i)
				break
			}
			fmt.Printf("  %s\n", pat)
		}
	}
}
